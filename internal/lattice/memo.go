package lattice

import (
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Search memoization for incremental (ECO) rerouting.
//
// An edited design is rerouted by re-running the whole flow natively — every
// ordering decision, MPSC pick and mask build is recomputed from scratch, so
// the result is byte-identical to a cold route by construction — while the
// expensive part, the per-net A* searches, is served from a memo recorded on
// the base run whenever it is provably safe.
//
// Safety is decided per search in two parts:
//
//   - a 128-bit key over the request itself (net identity, terminals,
//     layers, costs, flags, layer mask, region mask contents, lattice
//     dims), and
//   - a footprint snapshot over the occupancy state the search actually
//     read. The lattice keeps a journal — a coarse 2D grid of block
//     hashes, each the multiset hash (commutative sum) of every occupancy
//     mutation whose writes can touch the block — and a recorded entry
//     stores the hashes of all blocks covering the nodes the search
//     probed (every popped node grown by two nodes, which dominates
//     neighbor probes and the edge-guard reads at cell
//     (i−1, j−1)). A hit is served only when every snapshot block hash
//     still equals the journal's current value.
//
// Each mutation's hash covers its bounding box grown by a conservative
// margin that dominates every clearance radius and the edge-guard reach,
// so every write that can reach a node is journaled in that node's block.
// The blocks sum op hashes instead of chaining them: every occupancy
// surface resolves claims with the same owner/free/hard switch, whose
// final value depends only on the set of distinct claimants — so the state
// at any point in a run is a function of the multiset of ops so far, and
// summing makes the journal blind to reorderings of unrelated commits
// (which ECO edits routinely cause among equal-cost nets).
// Matching snapshots therefore imply an identical op multiset produced
// the state at every node the search read, so re-running it would
// re-derive the identical result; any other change only flips block
// hashes and degrades to a miss (a live search), never to a wrong hit.
// Keying on what the search read — not on its full window — is what makes
// the footprint tight: an A* between two pads probes a narrow band around
// the route it finds, so a distant edit leaves its snapshot intact even
// when the cost-bound window would span the whole lattice.
//
// Net indices are not stable across deltas (removals renumber), so keys and
// journal hashes identify nets by a canonical key. Net IDs are stable across
// deltas (Apply never renumbers them), so when IDs are unique within the
// design — the normal case — the key is derived from the ID alone, which
// keeps a net's key stable when its pads move: memo reads only ever depend
// on owner-equality relations, so any per-design injective key is sound.
// Validate does not forbid duplicate IDs, so nets whose ID collides fall
// back to a terminal-derived key (kind, center, size), which the
// no-shared-pads rule makes injective.

// Memo carries recorded searches across routing runs: prev is the frozen
// map of the previous run (read-only, shareable across concurrent runs),
// cur collects this run's searches — both fresh recordings and prev entries
// that hit, so chaining plans naturally expires entries that stop being
// reachable. A Memo must only be attached to one lattice/run at a time;
// within a run all Route calls are sequential.
type Memo struct {
	prev, cur map[memoKey][]*memoEntry
	hits      int
	misses    int
	missNoKey int   // misses with no recorded entry under the request key
	bytes     int64 // approximate retained size of cur
}

// NewMemo returns an empty memo: the first run only records.
func NewMemo() *Memo {
	return &Memo{prev: map[memoKey][]*memoEntry{}, cur: map[memoKey][]*memoEntry{}}
}

// Next returns the memo for a follow-up run: this run's recordings become
// the read-only prev of the next. The receiver must not be attached to a
// running route anymore; concurrent Next calls on a frozen memo are safe.
func (m *Memo) Next() *Memo {
	return &Memo{prev: m.cur, cur: map[memoKey][]*memoEntry{}}
}

// Stats returns the hit/miss counters of the runs this memo was attached to.
func (m *Memo) Stats() (hits, misses int) { return m.hits, m.misses }

// MissKinds splits the miss counter: noKey misses had no recording under
// the request key (the request itself is new — net, terminals or masks
// changed), stale ones had recordings whose footprint no longer matched
// (occupancy the search reads was touched). The split tells an ECO user
// whether reroute cost comes from request churn or from state churn.
func (m *Memo) MissKinds() (noKey, stale int) {
	return m.missNoKey, m.misses - m.missNoKey
}

// SizeBytes approximates the heap retained by this run's recordings.
func (m *Memo) SizeBytes() int64 { return m.bytes }

type memoKey struct{ a, b uint64 }

// blockSnap is one journal block's hash at record time.
type blockSnap struct {
	idx  int32
	hash uint64
}

type memoEntry struct {
	ok       bool
	cost     float64
	expanded int
	visited  int
	path     []PathStep
	snap     []blockSnap // footprint proof: blocks the search read
}

const memoEntryBase = 120 // struct + map overhead estimate

func entrySize(e *memoEntry) int64 {
	return memoEntryBase + int64(len(e.path))*24 + int64(len(e.snap))*12
}

// lookup serves an entry recorded under the same request key whose block
// snapshot still matches the journal — i.e. the state the search read is
// reproduced bit for bit. Several entries may share a key (e.g. rip-up
// ghost searches repeating across rounds against evolving occupancy); the
// snapshot picks the right one.
func (m *Memo) lookup(k memoKey, j *journal) (*memoEntry, bool) {
	for _, e := range m.cur[k] {
		if j.snapValid(e.snap) {
			m.hits++
			return e, true
		}
	}
	for _, e := range m.prev[k] {
		if j.snapValid(e.snap) {
			m.hits++
			m.cur[k] = append(m.cur[k], e)
			m.bytes += entrySize(e)
			return e, true
		}
	}
	m.misses++
	if len(m.cur[k]) == 0 && len(m.prev[k]) == 0 {
		m.missNoKey++
	}
	return nil, false
}

func (m *Memo) store(k memoKey, e *memoEntry) {
	m.cur[k] = append(m.cur[k], e)
	m.bytes += entrySize(e)
}

func (j *journal) snapValid(snap []blockSnap) bool {
	for _, s := range snap {
		if int(s.idx) >= len(j.blocks) || j.blocks[s.idx] != s.hash {
			return false
		}
	}
	return true
}

// fpScratch is one search's footprint accumulator: the set of journal
// blocks the search read. The journal embeds one for the sequential Route
// path; every speculative Searcher owns a private one so concurrent
// speculative searches can track footprints against the shared (frozen)
// journal without racing.
type fpScratch struct {
	bits []uint64
	list []int32
}

// reset clears the scratch for a new search over a journal with nblocks
// blocks.
func (fp *fpScratch) reset(nblocks int) {
	if fp.bits == nil || len(fp.bits) < (nblocks+63)/64 {
		fp.bits = make([]uint64, (nblocks+63)/64)
	}
	for _, k := range fp.list {
		fp.bits[k>>6] &^= 1 << (uint(k) & 63)
	}
	fp.list = fp.list[:0]
}

// mark adds the journal blocks covering node (i, jj) grown by two nodes:
// probed neighbors extend one node beyond popped nodes, and the edge-guard
// probe reads the cell one further down-left. Tracking the exact popped
// block set (instead of the popped bbox) is what keeps footprints of long
// diagonal or L-shaped searches from swallowing the whole lattice.
func (fp *fpScratch) mark(j *journal, i, jj int) {
	bx0 := clampInt((i-2)/journalBlock, 0, j.nbx-1)
	bx1 := clampInt((i+2)/journalBlock, 0, j.nbx-1)
	by0 := clampInt((jj-2)/journalBlock, 0, j.nby-1)
	by1 := clampInt((jj+2)/journalBlock, 0, j.nby-1)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			k := int32(by*j.nbx + bx)
			if fp.bits[k>>6]&(1<<(uint(k)&63)) == 0 {
				fp.bits[k>>6] |= 1 << (uint(k) & 63)
				fp.list = append(fp.list, k)
			}
		}
	}
}

// snapshot freezes the footprint scratch into a block-hash snapshot.
func (fp *fpScratch) snapshot(j *journal) []blockSnap {
	snap := make([]blockSnap, len(fp.list))
	for n, k := range fp.list {
		snap[n] = blockSnap{idx: k, hash: j.blocks[k]}
	}
	return snap
}

// hasher accumulates the 128-bit memo key as two independent mixes of the
// same word stream (FNV-style and splitmix-style), so a silent collision
// needs both 64-bit hashes to collide at once.
type hasher struct{ a, b uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newHasher() hasher { return hasher{a: fnvOffset, b: 0x9e3779b97f4a7c15} }

func (h *hasher) word(v uint64) {
	h.a = (h.a ^ v) * fnvPrime
	h.b += v + 0x9e3779b97f4a7c15
	h.b = (h.b ^ (h.b >> 31)) * 0xbf58476d1ce4e5b9
	h.b ^= h.b >> 27
}

func (h *hasher) int64(v int64) { h.word(uint64(v)) }

func (h *hasher) point(p geom.Point) { h.int64(p.X); h.int64(p.Y) }

func (h *hasher) key() memoKey { return memoKey{h.a, h.b} }

// opHash folds one occupancy mutation into a single 64-bit journal word.
func opHash(words ...uint64) uint64 {
	h := uint64(fnvOffset)
	for _, w := range words {
		h = (h ^ w) * fnvPrime
	}
	// splitmix finalizer: journal blocks combine op hashes with xor/multiply,
	// so each op hash must already be well distributed.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// journalBlock is the block side length in lattice nodes. Smaller blocks
// localize edits better (fewer false misses); the journal itself is tiny
// either way.
const journalBlock = 8

// hardOwnerKey stands in for hard (netless) claims in op hashes.
const hardOwnerKey = 0x8c97d7a0f5e1b3d9

// journal tracks which regions of the lattice's occupancy state each
// mutation may have written, at block granularity, for memo key footprints.
// memo may be nil (AttachJournal): block hashes are still maintained so
// speculative searches can be footprint-validated, but no search is ever
// recorded or served.
type journal struct {
	memo     *Memo
	nbx, nby int
	blocks   []uint64
	netKeys  []uint64
	margin   int // node margin dominating every write's reach beyond its bbox

	// Footprint scratch for the one live search in flight (Route calls are
	// sequential within a run): the set of blocks its pops touched.
	fp fpScratch
}

// AttachMemo enables search memoization on this lattice. It must be called
// right after construction (and after any SetTracer), before commits beyond
// the static design shapes: the static shapes New pre-blocked are folded
// into the journal here, in New's order, so two lattices over equal designs
// start from equal block hashes. A nil memo detaches.
func (la *Lattice) AttachMemo(m *Memo) {
	if m == nil {
		la.j = nil
		return
	}
	la.attachJournal(m)
}

// AttachJournal attaches an occupancy journal with no memo: commits fold
// into block hashes exactly as under AttachMemo, but searches are never
// recorded or served. The speculative router uses this to footprint-
// validate speculative searches on runs that carry no SearchMemo. Same
// placement rule as AttachMemo: call right after construction.
func (la *Lattice) AttachJournal() { la.attachJournal(nil) }

func (la *Lattice) attachJournal(m *Memo) {
	j := &journal{memo: m}
	j.nbx = (la.NX + journalBlock - 1) / journalBlock
	j.nby = (la.NY + journalBlock - 1) / journalBlock
	j.blocks = make([]uint64, j.nbx*j.nby)

	// Margin: markDisk writes reach its bbox grown by the clearance radius;
	// edge marking reaches the item poly's bbox (itself up to wire/via half
	// widths beyond the op bbox) grown by spacing+wireWidth/2, plus one node
	// of windowing slop on each side. One generous bound covers all ops.
	r := la.D.Rules
	reach := math.Max(math.Max(la.rWireWire, la.rWireVia), math.Max(la.rViaVia, math.Max(la.rShapeW, la.rShapeV)))
	reach += float64(r.Spacing + r.WireWidth + r.ViaWidth)
	j.margin = int(math.Ceil(reach/float64(la.Pitch))) + 3

	d := la.D
	idCount := make(map[int]int, len(d.Nets))
	for _, n := range d.Nets {
		idCount[n.ID]++
	}
	j.netKeys = make([]uint64, len(d.Nets))
	for ni, n := range d.Nets {
		if idCount[n.ID] == 1 {
			// Stable identity: a pad move must not change the net's key, or
			// every block its committed path touches goes stale spuriously.
			j.netKeys[ni] = opHash(0xa0, uint64(int64(n.ID)))
			continue
		}
		h := newHasher()
		h.int64(int64(n.ID))
		for _, ref := range []design.PadRef{n.P1, n.P2} {
			h.int64(int64(ref.Kind))
			h.point(d.PadCenter(ref))
			h.int64(padSize(d, ref))
		}
		j.netKeys[ni] = opHash(0xb0, h.a, h.b)
	}
	la.j = j

	// Replay the static pre-blocking of New into the journal, in the same
	// order, with the same owners (canonicalized).
	for _, o := range d.Obstacles {
		j.note(la, o.Box, opHash(1, uint64(o.Layer), rectWords(o.Box), hardOwnerKey))
	}
	ioOwner, bumpOwner := la.padOwnerKeys()
	for pi, p := range d.IOPads {
		j.note(la, p.Box(), opHash(2, rectWords(p.Box()), ioOwner[pi]))
	}
	for pi, p := range d.BumpPads {
		bb := p.Oct().BBox()
		j.note(la, bb, opHash(3, rectWords(bb), bumpOwner[pi]))
	}
	for _, v := range d.FixedVias {
		owner := uint64(hardOwnerKey)
		if v.Net >= 0 {
			owner = j.ownerKey(v.Net)
		}
		j.note(la, geom.RectOf(v.Center, v.Center),
			opHash(4, uint64(v.Slab), uint64(v.Center.X), uint64(v.Center.Y), owner))
	}
}

// Memo returns the attached memo, or nil.
func (la *Lattice) Memo() *Memo {
	if la.j == nil {
		return nil
	}
	return la.j.memo
}

// padOwnerKeys computes the canonical owner key of every pad: the owning
// net's key, or hardOwnerKey for unreferenced pads (mirrors New's owners).
func (la *Lattice) padOwnerKeys() (io, bump []uint64) {
	d := la.D
	io = make([]uint64, len(d.IOPads))
	bump = make([]uint64, len(d.BumpPads))
	for i := range io {
		io[i] = hardOwnerKey
	}
	for i := range bump {
		bump[i] = hardOwnerKey
	}
	for ni, n := range d.Nets {
		key := la.j.netKeys[ni]
		for _, ref := range []design.PadRef{n.P1, n.P2} {
			if ref.Kind == design.IOKind {
				io[ref.Index] = key
			} else {
				bump[ref.Index] = key
			}
		}
	}
	return io, bump
}

// padSize is the pad's characteristic dimension, part of its canonical
// identity (two pads can never share a center in a valid design, but the
// size guards the key against degenerate inputs).
func padSize(d *design.Design, ref design.PadRef) int64 {
	if ref.Kind == design.IOKind {
		return d.IOPads[ref.Index].HalfW
	}
	return d.BumpPads[ref.Index].W
}

// rectWords folds a rectangle into one journal word.
func rectWords(r geom.Rect) uint64 {
	return opHash(uint64(r.X0), uint64(r.Y0), uint64(r.X1), uint64(r.Y1))
}

// ownerKey maps a net index to its canonical key (guarded for safety).
func (j *journal) ownerKey(net int) uint64 {
	if net >= 0 && net < len(j.netKeys) {
		return j.netKeys[net]
	}
	return opHash(0xfeed, uint64(int64(net)))
}

// note mixes one mutation's hash into every journal block its writes can
// touch: the bbox in node space grown by the conservative margin.
func (j *journal) note(la *Lattice, bbox geom.Rect, h uint64) {
	p := la.Pitch
	i0 := int(floorDiv(bbox.X0-la.X0, p)) - j.margin
	i1 := int(ceilDiv(bbox.X1-la.X0, p)) + j.margin
	k0 := int(floorDiv(bbox.Y0-la.Y0, p)) - j.margin
	k1 := int(ceilDiv(bbox.Y1-la.Y0, p)) + j.margin
	j.mixBlocks(la, i0, k0, i1, k1, h)
}

func (j *journal) mixBlocks(la *Lattice, i0, j0, i1, j1 int, h uint64) {
	bx0 := clampInt(i0/journalBlock, 0, j.nbx-1)
	bx1 := clampInt(i1/journalBlock, 0, j.nbx-1)
	by0 := clampInt(j0/journalBlock, 0, j.nby-1)
	by1 := clampInt(j1/journalBlock, 0, j.nby-1)
	for by := by0; by <= by1; by++ {
		for bx := bx0; bx <= bx1; bx++ {
			j.blocks[by*j.nbx+bx] += h
		}
	}
}

// noteWire journals a committed wire segment. Merged collinear segments
// can span the die, so unlike point ops the hash is computed per block,
// over the sub-segment clipped to the block's reach window (the block's
// node range grown by the journal margin): every disk or edge write that
// can land on a block's nodes originates within reach of them, and the
// margin dominates reach, so the effect of the op on a block is a function
// of that clipped sub-segment alone. Blocks whose window the segment
// misses are skipped entirely — a long diagonal no longer dirties its
// whole bounding box, and moving one endpoint of a long wire only touches
// the blocks near that endpoint.
func (la *Lattice) noteWire(layer int, seg geom.Segment, net int) {
	if la.j == nil {
		return
	}
	la.j.noteSeg(la, layer, seg, la.j.ownerKey(net))
}

func (j *journal) noteSeg(la *Lattice, layer int, seg geom.Segment, owner uint64) {
	dx, dy := seg.B.X-seg.A.X, seg.B.Y-seg.A.Y
	if !(dx == 0 || dy == 0 || dx == dy || dx == -dy) {
		// Non-octilinear segments have no exact integer clip; fall back to
		// one whole-op hash over the full reach (the pre-clipping scheme).
		j.note(la, seg.BBox(), opHash(5, uint64(layer),
			uint64(seg.A.X), uint64(seg.A.Y), uint64(seg.B.X), uint64(seg.B.Y), owner))
		return
	}
	bbox := seg.BBox()
	p := la.Pitch
	i0 := int(floorDiv(bbox.X0-la.X0, p)) - j.margin
	i1 := int(ceilDiv(bbox.X1-la.X0, p)) + j.margin
	k0 := int(floorDiv(bbox.Y0-la.Y0, p)) - j.margin
	k1 := int(ceilDiv(bbox.Y1-la.Y0, p)) + j.margin
	bx0 := clampInt(i0/journalBlock, 0, j.nbx-1)
	bx1 := clampInt(i1/journalBlock, 0, j.nbx-1)
	by0 := clampInt(k0/journalBlock, 0, j.nby-1)
	by1 := clampInt(k1/journalBlock, 0, j.nby-1)
	m := int64(j.margin) * p
	for by := by0; by <= by1; by++ {
		wy0 := la.Y0 + int64(by*journalBlock)*p - m
		wy1 := la.Y0 + int64(by*journalBlock+journalBlock-1)*p + m
		for bx := bx0; bx <= bx1; bx++ {
			wx0 := la.X0 + int64(bx*journalBlock)*p - m
			wx1 := la.X0 + int64(bx*journalBlock+journalBlock-1)*p + m
			cs, ok := clipSegOct(seg, wx0, wy0, wx1, wy1)
			if !ok {
				continue
			}
			j.blocks[by*j.nbx+bx] += opHash(5, uint64(layer),
				uint64(cs.A.X), uint64(cs.A.Y), uint64(cs.B.X), uint64(cs.B.Y), owner)
		}
	}
}

// clipSegOct clips an octilinear segment to the closed window, exactly in
// integer coordinates: each active axis of an H/V/45° segment advances one
// DBU per parameter step, so the window's half-plane bounds translate to
// integer parameter bounds. ok is false when the intersection is empty.
func clipSegOct(seg geom.Segment, x0, y0, x1, y1 int64) (geom.Segment, bool) {
	a, b := seg.A, seg.B
	dx, dy := b.X-a.X, b.Y-a.Y
	length := dx
	if length < 0 {
		length = -length
	}
	if dy > length {
		length = dy
	}
	if -dy > length {
		length = -dy
	}
	tlo, thi := int64(0), length
	clip := func(d, lo, hi, start int64) bool {
		switch {
		case d > 0:
			tlo = geom.Max64(tlo, lo-start)
			thi = geom.Min64(thi, hi-start)
		case d < 0:
			tlo = geom.Max64(tlo, start-hi)
			thi = geom.Min64(thi, start-lo)
		default:
			if start < lo || start > hi {
				return false
			}
		}
		return true
	}
	if !clip(dx, x0, x1, a.X) || !clip(dy, y0, y1, a.Y) || tlo > thi {
		return geom.Segment{}, false
	}
	at := func(t int64) geom.Point {
		pt := a
		if dx > 0 {
			pt.X += t
		} else if dx < 0 {
			pt.X -= t
		}
		if dy > 0 {
			pt.Y += t
		} else if dy < 0 {
			pt.Y -= t
		}
		return pt
	}
	return geom.Segment{A: at(tlo), B: at(thi)}, true
}

// noteVia journals a committed via.
func (la *Lattice) noteVia(s int, p geom.Point, net int) {
	if la.j == nil {
		return
	}
	la.j.note(la, geom.RectOf(p, p),
		opHash(6, uint64(s), uint64(p.X), uint64(p.Y), la.j.ownerKey(net)))
}

// noteRect journals a post-construction BlockRect.
func (la *Lattice) noteRect(layer int, box geom.Rect, net int) {
	if la.j == nil {
		return
	}
	owner := uint64(hardOwnerKey)
	if net >= 0 {
		owner = la.j.ownerKey(net)
	}
	la.j.note(la, box, opHash(7, uint64(layer), rectWords(box), owner))
}

// memoKeyFor hashes the request-determined part of a Route call: the
// occupancy the search reads is proven separately by the entry's block
// snapshot. The search window is implied by From/To/MaxCost/lattice dims,
// all hashed.
func (la *Lattice) memoKeyFor(req *Request) memoKey {
	j := la.j
	h := newHasher()
	// Lattice identity: equal designs at equal pitch agree; anything else
	// must not alias.
	h.int64(int64(la.NX)<<32 | int64(la.NY))
	h.int64(int64(la.Layers))
	h.int64(la.Pitch)
	h.int64(la.X0)
	h.int64(la.Y0)
	// Request.
	h.word(j.ownerKey(req.Net))
	h.point(req.From)
	h.point(req.To)
	h.int64(int64(req.FromLayer)<<32 | int64(req.ToLayer))
	h.word(math.Float64bits(req.ViaCost))
	h.word(math.Float64bits(req.MaxCost))
	if req.IgnoreForeign {
		h.word(0x1f)
	} else {
		h.word(0x2e)
	}
	if req.LayerMask == nil {
		h.word(^uint64(0))
	} else {
		var bits uint64 = 1 << 63
		for l, ok := range req.LayerMask {
			if ok && l < 63 {
				bits |= 1 << uint(l)
			}
		}
		h.word(bits)
	}
	if req.RegionMask == nil {
		h.word(0)
	} else {
		req.RegionMask.hashInto(&h)
	}
	return h.key()
}

// hashInto folds the mask's dimensions and full bit contents into the key.
func (m *RegionMask) hashInto(h *hasher) {
	h.word(1)
	h.int64(int64(m.nx)<<32 | int64(m.ny))
	h.int64(int64(m.layers))
	h.int64(m.x0)
	h.int64(m.y0)
	h.int64(m.pitch)
	for _, w := range m.bits {
		h.word(w)
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
