// Package ctile implements the paper's Routing Graph Construction stage
// (Section III-C): global cells, frame partitioning by corner extension,
// the octagonal tile model for free-space decomposition under
// X-architecture blockages, tile adjacency, per-cell via insertion, and
// the incremental re-partitioning performed after each sequentially routed
// net.
package ctile

import (
	"context"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
	"rdlroute/internal/par"
)

// Tile is one octagonal free-space tile on a wire layer.
type Tile struct {
	Region geom.Oct8
	Layer  int
	Cell   int // owning global cell index
}

// Model is the tile decomposition of a design's free routing space.
type Model struct {
	D      *design.Design
	CellsX int
	CellsY int
	clear  int64 // blockage growth radius: spacing + wireWidth/2

	// blockers[layer][cell]: clearance-grown blockage shapes clipped to cell.
	blockers [][][]geom.Oct8
	// tiles[layer][cell]: current decomposition; nil means dirty.
	tiles [][][]geom.Oct8
	// tileBB mirrors tiles with cached bounding boxes for quick rejects.
	tileBB [][][]geom.Rect
	// centers mirrors tiles with cached tile centers (corridor arc costs
	// and the corridor heuristic both need them on every A* pop).
	centers [][][]geom.Point
	// gen[layer][cell] counts re-partitions of the cell, validating adj.
	gen [][]uint32
	// adj[layer][cell] caches every tile's same-layer corridor arcs; see
	// cellArcs. nil means never built; entries self-validate against the
	// generation of each cell in their ring.
	adj [][]*cellAdj
	// minDim: tiles thinner than this in bounding box are dropped (too
	// narrow for any wire).
	minDim int64

	// cj, when non-nil, journals per-cell blocker content and memoizes
	// corridor searches across runs; see memo.go. Strictly observational.
	cj *corJournal
}

// NewModel builds the decomposition over the design with a cells×cells
// global-cell grid (the paper uses 30×30), seeded with the design's static
// shapes: obstacles on their layers, I/O pads on the top layer, bump pads
// on the bottom layer.
func NewModel(d *design.Design, cells int) *Model {
	if cells < 1 {
		cells = 1
	}
	m := &Model{
		D:      d,
		CellsX: cells,
		CellsY: cells,
		clear:  d.Rules.Spacing + d.Rules.WireWidth/2,
		minDim: d.Rules.WireWidth,
	}
	n := cells * cells
	m.blockers = make([][][]geom.Oct8, d.WireLayers)
	m.tiles = make([][][]geom.Oct8, d.WireLayers)
	m.tileBB = make([][][]geom.Rect, d.WireLayers)
	m.centers = make([][][]geom.Point, d.WireLayers)
	m.gen = make([][]uint32, d.WireLayers)
	m.adj = make([][]*cellAdj, d.WireLayers)
	for l := range m.blockers {
		m.blockers[l] = make([][]geom.Oct8, n)
		m.tiles[l] = make([][]geom.Oct8, n)
		m.tileBB[l] = make([][]geom.Rect, n)
		m.centers[l] = make([][]geom.Point, n)
		m.gen[l] = make([]uint32, n)
		m.adj[l] = make([]*cellAdj, n)
	}
	for _, o := range d.Obstacles {
		m.addBlocker(o.Layer, geom.OctFromRect(o.Box).Grow(m.clear))
	}
	for _, p := range d.IOPads {
		m.addBlocker(0, geom.OctFromRect(p.Box()).Grow(m.clear))
	}
	for _, p := range d.BumpPads {
		m.addBlocker(d.WireLayers-1, p.Oct().Grow(m.clear))
	}
	for _, v := range d.FixedVias {
		oct := v.Oct(d.Rules).Grow(m.clear)
		m.addBlocker(v.Slab, oct)
		m.addBlocker(v.Slab+1, oct)
	}
	return m
}

// CellBox returns the rectangle of global cell c.
func (m *Model) CellBox(c int) geom.Rect { return m.cellBox(c) }

// cellBox returns the rectangle of global cell c.
func (m *Model) cellBox(c int) geom.Rect {
	cx := c % m.CellsX
	cy := c / m.CellsX
	w := m.D.Outline.W()
	h := m.D.Outline.H()
	x0 := m.D.Outline.X0 + w*int64(cx)/int64(m.CellsX)
	x1 := m.D.Outline.X0 + w*int64(cx+1)/int64(m.CellsX)
	y0 := m.D.Outline.Y0 + h*int64(cy)/int64(m.CellsY)
	y1 := m.D.Outline.Y0 + h*int64(cy+1)/int64(m.CellsY)
	return geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// cellsTouching returns the indices of global cells intersecting the box.
func (m *Model) cellsTouching(b geom.Rect) []int {
	w := m.D.Outline.W()
	h := m.D.Outline.H()
	cx0 := int((b.X0 - m.D.Outline.X0) * int64(m.CellsX) / (w + 1))
	cx1 := int((b.X1 - m.D.Outline.X0) * int64(m.CellsX) / (w + 1))
	cy0 := int((b.Y0 - m.D.Outline.Y0) * int64(m.CellsY) / (h + 1))
	cy1 := int((b.Y1 - m.D.Outline.Y0) * int64(m.CellsY) / (h + 1))
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	cx0, cx1 = clamp(cx0, m.CellsX-1), clamp(cx1, m.CellsX-1)
	cy0, cy1 = clamp(cy0, m.CellsY-1), clamp(cy1, m.CellsY-1)
	var out []int
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			out = append(out, cy*m.CellsX+cx)
		}
	}
	return out
}

// addBlocker records a grown blockage shape and dirties affected cells.
func (m *Model) addBlocker(layer int, shape geom.Oct8) {
	if layer < 0 || layer >= len(m.blockers) {
		return
	}
	bb := shape.BBox()
	for _, c := range m.cellsTouching(bb) {
		box := m.cellBox(c)
		if shape.Intersects(geom.OctFromRect(box)) {
			m.blockers[layer][c] = append(m.blockers[layer][c], shape)
			m.tiles[layer][c] = nil // dirty
			if m.cj != nil {
				m.cj.fold(layer, c, m.CellsX*m.CellsY, cellClampHash(shape, box))
			}
		}
	}
}

// AddWire inserts a committed wire's clearance band and re-partitions the
// frames it crosses (the incremental update of Section III-D).
func (m *Model) AddWire(layer int, seg geom.Segment) {
	m.addBlocker(layer, geom.OctAroundSegment(seg, m.clear+m.D.Rules.WireWidth/2))
}

// AddVia inserts a committed via's clearance shape on both wire layers it
// lands on.
func (m *Model) AddVia(slab int, center geom.Point) {
	oct := geom.RegularOct(center, m.D.Rules.ViaWidth).Grow(m.clear)
	m.addBlocker(slab, oct)
	m.addBlocker(slab+1, oct)
}

// Tiles returns the (lazily rebuilt) tile set of one layer and cell. Tiles
// are stored in canonical form.
func (m *Model) Tiles(layer, cell int) []geom.Oct8 {
	if t := m.tiles[layer][cell]; t != nil {
		return t
	}
	t := m.buildCell(layer, cell)
	if t == nil {
		// Distinguish "built, empty" from "dirty": a nil result would be
		// rebuilt on every call, bumping gen and invalidating the arc
		// caches of the whole ring each time.
		t = []geom.Oct8{}
	}
	m.tiles[layer][cell] = t
	bb := make([]geom.Rect, len(t))
	ct := make([]geom.Point, len(t))
	for i := range t {
		bb[i] = geom.Rect{X0: t[i].XLo, Y0: t[i].YLo, X1: t[i].XHi, Y1: t[i].YHi}
		ct[i] = t[i].Center()
	}
	m.tileBB[layer][cell] = bb
	m.centers[layer][cell] = ct
	m.gen[layer][cell]++
	m.adj[layer][cell] = nil
	return t
}

// BuildAll warms the tile decomposition of every (layer, cell) on the
// worker pool (see internal/par; workers 0 = GOMAXPROCS). Each index owns
// exactly one cell's cache slots and buildCell is a pure function of the
// cell's blockers, so concurrent builds never share state and the warmed
// caches are identical to what lazy Tiles calls would have produced. Call
// it only while no other goroutine uses the model; afterwards the model
// is warm but remains single-goroutine (via insertion and the corridor
// arc caches still mutate lazily).
func (m *Model) BuildAll(ctx context.Context, workers int) error {
	cells := m.CellsX * m.CellsY
	return par.ForEach(ctx, workers, len(m.blockers)*cells, func(i int) error {
		m.Tiles(i/cells, i%cells)
		return nil
	})
}

// TileBBs returns the cached bounding boxes parallel to Tiles.
func (m *Model) TileBBs(layer, cell int) []geom.Rect {
	m.Tiles(layer, cell)
	return m.tileBB[layer][cell]
}

// TileCenters returns the cached tile centers parallel to Tiles.
func (m *Model) TileCenters(layer, cell int) []geom.Point {
	m.Tiles(layer, cell)
	return m.centers[layer][cell]
}

// buildCell performs frame partitioning then octagonal-tile subtraction
// for one (layer, cell).
func (m *Model) buildCell(layer, cell int) []geom.Oct8 {
	box := m.cellBox(cell)
	blockers := m.blockers[layer][cell]

	// Frame partitioning: extend vertical and horizontal lines from the
	// corner points (bounding boxes) of blockers across the cell.
	xs := []int64{box.X0, box.X1}
	ys := []int64{box.Y0, box.Y1}
	for _, b := range blockers {
		bb := b.BBox()
		for _, x := range []int64{bb.X0, bb.X1} {
			if x > box.X0 && x < box.X1 {
				xs = append(xs, x)
			}
		}
		for _, y := range []int64{bb.Y0, bb.Y1} {
			if y > box.Y0 && y < box.Y1 {
				ys = append(ys, y)
			}
		}
	}
	xs = uniq(xs)
	ys = uniq(ys)

	var tiles []geom.Oct8
	for yi := 0; yi+1 < len(ys); yi++ {
		for xi := 0; xi+1 < len(xs); xi++ {
			frame := geom.Rect{X0: xs[xi], Y0: ys[yi], X1: xs[xi+1], Y1: ys[yi+1]}
			if frame.W() < m.minDim && frame.H() < m.minDim {
				continue
			}
			pieces := []geom.Oct8{geom.OctFromRect(frame)}
			for _, b := range blockers {
				if len(pieces) == 0 {
					break
				}
				var next []geom.Oct8
				for _, p := range pieces {
					next = append(next, p.SubtractOct(b)...)
				}
				pieces = next
			}
			for _, p := range pieces {
				bb := p.BBox()
				if bb.W() < m.minDim && bb.H() < m.minDim {
					continue
				}
				tiles = append(tiles, p)
			}
		}
	}
	sort.Slice(tiles, func(i, j int) bool {
		bi, bj := tiles[i].BBox(), tiles[j].BBox()
		if bi.Y0 != bj.Y0 {
			return bi.Y0 < bj.Y0
		}
		return bi.X0 < bj.X0
	})
	return tiles
}

// TileRef addresses one tile.
type TileRef struct {
	Layer, Cell, Idx int
}

// TileAt returns the tile containing p on the layer, if any.
func (m *Model) TileAt(layer int, p geom.Point) (TileRef, bool) {
	if !m.D.Outline.Contains(p) {
		return TileRef{}, false
	}
	for _, c := range m.cellsTouching(geom.RectOf(p, p)) {
		for i, t := range m.Tiles(layer, c) {
			if t.Contains(p) {
				return TileRef{layer, c, i}, true
			}
		}
	}
	return TileRef{}, false
}

// Region returns the tile's region.
func (m *Model) Region(r TileRef) geom.Oct8 { return m.Tiles(r.Layer, r.Cell)[r.Idx] }

// TileCount returns the number of tiles on the layer (rebuilding as
// needed) — the graph-size statistic the octagonal model is about.
func (m *Model) TileCount(layer int) int {
	total := 0
	for c := 0; c < m.CellsX*m.CellsY; c++ {
		total += len(m.Tiles(layer, c))
	}
	return total
}

// TraceStats emits one "ctile.layer" event per wire layer — tile count
// and the via sites usable on the layer — plus graph-wide counters, when
// the tracer is enabled. The router calls it after stage 3 so traces
// expose the routing graph the sequential stage searches.
func (m *Model) TraceStats(tr obs.Tracer, sites []ViaSite) {
	if tr == nil || !tr.Enabled() {
		return
	}
	totalTiles := 0
	for l := 0; l < m.D.WireLayers; l++ {
		tiles := m.TileCount(l)
		totalTiles += tiles
		siteCount := 0
		for _, s := range sites {
			if s.L0 <= l && l <= s.L1 {
				siteCount++
			}
		}
		tr.Event("ctile.layer",
			obs.Int("layer", l),
			obs.Int("tiles", tiles),
			obs.Int("via_sites", siteCount))
	}
	tr.Count("ctile.tiles", int64(totalTiles))
	tr.Count("ctile.via_sites", int64(len(sites)))
}

func uniq(v []int64) []int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
