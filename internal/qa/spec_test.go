package qa

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// Speculative-equivalence matrix: the speculative stage-4 scheduler must
// commit results byte-identical to the plain sequential loop — fingerprint,
// result metrics and canonical rdl-result/v1 bytes — at every worker
// count, and its own spec.* counters must not depend on the worker count
// either (round boundaries, prediction and validation are all defined in
// commit order, never in schedule order).

// routeSpeculative routes d with the speculative scheduler at the given
// worker count, returning the fingerprint, stable result bytes, result,
// and the full counter map of the run's obs stream.
func routeSpeculative(t *testing.T, d *design.Design, workers int) (uint64, []byte, *router.Result, map[string]int64) {
	t.Helper()
	opts := flowOptions()
	opts.Speculative = true
	opts.Workers = workers
	c := obs.NewCollector()
	opts.Tracer = c
	res, fp, err := router.RouteFingerprint(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("speculative workers=%d: %v", workers, err)
	}
	enc, err := encodeResultStable(res)
	if err != nil {
		t.Fatalf("speculative workers=%d: encode: %v", workers, err)
	}
	return fp, enc, res, c.Snapshot().Counters
}

// assertSpeculativeInvariant proves the speculative scheduler equivalent
// to the sequential loop on one design: a speculation-off workers=1 run
// is the ground truth, and every speculative run at workers 1, 2 and 8
// must match its fingerprint, routed-net count, wirelength and encoded
// rdl-result/v1 bytes. The full counter maps of the speculative runs —
// spec.* included — must also be identical across worker counts.
func assertSpeculativeInvariant(t *testing.T, label string, d *design.Design) {
	t.Helper()
	fpSeq, encSeq, resSeq := routeStable(t, d, 1)
	var counters1 map[string]int64
	for _, w := range workerMatrix {
		fp, enc, res, counters := routeSpeculative(t, d, w)
		if fp != fpSeq {
			t.Errorf("%s: speculative workers=%d fingerprint %x, sequential got %x", label, w, fp, fpSeq)
		}
		if res.RoutedNets != resSeq.RoutedNets || res.Wirelength != resSeq.Wirelength {
			t.Errorf("%s: speculative workers=%d routed %d wl %.3f, sequential routed %d wl %.3f",
				label, w, res.RoutedNets, res.Wirelength, resSeq.RoutedNets, resSeq.Wirelength)
		}
		if !bytes.Equal(enc, encSeq) {
			t.Errorf("%s: speculative workers=%d rdl-result/v1 bytes differ from sequential (%d vs %d bytes)",
				label, w, len(enc), len(encSeq))
		}
		if w == workerMatrix[0] {
			counters1 = counters
			continue
		}
		if !reflect.DeepEqual(counters, counters1) {
			t.Errorf("%s: speculative workers=%d counter stream differs from workers=%d:\n%v\nvs\n%v",
				label, w, workerMatrix[0], counters, counters1)
		}
	}
}

// TestSpeculativeEquivalenceDense runs the speculative matrix over the
// paper's benchmark circuits (trimmed under -short and -race exactly like
// the worker-determinism matrix).
func TestSpeculativeEquivalenceDense(t *testing.T) {
	for _, name := range denseMatrixNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := design.DenseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := design.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			assertSpeculativeInvariant(t, name, d)
		})
	}
}

// TestSpeculativeEquivalenceRandom runs the matrix over qa-generated
// designs: irregular pad rings, area pads, obstacle clutter and
// adversarial near-minimum-spacing packs reach corridor-less fallbacks,
// rip-up rounds and degenerate fan-out regions the dense circuits never
// produce.
func TestSpeculativeEquivalenceRandom(t *testing.T) {
	const seeds = 10
	for seed := int64(1); seed <= seeds; seed++ {
		d := Generate(seed)
		assertSpeculativeInvariant(t, d.Name, d)
	}
}

// TestRegressionSpeculativeReplay pins seed 20: a generated design whose
// speculation round both accepts speculative nets (spec.hit > 0) and
// aborts one whose mask-disjoint searches were nonetheless invalidated by
// an earlier commit (spec.abort.stale > 0) — the rollback-replay path
// where the arbiter discards a finished speculative search and replays
// the net live. A scheduler that never replayed (or never speculated)
// would pass a pure equivalence check trivially; this test fails loudly
// if the pinned seed stops exercising both sides of the arbiter.
func TestRegressionSpeculativeReplay(t *testing.T) {
	d := Generate(20)
	assertSpeculativeInvariant(t, d.Name, d)
	_, _, _, counters := routeSpeculative(t, d, 2)
	if counters["spec.hit"] == 0 {
		t.Errorf("seed 20: spec.hit = 0, the pinned seed no longer accepts any speculation")
	}
	if counters["spec.abort.stale"] == 0 {
		t.Errorf("seed 20: spec.abort.stale = 0, the pinned seed no longer forces a rollback-replay")
	}
	if counters["spec.abort"] != counters["spec.replay"] {
		t.Errorf("seed 20: spec.abort = %d but spec.replay = %d; every abort must be replayed exactly once",
			counters["spec.abort"], counters["spec.replay"])
	}
}
