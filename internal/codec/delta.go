package codec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"rdlroute/internal/design"
	"rdlroute/internal/eco"
)

// DeltaSchema identifies version 1 of the design-delta wire format: one
// ECO edit against a base design addressed by its canonical-bytes hash.
const DeltaSchema = "rdl-design-delta/v1"

// Wire representation of an eco.Delta. Move entries address the base
// design's tables, additions are appended, removal indices address the
// post-addition tables — the application-order contract documented on
// eco.Delta, which this format mirrors field for field.
type deltaDoc struct {
	Schema string `json:"schema"`
	Base   string `json:"base,omitempty"`
	Name   string `json:"name,omitempty"`

	MoveIOPads    []movePadDoc      `json:"move_io_pads,omitempty"`
	MoveBumpPads  []movePadDoc      `json:"move_bump_pads,omitempty"`
	MoveObstacles []moveObstacleDoc `json:"move_obstacles,omitempty"`

	AddIOPads    []ioPadDoc    `json:"add_io_pads,omitempty"`
	AddBumpPads  []bumpPadDoc  `json:"add_bump_pads,omitempty"`
	AddNets      []netDoc      `json:"add_nets,omitempty"`
	AddObstacles []obstacleDoc `json:"add_obstacles,omitempty"`

	RemoveNets      []int `json:"remove_nets,omitempty"`
	RemoveIOPads    []int `json:"remove_io_pads,omitempty"`
	RemoveBumpPads  []int `json:"remove_bump_pads,omitempty"`
	RemoveObstacles []int `json:"remove_obstacles,omitempty"`
}

type movePadDoc struct {
	Index int      `json:"index"`
	To    [2]int64 `json:"to"`
}

type moveObstacleDoc struct {
	Index int      `json:"index"`
	To    [2]int64 `json:"to"`
}

// EncodeDesignDelta writes dl as an rdl-design-delta/v1 JSON document.
// Encoding the same delta twice produces identical bytes.
func EncodeDesignDelta(w io.Writer, dl *eco.Delta) error {
	doc := deltaDoc{
		Schema: DeltaSchema,
		Base:   dl.Base,
		Name:   dl.Name,

		RemoveNets:      dl.RemoveNets,
		RemoveIOPads:    dl.RemoveIOPads,
		RemoveBumpPads:  dl.RemoveBumpPads,
		RemoveObstacles: dl.RemoveObstacles,
	}
	for _, m := range dl.MoveIOPads {
		doc.MoveIOPads = append(doc.MoveIOPads, movePadDoc{Index: m.Index, To: pointDoc(m.To)})
	}
	for _, m := range dl.MoveBumpPads {
		doc.MoveBumpPads = append(doc.MoveBumpPads, movePadDoc{Index: m.Index, To: pointDoc(m.To)})
	}
	for _, m := range dl.MoveObstacles {
		doc.MoveObstacles = append(doc.MoveObstacles, moveObstacleDoc{Index: m.Index, To: pointDoc(m.To)})
	}
	for _, p := range dl.AddIOPads {
		doc.AddIOPads = append(doc.AddIOPads, ioPadDoc{
			ID: p.ID, Chip: p.Chip, Center: pointDoc(p.Center), HalfW: p.HalfW,
		})
	}
	for _, p := range dl.AddBumpPads {
		doc.AddBumpPads = append(doc.AddBumpPads, bumpPadDoc{ID: p.ID, Center: pointDoc(p.Center), W: p.W})
	}
	for _, n := range dl.AddNets {
		doc.AddNets = append(doc.AddNets, netDoc{ID: n.ID, P1: refDoc(n.P1), P2: refDoc(n.P2)})
	}
	for _, o := range dl.AddObstacles {
		doc.AddObstacles = append(doc.AddObstacles, obstacleDoc{Layer: o.Layer, Box: rectDoc(o.Box)})
	}
	return writeDoc(w, DeltaSchema, doc)
}

// decodeDeltaRef converts a wire pad reference for an added net. Range
// checks against the base design's tables cannot happen here — the base is
// resolved later (eco.Apply validates the edited design) — but the kind
// string and index sign are checked so a malformed document fails with a
// precise path instead of a confusing Apply error.
func decodeDeltaRef(r padRefDoc, path string) (design.PadRef, error) {
	var kind design.PadKind
	switch r.Kind {
	case "io":
		kind = design.IOKind
	case "bump":
		kind = design.BumpKind
	default:
		return design.PadRef{}, invalidf(DeltaSchema, path+".kind",
			"pad kind %q (want \"io\" or \"bump\")", r.Kind)
	}
	if r.Index < 0 {
		return design.PadRef{}, invalidf(DeltaSchema, path+".index",
			"negative pad index %d", r.Index)
	}
	return design.PadRef{Kind: kind, Index: r.Index}, nil
}

func checkIndices(field string, idx []int) error {
	for i, v := range idx {
		if v < 0 {
			return invalidf(DeltaSchema, fmt.Sprintf("%s[%d]", field, i),
				"negative index %d", v)
		}
	}
	return nil
}

// DecodeDesignDelta reads an rdl-design-delta/v1 document. Structural
// errors (bad kind strings, negative indices) yield a *Error; whether the
// delta actually applies to its base — indices in range, the edited design
// valid — is decided by eco.Apply once the base is resolved.
func DecodeDesignDelta(r io.Reader) (*eco.Delta, error) {
	var doc deltaDoc
	if err := decodeDoc(r, DeltaSchema, &doc); err != nil {
		return nil, err
	}
	dl := &eco.Delta{
		Base: doc.Base,
		Name: doc.Name,

		RemoveNets:      doc.RemoveNets,
		RemoveIOPads:    doc.RemoveIOPads,
		RemoveBumpPads:  doc.RemoveBumpPads,
		RemoveObstacles: doc.RemoveObstacles,
	}
	for i, m := range doc.MoveIOPads {
		if m.Index < 0 {
			return nil, invalidf(DeltaSchema, fmt.Sprintf("move_io_pads[%d].index", i),
				"negative index %d", m.Index)
		}
		dl.MoveIOPads = append(dl.MoveIOPads, eco.MovePad{Index: m.Index, To: docPoint(m.To)})
	}
	for i, m := range doc.MoveBumpPads {
		if m.Index < 0 {
			return nil, invalidf(DeltaSchema, fmt.Sprintf("move_bump_pads[%d].index", i),
				"negative index %d", m.Index)
		}
		dl.MoveBumpPads = append(dl.MoveBumpPads, eco.MovePad{Index: m.Index, To: docPoint(m.To)})
	}
	for i, m := range doc.MoveObstacles {
		if m.Index < 0 {
			return nil, invalidf(DeltaSchema, fmt.Sprintf("move_obstacles[%d].index", i),
				"negative index %d", m.Index)
		}
		dl.MoveObstacles = append(dl.MoveObstacles, eco.MoveObstacle{Index: m.Index, To: docPoint(m.To)})
	}
	for _, p := range doc.AddIOPads {
		dl.AddIOPads = append(dl.AddIOPads, design.IOPad{
			ID: p.ID, Chip: p.Chip, Center: docPoint(p.Center), HalfW: p.HalfW,
		})
	}
	for _, p := range doc.AddBumpPads {
		dl.AddBumpPads = append(dl.AddBumpPads, design.BumpPad{ID: p.ID, Center: docPoint(p.Center), W: p.W})
	}
	for i, n := range doc.AddNets {
		p1, err := decodeDeltaRef(n.P1, fmt.Sprintf("add_nets[%d].p1", i))
		if err != nil {
			return nil, err
		}
		p2, err := decodeDeltaRef(n.P2, fmt.Sprintf("add_nets[%d].p2", i))
		if err != nil {
			return nil, err
		}
		dl.AddNets = append(dl.AddNets, design.Net{ID: n.ID, P1: p1, P2: p2})
	}
	for _, o := range doc.AddObstacles {
		dl.AddObstacles = append(dl.AddObstacles, design.Obstacle{Layer: o.Layer, Box: docRect(o.Box)})
	}
	for _, f := range []struct {
		name string
		idx  []int
	}{
		{"remove_nets", doc.RemoveNets},
		{"remove_io_pads", doc.RemoveIOPads},
		{"remove_bump_pads", doc.RemoveBumpPads},
		{"remove_obstacles", doc.RemoveObstacles},
	} {
		if err := checkIndices(f.name, f.idx); err != nil {
			return nil, err
		}
	}
	return dl, nil
}

// DesignHash returns the content address of a design: the sha256 (hex) of
// its canonical rdl-design/v1 encoding. Deltas reference their base design
// by this hash, and the serve result cache is keyed on it.
func DesignHash(d *design.Design) (string, error) {
	var buf bytes.Buffer
	if err := EncodeDesign(&buf, d); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}
