package serve

import (
	"rdlroute/internal/metrics"
)

// Job outcome labels of rdl_jobs_finished_total. States answer "where is
// this job"; outcomes answer "how did it end" — a timed-out job's state
// is failed but its outcome is timeout.
const (
	OutcomeCompleted = "completed"
	OutcomeFailed    = "failed"
	OutcomeTimeout   = "timeout"
	OutcomeCanceled  = "canceled"
)

// serverMetrics are the serving layer's production series. Everything the
// routing flow itself emits (per-stage latency, A* effort, MPSC/ctile/LP
// counters) arrives through the obs bridge; these are the queue and job
// lifecycle series only the server can see.
type serverMetrics struct {
	reg    *metrics.Registry
	bridge *metrics.Bridge

	submitted metrics.Counter    // accepted into the queue
	deduped   metrics.Counter    // idempotency-key replays answered from cache
	rejected  metrics.CounterVec // refused submissions by reason (busy | draining)
	finished  metrics.CounterVec // terminal jobs by outcome
	jobDur    metrics.Histogram  // run time of finished jobs (started→finished)
	queueWait metrics.Histogram  // queue wait of started jobs (created→started)

	httpReqs metrics.CounterVec   // HTTP requests by route and status code
	httpDur  metrics.HistogramVec // HTTP handler latency by route
}

// newServerMetrics registers the serving series plus the Go runtime
// gauges on reg and returns the handle set. The queue gauges close over
// the server, so they read live values at scrape time.
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg:    reg,
		bridge: metrics.NewBridge(reg),
		submitted: reg.Counter("rdl_jobs_submitted_total",
			"Jobs accepted into the queue."),
		deduped: reg.Counter("rdl_jobs_deduplicated_total",
			"Submissions answered from an idempotency-key replay."),
		rejected: reg.CounterVec("rdl_jobs_rejected_total",
			"Refused submissions by reason.", "reason"),
		finished: reg.CounterVec("rdl_jobs_finished_total",
			"Terminal jobs by outcome.", "outcome"),
		jobDur: reg.Histogram("rdl_job_duration_seconds",
			"End-to-end run time of finished jobs.", metrics.LatencyBuckets()),
		queueWait: reg.Histogram("rdl_job_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", metrics.LatencyBuckets()),
		httpReqs: reg.CounterVec("rdl_http_requests_total",
			"HTTP requests by route and status code.", "route", "code"),
		httpDur: reg.HistogramVec("rdl_http_request_duration_seconds",
			"HTTP handler latency by route.", metrics.LatencyBuckets(), "route"),
	}
	// Pre-create the outcome and rejection series so a fresh scrape shows
	// them at 0 instead of omitting them.
	for _, o := range []string{OutcomeCompleted, OutcomeFailed, OutcomeTimeout, OutcomeCanceled} {
		m.finished.With(o)
	}
	m.rejected.With("busy")
	m.rejected.With("draining")

	reg.GaugeFunc("rdl_queue_depth", "Jobs waiting in the queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("rdl_queue_capacity", "Configured queue bound.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("rdl_workers", "Configured worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("rdl_jobs_inflight", "Jobs currently running on workers.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	reg.GaugeFunc("rdl_draining", "1 after graceful shutdown began, else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
	metrics.RegisterGoRuntime(reg)
	return m
}

// outcomeOf classifies a finished job for the outcome counter and the
// flight recorder.
func outcomeOf(j *Job) string {
	switch j.State {
	case JobDone:
		return OutcomeCompleted
	case JobCancelled:
		return OutcomeCanceled
	default:
		if j.timedOut {
			return OutcomeTimeout
		}
		return OutcomeFailed
	}
}
