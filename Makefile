GO ?= go

.PHONY: build test verify verify-short bench bench-json fmt

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

# Stricter local gate: build + vet + full suite under the race detector.
verify:
	sh scripts/verify.sh

# Quick race pass (skips the dense benchmarks and randomized sweeps).
verify-short:
	sh scripts/verify.sh -short

bench:
	$(GO) run ./cmd/rdlbench -all -quick

# Machine-readable perf baseline for the full Table-I sweep; compare the
# committed BENCH_seed.json / BENCH_pr2.json per EXPERIMENTS.md.
BENCH_JSON ?= BENCH_pr2.json
bench-json:
	$(GO) run ./cmd/rdlbench -table1 -json $(BENCH_JSON)

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)
