package eco

import (
	"context"

	"rdlroute/internal/ctile"
	"rdlroute/internal/design"
	"rdlroute/internal/lattice"
	"rdlroute/internal/router"
)

// Plan is a routed design plus the search memo its run recorded: the unit
// of incremental rerouting. A completed plan is immutable — Reroute builds
// a new plan chained off this one's memo, and several reroutes may share a
// base plan concurrently (the previous run's recordings are read-only).
type Plan struct {
	Design      *design.Design
	Opts        router.Options // Tracer and SearchMemo stripped
	Result      *router.Result
	Fingerprint uint64 // lattice occupancy fingerprint of the run

	memo  *lattice.Memo
	cmemo *ctile.CorridorMemo
}

// Route cold-routes the design while recording a memo, yielding the plan
// future deltas reroute against. The result is byte-identical to a plain
// router.RouteContext call with the same options: recording never changes
// search outcomes, and serving only happens on provably-identical state.
func Route(ctx context.Context, d *design.Design, opts router.Options) (*Plan, error) {
	return routeWith(ctx, d, opts, lattice.NewMemo(), ctile.NewCorridorMemo())
}

// Reroute applies the delta to this plan's design and routes the edited
// design incrementally: the full flow re-runs natively, with unchanged A*
// searches served from this plan's memo. opts may differ from the base
// plan's in observational fields only (Tracer, Workers); changing
// flow-shaping options is legal but degrades every search to a miss.
func (p *Plan) Reroute(ctx context.Context, dl *Delta, opts router.Options) (*Plan, error) {
	d2, err := Apply(p.Design, dl)
	if err != nil {
		return nil, err
	}
	return p.RerouteDesign(ctx, d2, opts)
}

// RerouteDesign is Reroute for an already-applied edited design.
func (p *Plan) RerouteDesign(ctx context.Context, d2 *design.Design, opts router.Options) (*Plan, error) {
	return routeWith(ctx, d2, opts, p.memo.Next(), p.cmemo.Next())
}

// MemoStats reports the lattice-search hit/miss counters of the plan's
// routing run and the approximate bytes its recordings retain.
func (p *Plan) MemoStats() (hits, misses int, bytes int64) {
	hits, misses = p.memo.Stats()
	return hits, misses, p.memo.SizeBytes() + p.cmemo.SizeBytes()
}

// CorridorStats reports the tile-graph corridor memo's hit/miss counters.
func (p *Plan) CorridorStats() (hits, misses int) {
	return p.cmemo.Stats()
}

// MissKinds splits both memos' miss counters into "no recording under the
// key" (the request itself changed) and "stale footprint" (state the search
// reads changed) — the diagnostic for where an ECO's reroute cost comes from.
func (p *Plan) MissKinds() (latticeNoKey, latticeStale, corridorNoKey, corridorStale int) {
	ln, ls := p.memo.MissKinds()
	cn, cs := p.cmemo.MissKinds()
	return ln, ls, cn, cs
}

func routeWith(ctx context.Context, d *design.Design, opts router.Options, m *lattice.Memo, cm *ctile.CorridorMemo) (*Plan, error) {
	opts.SearchMemo = m
	opts.CorridorMemo = cm
	res, fp, err := router.RouteFingerprint(ctx, d, opts)
	if err != nil {
		return nil, err
	}
	stored := opts
	stored.Tracer = nil
	stored.SearchMemo = nil
	stored.CorridorMemo = nil
	return &Plan{Design: d, Opts: stored, Result: res, Fingerprint: fp, memo: m, cmemo: cm}, nil
}
