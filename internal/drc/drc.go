// Package drc is the design-rule checker used by the test suite, the
// benchmark harness and the CLI to validate routed layouts against Section
// II-B's rules: octilinearity, the routing-angle constraint, the
// non-crossing constraint, minimum spacing between components of different
// nets, and net connectivity.
package drc

import (
	"context"
	"fmt"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/layout"
	"rdlroute/internal/par"
)

// Violation is one design-rule violation.
type Violation struct {
	Kind   string // "octilinear", "turn", "crossing", "spacing", "connectivity"
	Detail string
	Layer  int
	Where  geom.Point
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s @ layer %d %v: %s", v.Kind, v.Layer, v.Where, v.Detail)
}

// item is a shaped component for spacing checks.
type item struct {
	net   int // −1 for netless blockages
	poly  geom.ConvexPoly
	bbox  geom.Rect
	desc  string
	layer int
}

// Check validates the layout and returns every violation found. An empty
// result means the layout is clean. It is CheckWorkers with the default
// worker count (GOMAXPROCS); the violation list is identical at every
// worker count.
func Check(l *layout.Layout) []Violation {
	return CheckWorkers(l, 0)
}

// CheckWorkers is Check with an explicit worker-pool bound for the
// spacing/crossing pair scan (0 = GOMAXPROCS, 1 = sequential). Every
// sub-check is index-addressed — item i scans only pairs (i, j>i) from
// its own spatial-hash buckets — so the violations come back in the same
// deterministic (layer, item, partner) order regardless of workers.
func CheckWorkers(l *layout.Layout, workers int) []Violation {
	var out []Violation
	out = append(out, checkGeometry(l)...)
	out = append(out, checkSpacingAndCrossing(l, workers)...)
	out = append(out, checkConnectivity(l)...)
	return out
}

// checkGeometry verifies octilinearity and the routing-angle constraint.
func checkGeometry(l *layout.Layout) []Violation {
	var out []Violation
	for i := range l.Routes {
		r := &l.Routes[i]
		for j := 0; j+1 < len(r.Pts); j++ {
			s := geom.Seg(r.Pts[j], r.Pts[j+1])
			if s.Degenerate() {
				continue
			}
			if !s.Octilinear() {
				out = append(out, Violation{
					Kind: "octilinear", Layer: r.Layer, Where: s.A,
					Detail: fmt.Sprintf("net %d segment %v is not X-architecture", r.Net, s),
				})
				continue
			}
			if j+2 < len(r.Pts) {
				s2 := geom.Seg(r.Pts[j+1], r.Pts[j+2])
				if s2.Degenerate() || !s2.Octilinear() {
					continue
				}
				if !geom.DirTurnOK(s.Dir(), s2.Dir()) {
					out = append(out, Violation{
						Kind: "turn", Layer: r.Layer, Where: r.Pts[j+1],
						Detail: fmt.Sprintf("net %d illegal turn", r.Net),
					})
				}
			}
		}
	}
	return out
}

// collectItems builds the per-layer component list for spacing checks.
func collectItems(l *layout.Layout) [][]item {
	d := l.D
	perLayer := make([][]item, d.WireLayers)
	halfWire := float64(d.Rules.WireWidth) / 2
	add := func(layer int, it item) {
		it.layer = layer
		perLayer[layer] = append(perLayer[layer], it)
	}
	padNet := padOwners(d)
	for i := range l.Routes {
		r := &l.Routes[i]
		r.Segments(func(s geom.Segment) {
			if s.Degenerate() {
				return
			}
			add(r.Layer, item{
				net:  r.Net,
				poly: geom.PolyFromSegment(s, halfWire),
				bbox: s.BBox().Expand(d.Rules.WireWidth),
				desc: fmt.Sprintf("wire net %d %v", r.Net, s),
			})
		})
	}
	for _, v := range l.Vias {
		oct := v.Oct()
		for _, layer := range []int{v.Slab, v.Slab + 1} {
			add(layer, item{
				net:  v.Net,
				poly: oct.Poly(),
				bbox: oct.BBox(),
				desc: fmt.Sprintf("via net %d @ %v", v.Net, v.Center),
			})
		}
	}
	for i, o := range d.Obstacles {
		add(o.Layer, item{
			net:  -1,
			poly: geom.PolyFromRect(o.Box),
			bbox: o.Box,
			desc: fmt.Sprintf("obstacle %d", i),
		})
	}
	for i, p := range d.IOPads {
		add(0, item{
			net:  padNet[[2]int{int(design.IOKind), i}],
			poly: geom.PolyFromRect(p.Box()),
			bbox: p.Box(),
			desc: fmt.Sprintf("iopad %d", i),
		})
	}
	for i, p := range d.BumpPads {
		oct := p.Oct()
		add(d.WireLayers-1, item{
			net:  padNet[[2]int{int(design.BumpKind), i}],
			poly: oct.Poly(),
			bbox: oct.BBox(),
			desc: fmt.Sprintf("bumppad %d", i),
		})
	}
	for i, v := range d.FixedVias {
		oct := v.Oct(d.Rules)
		for _, layer := range []int{v.Slab, v.Slab + 1} {
			add(layer, item{
				net:  v.Net,
				poly: oct.Poly(),
				bbox: oct.BBox(),
				desc: fmt.Sprintf("fixedvia %d", i),
			})
		}
	}
	return perLayer
}

func padOwners(d *design.Design) map[[2]int]int {
	owner := make(map[[2]int]int)
	for i := range d.IOPads {
		owner[[2]int{int(design.IOKind), i}] = -1
	}
	for i := range d.BumpPads {
		owner[[2]int{int(design.BumpKind), i}] = -1
	}
	for ni, n := range d.Nets {
		owner[[2]int{int(n.P1.Kind), n.P1.Index}] = ni
		owner[[2]int{int(n.P2.Kind), n.P2.Index}] = ni
	}
	return owner
}

// checkSpacingAndCrossing verifies minimum spacing and the non-crossing
// constraint between components of different nets, layer by layer, using a
// uniform spatial hash to keep the pair count down.
//
// The pair scan is per-item: item i walks the buckets its expanded bbox
// covers (in the same row-major bucket order its bbox loop inserts them)
// and tests only partners j > i, deduplicating with a set local to i.
// That makes the violation order deterministic — the seed iterated the
// bucket map itself, so the order changed run to run — and lets items fan
// out across workers, since item i writes only its own violation slot.
func checkSpacingAndCrossing(l *layout.Layout, workers int) []Violation {
	var out []Violation
	s := float64(l.D.Rules.Spacing)
	perLayer := collectItems(l)
	// Cell edge: a few wire pitches, so a segment lands in O(length/cell)
	// buckets while each bucket stays small. The seed multiplied the
	// pitch by 4 twice, producing 16×-oversized cells whose buckets held
	// most of a layer and degraded the check to near-quadratic pairing.
	cell := 4 * (l.D.Rules.WireWidth + l.D.Rules.Spacing)
	if cell <= 0 {
		cell = 64
	}
	for layer, items := range perLayer {
		buckets := map[[2]int64][]int{}
		for idx := range items {
			b := items[idx].bbox.Expand(l.D.Rules.Spacing)
			for bx := b.X0 / cell; bx <= b.X1/cell; bx++ {
				for by := b.Y0 / cell; by <= b.Y1/cell; by++ {
					buckets[[2]int64{bx, by}] = append(buckets[[2]int64{bx, by}], idx)
				}
			}
		}
		perItem, _ := par.Map(context.Background(), workers, len(items), func(i int) ([]Violation, error) {
			var viols []Violation
			it1 := &items[i]
			b := it1.bbox.Expand(l.D.Rules.Spacing)
			var seen map[int]bool
			for bx := b.X0 / cell; bx <= b.X1/cell; bx++ {
				for by := b.Y0 / cell; by <= b.Y1/cell; by++ {
					for _, j := range buckets[[2]int64{bx, by}] {
						if j <= i || seen[j] {
							continue
						}
						if seen == nil {
							seen = map[int]bool{}
						}
						seen[j] = true
						it2 := &items[j]
						if it1.net == it2.net && it1.net >= 0 {
							continue
						}
						if !it1.bbox.Expand(l.D.Rules.Spacing + 1).Intersects(it2.bbox) {
							continue
						}
						d := it1.poly.Dist(it2.poly)
						if d < s {
							kind := "spacing"
							if d == 0 {
								kind = "crossing"
							}
							viols = append(viols, Violation{
								Kind: kind, Layer: layer, Where: geom.Pt(it1.bbox.X0, it1.bbox.Y0),
								Detail: fmt.Sprintf("%s vs %s: %.2f < %.2f", it1.desc, it2.desc, d, s),
							})
						}
					}
				}
			}
			return viols, nil
		})
		for _, viols := range perItem {
			out = append(out, viols...)
		}
	}
	return out
}

// checkConnectivity verifies every net marked routed is actually connected.
func checkConnectivity(l *layout.Layout) []Violation {
	var out []Violation
	for ni := range l.D.Nets {
		if !l.Routed(ni) {
			continue
		}
		if !l.Connected(ni) {
			out = append(out, Violation{
				Kind: "connectivity", Layer: -1,
				Where:  l.D.PadCenter(l.D.Nets[ni].P1),
				Detail: fmt.Sprintf("net %d marked routed but pads are not connected", ni),
			})
		}
	}
	return out
}
