package codec_test

import (
	"bytes"
	"errors"
	"testing"

	"rdlroute/internal/codec"
)

// FuzzDecodeDesign holds the design decoder to its contract on arbitrary
// bytes: it either fails with a structured *codec.Error or returns a
// design that (a) passes Validate — the decoder promises validated
// output — and (b) re-encodes byte-stably through a second round-trip.
// Seed corpus: testdata/fuzz/FuzzDecodeDesign (valid documents from the
// qa generator plus corrupt variants).
func FuzzDecodeDesign(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"schema":"rdl-design/v1"}`))
	f.Add([]byte(`{"schema":"rdl-design/v9","name":"x"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := codec.DecodeDesign(bytes.NewReader(data))
		if err != nil {
			var ce *codec.Error
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *codec.Error: %v", err)
			}
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("decoder returned an invalid design: %v", err)
		}
		var b1 bytes.Buffer
		if err := codec.EncodeDesign(&b1, d); err != nil {
			t.Fatalf("re-encoding a decoded design: %v", err)
		}
		d2, err := codec.DecodeDesign(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		var b2 bytes.Buffer
		if err := codec.EncodeDesign(&b2, d2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("Encode(Decode(Encode(d))) differs from Encode(d)")
		}
	})
}

// FuzzDecodeOptions is the same contract for the options document:
// structured errors on garbage, byte-stable round-trips on success.
// Seed corpus: testdata/fuzz/FuzzDecodeOptions.
func FuzzDecodeOptions(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"schema":"rdl-options/v1"}`))
	f.Add([]byte(`{"schema":"rdl-options/v1","net_order":"nonsense"}`))
	f.Add([]byte(`{"schema":"rdl-options/v1","pitch":-5}`))
	f.Add([]byte(`{"schema":"rdl-options/v1","order_portfolio":8}`))
	f.Add([]byte(`{"schema":"rdl-options/v1","order_portfolio":99}`))
	f.Add([]byte(`{"schema":"rdl-options/v1","order_portfolio":-3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		opts, err := codec.DecodeOptions(bytes.NewReader(data))
		if err != nil {
			var ce *codec.Error
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *codec.Error: %v", err)
			}
			return
		}
		var b1 bytes.Buffer
		if err := codec.EncodeOptions(&b1, opts); err != nil {
			t.Fatalf("re-encoding decoded options: %v", err)
		}
		opts2, err := codec.DecodeOptions(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		var b2 bytes.Buffer
		if err := codec.EncodeOptions(&b2, opts2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("Encode(Decode(Encode(o))) differs from Encode(o)")
		}
	})
}

// FuzzDecodeDesignDelta is the same contract for the design-delta
// document: arbitrary bytes either fail with a structured *codec.Error or
// decode to a delta whose re-encoding is byte-stable through a second
// round-trip. Seed corpus: testdata/fuzz/FuzzDecodeDesignDelta.
func FuzzDecodeDesignDelta(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"schema":"rdl-design-delta/v1"}`))
	f.Add([]byte(`{"schema":"rdl-design-delta/v2"}`))
	f.Add([]byte(`{"schema":"rdl-design-delta/v1","remove_nets":[-1]}`))
	f.Add([]byte(`{"schema":"rdl-design-delta/v1","add_nets":[{"id":1,"p1":{"kind":"laser","index":0},"p2":{"kind":"bump","index":0}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dl, err := codec.DecodeDesignDelta(bytes.NewReader(data))
		if err != nil {
			var ce *codec.Error
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *codec.Error: %v", err)
			}
			return
		}
		var b1 bytes.Buffer
		if err := codec.EncodeDesignDelta(&b1, dl); err != nil {
			t.Fatalf("re-encoding a decoded delta: %v", err)
		}
		dl2, err := codec.DecodeDesignDelta(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		var b2 bytes.Buffer
		if err := codec.EncodeDesignDelta(&b2, dl2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("Encode(Decode(Encode(dl))) differs from Encode(dl)")
		}
	})
}
