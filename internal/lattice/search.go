package lattice

import (
	"context"

	"rdlroute/internal/geom"
)

// The eight compass moves: index is the direction id used in search state.
var moves = [8]struct {
	dx, dy int
	diag   bool
}{
	{1, 0, false}, {1, 1, true}, {0, 1, false}, {-1, 1, true},
	{-1, 0, false}, {-1, -1, true}, {0, -1, false}, {1, -1, true},
}

// noDir is the direction id of a state with no incoming direction
// (search start or just after a via).
const noDir = 8

// turnOK reports whether moving in direction nd is legal after arriving in
// direction d: straight, 45° or 90° turns only (no 135° turns, no U-turns).
func turnOK(d, nd int) bool {
	if d == noDir {
		return true
	}
	diff := nd - d
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		diff = 8 - diff
	}
	return diff <= 2
}

// Request describes one net's routing query.
type Request struct {
	Net      int
	From, To geom.Point // must be lattice nodes
	// FromLayer and ToLayer are the wire layers of the two terminals.
	FromLayer, ToLayer int
	// LayerMask, when non-nil, restricts which wire layers may carry wire;
	// vias may only join two allowed layers.
	LayerMask []bool
	// RegionMask, when non-nil, restricts wire nodes to the rasterized
	// region (one bit test per probe). Terminal nodes are always allowed.
	// It takes precedence over Region.
	RegionMask *RegionMask
	// Region, when non-nil and RegionMask is nil, restricts wire nodes to
	// Region(layer, pt). Terminal nodes are always allowed. This is the
	// fallback path for callers with regions that are impractical to
	// rasterize; per-net hot paths should build a RegionMask instead.
	Region func(layer int, p geom.Point) bool
	// ViaCost is the cost of one layer change (default 3·pitch).
	ViaCost float64
	// MaxCost aborts the search when the best reachable cost exceeds it
	// (default 4·direct + 40·pitch).
	MaxCost float64
	// IgnoreForeign treats other nets' wire and via claims as free (hard
	// blockages still block): a ghost search used by rip-up planning to
	// find which nets stand in the way.
	IgnoreForeign bool
	// Stats, when non-nil, receives the search-effort counters of this
	// call (nodes expanded/visited), whether or not a path was found.
	Stats *SearchStats
	// Ctx, when non-nil, makes the search cancellable: the expansion loop
	// polls it every cancelPollPeriod pops and gives up (ok=false) once the
	// context is done. The lattice is never mutated by a search, so an
	// aborted search leaves no partial state behind; callers distinguish
	// cancellation from unroutability by checking Ctx.Err() afterwards.
	Ctx context.Context
}

// cancelPollPeriod is how many expansions pass between Request.Ctx polls:
// frequent enough that a deadlined search aborts within microseconds, rare
// enough that the atomic load inside Context.Err stays off the profile.
const cancelPollPeriod = 512

// SearchStats reports one A* search's effort.
type SearchStats struct {
	// NodesExpanded counts states popped from the frontier and finalized.
	NodesExpanded int
	// NodesVisited counts state relaxations (frontier pushes).
	NodesVisited int
}

// SearchWindow returns the inclusive node-index window that a Route call
// with these terminals and cost budget can ever usefully expand. For a
// node offset m beyond the terminals' bounding box on one axis, both the
// path cost from the start and the octilinear heuristic to the goal are
// ≥ m, so f ≥ 2m + axis-gap; the window is sized so that every outside
// node has f > maxCost and would be discarded anyway. maxCost ≤ 0 means
// the Route default (4·direct + 40·pitch). Callers that rasterize a
// RegionMask use the same window so mask and search clipping agree.
func (la *Lattice) SearchWindow(from, to geom.Point, maxCost float64) (i0, j0, i1, j1 int) {
	if maxCost <= 0 {
		maxCost = 4*geom.OctDist(from, to) + 40*float64(la.Pitch)
	}
	slack := func(gap int64) int64 {
		s := (maxCost - float64(gap)) / 2
		if s < 0 {
			s = 0
		}
		return int64(s) + 2*la.Pitch // safety margin over the exact bound
	}
	dx := geom.Abs64(from.X - to.X)
	dy := geom.Abs64(from.Y - to.Y)
	mx, my := slack(dx), slack(dy)
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	i0 = clamp(int((geom.Min64(from.X, to.X)-mx-la.X0)/la.Pitch)-1, la.NX-1)
	i1 = clamp(int((geom.Max64(from.X, to.X)+mx-la.X0)/la.Pitch)+1, la.NX-1)
	j0 = clamp(int((geom.Min64(from.Y, to.Y)-my-la.Y0)/la.Pitch)-1, la.NY-1)
	j1 = clamp(int((geom.Max64(from.Y, to.Y)+my-la.Y0)/la.Pitch)+1, la.NY-1)
	return
}

// recordSearch publishes one search's effort to the caller and the
// attached tracer.
func (la *Lattice) recordSearch(req *Request, expanded, visited int, ok bool) {
	if req.Stats != nil {
		req.Stats.NodesExpanded = expanded
		req.Stats.NodesVisited = visited
	}
	if la.tr != nil {
		la.tr.Count("astar.searches", 1)
		if !ok {
			la.tr.Count("astar.failures", 1)
		}
		la.tr.Observe("astar.expanded", float64(expanded))
		la.tr.Observe("astar.visited", float64(visited))
	}
}

// searchState holds reusable A* buffers (epoch-stamped).
type searchState struct {
	dist  []float64
	prev  []int32
	epoch []uint32
	done  []uint32
	cur   uint32
	heap  pqueue
}

// pqEntry keeps priority and state id adjacent so each heap sift touches
// one cache line per node instead of two parallel arrays.
type pqEntry struct {
	pri float64
	id  int32
}

type pqueue struct {
	e []pqEntry
}

func (h *pqueue) reset() { h.e = h.e[:0] }

func (h *pqueue) push(p float64, id int32) {
	h.e = append(h.e, pqEntry{p, id})
	i := len(h.e) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.e[parent].pri <= h.e[i].pri {
			break
		}
		h.e[i], h.e[parent] = h.e[parent], h.e[i]
		i = parent
	}
}

func (h *pqueue) pop() (float64, int32) {
	top := h.e[0]
	n := len(h.e) - 1
	h.e[0] = h.e[n]
	h.e = h.e[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.e[l].pri < h.e[m].pri {
			m = l
		}
		if r < n && h.e[r].pri < h.e[m].pri {
			m = r
		}
		if m == i {
			break
		}
		h.e[i], h.e[m] = h.e[m], h.e[i]
		i = m
	}
	return top.pri, top.id
}

func (h *pqueue) empty() bool { return len(h.e) == 0 }

// stateID packs (layer, j, i, dir) into an int32.
func (la *Lattice) stateID(l, i, j, dir int) int32 {
	return int32(((l*la.NY+j)*la.NX+i)*9 + dir)
}

func (la *Lattice) unpack(s int32) (l, i, j, dir int) {
	dir = int(s % 9)
	s /= 9
	i = int(s) % la.NX
	s /= int32(la.NX)
	j = int(s) % la.NY
	l = int(s) / la.NY
	return
}

// ensure sizes the buffers for n states and opens a new search epoch.
func (ss *searchState) ensure(n int) {
	if len(ss.dist) < n {
		ss.dist = make([]float64, n)
		ss.prev = make([]int32, n)
		ss.epoch = make([]uint32, n)
		ss.done = make([]uint32, n)
	}
	ss.cur++
	ss.heap.reset()
}

func (la *Lattice) ensureSearch() *searchState {
	if la.search == nil {
		la.search = &searchState{}
	}
	la.search.ensure(la.Layers * la.NX * la.NY * 9)
	return la.search
}

// routePrep validates the request's terminals and applies the cost
// defaults. A false return is a pre-search rejection: the seed behavior is
// to report nothing (no tracer counters, no memo entry) for such requests.
func (la *Lattice) routePrep(req *Request) bool {
	_, _, ok1 := la.NodeAt(req.From)
	_, _, ok2 := la.NodeAt(req.To)
	if !ok1 || !ok2 {
		return false
	}
	if req.ViaCost == 0 {
		req.ViaCost = 3 * float64(la.Pitch)
	}
	if req.MaxCost == 0 {
		req.MaxCost = 4*geom.OctDist(req.From, req.To) + 40*float64(la.Pitch)
	}
	layerAllowed := func(l int) bool {
		return req.LayerMask == nil || (l < len(req.LayerMask) && req.LayerMask[l])
	}
	return layerAllowed(req.FromLayer) && layerAllowed(req.ToLayer)
}

// coreResult is one A* execution's complete outcome, before any tracer or
// memo side effects.
type coreResult struct {
	path      []PathStep
	cost      float64
	ok        bool
	expanded  int
	visited   int
	cancelled bool
}

// Route finds a DRC-clean path for the request, or ok=false. The returned
// path is a sequence of steps; consecutive same-layer steps with collinear
// direction are merged into maximal segments.
func (la *Lattice) Route(req Request) (path []PathStep, cost float64, ok bool) {
	if !la.routePrep(&req) {
		return nil, 0, false
	}

	// Memo consult: with a memo attached and a hashable request (the
	// Region closure is opaque, so such requests always search live), a
	// recorded entry whose request key matches and whose block snapshot
	// still holds proves the search would be re-derived bit for bit —
	// serve it, replaying the recorded effort so tracer streams match a
	// cold run. Recording skips context-cancelled searches: their outcome
	// reflects the deadline, not the lattice.
	memoOK := la.j != nil && la.j.memo != nil && req.Region == nil
	var mkey memoKey
	if memoOK {
		mkey = la.memoKeyFor(&req)
		if e, hit := la.j.memo.lookup(mkey, la.j); hit {
			la.recordSearch(&req, e.expanded, e.visited, e.ok)
			if !e.ok {
				return nil, 0, false
			}
			p := make([]PathStep, len(e.path))
			copy(p, e.path)
			return p, e.cost, true
		}
	}
	var fp *fpScratch
	if memoOK {
		fp = &la.j.fp
	}
	r := la.routeCore(&req, la.ensureSearch(), fp)
	la.recordSearch(&req, r.expanded, r.visited, r.ok)
	if r.cancelled {
		return nil, 0, false
	}
	if memoOK {
		e := &memoEntry{ok: r.ok, cost: r.cost, expanded: r.expanded, visited: r.visited,
			snap: fp.snapshot(la.j)}
		if len(r.path) > 0 {
			e.path = make([]PathStep, len(r.path))
			copy(e.path, r.path)
		}
		la.j.memo.store(mkey, e)
	}
	return r.path, r.cost, r.ok
}

// routeCore is the A* engine shared by the sequential Route path and the
// speculative SpecRoute path: it reads occupancy (never mutating the
// lattice), expands states in the caller's searchState, and — when fp is
// non-nil — marks the footprint of every popped node against the attached
// journal. It performs no tracer or memo side effects; callers own those.
func (la *Lattice) routeCore(req *Request, ss *searchState, fp *fpScratch) coreResult {
	fi, fj, _ := la.NodeAt(req.From)
	ti, tj, _ := la.NodeAt(req.To)
	layerAllowed := func(l int) bool {
		return req.LayerMask == nil || (l < len(req.LayerMask) && req.LayerMask[l])
	}
	goalNode := la.idx(ti, tj)
	isTerminal := func(i, j int) bool {
		return (i == fi && j == fj) || (i == ti && j == tj)
	}
	regionOK := func(l, i, j int) bool {
		if req.RegionMask != nil {
			return req.RegionMask.Allowed(l, i, j) || isTerminal(i, j)
		}
		if req.Region == nil || isTerminal(i, j) {
			return true
		}
		return req.Region(l, la.NodePoint(i, j))
	}

	// Search window: nodes outside it provably have f > MaxCost (each
	// axis offset is a lower bound on both the cost so far and the
	// remaining heuristic), so clipping expansion to it cannot change the
	// search outcome — it only stops the frontier from flooding the whole
	// lattice on hard or unroutable nets.
	wi0, wj0, wi1, wj1 := la.SearchWindow(req.From, req.To, req.MaxCost)

	// Footprint of the live search: the block set of popped nodes (plus the
	// start probe), each grown by the two-node read reach mark applies.
	if fp != nil {
		fp.reset(la.j.nbx * la.j.nby)
		fp.mark(la.j, fi, fj)
	}

	wireOK := func(l, i, j int) bool {
		if req.IgnoreForeign {
			return la.wireOcc[l*la.NX*la.NY+la.idx(i, j)] != hard
		}
		return la.WireFree(l, i, j, req.Net)
	}
	viaOK := func(s, i, j int) bool {
		if req.IgnoreForeign {
			n := la.NX * la.NY
			return la.viaOcc[s*n+la.idx(i, j)] != hard &&
				la.wireOcc[s*n+la.idx(i, j)] != hard &&
				la.wireOcc[(s+1)*n+la.idx(i, j)] != hard
		}
		return la.ViaFree(s, i, j, req.Net)
	}

	h := func(i, j, l int) float64 {
		d := geom.OctDist(la.NodePoint(i, j), req.To)
		dl := l - req.ToLayer
		if dl < 0 {
			dl = -dl
		}
		return d + float64(dl)*req.ViaCost
	}

	expanded, visited := 0, 0
	relax := func(s int32, d float64, from int32, fpri float64) {
		if ss.epoch[s] != ss.cur || d < ss.dist[s] {
			ss.epoch[s] = ss.cur
			ss.dist[s] = d
			ss.prev[s] = from
			ss.heap.push(fpri, s)
			visited++
		}
	}

	start := la.stateID(req.FromLayer, fi, fj, noDir)
	if !wireOK(req.FromLayer, fi, fj) {
		return coreResult{}
	}
	relax(start, 0, -1, h(fi, fj, req.FromLayer))

	for !ss.heap.empty() {
		f, s := ss.heap.pop()
		if ss.done[s] == ss.cur {
			continue
		}
		ss.done[s] = ss.cur
		expanded++
		if req.Ctx != nil && expanded%cancelPollPeriod == 0 && req.Ctx.Err() != nil {
			return coreResult{expanded: expanded, visited: visited, cancelled: true}
		}
		if f > req.MaxCost {
			return coreResult{expanded: expanded, visited: visited}
		}
		l, i, j, dir := la.unpack(s)
		if fp != nil {
			fp.mark(la.j, i, j)
		}
		if l == req.ToLayer && la.idx(i, j) == goalNode {
			return coreResult{path: la.rebuild(ss, s), cost: ss.dist[s], ok: true,
				expanded: expanded, visited: visited}
		}
		d := ss.dist[s]
		// Wire moves.
		for nd, mv := range moves {
			if !turnOK(dir, nd) {
				continue
			}
			ni, nj := i+mv.dx, j+mv.dy
			if ni < wi0 || nj < wj0 || ni > wi1 || nj > wj1 {
				continue
			}
			if !wireOK(l, ni, nj) || !regionOK(l, ni, nj) {
				continue
			}
			if !la.edgeFree(l, i, j, nd, req.Net, req.IgnoreForeign) {
				continue
			}
			step := float64(la.Pitch)
			if mv.diag {
				step *= geom.Sqrt2
			}
			ns := la.stateID(l, ni, nj, nd)
			if ss.done[ns] == ss.cur {
				continue
			}
			nd2 := d + step
			pri := nd2 + h(ni, nj, l)
			if pri > req.MaxCost {
				// A consistent heuristic pops states in f order, so a
				// state over budget can never precede the goal of a
				// successful search; dropping it here instead of at pop
				// time keeps the frontier small without changing results.
				continue
			}
			relax(ns, nd2, s, pri)
		}
		// Via moves.
		for _, dl := range []int{-1, 1} {
			nl := l + dl
			if nl < 0 || nl >= la.Layers || !layerAllowed(nl) {
				continue
			}
			slab := l
			if nl < l {
				slab = nl
			}
			if !viaOK(slab, i, j) || !regionOK(nl, i, j) {
				continue
			}
			ns := la.stateID(nl, i, j, noDir)
			if ss.done[ns] == ss.cur {
				continue
			}
			nd2 := d + req.ViaCost
			pri := nd2 + h(i, j, nl)
			if pri > req.MaxCost {
				continue
			}
			relax(ns, nd2, s, pri)
		}
	}
	return coreResult{expanded: expanded, visited: visited}
}

// rebuild converts the predecessor chain into a compact step path with
// collinear runs merged.
func (la *Lattice) rebuild(ss *searchState, s int32) []PathStep {
	var raw []PathStep
	for cur := s; cur >= 0; cur = ss.prev[cur] {
		l, i, j, _ := la.unpack(cur)
		raw = append(raw, PathStep{Layer: l, Pt: la.NodePoint(i, j)})
	}
	// Reverse.
	for a, b := 0, len(raw)-1; a < b; a, b = a+1, b-1 {
		raw[a], raw[b] = raw[b], raw[a]
	}
	// Merge collinear same-layer runs.
	out := raw[:0]
	for k, st := range raw {
		if len(out) >= 2 {
			p0, p1 := out[len(out)-2], out[len(out)-1]
			if p0.Layer == p1.Layer && p1.Layer == st.Layer &&
				collinearDir(p0.Pt, p1.Pt, st.Pt) {
				out[len(out)-1] = st
				continue
			}
		}
		out = append(out, raw[k])
	}
	return out
}

func collinearDir(a, b, c geom.Point) bool {
	d1x, d1y := sign64(b.X-a.X), sign64(b.Y-a.Y)
	d2x, d2y := sign64(c.X-b.X), sign64(c.Y-b.Y)
	return d1x == d2x && d1y == d2y && geom.Cross(a, b, c) == 0
}

func sign64(v int64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
