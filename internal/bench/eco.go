package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/geom"
)

// ECORow is one circuit's incremental-rerouting measurement: cold route
// time against the latency of rerouting single-net edits through the
// recorded search memo.
type ECORow struct {
	Name        string  `json:"circuit"`
	Nets        int     `json:"nets"`
	Edits       int     `json:"edits"`
	ColdSeconds float64 `json:"cold_route_seconds"`
	P50Seconds  float64 `json:"reroute_p50_seconds"`
	MeanSeconds float64 `json:"reroute_mean_seconds"`
	SpeedupP50  float64 `json:"speedup_p50"`
	MemoHits    int     `json:"memo_hits"`
	MemoMisses  int     `json:"memo_misses"`
	// Identical reports the byte-identity check on the first edit: the
	// incremental reroute equals a cold route of the edited design
	// (fingerprint and canonical result encoding, runtime excluded).
	Identical bool `json:"identical"`
}

// oneNetEdit draws a random single-net ECO against d: move one endpoint
// pad of a random net by one lattice pitch. Draws are retried until the
// edit produces a valid design (a move that collides with another pad or
// leaves the fan-out region is rejected by eco.Apply).
func oneNetEdit(d *design.Design, rng *rand.Rand, pitch int64) (*eco.Delta, error) {
	dirs := []geom.Point{geom.Pt(pitch, 0), geom.Pt(-pitch, 0), geom.Pt(0, pitch), geom.Pt(0, -pitch)}
	for attempt := 0; attempt < 64; attempt++ {
		n := d.Nets[rng.Intn(len(d.Nets))]
		ref := n.P1
		if rng.Intn(2) == 1 {
			ref = n.P2
		}
		to := d.PadCenter(ref).Add(dirs[rng.Intn(len(dirs))])
		dl := &eco.Delta{Name: d.Name}
		if ref.Kind == design.IOKind {
			dl.MoveIOPads = []eco.MovePad{{Index: ref.Index, To: to}}
		} else {
			dl.MoveBumpPads = []eco.MovePad{{Index: ref.Index, To: to}}
		}
		if _, err := eco.Apply(d, dl); err == nil {
			return dl, nil
		}
	}
	return nil, fmt.Errorf("bench: no valid single-net edit found for %s after 64 draws", d.Name)
}

// resultBytes canonicalizes a result for the identity check: the
// rdl-result/v1 encoding with the wall-clock runtime zeroed.
func resultBytes(p *eco.Plan) ([]byte, error) {
	res := *p.Result
	res.Runtime = 0
	var buf bytes.Buffer
	if err := codec.EncodeResult(&buf, &res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RunECO measures incremental ECO rerouting on each circuit: one cold
// route recording the search memo, then `edits` independent single-net
// edits rerouted against it. The first edit of every circuit is also
// cold-routed to verify the incremental result is byte-identical. Edits
// are drawn from a fixed seed, so reports are reproducible.
func RunECO(names []string, edits int) ([]ECORow, error) {
	rows := make([]ECORow, 0, len(names))
	for ci, name := range names {
		spec, err := design.DenseSpec(name)
		if err != nil {
			return nil, err
		}
		d, err := design.Generate(spec)
		if err != nil {
			return nil, err
		}
		ctx, cancel := timeoutCtx()
		opts := routerOptions()

		t0 := time.Now()
		base, err := eco.Route(ctx, d, opts)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("%s cold route: %w", name, err)
		}
		cold := time.Since(t0)

		rng := rand.New(rand.NewSource(0x9e3779b9*int64(ci) + 1))
		row := ECORow{Name: name, Nets: len(d.Nets), Edits: edits,
			ColdSeconds: cold.Seconds(), Identical: true}
		durs := make([]float64, 0, edits)
		for k := 0; k < edits; k++ {
			dl, err := oneNetEdit(d, rng, opts.Pitch)
			if err != nil {
				cancel()
				return nil, err
			}
			t1 := time.Now()
			inc, err := base.Reroute(ctx, dl, opts)
			if err != nil {
				cancel()
				return nil, fmt.Errorf("%s edit %d reroute: %w", name, k, err)
			}
			durs = append(durs, time.Since(t1).Seconds())
			h, m, _ := inc.MemoStats()
			row.MemoHits += h
			row.MemoMisses += m

			if k == 0 {
				coldPlan, err := eco.Route(ctx, inc.Design, opts)
				if err != nil {
					cancel()
					return nil, fmt.Errorf("%s edit 0 cold verify: %w", name, err)
				}
				ib, err1 := resultBytes(inc)
				cb, err2 := resultBytes(coldPlan)
				if err1 != nil || err2 != nil {
					cancel()
					return nil, fmt.Errorf("%s identity encode: %v / %v", name, err1, err2)
				}
				row.Identical = inc.Fingerprint == coldPlan.Fingerprint && bytes.Equal(ib, cb)
			}
		}
		cancel()

		sort.Float64s(durs)
		row.P50Seconds = durs[len(durs)/2]
		for _, s := range durs {
			row.MeanSeconds += s
		}
		row.MeanSeconds /= float64(len(durs))
		if row.P50Seconds > 0 {
			row.SpeedupP50 = row.ColdSeconds / row.P50Seconds
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatECO renders the ECO rows as the EXPERIMENTS.md table.
func FormatECO(rows []ECORow) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%-8s %5s %6s %10s %12s %12s %8s %12s %10s\n",
		"circuit", "nets", "edits", "cold", "reroute p50", "reroute mean", "speedup", "memo h/m", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %5d %6d %9.2fs %11.2fs %11.2fs %7.2fx %12s %10v\n",
			r.Name, r.Nets, r.Edits, r.ColdSeconds, r.P50Seconds, r.MeanSeconds, r.SpeedupP50,
			fmt.Sprintf("%d/%d", r.MemoHits, r.MemoMisses), r.Identical)
	}
	return b.String()
}
