package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); !got.Eq(Pt(2, 6)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(4, 2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(3); !got.Eq(Pt(9, 12)) {
		t.Errorf("Scale = %v", got)
	}
	if p.Eq(q) {
		t.Error("Eq on distinct points")
	}
	if p.String() != "(3,4)" {
		t.Errorf("String = %q", p.String())
	}
}

func TestCrossSign(t *testing.T) {
	// r left of p->q gives positive cross.
	p, q := Pt(0, 0), Pt(10, 0)
	if Cross(p, q, Pt(5, 3)) <= 0 {
		t.Error("point above x-axis should be left of east-directed line")
	}
	if Cross(p, q, Pt(5, -3)) >= 0 {
		t.Error("point below x-axis should be right of east-directed line")
	}
	if Cross(p, q, Pt(42, 0)) != 0 {
		t.Error("collinear point should give zero cross")
	}
}

func TestDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if got := Euclid(p, q); math.Abs(got-5) > 1e-12 {
		t.Errorf("Euclid = %v", got)
	}
	if got := Manhattan(p, q); got != 7 {
		t.Errorf("Manhattan = %v", got)
	}
	// Octilinear distance of a pure diagonal is len*sqrt2.
	if got := OctDist(Pt(0, 0), Pt(5, 5)); math.Abs(got-5*Sqrt2) > 1e-9 {
		t.Errorf("OctDist diagonal = %v", got)
	}
	// Octilinear distance of an axis move is the Manhattan distance.
	if got := OctDist(Pt(0, 0), Pt(9, 0)); got != 9 {
		t.Errorf("OctDist axis = %v", got)
	}
	// General case: max + (sqrt2-1)*min.
	if got := OctDist(Pt(0, 0), Pt(3, 7)); math.Abs(got-(7+(Sqrt2-1)*3)) > 1e-9 {
		t.Errorf("OctDist general = %v", got)
	}
}

func TestOctDistProperties(t *testing.T) {
	// Symmetry and the Euclid ≤ Oct ≤ Manhattan sandwich.
	f := func(ax, ay, bx, by int16) bool {
		p := Pt(int64(ax), int64(ay))
		q := Pt(int64(bx), int64(by))
		d := OctDist(p, q)
		if math.Abs(d-OctDist(q, p)) > 1e-9 {
			return false
		}
		return d >= Euclid(p, q)-1e-9 && d <= float64(Manhattan(p, q))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOctDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(int64(ax), int64(ay))
		b := Pt(int64(bx), int64(by))
		c := Pt(int64(cx), int64(cy))
		return OctDist(a, c) <= OctDist(a, b)+OctDist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min64(3, -2) != -2 || Max64(3, -2) != 3 {
		t.Error("Min64/Max64")
	}
	if Abs64(-7) != 7 || Abs64(7) != 7 || Abs64(0) != 0 {
		t.Error("Abs64")
	}
}
