package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/metrics"
	"rdlroute/internal/router"
)

// JobSchema is the schema identifier of job submissions.
const JobSchema = "rdl-job/v1"

// jobRequest is the POST /v1/jobs body. Exactly one of Benchmark, Design
// or Delta selects the circuit; Design, Delta and Options are nested
// codec documents carrying their own schema fields. A Delta request
// routes the edited design produced by applying the delta to the base
// design its "base" hash names — the base must be resident in the
// server's result cache (route it first), and when the cached run
// recorded a search memo the job reroutes incrementally.
type jobRequest struct {
	Schema    string          `json:"schema"`
	Benchmark string          `json:"benchmark,omitempty"` // "dense1".."dense5"
	Design    json.RawMessage `json:"design,omitempty"`    // rdl-design/v1 document
	Delta     json.RawMessage `json:"delta,omitempty"`     // rdl-design-delta/v1 document
	Options   json.RawMessage `json:"options,omitempty"`   // rdl-options/v1 document
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

// jobView is the wire view of a job (POST and GET responses).
type jobView struct {
	ID        string          `json:"id"`
	State     JobState        `json:"state"`
	Error     string          `json:"error,omitempty"`
	RuntimeMS float64         `json:"runtime_ms,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"` // rdl-result/v1 document when done
}

// errorView is the wire shape of every non-2xx response body.
type errorView struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"` // codec errors: syntax | schema | validate
	Path  string `json:"path,omitempty"` // codec errors: JSON path of the offense
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	ev := errorView{Error: err.Error()}
	var ce *codec.Error
	if errors.As(err, &ce) {
		ev.Kind = ce.Kind.String()
		ev.Path = ce.Path
	}
	writeJSON(w, status, ev)
}

// Handler returns the HTTP API of the server. Every route is
// instrumented (request counter + latency histogram per route) and
// request-logged with job-ID correlation where one applies.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/jobs", s.handleSubmit)
	route("GET /v1/jobs/{id}", s.handleGet)
	route("POST /v1/jobs/{id}/cancel", s.handleCancel)
	route("GET /v1/jobs/{id}/trace", s.handleTrace)
	route("GET /v1/debug/jobs", s.handleFlightList)
	route("GET /v1/debug/jobs/{id}", s.handleFlightGet)
	route("GET /healthz", s.handleHealth)
	route("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response code for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-route request counter, latency
// histogram, and a structured request log line. The route label is the
// mux pattern, not the raw path, so the series stay low-cardinality.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		dt := time.Since(t0)
		s.met.httpReqs.With(pattern, strconv.Itoa(sw.code)).Inc()
		s.met.httpDur.With(pattern).Observe(dt.Seconds())
		attrs := []any{"method", r.Method, "path", r.URL.Path,
			"status", sw.code, "duration_ms", float64(dt) / float64(time.Millisecond)}
		if id := r.PathValue("id"); id != "" {
			attrs = append(attrs, "job", id)
		}
		s.log.Info("http request", attrs...)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("job body: %w", err))
		return
	}
	if req.Schema != JobSchema {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("job schema %q (want %q)", req.Schema, JobSchema))
		return
	}

	var d *design.Design
	var basePlan *eco.Plan
	selected := 0
	for _, set := range []bool{req.Benchmark != "", req.Design != nil, req.Delta != nil} {
		if set {
			selected++
		}
	}
	switch {
	case selected > 1:
		writeError(w, http.StatusBadRequest,
			errors.New("set exactly one of benchmark, design and delta"))
		return
	case req.Delta != nil:
		dl, err := codec.DecodeDesignDelta(bytes.NewReader(req.Delta))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if dl.Base == "" {
			writeError(w, http.StatusBadRequest,
				errors.New(`delta has no base hash (set "base" to the design's content hash)`))
			return
		}
		base, plan, ok := s.cache.base(dl.Base)
		if !ok {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("base design %s not in the result cache (route it first, then resubmit the delta)", dl.Base))
			return
		}
		if d, err = eco.Apply(base, dl); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("delta does not apply: %w", err))
			return
		}
		basePlan = plan
	case req.Benchmark != "":
		spec, err := design.DenseSpec(req.Benchmark)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if d, err = design.Generate(spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Design != nil:
		var err error
		if d, err = codec.DecodeDesign(bytes.NewReader(req.Design)); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest,
			errors.New("set one of benchmark, design and delta"))
		return
	}

	opts := router.DefaultOptions()
	if req.Options != nil {
		var err error
		if opts, err = codec.DecodeOptions(bytes.NewReader(req.Options)); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	j, err := s.submitJob(d, opts, timeout, r.Header.Get("Idempotency-Key"), basePlan)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.viewOf(j))
}

// viewOf snapshots a job into its wire view.
func (s *Server) viewOf(j *Job) jobView {
	s.mu.Lock()
	v := jobView{ID: j.ID, State: j.State}
	if j.Err != nil {
		v.Error = j.Err.Error()
	}
	res := j.Result
	if !j.Finished.IsZero() && !j.Started.IsZero() {
		v.RuntimeMS = float64(j.Finished.Sub(j.Started)) / float64(time.Millisecond)
	}
	s.mu.Unlock()
	if res != nil {
		var buf bytes.Buffer
		if err := codec.EncodeResult(&buf, res); err == nil {
			v.Result = buf.Bytes()
		}
	}
	return v
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, s.viewOf(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	if !s.Cancel(id) {
		writeError(w, http.StatusConflict, errors.New("job already finished"))
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusOK, s.viewOf(j))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	w.Write(j.Trace())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"workers": s.cfg.Workers,
		"queue":   s.cfg.QueueDepth,
		"queued":  m.Queued,
		"running": m.Running,
	})
}

// handleMetrics serves the production metrics. The default is the
// Prometheus text exposition format; the pre-PR-6 JSON shape stays
// available to existing clients via Accept: application/json or
// ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	wantJSON := r.URL.Query().Get("format") == "json" ||
		(strings.Contains(accept, "application/json") && !strings.Contains(accept, "text/plain"))
	if wantJSON {
		writeJSON(w, http.StatusOK, map[string]any{
			"jobs": s.Metrics(),
			"obs":  s.Obs(),
		})
		return
	}
	w.Header().Set("Content-Type", metrics.TextContentType)
	w.WriteHeader(http.StatusOK)
	s.cfg.Registry.WriteText(w)
}

// flightListView is the GET /v1/debug/jobs body.
type flightListView struct {
	Total    int64          `json:"total_recorded"`
	Capacity int            `json:"capacity"`
	Jobs     []FlightRecord `json:"jobs"`
}

func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	recs, total := s.flight.list()
	writeJSON(w, http.StatusOK, flightListView{
		Total:    total,
		Capacity: s.cfg.FlightSize,
		Jobs:     recs,
	})
}

func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.flight.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no flight record (job unknown, still in flight, or evicted)"))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
