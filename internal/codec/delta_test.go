package codec_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/geom"
)

func sampleDelta() *eco.Delta {
	return &eco.Delta{
		Base: "0123abcd",
		Name: "edited",
		MoveIOPads: []eco.MovePad{
			{Index: 2, To: geom.Pt(120, 480)},
		},
		MoveObstacles: []eco.MoveObstacle{
			{Index: 0, To: geom.Pt(900, 900)},
		},
		AddIOPads: []design.IOPad{
			{ID: 77, Chip: 0, Center: geom.Pt(60, 60), HalfW: 12},
		},
		AddNets: []design.Net{
			{ID: 9, P1: design.PadRef{Kind: design.IOKind, Index: 1},
				P2: design.PadRef{Kind: design.BumpKind, Index: 4}},
		},
		AddObstacles: []design.Obstacle{
			{Layer: 1, Box: geom.RectWH(0, 0, 60, 60)},
		},
		RemoveNets:      []int{3},
		RemoveObstacles: []int{1},
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	dl := sampleDelta()
	var b1 bytes.Buffer
	if err := codec.EncodeDesignDelta(&b1, dl); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(b1.String(), `"rdl-design-delta/v1"`) {
		t.Fatalf("encoding lacks schema header:\n%s", b1.String())
	}
	got, err := codec.DecodeDesignDelta(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var b2 bytes.Buffer
	if err := codec.EncodeDesignDelta(&b2, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("round-trip not byte-stable:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if got.Base != dl.Base || got.Name != dl.Name ||
		len(got.MoveIOPads) != 1 || got.MoveIOPads[0] != dl.MoveIOPads[0] ||
		len(got.AddNets) != 1 || got.AddNets[0] != dl.AddNets[0] ||
		len(got.RemoveNets) != 1 || got.RemoveNets[0] != 3 {
		t.Fatalf("decoded delta differs: %+v", got)
	}
}

func TestDeltaDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		kind codec.Kind
		path string
	}{
		{"garbage", "{", codec.KindSyntax, "$"},
		{"wrong-schema", `{"schema":"rdl-design/v1"}`, codec.KindSchema, "schema"},
		{"bad-kind", `{"schema":"rdl-design-delta/v1","add_nets":[{"id":1,"p1":{"kind":"laser","index":0},"p2":{"kind":"bump","index":0}}]}`,
			codec.KindValidate, "add_nets[0].p1.kind"},
		{"negative-move", `{"schema":"rdl-design-delta/v1","move_io_pads":[{"index":-4,"to":[0,0]}]}`,
			codec.KindValidate, "move_io_pads[0].index"},
		{"negative-remove", `{"schema":"rdl-design-delta/v1","remove_nets":[0,-2]}`,
			codec.KindValidate, "remove_nets[1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := codec.DecodeDesignDelta(strings.NewReader(tc.in))
			var ce *codec.Error
			if !errors.As(err, &ce) {
				t.Fatalf("want *codec.Error, got %v", err)
			}
			if ce.Kind != tc.kind || ce.Path != tc.path {
				t.Fatalf("got kind=%v path=%q, want kind=%v path=%q (%v)",
					ce.Kind, ce.Path, tc.kind, tc.path, ce)
			}
		})
	}
}

func TestDesignHash(t *testing.T) {
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	h1, err := codec.DesignHash(d)
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	h2, _ := codec.DesignHash(d)
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash not stable or not sha256 hex: %q vs %q", h1, h2)
	}
	edited, err := eco.Apply(d, &eco.Delta{RemoveNets: []int{0}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	h3, _ := codec.DesignHash(edited)
	if h3 == h1 {
		t.Fatal("edited design hashes identically to base")
	}
}
