// Command rdlserver serves the five-stage routing flow over HTTP: a
// bounded job queue in front of a fixed worker pool, with per-job
// timeouts, 429 backpressure when the queue is full, idempotency keys and
// graceful drain on SIGINT/SIGTERM.
//
// API (JSON everywhere; schemas are versioned, see README):
//
//	POST /v1/jobs             submit {"schema":"rdl-job/v1", "benchmark":"dense1"}
//	                          or an inline rdl-design/v1 document; 202 + job id
//	GET  /v1/jobs/{id}        job state; embeds the rdl-result/v1 doc when done
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	GET  /v1/jobs/{id}/trace  the job's observability trace (JSONL)
//	GET  /healthz             liveness + queue occupancy
//	GET  /metrics             job counters + aggregated routing metrics
//
// Usage:
//
//	rdlserver -addr :8080 -workers 4 -queue 8 -job-timeout 5m
//	rdlserver -smoke                  # self-test: boot, route dense1, DRC-check
//	rdlserver -throughput 1,2,4       # jobs/min at several worker counts
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 2, "worker pool size")
		queue      = flag.Int("queue", 8, "job queue depth (excess submissions get 429)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "per-job routing deadline (0 = none)")
		routeW     = flag.Int("route-workers", 1, "default Options.Workers for jobs that submit 0: the per-job worker-pool bound inside the flow (results identical at every value)")
		drain      = flag.Duration("drain", time.Minute, "graceful-shutdown drain budget")
		smoke      = flag.Bool("smoke", false, "self-test: boot on a random port, route dense1 over HTTP, DRC-check, exit")
		throughput = flag.String("throughput", "", "comma-separated worker counts: measure jobs/min per count and exit")
		circuits   = flag.String("circuits", "dense1,dense2,dense3", "benchmark circuits for -throughput")
		jobs       = flag.Int("jobs", 4, "jobs per circuit for -throughput")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "rdlserver:", err)
		return 1
	}

	if *smoke {
		if err := runSmoke(*workers, *queue); err != nil {
			return fail(err)
		}
		fmt.Println("smoke: PASS")
		return 0
	}
	if *throughput != "" {
		if err := runThroughput(*throughput, *circuits, *jobs); err != nil {
			return fail(err)
		}
		return 0
	}

	s := serve.New(serve.Config{Workers: *workers, QueueDepth: *queue, JobTimeout: *jobTimeout, RouteWorkers: *routeW})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("rdlserver: listening on %s (workers %d, queue %d)\n", ln.Addr(), *workers, *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail(err)
	case <-ctx.Done():
	}
	fmt.Println("rdlserver: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "rdlserver: drain incomplete:", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fail(err)
	}
	fmt.Println("rdlserver: drained")
	return 0
}

// boot starts a server on a random loopback port and returns its base
// URL plus a shutdown function.
func boot(workers, queue int) (string, *serve.Server, func() error, error) {
	s := serve.New(serve.Config{Workers: workers, QueueDepth: queue})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return err
		}
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), s, stop, nil
}

type jobView struct {
	ID     string          `json:"id"`
	State  serve.JobState  `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func submitBenchmark(base, name string) (jobView, error) {
	var jv jobView
	body := fmt.Sprintf(`{"schema":%q,"benchmark":%q}`, serve.JobSchema, name)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return jv, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return jv, fmt.Errorf("submit %s: HTTP %d", name, resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&jv)
	return jv, err
}

func pollDone(base, id string, timeout time.Duration) (jobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jobView{}, err
		}
		var jv jobView
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			return jv, err
		}
		switch jv.State {
		case serve.JobDone:
			return jv, nil
		case serve.JobFailed, serve.JobCancelled:
			return jv, fmt.Errorf("job %s: %s (%s)", id, jv.State, jv.Error)
		}
		if time.Now().After(deadline) {
			return jv, fmt.Errorf("job %s: stuck in %s", id, jv.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// runSmoke boots a real server, routes dense1 through the HTTP API and
// asserts the decoded result is DRC-clean. verify.sh runs this in CI.
func runSmoke(workers, queue int) error {
	base, _, stop, err := boot(workers, queue)
	if err != nil {
		return err
	}
	defer stop()
	fmt.Printf("smoke: server at %s\n", base)

	jv, err := submitBenchmark(base, "dense1")
	if err != nil {
		return err
	}
	fmt.Printf("smoke: submitted %s\n", jv.ID)
	if jv, err = pollDone(base, jv.ID, 5*time.Minute); err != nil {
		return err
	}
	if jv.Result == nil {
		return errors.New("smoke: done job carries no result document")
	}
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		return err
	}
	d, err := design.Generate(spec)
	if err != nil {
		return err
	}
	res, err := codec.DecodeResult(bytes.NewReader(jv.Result), d)
	if err != nil {
		return err
	}
	if v := drc.Check(res.Layout); len(v) != 0 {
		return fmt.Errorf("smoke: %d DRC violations; first: %v", len(v), v[0])
	}
	fmt.Printf("smoke: dense1 routability %.1f%% wirelength %.0f, DRC clean\n",
		res.Routability, res.Wirelength)
	if err := stop(); err != nil {
		return fmt.Errorf("smoke: drain: %w", err)
	}
	return nil
}

// runThroughput measures jobs/min at each worker count: per circuit it
// submits -jobs copies and waits for all of them, all through the HTTP
// API (the EXPERIMENTS.md serving-throughput table).
func runThroughput(workerList, circuitList string, jobsPer int) error {
	var counts []int
	for _, f := range strings.Split(workerList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad worker count %q", f)
		}
		counts = append(counts, n)
	}
	circuits := strings.Split(circuitList, ",")
	fmt.Printf("%-8s %-28s %8s %10s\n", "workers", "circuits", "jobs", "jobs/min")
	for _, w := range counts {
		base, _, stop, err := boot(w, 2*jobsPer*len(circuits))
		if err != nil {
			return err
		}
		var ids []string
		t0 := time.Now()
		for _, c := range circuits {
			for i := 0; i < jobsPer; i++ {
				jv, err := submitBenchmark(base, strings.TrimSpace(c))
				if err != nil {
					stop()
					return err
				}
				ids = append(ids, jv.ID)
			}
		}
		for _, id := range ids {
			if _, err := pollDone(base, id, 10*time.Minute); err != nil {
				stop()
				return err
			}
		}
		dt := time.Since(t0)
		if err := stop(); err != nil {
			return err
		}
		fmt.Printf("%-8d %-28s %8d %10.1f\n",
			w, circuitList, len(ids), float64(len(ids))/dt.Minutes())
	}
	return nil
}
