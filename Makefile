GO ?= go

.PHONY: build test verify verify-short bench bench-json bench-scaling bench-spec bench-eco bench-portfolio serve serve-smoke serve-bench metrics-smoke fmt qa qa-metrics fuzz

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

# Stricter local gate: build + vet + full suite under the race detector.
verify:
	sh scripts/verify.sh

# Quick race pass (skips the dense benchmarks and randomized sweeps).
verify-short:
	sh scripts/verify.sh -short

bench:
	$(GO) run ./cmd/rdlbench -all -quick

# Machine-readable perf baseline for the full Table-I sweep; compare the
# committed BENCH_seed.json / BENCH_pr2.json per EXPERIMENTS.md.
BENCH_JSON ?= BENCH_pr2.json
bench-json:
	$(GO) run ./cmd/rdlbench -table1 -json $(BENCH_JSON)

# Worker-scaling sweep: every circuit at workers 1/2/4/8, with a
# determinism check per cell (fingerprint + metrics vs the workers=1
# run). Wall times only mean speedup on a multi-core machine; the
# determinism column must read "yes" everywhere regardless.
SCALING_JSON ?= BENCH_pr5.json
bench-scaling:
	$(GO) run ./cmd/rdlbench -scaling -scaling-workers 1,2,4,8 -json $(SCALING_JSON)

# Incremental ECO sweep: cold route each circuit once, then reroute
# single-net edits through the recorded search memo; each row carries a
# byte-identity check against a cold route of the edited design
# (identical must read "true" everywhere — see EXPERIMENTS.md).
# Speculative-scaling sweep: the worker-scaling table with the
# speculative stage-4 scheduler engaged (first cell stays the
# plain-sequential identity baseline). Each cell carries the same
# fingerprint + metrics identity check; "yes" everywhere is the
# byte-identity story, wall times are the speedup story.
SPEC_JSON ?= BENCH_pr9.json
bench-spec:
	$(GO) run ./cmd/rdlbench -scaling -speculative -scaling-workers 1,2,4,8 -json $(SPEC_JSON)

ECO_JSON ?= BENCH_pr8.json
bench-eco:
	$(GO) run ./cmd/rdlbench -eco -json $(ECO_JSON)

# Ordering-portfolio sweep: each circuit routed with the default
# single-policy flow and with the first 6 ordering-registry policies
# raced through stage 4, plus a winner-equals-solo byte-identity check
# per circuit ("Det" must read "yes" everywhere — see EXPERIMENTS.md).
PORTFOLIO_JSON ?= BENCH_pr10.json
bench-portfolio:
	$(GO) run ./cmd/rdlbench -portfolio -portfolio-k 6 -json $(PORTFOLIO_JSON)

# Boot the HTTP routing service on :8080 (SIGINT/SIGTERM drain gracefully).
serve:
	$(GO) run ./cmd/rdlserver -addr :8080 -workers 4 -queue 8

# CI smoke: boot on a random port, route dense1 over HTTP, assert DRC-clean.
serve-smoke:
	$(GO) run ./cmd/rdlserver -smoke

# Serving throughput (jobs/min) at 1/2/4 workers on dense1..dense3; the
# numbers feed the EXPERIMENTS.md serving-throughput note.
serve-bench:
	$(GO) run ./cmd/rdlserver -throughput 1,2,4 -circuits dense1,dense2,dense3 -jobs 4

# Metrics smoke: boot a server, route dense1, validate the /metrics
# exposition with the in-repo parser and dump it for eyeballing.
metrics-smoke:
	$(GO) run ./cmd/rdlserver -smoke -print-metrics

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)

# Randomized DRC-oracle harness: 200 seeded designs through both routers
# with the full oracle suite (see the QA harness section of EXPERIMENTS.md).
qa:
	$(GO) test ./internal/qa -count=1 -v

# Observability determinism gate: routing with the metrics bridge
# attached must be byte-identical to routing with no tracer.
qa-metrics:
	$(GO) test ./internal/qa -count=1 -v -run TestMetricsBridgeDeterminism

# 10s smoke of every native fuzz target; lengthen one with e.g.
#   go test ./internal/geom -fuzz FuzzOct8Ops -fuzztime 60s
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/codec -run '^$$' -fuzz '^FuzzDecodeDesign$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/codec -run '^$$' -fuzz '^FuzzDecodeOptions$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/codec -run '^$$' -fuzz '^FuzzDecodeDesignDelta$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/geom -run '^$$' -fuzz '^FuzzOct8Ops$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lp -run '^$$' -fuzz '^FuzzSimplex$$' -fuzztime $(FUZZTIME)
