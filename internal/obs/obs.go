// Package obs is the stdlib-only observability layer threaded through the
// five-stage routing flow. It provides a Tracer interface with span, event,
// counter and distribution primitives, three built-in sinks — Nop (the
// zero-overhead default), a JSONL event writer, and an in-memory Collector
// for tests and snapshots — and pprof-labeled stage spans so CPU profiles
// attribute samples per pipeline stage.
//
// Emitters follow one discipline: every call site that constructs
// attributes first checks Enabled(), so a routing run with no tracer
// attached allocates no obs objects on the hot path:
//
//	if tr.Enabled() {
//		tr.Event("net.route", obs.Int("net", ni), obs.String("stage", "sequential"))
//	}
//
// All sinks are safe for concurrent use by multiple goroutines.
package obs

import "time"

// Tracer receives spans, events, counters and distribution samples from
// the routing flow. Implementations must be safe for concurrent use.
type Tracer interface {
	// Enabled reports whether the tracer records anything. Hot paths must
	// check it before constructing attributes.
	Enabled() bool
	// Span opens a span; call End on the result to close it.
	Span(name string, attrs ...Attr) Span
	// Event records a point-in-time event.
	Event(name string, attrs ...Attr)
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Observe records one sample of the named distribution.
	Observe(name string, v float64)
}

// Span is an open interval of work; End closes it, attaching final attrs.
type Span interface {
	End(attrs ...Attr)
}

// Snapshotter is implemented by tracers that can summarize everything they
// recorded (the Collector, and Multi when any child can).
type Snapshotter interface {
	Snapshot() *Snapshot
}

// attrKind discriminates the value stored in an Attr.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one key/value attribute attached to a span or event. The value
// is stored unboxed so building attrs does not allocate per value.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	n    int64
	f    float64
}

// String returns a string-valued attribute.
func String(k, v string) Attr { return Attr{Key: k, kind: kindString, s: v} }

// Int returns an integer-valued attribute.
func Int(k string, v int) Attr { return Attr{Key: k, kind: kindInt, n: int64(v)} }

// Int64 returns an integer-valued attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, kind: kindInt, n: v} }

// Float returns a float-valued attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, kind: kindFloat, f: v} }

// Bool returns a boolean-valued attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, kind: kindBool}
	if v {
		a.n = 1
	}
	return a
}

// Value returns the attribute value boxed for generic consumption (JSON
// encoding, map building).
func (a Attr) Value() any {
	switch a.kind {
	case kindString:
		return a.s
	case kindInt:
		return a.n
	case kindFloat:
		return a.f
	default:
		return a.n != 0
	}
}

// attrMap boxes an attribute list into a map (nil for an empty list).
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// nop is the zero-overhead default tracer.
type nop struct{}

type nopSpan struct{}

func (nopSpan) End(...Attr) {}

func (nop) Enabled() bool             { return false }
func (nop) Span(string, ...Attr) Span { return nopSpan{} }
func (nop) Event(string, ...Attr)     {}
func (nop) Count(string, int64)       {}
func (nop) Observe(string, float64)   {}

// Nop returns the tracer that records nothing.
func Nop() Tracer { return nop{} }

// Or returns t, or the Nop tracer when t is nil. Pipeline entry points use
// it so an unset Options.Tracer needs no nil checks downstream.
func Or(t Tracer) Tracer {
	if t == nil {
		return Nop()
	}
	return t
}

// multi fans out to several sinks.
type multi struct{ ts []Tracer }

type multiSpan struct{ ss []Span }

func (m multiSpan) End(attrs ...Attr) {
	for _, s := range m.ss {
		s.End(attrs...)
	}
}

func (m *multi) Enabled() bool { return true }

func (m *multi) Span(name string, attrs ...Attr) Span {
	ss := make([]Span, len(m.ts))
	for i, t := range m.ts {
		ss[i] = t.Span(name, attrs...)
	}
	return multiSpan{ss}
}

func (m *multi) Event(name string, attrs ...Attr) {
	for _, t := range m.ts {
		t.Event(name, attrs...)
	}
}

func (m *multi) Count(name string, delta int64) {
	for _, t := range m.ts {
		t.Count(name, delta)
	}
}

func (m *multi) Observe(name string, v float64) {
	for _, t := range m.ts {
		t.Observe(name, v)
	}
}

// Snapshot returns the first child snapshot available, or nil.
func (m *multi) Snapshot() *Snapshot {
	for _, t := range m.ts {
		if s, ok := t.(Snapshotter); ok {
			return s.Snapshot()
		}
	}
	return nil
}

// Multi fans every record out to all enabled tracers in ts. Nil and
// disabled tracers are dropped; with none left it returns Nop.
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil && t.Enabled() {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return Nop()
	case 1:
		return live[0]
	default:
		return &multi{live}
	}
}

// now is the wall clock, a variable so tests can pin it.
var now = time.Now
