package codec

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/router"
)

func genBench(t *testing.T, name string) *design.Design {
	t.Helper()
	spec, err := design.DenseSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDesignRoundTripGolden: encode → decode → encode must be byte-stable
// on every published benchmark, and the decoded design must be
// structurally identical to the original.
func TestDesignRoundTripGolden(t *testing.T) {
	for _, name := range []string{"dense1", "dense2", "dense3", "dense4", "dense5"} {
		t.Run(name, func(t *testing.T) {
			d := genBench(t, name)
			var first bytes.Buffer
			if err := EncodeDesign(&first, d); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeDesign(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := EncodeDesign(&second, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("encode→decode→encode not byte-stable (%d vs %d bytes)",
					first.Len(), second.Len())
			}
			if got.Name != d.Name || len(got.Nets) != len(d.Nets) ||
				len(got.IOPads) != len(d.IOPads) || len(got.BumpPads) != len(d.BumpPads) ||
				got.WireLayers != d.WireLayers || got.Rules != d.Rules {
				t.Fatalf("decoded design differs: %+v vs %+v", got.Stats(), d.Stats())
			}
			for i := range d.Nets {
				if got.Nets[i] != d.Nets[i] {
					t.Fatalf("net %d differs: %+v vs %+v", i, got.Nets[i], d.Nets[i])
				}
			}
		})
	}
}

// TestResultRoundTrip: a routed dense1 result survives the codec with its
// full layout geometry — the decoded layout re-checks DRC-clean and
// re-encoding is byte-stable once the (float-serialized) runtime is
// cleared.
func TestResultRoundTrip(t *testing.T) {
	d := genBench(t, "dense1")
	res, err := router.Route(d, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res.Runtime = 0
	var first bytes.Buffer
	if err := EncodeResult(&first, res); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(bytes.NewReader(first.Bytes()), d)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := EncodeResult(&second, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("result encode→decode→encode not byte-stable")
	}
	if got.Routability != res.Routability || got.Wirelength != res.Wirelength ||
		got.RoutedNets != res.RoutedNets || got.TileCount != res.TileCount {
		t.Fatalf("metrics differ: %+v vs %+v", got, res)
	}
	if len(got.Layout.Routes) != len(res.Layout.Routes) || len(got.Layout.Vias) != len(res.Layout.Vias) {
		t.Fatalf("layout differs: %d/%d routes, %d/%d vias",
			len(got.Layout.Routes), len(res.Layout.Routes),
			len(got.Layout.Vias), len(res.Layout.Vias))
	}
	if v := drc.Check(got.Layout); len(v) != 0 {
		t.Fatalf("decoded layout has %d DRC violations; first: %v", len(v), v[0])
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	opts := router.DefaultOptions()
	opts.NetOrder = router.OrderCongested
	opts.RipUpRounds = 3
	opts.EnableLP = false
	opts.OrderPortfolio = 6
	var buf bytes.Buffer
	if err := EncodeOptions(&buf, opts); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeOptions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != opts {
		t.Fatalf("options differ:\n got %+v\nwant %+v", got, opts)
	}
	// An empty options document decodes to the defaults.
	def, err := DecodeOptions(strings.NewReader(`{"schema":"rdl-options/v1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if def != router.DefaultOptions() {
		t.Fatalf("empty doc != defaults: %+v", def)
	}
}

// wantErr asserts err is a *Error of the given kind whose path contains
// the fragment.
func wantErr(t *testing.T, err error, kind Kind, pathFrag string) {
	t.Helper()
	if err == nil {
		t.Fatal("decode succeeded, want typed error")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("err %T (%v) is not a *codec.Error", err, err)
	}
	if ce.Kind != kind {
		t.Fatalf("kind = %v, want %v (err: %v)", ce.Kind, kind, ce)
	}
	if !strings.Contains(ce.Path, pathFrag) {
		t.Fatalf("path %q does not contain %q (err: %v)", ce.Path, pathFrag, ce)
	}
}

func TestDecodeMalformed(t *testing.T) {
	// Unknown schema version.
	_, err := DecodeDesign(strings.NewReader(`{"schema":"rdl-design/v99"}`))
	wantErr(t, err, KindSchema, "schema")

	// Missing schema field entirely.
	_, err = DecodeDesign(strings.NewReader(`{"name":"x"}`))
	wantErr(t, err, KindSchema, "schema")

	// Not JSON at all.
	_, err = DecodeDesign(strings.NewReader(`{"schema": "rdl-design/v1", `))
	wantErr(t, err, KindSyntax, "$")

	// Wrong JSON type for a field.
	_, err = DecodeDesign(strings.NewReader(`{"schema":"rdl-design/v1","wire_layers":"two"}`))
	wantErr(t, err, KindSyntax, "wire_layers")

	valid := func() string {
		var buf bytes.Buffer
		if err := EncodeDesign(&buf, genBench(t, "dense1")); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	// Dangling PadRef: point net 0's p1 past the io pad table.
	dangling := strings.Replace(valid, `"p1": {
        "kind": "io",
        "index": 0
      }`, `"p1": {
        "kind": "io",
        "index": 99999
      }`, 1)
	if dangling == valid {
		t.Fatal("fixture edit did not apply")
	}
	_, err = DecodeDesign(strings.NewReader(dangling))
	wantErr(t, err, KindValidate, "p1.index")

	// Unknown pad kind string.
	badKind := strings.Replace(valid, `"kind": "io"`, `"kind": "donut"`, 1)
	_, err = DecodeDesign(strings.NewReader(badKind))
	wantErr(t, err, KindValidate, "kind")

	// Overlapping pads: a design whose two bump pads violate spacing
	// decodes structurally but fails design validation.
	overlap := `{
	  "schema": "rdl-design/v1",
	  "name": "overlap",
	  "outline": [0, 0, 1000, 1000],
	  "wire_layers": 2,
	  "rules": {"spacing": 10, "wire_width": 4, "via_width": 8},
	  "bump_pads": [
	    {"id": 0, "center": [100, 100], "w": 40},
	    {"id": 1, "center": [110, 100], "w": 40}
	  ]
	}`
	_, err = DecodeDesign(strings.NewReader(overlap))
	wantErr(t, err, KindValidate, "$")
	if !strings.Contains(err.Error(), "spacing") {
		t.Fatalf("overlap error does not mention spacing: %v", err)
	}

	// Malformed options: unknown net order.
	_, err = DecodeOptions(strings.NewReader(`{"schema":"rdl-options/v1","net_order":"random"}`))
	wantErr(t, err, KindValidate, "net_order")

	// Malformed options: portfolio size beyond the policy registry (a
	// policy index the registry cannot produce) or negative.
	_, err = DecodeOptions(strings.NewReader(`{"schema":"rdl-options/v1","order_portfolio":17}`))
	wantErr(t, err, KindValidate, "order_portfolio")
	_, err = DecodeOptions(strings.NewReader(`{"schema":"rdl-options/v1","order_portfolio":-1}`))
	wantErr(t, err, KindValidate, "order_portfolio")

	// Result against the wrong design.
	d := genBench(t, "dense1")
	res, rerr := router.Route(d, router.DefaultOptions())
	if rerr != nil {
		t.Fatal(rerr)
	}
	var rbuf bytes.Buffer
	if err := EncodeResult(&rbuf, res); err != nil {
		t.Fatal(err)
	}
	d2 := genBench(t, "dense2")
	_, err = DecodeResult(bytes.NewReader(rbuf.Bytes()), d2)
	wantErr(t, err, KindValidate, "design")

	// Result with an out-of-range net.
	broken := strings.Replace(rbuf.String(), `"net": 0,`, `"net": 123456,`, 1)
	_, err = DecodeResult(strings.NewReader(broken), d)
	wantErr(t, err, KindValidate, "net")
}
