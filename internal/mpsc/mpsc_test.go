package mpsc

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrosses(t *testing.T) {
	cases := []struct {
		c, d Chord
		want bool
	}{
		{Chord{A: 0, B: 2}, Chord{A: 1, B: 3}, true},
		{Chord{A: 0, B: 3}, Chord{A: 1, B: 2}, false}, // nested
		{Chord{A: 0, B: 1}, Chord{A: 2, B: 3}, false}, // disjoint
		{Chord{A: 2, B: 0}, Chord{A: 3, B: 1}, true},  // order-insensitive
		{Chord{A: 0, B: 2}, Chord{A: 2, B: 4}, false}, // shared endpoint
	}
	for _, c := range cases {
		if got := Crosses(c.c, c.d); got != c.want {
			t.Errorf("Crosses(%v, %v) = %v, want %v", c.c, c.d, got, c.want)
		}
		if got := Crosses(c.d, c.c); got != c.want {
			t.Errorf("Crosses symmetric (%v, %v) = %v", c.d, c.c, got)
		}
	}
}

func TestUnweightedParallel(t *testing.T) {
	// Three nested chords: all selectable.
	chords := []Chord{
		{A: 0, B: 5, W: 1},
		{A: 1, B: 4, W: 1},
		{A: 2, B: 3, W: 1},
	}
	picked, total := MaxPlanarSubset(6, chords)
	if len(picked) != 3 || total != 3 {
		t.Errorf("picked=%v total=%v", picked, total)
	}
}

func TestCrossingPair(t *testing.T) {
	// Two crossing chords with different weights: pick the heavier.
	chords := []Chord{
		{A: 0, B: 2, W: 1},
		{A: 1, B: 3, W: 5},
	}
	picked, total := MaxPlanarSubset(4, chords)
	if len(picked) != 1 || picked[0] != 1 || total != 5 {
		t.Errorf("picked=%v total=%v", picked, total)
	}
}

func TestPaperFig5Scenario(t *testing.T) {
	// Paper Figure 5: five nets (A,H), (B,I), (C,J), (D,E), (F,G) on a
	// circle labeled A..J = 0..9. Unweighted MPSC picks the three parallel
	// chords (A,H),(B,I),(C,J); downweighting them (congestion) flips the
	// choice to (D,E),(F,G).
	// Circle order (from the figure's geometry): D A B C E F J I H G.
	// The three long chords are nested; each short chord straddles all
	// three, so the two families are mutually exclusive.
	const (
		D, A, B, C, E, F, J, I, H, G = 0, 1, 2, 3, 4, 5, 6, 7, 8, 9
	)
	unweighted := []Chord{
		{A: A, B: H, W: 1, Tag: 0},
		{A: B, B: I, W: 1, Tag: 1},
		{A: C, B: J, W: 1, Tag: 2},
		{A: D, B: E, W: 1, Tag: 3},
		{A: F, B: G, W: 1, Tag: 4},
	}
	picked, total := MaxPlanarSubset(10, unweighted)
	if total != 3 {
		t.Fatalf("unweighted total = %v, want 3", total)
	}
	sel := map[int]bool{}
	for _, i := range picked {
		sel[unweighted[i].Tag] = true
	}
	if !sel[0] || !sel[1] || !sel[2] {
		t.Errorf("unweighted should pick the three long chords, got %v", sel)
	}

	// With congestion-aware weights (Eq. 2 downweights the three nets that
	// share the narrow channel), the assignment flips.
	weighted := make([]Chord, len(unweighted))
	copy(weighted, unweighted)
	weighted[0].W = 0.3
	weighted[1].W = 0.3
	weighted[2].W = 0.3
	picked, total = MaxPlanarSubset(10, weighted)
	sel = map[int]bool{}
	for _, i := range picked {
		sel[weighted[i].Tag] = true
	}
	if !sel[3] || !sel[4] {
		t.Errorf("weighted should pick (D,E),(F,G), got %v", sel)
	}
	if math.Abs(total-2.0) > 1e-12 {
		t.Errorf("weighted total = %v, want 2.0", total)
	}
}

func TestZeroWeightChordsIgnored(t *testing.T) {
	chords := []Chord{
		{A: 0, B: 3, W: 0},
		{A: 1, B: 2, W: 1},
	}
	picked, total := MaxPlanarSubset(4, chords)
	if len(picked) != 1 || chords[picked[0]].A != 1 || total != 1 {
		t.Errorf("picked=%v total=%v", picked, total)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(4, []Chord{{A: 0, B: 1}, {A: 2, B: 3}}); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := Validate(4, []Chord{{A: 0, B: 1}, {A: 1, B: 3}}); err == nil {
		t.Error("shared endpoint accepted")
	}
	if err := Validate(4, []Chord{{A: 0, B: 4}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := Validate(4, []Chord{{A: 2, B: 2}}); err == nil {
		t.Error("degenerate chord accepted")
	}
}

// bruteForce enumerates all subsets and returns the maximum planar weight.
func bruteForce(chords []Chord) float64 {
	n := len(chords)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		w := 0.0
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if chords[i].W <= 0 {
				ok = false
				break
			}
			w += chords[i].W
			for j := i + 1; j < n; j++ {
				if mask&(1<<j) != 0 && Crosses(chords[i], chords[j]) {
					ok = false
					break
				}
			}
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func TestAgainstBruteForce(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nc := 1 + rng.Intn(8)
		m := 2 * nc
		perm := rng.Perm(m)
		chords := make([]Chord, nc)
		for i := 0; i < nc; i++ {
			chords[i] = Chord{
				A:   perm[2*i],
				B:   perm[2*i+1],
				W:   math.Round(rng.Float64()*100) / 10, // one decimal, avoids FP ties
				Tag: i,
			}
		}
		picked, total := MaxPlanarSubset(m, chords)
		want := bruteForce(chords)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: DP=%v brute=%v chords=%v", trial, total, want, chords)
		}
		// The picked set must itself be planar and sum to the total.
		sum := 0.0
		for i, ci := range picked {
			sum += chords[ci].W
			for _, cj := range picked[i+1:] {
				if Crosses(chords[ci], chords[cj]) {
					t.Fatalf("trial %d: picked crossing chords %v %v", trial, chords[ci], chords[cj])
				}
			}
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("trial %d: picked sum %v != total %v", trial, sum, total)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if picked, total := MaxPlanarSubset(0, nil); picked != nil || total != 0 {
		t.Error("empty model")
	}
	picked, total := MaxPlanarSubset(2, []Chord{{A: 0, B: 1, W: 2.5}})
	if len(picked) != 1 || total != 2.5 {
		t.Errorf("single chord: picked=%v total=%v", picked, total)
	}
}
