package router

import (
	"context"
	"fmt"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/par"
)

// The ordering-policy registry. Stage 4 commits nets one at a time, so
// routability hinges on the commit order; the registry is the single
// list of orderings the flow knows — the portfolio racer, the qa
// escalation ladder and the classic Options.NetOrder switch all draw
// from it, so qa exercises exactly the policies production races.
//
// Indices are part of the deterministic contract: the winner rule breaks
// ties on the LOWEST policy index, the codec serializes portfolio sizes
// as counts of this registry's prefix, and the qa matrix pins counter
// streams that embed winner indices. Reordering or renaming entries is a
// semantic change, not a refactor.
const (
	// NamedPolicies is the number of feature-based heuristics at the
	// front of the registry: shortest, longest, congested, detour,
	// boundary. Indices beyond them are seeded deterministic shuffles
	// (policy i shuffles with seed i − NamedPolicies).
	NamedPolicies = 5

	// MaxPortfolio bounds Options.OrderPortfolio: the five named
	// heuristics plus up to eleven seeded shuffles. The codec rejects
	// sizes beyond it with a typed validate error, so a wire document
	// can never reference a policy index this registry cannot produce.
	MaxPortfolio = 16
)

// netOrderPolicy is one registry entry: a stable name for reports and a
// sort ordering the stage-4 job queue in place. order must be a
// permutation (never dropping or duplicating jobs), deterministic, and
// worker-count-invariant — the portfolio determinism matrix holds every
// entry to that.
type netOrderPolicy struct {
	name  string
	order func(ctx context.Context, d *design.Design, jobs []seqJob, workers int) error
}

// PortfolioPolicyName names registry policy i ("shortest", "longest",
// "congested", "detour", "boundary", "shuffle0", "shuffle1", ...).
// Indices outside [0, MaxPortfolio) yield "invalid".
func PortfolioPolicyName(i int) string {
	if i < 0 || i >= MaxPortfolio {
		return "invalid"
	}
	return policyByIndex(i).name
}

// WithOrderPolicy pins stage 4 to the single registry policy i,
// overriding both NetOrder and OrderPortfolio. The qa escalation ladder
// and the winner-equals-solo oracle route through it: a portfolio run
// must be byte-identical to WithOrderPolicy(opts, winner).
func WithOrderPolicy(opts Options, i int) Options {
	opts.soloPolicy = &i
	opts.OrderPortfolio = 0
	return opts
}

// policyForOptions resolves the ordering the stage-4 queue uses when no
// portfolio is racing: an explicit solo pin wins, otherwise the classic
// NetOrder switch maps onto the registry's first three entries.
func policyForOptions(opts Options) netOrderPolicy {
	if opts.soloPolicy != nil {
		return policyByIndex(*opts.soloPolicy)
	}
	switch opts.NetOrder {
	case OrderLongest:
		return policyByIndex(1)
	case OrderCongested:
		return policyByIndex(2)
	default:
		return policyByIndex(0)
	}
}

// policyByIndex returns registry entry i. Callers validate the range;
// out-of-range indices fall back to the default shortest-first policy so
// a stale pointer can never panic mid-flow.
func policyByIndex(i int) netOrderPolicy {
	switch i {
	case 1:
		return netOrderPolicy{name: "longest", order: orderLongest}
	case 2:
		return netOrderPolicy{name: "congested", order: orderCongested}
	case 3:
		return netOrderPolicy{name: "detour", order: orderDetour}
	case 4:
		return netOrderPolicy{name: "boundary", order: orderBoundary}
	default:
		if i >= NamedPolicies && i < MaxPortfolio {
			seed := i - NamedPolicies
			return netOrderPolicy{
				name:  fmt.Sprintf("shuffle%d", seed),
				order: orderShuffle(seed),
			}
		}
		return netOrderPolicy{name: "shortest", order: orderShortest}
	}
}

// jobIDLess is the stable tie-break every policy shares: net ID, then
// net index. A pad edit changes one net's sort key, and without a total
// order an unstable sort could reshuffle equal-keyed nets, cascading
// order changes into every downstream commit — fatal for incremental
// (memoized) reroutes and for cross-worker byte identity.
func jobIDLess(d *design.Design, jobs []seqJob) func(i, j int) bool {
	return func(i, j int) bool {
		idi, idj := d.Nets[jobs[i].net].ID, d.Nets[jobs[j].net].ID
		if idi != idj {
			return idi < idj
		}
		return jobs[i].net < jobs[j].net
	}
}

func orderShortest(_ context.Context, d *design.Design, jobs []seqJob, _ int) error {
	idLess := jobIDLess(d, jobs)
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].direct != jobs[j].direct {
			return jobs[i].direct < jobs[j].direct
		}
		return idLess(i, j)
	})
	return nil
}

func orderLongest(_ context.Context, d *design.Design, jobs []seqJob, _ int) error {
	idLess := jobIDLess(d, jobs)
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].direct != jobs[j].direct {
			return jobs[i].direct > jobs[j].direct
		}
		return idLess(i, j)
	})
	return nil
}

// computeOverlaps fills jobs[i].overlap with the number of other jobs
// whose bounding boxes intersect job i's. Each index counts its own
// overlaps against every other net — the same totals the pairwise
// double-increment formulation produces, but index i writes only
// jobs[i].overlap, so the O(n²) count fans out on the worker pool
// without changing the result.
func computeOverlaps(ctx context.Context, jobs []seqJob, workers int) error {
	return par.ForEach(ctx, workers, len(jobs), func(i int) error {
		for j := range jobs {
			if j != i && jobs[i].bbox.Intersects(jobs[j].bbox) {
				jobs[i].overlap++
			}
		}
		return nil
	})
}

// orderCongested routes nets whose bounding boxes overlap the most other
// nets first (hardest-first). Equal overlap counts fall back to the
// stable identity tie-break — the pinned tie regression holds two
// equal-overlap nets to ID order at every worker count.
func orderCongested(ctx context.Context, d *design.Design, jobs []seqJob, workers int) error {
	if err := computeOverlaps(ctx, jobs, workers); err != nil {
		return err
	}
	idLess := jobIDLess(d, jobs)
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].overlap != jobs[j].overlap {
			return jobs[i].overlap > jobs[j].overlap
		}
		return idLess(i, j)
	})
	return nil
}

// orderDetour routes the nets most likely to be forced into detours
// first: overlap count normalized by direct length, so a short net
// crossing many others (whose detour, if it loses its direct corridor,
// is proportionally the worst) beats a long net with the same contention.
// The score is a ratio of exact inputs (an integer count over an exact
// octilinear distance), so equal scores are equal by construction, not by
// float coincidence, and the identity tie-break keeps the order total.
func orderDetour(ctx context.Context, d *design.Design, jobs []seqJob, workers int) error {
	if err := computeOverlaps(ctx, jobs, workers); err != nil {
		return err
	}
	idLess := jobIDLess(d, jobs)
	score := func(i int) float64 {
		den := jobs[i].direct
		if den <= 0 {
			den = 1
		}
		return float64(jobs[i].overlap) / den
	}
	sort.Slice(jobs, func(i, j int) bool {
		si, sj := score(i), score(j)
		if si != sj {
			return si > sj
		}
		return idLess(i, j)
	})
	return nil
}

// boundaryDist is the distance from the net's nearer pad to the nearest
// outline edge — how boxed-in the net's anchor is.
func boundaryDist(d *design.Design, jb seqJob) int64 {
	o := d.Outline
	dist := func(p geom.Point) int64 {
		return geom.Min64(geom.Min64(p.X-o.X0, o.X1-p.X), geom.Min64(p.Y-o.Y0, o.Y1-p.Y))
	}
	nn := d.Nets[jb.net]
	return geom.Min64(dist(d.PadCenter(nn.P1)), dist(d.PadCenter(nn.P2)))
}

// orderBoundary routes boundary-hugging nets first: a net whose pad sits
// near the outline has the fewest escape directions, so letting interior
// nets commit first can wall it in. Ties (same distance ring) break on
// identity.
func orderBoundary(_ context.Context, d *design.Design, jobs []seqJob, _ int) error {
	idLess := jobIDLess(d, jobs)
	keys := make([]int64, len(jobs))
	for i := range jobs {
		keys[i] = boundaryDist(d, jobs[i])
	}
	sort.Sort(&keyedJobs{jobs: jobs, keys: keys, idLess: idLess})
	return nil
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64,
// so shuffle keys collide only when their inputs do.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// orderShuffle builds the seeded deterministic shuffle policy: each job
// keys on a hash of (seed, net ID) and sorts by key. The same seed and
// net set always produce the same order at any worker count; different
// seeds decorrelate, which is the point — shuffles buy the portfolio
// coverage of orderings no feature-based heuristic proposes.
func orderShuffle(seed int) func(context.Context, *design.Design, []seqJob, int) error {
	return func(_ context.Context, d *design.Design, jobs []seqJob, _ int) error {
		idLess := jobIDLess(d, jobs)
		base := mix64(uint64(seed)*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03)
		keys := make([]int64, len(jobs))
		for i := range jobs {
			keys[i] = int64(mix64(base ^ uint64(int64(d.Nets[jobs[i].net].ID)+1)))
		}
		sort.Sort(&keyedJobs{jobs: jobs, keys: keys, idLess: idLess})
		return nil
	}
}

// keyedJobs sorts a job slice and its parallel precomputed key slice
// together: ascending key, identity tie-break. Policies whose keys are
// not already fields of seqJob use it so the keys move with the jobs.
type keyedJobs struct {
	jobs   []seqJob
	keys   []int64
	idLess func(i, j int) bool
}

func (k *keyedJobs) Len() int { return len(k.jobs) }
func (k *keyedJobs) Less(i, j int) bool {
	if k.keys[i] != k.keys[j] {
		return k.keys[i] < k.keys[j]
	}
	return k.idLess(i, j)
}
func (k *keyedJobs) Swap(i, j int) {
	k.jobs[i], k.jobs[j] = k.jobs[j], k.jobs[i]
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
}
