package ctile

import "rdlroute/internal/geom"

// CloneScratch returns an independent copy of the model for scratch
// routing (the ordering-portfolio racer gives each candidate policy its
// own clone of the post-stage-3 model). The clone mutates independently:
// AddWire/AddVia on it dirty only its own cells, and its lazy rebuilds
// derive exactly the tiles the original would — buildCell is a pure
// function of the cell's blockers, which are deep-copied.
//
// Sharing discipline: blocker lists are copied at exact length (the only
// in-place-growing state — a shared backing array would let sibling
// clones append over each other), tile/bbox/center slices are shared
// read-only (rebuilds replace the slice, never mutate it), and the
// per-cell generation counters are copied so the clone's cache
// invalidation starts from the original's state. The corridor arc caches
// and the corridor journal/memo are dropped: arcs rebuild lazily and
// deterministically, and a scratch run must not observe — or pollute — a
// cross-run memo.
func (m *Model) CloneScratch() *Model {
	cp := &Model{
		D:      m.D,
		CellsX: m.CellsX, CellsY: m.CellsY,
		clear: m.clear, minDim: m.minDim,
	}
	layers := len(m.blockers)
	n := m.CellsX * m.CellsY
	cp.blockers = make([][][]geom.Oct8, layers)
	cp.tiles = make([][][]geom.Oct8, layers)
	cp.tileBB = make([][][]geom.Rect, layers)
	cp.centers = make([][][]geom.Point, layers)
	cp.gen = make([][]uint32, layers)
	cp.adj = make([][]*cellAdj, layers)
	for l := 0; l < layers; l++ {
		cp.blockers[l] = make([][]geom.Oct8, n)
		for c, b := range m.blockers[l] {
			if len(b) > 0 {
				nb := make([]geom.Oct8, len(b))
				copy(nb, b)
				cp.blockers[l][c] = nb
			}
		}
		cp.tiles[l] = append([][]geom.Oct8(nil), m.tiles[l]...)
		cp.tileBB[l] = append([][]geom.Rect(nil), m.tileBB[l]...)
		cp.centers[l] = append([][]geom.Point(nil), m.centers[l]...)
		cp.gen[l] = append([]uint32(nil), m.gen[l]...)
		cp.adj[l] = make([]*cellAdj, n)
	}
	return cp
}
