package qa

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// Ordering-portfolio matrix: racing K ordering policies must be a pure
// quality upgrade — byte-identical at every worker count (fingerprint,
// metrics, rdl-result/v1 bytes, and the portfolio.* counter stream),
// byte-identical to a solo run pinned to the winning policy, and never
// worse than any individual policy it raced.

// portfolioK is the portfolio size the qa matrix races: all five named
// heuristics plus one seeded shuffle, the smallest portfolio that
// exercises every kind of registry entry.
const portfolioK = 6

// routePortfolio routes d with the ordering portfolio at the given
// worker count, returning the fingerprint, stable result bytes, result,
// and the full counter map of the run's obs stream (portfolio.*
// included).
func routePortfolio(t *testing.T, d *design.Design, workers int) (uint64, []byte, *router.Result, map[string]int64) {
	t.Helper()
	opts := flowOptions()
	opts.OrderPortfolio = portfolioK
	opts.Workers = workers
	c := obs.NewCollector()
	opts.Tracer = c
	res, fp, err := router.RouteFingerprint(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("portfolio workers=%d: %v", workers, err)
	}
	enc, err := encodeResultStable(res)
	if err != nil {
		t.Fatalf("portfolio workers=%d: encode: %v", workers, err)
	}
	return fp, enc, res, c.Snapshot().Counters
}

// assertPortfolioInvariant runs the three portfolio oracles on one
// design:
//
//  1. Worker invariance — fingerprint, metrics, encoded bytes and the
//     FULL counter map (so portfolio.* too) identical at workers 1/2/8.
//  2. Winner-equals-solo — a fresh run pinned to the winning policy via
//     WithOrderPolicy reproduces the portfolio run byte for byte.
//  3. Monotonicity — the final result routes at least as many nets as
//     every candidate scored, and exactly as many as the winner scored
//     (the race's scores are real solo outcomes, not estimates).
func assertPortfolioInvariant(t *testing.T, label string, d *design.Design) {
	t.Helper()
	fp1, enc1, res1, counters1 := routePortfolio(t, d, workerMatrix[0])
	for _, w := range workerMatrix[1:] {
		fp, enc, res, counters := routePortfolio(t, d, w)
		if fp != fp1 {
			t.Errorf("%s: portfolio workers=%d fingerprint %x, workers=1 got %x", label, w, fp, fp1)
		}
		if res.RoutedNets != res1.RoutedNets || res.Wirelength != res1.Wirelength {
			t.Errorf("%s: portfolio workers=%d routed %d wl %.3f, workers=1 routed %d wl %.3f",
				label, w, res.RoutedNets, res.Wirelength, res1.RoutedNets, res1.Wirelength)
		}
		if !bytes.Equal(enc, enc1) {
			t.Errorf("%s: portfolio workers=%d rdl-result/v1 bytes differ from workers=1 (%d vs %d bytes)",
				label, w, len(enc), len(enc1))
		}
		if !reflect.DeepEqual(counters, counters1) {
			t.Errorf("%s: portfolio workers=%d counter stream differs from workers=%d:\n%v\nvs\n%v",
				label, w, workerMatrix[0], counters, counters1)
		}
	}

	if res1.Portfolio == nil {
		t.Fatalf("%s: portfolio run returned no report", label)
	}
	win := res1.Portfolio.Winner
	if counters1["portfolio.raced"] != 1 || counters1["portfolio.candidates"] != portfolioK ||
		counters1["portfolio.winner_index"] != int64(win) {
		t.Errorf("%s: portfolio counters inconsistent with report (winner %d): raced=%d candidates=%d winner_index=%d",
			label, win, counters1["portfolio.raced"], counters1["portfolio.candidates"], counters1["portfolio.winner_index"])
	}

	for _, sc := range res1.Portfolio.Candidates {
		if sc.Routed > res1.RoutedNets {
			t.Errorf("%s: candidate %d (%s) scored %d routed nets, final result only %d",
				label, sc.Policy, sc.Name, sc.Routed, res1.RoutedNets)
		}
	}
	if ws := res1.Portfolio.Candidates[win]; ws.Routed != res1.RoutedNets {
		t.Errorf("%s: winner scored %d routed nets in the race, replay achieved %d",
			label, ws.Routed, res1.RoutedNets)
	}

	opts := router.WithOrderPolicy(flowOptions(), win)
	solo, sfp, err := router.RouteFingerprint(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("%s: solo replay of winner %d: %v", label, win, err)
	}
	senc, err := encodeResultStable(solo)
	if err != nil {
		t.Fatalf("%s: solo replay encode: %v", label, err)
	}
	if sfp != fp1 {
		t.Errorf("%s: solo run of winner %d fingerprint %x, portfolio got %x", label, win, sfp, fp1)
	}
	if !bytes.Equal(senc, enc1) {
		t.Errorf("%s: solo run of winner %d rdl-result/v1 bytes differ from portfolio (%d vs %d bytes)",
			label, win, len(senc), len(enc1))
	}
}

// portfolioDenseNames caps the portfolio matrix harder than
// denseMatrixNames: one portfolio invariant run costs ~20 full stage-4
// loops per circuit (3 worker counts × K candidates, plus replays), so
// the larger circuits would blow the package's test budget. dense3..5
// portfolio coverage comes from `rdlbench -portfolio`, whose rows carry
// the same winner-equals-solo identity check.
func portfolioDenseNames() []string {
	names := denseMatrixNames()
	cap := 2
	if testing.Short() || raceEnabled {
		cap = 1
	}
	if len(names) > cap {
		names = names[:cap]
	}
	return names
}

// TestPortfolioDeterminismDense is the portfolio matrix over the paper's
// benchmark circuits (the portfolio-off half of the on/off axis is
// TestWorkerDeterminismDense).
func TestPortfolioDeterminismDense(t *testing.T) {
	for _, name := range portfolioDenseNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := design.DenseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := design.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			assertPortfolioInvariant(t, name, d)
		})
	}
}

// TestPortfolioDeterminismRandom runs the matrix over qa-generated
// designs, whose irregular pad rings and adversarial spacing make the
// policies genuinely disagree (the dense circuits mostly route 100%
// under every ordering).
func TestPortfolioDeterminismRandom(t *testing.T) {
	const seeds = 10
	for seed := int64(1); seed <= seeds; seed++ {
		d := Generate(seed)
		assertPortfolioInvariant(t, d.Name, d)
	}
}

// TestRegressionPortfolioWinner pins seed 5: a design where the congested
// policy routes two MORE nets than the default shortest-first ordering —
// the exact situation the portfolio exists for. A racer that silently
// stopped racing (or always declared policy 0 the winner) would still
// pass the invariance checks above; this fails loudly if the pinned seed
// stops exercising a non-trivial win.
func TestRegressionPortfolioWinner(t *testing.T) {
	d := Generate(5)
	assertPortfolioInvariant(t, d.Name, d)
	_, _, res, counters := routePortfolio(t, d, 2)
	if res.Portfolio.Winner != 2 {
		t.Errorf("seed 5: winner = %d (%s), want 2 (congested)", res.Portfolio.Winner, res.Portfolio.WinnerName)
	}
	if counters["portfolio.routed_delta"] != 2 {
		t.Errorf("seed 5: portfolio.routed_delta = %d, want 2 (the pinned seed no longer shows a routability win)",
			counters["portfolio.routed_delta"])
	}
}

// TestRegressionPortfolioWirelengthTieBreak pins seed 11: shortest-first
// and shuffle0 route the same net count but shuffle0 pays less wire, so
// the winner rule's second key (wirelength asc) must decide. A winner
// rule that compared routed nets only would pick policy 0 here.
func TestRegressionPortfolioWirelengthTieBreak(t *testing.T) {
	d := Generate(11)
	_, _, res, counters := routePortfolio(t, d, 2)
	if res.Portfolio.Winner != 5 {
		t.Errorf("seed 11: winner = %d (%s), want 5 (shuffle0, on wirelength)",
			res.Portfolio.Winner, res.Portfolio.WinnerName)
	}
	if counters["portfolio.routed_delta"] != 0 {
		t.Errorf("seed 11: portfolio.routed_delta = %d, want 0 (a wirelength-only win)",
			counters["portfolio.routed_delta"])
	}
	s := res.Portfolio.Candidates
	if s[5].Routed != s[0].Routed || s[5].Wirelength >= s[0].Wirelength {
		t.Errorf("seed 11: scores no longer pin the tie-break: policy0 %d/%.3f, policy5 %d/%.3f",
			s[0].Routed, s[0].Wirelength, s[5].Routed, s[5].Wirelength)
	}
}

// TestPortfolioMonotonicitySolo closes the loop the in-race scores leave
// open: on seed 5 every candidate's race score must equal a genuine solo
// run of that policy, so "portfolio ≥ every individual policy" is proved
// against real solo outcomes, not the racer's own bookkeeping.
func TestPortfolioMonotonicitySolo(t *testing.T) {
	d := Generate(5)
	_, _, res, _ := routePortfolio(t, d, 2)
	for policy := 0; policy < portfolioK; policy++ {
		solo, err := router.Route(d, router.WithOrderPolicy(flowOptions(), policy))
		if err != nil {
			t.Fatalf("solo policy %d: %v", policy, err)
		}
		sc := res.Portfolio.Candidates[policy]
		if sc.Routed != solo.RoutedNets {
			t.Errorf("policy %d (%s): race scored %d routed nets, solo run achieved %d",
				policy, sc.Name, sc.Routed, solo.RoutedNets)
		}
		if solo.RoutedNets > res.RoutedNets {
			t.Errorf("policy %d (%s) routed %d nets solo, portfolio only %d",
				policy, sc.Name, solo.RoutedNets, res.RoutedNets)
		}
	}
}
