package lattice

import (
	"math"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// wide returns a 600×600 single-chip design with the given spacing rule.
func wide(spacing int64) *design.Design {
	return &design.Design{
		Name:       "edges",
		Outline:    geom.RectWH(0, 0, 600, 600),
		WireLayers: 1,
		Rules:      design.Rules{Spacing: spacing, WireWidth: 4, ViaWidth: 16},
	}
}

// TestEdgeGuardBlocksCornerCut pins the corner-cutting fix. An obstacle
// with a corner at (120,120): the lattice nodes (132,120) and (120,132)
// both clear it by 12 ≥ s+w/2, but the 45° wire between them dips to
// 12/√2 ≈ 8.49 from the corner — polygon gap ≈ 6.49, a violation at
// spacing 8 and legal at spacing 5. Node occupancy alone cannot see the
// difference; the edge guard must.
func TestEdgeGuardBlocksCornerCut(t *testing.T) {
	for _, tc := range []struct {
		spacing  int64
		wantFree bool
	}{
		{spacing: 8, wantFree: false},
		{spacing: 5, wantFree: true},
	} {
		d := wide(tc.spacing)
		d.Obstacles = []design.Obstacle{{Layer: 0, Box: geom.RectWH(0, 0, 120, 120)}}
		la := mustNew(t, d)
		for _, n := range [][2]int{{11, 10}, {10, 11}} {
			if !la.WireFree(0, n[0], n[1], 0) {
				t.Fatalf("spacing %d: node (%d,%d) should be clear of the obstacle", tc.spacing, n[0], n[1])
			}
		}
		// Move direction 3 is (−1,+1): the NW diagonal from (132,120) to
		// (120,132), grazing the obstacle corner.
		if got := la.edgeFree(0, 11, 10, 3, 0, false); got != tc.wantFree {
			t.Errorf("spacing %d: corner-cutting edge free = %v, want %v", tc.spacing, got, tc.wantFree)
		}
	}
}

// TestEdgeGuardForcesDetour drives the same geometry through the search:
// the all-diagonal line from (156,96) to (96,156) runs straight through
// the corner-cutting edge, so at spacing 8 the route must detour around
// it (one diagonal step replaced by an axis-aligned pair) while at
// spacing 5 it stays on the pure diagonal.
func TestEdgeGuardForcesDetour(t *testing.T) {
	diag := 5 * 12 * geom.Sqrt2
	for _, tc := range []struct {
		spacing int64
		want    float64
	}{
		{spacing: 8, want: diag - 12*geom.Sqrt2 + 24},
		{spacing: 5, want: diag},
	} {
		d := wide(tc.spacing)
		d.Obstacles = []design.Obstacle{{Layer: 0, Box: geom.RectWH(0, 0, 120, 120)}}
		la := mustNew(t, d)
		_, cost, ok := la.Route(Request{
			Net: 0, From: geom.Pt(156, 96), To: geom.Pt(96, 156),
		})
		if !ok {
			t.Fatalf("spacing %d: no route", tc.spacing)
		}
		if math.Abs(cost-tc.want) > 1e-6 {
			t.Errorf("spacing %d: cost = %v, want %v", tc.spacing, cost, tc.want)
		}
	}
}

// TestEdgeOwnership: committed wire claims its edges for its net — the
// owner may re-use them, other nets may not, and OwnersOnPath reports the
// claim so rip-up can attribute edge blockages to their victims.
func TestEdgeOwnership(t *testing.T) {
	la := mustNew(t, wide(5))
	path := []PathStep{
		{Layer: 0, Pt: geom.Pt(48, 240)},
		{Layer: 0, Pt: geom.Pt(480, 240)},
	}
	la.Commit(path, 0)
	// Edge E from (120,240) to (132,240) lies on the wire itself.
	if !la.edgeFree(0, 10, 20, 0, 0, false) {
		t.Error("owner net blocked by its own edge claim")
	}
	if la.edgeFree(0, 10, 20, 0, 1, false) {
		t.Error("foreign net allowed onto a claimed edge")
	}
	// Ghost searches see the single-owner claim as passable.
	if !la.edgeFree(0, 10, 20, 0, 1, true) {
		t.Error("ghost search blocked by a rippable single-owner edge")
	}
	foreign := []PathStep{
		{Layer: 0, Pt: geom.Pt(120, 240)},
		{Layer: 0, Pt: geom.Pt(132, 240)},
	}
	victims := la.OwnersOnPath(foreign, 1)
	if len(victims) != 1 || victims[0] != 0 {
		t.Errorf("OwnersOnPath over a claimed edge = %v, want [0]", victims)
	}
}
