package geom

import (
	"testing"
)

// FuzzOct8Ops throws arbitrary octagonal tiles at the Oct8 algebra and
// checks the exact integer-point semantics the router relies on —
// continuous areas of thin diagonal regions are float-approximate, but
// lattice membership is the model's ground truth. Invariants, verified
// point-by-point over the tiles' neighborhood:
//
//   - Canonical preserves membership and is idempotent on non-empty
//     regions (empty regions have no canonical representative, but must
//     stay empty).
//   - Empty never claims a region that still contains lattice points.
//   - IntersectOct is exactly pointwise AND.
//   - SubtractOct partitions a\b: pieces are pairwise disjoint, disjoint
//     from b, and their union covers exactly the points of a outside b.
//
// Inputs are reduced to small coordinates so the verification window
// stays a few hundred points on a side.
func FuzzOct8Ops(f *testing.F) {
	f.Add(int16(0), int16(0), int16(24), int16(24), int16(4), int16(4), int16(12), int16(12), int16(16))
	f.Add(int16(-8), int16(3), int16(0), int16(0), int16(0), int16(0), int16(-8), int16(3), int16(0))
	f.Add(int16(5), int16(5), int16(40), int16(2), int16(60), int16(-60), int16(20), int16(6), int16(7))
	f.Add(int16(-100), int16(50), int16(-183), int16(92), int16(37), int16(81), int16(-32), int16(51), int16(228))
	f.Fuzz(func(t *testing.T, ax, ay, aw, ah, scut, dcut, bx, by, bw int16) {
		// a: a rect-based tile with the diagonal bounds tightened by the
		// fuzzed cuts (possibly past emptiness — Empty must cope).
		ra := Rect{int64(ax % 96), int64(ay % 96), int64(ax%96) + abs16(aw)%64, int64(ay%96) + abs16(ah)%64}
		a := OctFromRect(ra)
		a.SLo += int64(scut % 64)
		a.DHi -= int64(dcut % 64)
		// b: a via-style octagon.
		b := RegularOct(Pt(int64(bx%96), int64(by%96)), abs16(bw)%64)

		// Verification window: both bboxes grown by 2.
		x0 := Min64(ra.X0, b.XLo) - 2
		x1 := Max64(ra.X1, b.XHi) + 2
		y0 := Min64(ra.Y0, b.YLo) - 2
		y1 := Max64(ra.Y1, b.YHi) + 2

		for _, o := range []Oct8{a, b} {
			c := o.Canonical()
			if o.Empty() {
				if !c.Empty() {
					t.Fatalf("Canonical turned empty %v non-empty", o)
				}
			} else {
				if c.Canonical() != c {
					t.Fatalf("Canonical not idempotent: %v → %v", c, c.Canonical())
				}
				if ctr := o.Center(); !o.Contains(ctr) {
					t.Fatalf("non-empty %v does not contain its Center %v", o, ctr)
				}
			}
			for x := x0; x <= x1; x++ {
				for y := y0; y <= y1; y++ {
					if o.Contains(Pt(x, y)) != c.Contains(Pt(x, y)) {
						t.Fatalf("Canonical changed membership of (%d,%d) in %v", x, y, o)
					}
				}
			}
		}

		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("Intersects not symmetric for %v, %v", a, b)
		}
		inter := a.IntersectOct(b)
		pieces := a.SubtractOct(b)
		for _, p := range pieces {
			if p.Empty() {
				t.Fatalf("SubtractOct returned an empty piece %v", p)
			}
		}
		anyA := false
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				p := Pt(x, y)
				inA, inB := a.Contains(p), b.Contains(p)
				anyA = anyA || inA
				if got := inter.Contains(p); got != (inA && inB) {
					t.Fatalf("IntersectOct wrong at %v: got %v, want %v∧%v", p, got, inA, inB)
				}
				cover := 0
				for _, piece := range pieces {
					if piece.Contains(p) {
						cover++
					}
				}
				if cover > 1 {
					t.Fatalf("%d subtract pieces overlap at %v", cover, p)
				}
				if want := inA && !inB; (cover == 1) != want {
					t.Fatalf("SubtractOct coverage at %v = %d, want in(a\\b)=%v", p, cover, want)
				}
			}
		}
		// Empty() must never lie about a region that has points. (The
		// converse does not hold: a pinched diagonal band whose s and d
		// bounds disagree in parity contains real points but no integer
		// ones, and still reports non-empty.)
		if a.Empty() && anyA {
			t.Fatal("Empty() = true but the window contains points of a")
		}
	})
}

func abs16(v int16) int64 {
	if v < 0 {
		return -int64(v)
	}
	return int64(v)
}
