package lpopt

import (
	"math"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/dsu"
	"rdlroute/internal/geom"
	"rdlroute/internal/layout"
	"rdlroute/internal/lp"
	"rdlroute/internal/obs"
)

// Optimize runs the LP-based layout optimization on the layout in place:
// solve, round to integer geometry, detect residual crossings/spacing
// problems, add the corresponding interactive constraints, and repeat
// until legal (Section III-E-4). Components that cannot be made legal are
// reverted to their initial (legal) geometry, so Optimize never degrades
// legality.
func Optimize(l *layout.Layout, opt Options) Stats {
	if opt.MaxIters == 0 {
		opt.MaxIters = 50
	}
	if opt.MaxComponentVars == 0 {
		opt.MaxComponentVars = 400
	}
	if opt.NearRadius == 0 {
		opt.NearRadius = 4 * design.Grid
	}
	tr := obs.Or(opt.Tracer)
	st := Stats{Before: l.Wirelength()}
	cancelled := func() bool { return opt.Ctx != nil && opt.Ctx.Err() != nil }
	m := buildModel(l, opt.MoveVias)
	if opt.Ctx != nil {
		m.check = opt.Ctx.Err
	}
	if m.nvars == 0 {
		st.After = st.Before
		return st
	}
	ents := m.collectEntities()
	vals := append([]float64(nil), m.initVal...)

	// Seed interactive constraints from the initial layout: every nearby
	// different-net pair gets a separation along its best axis, with +2
	// rounding headroom when the initial slack allows it.
	padOf := map[pairKey]float64{}
	seed := func(k pairKey) bool {
		a, b := ents[k.a], ents[k.b]
		req := m.required(a, b)
		ax, aBelow, slack := bestAxis(a, b, req, m.initVal)
		if slack < -0.5 {
			return false // no separating axis in the initial layout
		}
		pad := 2.0
		// ceil() of the margin plus the rounding pad must stay within the
		// initial slack, or the constraint starts infeasible.
		ceilLoss := math.Ceil(req*ax.norm()) - req*ax.norm()
		if slack < pad+ceilLoss {
			pad = math.Max(0, math.Floor(slack-ceilLoss))
		}
		m.addSeparation(a, b, ax, aBelow, req, pad)
		padOf[k] = pad
		return true
	}
	pinned := map[int]bool{}
	pinEntity := func(e *entity) {
		for _, v := range e.vars {
			if !pinned[v] {
				pinned[v] = true
				vals[v] = m.initVal[v]
				m.addCons(varExpr(v), opEQ, m.initVal[v])
			}
		}
	}

	for _, k := range nearPairs(ents, m.initVal, opt.NearRadius) {
		if !seed(k) {
			pinEntity(ents[k.a])
			pinEntity(ents[k.b])
		}
	}

	detectRadius := int64(m.reqViaVia()) + 8

	dirtyAll := true
	var dirtyVars map[int]bool
	reverted := map[int]bool{} // component reps with init-pinned geometry

	for iter := 1; iter <= opt.MaxIters; iter++ {
		if cancelled() {
			st.Cancelled = true
			return st
		}
		st.Iterations = iter

		// Component decomposition over the current constraint set.
		comp := dsu.New(m.nvars)
		for _, c := range m.cons {
			for i := 1; i < len(c.terms); i++ {
				comp.Union(c.terms[0].v, c.terms[i].v)
			}
		}
		groups := comp.Groups()
		if iter == 1 {
			st.Components = len(groups)
		}
		// Bucket constraints and objective by component.
		consBy := map[int][]gcons{}
		for _, c := range m.cons {
			if len(c.terms) == 0 {
				continue
			}
			r := comp.Find(c.terms[0].v)
			consBy[r] = append(consBy[r], c)
		}
		objBy := map[int][]term{}
		for _, t := range m.obj {
			r := comp.Find(t.v)
			objBy[r] = append(objBy[r], t)
		}

		for rep, vars := range groups {
			if cancelled() {
				st.Cancelled = true
				return st
			}
			if reverted[rep] {
				continue
			}
			if !dirtyAll {
				touched := false
				for _, v := range vars {
					if dirtyVars[v] {
						touched = true
						break
					}
				}
				if !touched {
					continue
				}
			}
			if len(vars) > opt.MaxComponentVars {
				// Very large components take the coordinate-descent path
				// inside solveComponent; count them for the stats.
				st.Oversize++
			}
			if !m.solveComponent(vars, consBy[rep], objBy[rep], vals) {
				st.Reverted++
				reverted[rep] = true
				for _, v := range vars {
					vals[v] = m.initVal[v]
				}
			}
		}
		dirtyAll = false
		dirtyVars = map[int]bool{}

		m.integerize(vals, reverted, comp)
		m.resetInconsistentRoutes(vals, dirtyVars)

		// Rounding to even integers preserves the route-internal rows by
		// construction: monotonicity is enforced at ≥ 4 and rounding moves
		// any point coordinate by at most 2, and tie/link equalities are
		// re-derived exactly. Separation rows may go short by ±2, which
		// the geometric violation scan below catches and repairs through
		// margin escalation.

		// Violation detection on the rounded geometry.
		type viol struct {
			k pairKey
		}
		var violations []viol
		for _, k := range nearPairs(ents, vals, detectRadius) {
			a, b := ents[k.a], ents[k.b]
			req := m.required(a, b)
			_, _, slack := bestAxis(a, b, req, vals)
			if slack < -1e-9 {
				violations = append(violations, viol{k})
			}
		}
		if tr.Enabled() {
			// The per-iteration convergence curve: the LP objective (the
			// wirelength surrogate being minimized) and the residual
			// geometric violations the next iteration must repair.
			tr.Event("lp.iter",
				obs.Int("iter", iter),
				obs.Float("objective", objValue(m.obj, vals)),
				obs.Int("violations", len(violations)),
				obs.Int("reverted", st.Reverted))
			tr.Count("lp.iterations", 1)
			tr.Count("lp.violations", int64(len(violations)))
		}
		if len(violations) == 0 {
			break
		}
		for _, v := range violations {
			a, b := ents[v.k.a], ents[v.k.b]
			if pad, ok := padOf[v.k]; ok {
				if pad >= 8 {
					// Escalation exhausted: freeze both entities at their
					// initial positions; the re-solve below restores a
					// consistent component around the pins.
					pinEntity(a)
					pinEntity(b)
					st.Reverted++
				} else {
					// Already constrained: rounding ate the margin; add
					// headroom.
					req := m.required(a, b)
					ax, aBelow, _ := bestAxis(a, b, req, m.initVal)
					m.addSeparation(a, b, ax, aBelow, req, pad+2)
					padOf[v.k] = pad + 2
				}
			} else if !seed(v.k) {
				pinEntity(a)
				pinEntity(b)
				st.Reverted++
			}
			// Whatever happened, both components must re-solve so every
			// route stays a consistent LP solution.
			for _, e := range []*entity{a, b} {
				for _, vv := range e.vars {
					dirtyVars[vv] = true
				}
			}
		}
		if iter == opt.MaxIters {
			// Out of iterations: revert the entire components of whatever
			// still violates (mixing initial and optimized variables within
			// one component would corrupt route geometry).
			for _, v := range violations {
				for _, e := range []*entity{ents[v.k.a], ents[v.k.b]} {
					for _, vv := range e.vars {
						reverted[comp.Find(vv)] = true
					}
				}
				st.Reverted++
			}
			m.integerize(vals, reverted, comp)
		}
	}

	// Cancellation means the current vals may reflect an interrupted solve;
	// skip write-back entirely so the layout keeps its legal pre-LP state.
	if cancelled() {
		st.Cancelled = true
		return st
	}
	// Final safety net: any route still internally inconsistent reverts to
	// its legal initial geometry before write-back.
	m.resetInconsistentRoutes(vals, nil)
	if DebugVerify {
		m.debugCheck(vals)
	}
	m.writeBack(vals)
	st.After = l.Wirelength()
	return st
}

// objValue evaluates the LP objective (without its affine constant) at
// the current assignment — the wirelength surrogate traced per iteration.
func objValue(obj []term, vals []float64) float64 {
	v := 0.0
	for _, t := range obj {
		v += t.c * vals[t.v]
	}
	return v
}

// Joint-solve limits: components within the dense limits get one dense
// tableau LP; medium components use the bounded revised simplex (dense
// basis inverse only); anything larger falls back to per-entity coordinate
// descent, which scales linearly and preserves feasibility at every step.
const (
	jointMaxVars   = 80
	jointMaxRows   = 400
	revisedMaxVars = 400
	revisedMaxRows = 900
	descentPass    = 2
)

// solveComponent optimizes one independent component in place; returns
// false when the component must be reverted.
func (m *model) solveComponent(vars []int, cons []gcons, obj []term, vals []float64) bool {
	rows := countRows(cons)
	if len(vars) <= jointMaxVars && rows <= jointMaxRows {
		if m.solveLP(vars, cons, obj, vals, nil, false) {
			return true
		}
		return m.descend(vars, cons, obj, vals)
	}
	if len(vars) <= revisedMaxVars && rows <= revisedMaxRows {
		if m.solveLP(vars, cons, obj, vals, nil, true) {
			return true
		}
	}
	return m.descend(vars, cons, obj, vals)
}

func countRows(cons []gcons) int {
	rows := 0
	for _, c := range cons {
		if len(c.terms) > 1 {
			rows++
		}
	}
	return rows
}

// solveLP solves for the given vars jointly. Vars outside the set are
// substituted at their current values (sub != nil restricts to a sub-LP in
// the descent). Single-variable rows fold into bounds; identical
// multi-variable rows are deduplicated keeping the tightest rhs.
func (m *model) solveLP(vars []int, cons []gcons, obj []term, vals []float64, inSet map[int]bool, revised bool) bool {
	local := make(map[int]lp.VarID, len(vars))
	p := lp.NewProblem()
	p.Check = m.check
	lo := make([]float64, len(vars))
	hi := make([]float64, len(vars))
	idx := make(map[int]int, len(vars))
	for i, v := range vars {
		idx[v] = i
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	own := func(v int) bool {
		if inSet == nil {
			_, ok := idx[v]
			return ok
		}
		return inSet[v]
	}

	type rowKey struct {
		sig string
		op  consOp
	}
	tightest := map[rowKey]float64{}
	var rowOrder []rowKey
	rowTerms := map[rowKey][]lp.Term{}

	for _, c := range cons {
		// Substitute foreign vars; collect own terms.
		rhs := c.rhs
		var ownTerms []term
		skip := false
		for _, t := range c.terms {
			if own(t.v) {
				ownTerms = append(ownTerms, t)
			} else if inSet != nil {
				rhs -= t.c * vals[t.v]
			} else {
				skip = true // crosses components: should not happen
				break
			}
		}
		if skip {
			return false
		}
		switch len(ownTerms) {
		case 0:
			continue // constant row: already satisfied at the current point
		case 1:
			t := ownTerms[0]
			i := idx[t.v]
			bound := rhs / t.c
			op := c.op
			if t.c < 0 {
				if op == opLE {
					op = opGE
				} else if op == opGE {
					op = opLE
				}
			}
			switch op {
			case opLE:
				hi[i] = math.Min(hi[i], bound)
			case opGE:
				lo[i] = math.Max(lo[i], bound)
			default:
				lo[i] = math.Max(lo[i], bound)
				hi[i] = math.Min(hi[i], bound)
			}
		default:
			// Deduplicate by coefficient signature.
			sort.Slice(ownTerms, func(a, b int) bool { return ownTerms[a].v < ownTerms[b].v })
			sig := make([]byte, 0, len(ownTerms)*12)
			var lpTerms []lp.Term
			for _, t := range ownTerms {
				sig = appendSig(sig, t.v, t.c)
				lpTerms = append(lpTerms, lp.Term{Var: lp.VarID(idx[t.v]), Coef: t.c})
			}
			k := rowKey{string(sig), c.op}
			cur, ok := tightest[k]
			if !ok {
				tightest[k] = rhs
				rowOrder = append(rowOrder, k)
				rowTerms[k] = lpTerms
				continue
			}
			switch c.op {
			case opLE:
				if rhs < cur {
					tightest[k] = rhs
				}
			case opGE:
				if rhs > cur {
					tightest[k] = rhs
				}
			default:
				if rhs != cur {
					return false // conflicting equalities
				}
			}
		}
	}

	for i, v := range vars {
		if lo[i] > hi[i]+1e-9 {
			return false
		}
		local[v] = p.AddVar(lo[i], hi[i])
	}
	for _, t := range obj {
		if lv, ok := local[t.v]; ok {
			p.AddObj(lv, t.c)
		}
	}
	for _, k := range rowOrder {
		terms := rowTerms[k]
		rhs := tightest[k]
		switch k.op {
		case opLE:
			p.AddLE(terms, rhs)
		case opGE:
			p.AddGE(terms, rhs)
		default:
			p.AddEQ(terms, rhs)
		}
	}
	var sol lp.Solution
	if revised {
		sol = p.SolveRevised()
	} else {
		sol = p.Solve()
	}
	if sol.Status != lp.Optimal {
		return false
	}
	for _, lv := range local {
		if math.IsNaN(sol.X[lv]) || math.IsInf(sol.X[lv], 0) {
			return false
		}
	}
	// Trust but verify: the solution must satisfy the rows and bounds it
	// was solved under (guards against solver numerical drift).
	for i, v := range vars {
		xv := sol.X[local[v]]
		if xv < lo[i]-1e-6 || xv > hi[i]+1e-6 {
			return false
		}
	}
	for _, k := range rowOrder {
		lhs := 0.0
		for _, t := range rowTerms[k] {
			lhs += t.Coef * sol.X[t.Var]
		}
		rhs := tightest[k]
		switch k.op {
		case opLE:
			if lhs > rhs+1e-6 {
				return false
			}
		case opGE:
			if lhs < rhs-1e-6 {
				return false
			}
		default:
			if math.Abs(lhs-rhs) > 1e-6 {
				return false
			}
		}
	}
	for gv, lv := range local {
		vals[gv] = sol.X[lv]
	}
	return true
}

func appendSig(sig []byte, v int, c float64) []byte {
	sig = append(sig,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	bits := math.Float64bits(c)
	for s := 0; s < 64; s += 8 {
		sig = append(sig, byte(bits>>s))
	}
	return sig
}

// descend performs coordinate descent over the component's entity groups
// (routes and via columns): each group is optimized by a small LP with
// every other group frozen at its current value. Feasibility is preserved
// at every step, so large components still improve without a giant LP.
func (m *model) descend(vars []int, cons []gcons, obj []term, vals []float64) bool {
	groups := map[int][]int{}
	for _, v := range vars {
		o := m.varOwn[v]
		groups[o] = append(groups[o], v)
	}
	var order []int
	for o := range groups {
		order = append(order, o)
	}
	sort.Ints(order)

	// Index constraints and objective terms by group.
	consBy := map[int][]gcons{}
	for _, c := range cons {
		seen := map[int]bool{}
		for _, t := range c.terms {
			o := m.varOwn[t.v]
			if !seen[o] {
				seen[o] = true
				consBy[o] = append(consBy[o], c)
			}
		}
	}
	objBy := map[int][]term{}
	for _, t := range obj {
		o := m.varOwn[t.v]
		objBy[o] = append(objBy[o], t)
	}

	improvedAny := false
	for pass := 0; pass < descentPass; pass++ {
		for _, o := range order {
			gv := groups[o]
			set := make(map[int]bool, len(gv))
			for _, v := range gv {
				set[v] = true
			}
			if m.solveLP(gv, consBy[o], objBy[o], vals, set, false) {
				improvedAny = true
			}
		}
	}
	return improvedAny
}

// integerize rounds the solution to integer geometry: via coordinates and
// free c variables to even integers (so diagonal line intersections stay
// integral). Column coordinates constrained by ties (fixed lines) or links
// (shared lines with other columns) are derived instead of rounded so the
// equalities hold exactly; inconsistent link cycles revert their
// components to the legal initial geometry.
func (m *model) integerize(vals []float64, reverted map[int]bool, comp *dsu.DSU) {
	roundEven := func(v float64) float64 { return math.Round(v/2) * 2 }
	isReverted := func(v int) bool { return reverted[comp.Find(v)] }

	// Column coordinate access at the current assignment.
	colC := func(ci int, o geom.Orient) float64 {
		col := &m.cols[ci]
		a, b := o.LineCoeff()
		if col.fixed {
			return float64(a)*float64(col.init.X) + float64(b)*float64(col.init.Y)
		}
		return float64(a)*vals[col.vx] + float64(b)*vals[col.vy]
	}
	// deriveOnLine rounds the column's free coordinate and derives the
	// other from the line a·x + b·y = c.
	deriveOnLine := func(ci int, o geom.Orient, c float64) {
		col := &m.cols[ci]
		switch o {
		case geom.OrientH: // y = c
			vals[col.vy] = c
			vals[col.vx] = roundEven(vals[col.vx])
		case geom.OrientV: // x = c
			vals[col.vx] = c
			vals[col.vy] = roundEven(vals[col.vy])
		case geom.OrientD135: // x + y = c
			vals[col.vx] = roundEven(vals[col.vx])
			vals[col.vy] = c - vals[col.vx]
		default: // y − x = c
			vals[col.vx] = roundEven(vals[col.vx])
			vals[col.vy] = c + vals[col.vx]
		}
	}

	processed := make([]bool, len(m.cols))
	var queue []int
	enqueue := func(ci int) {
		processed[ci] = true
		queue = append(queue, ci)
	}
	for ci := range m.cols {
		col := &m.cols[ci]
		switch {
		case col.fixed:
			enqueue(ci)
		case isReverted(col.vx):
			vals[col.vx] = m.initVal[col.vx]
			vals[col.vy] = m.initVal[col.vy]
			enqueue(ci)
		case len(col.ties) >= 1:
			deriveOnLine(ci, col.ties[0].o, float64(col.ties[0].c))
			enqueue(ci)
		}
	}
	propagate := func() {
		for len(queue) > 0 {
			ci := queue[0]
			queue = queue[1:]
			for _, lk := range m.cols[ci].links {
				other := &m.cols[lk.other]
				c := colC(ci, lk.o)
				if processed[lk.other] {
					if math.Abs(colC(lk.other, lk.o)-c) > 0.5 {
						// Inconsistent cycle: revert both components.
						for _, cc := range []*viaCol{&m.cols[ci], other} {
							if !cc.fixed {
								reverted[comp.Find(cc.vx)] = true
							}
						}
					}
					continue
				}
				if other.fixed {
					processed[lk.other] = true
					continue
				}
				deriveOnLine(lk.other, lk.o, c)
				enqueue(lk.other)
			}
		}
	}
	propagate()
	for ci := range m.cols {
		if processed[ci] {
			continue
		}
		col := &m.cols[ci]
		vals[col.vx] = roundEven(vals[col.vx])
		vals[col.vy] = roundEven(vals[col.vy])
		enqueue(ci)
		propagate()
	}

	viaVar := make(map[int]bool)
	for ci := range m.cols {
		if !m.cols[ci].fixed {
			viaVar[m.cols[ci].vx] = true
			viaVar[m.cols[ci].vy] = true
		}
	}
	for v := 0; v < m.nvars; v++ {
		if isReverted(v) {
			vals[v] = m.initVal[v]
			continue
		}
		if viaVar[v] {
			continue
		}
		vals[v] = roundEven(vals[v])
	}
}

// writeBack applies the final variable assignment to the layout.
func (m *model) writeBack(vals []float64) {
	for ri := range m.routes {
		mr := &m.routes[ri]
		pts := mr.points()
		out := make([]geom.Point, 0, len(pts))
		for pi, p := range pts {
			xv := p.x.eval(vals)
			yv := p.y.eval(vals)
			if DebugVerify && (math.IsNaN(xv) || math.IsNaN(yv) || math.IsInf(xv, 0) || math.IsInf(yv, 0)) {
				println("lpopt: NaN point", pi, "route li", mr.li, "net", mr.net, "col0", mr.col0, "col1", mr.col1)
				for _, t := range p.x.t {
					println("   x var", t.v, "own", m.varOwn[t.v], "val*1000", int(vals[t.v]*1000))
				}
				for _, t := range p.y.t {
					println("   y var", t.v, "own", m.varOwn[t.v], "val*1000", int(vals[t.v]*1000))
				}
			}
			pt := geom.Pt(int64(math.Round(xv)), int64(math.Round(yv)))
			if n := len(out); n > 0 && out[n-1].Eq(pt) {
				continue
			}
			out = append(out, pt)
		}
		if len(out) >= 2 {
			m.lay.Routes[mr.li].Pts = out
		}
	}
	for ci := range m.cols {
		col := &m.cols[ci]
		if col.fixed {
			continue
		}
		c := geom.Pt(int64(math.Round(vals[col.vx])), int64(math.Round(vals[col.vy])))
		for _, vi := range col.viaIdxs {
			m.lay.Vias[vi].Center = c
		}
	}
}

// resetInconsistentRoutes reverts any route whose direction signs no
// longer hold at vals — possible when coordinate descent inherits an
// infeasible state (after margin escalation) and skips a group. With via
// centers frozen, every route's variables are self-contained, so resetting
// just that route restores its legal initial geometry without touching
// anything else. It returns the number of routes reset.
func (m *model) resetInconsistentRoutes(vals []float64, dirty map[int]bool) int {
	ownerVars := map[int][]int{}
	for v := 0; v < m.nvars; v++ {
		ownerVars[m.varOwn[v]] = append(ownerVars[m.varOwn[v]], v)
	}
	resets := 0
	for ri := range m.routes {
		mr := &m.routes[ri]
		pts := mr.points()
		bad := false
		for k := range mr.orients {
			ax, _ := dominant(mr.orients[k])
			d := pts[k+1].along(ax).eval(vals) - pts[k].along(ax).eval(vals)
			if d*mr.sigma[k] <= 0 {
				bad = true
				break
			}
		}
		if !bad {
			continue
		}
		for _, v := range ownerVars[routeOwner+mr.li] {
			vals[v] = m.initVal[v]
			if dirty != nil {
				dirty[v] = true
			}
		}
		resets++
	}
	return resets
}

// DebugVerify, when set, makes Optimize print any model constraint that the
// final variable assignment violates (diagnostic aid for development).
var DebugVerify bool

func (m *model) debugCheck(vals []float64) {
	for ci, c := range m.cons {
		lhs := 0.0
		for _, t := range c.terms {
			lhs += t.c * vals[t.v]
		}
		bad := false
		switch c.op {
		case opLE:
			bad = lhs > c.rhs+1e-6
		case opGE:
			bad = lhs < c.rhs-1e-6
		default:
			bad = math.Abs(lhs-c.rhs) > 1e-6
		}
		if bad {
			vars := make([]int, 0, len(c.terms))
			for _, t := range c.terms {
				vars = append(vars, t.v)
			}
			println("lpopt: constraint", ci, "violated: lhs", int(lhs), "op", int(c.op), "rhs", int(c.rhs), "nvars", len(vars))
			for _, t := range c.terms {
				println("   var", t.v, "owner", m.varOwn[t.v], "coef", int(t.c*1000), "val", int(vals[t.v]), "init", int(m.initVal[t.v]))
			}
		}
	}
}
