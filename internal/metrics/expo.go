package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4, which WriteText produces.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in the Prometheus text
// exposition format. Output is deterministic for a given set of values:
// families in name order, series in label-value order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	hooks := append([]func(){}, r.onScrape...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.writeText(bw)
	}
	return bw.Flush()
}

// Expose renders the registry to a byte slice (the byte-stable snapshot
// used by tests and differential gates).
func (r *Registry) Expose() []byte {
	var sb strings.Builder
	r.WriteText(&sb) // strings.Builder never errors
	return []byte(sb.String())
}

func (f *family) writeText(w *bufio.Writer) {
	f.mu.Lock()
	fn := f.fn
	rows := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		rows = append(rows, s)
	}
	f.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		return seriesKey(rows[i].labelValues) < seriesKey(rows[j].labelValues)
	})

	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.kind))
	w.WriteByte('\n')

	if fn != nil {
		writeSample(w, f.name, nil, nil, "", fn())
		return
	}
	for _, s := range rows {
		switch f.kind {
		case KindCounter:
			writeSample(w, f.name, f.labels, s.labelValues, "", float64(s.val.Load()))
		case KindGauge:
			writeSample(w, f.name, f.labels, s.labelValues, "", math.Float64frombits(uint64(s.val.Load())))
		case KindHistogram:
			var cum int64
			for i := range f.buckets {
				cum += s.counts[i].Load()
				writeSample(w, f.name+"_bucket", f.labels, s.labelValues,
					formatFloat(f.buckets[i]), float64(cum))
			}
			cum += s.counts[len(f.buckets)].Load()
			writeSample(w, f.name+"_bucket", f.labels, s.labelValues, "+Inf", float64(cum))
			writeSample(w, f.name+"_sum", f.labels, s.labelValues, "", math.Float64frombits(s.sumBits.Load()))
			writeSample(w, f.name+"_count", f.labels, s.labelValues, "", float64(cum))
		}
	}
}

// writeSample writes one exposition line. le, when non-empty, is appended
// as the histogram bucket bound label.
func writeSample(w *bufio.Writer, name string, labels, values []string, le string, v float64) {
	w.WriteString(name)
	if len(labels) > 0 || le != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(`le="`)
			w.WriteString(le)
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

// formatFloat renders a sample value: shortest round-trip form, with
// integral values printed without an exponent or decimal point.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
