package router

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rdlroute/internal/ctile"
	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/metrics"
	"rdlroute/internal/obs"
)

// Conflict-injection suite: hand-built designs whose stage-4 corridors
// overlap in exactly one known global cell, so the speculative arbiter's
// decisions — which net speculates, which one aborts, which one replays —
// are forced rather than observed. Every test pins the spec.* counter
// values and checks them at several worker counts, because the counters
// are part of the determinism contract, not just diagnostics.

// specOptions routes everything through stage 4 speculatively on a 3x3
// global-cell grid, where corridor cells are big enough to place by hand.
func specOptions() Options {
	opts := DefaultOptions()
	opts.EnableStage2 = false // every net reaches the stage-4 queue
	opts.EnableLP = false
	opts.GlobalCells = 3
	opts.Speculative = true
	return opts
}

// conflictPad appends a chipless I/O pad and returns its net reference.
func conflictPad(d *design.Design, x, y int64) design.PadRef {
	id := len(d.IOPads)
	d.IOPads = append(d.IOPads, design.IOPad{ID: id, Chip: -1, Center: geom.Pt(x, y), HalfW: 8})
	return design.PadRef{Kind: design.IOKind, Index: id}
}

func conflictNet(d *design.Design, p1, p2 design.PadRef) {
	d.Nets = append(d.Nets, design.Net{ID: len(d.Nets), P1: p1, P2: p2})
}

// crossDesign is the minimal two-net conflict: on a 960x960 outline with
// 320-unit global cells, net 0 runs horizontally through cell row 1 and
// net 1 vertically through cell column 1. Their corridors share exactly
// the center cell (1,1), so net 1's region mask collides with net 0's and
// the predictor must abort net 1 while net 0 speculates clean.
func crossDesign() *design.Design {
	d := &design.Design{
		Name:       "spec-cross",
		Outline:    geom.RectWH(0, 0, 960, 960),
		WireLayers: 2,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
	}
	conflictNet(d, conflictPad(d, 60, 480), conflictPad(d, 900, 480))
	conflictNet(d, conflictPad(d, 480, 60), conflictPad(d, 480, 900))
	return d
}

// threeNetDesign adds a diagonal third net to crossDesign. Any monotone
// corridor from cell (0,0) to cell (2,2) crosses row 1, which net 0's
// corridor covers entirely, so net 2 conflicts with net 0 no matter which
// staircase the tile search picks. Sorted shortest-first, the diagonal
// commits last: one hit, two predicted aborts, two replays.
func threeNetDesign() *design.Design {
	d := crossDesign()
	d.Name = "spec-three"
	conflictNet(d, conflictPad(d, 60, 60), conflictPad(d, 900, 900))
	return d
}

// countersFor routes d speculatively at the given worker count and
// returns the result, lattice fingerprint and full counter map.
func countersFor(t *testing.T, d *design.Design, workers int) (*Result, uint64, map[string]int64) {
	t.Helper()
	opts := specOptions()
	opts.Workers = workers
	c := obs.NewCollector()
	opts.Tracer = c
	res, la, err := route(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res, la.Fingerprint(), c.Snapshot().Counters
}

// assertSpecCounters pins the spec.* counter values of one design at
// worker counts 1, 2 and 8, and checks the committed state matches a
// non-speculative run byte for byte.
func assertSpecCounters(t *testing.T, d *design.Design, want map[string]int64) {
	t.Helper()
	seqOpts := specOptions()
	seqOpts.Speculative = false
	_, seqLa, err := route(context.Background(), d, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	seqFp := seqLa.Fingerprint()
	for _, w := range []int{1, 2, 8} {
		res, fp, counters := countersFor(t, d, w)
		if fp != seqFp {
			t.Errorf("workers=%d: speculative fingerprint %x, sequential %x", w, fp, seqFp)
		}
		if res.RoutedNets != len(d.Nets) {
			t.Errorf("workers=%d: routed %d of %d nets", w, res.RoutedNets, len(d.Nets))
		}
		for name, v := range want {
			if counters[name] != v {
				t.Errorf("workers=%d: counter %s = %d, want %d", w, name, counters[name], v)
			}
		}
	}
}

// TestSpecConflictMasksOverlapOneCell verifies the premise of the suite
// against the real stage-3 machinery: the two corridors of crossDesign
// share exactly one global cell, and their rasterized region masks
// overlap.
func TestSpecConflictMasksOverlapOneCell(t *testing.T) {
	d := crossDesign()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := specOptions()
	model := ctile.NewModel(d, opts.GlobalCells)
	sites := model.InsertVias()
	la, err := lattice.New(d, opts.Pitch)
	if err != nil {
		t.Fatal(err)
	}
	viaCost := seqViaCost(opts)

	corridors := make([][]ctile.TileRef, len(d.Nets))
	masks := make([]*lattice.RegionMask, len(d.Nets))
	for ni, nn := range d.Nets {
		from, fl := terminal(d, nn.P1)
		to, tl := terminal(d, nn.P2)
		cor, ok := model.FindCorridor(from, fl, to, tl, sites, viaCost)
		if !ok {
			t.Fatalf("net %d: no corridor", ni)
		}
		corridors[ni] = cor
		masks[ni] = corridorMask(la, model, cor, opts.Pitch)
	}
	shared := 0
	in0 := map[ctile.TileRef]bool{}
	for _, ref := range corridors[0] {
		in0[ref] = true
	}
	for _, ref := range corridors[1] {
		if in0[ref] {
			shared++
		}
	}
	if shared != 1 {
		t.Errorf("corridors share %d cells, want exactly 1 (the center cell)", shared)
	}
	if !masks[0].Overlaps(masks[1]) {
		t.Error("region masks of crossing corridors do not overlap")
	}
	if n := masks[0].OverlapCount(masks[1]); n == 0 {
		t.Error("OverlapCount = 0 for overlapping masks")
	}
}

// TestSpecConflictTwoNets: net 0 speculates and commits; net 1's mask
// collides with net 0's, so the predictor holds it back and the arbiter
// replays it live — one hit, one predicted abort, one replay, in one
// round, at every worker count.
func TestSpecConflictTwoNets(t *testing.T) {
	assertSpecCounters(t, crossDesign(), map[string]int64{
		"spec.rounds":          1,
		"spec.hit":             1,
		"spec.abort":           1,
		"spec.abort.predicted": 1,
		"spec.abort.stale":     0,
		"spec.replay":          1,
		"spec.skip":            0,
	})
}

// TestSpecConflictThreeNets: the diagonal net conflicts with the
// horizontal one just like the vertical does, so only the lowest-order
// net speculates and both higher-index nets replay after its commit.
func TestSpecConflictThreeNets(t *testing.T) {
	assertSpecCounters(t, threeNetDesign(), map[string]int64{
		"spec.rounds":          1,
		"spec.hit":             1,
		"spec.abort":           2,
		"spec.abort.predicted": 2,
		"spec.abort.stale":     0,
		"spec.replay":          2,
		"spec.skip":            0,
	})
}

// TestSpecStaleFootprintAbort forces the OTHER abort arm: two nets along
// the same x-row but on different wire layers (an I/O net on layer 0, a
// bump net whose terminals sit on the top layer). Their per-layer region
// masks are disjoint, so both speculate — but the lattice journal folds
// all layers into one 2D block grid, so the first commit stales the
// second net's A* footprint and the arbiter must discard a finished
// speculative search and replay it.
func TestSpecStaleFootprintAbort(t *testing.T) {
	d := &design.Design{
		Name:       "spec-stale",
		Outline:    geom.RectWH(0, 0, 960, 960),
		WireLayers: 3,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
	}
	conflictNet(d, conflictPad(d, 60, 480), conflictPad(d, 900, 480))
	b1 := len(d.BumpPads)
	d.BumpPads = append(d.BumpPads,
		design.BumpPad{ID: b1, Center: geom.Pt(60, 480), W: 16},
		design.BumpPad{ID: b1 + 1, Center: geom.Pt(900, 480), W: 16})
	conflictNet(d,
		design.PadRef{Kind: design.BumpKind, Index: b1},
		design.PadRef{Kind: design.BumpKind, Index: b1 + 1})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSpecCounters(t, d, map[string]int64{
		"spec.rounds":          1,
		"spec.hit":             1,
		"spec.abort":           1,
		"spec.abort.predicted": 0,
		"spec.abort.stale":     1,
		"spec.replay":          1,
	})
}

// TestSpecAbortMetricsSeries checks the production wiring end to end:
// spec.* counters emitted during a speculative run must surface in the
// Prometheus exposition as rdl_spec_*_total series.
func TestSpecAbortMetricsSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	opts := specOptions()
	opts.Workers = 2
	opts.Tracer = metrics.NewBridge(reg)
	if _, err := Route(crossDesign(), opts); err != nil {
		t.Fatal(err)
	}
	expo := string(reg.Expose())
	for _, line := range []string{
		"rdl_spec_rounds_total 1",
		"rdl_spec_hit_total 1",
		"rdl_spec_abort_total 1",
		"rdl_spec_abort_predicted_total 1",
		"rdl_spec_replay_total 1",
	} {
		if !strings.Contains(expo, line) {
			t.Errorf("exposition missing %q", line)
		}
	}
}

// TestSpecEventsCommitOrderOnce: aborted speculative searches are silent;
// only the commit (or the live replay) emits the net.route event. The
// event stream of a speculative run must therefore list each net exactly
// once, in the sequential commit order.
func TestSpecEventsCommitOrderOnce(t *testing.T) {
	d := threeNetDesign()
	opts := specOptions()
	opts.Workers = 8
	c := obs.NewCollector()
	opts.Tracer = c
	if _, err := Route(d, opts); err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, e := range c.Events("net.route") {
		if e.Str("stage") == "sequential" {
			order = append(order, int(e.Num("net")))
		}
	}
	// Shortest-first: the two straight nets (0, 1) before the diagonal (2).
	want := []int{0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("%d sequential net.route events, want %d (one per net): %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order %v, want commit order %v", order, want)
		}
	}
}

// TestCancelMidSpeculation is TestCancelMidParallelStage with the
// speculative scheduler engaged: the deadline sweep lands inside
// speculation rounds — mid-batch, mid-search, between prediction and
// commit — and an aborted round must leave nothing behind. Speculative
// searches never write the lattice, so the fingerprint of a full run
// after each cancelled run must be byte-identical.
func TestCancelMidSpeculation(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 8
	opts.Speculative = true

	res1, la1, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := la1.Fingerprint()

	for _, budget := range []time.Duration{
		2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond, 120 * time.Millisecond,
	} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		res, _, err := route(ctx, genDense1(t), opts)
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %v: err = %v, want a context error", budget, err)
			}
			if res != nil {
				t.Fatalf("budget %v: cancelled speculative run returned a result", budget)
			}
		}
		// A budget the flow beat completed normally; the full run below
		// still proves the lattice state.

		res2, la2, err := route(context.Background(), genDense1(t), opts)
		if err != nil {
			t.Fatalf("budget %v: re-route: %v", budget, err)
		}
		if fp2 := la2.Fingerprint(); fp2 != fp1 {
			t.Fatalf("budget %v: lattice fingerprint changed after a cancelled speculative run: %x != %x", budget, fp2, fp1)
		}
		if res1.Routability != res2.Routability || res1.Wirelength != res2.Wirelength ||
			res1.RoutedNets != res2.RoutedNets {
			t.Fatalf("budget %v: results diverged after a cancelled speculative run", budget)
		}
	}
}
