package qa

import (
	"math/rand"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// cloneDesign deep-copies d so transforms never alias the original.
func cloneDesign(d *design.Design) *design.Design {
	c := *d
	c.Chips = append([]design.Chip(nil), d.Chips...)
	c.IOPads = append([]design.IOPad(nil), d.IOPads...)
	c.BumpPads = append([]design.BumpPad(nil), d.BumpPads...)
	c.Nets = append([]design.Net(nil), d.Nets...)
	c.Obstacles = append([]design.Obstacle(nil), d.Obstacles...)
	c.FixedVias = append([]design.FixedVia(nil), d.FixedVias...)
	return &c
}

// Translate returns the design shifted by (dx, dy). Routing operates
// relative to the outline, so a translated design must route to the same
// routability and wirelength.
func Translate(d *design.Design, dx, dy int64) *design.Design {
	t := cloneDesign(d)
	shift := func(r geom.Rect) geom.Rect {
		return geom.Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
	}
	t.Outline = shift(t.Outline)
	for i := range t.Chips {
		t.Chips[i].Box = shift(t.Chips[i].Box)
	}
	for i := range t.IOPads {
		t.IOPads[i].Center.X += dx
		t.IOPads[i].Center.Y += dy
	}
	for i := range t.BumpPads {
		t.BumpPads[i].Center.X += dx
		t.BumpPads[i].Center.Y += dy
	}
	for i := range t.Obstacles {
		t.Obstacles[i].Box = shift(t.Obstacles[i].Box)
	}
	for i := range t.FixedVias {
		t.FixedVias[i].Center.X += dx
		t.FixedVias[i].Center.Y += dy
	}
	return t
}

// MirrorX returns the design reflected across the vertical axis through
// the outline's center: x ↦ X0 + X1 − x. The outline maps to itself, and
// because generated outlines have grid-multiple widths, lattice nodes map
// to lattice nodes — mirroring preserves the set of legal routings
// exactly, so routability and wirelength must be preserved up to
// search-order tie-breaking.
func MirrorX(d *design.Design) *design.Design {
	t := cloneDesign(d)
	c := d.Outline.X0 + d.Outline.X1
	mx := func(x int64) int64 { return c - x }
	mrect := func(r geom.Rect) geom.Rect {
		return geom.Rect{X0: mx(r.X1), Y0: r.Y0, X1: mx(r.X0), Y1: r.Y1}
	}
	t.Outline = mrect(t.Outline)
	for i := range t.Chips {
		t.Chips[i].Box = mrect(t.Chips[i].Box)
	}
	for i := range t.IOPads {
		t.IOPads[i].Center.X = mx(t.IOPads[i].Center.X)
	}
	for i := range t.BumpPads {
		t.BumpPads[i].Center.X = mx(t.BumpPads[i].Center.X)
	}
	for i := range t.Obstacles {
		t.Obstacles[i].Box = mrect(t.Obstacles[i].Box)
	}
	for i := range t.FixedVias {
		t.FixedVias[i].Center.X = mx(t.FixedVias[i].Center.X)
	}
	return t
}

// PermuteNets returns the design with its net list shuffled (IDs follow
// the new positions, fixed-via net references are remapped). The set of
// connection requirements is unchanged, so routability and wirelength
// must be preserved up to ordering tie-breaks.
func PermuteNets(d *design.Design, rng *rand.Rand) *design.Design {
	t := cloneDesign(d)
	perm := rng.Perm(len(t.Nets))
	nets := make([]design.Net, len(t.Nets))
	inv := make([]int, len(t.Nets))
	for newIdx, oldIdx := range perm {
		nets[newIdx] = t.Nets[oldIdx]
		nets[newIdx].ID = newIdx
		inv[oldIdx] = newIdx
	}
	t.Nets = nets
	for i := range t.FixedVias {
		if t.FixedVias[i].Net >= 0 {
			t.FixedVias[i].Net = inv[t.FixedVias[i].Net]
		}
	}
	return t
}
