package metrics

import (
	"strings"
	"sync"
	"time"

	"rdlroute/internal/obs"
)

// Bridge is the obs→metrics adapter: an obs.Tracer that turns the
// routing flow's existing instrumentation into cumulative production
// series without touching any stage code.
//
// Mapping:
//
//   - Count("astar.searches", n)  → counter  rdl_astar_searches_total
//   - Observe("astar.expanded",v) → histogram rdl_astar_expanded (SizeBuckets)
//   - Span("stage:sequential")    → histogram rdl_stage_duration_seconds{stage="sequential"}
//   - Span(other)                 → histogram rdl_span_duration_seconds{span=...}
//   - Event(name)                 → counter  rdl_events_total{event=name}
//
// Obs names are sanitized for the exposition charset (dots and dashes
// become underscores). The bridge is purely observational: attaching it
// to Options.Tracer never changes routed results — the qa metrics gate
// holds fingerprints and result bytes to byte-equality with the bridge
// on versus off.
//
// Safe for concurrent use; hot-path updates are atomic with a read-locked
// name lookup.
type Bridge struct {
	reg    *Registry
	stages HistogramVec
	spans  HistogramVec
	events CounterVec

	mu       sync.RWMutex
	counters map[string]Counter
	dists    map[string]Histogram
}

// NewBridge returns a bridge feeding reg. Counter and distribution
// families are created lazily as the flow emits them.
func NewBridge(reg *Registry) *Bridge {
	return &Bridge{
		reg: reg,
		stages: reg.HistogramVec("rdl_stage_duration_seconds",
			"Wall time of each routing-flow stage span.", LatencyBuckets(), "stage"),
		spans: reg.HistogramVec("rdl_span_duration_seconds",
			"Wall time of non-stage observability spans.", LatencyBuckets(), "span"),
		events: reg.CounterVec("rdl_events_total",
			"Point-in-time observability events by name.", "event"),
		counters: make(map[string]Counter),
		dists:    make(map[string]Histogram),
	}
}

// Registry returns the registry the bridge feeds.
func (b *Bridge) Registry() *Registry { return b.reg }

// sanitize maps an obs name onto the exposition charset.
func sanitize(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Enabled reports true: the bridge always records. Stage code still pays
// only the cost of building attrs plus atomic adds.
func (b *Bridge) Enabled() bool { return true }

// Count feeds the named obs counter into rdl_<name>_total.
func (b *Bridge) Count(name string, delta int64) {
	b.mu.RLock()
	c, ok := b.counters[name]
	b.mu.RUnlock()
	if !ok {
		c = b.reg.Counter("rdl_"+sanitize(name)+"_total", "Flow counter "+name+" (via obs bridge).")
		b.mu.Lock()
		b.counters[name] = c
		b.mu.Unlock()
	}
	if delta >= 0 {
		c.Add(delta)
	}
}

// Observe feeds the named obs distribution into histogram rdl_<name>.
func (b *Bridge) Observe(name string, v float64) {
	b.mu.RLock()
	h, ok := b.dists[name]
	b.mu.RUnlock()
	if !ok {
		h = b.reg.Histogram("rdl_"+sanitize(name), "Flow distribution "+name+" (via obs bridge).", SizeBuckets())
		b.mu.Lock()
		b.dists[name] = h
		b.mu.Unlock()
	}
	h.Observe(v)
}

// Event counts the named event in rdl_events_total.
func (b *Bridge) Event(name string, _ ...obs.Attr) {
	b.events.With(name).Inc()
}

// bridgeSpan times one open span.
type bridgeSpan struct {
	h  Histogram
	t0 time.Time
}

// End observes the span's elapsed wall time in seconds.
func (s bridgeSpan) End(_ ...obs.Attr) {
	s.h.Observe(time.Since(s.t0).Seconds())
}

// Span opens a timed span: stage spans ("stage:<name>") land in the
// per-stage latency histogram, everything else in the generic span
// histogram.
func (b *Bridge) Span(name string, _ ...obs.Attr) obs.Span {
	if stage, ok := strings.CutPrefix(name, "stage:"); ok {
		return bridgeSpan{h: b.stages.With(stage), t0: time.Now()}
	}
	return bridgeSpan{h: b.spans.With(sanitize(name)), t0: time.Now()}
}
