// Package par is the deterministic parallel execution layer for the
// routing flow: a bounded worker pool fanning out over index ranges with
// ordered, index-addressed result collection.
//
// The contract every caller relies on (and the qa determinism matrix
// enforces end to end) is that running a loop through this package is
// observationally identical to running it sequentially, at any worker
// count and any GOMAXPROCS:
//
//   - Work is addressed by index. fn(i) writes only state owned by index
//     i (typically results[i]); the pool never reorders, merges or
//     deduplicates — callers consume results in index order exactly as a
//     sequential loop would have produced them.
//   - Error selection is deterministic: when several indices fail, the
//     error of the LOWEST failing index is returned, matching what a
//     sequential loop that stops at the first failure would report.
//     (Later indices may also have run — fn must tolerate that — but the
//     reported error never depends on goroutine scheduling.)
//   - Cancellation passes through: once ctx is done, workers stop picking
//     up new chunks and the context error is returned unless a
//     lower-index fn error takes precedence.
//   - workers <= 1 (after Workers resolution) runs inline on the calling
//     goroutine with no pool at all, so the sequential path stays the
//     plain loop it always was.
//
// Fan-out is chunked: workers claim contiguous index ranges from an
// atomic cursor, so neighbouring indices usually land on one goroutine
// (cache locality for slice-writing loops) and the claim overhead is
// amortized over chunkTarget indices rather than paid per index.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n <= 0 selects
// runtime.GOMAXPROCS(0) (the "use the machine" default, matching
// Options.Workers == 0 throughout the flow), anything else is returned
// as-is. The result is always >= 1.
func Workers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
	}
	return n
}

// chunkTarget is the number of chunks the fan-out aims to carve per
// worker. More chunks than workers keeps the pool load-balanced when
// per-index cost is skewed (one giant net next to many trivial ones)
// while keeping cursor contention negligible.
const chunkTarget = 4

// chunkSize picks the contiguous index-range claim size for n items on
// w workers: ceil(n / (w * chunkTarget)), at least 1.
func chunkSize(n, w int) int {
	c := n / (w * chunkTarget)
	if n%(w*chunkTarget) != 0 {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// and returns the error of the lowest failing index, or the context
// error if ctx was cancelled before the loop completed. workers is
// resolved through Workers, so 0 means GOMAXPROCS. With one worker (or
// n <= 1) the loop runs inline and stops at the first error exactly
// like the hand-written sequential loop it replaces.
//
// fn must confine its writes to state owned by index i. fn may be
// called for indices beyond a failing one (workers drain their claimed
// chunk and in-flight chunks finish), so it must not assume earlier
// indices succeeded.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachW(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachW is ForEach with worker addressing: fn receives the id (in
// [0, workers) after resolution) of the goroutine running it alongside
// the index. Worker-owned scratch — per-worker search buffers, arenas —
// indexes by the id without locking: one worker never runs two fn calls
// concurrently. Determinism still demands that fn(w, i)'s RESULT not
// depend on w (ids are scheduling-dependent); scratch reuse is safe
// exactly when the scratch's history cannot leak into the result.
// Inline execution (workers == 1 or n <= 1) passes id 0.
func ForEachW(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	chunk := chunkSize(n, workers)
	var (
		cursor atomic.Int64 // next unclaimed index
		failed atomic.Int64 // lowest failing index + 1 hint, 0 = none
		mu     sync.Mutex
		errAt  = -1 // lowest failing index under mu
		errVal error
	)
	record := func(i int, err error) {
		mu.Lock()
		if errAt < 0 || i < errAt {
			errAt, errVal = i, err
		}
		mu.Unlock()
		failed.Store(1)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() != 0 || ctx.Err() != nil {
					return
				}
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(w, i); err != nil {
						record(i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if errAt >= 0 {
		return errVal
	}
	return ctx.Err()
}

// Map is ForEach collecting fn's results into an index-addressed slice:
// out[i] holds fn(i)'s value. On error the slice built so far is
// returned alongside the lowest-index error; entries whose fn did not
// run (or ran after a failure) hold their computed value or the zero
// value — callers that care must check the error first.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
