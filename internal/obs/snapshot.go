package obs

import (
	"fmt"
	"io"
	"sort"
)

// SpanStat aggregates all closed spans sharing one name.
type SpanStat struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMs float64 `json:"total_ms"`
}

// Dist summarizes one observed distribution.
type Dist struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

// Snapshot is the aggregated metrics view of one routing run: counters,
// span totals and distribution summaries. Route attaches it to Result
// when the tracer can produce one; the CLIs render it as text or JSON.
type Snapshot struct {
	Counters map[string]int64 `json:"counters,omitempty"`
	Spans    []SpanStat       `json:"spans,omitempty"`
	Dists    map[string]Dist  `json:"dists,omitempty"`
	Events   int              `json:"events"`
}

// Snapshot aggregates everything the collector has seen so far. With a
// bounded collector, counters and distribution count/min/max/sum/mean
// are exact; percentiles summarize the retained sample window.
func (c *Collector) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Snapshot{Events: c.nEvent}
	if len(c.counts) > 0 {
		s.Counters = make(map[string]int64, len(c.counts))
		for k, v := range c.counts {
			s.Counters[k] = v
		}
	}
	for _, st := range c.agg {
		s.Spans = append(s.Spans, *st)
	}
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	if len(c.dists) > 0 {
		s.Dists = make(map[string]Dist, len(c.dists))
		for k, agg := range c.dists {
			s.Dists[k] = summarize(agg)
		}
	}
	return s
}

func summarize(agg *distAgg) Dist {
	d := Dist{Count: agg.n, Min: agg.min, Max: agg.max, Sum: agg.sum}
	if agg.n == 0 {
		return d
	}
	d.Mean = d.Sum / float64(agg.n)
	sorted := append([]float64(nil), agg.samples...)
	sort.Float64s(sorted)
	d.P50 = quantile(sorted, 0.50)
	d.P95 = quantile(sorted, 0.95)
	return d
}

// quantile returns the q-quantile of a sorted sample (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// WriteText renders the snapshot as an aligned plain-text report.
func (s *Snapshot) WriteText(w io.Writer) error {
	if len(s.Spans) > 0 {
		if _, err := fmt.Fprintf(w, "spans (%d events total)\n", s.Events); err != nil {
			return err
		}
		for _, sp := range s.Spans {
			if _, err := fmt.Fprintf(w, "  %-28s %6d× %10.2fms\n", sp.Name, sp.Count, sp.TotalMs); err != nil {
				return err
			}
		}
	}
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintln(w, "counters"); err != nil {
			return err
		}
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %-28s %10d\n", k, s.Counters[k]); err != nil {
				return err
			}
		}
	}
	if len(s.Dists) > 0 {
		if _, err := fmt.Fprintln(w, "distributions"); err != nil {
			return err
		}
		keys := make([]string, 0, len(s.Dists))
		for k := range s.Dists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			d := s.Dists[k]
			if _, err := fmt.Fprintf(w, "  %-28s n=%-6d mean=%-10.1f p50=%-10.1f p95=%-10.1f max=%.1f\n",
				k, d.Count, d.Mean, d.P50, d.P95, d.Max); err != nil {
				return err
			}
		}
	}
	return nil
}
