// Package serve is the embeddable routing service: a bounded job queue in
// front of a fixed worker pool, each worker running the five-stage flow
// through router.RouteContext with a per-job deadline. The HTTP surface
// (POST /v1/jobs, GET /v1/jobs/{id}, trace streaming, health, metrics)
// lives in http.go; this file is the queue/worker/lifecycle core.
//
// Backpressure is explicit: a full queue rejects submissions immediately
// (HTTP 429) instead of queueing unboundedly, so a caller can retry
// against another replica. Shutdown is graceful: new submissions are
// refused, queued and in-flight jobs drain, then the workers exit.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/metrics"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// RouteFunc runs one routing job. Production use is router.RouteContext;
// tests substitute gates and failures.
type RouteFunc func(ctx context.Context, d *design.Design, opts router.Options) (*router.Result, error)

// Config sizes the service.
type Config struct {
	// Workers is the fixed worker-pool size (default 2). Each worker runs
	// one job at a time; jobs never share a lattice, so workers need no
	// coordination beyond the queue.
	Workers int
	// QueueDepth bounds the waiting room (default 8). A submission that
	// finds the queue full is rejected with ErrBusy; total in-system
	// capacity is QueueDepth + Workers.
	QueueDepth int
	// JobTimeout caps each job's run time (0 = no cap). A request may
	// lower it per job but never raise it.
	JobTimeout time.Duration
	// RouteWorkers is the default Options.Workers applied to jobs whose
	// submitted options leave it 0. With several server workers each
	// running a job, 1 (routes stay sequential; job-level parallelism
	// fills the cores) is the usual choice; 0 keeps the router default
	// of GOMAXPROCS. Results are identical at every value.
	RouteWorkers int
	// RouteSpeculative turns on Options.Speculative for every job that
	// did not already request it. Results are byte-identical either way
	// (the qa speculative-equivalence gate), so like Workers it never
	// splits the result-cache key space.
	RouteSpeculative bool
	// RoutePortfolio is the default Options.OrderPortfolio applied to
	// jobs whose submitted options leave it 0. Unlike RouteWorkers and
	// RouteSpeculative this default changes results (a different ordering
	// policy may win), so the resolved value is part of the result-cache
	// key: the same design routed with and without a portfolio occupies
	// two cache slots.
	RoutePortfolio int
	// Route substitutes the routing function (default router.RouteContext).
	// Leaving it nil also enables eco search-memo recording on cache
	// misses, so later delta jobs against the cached result reroute
	// incrementally; a substituted Route routes every miss from scratch.
	Route RouteFunc

	// CacheEntries bounds the content-addressed result cache (default 32
	// entries; negative disables caching). A submission whose canonical
	// (design, options) encoding matches a cached completed run is
	// answered from the cache inside the worker — the job and its flight
	// record still exist, tagged with the cache outcome.
	CacheEntries int
	// CacheBytes bounds the cache's retained bytes — encoded results plus
	// recorded eco memos (default 256 MiB; 0 means the default).
	CacheBytes int64

	// Registry receives the server's production metrics (job outcome
	// counters, latency histograms, queue gauges, Go runtime gauges, and
	// the obs-bridged flow series). Nil creates a private registry;
	// share one only across components scraped together.
	Registry *metrics.Registry
	// FlightSize bounds the flight recorder: the post-mortem ring keeps
	// the last FlightSize terminal jobs (default 64; negative disables).
	FlightSize int
	// Logger receives structured request/job logs with job-ID
	// correlation. Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 32
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.FlightSize == 0 {
		c.FlightSize = 64
	}
	if c.FlightSize < 0 {
		c.FlightSize = 0
	}
	if c.Logger == nil {
		c.Logger = slog.New(discardHandler{})
	}
	return c
}

// discardHandler drops every record (the default when Config.Logger is
// nil; slog.DiscardHandler needs Go 1.24).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// JobState is the lifecycle state of a job.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job is one routing request moving through the queue. All mutable fields
// are guarded by the owning Server's mu.
type Job struct {
	ID    string
	State JobState

	d       *design.Design
	opts    router.Options
	timeout time.Duration

	Result *router.Result
	Err    error

	Created  time.Time
	Started  time.Time
	Finished time.Time

	cancel context.CancelFunc // non-nil while running; also used by Cancel
	done   chan struct{}      // closed when the job reaches a terminal state

	// timedOut marks a failure caused by the per-job deadline, so the
	// outcome counter and flight record report "timeout" rather than a
	// generic failure.
	timedOut bool

	// cacheOutcome records how the result cache treated this job
	// ("hit", "miss", or "" when caching is disabled or the job never
	// ran); basePlan carries the resolved base plan of a delta job, so
	// the worker reroutes incrementally instead of cold.
	cacheOutcome string
	basePlan     *eco.Plan

	trace  *lockedBuffer
	tracer *obs.JSONL
	coll   *obs.Collector // per-job bounded collector for the flight record
}

// lockedBuffer is a mutex-guarded byte buffer: the job's JSONL tracer
// writes into it from the worker while the trace endpoint reads it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// ErrBusy is returned by Submit when the queue is full.
var ErrBusy = fmt.Errorf("serve: queue full")

// ErrDraining is returned by Submit after Shutdown began.
var ErrDraining = fmt.Errorf("serve: server draining")

// Metrics are the service counters exposed at /metrics.
type Metrics struct {
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected_busy"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
}

// Server is the routing service core.
type Server struct {
	cfg   Config
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	idem     map[string]string // idempotency key → job ID
	nextID   int
	draining bool
	running  int
	m        Metrics

	baseCtx  context.Context
	baseStop context.CancelFunc
	wg       sync.WaitGroup

	collector *obs.Collector
	met       *serverMetrics
	flight    *flightRecorder
	cache     *resultCache
	log       *slog.Logger
}

// jobCollectorBound caps each per-job collector's retained raw records;
// aggregates (the numbers the flight record reports) stay exact.
const jobCollectorBound = 2048

// New starts a server: the worker pool is live on return.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		queue:     make(chan *Job, cfg.QueueDepth),
		jobs:      make(map[string]*Job),
		idem:      make(map[string]string),
		baseCtx:   ctx,
		baseStop:  stop,
		collector: obs.NewBoundedCollector(64 * 1024),
		flight:    newFlightRecorder(cfg.FlightSize),
		cache:     newResultCache(cfg.CacheEntries, cfg.CacheBytes),
		log:       cfg.Logger,
	}
	s.met = newServerMetrics(cfg.Registry, s)
	registerCacheMetrics(cfg.Registry, s.cache)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Registry returns the server's metrics registry (for exposition and for
// mounting extra collectors).
func (s *Server) Registry() *metrics.Registry { return s.cfg.Registry }

// Submit enqueues a routing job. A non-empty idempotency key returns the
// existing job on replay instead of enqueueing a duplicate. A full queue
// returns ErrBusy; a draining server returns ErrDraining.
func (s *Server) Submit(d *design.Design, opts router.Options, timeout time.Duration, idemKey string) (*Job, error) {
	return s.submitJob(d, opts, timeout, idemKey, nil)
}

// SubmitDelta enqueues an incremental job: the edited design (already
// produced by eco.Apply) rides the normal queue, but the worker reroutes
// against the base plan's recorded memo instead of routing cold. The
// result is byte-identical either way; only the latency differs.
func (s *Server) SubmitDelta(d *design.Design, basePlan *eco.Plan, opts router.Options, timeout time.Duration, idemKey string) (*Job, error) {
	return s.submitJob(d, opts, timeout, idemKey, basePlan)
}

func (s *Server) submitJob(d *design.Design, opts router.Options, timeout time.Duration, idemKey string, basePlan *eco.Plan) (*Job, error) {
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.rejected.With("draining").Inc()
		s.log.Info("job rejected", "reason", "draining")
		return nil, ErrDraining
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			j := s.jobs[id]
			s.mu.Unlock()
			s.met.deduped.Inc()
			s.log.Info("job deduplicated", "job", j.ID, "idempotency_key", idemKey)
			return j, nil
		}
	}
	s.nextID++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", s.nextID),
		State:   JobQueued,
		d:       d,
		opts:    opts,
		timeout: timeout,
		Created: time.Now(),
		done:    make(chan struct{}),
		trace:   &lockedBuffer{},

		basePlan: basePlan,
	}
	j.tracer = obs.NewJSONL(j.trace)
	j.coll = obs.NewBoundedCollector(jobCollectorBound)

	select {
	case s.queue <- j:
	default:
		s.nextID-- // rejected jobs don't consume IDs
		s.m.Rejected++
		s.mu.Unlock()
		s.met.rejected.With("busy").Inc()
		s.log.Info("job rejected", "reason", "busy")
		return nil, ErrBusy
	}
	s.jobs[j.ID] = j
	if idemKey != "" {
		s.idem[idemKey] = j.ID
	}
	s.m.Accepted++
	s.mu.Unlock()
	s.met.submitted.Inc()
	s.log.Info("job accepted", "job", j.ID, "design", d.Name,
		"nets", len(d.Nets), "timeout", timeout.String())
	return j, nil
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a queued or running job. Cancelling a queued job marks
// it terminal immediately (the worker skips it); cancelling a running job
// fires its context. Returns false for unknown or already-terminal jobs.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	switch j.State {
	case JobQueued:
		j.State = JobCancelled
		j.Err = context.Canceled
		j.Finished = time.Now()
		s.m.Cancelled++
		s.met.finished.With(OutcomeCanceled).Inc()
		s.flight.record(s.flightRecordOf(j))
		s.log.Info("job cancelled while queued", "job", j.ID)
		close(j.done)
		return true
	case JobRunning:
		j.cancel()
		return true
	default:
		return false
	}
}

// Wait blocks until the job reaches a terminal state or ctx fires.
func (s *Server) Wait(ctx context.Context, j *Job) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Metrics returns the current counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m
	m.Queued = len(s.queue)
	m.Running = s.running
	return m
}

// Obs returns the aggregated observability snapshot across all jobs.
func (s *Server) Obs() *obs.Snapshot { return s.collector.Snapshot() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains gracefully: new submissions are refused, queued and
// in-flight jobs run to completion, then the workers exit. If ctx fires
// first, in-flight jobs are cancelled and Shutdown returns ctx's error
// after the workers finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseStop() // cancel in-flight jobs, then wait for the workers
		<-drained
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

func (s *Server) run(j *Job) {
	s.mu.Lock()
	if j.State != JobQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.State = JobRunning
	j.Started = time.Now()
	j.cancel = cancel
	s.running++
	opts := j.opts
	if opts.Workers == 0 {
		opts.Workers = s.cfg.RouteWorkers
	}
	opts.Speculative = opts.Speculative || s.cfg.RouteSpeculative
	if opts.OrderPortfolio == 0 {
		opts.OrderPortfolio = s.cfg.RoutePortfolio
	}
	opts.Tracer = obs.Multi(s.collector, j.tracer, j.coll, s.met.bridge)
	s.mu.Unlock()
	defer cancel()

	s.met.queueWait.Observe(j.Started.Sub(j.Created).Seconds())
	s.log.Info("job started", "job", j.ID, "design", j.d.Name,
		"queue_ms", float64(j.Started.Sub(j.Created))/float64(time.Millisecond))

	// Result cache: the content address covers the canonical (design,
	// options) bytes. The check lives here — not in Submit — so every
	// accepted submission mints a real job and flight record whatever the
	// cache says; a hit merely skips the routing work.
	var res *router.Result
	var err error
	var plan *eco.Plan
	cacheOutcome := ""
	key := ""
	if s.cache != nil {
		// Key on the resolved options, not the submitted ones: the
		// server-level portfolio default changes results, so two servers
		// configured differently must not share keys for the same
		// submitted document.
		key = cacheKey(j.d, opts)
		if cached, ok := s.cache.get(key); ok {
			res, cacheOutcome = cached, "hit"
		} else {
			cacheOutcome = "miss"
		}
	}
	if res == nil {
		switch {
		case s.cfg.Route != nil:
			res, err = s.cfg.Route(ctx, j.d, opts)
		case j.basePlan != nil:
			// Incremental: replay the flow against the base plan's memo.
			// Byte-identical to the cold route by the eco contract.
			if plan, err = j.basePlan.RerouteDesign(ctx, j.d, opts); plan != nil {
				res = plan.Result
			}
		default:
			// Cold route, recording a search memo so a future delta job
			// against this result reroutes incrementally.
			if plan, err = eco.Route(ctx, j.d, opts); plan != nil {
				res = plan.Result
			}
		}
		if err == nil {
			s.cache.put(key, j.d, res, plan)
		}
	}
	j.tracer.Flush()

	s.mu.Lock()
	j.Result = res
	j.Err = err
	j.cacheOutcome = cacheOutcome
	j.Finished = time.Now()
	s.running--
	switch {
	case err == nil:
		j.State = JobDone
		s.m.Completed++
	case errors.Is(err, context.Canceled):
		j.State = JobCancelled
		s.m.Cancelled++
	default:
		j.State = JobFailed
		j.timedOut = errors.Is(err, context.DeadlineExceeded)
		s.m.Failed++
	}
	outcome := outcomeOf(j)
	rec := s.flightRecordOf(j)
	runSecs := j.Finished.Sub(j.Started).Seconds()
	s.mu.Unlock()

	s.met.finished.With(outcome).Inc()
	s.met.jobDur.Observe(runSecs)
	s.flight.record(rec)
	attrs := []any{"job", j.ID, "outcome", outcome,
		"run_ms", runSecs * 1e3, "design", rec.Design}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
		s.log.Warn("job finished", attrs...)
	} else {
		attrs = append(attrs, "routability", rec.Routability,
			"wirelength", rec.Wirelength, "routed_nets", rec.RoutedNets)
		s.log.Info("job finished", attrs...)
	}
	close(j.done)
}

// flightRecordOf snapshots a terminal job into its post-mortem record.
// Callers hold s.mu.
func (s *Server) flightRecordOf(j *Job) FlightRecord {
	rec := FlightRecord{
		ID:        j.ID,
		State:     j.State,
		Outcome:   outcomeOf(j),
		Design:    j.d.Name,
		Nets:      len(j.d.Nets),
		OptionsFP: optionsFingerprint(j.opts),
		Workers:   j.opts.Workers,
		Cache:     j.cacheOutcome,
		Created:   j.Created,
		Finished:  j.Finished,
	}
	if j.Err != nil {
		rec.Error = j.Err.Error()
	}
	if !j.Started.IsZero() {
		rec.QueueMS = float64(j.Started.Sub(j.Created)) / float64(time.Millisecond)
		rec.RunMS = float64(j.Finished.Sub(j.Started)) / float64(time.Millisecond)
	}
	if r := j.Result; r != nil {
		rec.Routability = r.Routability
		rec.Wirelength = r.Wirelength
		rec.RoutedNets = r.RoutedNets
		rec.TotalNets = r.TotalNets
	}
	if j.coll != nil {
		rec.Obs = j.coll.Snapshot()
	}
	return rec
}

// Trace returns the job's JSONL trace captured so far (complete records
// only; the tracer is flushed when the job finishes).
func (j *Job) Trace() []byte {
	j.tracer.Flush()
	return j.trace.Snapshot()
}
