// Package qa is the randomized correctness harness of the repository: a
// seeded random design generator (irregular pad mixes, peripheral and
// area I/O, obstacle clutter, adversarial near-minimum spacing), a
// property harness that routes every generated design through both the
// concurrent five-stage flow and the Lin-ext baseline and asserts an
// oracle suite with the design-rule checker as the independent judge,
// differential gates (flow vs. baseline routability, revised vs. dense
// simplex), metamorphic gates (translation, net permutation, Y-axis
// mirroring), and a shrinker that reduces a failing design to a minimal
// reproducer.
//
// Everything is deterministic in the seed: a failure report always names
// the design seed, and re-running the harness with that seed replays the
// identical design and checks. The harness is exposed to users as
// `rdlverify -random N -seed S` and to CI as `go test ./internal/qa`.
package qa

import (
	"fmt"
	"strings"
)

// Failure is one oracle violation found while checking a design.
type Failure struct {
	Oracle string // which gate fired, e.g. "drc", "diff-routability"
	Detail string
}

// String implements fmt.Stringer.
func (f Failure) String() string { return f.Oracle + ": " + f.Detail }

// SeedFailure couples a design seed with every oracle failure observed on
// that design, plus (when shrinking is enabled) a minimal reproducer.
type SeedFailure struct {
	Seed     int64
	Failures []Failure

	// MinimalNetlist is the text netlist of the shrunken failing design,
	// present when the harness ran with shrinking enabled.
	MinimalNetlist string
	// MinimalNets and MinimalFailure describe the shrunken reproducer.
	MinimalNets    int
	MinimalFailure string
}

// String renders the failure with deterministic replay instructions.
func (sf SeedFailure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qa: design seed %d failed %d oracle(s):\n", sf.Seed, len(sf.Failures))
	for _, f := range sf.Failures {
		fmt.Fprintf(&b, "  - %s\n", f)
	}
	fmt.Fprintf(&b, "  replay: rdlverify -random 1 -seed %d\n", sf.Seed)
	fmt.Fprintf(&b, "  replay: go test ./internal/qa -run TestReplaySeed -replay-seed %d\n", sf.Seed)
	if sf.MinimalNetlist != "" {
		fmt.Fprintf(&b, "  minimal reproducer (%d nets, fails %q):\n", sf.MinimalNets, sf.MinimalFailure)
		for _, line := range strings.Split(strings.TrimRight(sf.MinimalNetlist, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// Report is the outcome of a harness run.
type Report struct {
	Designs  int // designs generated and checked
	Routed   int // nets routed by the five-stage flow, summed
	Baseline int // nets routed by Lin-ext, summed
	Nets     int // total nets across all designs
	Failures []SeedFailure
}

// OK reports whether every oracle held on every design.
func (r Report) OK() bool { return len(r.Failures) == 0 }

// String summarizes the run.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qa: %d designs, %d nets (flow routed %d, lin-ext routed %d), %d failing seed(s)\n",
		r.Designs, r.Nets, r.Routed, r.Baseline, len(r.Failures))
	for _, sf := range r.Failures {
		b.WriteString(sf.String())
	}
	return b.String()
}
