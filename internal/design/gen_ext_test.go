package design

import (
	"bytes"
	"testing"
)

func extSpec() GenSpec {
	return GenSpec{
		Name:       "ext",
		Chips:      3,
		IOPads:     48,
		BumpPads:   64,
		WireLayers: 4,
		Seed:       17,
		BoardFrac:  0.25,
		Obstacles:  6,
		FixedVias:  8,
	}
}

func TestGenerateWithExtensions(t *testing.T) {
	d, err := Generate(extSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	board := 0
	for _, n := range d.Nets {
		if n.P2.Kind == BumpKind {
			board++
		}
	}
	if want := len(d.Nets) / 4; board != want {
		t.Errorf("board nets = %d, want %d", board, want)
	}
	if len(d.Obstacles) != 6 {
		t.Errorf("obstacles = %d, want 6", len(d.Obstacles))
	}
	for _, o := range d.Obstacles {
		if o.Layer < 1 || o.Layer > d.WireLayers-2 {
			t.Errorf("obstacle on layer %d, want middle layers", o.Layer)
		}
	}
	if len(d.FixedVias) != 8 {
		t.Errorf("fixed vias = %d, want 8", len(d.FixedVias))
	}
	for _, v := range d.FixedVias {
		if v.Net != -1 {
			t.Errorf("generated fixed via should be netless, got net %d", v.Net)
		}
	}
}

func TestBoardNetsUseDistinctBumps(t *testing.T) {
	d, err := Generate(extSpec())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, n := range d.Nets {
		if n.P2.Kind != BumpKind {
			continue
		}
		if seen[n.P2.Index] {
			t.Errorf("bump %d reused", n.P2.Index)
		}
		seen[n.P2.Index] = true
	}
}

func TestExtensionsRoundTrip(t *testing.T) {
	d, err := Generate(extSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Format(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.FixedVias) != len(d.FixedVias) {
		t.Fatalf("fixed vias round trip: %d != %d", len(got.FixedVias), len(d.FixedVias))
	}
	for i := range d.FixedVias {
		if got.FixedVias[i] != d.FixedVias[i] {
			t.Errorf("fixed via %d mismatch: %+v vs %+v", i, got.FixedVias[i], d.FixedVias[i])
		}
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateFixedVias(t *testing.T) {
	d := tiny()
	d.FixedVias = append(d.FixedVias, FixedVia{Net: -1, Center: d.Outline.Center(), Slab: 0})
	if err := d.Validate(); err != nil {
		t.Errorf("valid fixed via rejected: %v", err)
	}
	d.FixedVias[0].Slab = 5
	if err := d.Validate(); err == nil {
		t.Error("bad slab accepted")
	}
	d.FixedVias[0].Slab = 0
	d.FixedVias[0].Net = 99
	if err := d.Validate(); err == nil {
		t.Error("bad net ref accepted")
	}
}

func TestObstaclesNeedMiddleLayers(t *testing.T) {
	spec := extSpec()
	spec.WireLayers = 2
	spec.FixedVias = 0
	if _, err := Generate(spec); err == nil {
		t.Error("obstacles on a 2-layer design should be rejected")
	}
}
