// Package congest computes per-global-cell track utilization of a routed
// layout — the congestion view designers use to judge a result and the
// quantity the paper's Eq. (1) overflow rates estimate ahead of time. It
// also renders an ASCII heatmap for the CLI.
package congest

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"rdlroute/internal/geom"
	"rdlroute/internal/layout"
)

// Map is the congestion map of one layout: utilization per wire layer and
// global cell, where utilization 1.0 means the cell's area is fully
// packed with wires at minimum pitch.
type Map struct {
	CellsX, CellsY int
	Layers         int
	outline        geom.Rect
	util           []float64 // [layer][cy][cx] flattened
}

// Build computes the map with a cells×cells grid.
func Build(l *layout.Layout, cells int) *Map {
	if cells < 1 {
		cells = 1
	}
	d := l.D
	m := &Map{
		CellsX: cells, CellsY: cells,
		Layers:  d.WireLayers,
		outline: d.Outline,
		util:    make([]float64, d.WireLayers*cells*cells),
	}
	pitch := float64(d.Rules.WireWidth + d.Rules.Spacing)
	cw := float64(d.Outline.W()) / float64(cells)
	ch := float64(d.Outline.H()) / float64(cells)
	cellArea := cw * ch
	if cellArea <= 0 {
		return m
	}
	for i := range l.Routes {
		r := &l.Routes[i]
		r.Segments(func(s geom.Segment) {
			m.addSegment(r.Layer, s, pitch, cellArea)
		})
	}
	return m
}

// addSegment distributes a wire segment's pitch-weighted area over the
// cells it crosses.
func (m *Map) addSegment(layer int, s geom.Segment, pitch, cellArea float64) {
	if s.Degenerate() {
		return
	}
	b := s.BBox()
	cx0, cy0 := m.cellOf(geom.Pt(b.X0, b.Y0))
	cx1, cy1 := m.cellOf(geom.Pt(b.X1, b.Y1))
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			cl := m.clipLen(s, cx, cy)
			if cl <= 0 {
				continue
			}
			m.util[(layer*m.CellsY+cy)*m.CellsX+cx] += cl * pitch / cellArea
		}
	}
}

func (m *Map) cellOf(p geom.Point) (cx, cy int) {
	w := m.outline.W()
	h := m.outline.H()
	cx = int((p.X - m.outline.X0) * int64(m.CellsX) / (w + 1))
	cy = int((p.Y - m.outline.Y0) * int64(m.CellsY) / (h + 1))
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= m.CellsX {
		cx = m.CellsX - 1
	}
	if cy >= m.CellsY {
		cy = m.CellsY - 1
	}
	return
}

// clipLen returns the length of the segment inside the cell (Liang-Barsky
// parametric clipping).
func (m *Map) clipLen(s geom.Segment, cx, cy int) float64 {
	w := float64(m.outline.W()) / float64(m.CellsX)
	h := float64(m.outline.H()) / float64(m.CellsY)
	x0 := float64(m.outline.X0) + float64(cx)*w
	y0 := float64(m.outline.Y0) + float64(cy)*h
	x1, y1 := x0+w, y0+h

	ax, ay := float64(s.A.X), float64(s.A.Y)
	dx := float64(s.B.X) - ax
	dy := float64(s.B.Y) - ay
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, ax-x0) || !clip(dx, x1-ax) || !clip(-dy, ay-y0) || !clip(dy, y1-ay) {
		return 0
	}
	if t1 <= t0 {
		return 0
	}
	return (t1 - t0) * math.Hypot(dx, dy)
}

// Utilization returns the cell's utilization on a layer.
func (m *Map) Utilization(layer, cx, cy int) float64 {
	return m.util[(layer*m.CellsY+cy)*m.CellsX+cx]
}

// Peak returns the most congested cell of a layer.
func (m *Map) Peak(layer int) (cx, cy int, u float64) {
	for y := 0; y < m.CellsY; y++ {
		for x := 0; x < m.CellsX; x++ {
			if v := m.Utilization(layer, x, y); v > u {
				u = v
				cx, cy = x, y
			}
		}
	}
	return
}

// Mean returns a layer's mean utilization.
func (m *Map) Mean(layer int) float64 {
	total := 0.0
	for y := 0; y < m.CellsY; y++ {
		for x := 0; x < m.CellsX; x++ {
			total += m.Utilization(layer, x, y)
		}
	}
	return total / float64(m.CellsX*m.CellsY)
}

// heat maps utilization to a density character.
var heat = []byte(" .:-=+*#%@")

// Render writes an ASCII heatmap of a layer (row 0 at the top = max y).
func (m *Map) Render(w io.Writer, layer int) error {
	bw := bufio.NewWriter(w)
	_, _, peak := m.Peak(layer)
	fmt.Fprintf(bw, "layer %d utilization (peak %.2f, mean %.3f)\n", layer, peak, m.Mean(layer))
	for y := m.CellsY - 1; y >= 0; y-- {
		for x := 0; x < m.CellsX; x++ {
			u := m.Utilization(layer, x, y)
			idx := 0
			if u > 1e-9 {
				// Any nonzero utilization is visible; full scale at 1.0.
				idx = 1 + int(u*float64(len(heat)-2))
				if idx >= len(heat) {
					idx = len(heat) - 1
				}
			}
			bw.WriteByte(heat[idx])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
