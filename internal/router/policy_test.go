package router

import (
	"context"
	"math/rand"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/layout"
)

// orderedIDs builds the stage-4 job queue for d under registry policy p
// and returns the committed net-ID sequence.
func orderedIDs(t *testing.T, d *design.Design, policy, workers int) []int {
	t.Helper()
	opts := WithOrderPolicy(DefaultOptions(), policy)
	opts.Workers = workers
	jobs, err := buildSeqJobs(context.Background(), d, layout.New(d), opts)
	if err != nil {
		t.Fatalf("policy %d (%s): buildSeqJobs: %v", policy, PortfolioPolicyName(policy), err)
	}
	ids := make([]int, len(jobs))
	for i, jb := range jobs {
		ids[i] = d.Nets[jb.net].ID
	}
	return ids
}

// TestPoliciesArePermutations: every registry policy must order the job
// queue without dropping or duplicating a net — each policy is a
// permutation of the net set.
func TestPoliciesArePermutations(t *testing.T) {
	d := genDense1(t)
	for policy := 0; policy < MaxPortfolio; policy++ {
		ids := orderedIDs(t, d, policy, 1)
		if len(ids) != len(d.Nets) {
			t.Fatalf("policy %d (%s): %d jobs for %d nets",
				policy, PortfolioPolicyName(policy), len(ids), len(d.Nets))
		}
		seen := make(map[int]bool, len(ids))
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("policy %d (%s): net ID %d appears twice",
					policy, PortfolioPolicyName(policy), id)
			}
			seen[id] = true
		}
	}
}

// TestPoliciesWorkerInvariant: the ordering a policy produces must not
// depend on the worker count its (possibly parallel) feature computation
// fans out on.
func TestPoliciesWorkerInvariant(t *testing.T) {
	d := genDense1(t)
	for policy := 0; policy < MaxPortfolio; policy++ {
		base := orderedIDs(t, d, policy, 1)
		for _, workers := range []int{2, 8} {
			got := orderedIDs(t, d, policy, workers)
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("policy %d (%s): order diverges at position %d with %d workers: net %d vs %d",
						policy, PortfolioPolicyName(policy), i, workers, got[i], base[i])
				}
			}
		}
	}
}

// TestPoliciesStableUnderRenumbering: permuting the Nets slice while each
// net keeps its ID must not change the ID sequence a policy emits — every
// sort key is a function of the net's geometry and ID, never its slice
// position (the position tie-break is unreachable while IDs are unique).
func TestPoliciesStableUnderRenumbering(t *testing.T) {
	d := genDense1(t)
	pd := *d
	pd.Nets = append([]design.Net(nil), d.Nets...)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(pd.Nets), func(i, j int) {
		pd.Nets[i], pd.Nets[j] = pd.Nets[j], pd.Nets[i]
	})
	if err := pd.Validate(); err != nil {
		t.Fatalf("shuffled design fails Validate: %v", err)
	}
	for policy := 0; policy < MaxPortfolio; policy++ {
		base := orderedIDs(t, d, policy, 1)
		got := orderedIDs(t, &pd, policy, 1)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("policy %d (%s): ID sequence changed under renumbering at position %d: %d vs %d",
					policy, PortfolioPolicyName(policy), i, got[i], base[i])
			}
		}
	}
}

// TestCongestedTieBreakPinned is the pinned regression for the congested
// ordering's tie rule: nets with equal overlap counts must commit in net
// ID order — not map-iteration or sort-instability order — and the whole
// sequence must be identical at workers 1, 2 and 8.
func TestCongestedTieBreakPinned(t *testing.T) {
	d := genDense1(t)
	opts := WithOrderPolicy(DefaultOptions(), 2) // congested
	jobsAt := func(workers int) []seqJob {
		o := opts
		o.Workers = workers
		jobs, err := buildSeqJobs(context.Background(), d, layout.New(d), o)
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	base := jobsAt(1)
	ties := 0
	for i := 1; i < len(base); i++ {
		if base[i].overlap == base[i-1].overlap {
			ties++
			if d.Nets[base[i].net].ID <= d.Nets[base[i-1].net].ID {
				t.Fatalf("equal-overlap nets out of ID order at position %d: id %d then %d (overlap %d)",
					i, d.Nets[base[i-1].net].ID, d.Nets[base[i].net].ID, base[i].overlap)
			}
		}
	}
	if ties == 0 {
		t.Fatal("dense1 produced no equal-overlap ties; the regression pins nothing")
	}
	for _, workers := range []int{2, 8} {
		got := jobsAt(workers)
		for i := range base {
			if got[i].net != base[i].net || got[i].overlap != base[i].overlap {
				t.Fatalf("congested order diverges at position %d with %d workers", i, workers)
			}
		}
	}
}

// TestShuffleSeedsDiffer: distinct shuffle seeds must produce distinct
// orderings — identical shuffles would waste portfolio slots silently.
func TestShuffleSeedsDiffer(t *testing.T) {
	d := genDense1(t)
	a := orderedIDs(t, d, NamedPolicies, 1)
	b := orderedIDs(t, d, NamedPolicies+1, 1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shuffle0 and shuffle1 produced identical orderings")
	}
}

// TestPolicyNames pins the registry's public naming, which reports and
// bench tables embed.
func TestPolicyNames(t *testing.T) {
	want := map[int]string{
		0: "shortest", 1: "longest", 2: "congested", 3: "detour", 4: "boundary",
		5: "shuffle0", 15: "shuffle10",
	}
	for i, name := range want {
		if got := PortfolioPolicyName(i); got != name {
			t.Errorf("PortfolioPolicyName(%d) = %q, want %q", i, got, name)
		}
	}
	if got := PortfolioPolicyName(-1); got != "invalid" {
		t.Errorf("PortfolioPolicyName(-1) = %q, want invalid", got)
	}
	if got := PortfolioPolicyName(MaxPortfolio); got != "invalid" {
		t.Errorf("PortfolioPolicyName(MaxPortfolio) = %q, want invalid", got)
	}
}
