// Package rdlroute is a from-scratch Go implementation of "Via-based
// Redistribution Layer Routing for InFO Packages with Irregular Pad
// Structures" (Wen, Cai, Hsu, Chang — DAC 2020): a pre-assignment router
// for via-based multi-chip multi-layer InFO wafer-level packages.
//
// The flow has five stages (paper Fig. 3): preprocessing of the fan-out
// region, weighted-MPSC-based concurrent routing, octagonal-tile routing
// graph construction with via insertion, sequential A*-search routing, and
// LP-based layout optimization. The package also ships the evaluation
// baseline Lin-ext, a Table-I benchmark generator, and a design-rule
// checker.
//
// Quick start:
//
//	d, _ := rdlroute.GenerateBenchmark("dense1")
//	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
//	if err != nil { ... }
//	fmt.Printf("routability %.1f%% wirelength %.0f\n",
//		res.Routability, res.Wirelength)
package rdlroute

import (
	"context"
	"io"

	"rdlroute/internal/baseline"
	"rdlroute/internal/codec"
	"rdlroute/internal/congest"
	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/eco"
	"rdlroute/internal/layout"
	"rdlroute/internal/metrics"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
	"rdlroute/internal/viz"
)

// Core data-model types.
type (
	// Design is a complete routing instance: chips, pads, nets, obstacles,
	// design rules and the RDL layer stack.
	Design = design.Design
	// Chip is a die whose shadow is a fan-in region.
	Chip = design.Chip
	// IOPad is a rectangular pad on the top RDL.
	IOPad = design.IOPad
	// BumpPad is an octagonal pad on the bottom RDL.
	BumpPad = design.BumpPad
	// Net is a pre-assigned pad pair.
	Net = design.Net
	// PadRef identifies a net endpoint.
	PadRef = design.PadRef
	// Rules carries the minimum-spacing, wire-width and via-width rules.
	Rules = design.Rules
	// Obstacle is a rectangular blockage on one wire layer.
	Obstacle = design.Obstacle
	// GenSpec parameterizes the benchmark generator.
	GenSpec = design.GenSpec
	// Stats summarizes a design like a Table-I row.
	Stats = design.Stats
)

// Routing types.
type (
	// Options tune the five-stage routing flow.
	Options = router.Options
	// Result carries routability, wirelength, runtime and per-stage
	// counters for one routing run.
	Result = router.Result
	// Layout is a (possibly partial) routing result.
	Layout = layout.Layout
	// WireRoute is one wire polyline of a net on one layer.
	WireRoute = layout.Route
	// Via is an octagonal inter-layer via.
	Via = layout.Via
	// Violation is one design-rule violation found by Check.
	Violation = drc.Violation
	// BaselineOptions tune the Lin-ext baseline flow.
	BaselineOptions = baseline.Options
	// BaselineResult carries the Lin-ext metrics.
	BaselineResult = baseline.Result
)

// Observability types. Set Options.Tracer (or BaselineOptions.Tracer) to
// receive stage spans, per-net route events, counters and distribution
// samples from a routing run; leave it nil for the zero-overhead default.
type (
	// Tracer receives spans, events, counters and observations.
	Tracer = obs.Tracer
	// Snapshot is the aggregated metrics view of a traced run
	// (Result.Obs); render it with WriteText or encoding/json.
	Snapshot = obs.Snapshot
	// Collector is the in-memory Tracer sink whose Snapshot method
	// aggregates everything it saw. Safe for concurrent use.
	Collector = obs.Collector
	// JSONLTracer streams every span and event as one JSON object per
	// line. Call Close (or Flush) when the run finishes.
	JSONLTracer = obs.JSONL
	// TraceRecord is one line of a JSONL trace.
	TraceRecord = obs.Record
	// TraceEvent is one event captured by a Collector.
	TraceEvent = obs.Event
)

// Production metrics types. Where a Collector aggregates one run into a
// Snapshot, a MetricsRegistry accumulates across runs into Prometheus-
// style series (counters, gauges, fixed-bucket histograms) with a
// byte-stable text exposition. A MetricsBridge is a Tracer that feeds a
// registry from routing runs: per-stage latency histograms, flow counter
// totals, event counts. Attaching one never changes routing results.
type (
	// MetricsRegistry holds named metric families; render with WriteText.
	MetricsRegistry = metrics.Registry
	// MetricsBridge adapts the Tracer interface onto a registry.
	MetricsBridge = metrics.Bridge
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewMetricsBridge returns a Tracer recording flow activity into reg.
func NewMetricsBridge(reg *MetricsRegistry) *MetricsBridge { return metrics.NewBridge(reg) }

// NewCollector returns an empty in-memory trace collector.
func NewCollector() *Collector { return obs.NewCollector() }

// NewJSONLTracer returns a Tracer streaming JSONL records to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONL(w) }

// MultiTracer fans emissions out to every given sink (nil and disabled
// sinks are dropped; zero sinks yield the Nop tracer).
func MultiTracer(ts ...Tracer) Tracer { return obs.Multi(ts...) }

// ReadTrace parses a JSONL trace written by a JSONLTracer.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return obs.ReadJSONL(r) }

// DefaultOptions returns the paper's experimental configuration
// (α, β, γ, δ = 0.1, 1, 1, 2 and 30×30 global cells).
func DefaultOptions() Options { return router.DefaultOptions() }

// Route runs the five-stage via-based RDL routing flow on the design.
func Route(d *Design, opts Options) (*Result, error) { return router.Route(d, opts) }

// RouteContext is Route with cancellation and deadline support: the A*
// relax loops, the MPSC dynamic program and the LP pivot loops all poll
// ctx, so a cancelled or deadlined run stops promptly and returns an error
// wrapping context.Canceled or context.DeadlineExceeded. Aborted runs
// leave no shared state behind; a subsequent Route on the same design is
// unaffected.
func RouteContext(ctx context.Context, d *Design, opts Options) (*Result, error) {
	return router.RouteContext(ctx, d, opts)
}

// DefaultBaselineOptions returns the Lin-ext configuration used by the
// benchmark harness.
func DefaultBaselineOptions() BaselineOptions { return baseline.DefaultOptions() }

// RouteLinExt runs the Lin-ext baseline (Lin et al. ICCAD'16 concurrent
// routing extended with A* sequential routing; no flexible vias).
func RouteLinExt(d *Design, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.Route(d, opts)
}

// RouteLinExtContext is RouteLinExt with cancellation and deadline
// support, mirroring RouteContext.
func RouteLinExtContext(ctx context.Context, d *Design, opts BaselineOptions) (*BaselineResult, error) {
	return baseline.RouteContext(ctx, d, opts)
}

// Check runs the design-rule checker on a layout and returns every
// violation (empty means clean).
func Check(l *Layout) []Violation { return drc.Check(l) }

// GenerateBenchmark builds one of the paper's benchmark circuits
// (dense1..dense5) with the published Table-I statistics.
func GenerateBenchmark(name string) (*Design, error) {
	spec, err := design.DenseSpec(name)
	if err != nil {
		return nil, err
	}
	return design.Generate(spec)
}

// BenchmarkSuite returns the generator specs of all five Table-I circuits.
func BenchmarkSuite() []GenSpec { return design.DenseSuite() }

// Generate builds a synthetic design from a generator spec.
func Generate(spec GenSpec) (*Design, error) { return design.Generate(spec) }

// RenderOptions tune SVG rendering of a layout.
type RenderOptions = viz.Options

// DefaultRenderOptions renders every layer at quarter scale.
func DefaultRenderOptions() RenderOptions { return viz.DefaultOptions() }

// RenderSVG writes the layout as a self-contained SVG image.
func RenderSVG(w io.Writer, l *Layout, opts RenderOptions) error {
	return viz.SVG(w, l, opts)
}

// CodecError is the typed decode failure of the JSON wire codec: recover
// it with errors.As and inspect Kind (syntax, schema, validate) and Path
// (the JSON path of the offending value, e.g. "nets[3].p1.index").
type CodecError = codec.Error

// JSON schema identifiers of the wire codec (version 1).
const (
	DesignSchemaV1  = codec.DesignSchema
	OptionsSchemaV1 = codec.OptionsSchema
	ResultSchemaV1  = codec.ResultSchema
	DeltaSchemaV1   = codec.DeltaSchema
)

// EncodeDesignJSON writes the design as an rdl-design/v1 JSON document.
// Encoding the same design twice yields identical bytes.
func EncodeDesignJSON(w io.Writer, d *Design) error { return codec.EncodeDesign(w, d) }

// DecodeDesignJSON reads an rdl-design/v1 document and returns a
// validated design; malformed payloads yield a *CodecError.
func DecodeDesignJSON(r io.Reader) (*Design, error) { return codec.DecodeDesign(r) }

// EncodeOptionsJSON writes the options as an rdl-options/v1 document.
func EncodeOptionsJSON(w io.Writer, opts Options) error { return codec.EncodeOptions(w, opts) }

// DecodeOptionsJSON reads an rdl-options/v1 document, overlaying it on
// DefaultOptions (absent fields keep their defaults).
func DecodeOptionsJSON(r io.Reader) (Options, error) { return codec.DecodeOptions(r) }

// EncodeResultJSON writes the result (metrics plus full layout geometry)
// as an rdl-result/v1 document.
func EncodeResultJSON(w io.Writer, res *Result) error { return codec.EncodeResult(w, res) }

// DecodeResultJSON reads an rdl-result/v1 document against the design it
// was computed on (matched by name; every reference is range-checked).
func DecodeResultJSON(r io.Reader, d *Design) (*Result, error) { return codec.DecodeResult(r, d) }

// ParseDesign reads a design from the text netlist format.
func ParseDesign(r io.Reader) (*Design, error) { return design.Parse(r) }

// WriteDesign writes a design in the text netlist format.
func WriteDesign(w io.Writer, d *Design) error { return design.Format(w, d) }

// WriteLayout writes a routing result in the text layout format; pair it
// with the design netlist to reload it later.
func WriteLayout(w io.Writer, l *Layout) error { return layout.Format(w, l) }

// ParseLayout reads a routing result written by WriteLayout against its
// design.
func ParseLayout(r io.Reader, d *Design) (*Layout, error) { return layout.Parse(r, d) }

// CongestionMap is the per-global-cell track-utilization view of a layout.
type CongestionMap = congest.Map

// BuildCongestion computes the congestion map with a cells×cells grid.
func BuildCongestion(l *Layout, cells int) *CongestionMap { return congest.Build(l, cells) }

// ECO rerouting: apply a design delta and reroute incrementally, with
// unchanged searches served from the base run's recorded memo. Results
// are byte-identical to cold-routing the edited design.
type (
	// DesignDelta is one ECO edit batch against a base design.
	DesignDelta = eco.Delta
	// ECOPlan is a routed design plus its recorded search memo — the unit
	// of incremental rerouting.
	ECOPlan = eco.Plan
)

// RouteECO cold-routes the design while recording the memo later deltas
// reroute against. The result is byte-identical to Route with the same
// options.
func RouteECO(ctx context.Context, d *Design, opts Options) (*ECOPlan, error) {
	return eco.Route(ctx, d, opts)
}

// ApplyDelta produces the edited design (the base is not mutated).
func ApplyDelta(base *Design, dl *DesignDelta) (*Design, error) { return eco.Apply(base, dl) }

// EncodeDesignDeltaJSON writes the delta as an rdl-design-delta/v1
// document; identical deltas encode to identical bytes.
func EncodeDesignDeltaJSON(w io.Writer, dl *DesignDelta) error {
	return codec.EncodeDesignDelta(w, dl)
}

// DecodeDesignDeltaJSON reads an rdl-design-delta/v1 document; malformed
// payloads yield a *CodecError.
func DecodeDesignDeltaJSON(r io.Reader) (*DesignDelta, error) { return codec.DecodeDesignDelta(r) }

// DesignContentHash is the content address deltas name their base design
// by: the sha256 (hex) of the design's canonical rdl-design/v1 encoding.
func DesignContentHash(d *Design) (string, error) { return codec.DesignHash(d) }
