// Package viz renders routed layouts as SVG for inspection: package
// outline, fan-in regions (chips), pads, obstacles, per-layer wires with a
// fixed color palette, and octagonal vias. The output is self-contained
// SVG 1.1 consumable by any browser.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"rdlroute/internal/geom"
	"rdlroute/internal/layout"
)

// Options tune rendering.
type Options struct {
	// Layer restricts output to one wire layer; −1 renders all layers.
	Layer int
	// Scale multiplies DBU coordinates (default 0.25).
	Scale float64
	// ShowBumps includes bump pads (they dominate dense bottom layers).
	ShowBumps bool
}

// DefaultOptions renders every layer at quarter scale with bumps shown.
func DefaultOptions() Options {
	return Options{Layer: -1, Scale: 0.25, ShowBumps: true}
}

// layerColors is the wire palette, cycled when there are more layers.
var layerColors = []string{
	"#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
}

// SVG writes the layout to w.
func SVG(w io.Writer, l *layout.Layout, opts Options) error {
	if opts.Scale <= 0 {
		opts.Scale = 0.25
	}
	bw := bufio.NewWriter(w)
	d := l.D
	W := float64(d.Outline.W()) * opts.Scale
	H := float64(d.Outline.H()) * opts.Scale
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n", W, H, W, H)
	fmt.Fprintf(bw, `<rect width="%.2f" height="%.2f" fill="#fafafa" stroke="#222"/>`+"\n", W, H)

	// y grows downward in SVG; flip.
	tx := func(p geom.Point) (float64, float64) {
		x := float64(p.X-d.Outline.X0) * opts.Scale
		y := H - float64(p.Y-d.Outline.Y0)*opts.Scale
		return x, y
	}
	rect := func(r geom.Rect, fill, stroke string, alpha float64) {
		x0, y1 := tx(geom.Pt(r.X0, r.Y0))
		x1, y0 := tx(geom.Pt(r.X1, r.Y1))
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="0.5"/>`+"\n",
			x0, y0, x1-x0, y1-y0, fill, alpha, stroke)
	}
	wantLayer := func(layer int) bool { return opts.Layer < 0 || opts.Layer == layer }

	for _, c := range d.Chips {
		rect(c.Box, "#ddd", "#888", 1)
	}
	for _, o := range d.Obstacles {
		if wantLayer(o.Layer) {
			rect(o.Box, "#555", "#333", 0.8)
		}
	}
	if opts.ShowBumps && wantLayer(d.WireLayers-1) {
		for _, p := range d.BumpPads {
			poly(bw, tx, p.Oct(), "#eee", "#aaa")
		}
	}
	if wantLayer(0) {
		for _, p := range d.IOPads {
			rect(p.Box(), "#ffd54f", "#996f00", 1)
		}
	}
	for i := range l.Routes {
		r := &l.Routes[i]
		if !wantLayer(r.Layer) || len(r.Pts) < 2 {
			continue
		}
		color := layerColors[r.Layer%len(layerColors)]
		fmt.Fprintf(bw, `<polyline fill="none" stroke="%s" stroke-width="%.2f" stroke-opacity="0.85" points="`,
			color, float64(d.Rules.WireWidth)*opts.Scale)
		for _, p := range r.Pts {
			x, y := tx(p)
			fmt.Fprintf(bw, "%.2f,%.2f ", x, y)
		}
		fmt.Fprint(bw, `"/>`+"\n")
	}
	for _, v := range l.Vias {
		if !wantLayer(v.Slab) && !wantLayer(v.Slab+1) {
			continue
		}
		poly(bw, tx, v.Oct(), "#000", "#000")
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

// poly renders an Oct8 region as an SVG polygon.
func poly(bw *bufio.Writer, tx func(geom.Point) (float64, float64), o geom.Oct8, fill, stroke string) {
	vs := o.Vertices()
	if len(vs) < 3 {
		return
	}
	fmt.Fprintf(bw, `<polygon fill="%s" fill-opacity="0.9" stroke="%s" stroke-width="0.4" points="`, fill, stroke)
	for _, v := range vs {
		x, y := tx(geom.Pt(int64(v.X), int64(v.Y)))
		fmt.Fprintf(bw, "%.2f,%.2f ", x, y)
	}
	fmt.Fprint(bw, `"/>`+"\n")
}
