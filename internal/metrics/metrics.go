// Package metrics is the stdlib-only production metrics layer: a
// registry of monotonic counters, gauges and fixed-bucket histograms with
// deterministic series ordering, a Prometheus text-exposition writer
// (expo.go), a matching parser for smoke gates (parse.go), an
// obs→metrics bridge Tracer that turns the routing flow's existing
// Count/Observe/Span call sites into named production series (bridge.go),
// and Go runtime gauges (runtime.go).
//
// The obs package answers "what did this one run do" (spans, events,
// per-run snapshots); this package answers "what is the process doing
// over time" (scrape-able cumulative series). The two meet in Bridge.
//
// Determinism: WriteText output is byte-stable for a given set of metric
// values — families sort by name, series sort by label values, floats
// format with strconv 'g' shortest form — so goldens and differential
// gates can compare exposition bytes directly.
//
// All metric types are safe for concurrent use; hot-path updates are
// lock-free (atomics), registration and scraping take locks.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition TYPE of a metric family.
type Kind string

// Metric family kinds (the subset of Prometheus types we produce).
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	onScrape []func() // refresh hooks run once at the top of WriteText
}

// family is one named metric with zero or more labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names; empty for unlabeled families

	buckets []float64 // histogram upper bounds (sorted, +Inf implied)

	mu     sync.Mutex
	series map[string]*series // key: canonical joined label values
	fn     func() float64     // func-backed family (single series, no labels)
}

// series is one label combination's live values.
type series struct {
	labelValues []string

	val atomic.Int64 // counter delta sum / gauge float bits

	// histogram state: per-bucket counts (cumulated at exposition time),
	// +Inf overflow in counts[len(buckets)], plus sum as float bits.
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName matches the Prometheus metric and label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the named family, creating it on first use. It panics
// on an invalid name or a redefinition with a different shape —
// programmer errors, caught at startup by any test that touches the
// metric.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %q redefined with different kind or labels", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %q redefined with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series),
	}
	if kind == KindHistogram {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		// Drop duplicates and a trailing +Inf (implied).
		out := bs[:0]
		for _, b := range bs {
			if math.IsInf(b, 1) {
				continue
			}
			if len(out) == 0 || out[len(out)-1] != b {
				out = append(out, b)
			}
		}
		if len(out) == 0 {
			panic(fmt.Sprintf("metrics: histogram %q needs at least one finite bucket", name))
		}
		f.buckets = out
	}
	r.families[name] = f
	return f
}

// seriesKey canonicalizes label values for map lookup. U+FFFE never
// appears in valid UTF-8 label values, so joining with it is collision-free.
func seriesKey(values []string) string { return strings.Join(values, "￾") }

// get returns the series for the given label values, creating it on
// first use.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			s.counts = make([]atomic.Int64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// OnScrape registers fn to run (under the registry lock) at the start of
// every WriteText call. Runtime gauges use it to refresh a shared sample
// once per scrape instead of once per metric.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonic int64 counter.
type Counter struct{ s *series }

// Add adds delta (which must be non-negative) to the counter.
func (c Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: counter decrease")
	}
	c.s.val.Add(delta)
}

// Inc adds one.
func (c Counter) Inc() { c.s.val.Add(1) }

// Value returns the current count.
func (c Counter) Value() int64 { return c.s.val.Load() }

// Counter returns the named unlabeled counter, creating it on first use.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return Counter{f.get(nil)}
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec returns the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	if len(labels) == 0 {
		panic("metrics: CounterVec needs at least one label")
	}
	return CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values.
func (v CounterVec) With(values ...string) Counter { return Counter{v.f.get(values)} }

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a float64 gauge.
type Gauge struct{ s *series }

// Set sets the gauge.
func (g Gauge) Set(v float64) { g.s.val.Store(int64(math.Float64bits(v))) }

// Value returns the current gauge value.
func (g Gauge) Value() float64 { return math.Float64frombits(uint64(g.s.val.Load())) }

// Gauge returns the named unlabeled gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return Gauge{f.get(nil)}
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// exposition time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is read by calling fn at
// exposition time (for externally-accumulated monotonic values such as
// runtime GC totals). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram is a fixed-bucket histogram. Bucket upper bounds are
// inclusive, per the Prometheus convention: a sample exactly on a bound
// counts into that bucket.
type Histogram struct {
	f *family
	s *series
}

// Observe records one sample.
func (h Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; +Inf overflow otherwise.
	bs := h.f.buckets
	i := sort.SearchFloat64s(bs, v) // leftmost index with bs[i] >= v
	h.s.counts[i].Add(1)
	for {
		old := h.s.sumBits.Load()
		if h.s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of samples observed.
func (h Histogram) Count() int64 {
	var n int64
	for i := range h.s.counts {
		n += h.s.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed samples.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// Histogram returns the named unlabeled histogram, creating it on first
// use with the given bucket upper bounds (+Inf is implied).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	f := r.register(name, help, KindHistogram, nil, buckets)
	return Histogram{f, f.get(nil)}
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the named labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	if len(labels) == 0 {
		panic("metrics: HistogramVec needs at least one label")
	}
	return HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f, v.f.get(values)}
}

// ---------------------------------------------------------------------------
// Standard bucket layouts

// LatencyBuckets are upper bounds in seconds for request/stage latency
// histograms: 1ms to ~4 minutes, doubling. Routing jobs span five orders
// of magnitude (dense1 milliseconds to dense5 half-minutes), so a
// doubling ladder keeps relative error uniform.
func LatencyBuckets() []float64 {
	bs := make([]float64, 0, 19)
	for v := 0.001; v < 260; v *= 2 {
		bs = append(bs, v)
	}
	return bs
}

// SizeBuckets are upper bounds for count-valued distributions (A*
// expansions, wirelengths, queue sizes): powers of ten with 1-2-5
// subdivision from 1 to 10^7.
func SizeBuckets() []float64 {
	var bs []float64
	for mag := 1.0; mag <= 1e7; mag *= 10 {
		bs = append(bs, mag, 2*mag, 5*mag)
	}
	return bs[:len(bs)-2] // stop at 1e7
}
