package router

import (
	"context"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
	"rdlroute/internal/obs"
)

// ripUpReroute is an extension beyond the paper's flow: for each net that
// the sequential stage could not complete, find the committed nets
// standing in its way with a ghost search (foreign claims ignored), rip
// them out, route the failed net, and re-route the victims. The candidate
// result is accepted only when strictly more nets end up routed, so the
// stage never regresses. It returns the net count gained and the rebuilt
// lattice in use afterwards.
// Cancellation: every per-net attempt polls ctx; on cancellation the stage
// returns immediately with whatever was legally accepted so far (candidate
// worlds are only ever swapped in whole, so a cancelled round leaves the
// layout and lattice consistent — the caller then surfaces ctx's error).
func ripUpReroute(ctx context.Context, d *design.Design, la *lattice.Lattice, lay *layout.Layout, opts Options, rounds int, tr obs.Tracer) (int, *lattice.Lattice) {
	gained := 0
	for round := 0; round < rounds; round++ {
		var unrouted []int
		for ni := range d.Nets {
			if !lay.Routed(ni) {
				unrouted = append(unrouted, ni)
			}
		}
		if len(unrouted) == 0 {
			break
		}
		progress := false
		for _, ni := range unrouted {
			if ctx.Err() != nil {
				return gained, la
			}
			if lay.Routed(ni) {
				continue
			}
			nn := d.Nets[ni]
			from, fromLayer := terminal(d, nn.P1)
			to, toLayer := terminal(d, nn.P2)
			ghost, _, ok := la.Route(lattice.Request{
				Net: ni, From: from, To: to,
				FromLayer: fromLayer, ToLayer: toLayer,
				ViaCost: opts.ViaCost, IgnoreForeign: true,
				Ctx: ctx,
			})
			if !ok {
				continue // hard-blocked: rip-up cannot help
			}
			victims := la.OwnersOnPath(ghost, ni)
			if len(victims) == 0 || len(victims) > 4 {
				continue
			}
			sort.Ints(victims)

			// Build the candidate world without the victims.
			cand := lay.Clone()
			for _, v := range victims {
				cand.RemoveNet(v)
			}
			la2, err := rebuildLattice(d, cand, opts)
			if err != nil {
				continue
			}
			la2.SetTracer(tr)
			if !routeOn(ctx, d, la2, cand, ni, opts) {
				continue
			}
			for _, v := range victims {
				routeOn(ctx, d, la2, cand, v, opts)
			}
			if cand.RoutedCount() > lay.RoutedCount() {
				gained += cand.RoutedCount() - lay.RoutedCount()
				*lay = *cand
				la = la2
				progress = true
				if tr.Enabled() {
					tr.Event("net.route",
						obs.Int("net", ni),
						obs.String("stage", "ripup"),
						obs.String("mode", "ripup"),
						obs.Int("round", round),
						obs.String("outcome", "routed"),
						obs.Int("victims", len(victims)))
					tr.Count("ripup.recovered", 1)
				}
			}
		}
		if !progress {
			break
		}
	}
	return gained, la
}

// routeOn routes one net on the lattice with an unrestricted multi-layer
// search and commits it on success.
func routeOn(ctx context.Context, d *design.Design, la *lattice.Lattice, lay *layout.Layout, ni int, opts Options) bool {
	nn := d.Nets[ni]
	from, fromLayer := terminal(d, nn.P1)
	to, toLayer := terminal(d, nn.P2)
	path, _, ok := la.Route(lattice.Request{
		Net: ni, From: from, To: to,
		FromLayer: fromLayer, ToLayer: toLayer,
		ViaCost: opts.ViaCost,
		Ctx:     ctx,
	})
	if !ok {
		return false
	}
	la.Commit(path, ni)
	lay.AddPath(ni, path)
	lay.MarkRouted(ni)
	return true
}

// rebuildLattice constructs a fresh lattice and re-commits every route and
// via present in the layout.
func rebuildLattice(d *design.Design, lay *layout.Layout, opts Options) (*lattice.Lattice, error) {
	la, err := lattice.New(d, opts.Pitch)
	if err != nil {
		return nil, err
	}
	// Attach before the re-commits: the candidate lattice journals its
	// rebuilt occupancy into the shared memo so candidate-world searches
	// memoize (and replay) exactly like the primary lattice's.
	la.AttachMemo(opts.SearchMemo)
	for i := range lay.Routes {
		r := &lay.Routes[i]
		steps := make([]lattice.PathStep, len(r.Pts))
		for k, p := range r.Pts {
			steps[k] = lattice.PathStep{Layer: r.Layer, Pt: p}
		}
		la.Commit(steps, r.Net)
	}
	for _, v := range lay.Vias {
		la.CommitViaAt(v.Slab, v.Center, v.Net)
	}
	return la, nil
}
