package qa

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
)

// randomDelta draws one valid ECO edit against d: a pad move of one or
// two grid steps, a net removal, a remove-and-readd of a net under a
// fresh ID (exercising the add path), or an obstacle removal. Draws
// retry until eco.Apply accepts the edit.
func randomDelta(t *testing.T, d *design.Design, rng *rand.Rand) *eco.Delta {
	t.Helper()
	dirs := []geom.Point{geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 1), geom.Pt(0, -1)}
	maxID := 0
	for _, n := range d.Nets {
		if n.ID > maxID {
			maxID = n.ID
		}
	}
	for attempt := 0; attempt < 100; attempt++ {
		dl := &eco.Delta{}
		switch k := rng.Intn(4); {
		case k == 0:
			n := d.Nets[rng.Intn(len(d.Nets))]
			ref := n.P1
			if rng.Intn(2) == 1 {
				ref = n.P2
			}
			step := design.Grid * int64(1+rng.Intn(2))
			to := d.PadCenter(ref).Add(dirs[rng.Intn(len(dirs))].Scale(step))
			if ref.Kind == design.IOKind {
				dl.MoveIOPads = []eco.MovePad{{Index: ref.Index, To: to}}
			} else {
				dl.MoveBumpPads = []eco.MovePad{{Index: ref.Index, To: to}}
			}
		case k == 1:
			dl.RemoveNets = []int{rng.Intn(len(d.Nets))}
		case k == 2:
			i := rng.Intn(len(d.Nets))
			n := d.Nets[i]
			dl.RemoveNets = []int{i}
			dl.AddNets = []design.Net{{ID: maxID + 1, P1: n.P1, P2: n.P2}}
		case len(d.Obstacles) > 0:
			dl.RemoveObstacles = []int{rng.Intn(len(d.Obstacles))}
		default:
			continue
		}
		if _, err := eco.Apply(d, dl); err == nil {
			return dl
		}
	}
	t.Fatalf("no valid random delta found for %s after 100 draws", d.Name)
	return nil
}

// ecoSweepSize mirrors sweepSize's tiering for the ECO gate: each seed
// costs three routing runs (base, incremental, cold verification).
func ecoSweepSize() int {
	n := 8
	if testing.Short() {
		n = 3
	}
	if raceEnabled && n > 3 {
		n = 3
	}
	return n
}

// TestECOIncrementalEqualsCold is the incremental-rerouting acceptance
// gate: for seeded random designs and random deltas, rerouting through
// the base plan's memo must be byte-identical to cold-routing the edited
// design — same occupancy fingerprint and identical canonical result
// encoding (runtime excluded). Worker counts alternate between 1 and 2
// across seeds, and the cold verification always runs sequentially, so
// the identity also spans the parallel-stage scheduling.
func TestECOIncrementalEqualsCold(t *testing.T) {
	n := ecoSweepSize()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		seed := int64(9100 + i)
		d := Generate(seed)
		workers := 1 + i%2

		opts := router.DefaultOptions()
		opts.Workers = workers
		base, err := eco.Route(ctx, d, opts)
		if err != nil {
			t.Fatalf("seed %d: base route: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed*31 + int64(workers)))
		dl := randomDelta(t, d, rng)
		inc, err := base.Reroute(ctx, dl, opts)
		if err != nil {
			t.Fatalf("seed %d: incremental reroute: %v", seed, err)
		}

		coldOpts := router.DefaultOptions()
		coldOpts.Workers = 1
		coldRes, coldFP, err := router.RouteFingerprint(ctx, inc.Design, coldOpts)
		if err != nil {
			t.Fatalf("seed %d: cold route: %v", seed, err)
		}
		if inc.Fingerprint != coldFP {
			t.Errorf("seed %d workers %d: fingerprint diverges: incremental %x, cold %x (delta %+v)",
				seed, workers, inc.Fingerprint, coldFP, dl)
			continue
		}
		ib := encodeResultNoRuntime(t, inc.Result)
		cb := encodeResultNoRuntime(t, coldRes)
		if !bytes.Equal(ib, cb) {
			t.Errorf("seed %d workers %d: result encoding diverges despite equal fingerprints (delta %+v)",
				seed, workers, dl)
		}
	}
}

func encodeResultNoRuntime(t *testing.T, res *router.Result) []byte {
	t.Helper()
	r := *res
	r.Runtime = 0
	var buf bytes.Buffer
	if err := codec.EncodeResult(&buf, &r); err != nil {
		t.Fatalf("encode result: %v", err)
	}
	return buf.Bytes()
}
