package geom

import (
	"math"
	"testing"
)

// TestOct8Degenerate walks the degenerations the paper's tile model must
// represent exactly: points, axis-aligned segments and zero-area regions
// are all valid Oct8 values, not error cases.
func TestOct8Degenerate(t *testing.T) {
	tests := []struct {
		name     string
		oct      Oct8
		empty    bool
		area     float64
		contains []Point
		excludes []Point
	}{
		{
			name:     "point",
			oct:      OctFromRect(Rect{10, 20, 10, 20}),
			area:     0,
			contains: []Point{Pt(10, 20)},
			excludes: []Point{Pt(11, 20), Pt(10, 21)},
		},
		{
			name:     "vertical segment",
			oct:      OctFromRect(Rect{5, 0, 5, 40}),
			area:     0,
			contains: []Point{Pt(5, 0), Pt(5, 20), Pt(5, 40)},
			excludes: []Point{Pt(6, 20), Pt(4, 20), Pt(5, 41)},
		},
		{
			name: "diagonal segment",
			// x ∈ [0,10], y ∈ [0,10], pinned to the anti-diagonal x+y=10.
			oct:      Oct8{XLo: 0, XHi: 10, YLo: 0, YHi: 10, SLo: 10, SHi: 10, DLo: -10, DHi: 10},
			area:     0,
			contains: []Point{Pt(0, 10), Pt(5, 5), Pt(10, 0)},
			excludes: []Point{Pt(5, 6), Pt(5, 4)},
		},
		{
			name: "empty via diagonal cut",
			// The axis box is fine but x+y ≥ 30 excludes all of it.
			oct:   Oct8{XLo: 0, XHi: 10, YLo: 0, YHi: 10, SLo: 30, SHi: 100, DLo: -100, DHi: 100},
			empty: true,
		},
		{
			name:  "empty via inverted axis",
			oct:   Oct8{XLo: 10, XHi: 0, YLo: 0, YHi: 10, SLo: -100, SHi: 100, DLo: -100, DHi: 100},
			empty: true,
		},
		{
			name:  "over-shrunk via pad",
			oct:   RegularOct(Pt(100, 100), 16).Shrink(9),
			empty: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.oct.Empty(); got != tc.empty {
				t.Fatalf("Empty() = %v, want %v", got, tc.empty)
			}
			if tc.empty {
				return
			}
			if got := tc.oct.Area(); math.Abs(got-tc.area) > 1e-9 {
				t.Errorf("Area() = %v, want %v", got, tc.area)
			}
			for _, p := range tc.contains {
				if !tc.oct.Contains(p) {
					t.Errorf("Contains(%v) = false, want true", p)
				}
			}
			for _, p := range tc.excludes {
				if tc.oct.Contains(p) {
					t.Errorf("Contains(%v) = true, want false", p)
				}
			}
			if c := tc.oct.Center(); !tc.oct.Contains(c) {
				t.Errorf("Center() = %v not contained", c)
			}
			can := tc.oct.Canonical()
			if can.Canonical() != can {
				t.Errorf("Canonical not idempotent: %v → %v", can, can.Canonical())
			}
		})
	}
}

// TestOct8TouchingNotOverlapping pins the closed-vs-open boundary
// semantics the DRC depends on: octagons sharing only a boundary
// intersect as closed sets (Intersects true, intersection of zero area)
// while their polygons do not overlap (no shared interior) and sit at
// distance zero — which the strict `dist < spacing` predicate counts as
// a crossing, never as clean.
func TestOct8TouchingNotOverlapping(t *testing.T) {
	tests := []struct {
		name       string
		a, b       Oct8
		intersects bool
		dist       float64
	}{
		{
			name:       "rects sharing an edge",
			a:          OctFromRect(Rect{0, 0, 24, 24}),
			b:          OctFromRect(Rect{24, 0, 48, 24}),
			intersects: true,
			dist:       0,
		},
		{
			name:       "rects sharing a corner point",
			a:          OctFromRect(Rect{0, 0, 24, 24}),
			b:          OctFromRect(Rect{24, 24, 48, 48}),
			intersects: true,
			dist:       0,
		},
		{
			name:       "rects one DBU apart",
			a:          OctFromRect(Rect{0, 0, 24, 24}),
			b:          OctFromRect(Rect{25, 0, 49, 24}),
			intersects: false,
			dist:       1,
		},
		{
			name:       "via pads flush side to side",
			a:          RegularOct(Pt(0, 0), 16),
			b:          RegularOct(Pt(16, 0), 16),
			intersects: true,
			dist:       0,
		},
		{
			name:       "via pads one DBU apart",
			a:          RegularOct(Pt(0, 0), 16),
			b:          RegularOct(Pt(17, 0), 16),
			intersects: false,
			dist:       1,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Intersects(tc.b); got != tc.intersects {
				t.Errorf("Intersects = %v, want %v", got, tc.intersects)
			}
			if got := tc.b.Intersects(tc.a); got != tc.intersects {
				t.Errorf("Intersects not symmetric: reverse = %v", got)
			}
			if tc.intersects {
				if ia := tc.a.IntersectOct(tc.b).Area(); ia != 0 {
					t.Errorf("touching octs intersect with area %v, want 0", ia)
				}
			}
			pa, pb := tc.a.Poly(), tc.b.Poly()
			if pa.Overlaps(pb) {
				t.Error("polygons of non-interior-sharing octs report Overlaps")
			}
			if got := pa.Dist(pb); math.Abs(got-tc.dist) > 1e-9 {
				t.Errorf("Poly Dist = %v, want %v", got, tc.dist)
			}
		})
	}
}

// TestOct8GrowShrinkInverse: for axis-aligned regions Grow and Shrink are
// exact inverses (the diagonal rounding is identical in both directions).
func TestOct8GrowShrinkInverse(t *testing.T) {
	o := OctFromRect(Rect{0, 0, 48, 36})
	if got := o.Grow(5).Shrink(5).Canonical(); got != o.Canonical() {
		t.Errorf("Grow(5).Shrink(5) = %v, want %v", got, o.Canonical())
	}
}
