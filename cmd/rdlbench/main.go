// Command rdlbench regenerates the paper's evaluation artifacts: Table I
// (ours vs Lin-ext on dense1..dense5), the Figure 2 layer-count
// experiment, the Figure 5 weighted-MPSC experiment, the Figure 7 LP
// wirelength experiment, the LP convergence measurement, and ablations.
//
// Usage:
//
//	rdlbench -table1            # full Table I (dense1..dense5; minutes)
//	rdlbench -table1 -quick     # dense1..dense3 only
//	rdlbench -fig2 -fig5 -fig7
//	rdlbench -ablation -lpiters
//	rdlbench -portfolio -portfolio-k 6   # ordering-portfolio vs single-policy sweep
//	rdlbench -all
//	rdlbench -all -quick -json results.json   # machine-readable report
//	rdlbench -table1 -trace t.jsonl -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"rdlroute/internal/bench"
	"rdlroute/internal/metrics"
	"rdlroute/internal/obs"
)

func main() {
	os.Exit(run())
}

// parseWorkerCounts parses the -scaling-workers list.
func parseWorkerCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scaling-workers entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scaling-workers is empty")
	}
	return out, nil
}

// run keeps cleanup (profile stop, trace flush, report write) in defers
// and returns the process exit code, so no exit path skips them.
func run() int {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table I (ours vs Lin-ext)")
		fig2     = flag.Bool("fig2", false, "regenerate the Figure 2 layer-count experiment")
		fig5     = flag.Bool("fig5", false, "regenerate the Figure 5 weighted-MPSC experiment")
		fig7     = flag.Bool("fig7", false, "regenerate the Figure 7 LP wirelength experiment")
		ablation = flag.Bool("ablation", false, "run the design-choice ablations")
		lpiters  = flag.Bool("lpiters", false, "measure LP repair-loop iterations (III-E-4)")
		gsize    = flag.Bool("graphsize", false, "compare tile-graph vs uniform-grid node counts")
		all      = flag.Bool("all", false, "run everything (except -scaling, which is its own sweep)")
		scaling  = flag.Bool("scaling", false, "run the worker-scaling sweep: each circuit at every -scaling-workers count, with a determinism check")
		scalingW = flag.String("scaling-workers", "1,2,4,8", "comma-separated worker counts for -scaling (first is the speedup baseline)")
		ecoRun   = flag.Bool("eco", false, "run the incremental-ECO sweep: cold route each circuit, then reroute seeded single-net edits against the recorded memo, with a byte-identity check")
		ecoEdits = flag.Int("eco-edits", 3, "independent single-net edits per circuit for -eco")
		portRun  = flag.Bool("portfolio", false, "run the ordering-portfolio sweep: each circuit routed single-policy and with -portfolio-k raced policies, with a winner-equals-solo byte-identity check")
		portK    = flag.Int("portfolio-k", 6, "ordering-registry policies to race for -portfolio (max 16)")
		quick    = flag.Bool("quick", false, "restrict circuit sweeps to dense1..dense3")
		workers  = flag.Int("workers", 0, "worker-pool bound inside each routing run (0 = GOMAXPROCS, 1 = sequential); results are identical at every value")
		specul   = flag.Bool("speculative", false, "speculative stage-4 scheduler for our flow's runs (byte-identical results; -scaling keeps its first worker count on the sequential loop as the identity baseline)")
		parallel = flag.Int("parallel", 1, "route up to this many circuits concurrently across the batch (0 = GOMAXPROCS); interleaves per-run timings and any -trace stream")
		timeout  = flag.Duration("timeout", 0, `per-circuit routing deadline for the Table-I sweep; timed-out circuits are reported with status "timeout" (0 = none)`)
		jsonOut  = flag.String("json", "", "also write every result as a JSON report to this file (see EXPERIMENTS.md)")
		metOut   = flag.String("metrics", "", `write the batch's production metrics as a Prometheus text exposition to this file ("-" = stdout)`)
		trace    = flag.String("trace", "", "write a JSONL trace of all routing runs to this file")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile (stage-labelled) to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	)
	flag.Parse()
	if *all {
		*table1, *fig2, *fig5, *fig7, *ablation, *lpiters, *gsize = true, true, true, true, true, true, true
	}
	if !*table1 && !*fig2 && !*fig5 && !*fig7 && !*ablation && !*lpiters && !*gsize && !*scaling && !*ecoRun && !*portRun {
		flag.Usage()
		return 2
	}
	names := []string{"dense1", "dense2", "dense3", "dense4", "dense5"}
	if *quick {
		names = names[:3]
	}
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "rdlbench:", err)
		return 1
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	var sinks []obs.Tracer
	if *trace != "" {
		tf, err := os.Create(*trace)
		if err != nil {
			return fail(err)
		}
		jl := obs.NewJSONL(tf)
		defer func() {
			jl.Close()
			tf.Close()
		}()
		sinks = append(sinks, jl)
	}
	var reg *metrics.Registry
	if *metOut != "" {
		reg = metrics.NewRegistry()
		sinks = append(sinks, metrics.NewBridge(reg))
	}
	if *cpuprof != "" && len(sinks) == 0 {
		// The stage spans only apply their pprof labels through an enabled
		// tracer; give the profile one even without -trace.
		sinks = append(sinks, obs.NewCollector())
	}
	bench.Tracer = obs.Multi(sinks...)
	bench.Timeout = *timeout
	bench.Workers = *workers
	bench.Speculative = *specul
	bench.Parallel = *parallel

	rep := &bench.Report{Circuits: names}
	errCount := 0
	die := func(err error) bool {
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdlbench:", err)
			errCount++
			return true
		}
		return false
	}

	if *table1 {
		fmt.Println("== Table I: pre-assignment routing, ours vs Lin-ext ==")
		rows, err := bench.RunTable1(names)
		if die(err) {
			return 1
		}
		fmt.Print(bench.FormatTable1(rows))
		for _, r := range rows {
			if r.OursDRC > 0 || r.LinDRC > 0 {
				fmt.Printf("WARNING %s: DRC violations ours=%d lin=%d\n", r.Stats.Name, r.OursDRC, r.LinDRC)
			}
			rep.Table1 = append(rep.Table1, r.JSON())
		}
		fmt.Println()
	}
	if *fig2 {
		fmt.Println("== Figure 2: flexible vias reduce the required RDL count ==")
		res, err := bench.RunFig2()
		if die(err) {
			return 1
		}
		rep.Fig2 = &res
		fmt.Printf("entangled 3-net pattern: ours completes with %d RDLs; Lin-ext needs %d RDLs\n",
			res.OursMinLayers, res.LinMinLayers)
		fmt.Println("(paper: 2 vs 3)")
		fmt.Println()
	}
	if *fig5 {
		fmt.Println("== Figure 5: weighted vs unweighted MPSC layer assignment ==")
		res := bench.RunFig5()
		rep.Fig5 = &res
		fmt.Printf("unweighted MPSC: assigns %d nets, %d survive detailed routing\n",
			res.UnweightedAssigned, res.UnweightedSurvive)
		fmt.Printf("weighted MPSC (Eq.2): assigns %d nets, %d survive detailed routing\n",
			res.WeightedAssigned, res.WeightedSurvive)
		fmt.Println("(paper: the unweighted assignment loses 2 of 3 nets in the congested channel)")
		fmt.Println()
	}
	var metricRows []bench.MetricsRow
	needMetrics := *fig7 || *lpiters || *gsize
	if needMetrics {
		var err error
		metricRows, err = bench.RunMetrics(names)
		if die(err) {
			return 1
		}
	}
	if *fig7 {
		fmt.Println("== Figure 7: LP-based layout optimization ==")
		fmt.Printf("%-8s %12s %12s %10s %6s\n", "circuit", "wl before", "wl after", "reduction", "iters")
		for _, m := range metricRows {
			r := m.Fig7
			fmt.Printf("%-8s %12.0f %12.0f %9.2f%% %6d\n", r.Name, r.Before, r.After, r.Reduction, r.Iterations)
			rep.Fig7 = append(rep.Fig7, r)
		}
		fmt.Println()
	}
	if *ablation {
		fmt.Println("== Ablations (Section IV analysis) ==")
		abNames := names
		if len(abNames) > 2 && !*quick {
			abNames = names[:2]
		}
		rows, err := bench.RunAblations(abNames)
		if die(err) {
			return 1
		}
		rep.Ablations = rows
		fmt.Printf("%-8s %-18s %12s %12s %6s %6s %8s\n",
			"circuit", "config", "routability", "wirelength", "conc", "drc", "time")
		for _, r := range rows {
			fmt.Printf("%-8s %-18s %11.1f%% %12.0f %6d %6d %7.2fs\n",
				r.Name, r.Config, r.Routability, r.Wirelength, r.Concurrent, r.DRC, r.Seconds)
		}
		fmt.Println()
	}
	if *lpiters {
		fmt.Println("== LP convergence (Section III-E-4: ≤ ~50 iterations) ==")
		for _, m := range metricRows {
			r := m.LPIter
			fmt.Printf("%-8s %d iterations over %d components\n", r.Name, r.Iterations, r.Components)
			rep.LPIters = append(rep.LPIters, r)
		}
		fmt.Println()
	}
	if *gsize {
		fmt.Println("== Octagonal tile graph vs uniform grid (graph size) ==")
		fmt.Printf("%-8s %12s %12s %8s\n", "circuit", "tile nodes", "grid nodes", "ratio")
		for _, m := range metricRows {
			r := m.Graph
			fmt.Printf("%-8s %12d %12d %8.3f\n", r.Name, r.TileNodes, r.GridNodes, r.Ratio)
			rep.GraphSize = append(rep.GraphSize, r)
		}
		fmt.Println()
		fmt.Println("== Wirelength quality (vs octilinear lower bound) ==")
		fmt.Printf("%-8s %12s %12s %8s %8s %8s\n", "circuit", "lower bound", "actual", "mean", "p95", "max")
		for _, m := range metricRows {
			r := m.Quality
			fmt.Printf("%-8s %12.0f %12.0f %8.3f %8.3f %8.3f\n",
				r.Name, r.LowerBound, r.Actual, r.MeanDetour, r.P95, r.MaxDetour)
			rep.Quality = append(rep.Quality, r)
		}
	}

	if *scaling {
		counts, err := parseWorkerCounts(*scalingW)
		if die(err) {
			return 1
		}
		fmt.Println("== Worker scaling (identical results, wall time per worker count) ==")
		rows, err := bench.RunScaling(names, counts)
		if die(err) {
			return 1
		}
		rep.Scaling = rows
		fmt.Print(bench.FormatScaling(rows))
		for _, r := range rows {
			if !r.Deterministic {
				fmt.Printf("WARNING %s workers=%d: result diverges from the baseline run\n", r.Name, r.Workers)
				errCount++
			}
		}
		fmt.Println()
	}

	if *ecoRun {
		fmt.Println("== Incremental ECO rerouting (single-net edits vs cold route) ==")
		rows, err := bench.RunECO(names, *ecoEdits)
		if die(err) {
			return 1
		}
		rep.ECO = rows
		fmt.Print(bench.FormatECO(rows))
		for _, r := range rows {
			if !r.Identical {
				fmt.Printf("WARNING %s: incremental reroute diverges from the cold route\n", r.Name)
				errCount++
			}
		}
		fmt.Println()
	}

	if *portRun {
		fmt.Printf("== Ordering portfolio (first %d registry policies vs single-policy flow) ==\n", *portK)
		rows, err := bench.RunPortfolio(names, *portK)
		if die(err) {
			return 1
		}
		rep.Portfolio = rows
		fmt.Print(bench.FormatPortfolio(rows))
		for _, r := range rows {
			if !r.Deterministic {
				fmt.Printf("WARNING %s: portfolio run diverges from a solo run of its winner (%s)\n", r.Name, r.WinnerName)
				errCount++
			}
		}
		fmt.Println()
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return fail(err)
		}
		if err := bench.WriteJSON(f, rep); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
		fmt.Printf("json report: %s\n", *jsonOut)
	}
	if reg != nil {
		w := os.Stdout
		if *metOut != "-" {
			f, err := os.Create(*metOut)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteText(w); err != nil {
			return fail(err)
		}
		if *metOut != "-" {
			fmt.Printf("metrics exposition: %s\n", *metOut)
		}
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
	}
	if errCount > 0 {
		return 1
	}
	return 0
}
