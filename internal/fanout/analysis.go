package fanout

import (
	"context"
	"fmt"
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/graphs"
	"rdlroute/internal/mpsc"
	"rdlroute/internal/par"
)

// Candidate is a net eligible for fan-out concurrent routing: an
// inter-chip net whose two I/O pads are both peripheral.
type Candidate struct {
	Net        int // index into Design.Nets
	AP1, AP2   AccessPoint
	Path       []int   // MST grid path from AP1.Grid to AP2.Grid
	DetourRate float64 // pre-routed path length / direct pad distance
	FMax       float64 // max overflow rate along Path (Eq. 1)
	FAvg       float64 // average overflow rate along Path
	Pos1, Pos2 int     // positions in the circular model
}

// WeightParams are the user parameters of Eq. (2). The paper's defaults
// are α=0.1, β=1, γ=1, δ=2.
type WeightParams struct {
	Alpha, Beta, Gamma, Delta float64
}

// DefaultWeightParams returns the paper's experimental settings.
func DefaultWeightParams() WeightParams {
	return WeightParams{Alpha: 0.1, Beta: 1, Gamma: 1, Delta: 2}
}

// Analysis is the preprocessing result consumed by the concurrent router.
type Analysis struct {
	Design     *design.Design
	Cfg        Config
	Grids      []Grid
	Graph      *graphs.Graph
	Tree       *graphs.Tree
	Access     map[int]AccessPoint // by pad index
	Candidates []Candidate
	CircleLen  int // number of positions in the circular model

	// capacity per tree edge key (min<<32|max), in simultaneous tracks.
	cap map[int64]float64
}

func edgeKey(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// Analyze runs the full preprocessing stage.
func Analyze(d *design.Design, cfg Config) (*Analysis, error) {
	if cfg.PeripheralDist == 0 {
		cfg = DefaultConfig()
	}
	if cfg.TrackPitch == 0 {
		cfg.TrackPitch = d.Rules.WireWidth + d.Rules.Spacing
	}
	grids := partitionFanOut(d)
	if len(grids) == 0 {
		return nil, fmt.Errorf("fanout: design %s has no fan-out region", d.Name)
	}
	access, err := accessPoints(d, grids, cfg)
	if err != nil {
		return nil, err
	}

	// Fan-out grid graph: vertices are merged grids, edges join grids with
	// a shared border; weight is center-to-center distance. The O(n²)
	// border scan fans out per source grid; each index collects its own
	// edge list so the graph and capacity map are filled in the same
	// (i, j) order as the sequential double loop.
	type borderEdge struct {
		j   int
		w   float64
		cap float64
	}
	scan, _ := par.Map(context.Background(), cfg.Workers, len(grids), func(i int) ([]borderEdge, error) {
		var out []borderEdge
		for j := i + 1; j < len(grids); j++ {
			b := gridBorder(grids[i].Box, grids[j].Box)
			if b <= 0 {
				continue
			}
			w := geom.Euclid(grids[i].Box.Center(), grids[j].Box.Center())
			out = append(out, borderEdge{j: j, w: w, cap: float64(b / cfg.TrackPitch)})
		}
		return out, nil
	})
	g := graphs.NewGraph(len(grids))
	capByEdge := make(map[int64]float64)
	for i, edges := range scan {
		for _, e := range edges {
			g.AddEdge(i, e.j, e.w)
			capByEdge[edgeKey(i, e.j)] = e.cap
		}
	}
	tree := graphs.PrimMST(g)

	a := &Analysis{
		Design: d,
		Cfg:    cfg,
		Grids:  grids,
		Graph:  g,
		Tree:   tree,
		Access: access,
		cap:    capByEdge,
	}

	// Net candidates: inter-chip nets with both pads peripheral and both
	// access grids in the same tree component. Each net's MST path walk is
	// independent (Tree.Path allocates per call), so the construction fans
	// out per net; nil slots are dropped in net order afterwards.
	built, _ := par.Map(context.Background(), cfg.Workers, len(d.Nets), func(ni int) (*Candidate, error) {
		n := d.Nets[ni]
		if !n.InterChip() {
			return nil, nil
		}
		ap1, ok1 := access[n.P1.Index]
		ap2, ok2 := access[n.P2.Index]
		if !ok1 || !ok2 {
			return nil, nil
		}
		path := tree.Path(ap1.Grid, ap2.Grid)
		if path == nil {
			return nil, nil
		}
		c := &Candidate{Net: ni, AP1: ap1, AP2: ap2, Path: path}
		direct := geom.OctDist(ap1.Point, ap2.Point)
		plen := pathLen(a, ap1, ap2, path)
		if direct < 1 {
			direct = 1
		}
		c.DetourRate = plen / direct
		return c, nil
	})
	for _, c := range built {
		if c != nil {
			a.Candidates = append(a.Candidates, *c)
		}
	}

	a.buildCircle()
	a.RecomputeCongestion(nil)
	return a, nil
}

// pathLen measures the pre-routed path: access point → grid centers along
// the path → access point.
func pathLen(a *Analysis, ap1, ap2 AccessPoint, path []int) float64 {
	pts := make([]geom.Point, 0, len(path)+2)
	pts = append(pts, ap1.Point)
	for _, gid := range path {
		pts = append(pts, a.Grids[gid].Box.Center())
	}
	pts = append(pts, ap2.Point)
	total := 0.0
	for i := 0; i+1 < len(pts); i++ {
		total += geom.OctDist(pts[i], pts[i+1])
	}
	return total
}

// EdgeCapacity returns the track capacity of the tree edge {u, v}.
func (a *Analysis) EdgeCapacity(u, v int) float64 { return a.cap[edgeKey(u, v)] }

// RecomputeCongestion recomputes per-edge demand and each candidate's FMax
// and FAvg (Eq. 1), counting only candidates whose index is not in the
// skip set (pass nil to count all). Call it again between per-layer
// assignment rounds as candidates get consumed.
func (a *Analysis) RecomputeCongestion(skip map[int]bool) {
	dem := make(map[int64]float64)
	for ci, c := range a.Candidates {
		if skip[ci] {
			continue
		}
		for i := 0; i+1 < len(c.Path); i++ {
			dem[edgeKey(c.Path[i], c.Path[i+1])]++
		}
	}
	overflow := func(u, v int) float64 {
		k := edgeKey(u, v)
		capE := a.cap[k]
		d := dem[k]
		if capE >= d {
			return 0
		}
		if capE <= 0 {
			capE = 0.5 // zero-capacity border: heavily congested
		}
		return d / capE
	}
	// Per-candidate scoring only reads dem/cap and writes the candidate's
	// own FMax/FAvg, so it fans out index-addressed.
	par.ForEach(context.Background(), a.Cfg.Workers, len(a.Candidates), func(ci int) error {
		c := &a.Candidates[ci]
		c.FMax, c.FAvg = 0, 0
		edges := 0
		for i := 0; i+1 < len(c.Path); i++ {
			f := overflow(c.Path[i], c.Path[i+1])
			if f > c.FMax {
				c.FMax = f
			}
			c.FAvg += f
			edges++
		}
		if edges > 0 {
			c.FAvg /= float64(edges)
		}
		return nil
	})
}

// Chords converts the candidates (excluding the skip set) into weighted
// chords of the circular model, with Tag = candidate index. Weights follow
// Eq. (2):
//
//	weight = (α·r_d + β·log_δ(δ+f_max) + γ·log_δ(δ+f_avg))⁻¹
func (a *Analysis) Chords(p WeightParams, skip map[int]bool) []mpsc.Chord {
	var out []mpsc.Chord
	logd := math.Log(p.Delta)
	for ci, c := range a.Candidates {
		if skip[ci] {
			continue
		}
		den := p.Alpha * c.DetourRate
		if p.Delta > 1 {
			den += p.Beta * math.Log(p.Delta+c.FMax) / logd
			den += p.Gamma * math.Log(p.Delta+c.FAvg) / logd
		}
		if den <= 0 {
			den = 1e-6
		}
		out = append(out, mpsc.Chord{A: c.Pos1, B: c.Pos2, W: 1 / den, Tag: ci})
	}
	return out
}
