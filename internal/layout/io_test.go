package layout

import (
	"bytes"
	"strings"
	"testing"

	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
)

func TestLayoutRoundTrip(t *testing.T) {
	d := dsn()
	l := New(d)
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(120, 48)},
		{Layer: 1, Pt: geom.Pt(120, 48)},
		{Layer: 1, Pt: geom.Pt(480, 48)},
	})
	l.AddStack(0, geom.Pt(480, 48), 0, 1)
	l.MarkRouted(0)

	var buf bytes.Buffer
	if err := Format(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Routes) != len(l.Routes) || len(got.Vias) != len(l.Vias) {
		t.Fatalf("shape mismatch: %d/%d routes, %d/%d vias",
			len(got.Routes), len(l.Routes), len(got.Vias), len(l.Vias))
	}
	for i := range l.Routes {
		a, b := l.Routes[i], got.Routes[i]
		if a.Net != b.Net || a.Layer != b.Layer || len(a.Pts) != len(b.Pts) {
			t.Errorf("route %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if !got.Routed(0) {
		t.Error("routed flag lost")
	}
	if got.Wirelength() != l.Wirelength() {
		t.Errorf("wirelength changed: %v vs %v", got.Wirelength(), l.Wirelength())
	}
	if !got.Connected(0) {
		t.Error("connectivity lost")
	}
}

func TestLayoutParseErrors(t *testing.T) {
	d := dsn()
	bad := []string{
		"frobnicate",
		"route 0",             // too short
		"route 0 0 1 2 3",     // odd coords
		"route 99 0 0 0 12 0", // bad net
		"route 0 7 0 0 12 0",  // bad layer
		"via 0 0 1 2",         // too short
		"via 0 9 0 0 16",      // bad slab
		"routed 99",           // bad net
		"route 0 0 0 x 12 0",  // bad int
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line), d); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
	ok := "# comment\n\nroutedlayout t\nroute 0 0 48 48 480 48\nrouted 0\n"
	if _, err := Parse(strings.NewReader(ok), d); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}
