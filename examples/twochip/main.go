// Two-chip inter-chip routing: builds a package by hand — two dies with
// facing and outer pad rows — routes it, and walks the resulting layout
// (per-layer wires and vias), showing how to consume the routing result
// programmatically.
package main

import (
	"fmt"
	"log"

	"rdlroute"
	"rdlroute/internal/geom"
)

func main() {
	d := buildPackage()
	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %d/%d nets (%.1f%%), wirelength %.0f\n",
		res.RoutedNets, res.TotalNets, res.Routability, res.Wirelength)
	fmt.Printf("stage split: %d concurrent (weighted MPSC), %d sequential (A* on tiles)\n",
		res.ConcurrentRouted, res.SequentialRouted)

	// Walk the result: wirelength per layer and via usage per net.
	perLayer := make([]float64, d.WireLayers)
	for i := range res.Layout.Routes {
		r := &res.Layout.Routes[i]
		perLayer[r.Layer] += r.Len()
	}
	for l, wl := range perLayer {
		fmt.Printf("  layer %d: %.0f µm of wire\n", l, wl)
	}
	viasPerNet := map[int]int{}
	for _, v := range res.Layout.Vias {
		viasPerNet[v.Net]++
	}
	for ni := range d.Nets {
		if res.Layout.Routed(ni) {
			fmt.Printf("  net %2d: wirelength %6.0f, vias %d\n",
				ni, res.Layout.NetWirelength(ni), viasPerNet[ni])
		}
	}
	if vs := rdlroute.Check(res.Layout); len(vs) != 0 {
		log.Fatalf("DRC violations: %v", vs[0])
	}
	fmt.Println("design rules clean")
}

// buildPackage assembles a 2-chip, 3-wire-layer package with 12 nets. All
// coordinates are multiples of 12 (the routing-lattice pitch).
func buildPackage() *rdlroute.Design {
	d := &rdlroute.Design{
		Name:       "twochip",
		Outline:    geom.RectWH(0, 0, 1800, 1200),
		WireLayers: 3,
		Rules:      rdlroute.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips: []rdlroute.Chip{
			{Name: "cpu", Box: geom.RectWH(180, 360, 480, 480)},
			{Name: "mem", Box: geom.RectWH(1140, 360, 480, 480)},
		},
	}
	id := 0
	pad := func(chip int, x, y int64) int {
		d.IOPads = append(d.IOPads, rdlroute.IOPad{
			ID: id, Chip: chip, Center: geom.Pt(x, y), HalfW: 8,
		})
		id++
		return id - 1
	}
	net := func(a, b int) {
		d.Nets = append(d.Nets, rdlroute.Net{
			ID: len(d.Nets),
			P1: rdlroute.PadRef{Kind: 0, Index: a},
			P2: rdlroute.PadRef{Kind: 0, Index: b},
		})
	}
	// Facing bus: cpu east edge ↔ mem west edge, straight across.
	for i := 0; i < 6; i++ {
		y := int64(420 + 72*i)
		net(pad(0, 648, y), pad(1, 1152, y))
	}
	// Crossed pairs on the outer edges: these force layers or detours.
	var left, right []int
	for i := 0; i < 3; i++ {
		y := int64(456 + 96*i)
		left = append(left, pad(0, 192, y))
		right = append(right, pad(1, 1608, y))
	}
	for i := 0; i < 3; i++ {
		net(left[i], right[2-i])
	}
	// One top-edge pair.
	net(pad(0, 420, 828), pad(1, 1380, 828))
	// One bottom-edge pair.
	net(pad(0, 420, 372), pad(1, 1380, 372))
	// An interior (non-peripheral) pair: handled by the sequential stage.
	net(pad(0, 420, 600), pad(1, 1380, 600))
	return d
}
