package obs

import (
	"sync"
	"time"
)

// Event is one collected point-in-time event.
type Event struct {
	Name  string
	Time  time.Duration // since the collector was created
	Attrs map[string]any
}

// Str returns the named string attribute ("" when absent or non-string).
func (e Event) Str(key string) string {
	s, _ := e.Attrs[key].(string)
	return s
}

// Num returns the named numeric attribute as float64 (0 when absent).
func (e Event) Num(key string) float64 {
	switch v := e.Attrs[key].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return 0
	}
}

// SpanRec is one collected closed span.
type SpanRec struct {
	Name  string
	Start time.Duration // since the collector was created
	Dur   time.Duration
	Attrs map[string]any
}

// Collector is the in-memory sink: it retains every span, event, counter
// and distribution sample, for tests and for Snapshot aggregation. Safe
// for concurrent use.
type Collector struct {
	mu       sync.Mutex
	start    time.Time
	events   []Event
	spans    []SpanRec
	counters map[string]int64
	dists    map[string][]float64
}

// NewCollector returns an empty in-memory collector.
func NewCollector() *Collector {
	return &Collector{
		start:    now(),
		counters: map[string]int64{},
		dists:    map[string][]float64{},
	}
}

func (c *Collector) Enabled() bool { return true }

type collectorSpan struct {
	c     *Collector
	name  string
	attrs map[string]any
	t0    time.Time
}

func (s *collectorSpan) End(attrs ...Attr) {
	m := s.attrs
	if len(attrs) > 0 {
		if m == nil {
			m = make(map[string]any, len(attrs))
		}
		for _, a := range attrs {
			m[a.Key] = a.Value()
		}
	}
	end := now()
	s.c.mu.Lock()
	s.c.spans = append(s.c.spans, SpanRec{
		Name:  s.name,
		Start: s.t0.Sub(s.c.start),
		Dur:   end.Sub(s.t0),
		Attrs: m,
	})
	s.c.mu.Unlock()
}

func (c *Collector) Span(name string, attrs ...Attr) Span {
	return &collectorSpan{c: c, name: name, attrs: attrMap(attrs), t0: now()}
}

func (c *Collector) Event(name string, attrs ...Attr) {
	e := Event{Name: name, Time: now().Sub(c.start), Attrs: attrMap(attrs)}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *Collector) Count(name string, delta int64) {
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

func (c *Collector) Observe(name string, v float64) {
	c.mu.Lock()
	c.dists[name] = append(c.dists[name], v)
	c.mu.Unlock()
}

// Events returns the collected events with the given name (all events
// when name is empty), in emission order.
func (c *Collector) Events(name string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if name == "" || e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Spans returns the collected spans with the given name (all spans when
// name is empty), in completion order.
func (c *Collector) Spans(name string) []SpanRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SpanRec
	for _, s := range c.spans {
		if name == "" || s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Counter returns the current value of the named counter.
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// CountEvents counts events with the given name for which match returns
// true (match nil counts them all).
func (c *Collector) CountEvents(name string, match func(Event) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Name == name && (match == nil || match(e)) {
			n++
		}
	}
	return n
}
