package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

// PortfolioRow is one circuit's ordering-portfolio experiment: the
// default single-policy flow versus the same flow racing the first K
// registry policies, plus the byte-identity check against a solo run
// pinned to the policy the race selected.
type PortfolioRow struct {
	Name     string `json:"circuit"`
	Policies int    `json:"policies"`

	// The single-policy baseline: the flow exactly as Table I runs it
	// (policy 0, shortest-first).
	SoloRoutability float64 `json:"solo_routability"`
	SoloWirelength  float64 `json:"solo_wirelength"`
	SoloSeconds     float64 `json:"solo_seconds"`

	// The portfolio run. Seconds includes the whole race, so the column
	// prices the quality gain honestly.
	PortRoutability float64 `json:"portfolio_routability"`
	PortWirelength  float64 `json:"portfolio_wirelength"`
	PortSeconds     float64 `json:"portfolio_seconds"`

	Winner     int    `json:"winner"`
	WinnerName string `json:"winner_name"`
	// RoutedDelta is the portfolio run's routed-net gain over the
	// single-policy baseline (0 when policy 0 wins the race).
	RoutedDelta int `json:"routed_delta"`

	// Candidates are the race's per-policy scores (post-rip-up, pre-LP).
	Candidates []router.PolicyScore `json:"candidates"`

	// Deterministic reports the winner-equals-solo contract measured, not
	// assumed: a fresh solo run pinned to the winning policy reproduced
	// the portfolio run's lattice fingerprint, routability and wirelength.
	Deterministic bool `json:"deterministic"`
}

// RunPortfolio routes each named circuit three times — the single-policy
// baseline, the K-policy portfolio, and a solo replay of the race's
// winner for the byte-identity check. Runs are never overlapped
// (Parallel is ignored): the solo-vs-portfolio seconds are the
// experiment's cost axis and overlapping would corrupt them.
func RunPortfolio(names []string, k int) ([]PortfolioRow, error) {
	var rows []PortfolioRow
	for _, name := range names {
		spec, err := design.DenseSpec(name)
		if err != nil {
			return nil, err
		}
		gen := func() (*design.Design, error) { return design.Generate(spec) }

		d, err := gen()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		solo, err := router.Route(d, routerOptions())
		if err != nil {
			return nil, err
		}
		soloSec := time.Since(start).Seconds()

		if d, err = gen(); err != nil {
			return nil, err
		}
		popts := routerOptions()
		popts.OrderPortfolio = k
		start = time.Now()
		port, pfp, err := router.RouteFingerprint(context.Background(), d, popts)
		if err != nil {
			return nil, err
		}
		portSec := time.Since(start).Seconds()
		if port.Portfolio == nil {
			return nil, fmt.Errorf("bench: %s: portfolio run returned no report", name)
		}

		if d, err = gen(); err != nil {
			return nil, err
		}
		wopts := router.WithOrderPolicy(routerOptions(), port.Portfolio.Winner)
		replay, rfp, err := router.RouteFingerprint(context.Background(), d, wopts)
		if err != nil {
			return nil, err
		}

		rows = append(rows, PortfolioRow{
			Name:            name,
			Policies:        k,
			SoloRoutability: solo.Routability,
			SoloWirelength:  solo.Wirelength,
			SoloSeconds:     soloSec,
			PortRoutability: port.Routability,
			PortWirelength:  port.Wirelength,
			PortSeconds:     portSec,
			Winner:          port.Portfolio.Winner,
			WinnerName:      port.Portfolio.WinnerName,
			RoutedDelta:     port.RoutedNets - solo.RoutedNets,
			Candidates:      port.Portfolio.Candidates,
			Deterministic: pfp == rfp &&
				port.Routability == replay.Routability &&
				port.Wirelength == replay.Wirelength,
		})
	}
	return rows, nil
}

// FormatPortfolio renders the portfolio rows as a fixed-width table.
func FormatPortfolio(rows []PortfolioRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s | %7s %12s %8s | %7s %12s %8s | %-10s %6s %5s\n",
		"Circuit", "Policies", "Solo R", "Solo WL", "Solo t",
		"Port R", "Port WL", "Port t", "Winner", "ΔNets", "Det")
	for _, r := range rows {
		det := "yes"
		if !r.Deterministic {
			det = "NO"
		}
		fmt.Fprintf(&b, "%-8s %8d | %6.1f%% %12.0f %7.2fs | %6.1f%% %12.0f %7.2fs | %-10s %+6d %5s\n",
			r.Name, r.Policies,
			r.SoloRoutability, r.SoloWirelength, r.SoloSeconds,
			r.PortRoutability, r.PortWirelength, r.PortSeconds,
			r.WinnerName, r.RoutedDelta, det)
	}
	return b.String()
}
