package obs

import (
	"sync"
	"time"
)

// Event is one collected point-in-time event.
type Event struct {
	Name  string
	Time  time.Duration // since the collector was created
	Attrs map[string]any
}

// Str returns the named string attribute ("" when absent or non-string).
func (e Event) Str(key string) string {
	s, _ := e.Attrs[key].(string)
	return s
}

// Num returns the named numeric attribute as float64 (0 when absent).
func (e Event) Num(key string) float64 {
	switch v := e.Attrs[key].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return 0
	}
}

// SpanRec is one collected closed span.
type SpanRec struct {
	Name  string
	Start time.Duration // since the collector was created
	Dur   time.Duration
	Attrs map[string]any
}

// distAgg is one distribution's exact running aggregates plus a bounded
// window of raw samples for percentile estimation.
type distAgg struct {
	n             int
	min, max, sum float64
	samples       []float64
}

// Collector is the in-memory sink: it aggregates every span, counter and
// distribution sample, for tests and for Snapshot aggregation. Safe for
// concurrent use.
//
// Aggregates (counters, span totals, distribution count/min/max/sum) are
// always exact. Raw records — individual events, spans and distribution
// samples — are retained in full by NewCollector, or up to a fixed cap
// by NewBoundedCollector, which an always-on production sink uses to
// stay allocation-bounded no matter how many jobs flow through it.
// Beyond the cap, percentiles summarize the retained window only.
type Collector struct {
	mu     sync.Mutex
	start  time.Time
	bound  int // max retained events, spans, and samples per dist; 0 = unlimited
	events []Event
	nEvent int // all events seen, including unretained ones
	spans  []SpanRec
	agg    map[string]*SpanStat
	counts map[string]int64
	dists  map[string]*distAgg
}

// NewCollector returns an empty collector that retains every record.
func NewCollector() *Collector { return newCollector(0) }

// NewBoundedCollector returns a collector whose retained raw records —
// events, spans, and samples per distribution — are each capped at
// bound. Aggregates stay exact past the cap; percentiles degrade to the
// first bound samples. bound <= 0 means unlimited.
func NewBoundedCollector(bound int) *Collector { return newCollector(bound) }

func newCollector(bound int) *Collector {
	return &Collector{
		start:  now(),
		bound:  bound,
		agg:    map[string]*SpanStat{},
		counts: map[string]int64{},
		dists:  map[string]*distAgg{},
	}
}

func (c *Collector) Enabled() bool { return true }

// keep reports whether a slice of current length n may grow under the
// collector's retention bound. Callers hold c.mu.
func (c *Collector) keep(n int) bool { return c.bound <= 0 || n < c.bound }

type collectorSpan struct {
	c     *Collector
	name  string
	attrs map[string]any
	t0    time.Time
}

func (s *collectorSpan) End(attrs ...Attr) {
	m := s.attrs
	if len(attrs) > 0 {
		if m == nil {
			m = make(map[string]any, len(attrs))
		}
		for _, a := range attrs {
			m[a.Key] = a.Value()
		}
	}
	end := now()
	c := s.c
	c.mu.Lock()
	st := c.agg[s.name]
	if st == nil {
		st = &SpanStat{Name: s.name}
		c.agg[s.name] = st
	}
	st.Count++
	st.TotalMs += float64(end.Sub(s.t0).Nanoseconds()) / 1e6
	if c.keep(len(c.spans)) {
		c.spans = append(c.spans, SpanRec{
			Name:  s.name,
			Start: s.t0.Sub(c.start),
			Dur:   end.Sub(s.t0),
			Attrs: m,
		})
	}
	c.mu.Unlock()
}

func (c *Collector) Span(name string, attrs ...Attr) Span {
	return &collectorSpan{c: c, name: name, attrs: attrMap(attrs), t0: now()}
}

func (c *Collector) Event(name string, attrs ...Attr) {
	e := Event{Name: name, Time: now().Sub(c.start), Attrs: attrMap(attrs)}
	c.mu.Lock()
	c.nEvent++
	if c.keep(len(c.events)) {
		c.events = append(c.events, e)
	}
	c.mu.Unlock()
}

func (c *Collector) Count(name string, delta int64) {
	c.mu.Lock()
	c.counts[name] += delta
	c.mu.Unlock()
}

func (c *Collector) Observe(name string, v float64) {
	c.mu.Lock()
	d := c.dists[name]
	if d == nil {
		d = &distAgg{}
		c.dists[name] = d
	}
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
	if c.keep(len(d.samples)) {
		d.samples = append(d.samples, v)
	}
	c.mu.Unlock()
}

// Events returns the retained events with the given name (all events
// when name is empty), in emission order.
func (c *Collector) Events(name string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if name == "" || e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Spans returns the retained spans with the given name (all spans when
// name is empty), in completion order.
func (c *Collector) Spans(name string) []SpanRec {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SpanRec
	for _, s := range c.spans {
		if name == "" || s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Counter returns the current value of the named counter.
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// CountEvents counts retained events with the given name for which match
// returns true (match nil counts them all).
func (c *Collector) CountEvents(name string, match func(Event) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Name == name && (match == nil || match(e)) {
			n++
		}
	}
	return n
}
