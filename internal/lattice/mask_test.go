package lattice

import (
	"math"
	"math/rand"
	"testing"

	"rdlroute/internal/geom"
)

// TestAllowOctMatchesContains: rasterization must agree with
// Oct8.Contains at every lattice node, for random octagons including
// degenerate ones.
func TestAllowOctMatchesContains(t *testing.T) {
	la := mustNew(t, bare(1))
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		span := func() (int64, int64) {
			a := int64(rng.Intn(600))
			b := a + int64(rng.Intn(240))
			return a, b
		}
		var o geom.Oct8
		o.XLo, o.XHi = span()
		o.YLo, o.YHi = span()
		o.SLo, o.SHi = span()
		o.SLo += o.XLo + o.YLo - 120
		o.SHi += o.XLo + o.YLo
		o.DLo, o.DHi = span()
		o.DLo += o.YLo - o.XHi - 120
		o.DHi += o.YLo - o.XHi
		m := la.NewRegionMask()
		m.AllowOct(0, o)
		c := o.Canonical()
		for j := 0; j < la.NY; j++ {
			for i := 0; i < la.NX; i++ {
				want := c.Contains(la.NodePoint(i, j))
				if got := m.Allowed(0, i, j); got != want {
					t.Fatalf("iter %d: node (%d,%d)=%v allowed=%v want=%v oct=%v",
						iter, i, j, la.NodePoint(i, j), got, want, c)
				}
			}
		}
	}
}

func TestMaskRectAndLayerBounds(t *testing.T) {
	la := mustNew(t, bare(2))
	m := la.NewRegionMask()
	m.AllowRect(1, geom.RectWH(24, 24, 120, 60))
	if m.Allowed(0, 3, 3) {
		t.Error("layer 0 must stay disallowed")
	}
	if !m.Allowed(1, 2, 2) || !m.Allowed(1, 12, 7) {
		t.Error("rect corners (24,24)-(144,84) should be allowed on layer 1")
	}
	if m.Allowed(1, 13, 2) || m.Allowed(1, 2, 8) {
		t.Error("nodes outside the rect should stay disallowed")
	}
	m.ClearRect(1, geom.RectWH(48, 24, 24, 60))
	if m.Allowed(1, 5, 4) {
		t.Error("cleared sub-rect should be disallowed again")
	}
	if !m.Allowed(1, 2, 4) || !m.Allowed(1, 12, 4) {
		t.Error("clear must not spill outside its rect")
	}
	if m.Allowed(-1, 0, 0) || m.Allowed(2, 0, 0) {
		t.Error("out-of-range layers must read as disallowed")
	}
}

// TestRegionMaskEquivalentToRegionFunc: for the same octagonal region,
// the bitmap path and the closure fallback must find the identical route.
func TestRegionMaskEquivalentToRegionFunc(t *testing.T) {
	d := bare(1)
	la1 := mustNew(t, d)
	la2 := mustNew(t, d)
	oct := geom.OctAroundSegment(geom.Seg(geom.Pt(48, 48), geom.Pt(480, 300)), 60)
	mask := la1.NewRegionMask()
	mask.AllowOct(0, oct)
	base := Request{Net: 0, From: geom.Pt(48, 48), To: geom.Pt(480, 300)}
	reqMask := base
	reqMask.RegionMask = mask
	reqFunc := base
	reqFunc.Region = func(l int, p geom.Point) bool { return oct.Canonical().Contains(p) }
	p1, c1, ok1 := la1.Route(reqMask)
	p2, c2, ok2 := la2.Route(reqFunc)
	if !ok1 || !ok2 {
		t.Fatalf("route failed: mask=%v func=%v", ok1, ok2)
	}
	if math.Abs(c1-c2) > 1e-9 || len(p1) != len(p2) {
		t.Fatalf("mask path (cost %v, %d steps) != func path (cost %v, %d steps)",
			c1, len(p1), c2, len(p2))
	}
	for k := range p1 {
		if p1[k] != p2[k] {
			t.Fatalf("step %d differs: %v vs %v", k, p1[k], p2[k])
		}
	}
}

// TestSearchWindowCoversTerminals: the clip window must always contain
// the snapped terminal nodes with margin, whatever the cost budget.
func TestSearchWindowCoversTerminals(t *testing.T) {
	la := mustNew(t, bare(1))
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 500; iter++ {
		from := geom.Pt(int64(rng.Intn(600)), int64(rng.Intn(600)))
		to := geom.Pt(int64(rng.Intn(600)), int64(rng.Intn(600)))
		i0, j0, i1, j1 := la.SearchWindow(from, to, 0)
		for _, p := range []geom.Point{from, to} {
			i, j := la.Snap(p)
			if i < i0 || i > i1 || j < j0 || j > j1 {
				t.Fatalf("window [%d,%d]x[%d,%d] misses terminal %v (node %d,%d)",
					i0, i1, j0, j1, p, i, j)
			}
		}
		if i0 < 0 || j0 < 0 || i1 >= la.NX || j1 >= la.NY {
			t.Fatalf("window [%d,%d]x[%d,%d] out of lattice %dx%d", i0, i1, j0, j1, la.NX, la.NY)
		}
	}
}
