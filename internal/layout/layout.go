// Package layout represents routing results: per-layer octilinear wire
// polylines and octagonal vias, plus the wirelength and routability
// metrics the paper's Table I reports.
package layout

import (
	"fmt"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
)

// Route is one polyline of a net on a single wire layer.
type Route struct {
	Net   int
	Layer int
	Pts   []geom.Point
}

// Segments calls fn for each segment of the polyline.
func (r *Route) Segments(fn func(geom.Segment)) {
	for i := 0; i+1 < len(r.Pts); i++ {
		fn(geom.Seg(r.Pts[i], r.Pts[i+1]))
	}
}

// Len returns the Euclidean length of the polyline (exact for octilinear
// routes, where every segment is an H/V/45/135 run).
func (r *Route) Len() float64 {
	total := 0.0
	r.Segments(func(s geom.Segment) { total += s.Len() })
	return total
}

// Via is an octagonal via joining wire layers Slab and Slab+1.
type Via struct {
	Net    int
	Center geom.Point
	Slab   int
	Width  int64
}

// Oct returns the via's octagonal outline.
func (v Via) Oct() geom.Oct8 { return geom.RegularOct(v.Center, v.Width) }

// Layout is a (possibly partial) routing result for a design.
type Layout struct {
	D      *design.Design
	Routes []Route
	Vias   []Via
	routed map[int]bool
}

// New returns an empty layout for the design.
func New(d *design.Design) *Layout {
	return &Layout{D: d, routed: make(map[int]bool)}
}

// MarkRouted records that the net is completely connected.
func (l *Layout) MarkRouted(net int) { l.routed[net] = true }

// Routed reports whether the net was marked routed.
func (l *Layout) Routed(net int) bool { return l.routed[net] }

// RoutedCount returns the number of routed nets.
func (l *Layout) RoutedCount() int { return len(l.routed) }

// Routability returns routed nets / total nets as a percentage.
func (l *Layout) Routability() float64 {
	if len(l.D.Nets) == 0 {
		return 100
	}
	return 100 * float64(len(l.routed)) / float64(len(l.D.Nets))
}

// AddPath converts a lattice path into routes and vias of the net.
func (l *Layout) AddPath(net int, path []lattice.PathStep) {
	var cur []geom.Point
	curLayer := -1
	flush := func() {
		if len(cur) >= 2 {
			pts := make([]geom.Point, len(cur))
			copy(pts, cur)
			l.Routes = append(l.Routes, Route{Net: net, Layer: curLayer, Pts: pts})
		}
		cur = cur[:0]
	}
	for k, st := range path {
		if st.Layer != curLayer {
			flush()
			curLayer = st.Layer
			cur = append(cur, st.Pt)
			if k > 0 && path[k-1].Pt.Eq(st.Pt) {
				slab := st.Layer
				if path[k-1].Layer < slab {
					slab = path[k-1].Layer
				}
				l.Vias = append(l.Vias, Via{
					Net: net, Center: st.Pt, Slab: slab, Width: l.D.Rules.ViaWidth,
				})
			}
			continue
		}
		cur = append(cur, st.Pt)
	}
	flush()
}

// AddStack adds a via stack covering wire layers [l0, l1] at p.
func (l *Layout) AddStack(net int, p geom.Point, l0, l1 int) {
	for s := l0; s < l1; s++ {
		l.Vias = append(l.Vias, Via{Net: net, Center: p, Slab: s, Width: l.D.Rules.ViaWidth})
	}
}

// Clone returns a deep copy of the layout (routes, vias and the routed
// set; the design is shared).
func (l *Layout) Clone() *Layout {
	c := &Layout{D: l.D, routed: make(map[int]bool, len(l.routed))}
	c.Routes = make([]Route, len(l.Routes))
	for i, r := range l.Routes {
		pts := make([]geom.Point, len(r.Pts))
		copy(pts, r.Pts)
		c.Routes[i] = Route{Net: r.Net, Layer: r.Layer, Pts: pts}
	}
	c.Vias = append(c.Vias, l.Vias...)
	for k, v := range l.routed {
		c.routed[k] = v
	}
	return c
}

// RemoveNet deletes every route and via of the net and unmarks it.
func (l *Layout) RemoveNet(net int) {
	routes := l.Routes[:0]
	for _, r := range l.Routes {
		if r.Net != net {
			routes = append(routes, r)
		}
	}
	l.Routes = routes
	vias := l.Vias[:0]
	for _, v := range l.Vias {
		if v.Net != net {
			vias = append(vias, v)
		}
	}
	l.Vias = vias
	delete(l.routed, net)
}

// Wirelength returns the total length of all routes of routed nets (the
// paper's metric counts only routed nets).
func (l *Layout) Wirelength() float64 {
	total := 0.0
	for i := range l.Routes {
		if l.routed[l.Routes[i].Net] {
			total += l.Routes[i].Len()
		}
	}
	return total
}

// NetWirelength returns the total length of one net's routes.
func (l *Layout) NetWirelength(net int) float64 {
	total := 0.0
	for i := range l.Routes {
		if l.Routes[i].Net == net {
			total += l.Routes[i].Len()
		}
	}
	return total
}

// ViaCount returns the number of single-slab vias (stacks count each slab).
func (l *Layout) ViaCount() int { return len(l.Vias) }

// String implements fmt.Stringer with a compact summary.
func (l *Layout) String() string {
	return fmt.Sprintf("layout{%s: %d/%d nets, %d routes, %d vias, wl=%.0f}",
		l.D.Name, len(l.routed), len(l.D.Nets), len(l.Routes), len(l.Vias), l.Wirelength())
}

// Connected verifies net connectivity through routes, vias and the net's
// two pads, using exact point coincidence. It returns true when the net's
// pads are joined.
func (l *Layout) Connected(net int) bool {
	type key struct {
		layer int
		p     geom.Point
	}
	id := map[key]int{}
	parent := []int{}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	get := func(k key) int {
		if v, ok := id[k]; ok {
			return v
		}
		v := len(parent)
		parent = append(parent, v)
		id[k] = v
		return v
	}
	type layerSeg struct {
		layer int
		s     geom.Segment
	}
	var segs []layerSeg
	for i := range l.Routes {
		r := &l.Routes[i]
		if r.Net != net {
			continue
		}
		for j := 0; j+1 < len(r.Pts); j++ {
			union(get(key{r.Layer, r.Pts[j]}), get(key{r.Layer, r.Pts[j+1]}))
			if !r.Pts[j].Eq(r.Pts[j+1]) {
				segs = append(segs, layerSeg{r.Layer, geom.Seg(r.Pts[j], r.Pts[j+1])})
			}
		}
	}
	for _, v := range l.Vias {
		if v.Net != net {
			continue
		}
		union(get(key{v.Slab, v.Center}), get(key{v.Slab + 1, v.Center}))
	}
	n := l.D.Nets[net]
	padKey := func(r design.PadRef) key {
		if r.Kind == design.IOKind {
			return key{0, l.D.IOPads[r.Index].Center}
		}
		return key{l.D.WireLayers - 1, l.D.BumpPads[r.Index].Center}
	}
	k1, k2 := padKey(n.P1), padKey(n.P2)
	v1, v2 := get(k1), get(k2)
	// T-junctions: a polyline (or via, or pad center) may land on the
	// interior of another segment of the same net without sharing a
	// vertex. Exact-coincidence unions alone would call such a net
	// disconnected, so union every vertex with the segments it lies on.
	verts := make([]key, 0, len(id))
	for k := range id {
		verts = append(verts, k)
	}
	for _, k := range verts {
		for _, ls := range segs {
			if ls.layer != k.layer || k.p.Eq(ls.s.A) || k.p.Eq(ls.s.B) {
				continue
			}
			if ls.s.ContainsPoint(k.p) {
				union(get(k), get(key{ls.layer, ls.s.A}))
			}
		}
	}
	return find(v1) == find(v2)
}
