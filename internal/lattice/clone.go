package lattice

// CloneScratch returns an independent copy of the lattice's occupancy
// state for scratch routing: the wire, via and edge slabs are deep-copied,
// while everything strictly observational — tracer, search-memo journal,
// cached search buffers — is dropped. Routing on the clone is therefore
// byte-identical to routing on the original (occupancy is the only state
// a search reads) but performs no tracer or memo side effects and can
// never leak state back: commits on the clone touch only its own slabs.
//
// The ordering-portfolio racer is the consumer: each candidate policy
// routes the stage-4 queue on its own clone taken from the post-stage-3
// lattice, concurrently with its siblings, and only the winning policy is
// replayed on the real lattice with the real observers attached.
func (la *Lattice) CloneScratch() *Lattice {
	cp := &Lattice{
		D: la.D, Pitch: la.Pitch,
		X0: la.X0, Y0: la.Y0,
		NX: la.NX, NY: la.NY, Layers: la.Layers,
		rWireWire: la.rWireWire, rWireVia: la.rWireVia, rViaVia: la.rViaVia,
		rShapeW: la.rShapeW, rShapeV: la.rShapeV,
	}
	cp.wireOcc = append([]int32(nil), la.wireOcc...)
	if la.viaOcc != nil {
		cp.viaOcc = append([]int32(nil), la.viaOcc...)
	}
	for k := range la.edgeOcc {
		if la.edgeOcc[k] != nil {
			cp.edgeOcc[k] = append([]int32(nil), la.edgeOcc[k]...)
		}
	}
	return cp
}
