package design

import (
	"bytes"
	"strings"
	"testing"

	"rdlroute/internal/geom"
)

// tiny returns a small hand-built valid design for unit tests.
func tiny() *Design {
	return &Design{
		Name:       "tiny",
		Outline:    geom.RectWH(0, 0, 1000, 600),
		WireLayers: 2,
		Rules:      Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips: []Chip{
			{Name: "a", Box: geom.RectWH(100, 100, 200, 200)},
			{Name: "b", Box: geom.RectWH(600, 100, 200, 200)},
		},
		IOPads: []IOPad{
			{ID: 0, Chip: 0, Center: geom.Pt(280, 150), HalfW: 8},
			{ID: 1, Chip: 0, Center: geom.Pt(280, 250), HalfW: 8},
			{ID: 2, Chip: 1, Center: geom.Pt(620, 150), HalfW: 8},
			{ID: 3, Chip: 1, Center: geom.Pt(620, 250), HalfW: 8},
		},
		BumpPads: []BumpPad{
			{ID: 0, Center: geom.Pt(450, 450), W: 40},
		},
		Nets: []Net{
			{ID: 0, P1: PadRef{IOKind, 0}, P2: PadRef{IOKind, 2}},
			{ID: 1, P1: PadRef{IOKind, 1}, P2: PadRef{IOKind, 3}},
		},
	}
}

func TestTinyValid(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatalf("tiny design invalid: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Design)
	}{
		{"no layers", func(d *Design) { d.WireLayers = 0 }},
		{"bad rules", func(d *Design) { d.Rules.Spacing = 0 }},
		{"empty outline", func(d *Design) { d.Outline = geom.Rect{X0: 5, Y0: 5, X1: 1, Y1: 1} }},
		{"chip outside", func(d *Design) { d.Chips[0].Box = geom.RectWH(-50, 0, 100, 100) }},
		{"pad outside chip", func(d *Design) { d.IOPads[0].Center = geom.Pt(500, 500) }},
		{"pad bad chip ref", func(d *Design) { d.IOPads[0].Chip = 9 }},
		{"net bad pad", func(d *Design) { d.Nets[0].P2.Index = 99 }},
		{"net self loop", func(d *Design) { d.Nets[0].P2 = d.Nets[0].P1 }},
		{"pad reused", func(d *Design) { d.Nets[1].P1 = d.Nets[0].P1 }},
		{"obstacle bad layer", func(d *Design) {
			d.Obstacles = append(d.Obstacles, Obstacle{Layer: 5, Box: geom.RectWH(0, 0, 10, 10)})
		}},
		{"pad spacing", func(d *Design) { d.IOPads[1].Center = geom.Pt(282, 160) }},
	}
	for _, c := range cases {
		d := tiny()
		c.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestStats(t *testing.T) {
	s := tiny().Stats()
	if s.Chips != 2 || s.Q != 4 || s.G != 1 || s.N != 2 || s.WireLayers != 2 || s.ViaLayers != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRoundTrip(t *testing.T) {
	d := tiny()
	d.Obstacles = append(d.Obstacles, Obstacle{Layer: 1, Box: geom.RectWH(400, 50, 60, 30)})
	var buf bytes.Buffer
	if err := Format(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Outline != d.Outline || got.WireLayers != d.WireLayers {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Chips) != 2 || got.Chips[1].Name != "b" {
		t.Errorf("chips mismatch: %+v", got.Chips)
	}
	if len(got.IOPads) != 4 || got.IOPads[3].Center != geom.Pt(620, 250) {
		t.Errorf("iopads mismatch: %+v", got.IOPads)
	}
	if len(got.BumpPads) != 1 || got.BumpPads[0].W != 40 {
		t.Errorf("bumppads mismatch: %+v", got.BumpPads)
	}
	if len(got.Nets) != 2 || got.Nets[1].P2 != (PadRef{IOKind, 3}) {
		t.Errorf("nets mismatch: %+v", got.Nets)
	}
	if len(got.Obstacles) != 1 || got.Obstacles[0].Layer != 1 {
		t.Errorf("obstacles mismatch: %+v", got.Obstacles)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped design invalid: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate 1 2 3",
		"outline 1 2 3",
		"chip onlyname",
		"iopad 0 0 x 5 8",
		"net 0 io 1 widget 2",
		"layers metal 3",
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
	// Comments and blank lines are fine.
	if _, err := Parse(strings.NewReader("# comment\n\ndesign x\n")); err != nil {
		t.Errorf("comment parse: %v", err)
	}
}

func TestGenerateDenseSuiteMatchesTableI(t *testing.T) {
	want := []Stats{
		{Name: "dense1", Chips: 2, Q: 44, G: 324, N: 22, WireLayers: 3, ViaLayers: 4},
		{Name: "dense2", Chips: 3, Q: 92, G: 784, N: 46, WireLayers: 3, ViaLayers: 4},
		{Name: "dense3", Chips: 5, Q: 160, G: 308, N: 80, WireLayers: 5, ViaLayers: 6},
		{Name: "dense4", Chips: 6, Q: 222, G: 684, N: 111, WireLayers: 5, ViaLayers: 6},
		{Name: "dense5", Chips: 9, Q: 522, G: 1444, N: 261, WireLayers: 5, ViaLayers: 6},
	}
	for i, spec := range DenseSuite() {
		d, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if got := d.Stats(); got != want[i] {
			t.Errorf("%s: stats = %+v, want %+v", spec.Name, got, want[i])
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", spec.Name, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, err := DenseSpec("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d1, err1 := Generate(spec)
	d2, err2 := Generate(spec)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	var b1, b2 bytes.Buffer
	if err := Format(&b1, d1); err != nil {
		t.Fatal(err)
	}
	if err := Format(&b2, d2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("generator not deterministic for identical specs")
	}
}

func TestGenerateNetsAreInterChip(t *testing.T) {
	d, err := Generate(GenSpec{Name: "x", Chips: 3, IOPads: 30, BumpPads: 16, WireLayers: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cross := 0
	for _, n := range d.Nets {
		if !n.InterChip() {
			t.Fatalf("net %d is not an I/O pad pair", n.ID)
		}
		if d.PadChip(n.P1) != d.PadChip(n.P2) {
			cross++
		}
	}
	if cross < len(d.Nets)*3/4 {
		t.Errorf("only %d of %d nets cross chips", cross, len(d.Nets))
	}
}

func TestGenerateBadSpecs(t *testing.T) {
	if _, err := Generate(GenSpec{Name: "bad", Chips: 0, IOPads: 10, WireLayers: 1}); err == nil {
		t.Error("zero chips accepted")
	}
	if _, err := Generate(GenSpec{Name: "bad", Chips: 1, IOPads: 1, WireLayers: 1}); err == nil {
		t.Error("single pad accepted")
	}
	if _, err := DenseSpec("nonexistent"); err == nil {
		t.Error("unknown benchmark name accepted")
	}
}

func TestGeneratedPadsPeripheralMajority(t *testing.T) {
	// Most pads should sit near their chip boundary (peripheral I/O), since
	// the router's preprocessing keys on that.
	d, err := Generate(GenSpec{Name: "p", Chips: 2, IOPads: 40, BumpPads: 9, WireLayers: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	peripheral := 0
	for _, p := range d.IOPads {
		box := d.Chips[p.Chip].Box
		edgeDist := geom.Min64(
			geom.Min64(p.Center.X-box.X0, box.X1-p.Center.X),
			geom.Min64(p.Center.Y-box.Y0, box.Y1-p.Center.Y),
		)
		if edgeDist <= 30 {
			peripheral++
		}
	}
	if peripheral < len(d.IOPads)*2/3 {
		t.Errorf("peripheral pads = %d of %d", peripheral, len(d.IOPads))
	}
}

func TestGeneratedPadsOnRoutingGrid(t *testing.T) {
	// Pad centers must land on the Grid-pitch routing lattice so the
	// detailed router can reach them directly.
	for _, spec := range DenseSuite() {
		d, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range d.IOPads {
			if p.Center.X%Grid != 0 || p.Center.Y%Grid != 0 {
				t.Fatalf("%s: pad %d center %v off grid", spec.Name, p.ID, p.Center)
			}
		}
		for _, p := range d.BumpPads {
			if p.Center.X%Grid != 0 || p.Center.Y%Grid != 0 {
				t.Fatalf("%s: bump %d center %v off grid", spec.Name, p.ID, p.Center)
			}
		}
	}
}
