package lpopt

import (
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
)

func dsn(layers int) *design.Design {
	d := &design.Design{
		Name:       "t",
		Outline:    geom.RectWH(0, 0, 1200, 600),
		WireLayers: layers,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips:      []design.Chip{{Name: "c", Box: geom.RectWH(0, 0, 1200, 600)}},
		IOPads: []design.IOPad{
			{ID: 0, Chip: 0, Center: geom.Pt(48, 48), HalfW: 8},
			{ID: 1, Chip: 0, Center: geom.Pt(480, 48), HalfW: 8},
			{ID: 2, Chip: 0, Center: geom.Pt(48, 240), HalfW: 8},
			{ID: 3, Chip: 0, Center: geom.Pt(480, 240), HalfW: 8},
		},
		Nets: []design.Net{
			{ID: 0, P1: design.PadRef{Kind: design.IOKind, Index: 0}, P2: design.PadRef{Kind: design.IOKind, Index: 1}},
			{ID: 1, P1: design.PadRef{Kind: design.IOKind, Index: 2}, P2: design.PadRef{Kind: design.IOKind, Index: 3}},
		},
	}
	return d
}

// detourPath is a legal staircase detour between the pads of net 0.
func detourPath() []lattice.PathStep {
	pts := []geom.Point{
		geom.Pt(48, 48), geom.Pt(120, 48),
		geom.Pt(192, 120), // 45° up
		geom.Pt(288, 120), // across
		geom.Pt(360, 48),  // 45° down
		geom.Pt(480, 48),
	}
	var steps []lattice.PathStep
	for _, p := range pts {
		steps = append(steps, lattice.PathStep{Layer: 0, Pt: p})
	}
	return steps
}

func TestOptimizeShortensDetour(t *testing.T) {
	l := layout.New(dsn(1))
	l.AddPath(0, detourPath())
	l.MarkRouted(0)
	before := l.Wirelength()
	st := Optimize(l, Options{})
	after := l.Wirelength()
	if after >= before {
		t.Fatalf("wirelength not reduced: %v -> %v (stats %+v)", before, after, st)
	}
	if vs := drc.Check(l); len(vs) != 0 {
		t.Fatalf("optimized layout has violations: %v", vs)
	}
	if !l.Connected(0) {
		t.Fatal("optimization broke connectivity")
	}
	// The optimum pulls the detour almost flat; expect to get close to the
	// direct length 432 (the minimum-segment-length floor adds a little).
	if after > 460 {
		t.Errorf("after = %v, want near 432", after)
	}
	if st.Iterations < 1 || st.Components < 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOptimizeRespectsNeighborSpacing(t *testing.T) {
	// Net 1 runs straight between the detour and its baseline. The LP must
	// stop the detour's descent at the spacing margin instead of plowing
	// through net 1.
	l := layout.New(dsn(1))
	l.AddPath(0, detourPath())
	l.MarkRouted(0)
	// Net 1's wire sits under the detour's middle span only (clear of the
	// diagonals, which cross y=84 at x=156 and x=324).
	l.Routes = append(l.Routes, layout.Route{
		Net: 1, Layer: 0,
		Pts: []geom.Point{geom.Pt(204, 84), geom.Pt(276, 84)},
	})
	before := l.Wirelength()
	Optimize(l, Options{})
	if vs := drc.Check(l); len(vs) != 0 {
		t.Fatalf("optimized layout has violations: %v", vs)
	}
	if !l.Connected(0) {
		t.Fatal("net 0 disconnected")
	}
	after := l.Wirelength()
	if after > before {
		t.Errorf("wirelength grew: %v -> %v", before, after)
	}
	// Net 0 segments overlapping net 1's x-span [204,276] must stay ≥ 9
	// away from its centerline at y=84.
	for _, r := range l.Routes {
		if r.Net != 0 {
			continue
		}
		for i := 0; i+1 < len(r.Pts); i++ {
			s := geom.Seg(r.Pts[i], r.Pts[i+1])
			if d := geom.SegSegDist(s, geom.Seg(geom.Pt(204, 84), geom.Pt(276, 84))); d < 9 {
				t.Errorf("segment %v only %v from the neighbor wire", s, d)
			}
		}
	}
}

func TestOptimizeMovesVias(t *testing.T) {
	// Net with a mid-path via pair detouring on layer 1; the via columns
	// should move to shorten the path.
	l := layout.New(dsn(2))
	steps := []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(120, 48)},
		{Layer: 0, Pt: geom.Pt(192, 120)},
		{Layer: 1, Pt: geom.Pt(192, 120)}, // via down
		{Layer: 1, Pt: geom.Pt(288, 120)},
		{Layer: 0, Pt: geom.Pt(288, 120)}, // via up
		{Layer: 0, Pt: geom.Pt(360, 48)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	}
	l.AddPath(0, steps)
	l.MarkRouted(0)
	before := l.Wirelength()
	Optimize(l, Options{MoveVias: true})
	after := l.Wirelength()
	if after >= before {
		t.Errorf("via-path wirelength not reduced: %v -> %v", before, after)
	}
	if vs := drc.Check(l); len(vs) != 0 {
		t.Fatalf("violations after optimization: %v", vs)
	}
	if !l.Connected(0) {
		t.Fatal("connectivity broken")
	}
}

func TestOptimizeFixedStacksStayPut(t *testing.T) {
	// A stack at a pad center must not move (it anchors to the pad).
	l := layout.New(dsn(2))
	l.AddStack(0, geom.Pt(48, 48), 0, 1)
	l.AddStack(0, geom.Pt(480, 48), 0, 1)
	l.AddPath(0, []lattice.PathStep{
		{Layer: 1, Pt: geom.Pt(48, 48)},
		{Layer: 1, Pt: geom.Pt(264, 264)},
		{Layer: 1, Pt: geom.Pt(480, 48)},
	})
	l.MarkRouted(0)
	Optimize(l, Options{})
	for _, v := range l.Vias {
		if v.Center != geom.Pt(48, 48) && v.Center != geom.Pt(480, 48) {
			t.Errorf("pad stack moved to %v", v.Center)
		}
	}
	if vs := drc.Check(l); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if !l.Connected(0) {
		t.Fatal("connectivity broken")
	}
}

func TestOptimizeEmptyLayout(t *testing.T) {
	l := layout.New(dsn(1))
	st := Optimize(l, Options{})
	if st.Before != 0 || st.After != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOptimizeStraightRouteUnchanged(t *testing.T) {
	l := layout.New(dsn(1))
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	})
	l.MarkRouted(0)
	before := l.Wirelength()
	Optimize(l, Options{})
	if got := l.Wirelength(); got != before {
		t.Errorf("straight route changed length: %v -> %v", before, got)
	}
	if vs := drc.Check(l); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}
