package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/layout"
	"rdlroute/internal/metrics"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// TestFlightRingEviction: the ring keeps the last N records newest-first
// and evicts the oldest in place.
func TestFlightRingEviction(t *testing.T) {
	f := newFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		f.record(FlightRecord{ID: fmt.Sprintf("job-%d", i)})
	}
	recs, total := f.list()
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	var ids []string
	for _, r := range recs {
		ids = append(ids, r.ID)
	}
	if got := strings.Join(ids, ","); got != "job-5,job-4,job-3" {
		t.Errorf("retained = %s, want job-5,job-4,job-3 (newest first)", got)
	}
	if _, ok := f.get("job-1"); ok {
		t.Errorf("evicted record job-1 still retrievable")
	}
	if r, ok := f.get("job-4"); !ok || r.ID != "job-4" {
		t.Errorf("get(job-4) = %+v ok=%v", r, ok)
	}
}

// tracedRoute emits a stage span and a counter through the job tracer,
// so flight records and bridged metrics have content without routing for
// real.
func tracedRoute(ctx context.Context, d *design.Design, opts router.Options) (*router.Result, error) {
	end := obs.Stage(obs.Or(opts.Tracer), "sequential")
	tr := obs.Or(opts.Tracer)
	if tr.Enabled() {
		tr.Count("astar.searches", 7)
	}
	end()
	return &router.Result{Layout: layout.New(d), TotalNets: len(d.Nets), RoutedNets: len(d.Nets), Routability: 100}, nil
}

// TestFlightEndpoints: terminal jobs appear at /v1/debug/jobs and
// /v1/debug/jobs/{id} with outcome, timings, options fingerprint and the
// per-job obs snapshot.
func TestFlightEndpoints(t *testing.T) {
	// CacheEntries -1: identical resubmissions must route (and trace) for
	// real here; cache-hit flight tagging has its own tests in cache_test.go.
	s := New(Config{Workers: 1, QueueDepth: 4, FlightSize: 2, Route: tracedRoute, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	d := dense1(t)

	var last *Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(d, router.DefaultOptions(), 0, "")
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, s, j)
		last = j
	}

	var list flightListView
	lr, err := http.Get(ts.URL + "/v1/debug/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, lr, &list)
	if list.Total != 3 || list.Capacity != 2 || len(list.Jobs) != 2 {
		t.Fatalf("flight list = total %d capacity %d len %d, want 3/2/2", list.Total, list.Capacity, len(list.Jobs))
	}
	if list.Jobs[0].ID != last.ID {
		t.Errorf("newest record is %s, want %s", list.Jobs[0].ID, last.ID)
	}

	var rec FlightRecord
	rr, err := http.Get(ts.URL + "/v1/debug/jobs/" + last.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, rr, &rec)
	if rec.Outcome != OutcomeCompleted || rec.State != JobDone {
		t.Errorf("record outcome/state = %s/%s", rec.Outcome, rec.State)
	}
	if rec.Design != d.Name || rec.Nets != len(d.Nets) {
		t.Errorf("record design = %s nets %d", rec.Design, rec.Nets)
	}
	if rec.OptionsFP == "" {
		t.Errorf("record has no options fingerprint")
	}
	if rec.Obs == nil || rec.Obs.Counters["astar.searches"] != 7 {
		t.Errorf("record obs snapshot = %+v, want astar.searches 7", rec.Obs)
	}
	if len(rec.Obs.Spans) == 0 || rec.Obs.Spans[0].Name != "stage:sequential" {
		t.Errorf("record obs spans = %+v, want stage:sequential", rec.Obs.Spans)
	}
	if rec.Routability != 100 || rec.RoutedNets != len(d.Nets) {
		t.Errorf("record result fields = %+v", rec)
	}

	// Evicted and unknown jobs 404.
	for _, id := range []string{"job-1", "job-999"} {
		nf, err := http.Get(ts.URL + "/v1/debug/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		nf.Body.Close()
		if nf.StatusCode != http.StatusNotFound {
			t.Errorf("debug %s: status %d, want 404", id, nf.StatusCode)
		}
	}
	shutdown(t, s)
}

// scrape parses the server's Prometheus exposition.
func scrape(t *testing.T, s *Server) map[string]*metrics.Family {
	t.Helper()
	fams, err := metrics.ParseText(bytes.NewReader(s.Registry().Expose()))
	if err != nil {
		t.Fatalf("exposition: %v", err)
	}
	return fams
}

func counterValue(t *testing.T, fams map[string]*metrics.Family, name string, labels map[string]string) float64 {
	t.Helper()
	f := fams[name]
	if f == nil {
		t.Fatalf("family %s missing (have %v)", name, metrics.Names(fams))
	}
	s, ok := f.Sample(labels)
	if !ok {
		t.Fatalf("family %s has no sample with labels %v", name, labels)
	}
	return s.Value
}

// TestOutcomeCounters drives one job through each terminal outcome and
// checks rdl_jobs_finished_total plus the bridged flow counters.
func TestOutcomeCounters(t *testing.T) {
	gate := make(chan struct{})
	failing := func(ctx context.Context, d *design.Design, opts router.Options) (*router.Result, error) {
		return nil, fmt.Errorf("boom")
	}
	d := dense1(t)

	// completed + bridged counters
	s := New(Config{Workers: 1, Route: tracedRoute})
	j, err := s.Submit(d, router.DefaultOptions(), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j)
	fams := scrape(t, s)
	if got := counterValue(t, fams, "rdl_jobs_finished_total", map[string]string{"outcome": "completed"}); got != 1 {
		t.Errorf("completed = %v, want 1", got)
	}
	if got := counterValue(t, fams, "rdl_astar_searches_total", nil); got != 7 {
		t.Errorf("bridged astar searches = %v, want 7", got)
	}
	if _, ok := fams["rdl_stage_duration_seconds"].Sample(map[string]string{"stage": "sequential"}); !ok {
		t.Errorf("per-stage latency histogram missing sequential series")
	}
	if got := counterValue(t, fams, "rdl_jobs_submitted_total", nil); got != 1 {
		t.Errorf("submitted = %v, want 1", got)
	}
	if fams["go_goroutines"] == nil || fams["go_heap_alloc_bytes"] == nil {
		t.Errorf("runtime gauges missing")
	}
	shutdown(t, s)

	// failed
	s = New(Config{Workers: 1, Route: failing})
	if j, err = s.Submit(d, router.DefaultOptions(), 0, ""); err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j)
	if got := counterValue(t, scrape(t, s), "rdl_jobs_finished_total", map[string]string{"outcome": "failed"}); got != 1 {
		t.Errorf("failed = %v, want 1", got)
	}
	shutdown(t, s)

	// timeout: gated route + 20ms deadline
	s = New(Config{Workers: 1, Route: gatedRoute(gate)})
	if j, err = s.Submit(d, router.DefaultOptions(), 20*time.Millisecond, ""); err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j)
	fams = scrape(t, s)
	if got := counterValue(t, fams, "rdl_jobs_finished_total", map[string]string{"outcome": "timeout"}); got != 1 {
		t.Errorf("timeout = %v, want 1", got)
	}
	if rec, ok := s.flight.get(j.ID); !ok || rec.Outcome != OutcomeTimeout {
		t.Errorf("flight outcome = %+v ok=%v, want timeout", rec, ok)
	}

	// canceled: a running job (gated) cancelled explicitly
	if j, err = s.Submit(d, router.DefaultOptions(), 0, ""); err != nil {
		t.Fatal(err)
	}
	for !s.Cancel(j.ID) {
		time.Sleep(time.Millisecond)
	}
	waitJob(t, s, j)
	if got := counterValue(t, scrape(t, s), "rdl_jobs_finished_total", map[string]string{"outcome": "canceled"}); got != 1 {
		t.Errorf("canceled = %v, want 1", got)
	}
	shutdown(t, s)

	// rejected: queue full
	s = New(Config{Workers: 1, QueueDepth: 1, Route: gatedRoute(gate)})
	var lastErr error
	for i := 0; i < 4; i++ {
		_, err := s.Submit(d, router.DefaultOptions(), 0, "")
		if err != nil {
			lastErr = err
		}
	}
	if lastErr == nil {
		t.Fatal("queue never saturated")
	}
	fams = scrape(t, s)
	if got := counterValue(t, fams, "rdl_jobs_rejected_total", map[string]string{"reason": "busy"}); got < 1 {
		t.Errorf("rejected busy = %v, want >= 1", got)
	}
	close(gate)
	shutdown(t, s)
}

// TestMetricsAcceptNegotiation: Accept: application/json keeps the
// legacy JSON body on /metrics.
func TestMetricsAcceptNegotiation(t *testing.T) {
	s := New(Config{Workers: 1, Route: tracedRoute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Jobs *Metrics `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || v.Jobs == nil {
		t.Fatalf("Accept: application/json did not return the legacy body: %v", err)
	}
	shutdown(t, s)
}

// TestStructuredJobLogs: the slog stream carries accepted/started/
// finished lines correlated by job ID.
func TestStructuredJobLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s := New(Config{Workers: 1, Route: tracedRoute, Logger: logger})
	d := dense1(t)
	j, err := s.Submit(d, router.DefaultOptions(), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j)
	shutdown(t, s)

	var accepted, started, finished bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q", line)
		}
		if rec["job"] != j.ID {
			continue
		}
		switch rec["msg"] {
		case "job accepted":
			accepted = true
		case "job started":
			started = true
		case "job finished":
			finished = true
			if rec["outcome"] != OutcomeCompleted {
				t.Errorf("finished log outcome = %v", rec["outcome"])
			}
		}
	}
	if !accepted || !started || !finished {
		t.Errorf("log stream missing lifecycle lines: accepted=%v started=%v finished=%v\n%s",
			accepted, started, finished, buf.String())
	}
}
