package fanout

import (
	"math"
	"sort"
)

// buildCircle constructs the circular model: the boundary walk of a closed
// shape enclosing the MST (an Euler tour of the thickened tree). Each
// candidate access point is emitted exactly once, at the tour position
// matching its angular sector around its grid's center, so the resulting
// position sequence reflects the geometry of the fan-out region.
func (a *Analysis) buildCircle() {
	type padEntry struct {
		cand  int // candidate index
		end   int // 1 or 2
		angle float64
		seq   int // tiebreaker for deterministic order
	}
	padsAt := make(map[int][]padEntry)
	seq := 0
	for ci := range a.Candidates {
		c := &a.Candidates[ci]
		center1 := a.Grids[c.AP1.Grid].Box.Center()
		padsAt[c.AP1.Grid] = append(padsAt[c.AP1.Grid], padEntry{ci, 1, angleOf(center1, c.AP1.Point), seq})
		seq++
		center2 := a.Grids[c.AP2.Grid].Box.Center()
		padsAt[c.AP2.Grid] = append(padsAt[c.AP2.Grid], padEntry{ci, 2, angleOf(center2, c.AP2.Point), seq})
		seq++
	}

	pos := 0
	visited := make([]bool, len(a.Grids))
	emit := func(e padEntry) {
		c := &a.Candidates[e.cand]
		if e.end == 1 {
			c.Pos1 = pos
		} else {
			c.Pos2 = pos
		}
		pos++
	}

	// norm maps an angle into (base, base+2π].
	norm := func(angle, base float64) float64 {
		for angle <= base {
			angle += 2 * math.Pi
		}
		return angle
	}

	type event struct {
		angle float64
		isPad bool
		pad   padEntry
		child int
	}

	var dfs func(v int, inAngle float64)
	dfs = func(v int, inAngle float64) {
		visited[v] = true
		center := a.Grids[v].Box.Center()
		var events []event
		a.Tree.Adj(v, func(u int, _ float64) {
			if visited[u] {
				return
			}
			events = append(events, event{
				angle: norm(angleOf(center, a.Grids[u].Box.Center()), inAngle),
				child: u,
			})
		})
		for _, p := range padsAt[v] {
			events = append(events, event{angle: norm(p.angle, inAngle), isPad: true, pad: p})
		}
		sort.Slice(events, func(i, j int) bool {
			if events[i].angle != events[j].angle {
				return events[i].angle < events[j].angle
			}
			// Pads before edges at equal angle; then by sequence/child id.
			if events[i].isPad != events[j].isPad {
				return events[i].isPad
			}
			if events[i].isPad {
				return events[i].pad.seq < events[j].pad.seq
			}
			return events[i].child < events[j].child
		})
		for _, e := range events {
			if e.isPad {
				emit(e.pad)
				continue
			}
			if visited[e.child] {
				continue
			}
			// Enter the child; the incoming angle seen from the child is the
			// direction back toward v.
			back := angleOf(a.Grids[e.child].Box.Center(), center)
			dfs(e.child, back)
		}
	}

	for v := range a.Grids {
		if !visited[v] {
			dfs(v, -math.Pi)
		}
	}
	a.CircleLen = pos
}
