package qa

import (
	"fmt"
	"math/rand"

	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/geom"
	"rdlroute/internal/layout"
)

// Generator geometry constants, mirroring the benchmark generator's
// database units: pads are 16 DBU squares on a 12 DBU routing grid.
const (
	qaPadHalfW = 8
	qaBumpW    = 40
	qaMargin   = 264 // fan-out room around the chip array
	qaChipGap  = 420 // inter-chip routing channel
)

// snap rounds v down to a multiple of the routing grid.
func snap(v int64) int64 { return v - v%design.Grid }

// ceilGrid rounds v up to a multiple of the routing grid.
func ceilGrid(v int64) int64 { return (v + design.Grid - 1) / design.Grid * design.Grid }

// Generate builds a random routing instance from the seed. The result is
// deterministic in the seed, passes design.Validate, and is DRC-clean
// before routing (the unrouted layout has no violations), so every
// violation the oracle suite finds afterwards was introduced by a router.
//
// Two families are mixed: spec designs drawn through the benchmark
// generator with randomized shape (irregular pad mixes, interior pads,
// board nets, obstacle clutter, fixed blockage vias), and adversarial
// hand-placed designs whose pad rings sit at or near the minimum legal
// spacing so that any off-by-one in a router's clearance model turns into
// a DRC violation.
func Generate(seed int64) *design.Design {
	rng := rand.New(rand.NewSource(seed*2654435761 + 1))
	for attempt := 0; attempt < 200; attempt++ {
		var d *design.Design
		var err error
		if rng.Intn(3) < 2 {
			d, err = genSpecDesign(rng, seed)
		} else {
			d, err = genAdversarialDesign(rng, seed)
		}
		if err != nil || d == nil {
			continue
		}
		if d.Validate() != nil {
			continue
		}
		// The generated instance itself must be clean: an unrouted layout
		// with violations would blame the routers for the generator's sins.
		if len(drc.Check(layout.New(d))) != 0 {
			continue
		}
		return d
	}
	panic(fmt.Sprintf("qa: seed %d produced no valid design in 200 attempts", seed))
}

// genSpecDesign draws a randomized benchmark-generator spec: small chip
// counts and pad counts keep a single design cheap enough that the
// harness can sweep hundreds of them.
func genSpecDesign(rng *rand.Rand, seed int64) (*design.Design, error) {
	spec := design.GenSpec{
		Name:         fmt.Sprintf("qa-%d", seed),
		Chips:        1 + rng.Intn(3),
		IOPads:       8 + 2*rng.Intn(9), // 8..24
		WireLayers:   1 + rng.Intn(5),   // 1..5
		Seed:         rng.Int63()/2 + 1,
		InteriorFrac: 0.05 + 0.30*rng.Float64(),
	}
	if spec.WireLayers >= 2 && rng.Intn(10) < 6 {
		spec.BumpPads = 9 + rng.Intn(32)
		spec.BoardFrac = 0.5 * rng.Float64()
	}
	if spec.WireLayers >= 3 {
		spec.Obstacles = rng.Intn(5)
	}
	if spec.WireLayers >= 2 {
		spec.FixedVias = rng.Intn(4)
	}
	return design.Generate(spec)
}

// genAdversarialDesign hand-places a design whose peripheral pad rings run
// at near-minimum pitch — pad-to-pad clearance lands exactly at the
// spacing rule s (or one grid step above it) — with optional area pads,
// bump pads, and obstacle clutter dropped into the fan-out region.
func genAdversarialDesign(rng *rand.Rand, seed int64) (*design.Design, error) {
	// Rules drawn so that wire pitch (wire width + spacing) never exceeds
	// the routing grid, which lattice.New requires at the default pitch.
	spacings := []int64{5, 6, 8}
	s := spacings[rng.Intn(len(spacings))]
	d := &design.Design{
		Name:       fmt.Sprintf("qa-adv-%d", seed),
		WireLayers: 2 + rng.Intn(3), // 2..4
		Rules:      design.Rules{Spacing: s, WireWidth: 4, ViaWidth: 16},
	}

	chips := 1 + rng.Intn(2)
	padsPerChip := 6 + 2*rng.Intn(5) // 6..14 per chip
	// Near-minimum ring pitch: Chebyshev clearance 2·halfW + s between pad
	// boxes is the legality boundary; the tightest grid pitch at or above
	// it is the adversarial setting, one step looser the relaxed one. At
	// s = 8 the tightest pitch IS the boundary — pads with zero slack make
	// escaping between ring neighbors geometrically impossible for any
	// router, so that family always takes the one-step-looser pitch.
	minPitch := ceilGrid(2*qaPadHalfW + s)
	pitch := minPitch + int64(rng.Intn(2))*design.Grid
	if minPitch == 2*qaPadHalfW+s {
		pitch = minPitch + design.Grid
	}

	ring := int64(padsPerChip)*pitch + 4*pitch
	side := ceilGrid(ring / 4)
	if side < 120 {
		side = 120
	}

	totalW := 2*int64(qaMargin) + int64(chips)*side + int64(chips-1)*qaChipGap
	totalH := 2*int64(qaMargin) + side
	d.Outline = geom.RectWH(0, 0, totalW, totalH)

	minSep := 2*qaPadHalfW + s // Chebyshev separation keeping pads exactly legal
	padID := 0
	for ci := 0; ci < chips; ci++ {
		x0 := int64(qaMargin) + int64(ci)*(side+qaChipGap)
		box := geom.RectWH(x0, qaMargin, side, side)
		d.Chips = append(d.Chips, design.Chip{Name: fmt.Sprintf("chip%d", ci), Box: box})
		placeRingPads(d, rng, ci, box, padsPerChip, pitch, minSep, &padID)
	}

	// A few interior (area) pads per chip, rejection-sampled clear of the
	// ring at the same Chebyshev separation.
	for ci, chip := range d.Chips {
		placeAreaPads(d, rng, ci, chip.Box, rng.Intn(4), minSep, &padID)
	}

	// Optional bump pads under the fan-out, at the minimum legal bump pitch.
	if rng.Intn(2) == 1 {
		placeBumps(d, rng, 4+rng.Intn(6))
	}

	// Obstacle clutter in the fan-out channel on a random wire layer.
	for k := rng.Intn(3); k > 0; k-- {
		placeClutter(d, rng)
	}

	pairQAPads(d, rng)
	if len(d.Nets) == 0 {
		return nil, fmt.Errorf("qa: no nets")
	}
	return d, nil
}

// placeRingPads walks the chip boundary ring at the given pitch, pulling a
// random subset of pads one grid step into the chip (the paper's irregular
// structure), and keeps every pad at Chebyshev separation ≥ minSep.
func placeRingPads(d *design.Design, rng *rand.Rand, chip int, box geom.Rect, n int, pitch, minSep int64, padID *int) {
	const inset = design.Grid
	w := box.W() - 2*inset
	h := box.H() - 2*inset
	ringLen := 2*w + 2*h
	pos := snap(int64(rng.Intn(int(pitch))))
	for k := 0; k < n; k++ {
		extra := int64(rng.Intn(3)/2) * design.Grid // ~1/3 of pads pulled inward
		placed := false
		p := pos
		for try := 0; try < 64; try++ {
			pt := qaRingPoint(box, inset, extra, snap(p)%ringLen)
			if clearOfChipPads(d, chip, pt, minSep) {
				d.IOPads = append(d.IOPads, design.IOPad{ID: *padID, Chip: chip, Center: pt, HalfW: qaPadHalfW})
				*padID++
				placed = true
				break
			}
			extra = 0
			p += design.Grid
		}
		_ = placed
		pos += pitch
	}
}

// qaRingPoint maps a 1D ring coordinate to the chip boundary, pushed
// inward by extra perpendicular to its edge.
func qaRingPoint(box geom.Rect, inset, extra, p int64) geom.Point {
	x0, y0 := box.X0+inset, box.Y0+inset
	x1, y1 := box.X1-inset, box.Y1-inset
	w, h := x1-x0, y1-y0
	switch {
	case p < w:
		return geom.Pt(x0+p, y0+extra)
	case p < w+h:
		return geom.Pt(x1-extra, y0+(p-w))
	case p < 2*w+h:
		return geom.Pt(x1-(p-w-h), y1-extra)
	default:
		return geom.Pt(x0+extra, y1-(p-2*w-h))
	}
}

func clearOfChipPads(d *design.Design, chip int, pt geom.Point, minSep int64) bool {
	for _, q := range d.IOPads {
		if q.Chip != chip {
			continue
		}
		if geom.Abs64(q.Center.X-pt.X) < minSep && geom.Abs64(q.Center.Y-pt.Y) < minSep {
			return false
		}
	}
	return true
}

// placeAreaPads rejection-samples interior pads on the grid.
func placeAreaPads(d *design.Design, rng *rand.Rand, chip int, box geom.Rect, n int, minSep int64, padID *int) {
	inner := box.Expand(-(qaPadHalfW + 40))
	if inner.Empty() || inner.W() <= 0 || inner.H() <= 0 {
		return
	}
	for k := 0; k < n; k++ {
		for try := 0; try < 80; try++ {
			pt := geom.Pt(
				ceilGrid(inner.X0)+snap(int64(rng.Intn(int(inner.W()+1)))),
				ceilGrid(inner.Y0)+snap(int64(rng.Intn(int(inner.H()+1)))),
			)
			if clearOfChipPads(d, chip, pt, minSep) {
				d.IOPads = append(d.IOPads, design.IOPad{ID: *padID, Chip: chip, Center: pt, HalfW: qaPadHalfW})
				*padID++
				break
			}
		}
	}
}

// placeBumps drops a small bump grid into the fan-out region below the
// chips, at the minimum legal bump pitch.
func placeBumps(d *design.Design, rng *rand.Rand, n int) {
	minPitch := ceilGrid(qaBumpW + d.Rules.Spacing)
	y := snap(d.Outline.Y1 - qaMargin/2)
	x := ceilGrid(d.Outline.X0 + qaMargin/2)
	id := 0
	for i := 0; id < n; i++ {
		c := geom.Pt(x+int64(i)*minPitch, y)
		if c.X+qaBumpW/2 > d.Outline.X1-design.Grid {
			break
		}
		d.BumpPads = append(d.BumpPads, design.BumpPad{ID: id, Center: c, W: qaBumpW})
		id++
	}
}

// placeClutter drops one rectangular obstacle into the fan-out region,
// clear of chips (with routing headroom), bumps and other obstacles.
func placeClutter(d *design.Design, rng *rand.Rand) {
	layer := rng.Intn(d.WireLayers)
	s := d.Rules.Spacing
	for try := 0; try < 60; try++ {
		w := int64(36 + design.Grid*rng.Intn(5))
		h := int64(36 + design.Grid*rng.Intn(5))
		x := ceilGrid(d.Outline.X0 + design.Grid + int64(rng.Intn(int(d.Outline.W()-w-2*design.Grid))))
		y := ceilGrid(d.Outline.Y0 + design.Grid + int64(rng.Intn(int(d.Outline.H()-h-2*design.Grid))))
		box := geom.RectWH(x, y, w, h)
		if !d.Outline.ContainsRect(box.Expand(design.Grid)) {
			continue
		}
		ok := true
		for _, c := range d.Chips {
			if c.Box.Expand(3 * design.Grid).Intersects(box) {
				ok = false
				break
			}
		}
		if layer == d.WireLayers-1 {
			for _, b := range d.BumpPads {
				if b.Oct().BBox().Expand(s + 2*design.Grid).Intersects(box) {
					ok = false
					break
				}
			}
		}
		for _, o := range d.Obstacles {
			if o.Layer == layer && o.Box.Expand(s+2*design.Grid).Intersects(box) {
				ok = false
				break
			}
		}
		if ok {
			d.Obstacles = append(d.Obstacles, design.Obstacle{Layer: layer, Box: box})
			return
		}
	}
}

// pairQAPads builds pre-assigned nets: inter-chip pairs when two chips
// exist (plus some intra-chip), chip-to-board pairs onto free bump pads.
func pairQAPads(d *design.Design, rng *rand.Rand) {
	perm := rng.Perm(len(d.IOPads))
	usedBump := 0
	netID := 0
	for i := 0; i+1 < len(perm); i += 2 {
		a, b := perm[i], perm[i+1]
		// A slice of nets goes to the board instead of to the paired pad.
		if usedBump < len(d.BumpPads) && rng.Intn(4) == 0 {
			d.Nets = append(d.Nets, design.Net{
				ID: netID,
				P1: design.PadRef{Kind: design.IOKind, Index: a},
				P2: design.PadRef{Kind: design.BumpKind, Index: usedBump},
			})
			netID++
			usedBump++
			// The displaced partner pad stays unpaired this round.
			continue
		}
		d.Nets = append(d.Nets, design.Net{
			ID: netID,
			P1: design.PadRef{Kind: design.IOKind, Index: a},
			P2: design.PadRef{Kind: design.IOKind, Index: b},
		})
		netID++
	}
}
