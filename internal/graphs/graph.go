// Package graphs provides the graph algorithms the router builds on: a
// compact weighted undirected graph, Prim's minimum spanning tree, tree
// path extraction, and a generic A* search over caller-supplied neighbor
// expansion (the routing graph changes after every routed net, so A* must
// not own the graph representation).
package graphs

import "sort"

// Edge is a weighted undirected edge between vertices U and V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph on vertices 0..N−1.
type Graph struct {
	N   int
	adj [][]halfEdge
}

type halfEdge struct {
	to int
	w  float64
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, adj: make([][]halfEdge, n)}
}

// AddEdge inserts an undirected edge of weight w between u and v.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.adj[u] = append(g.adj[u], halfEdge{v, w})
	g.adj[v] = append(g.adj[v], halfEdge{u, w})
}

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors calls fn for every edge incident to u.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	for _, e := range g.adj[u] {
		fn(e.to, e.w)
	}
}

// Edges returns every undirected edge once (u < v), sorted by (U, V) for
// determinism.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.to {
				out = append(out, Edge{u, e.to, e.w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Tree is an undirected tree (or forest) on the same vertex set as the
// graph it was derived from.
type Tree struct {
	N      int
	Parent []int // parent in a rooted orientation, −1 at roots
	adj    [][]halfEdge
	Edges  []Edge
}

// PrimMST computes a minimum spanning tree (a forest when the graph is
// disconnected) using Prim's algorithm with a binary heap. Deterministic
// for equal weights by vertex order.
func PrimMST(g *Graph) *Tree {
	t := &Tree{N: g.N, Parent: make([]int, g.N), adj: make([][]halfEdge, g.N)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	inTree := make([]bool, g.N)
	best := make([]float64, g.N)
	bestFrom := make([]int, g.N)
	const inf = 1e300
	for i := range best {
		best[i] = inf
		bestFrom[i] = -1
	}
	h := &floatHeap{}
	for root := 0; root < g.N; root++ {
		if inTree[root] {
			continue
		}
		best[root] = 0
		h.push(0, root)
		for h.len() > 0 {
			_, u := h.pop()
			if inTree[u] {
				continue
			}
			inTree[u] = true
			if p := bestFrom[u]; p >= 0 {
				t.Parent[u] = p
				w := best[u]
				t.adj[u] = append(t.adj[u], halfEdge{p, w})
				t.adj[p] = append(t.adj[p], halfEdge{u, w})
				a, b := p, u
				if a > b {
					a, b = b, a
				}
				t.Edges = append(t.Edges, Edge{a, b, w})
			}
			g.Neighbors(u, func(v int, w float64) {
				if !inTree[v] && w < best[v] {
					best[v] = w
					bestFrom[v] = u
					h.push(w, v)
				}
			})
		}
	}
	return t
}

// Path returns the unique tree path from u to v inclusive, or nil when u
// and v are in different components.
func (t *Tree) Path(u, v int) []int {
	if u == v {
		return []int{u}
	}
	// BFS from u to v restricted to tree edges.
	prev := make([]int, t.N)
	for i := range prev {
		prev[i] = -2
	}
	prev[u] = -1
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			break
		}
		for _, e := range t.adj[x] {
			if prev[e.to] == -2 {
				prev[e.to] = x
				queue = append(queue, e.to)
			}
		}
	}
	if prev[v] == -2 {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = prev[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Adj calls fn for every tree edge incident to u.
func (t *Tree) Adj(u int, fn func(v int, w float64)) {
	for _, e := range t.adj[u] {
		fn(e.to, e.w)
	}
}

// PathLen returns the total weight along the tree path from u to v, or −1
// when disconnected.
func (t *Tree) PathLen(u, v int) float64 {
	p := t.Path(u, v)
	if p == nil {
		return -1
	}
	total := 0.0
	for i := 0; i+1 < len(p); i++ {
		for _, e := range t.adj[p[i]] {
			if e.to == p[i+1] {
				total += e.w
				break
			}
		}
	}
	return total
}

// floatHeap is a minimal binary min-heap on (priority, id) pairs.
type floatHeap struct {
	pri []float64
	id  []int
}

func (h *floatHeap) len() int { return len(h.pri) }

func (h *floatHeap) push(p float64, id int) {
	h.pri = append(h.pri, p)
	h.id = append(h.id, id)
	i := len(h.pri) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.pri[parent] <= h.pri[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *floatHeap) pop() (float64, int) {
	p, id := h.pri[0], h.id[0]
	n := len(h.pri) - 1
	h.swap(0, n)
	h.pri = h.pri[:n]
	h.id = h.id[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.pri[l] < h.pri[small] {
			small = l
		}
		if r < n && h.pri[r] < h.pri[small] {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
	return p, id
}

func (h *floatHeap) swap(i, j int) {
	h.pri[i], h.pri[j] = h.pri[j], h.pri[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}
