package geom

import "math"

// ConvexPoly is a convex polygon with vertices in counter-clockwise order.
// A polygon with one vertex is a point; with two, a segment. It is the
// common currency for spacing (DRC) computations between heterogeneous
// shapes: pads, vias, obstacles, and width-expanded wire segments.
type ConvexPoly []PointF

// PolyFromRect converts a rectangle.
func PolyFromRect(r Rect) ConvexPoly {
	if r.Empty() {
		return nil
	}
	c := r.Corners()
	return ConvexPoly{c[0].F(), c[1].F(), c[2].F(), c[3].F()}
}

// PolyFromSegment returns the convex outline of an octilinear wire segment
// with the given total width: the Minkowski sum of the segment with a
// square (for H/V wires) or a 45°-rotated square (for diagonal wires) of
// half-diagonal halfW, which matches manufactured X-architecture wire
// outlines with flat caps.
func PolyFromSegment(s Segment, halfW float64) ConvexPoly {
	a, b := s.A.F(), s.B.F()
	o := s.Orient()
	switch o {
	case OrientH:
		if a.X > b.X {
			a, b = b, a
		}
		return ConvexPoly{
			{a.X, a.Y - halfW}, {b.X, b.Y - halfW},
			{b.X, b.Y + halfW}, {a.X, a.Y + halfW},
		}
	case OrientV:
		if a.Y > b.Y {
			a, b = b, a
		}
		return ConvexPoly{
			{a.X + halfW, a.Y}, {b.X + halfW, b.Y},
			{b.X - halfW, b.Y}, {a.X - halfW, a.Y},
		}
	case OrientD45, OrientD135:
		// Perpendicular offset of halfW for a diagonal: (±h/√2, ∓h/√2).
		h := halfW / Sqrt2
		var n PointF
		if o == OrientD45 {
			n = PointF{h, -h}
		} else {
			n = PointF{h, h}
		}
		return ensureCCW(ConvexPoly{
			a.Sub(n), b.Sub(n), b.Add(n), a.Add(n),
		})
	default:
		if s.Degenerate() {
			// A point expanded to a square.
			return ConvexPoly{
				{a.X - halfW, a.Y - halfW}, {a.X + halfW, a.Y - halfW},
				{a.X + halfW, a.Y + halfW}, {a.X - halfW, a.Y + halfW},
			}
		}
		// Non-octilinear fallback: rectangle around the segment direction.
		d := b.Sub(a)
		l := math.Hypot(d.X, d.Y)
		n := PointF{-d.Y / l * halfW, d.X / l * halfW}
		return ensureCCW(ConvexPoly{a.Sub(n), b.Sub(n), b.Add(n), a.Add(n)})
	}
}

// ensureCCW reverses the vertex order when the polygon's signed area is
// negative (clockwise winding).
func ensureCCW(p ConvexPoly) ConvexPoly {
	sum := 0.0
	for i := range p {
		j := (i + 1) % len(p)
		sum += p[i].X*p[j].Y - p[j].X*p[i].Y
	}
	if sum < 0 {
		for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
			p[i], p[j] = p[j], p[i]
		}
	}
	return p
}

// BBoxF returns the float bounding box of the polygon as (x0,y0,x1,y1).
func (p ConvexPoly) BBoxF() (x0, y0, x1, y1 float64) {
	if len(p) == 0 {
		return 0, 0, -1, -1
	}
	x0, y0 = p[0].X, p[0].Y
	x1, y1 = x0, y0
	for _, v := range p[1:] {
		x0 = math.Min(x0, v.X)
		y0 = math.Min(y0, v.Y)
		x1 = math.Max(x1, v.X)
		y1 = math.Max(y1, v.Y)
	}
	return
}

// Overlaps reports whether two convex polygons share interior area, by the
// separating-axis theorem over the edge normals of both polygons.
func (p ConvexPoly) Overlaps(q ConvexPoly) bool {
	if len(p) == 0 || len(q) == 0 {
		return false
	}
	return !hasSeparatingAxis(p, q) && !hasSeparatingAxis(q, p)
}

func hasSeparatingAxis(p, q ConvexPoly) bool {
	n := len(p)
	for i := 0; i < n; i++ {
		a := p[i]
		b := p[(i+1)%n]
		// Outward normal of CCW edge a→b is (dy, −dx) rotated: (b−a) ⊥.
		nx := b.Y - a.Y
		ny := a.X - b.X
		if nx == 0 && ny == 0 {
			continue
		}
		pMin, pMax := project(p, nx, ny)
		qMin, qMax := project(q, nx, ny)
		const eps = 1e-9
		if pMax <= qMin+eps || qMax <= pMin+eps {
			return true
		}
	}
	if n == 1 {
		// A point has no edges; check containment via q's axes only
		// (handled by the caller's symmetric call).
		return false
	}
	return false
}

func project(p ConvexPoly, nx, ny float64) (lo, hi float64) {
	lo = math.Inf(1)
	hi = math.Inf(-1)
	for _, v := range p {
		d := v.X*nx + v.Y*ny
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return
}

// Dist returns the minimum Euclidean distance between the two convex
// polygons; 0 when they overlap or touch.
func (p ConvexPoly) Dist(q ConvexPoly) float64 {
	if len(p) == 0 || len(q) == 0 {
		return math.Inf(1)
	}
	if p.Overlaps(q) {
		return 0
	}
	best := math.Inf(1)
	np, nq := len(p), len(q)
	for i := 0; i < np; i++ {
		a := p[i]
		b := p[(i+1)%np]
		for j := 0; j < nq; j++ {
			c := q[j]
			d := q[(j+1)%nq]
			best = math.Min(best, segSegDistF(a, b, c, d))
		}
	}
	return best
}

func segSegDistF(a, b, c, d PointF) float64 {
	v := math.Min(pointSegDistF(a, c, d), pointSegDistF(b, c, d))
	v = math.Min(v, pointSegDistF(c, a, b))
	v = math.Min(v, pointSegDistF(d, a, b))
	return v
}

// ContainsF reports whether point r lies inside or on the polygon.
func (p ConvexPoly) ContainsF(r PointF) bool {
	n := len(p)
	if n == 0 {
		return false
	}
	if n == 1 {
		return EuclidF(p[0], r) < 1e-9
	}
	for i := 0; i < n; i++ {
		a := p[i]
		b := p[(i+1)%n]
		cr := (b.X-a.X)*(r.Y-a.Y) - (b.Y-a.Y)*(r.X-a.X)
		if cr < -1e-9 {
			return false
		}
	}
	return true
}
