package lp

import "math"

// Numerical tolerances for the simplex method.
const (
	epsPivot = 1e-9  // minimum acceptable pivot magnitude
	epsCost  = 1e-9  // reduced-cost optimality tolerance
	epsFeas  = 1e-7  // feasibility tolerance on phase-1 objective
	epsRatio = 1e-10 // slack below which a basic value counts as zero
)

// Solve converts the problem to standard form and runs a two-phase dense
// primal simplex. Only the returned Solution is mutated; the Problem may be
// reused (e.g. with extra constraints added) afterwards.
func (p *Problem) Solve() Solution {
	if err := p.Validate(); err != nil {
		return Solution{Status: Infeasible}
	}
	st := newStandard(p)
	return st.solve(p)
}

// standard is a standard-form LP: min cᵀz s.t. Az = b, z ≥ 0, built from a
// Problem by variable shifting/splitting and slack insertion.
type standard struct {
	m, n     int         // rows, structural+slack columns (artificials appended later)
	a        [][]float64 // m × n constraint matrix
	b        []float64   // m, kept ≥ 0 by row scaling
	c        []float64   // n objective (phase 2)
	shift    []float64   // per original var: additive shift (value = z − shift contributions)
	pos      []int       // per original var: standard column of its positive part
	neg      []int       // per original var: standard column of negative part, −1 if none
	maxIters int
}

// newStandard lowers a Problem into standard form:
//
//   - x with finite lo:        x = lo + z,  z ≥ 0 (finite hi adds row z ≤ hi−lo)
//   - x with only finite hi:   x = hi − z,  z ≥ 0, coefficient negated
//   - free x:                  x = z⁺ − z⁻
//   - row ≤ : + slack; row ≥ : − surplus; both then b normalized ≥ 0.
func newStandard(p *Problem) *standard {
	nv := p.NumVars()
	st := &standard{
		shift: make([]float64, nv),
		pos:   make([]int, nv),
		neg:   make([]int, nv),
	}
	ncols := 0
	// sign[v] is +1 when x = shift + z, −1 when x = shift − z.
	sign := make([]float64, nv)
	type ubRow struct {
		col int
		ub  float64
	}
	var ubRows []ubRow
	for v := 0; v < nv; v++ {
		lo, hi := p.lo[v], p.hi[v]
		switch {
		case !math.IsInf(lo, -1):
			st.pos[v] = ncols
			st.neg[v] = -1
			st.shift[v] = lo
			sign[v] = 1
			if !math.IsInf(hi, 1) {
				ubRows = append(ubRows, ubRow{ncols, hi - lo})
			}
			ncols++
		case !math.IsInf(hi, 1):
			st.pos[v] = ncols
			st.neg[v] = -1
			st.shift[v] = hi
			sign[v] = -1
			ncols++
		default:
			st.pos[v] = ncols
			st.neg[v] = ncols + 1
			sign[v] = 1
			ncols += 2
		}
	}

	nrows := len(p.cons) + len(ubRows)
	// Slack/surplus columns: one per non-equality row.
	nslack := 0
	for _, c := range p.cons {
		if c.op != EQ {
			nslack++
		}
	}
	nslack += len(ubRows)

	st.m = nrows
	st.n = ncols + nslack
	st.a = make([][]float64, nrows)
	for i := range st.a {
		st.a[i] = make([]float64, st.n)
	}
	st.b = make([]float64, nrows)
	st.c = make([]float64, st.n)

	// Objective in standard columns.
	for v := 0; v < nv; v++ {
		coef := p.obj[v]
		st.c[st.pos[v]] += coef * sign[v]
		if st.neg[v] >= 0 {
			st.c[st.neg[v]] -= coef
		}
	}

	slackCol := ncols
	for i, con := range p.cons {
		rhs := con.rhs
		for _, t := range con.terms {
			v := int(t.Var)
			st.a[i][st.pos[v]] += t.Coef * sign[v]
			if st.neg[v] >= 0 {
				st.a[i][st.neg[v]] -= t.Coef
			}
			rhs -= t.Coef * st.shift[v]
		}
		switch con.op {
		case LE:
			st.a[i][slackCol] = 1
			slackCol++
		case GE:
			st.a[i][slackCol] = -1
			slackCol++
		}
		st.b[i] = rhs
	}
	for k, ub := range ubRows {
		i := len(p.cons) + k
		st.a[i][ub.col] = 1
		st.a[i][slackCol] = 1
		slackCol++
		st.b[i] = ub.ub
	}

	// Normalize rows to b ≥ 0.
	for i := range st.b {
		if st.b[i] < 0 {
			st.b[i] = -st.b[i]
			for j := range st.a[i] {
				st.a[i][j] = -st.a[i][j]
			}
		}
	}

	st.maxIters = p.MaxIters
	if st.maxIters == 0 {
		st.maxIters = 200 * (st.m + st.n + 10)
	}
	return st
}

// solve runs phase 1 (artificial minimization) then phase 2 on the tableau
// and maps the standard solution back to original variables.
func (st *standard) solve(p *Problem) Solution {
	m, n := st.m, st.n
	total := n + m // + artificial columns
	// Tableau: m rows of [A | I_art | b], plus objective row appended
	// logically via cost vectors.
	tab := make([][]float64, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, total+1)
		copy(tab[i], st.a[i])
		tab[i][n+i] = 1
		tab[i][total] = st.b[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, total)
	for j := n; j < total; j++ {
		phase1[j] = 1
	}
	status, iters := runSimplex(tab, basis, phase1, total, st.maxIters, p.Check)
	if status == IterLimit || status == Aborted {
		return Solution{Status: status}
	}
	// Phase-1 objective value.
	p1 := 0.0
	for i, bi := range basis {
		if bi >= n {
			p1 += tab[i][total]
		}
	}
	if p1 > epsFeas {
		return Solution{Status: Infeasible}
	}
	// Drive remaining (degenerate) artificials out of the basis.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(tab[i][j]) > epsPivot {
				pivot(tab, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it cannot interfere.
			for j := 0; j <= total; j++ {
				if j != basis[i] {
					tab[i][j] = 0
				}
			}
			tab[i][total] = 0
		}
	}

	// Phase 2: original objective; artificials barred from entering by
	// giving them +Inf cost sentinel handled in runSimplex via allowed width.
	phase2 := make([]float64, total)
	copy(phase2, st.c)
	budget := st.maxIters - iters
	if budget < 1000 {
		budget = 1000
	}
	status, it2 := runSimplex(tab, basis, phase2, n, budget, p.Check)
	if status == IterLimit || status == Aborted {
		return Solution{Status: status}
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}
	}

	_ = it2
	// Extract standard solution.
	z := make([]float64, total)
	for i, bi := range basis {
		z[bi] = tab[i][total]
	}
	// Map back to original variables.
	nv := p.NumVars()
	x := make([]float64, nv)
	obj := 0.0
	for v := 0; v < nv; v++ {
		val := z[st.pos[v]]
		if st.neg[v] >= 0 {
			val -= z[st.neg[v]]
		} else if !math.IsInf(p.lo[v], -1) {
			// x = lo + z
		} else {
			// x = hi − z
			val = -val
		}
		val += st.shift[v]
		if math.IsNaN(val) || math.IsInf(val, 0) {
			// Numerical breakdown (tiny pivots can amplify rounding into
			// Inf−Inf): report failure rather than a poisoned solution.
			return Solution{Status: IterLimit}
		}
		x[v] = val
		obj += p.obj[v] * val
	}
	return Solution{Status: Optimal, X: x, Obj: obj}
}

// runSimplex performs primal simplex pivots on tab (rows m, rhs in last
// column) minimizing cost over columns [0, width). It returns Optimal when
// no improving column remains, Unbounded when an improving column has no
// positive entry, or IterLimit. iters reports pivots performed.
func runSimplex(tab [][]float64, basis []int, cost []float64, width, maxIters int, check func() error) (Status, int) {
	m := len(tab)
	if m == 0 {
		return Optimal, 0
	}
	total := len(tab[0]) - 1
	// Reduced costs maintained in a separate row: r = cost − cBᵀ B⁻¹ A,
	// realized by starting from cost and pricing out each basic column.
	r := make([]float64, total+1)
	copy(r, cost)
	for i, bi := range basis {
		cb := cost[bi]
		if cb == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			r[j] -= cb * tab[i][j]
		}
	}

	iters := 0
	// Switch to Bland's rule after a stall to guarantee termination.
	blandAfter := 5 * (m + width + 10)
	stall := 0
	lastObj := math.Inf(1)
	for {
		// Entering column.
		enter := -1
		if stall < blandAfter {
			best := -epsCost
			for j := 0; j < width; j++ {
				if r[j] < best {
					best = r[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < width; j++ {
				if r[j] < -epsCost {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return Optimal, iters
		}
		if iters >= maxIters {
			return IterLimit, iters
		}
		if check != nil && iters%checkPollPeriod == 0 && check() != nil {
			return Aborted, iters
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			aij := tab[i][enter]
			if aij <= epsPivot {
				continue
			}
			ratio := tab[i][total] / aij
			if ratio < bestRatio-epsRatio ||
				(ratio < bestRatio+epsRatio && (leave == -1 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave == -1 {
			return Unbounded, iters
		}
		pivotWithCost(tab, basis, r, leave, enter)
		iters++
		// Track stalling for the Bland switch.
		obj := -r[total]
		if obj < lastObj-1e-12 {
			lastObj = obj
			stall = 0
		} else {
			stall++
		}
	}
}

// pivot performs a Gauss-Jordan pivot on tab[row][col] and updates basis.
func pivot(tab [][]float64, basis []int, row, col int) {
	total := len(tab[0]) - 1
	pv := tab[row][col]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		tab[row][j] *= inv
	}
	tab[row][col] = 1
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
		tab[i][col] = 0
	}
	basis[row] = col
}

// pivotWithCost pivots and also updates the reduced-cost row r.
func pivotWithCost(tab [][]float64, basis []int, r []float64, row, col int) {
	pivot(tab, basis, row, col)
	total := len(tab[0]) - 1
	f := r[col]
	if f != 0 {
		for j := 0; j <= total; j++ {
			r[j] -= f * tab[row][j]
		}
		r[col] = 0
	}
}
