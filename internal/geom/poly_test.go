package geom

import (
	"math"
	"testing"
)

func TestPolyFromRectOverlap(t *testing.T) {
	a := PolyFromRect(RectWH(0, 0, 10, 10))
	b := PolyFromRect(RectWH(5, 5, 10, 10))
	c := PolyFromRect(RectWH(20, 20, 5, 5))
	if !a.Overlaps(b) {
		t.Error("overlapping rect polys")
	}
	if a.Overlaps(c) {
		t.Error("disjoint rect polys")
	}
	// Touching edge-to-edge: no interior overlap.
	d := PolyFromRect(RectWH(10, 0, 5, 10))
	if a.Overlaps(d) {
		t.Error("touching polys should not overlap")
	}
	if got := a.Dist(d); got != 0 {
		t.Errorf("touching polys distance = %v, want 0", got)
	}
}

func TestPolyDist(t *testing.T) {
	a := PolyFromRect(RectWH(0, 0, 10, 10))
	b := PolyFromRect(RectWH(13, 0, 5, 10))
	if got := a.Dist(b); math.Abs(got-3) > 1e-9 {
		t.Errorf("dist = %v, want 3", got)
	}
	c := PolyFromRect(RectWH(13, 14, 4, 4))
	if got := a.Dist(c); math.Abs(got-5) > 1e-9 {
		t.Errorf("corner dist = %v, want 5", got)
	}
}

func TestPolyFromSegmentH(t *testing.T) {
	p := PolyFromSegment(Seg(Pt(0, 0), Pt(10, 0)), 2)
	if len(p) != 4 {
		t.Fatalf("want quad, got %d vertices", len(p))
	}
	if !p.ContainsF(PtF(5, 1.5)) || !p.ContainsF(PtF(0, -2)) {
		t.Error("offset outline containment")
	}
	if p.ContainsF(PtF(5, 2.5)) {
		t.Error("point outside width")
	}
}

func TestPolyFromSegmentDiagonal(t *testing.T) {
	p := PolyFromSegment(Seg(Pt(0, 0), Pt(10, 10)), 2)
	// Perpendicular distance from the centerline must be respected.
	if !p.ContainsF(PtF(5, 5)) {
		t.Error("centerline point")
	}
	if !p.ContainsF(PtF(6, 4.2)) { // perp distance ≈ 1.27 < 2
		t.Error("point within perpendicular width")
	}
	if p.ContainsF(PtF(8, 4)) { // perp distance ≈ 2.83 > 2
		t.Error("point beyond perpendicular width")
	}
}

func TestWireSpacingViaPolys(t *testing.T) {
	// Two parallel horizontal wires, width 2 (half-width 1), centers 5 apart:
	// clear spacing must be 3.
	w1 := PolyFromSegment(Seg(Pt(0, 0), Pt(100, 0)), 1)
	w2 := PolyFromSegment(Seg(Pt(0, 5), Pt(100, 5)), 1)
	if got := w1.Dist(w2); math.Abs(got-3) > 1e-9 {
		t.Errorf("wire spacing = %v, want 3", got)
	}
	// Crossing wires: zero.
	w3 := PolyFromSegment(Seg(Pt(50, -10), Pt(50, 10)), 1)
	if got := w1.Dist(w3); got != 0 {
		t.Errorf("crossing wires distance = %v, want 0", got)
	}
}

func TestOctPolyDistance(t *testing.T) {
	via := RegularOct(Pt(0, 0), 20).Poly()
	wire := PolyFromSegment(Seg(Pt(30, -50), Pt(30, 50)), 2)
	// Octagon east extreme is at x=10, wire edge at x=28: distance 18.
	if got := via.Dist(wire); math.Abs(got-18) > 1e-9 {
		t.Errorf("via-wire distance = %v, want 18", got)
	}
}

func TestPolyDegenerate(t *testing.T) {
	pt := ConvexPoly{PtF(5, 5)}
	r := PolyFromRect(RectWH(0, 0, 10, 10))
	if got := pt.Dist(r); got != 0 {
		t.Errorf("point inside rect distance = %v", got)
	}
	far := ConvexPoly{PtF(20, 5)}
	if got := far.Dist(r); math.Abs(got-10) > 1e-9 {
		t.Errorf("point outside rect distance = %v, want 10", got)
	}
	if len(PolyFromRect(Rect{5, 5, 1, 1})) != 0 {
		t.Error("empty rect should give empty poly")
	}
}
