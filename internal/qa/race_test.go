//go:build race

package qa

// raceEnabled reports whether the race detector is compiled in; the big
// sweeps shrink under it (routing runs ~10× slower with -race).
const raceEnabled = true
