package qa

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"rdlroute/internal/baseline"
	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/layout"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// Oracle tolerances. Translation is an exact symmetry of the routing
// problem (the lattice anchors at the outline), so it gets the float
// round-off tolerance only; mirroring and net permutation change
// search-order tie-breaking, so their gates allow bounded drift.
const (
	wlRelTol = 1e-9 // reported vs. recomputed wirelength, translation gate

	// Metamorphic drift bounds for mirror / permute: routed-net count may
	// move by at most metaRoutedSlack nets, and total wirelength by at most
	// metaWLRelTol relative plus metaWLAbsPerNet per routed net. The
	// additive term matters on small designs, where tie-break flips can
	// reroute one net through a detour worth tens of percent of a tiny
	// total while the layout stays perfectly legal; eight pitches per net
	// bounds that without letting systematic degradation through.
	metaRoutedSlack = 1
	metaWLRelTol    = 0.08
	metaWLAbsPerNet = 8 * design.Grid

	// diffRoutedSlack bounds how many nets the concurrent flow may trail
	// Lin-ext by after the escalation ladder. Strict dominance holds on the
	// paper's benchmark suite (the bench regression tests pin it), but on
	// adversarial near-minimum-spacing instances sequential commit order can
	// strand one net that a different order completes, and rip-up cannot
	// always recover it: a region contested by two or more nets collapses to
	// a hard claim in the occupancy model, so the ghost search cannot
	// attribute the blockage to rippable victims. On single-wire-layer
	// designs the flow is further handicapped: its tile graph is built
	// around via-based layer changes, which such designs cannot use, while
	// Lin-ext's plain sequential order is unaffected. An 800-seed sweep
	// shows a deficit on ~2% of seeds, never above one on multi-layer
	// designs and never above two on single-layer ones (deficit histogram
	// 1:12, 2:4, every deficit-2 case single-layer); anything beyond that
	// fails the gate.
	diffRoutedSlack           = 1
	diffRoutedSlackSingleWire = 2

	maxDRCDetails = 5 // violations quoted per failing design
)

// Suite selects which oracle families CheckDesign runs beyond the core
// route-both-flows + DRC + connectivity + wirelength gates.
type Suite struct {
	Codec       bool // Encode→Decode→Route bit-identical to direct routing
	Cancel      bool // cancellation at a random point leaves no shared state
	Metamorphic bool // translate / permute / mirror gates
}

// FullSuite enables every oracle family.
func FullSuite() Suite { return Suite{Codec: true, Cancel: true, Metamorphic: true} }

// Tracer, when non-nil, is attached to every routing run the harness
// performs (rdlverify -random -metrics feeds a metrics bridge through
// it). The routing contract makes any tracer purely observational, and
// TestMetricsBridgeDeterminism enforces it, so the report is identical
// with or without one.
var Tracer obs.Tracer

// Portfolio, when positive, sets Options.OrderPortfolio on every routing
// run the harness performs (rdlverify -portfolio feeds it), so the whole
// oracle suite — codec round-trip, cancellation, metamorphic gates —
// exercises the racing scheduler instead of a single fixed ordering.
var Portfolio int

// flowOptions is the five-stage configuration the harness routes with:
// the paper defaults plus the rip-up-and-reroute extension, which the
// differential gate needs — on adversarial near-minimum-spacing designs
// the plain five-stage ordering occasionally strands a net that Lin-ext's
// simpler ordering completes, and rip-up is the flow's own answer to
// ordering artifacts.
func flowOptions() router.Options {
	opts := router.DefaultOptions()
	opts.RipUpRounds = 3
	opts.Tracer = Tracer
	opts.OrderPortfolio = Portfolio
	return opts
}

// Stats counts what one CheckDesign call routed.
type CheckStats struct {
	Nets        int
	FlowRouted  int
	BaseRouted  int
	FlowRuntime time.Duration
}

// relDiff is |a−b| relative to max(|a|,|b|,1).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / den
}

// CheckDesign routes d through the concurrent five-stage flow and the
// Lin-ext baseline and asserts the oracle suite. The returned failures
// are empty iff every gate held. seed only labels failure details and
// derives the metamorphic/cancel randomness, so a failing seed replays
// deterministically.
func CheckDesign(d *design.Design, seed int64, suite Suite) (CheckStats, []Failure) {
	var fails []Failure
	failf := func(oracle, format string, args ...any) {
		fails = append(fails, Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}
	st := CheckStats{Nets: len(d.Nets)}
	rng := rand.New(rand.NewSource(seed ^ 0x1e3779b97f4a7c15))

	start := time.Now()
	res, fp, err := router.RouteFingerprint(context.Background(), d, flowOptions())
	st.FlowRuntime = time.Since(start)
	if err != nil {
		failf("flow-error", "Route: %v", err)
		return st, fails
	}
	st.FlowRouted = res.RoutedNets
	checkResultOracles(d, "flow", res.Layout, res.Wirelength, res.RoutedNets, failf)

	base, err := baseline.Route(d, baseline.DefaultOptions())
	if err != nil {
		failf("linext-error", "RouteLinExt: %v", err)
		return st, fails
	}
	st.BaseRouted = base.RoutedNets
	checkResultOracles(d, "linext", base.Layout, base.Wirelength, base.RoutedNets, failf)

	// Differential gate: the paper's flow should not route fewer nets than
	// the baseline it claims to beat. Sequential ordering is a heuristic,
	// so before declaring failure the flow gets its full toolbox — the
	// escalation ladder re-routes with every other named policy of the
	// router's ordering registry (still with rip-up), the same list the
	// production portfolio races; a deficit that survives every
	// configuration may be at most diffRoutedSlack (see the constant for
	// why strict dominance is false on adversarial instances).
	if res.RoutedNets < base.RoutedNets {
		best := res.RoutedNets
		for policy := 1; policy < router.NamedPolicies; policy++ {
			opts := router.WithOrderPolicy(flowOptions(), policy)
			if r2, err := router.Route(d, opts); err == nil && r2.RoutedNets > best {
				best = r2.RoutedNets
				checkResultOracles(d, "flow-order-"+router.PortfolioPolicyName(policy), r2.Layout, r2.Wirelength, r2.RoutedNets, failf)
			}
			if best >= base.RoutedNets {
				break
			}
		}
		slack := diffRoutedSlack
		if d.WireLayers <= 1 {
			slack = diffRoutedSlackSingleWire
		}
		if best < base.RoutedNets-slack {
			failf("diff-routability", "flow routed %d < lin-ext %d − slack %d of %d nets (after order escalation)",
				best, base.RoutedNets, slack, len(d.Nets))
		}
	}

	if suite.Codec {
		checkCodecRoundTrip(d, res, failf)
	}
	if suite.Cancel {
		checkCancellation(d, rng, st.FlowRuntime, res, fp, failf)
	}
	if suite.Metamorphic {
		checkMetamorphic(d, rng, res, failf)
	}
	return st, fails
}

// checkResultOracles asserts the per-layout gates shared by both flows:
// DRC-clean, every routed net connected, and the reported wirelength
// matching the recomputed layout geometry.
func checkResultOracles(d *design.Design, tag string, lay *layout.Layout, wl float64, routed int, failf func(string, string, ...any)) {
	if vs := drc.Check(lay); len(vs) != 0 {
		detail := fmt.Sprintf("%d violations", len(vs))
		for i, v := range vs {
			if i >= maxDRCDetails {
				detail += fmt.Sprintf("; and %d more", len(vs)-maxDRCDetails)
				break
			}
			detail += "; " + v.String()
		}
		failf(tag+"-drc", "%s", detail)
	}
	for ni := range d.Nets {
		if lay.Routed(ni) && !lay.Connected(ni) {
			failf(tag+"-connectivity", "net %d marked routed but not connected", ni)
		}
	}
	if got := lay.RoutedCount(); got != routed {
		failf(tag+"-count", "reported %d routed nets, layout has %d", routed, got)
	}
	if recomputed := lay.Wirelength(); relDiff(wl, recomputed) > wlRelTol {
		failf(tag+"-wirelength", "reported %.6f, recomputed %.6f", wl, recomputed)
	}
}

// checkCodecRoundTrip asserts Encode→Decode→Route is indistinguishable
// from routing the original design: design encoding is byte-stable across
// a round-trip, and the result of routing the decoded design is
// bit-identical (runtime aside) to the direct result.
func checkCodecRoundTrip(d *design.Design, res *router.Result, failf func(string, string, ...any)) {
	var buf1 bytes.Buffer
	if err := codec.EncodeDesign(&buf1, d); err != nil {
		failf("codec-encode", "EncodeDesign: %v", err)
		return
	}
	d2, err := codec.DecodeDesign(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		failf("codec-decode", "DecodeDesign: %v", err)
		return
	}
	var buf2 bytes.Buffer
	if err := codec.EncodeDesign(&buf2, d2); err != nil {
		failf("codec-encode", "re-EncodeDesign: %v", err)
		return
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		failf("codec-stability", "Encode(Decode(Encode(d))) differs from Encode(d)")
		return
	}
	res2, err := router.Route(d2, flowOptions())
	if err != nil {
		failf("codec-route", "routing decoded design: %v", err)
		return
	}
	b1, err1 := encodeResultStable(res)
	b2, err2 := encodeResultStable(res2)
	if err1 != nil || err2 != nil {
		failf("codec-encode", "EncodeResult: %v / %v", err1, err2)
		return
	}
	if !bytes.Equal(b1, b2) {
		failf("codec-roundtrip", "routing the decoded design is not bit-identical to direct routing (result docs differ: %d vs %d bytes)", len(b1), len(b2))
	}
}

// encodeResultStable serializes a result with the runtime zeroed, so two
// runs of identical geometry compare byte-equal.
func encodeResultStable(res *router.Result) ([]byte, error) {
	stable := *res
	stable.Runtime = 0
	stable.Obs = nil
	var buf bytes.Buffer
	if err := codec.EncodeResult(&buf, &stable); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// checkCancellation aborts a run at a random point inside the flow's
// measured runtime, then re-routes and asserts the cancelled run left no
// state behind: the full run's lattice fingerprint and metrics must be
// unchanged.
func checkCancellation(d *design.Design, rng *rand.Rand, runtime time.Duration, res *router.Result, fp uint64, failf func(string, string, ...any)) {
	budget := time.Duration(float64(runtime) * (0.05 + 0.9*rng.Float64()))
	if budget <= 0 {
		budget = time.Microsecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	_, fpCancelled, err := router.RouteFingerprint(ctx, d, flowOptions())
	cancel()
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			failf("cancel-error", "cancelled run failed with a non-context error: %v", err)
			return
		}
	} else if fpCancelled != fp {
		// The deadline fired after the flow finished: it must have computed
		// the same lattice as the uncancelled run.
		failf("cancel-fingerprint", "run that beat its deadline reached fingerprint %x, want %x", fpCancelled, fp)
		return
	}
	res2, fp2, err := router.RouteFingerprint(context.Background(), d, flowOptions())
	if err != nil {
		failf("cancel-rerun", "re-route after cancellation: %v", err)
		return
	}
	if fp2 != fp {
		failf("cancel-fingerprint", "lattice fingerprint changed after a cancelled run: %x != %x (cancel budget %v)", fp2, fp, budget)
	}
	if res2.RoutedNets != res.RoutedNets || res2.Wirelength != res.Wirelength {
		failf("cancel-determinism", "metrics changed after a cancelled run: routed %d/%.3f, want %d/%.3f",
			res2.RoutedNets, res2.Wirelength, res.RoutedNets, res.Wirelength)
	}
}

// checkMetamorphic asserts the three design symmetries. Translation by
// non-negative offsets is an exact symmetry: the lattice anchors at the
// outline, so every stage sees identical relative geometry and the result
// must match to float round-off. (Offsets that push coordinates negative
// are excluded — Go's integer division truncates toward zero, so
// coordinate bucketing below zero flips heuristic tie-breaks; the routing
// stays legal but is no longer bit-comparable.) Mirroring and net
// permutation preserve the problem but not search-order tie-breaking, so
// they get drift bounds.
func checkMetamorphic(d *design.Design, rng *rand.Rand, res *router.Result, failf func(string, string, ...any)) {
	dx := int64(rng.Intn(64)) * design.Grid
	dy := int64(rng.Intn(64)) * design.Grid
	if td := Translate(d, dx, dy); td.Validate() != nil {
		failf("meta-translate", "translated design fails Validate")
	} else if tres, err := router.Route(td, flowOptions()); err != nil {
		failf("meta-translate", "routing translated design: %v", err)
	} else if tres.RoutedNets != res.RoutedNets || relDiff(tres.Wirelength, res.Wirelength) > wlRelTol {
		failf("meta-translate", "translate by (%d,%d): routed %d wl %.6f, want %d wl %.6f",
			dx, dy, tres.RoutedNets, tres.Wirelength, res.RoutedNets, res.Wirelength)
	}

	if md := MirrorX(d); md.Validate() != nil {
		failf("meta-mirror", "mirrored design fails Validate")
	} else if mres, err := router.Route(md, flowOptions()); err != nil {
		failf("meta-mirror", "routing mirrored design: %v", err)
	} else {
		checkMetaDrift("meta-mirror", mres.RoutedNets, mres.Wirelength, res, failf)
	}

	if pd := PermuteNets(d, rng); pd.Validate() != nil {
		failf("meta-permute", "permuted design fails Validate")
	} else if pres, err := router.Route(pd, flowOptions()); err != nil {
		failf("meta-permute", "routing permuted design: %v", err)
	} else {
		checkMetaDrift("meta-permute", pres.RoutedNets, pres.Wirelength, res, failf)
	}
}

// checkMetaDrift applies the mirror/permute drift bounds. Wirelength is
// only comparable when both runs routed the same nets count-wise; when
// counts differ within slack, the per-net average drifting is expected.
func checkMetaDrift(oracle string, routed int, wl float64, res *router.Result, failf func(string, string, ...any)) {
	if diff := routed - res.RoutedNets; diff > metaRoutedSlack || diff < -metaRoutedSlack {
		failf(oracle, "routed-net count drifted: %d, want %d ± %d", routed, res.RoutedNets, metaRoutedSlack)
		return
	}
	if routed != res.RoutedNets {
		return
	}
	tol := metaWLRelTol*math.Max(math.Abs(wl), math.Abs(res.Wirelength)) +
		float64(metaWLAbsPerNet)*float64(routed)
	if math.Abs(wl-res.Wirelength) > tol {
		failf(oracle, "wirelength drifted: %.3f, want %.3f ± %.3f", wl, res.Wirelength, tol)
	}
}
