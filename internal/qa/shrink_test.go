package qa

import (
	"testing"

	"rdlroute/internal/design"
)

// TestShrinkMinimizes: against a predicate that cares about a single net,
// the shrinker must reduce a multi-net design to exactly that net, prune
// the pads nothing references, and keep the reproducer valid. The
// predicate here is cheap on purpose — shrinking behavior, not routing,
// is under test.
func TestShrinkMinimizes(t *testing.T) {
	d := Generate(5)
	if len(d.Nets) < 4 {
		t.Fatalf("seed 5 generated only %d nets; pick a bigger seed", len(d.Nets))
	}
	// Identify the target net by its pad coordinates, not indices — the
	// shrinker renumbers pads when pruning, and a predicate keyed on
	// indices would (correctly) veto that pruning.
	center := func(c *design.Design, r design.PadRef) (int64, int64) {
		if r.Kind == design.IOKind {
			p := c.IOPads[r.Index].Center
			return p.X, p.Y
		}
		p := c.BumpPads[r.Index].Center
		return p.X, p.Y
	}
	target := d.Nets[len(d.Nets)/2]
	tx1, ty1 := center(d, target.P1)
	tx2, ty2 := center(d, target.P2)
	hasTarget := func(c *design.Design) bool {
		for _, n := range c.Nets {
			x1, y1 := center(c, n.P1)
			x2, y2 := center(c, n.P2)
			if x1 == tx1 && y1 == ty1 && x2 == tx2 && y2 == ty2 {
				return true
			}
		}
		return false
	}

	min := Shrink(d, hasTarget)
	if !hasTarget(min) {
		t.Fatal("shrunk design no longer fails the predicate")
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk design invalid: %v", err)
	}
	if len(min.Nets) != 1 {
		t.Errorf("shrunk to %d nets, want 1", len(min.Nets))
	}
	if got := len(min.IOPads) + len(min.BumpPads); got > 2 {
		t.Errorf("shrunk design keeps %d pads, want ≤ 2", got)
	}
	if len(min.Nets) == 1 && min.Nets[0].ID != 0 {
		t.Errorf("surviving net has ID %d, want 0", min.Nets[0].ID)
	}
}

// TestShrinkKeepsFailingDesign: when nothing can be removed (the
// predicate needs every net), Shrink must return a design that still
// fails, not an over-minimized one.
func TestShrinkKeepsFailingDesign(t *testing.T) {
	d := Generate(5)
	want := len(d.Nets)
	needAll := func(c *design.Design) bool { return len(c.Nets) >= want }
	min := Shrink(d, needAll)
	if !needAll(min) {
		t.Error("shrinker returned a design that no longer fails the predicate")
	}
}
