package lp_test

import (
	"testing"

	"rdlroute/internal/qa"
)

// FuzzSimplex drives the revised-vs-dense simplex differential oracle
// from fuzzed seeds: each seed draws a random LP in the shapes the layout
// optimizer emits, solves it with both independent implementations, and
// requires agreement on feasibility status, objectives within tolerance,
// and that each optimal solution satisfies its own constraints
// (Problem.CheckFeasible). Seed corpus: testdata/fuzz/FuzzSimplex.
func FuzzSimplex(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 12345} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		for _, fail := range qa.CheckLPAgreement(seed) {
			t.Errorf("lp seed %d: %s", seed, fail)
		}
	})
}
