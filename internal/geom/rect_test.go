package geom

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := RectWH(0, 0, 10, 5)
	if r.W() != 10 || r.H() != 5 || r.Area() != 50 {
		t.Errorf("W/H/Area = %d/%d/%d", r.W(), r.H(), r.Area())
	}
	if !r.Contains(Pt(10, 5)) || !r.Contains(Pt(0, 0)) {
		t.Error("boundary containment")
	}
	if r.Contains(Pt(11, 0)) {
		t.Error("outside containment")
	}
	if got := r.Center(); !got.Eq(Pt(5, 2)) {
		t.Errorf("Center = %v", got)
	}
	if RectOf(Pt(5, 7), Pt(1, 2)) != (Rect{1, 2, 5, 7}) {
		t.Error("RectOf normalization")
	}
}

func TestRectEmpty(t *testing.T) {
	e := Rect{5, 5, 1, 1}
	if !e.Empty() || e.Area() != 0 {
		t.Error("empty rect")
	}
	r := RectWH(0, 0, 4, 4)
	if e.Intersects(r) {
		t.Error("empty should intersect nothing")
	}
	if got := r.Union(e); got != r {
		t.Error("union with empty")
	}
	if got := e.Union(r); got != r {
		t.Error("empty union")
	}
}

func TestRectIntersectOverlap(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(10, 0, 5, 10) // touches a at x=10
	if !a.Intersects(b) {
		t.Error("touching rects must intersect")
	}
	if a.Overlaps(b) {
		t.Error("touching rects must not overlap")
	}
	c := RectWH(5, 5, 10, 10)
	if !a.Overlaps(c) {
		t.Error("overlapping rects")
	}
	got := a.Intersect(c)
	if got != (Rect{5, 5, 10, 10}) {
		t.Errorf("Intersect = %v", got)
	}
}

func TestRectExpand(t *testing.T) {
	r := RectWH(2, 2, 4, 4).Expand(2)
	if r != (Rect{0, 0, 8, 8}) {
		t.Errorf("Expand = %v", r)
	}
	if s := r.Expand(-5); !s.Empty() {
		t.Errorf("over-shrunk rect should be empty, got %v", s)
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	cases := []struct {
		p Point
		d float64
	}{
		{Pt(5, 5), 0},
		{Pt(10, 10), 0},
		{Pt(13, 5), 3},
		{Pt(5, -4), 4},
		{Pt(13, 14), 5},
	}
	for _, c := range cases {
		if got := r.DistToPoint(c.p); got != c.d {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.d)
		}
	}
}

func TestRectIntersectionProperties(t *testing.T) {
	f := func(x0, y0, w0, h0, x1, y1, w1, h1 int8) bool {
		a := RectWH(int64(x0), int64(y0), int64(abs8(w0)), int64(abs8(h0)))
		b := RectWH(int64(x1), int64(y1), int64(abs8(w1)), int64(abs8(h1)))
		in := a.Intersect(b)
		// Intersection nonempty iff Intersects.
		if in.Empty() == a.Intersects(b) {
			return false
		}
		// Intersection contained in both.
		if !in.Empty() && (!a.ContainsRect(in) || !b.ContainsRect(in)) {
			return false
		}
		// Union contains both.
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs8(v int8) int8 {
	if v < 0 {
		if v == -128 {
			return 127
		}
		return -v
	}
	return v
}
