// Command rdlroute routes an InFO package design with the paper's
// five-stage via-based flow (or the Lin-ext baseline) and reports
// routability, wirelength, via count and runtime.
//
// Usage:
//
//	rdlroute -bench dense1                # generate + route a Table-I circuit
//	rdlroute -in design.rdl -check        # route a netlist file and run DRC
//	rdlroute -bench dense2 -flow linext   # run the baseline instead
//	rdlroute -bench dense1 -no-lp         # ablation: disable stage 5
//	rdlroute -bench dense1 -trace t.jsonl -stats   # observability
//	rdlroute -bench dense1 -metrics -              # Prometheus exposition on stdout
//	rdlroute -bench dense1 -cpuprofile cpu.pprof   # stage-labelled profile
//	rdlroute -bench dense1 -export-design d.json   # write rdl-design/v1 JSON
//	rdlroute -design d.json -o result.json         # JSON in, rdl-result/v1 out
//	rdlroute -bench dense1 -delta eco.json         # ECO: route, apply delta, reroute incrementally
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rdlroute"
)

func main() {
	os.Exit(run())
}

// run keeps all cleanup in defers (profile stop, trace flush) and returns
// the process exit code, so no exit path skips them.
func run() int {
	var (
		in        = flag.String("in", "", "input design file (text netlist)")
		designIn  = flag.String("design", "", "input design file (rdl-design/v1 JSON)")
		designOut = flag.String("export-design", "", "write the loaded design as rdl-design/v1 JSON to this file before routing")
		bench     = flag.String("bench", "", "generate a named benchmark (dense1..dense5) instead of reading a file")
		flow      = flag.String("flow", "ours", `routing flow: "ours" or "linext"`)
		check     = flag.Bool("check", false, "run the design-rule checker on the result")
		noLP      = flag.Bool("no-lp", false, "disable LP-based layout optimization")
		noW       = flag.Bool("no-weights", false, "disable Eq.(2) chord weights (unweighted MPSC)")
		noVias    = flag.Bool("no-via-insertion", false, "disable stage-3 via insertion")
		cells     = flag.Int("cells", 30, "global cells per axis")
		svg       = flag.String("svg", "", "write the routed layout as SVG to this file")
		layer     = flag.Int("svg-layer", -1, "restrict the SVG to one wire layer (-1 = all)")
		out       = flag.String("out", "", "write the routing result (text layout format) to this file")
		oJSON     = flag.String("o", "", `write the routing result (rdl-result/v1 JSON) to this file (flow "ours" only)`)
		heat      = flag.Bool("congest", false, "print per-layer congestion heatmaps")
		ripup     = flag.Int("ripup", 0, "rip-up-and-reroute rounds (extension beyond the paper; 0 = off)")
		workers   = flag.Int("workers", 0, "worker-pool bound for the flow's parallel stages (0 = GOMAXPROCS, 1 = sequential); the routed result is identical at every value")
		specul    = flag.Bool("speculative", false, "speculative stage-4 scheduler: route sequential-stage nets concurrently, commit only proof-identical results (byte-identical output either way)")
		portfolio = flag.Int("portfolio", 0, "race the first N ordering-registry policies through the sequential stage and keep the best result (0 = off, max 16); deterministic at any worker count")
		deltaIn   = flag.String("delta", "", `ECO delta file (rdl-design-delta/v1 JSON): route the base design recording a search memo, apply the delta, reroute incrementally (flow "ours" only)`)
		hashOnly  = flag.Bool("hash", false, "print the design's content hash (sha256 of the canonical rdl-design/v1 bytes, the delta \"base\" field) and exit")

		trace     = flag.String("trace", "", "write a JSONL trace (stage spans, per-net events) to this file")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile (stage-labelled) to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile (taken after routing) to this file")
		stats     = flag.Bool("stats", false, "print the aggregated metrics snapshot after routing")
		statsJSON = flag.String("stats-json", "", "write the aggregated metrics snapshot as JSON to this file")
		metOut    = flag.String("metrics", "", `write the run's production metrics as a Prometheus text exposition to this file ("-" = stdout)`)
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "rdlroute:", err)
		return 1
	}

	var d *rdlroute.Design
	var err error
	switch {
	case *bench != "":
		d, err = rdlroute.GenerateBenchmark(*bench)
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			d, err = rdlroute.ParseDesign(f)
			f.Close()
		}
	case *designIn != "":
		var f *os.File
		if f, err = os.Open(*designIn); err == nil {
			d, err = rdlroute.DecodeDesignJSON(f)
			f.Close()
		}
	default:
		fmt.Fprintln(os.Stderr, "rdlroute: need -in, -design or -bench")
		return 2
	}
	if err != nil {
		return fail(err)
	}

	if *hashOnly {
		h, err := rdlroute.DesignContentHash(d)
		if err != nil {
			return fail(err)
		}
		fmt.Println(h)
		return 0
	}

	if *designOut != "" {
		f, err := os.Create(*designOut)
		if err != nil {
			return fail(err)
		}
		if err := rdlroute.EncodeDesignJSON(f, d); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
		fmt.Printf("design json %s\n", *designOut)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Assemble the tracer: a JSONL stream, an in-memory collector for the
	// snapshot, or both. A CPU profile alone still needs an enabled tracer
	// so the stage spans apply their pprof labels.
	var sinks []rdlroute.Tracer
	if *trace != "" {
		tf, err := os.Create(*trace)
		if err != nil {
			return fail(err)
		}
		jl := rdlroute.NewJSONLTracer(tf)
		defer func() {
			jl.Close()
			tf.Close()
		}()
		sinks = append(sinks, jl)
	}
	var coll *rdlroute.Collector
	if *stats || *statsJSON != "" || (*cpuprof != "" && len(sinks) == 0) {
		coll = rdlroute.NewCollector()
		sinks = append(sinks, coll)
	}
	var reg *rdlroute.MetricsRegistry
	if *metOut != "" {
		reg = rdlroute.NewMetricsRegistry()
		sinks = append(sinks, rdlroute.NewMetricsBridge(reg))
	}
	tracer := rdlroute.MultiTracer(sinks...)

	var lay *rdlroute.Layout
	var snap *rdlroute.Snapshot
	var routeRes *rdlroute.Result
	switch *flow {
	case "ours":
		opts := rdlroute.DefaultOptions()
		opts.EnableLP = !*noLP
		opts.UseWeights = !*noW
		opts.EnableVias = !*noVias
		opts.GlobalCells = *cells
		opts.RipUpRounds = *ripup
		opts.Workers = *workers
		opts.Speculative = *specul
		opts.OrderPortfolio = *portfolio
		opts.Tracer = tracer
		var res *rdlroute.Result
		if *deltaIn != "" {
			df, err := os.Open(*deltaIn)
			if err != nil {
				return fail(err)
			}
			dl, err := rdlroute.DecodeDesignDeltaJSON(df)
			df.Close()
			if err != nil {
				return fail(err)
			}
			if dl.Base != "" {
				h, err := rdlroute.DesignContentHash(d)
				if err != nil {
					return fail(err)
				}
				if h != dl.Base {
					return fail(fmt.Errorf("delta base %s does not match the loaded design (content hash %s)", dl.Base, h))
				}
			}
			ctx := context.Background()
			base, err := rdlroute.RouteECO(ctx, d, opts)
			if err != nil {
				return fail(err)
			}
			inc, err := base.Reroute(ctx, dl, opts)
			if err != nil {
				return fail(err)
			}
			hits, misses, _ := inc.MemoStats()
			fmt.Printf("eco         base route %v, incremental reroute %v (%.1fx)\n",
				base.Result.Runtime.Round(time.Millisecond),
				inc.Result.Runtime.Round(time.Millisecond),
				float64(base.Result.Runtime)/float64(inc.Result.Runtime))
			fmt.Printf("eco memo    %d search hits, %d misses\n", hits, misses)
			d, res = inc.Design, inc.Result
		} else if res, err = rdlroute.Route(d, opts); err != nil {
			return fail(err)
		}
		lay = res.Layout
		snap = res.Obs
		routeRes = res
		fmt.Printf("design      %s\n", d.Name)
		fmt.Printf("flow        ours (via-based, 5 stages)\n")
		fmt.Printf("routability %.1f%% (%d/%d nets)\n", res.Routability, res.RoutedNets, res.TotalNets)
		fmt.Printf("wirelength  %.0f (before LP: %.0f)\n", res.Wirelength, res.WirelengthBeforeLP)
		fmt.Printf("stages      concurrent=%d sequential=%d (corridor=%d fallback=%d)\n",
			res.ConcurrentRouted, res.SequentialRouted, res.CorridorRouted, res.FallbackRouted)
		fmt.Printf("graph       %d octagonal tiles\n", res.TileCount)
		fmt.Printf("lp          %d iterations, %d components\n", res.LPIterations, res.LPComponents)
		fmt.Printf("vias        %d\n", res.Layout.ViaCount())
		if p := res.Portfolio; p != nil {
			fmt.Printf("portfolio   %d policies raced, winner %d (%s), +%d nets vs policy 0\n",
				len(p.Candidates), p.Winner, p.WinnerName, p.Candidates[p.Winner].Routed-p.Candidates[0].Routed)
		}
		fmt.Printf("runtime     %v\n", res.Runtime)
	case "linext":
		opts := rdlroute.DefaultBaselineOptions()
		opts.Workers = *workers
		opts.Tracer = tracer
		res, err := rdlroute.RouteLinExt(d, opts)
		if err != nil {
			return fail(err)
		}
		lay = res.Layout
		fmt.Printf("design      %s\n", d.Name)
		fmt.Printf("flow        Lin-ext (single-layer nets, fixed pad vias)\n")
		fmt.Printf("routability %.1f%% (%d/%d nets)\n", res.Routability, res.RoutedNets, res.TotalNets)
		fmt.Printf("wirelength  %.0f\n", res.Wirelength)
		fmt.Printf("stages      concurrent=%d sequential=%d\n", res.ConcurrentRouted, res.SequentialRouted)
		fmt.Printf("runtime     %v\n", res.Runtime)
	default:
		fmt.Fprintf(os.Stderr, "rdlroute: unknown flow %q\n", *flow)
		return 2
	}

	if snap == nil && coll != nil {
		snap = coll.Snapshot()
	}
	if *stats && snap != nil {
		fmt.Println()
		if err := snap.WriteText(os.Stdout); err != nil {
			return fail(err)
		}
	}
	if *statsJSON != "" && snap != nil {
		f, err := os.Create(*statsJSON)
		if err != nil {
			return fail(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
		fmt.Printf("stats       %s\n", *statsJSON)
	}

	if reg != nil {
		w := os.Stdout
		if *metOut != "-" {
			f, err := os.Create(*metOut)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteText(w); err != nil {
			return fail(err)
		}
		if *metOut != "-" {
			fmt.Printf("metrics     %s\n", *metOut)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		if err := rdlroute.WriteLayout(f, lay); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
		fmt.Printf("routes      %s\n", *out)
	}

	if *oJSON != "" {
		if routeRes == nil {
			return fail(fmt.Errorf(`-o needs flow "ours" (the baseline has no result document)`))
		}
		f, err := os.Create(*oJSON)
		if err != nil {
			return fail(err)
		}
		if err := rdlroute.EncodeResultJSON(f, routeRes); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
		fmt.Printf("result      %s\n", *oJSON)
	}

	if *heat {
		m := rdlroute.BuildCongestion(lay, 24)
		for l := 0; l < d.WireLayers; l++ {
			if err := m.Render(os.Stdout, l); err != nil {
				return fail(err)
			}
		}
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			return fail(err)
		}
		opts := rdlroute.DefaultRenderOptions()
		opts.Layer = *layer
		if err := rdlroute.RenderSVG(f, lay, opts); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
		fmt.Printf("svg         %s\n", *svg)
	}

	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			return fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		f.Close()
	}

	if *check {
		vs := rdlroute.Check(lay)
		if len(vs) == 0 {
			fmt.Println("drc         clean")
		} else {
			fmt.Printf("drc         %d violations\n", len(vs))
			for i, v := range vs {
				if i >= 20 {
					fmt.Printf("  ... and %d more\n", len(vs)-20)
					break
				}
				fmt.Printf("  %v\n", v)
			}
			return 1
		}
	}
	return 0
}
