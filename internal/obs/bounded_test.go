package obs

import "testing"

// TestBoundedCollector: past the retention bound, raw records stop
// accumulating but every aggregate stays exact — the contract that lets
// serve keep an always-on collector without unbounded growth.
func TestBoundedCollector(t *testing.T) {
	c := NewBoundedCollector(3)
	for i := 0; i < 10; i++ {
		c.Event("e", Int("i", i))
		c.Count("n", 1)
		c.Observe("d", float64(i+1))
		sp := c.Span("s")
		sp.End()
	}

	if got := len(c.Events("e")); got != 3 {
		t.Errorf("retained events = %d, want 3", got)
	}
	if got := len(c.Spans("s")); got != 3 {
		t.Errorf("retained spans = %d, want 3", got)
	}

	s := c.Snapshot()
	if s.Events != 10 {
		t.Errorf("snapshot events = %d, want 10 (all seen)", s.Events)
	}
	if s.Counters["n"] != 10 {
		t.Errorf("counter = %d, want 10", s.Counters["n"])
	}
	d := s.Dists["d"]
	if d.Count != 10 || d.Min != 1 || d.Max != 10 || d.Sum != 55 {
		t.Errorf("dist aggregates = %+v, want count 10 min 1 max 10 sum 55", d)
	}
	if d.Mean != 5.5 {
		t.Errorf("dist mean = %v, want 5.5", d.Mean)
	}
	// Percentiles summarize the retained window (first 3 samples).
	if d.P50 != 2 {
		t.Errorf("windowed p50 = %v, want 2", d.P50)
	}
	var span SpanStat
	for _, st := range s.Spans {
		if st.Name == "s" {
			span = st
		}
	}
	if span.Count != 10 {
		t.Errorf("span count = %d, want 10 (aggregate exact past bound)", span.Count)
	}
	if span.TotalMs < 0 {
		t.Errorf("span total = %v", span.TotalMs)
	}
}
