package qa

import (
	"bytes"
	"context"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

// workerMatrix is the worker-count axis of the determinism matrix: the
// sequential path, the smallest real pool, and a pool far wider than
// this machine has cores (oversubscription shakes out scheduling-order
// assumptions even on one CPU).
var workerMatrix = []int{1, 2, 8}

// routeStable routes d with the given worker count and returns the
// lattice fingerprint plus the stable (runtime-zeroed) rdl-result/v1
// encoding and the result itself.
func routeStable(t *testing.T, d *design.Design, workers int) (uint64, []byte, *router.Result) {
	t.Helper()
	opts := flowOptions()
	opts.Workers = workers
	res, fp, err := router.RouteFingerprint(context.Background(), d, opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	enc, err := encodeResultStable(res)
	if err != nil {
		t.Fatalf("workers=%d: encode: %v", workers, err)
	}
	return fp, enc, res
}

// assertWorkerInvariant routes d at every worker count and fails if any
// observable — lattice fingerprint, routed-net count, wirelength, or the
// encoded rdl-result/v1 bytes — differs from the workers=1 run. This is
// the package's enforcement of the par contract: the parallel stages are
// byte-identical to the sequential path, not merely "equivalent".
func assertWorkerInvariant(t *testing.T, label string, d *design.Design) {
	t.Helper()
	fp1, enc1, res1 := routeStable(t, d, workerMatrix[0])
	for _, w := range workerMatrix[1:] {
		fp, enc, res := routeStable(t, d, w)
		if fp != fp1 {
			t.Errorf("%s: workers=%d lattice fingerprint %x, workers=1 got %x", label, w, fp, fp1)
		}
		if res.RoutedNets != res1.RoutedNets || res.Wirelength != res1.Wirelength {
			t.Errorf("%s: workers=%d routed %d wl %.3f, workers=1 routed %d wl %.3f",
				label, w, res.RoutedNets, res.Wirelength, res1.RoutedNets, res1.Wirelength)
		}
		if !bytes.Equal(enc, enc1) {
			t.Errorf("%s: workers=%d rdl-result/v1 bytes differ from workers=1 (%d vs %d bytes)",
				label, w, len(enc), len(enc1))
		}
	}
}

// denseMatrixNames returns the Table-I circuits the dense determinism
// matrix covers: all five in a full run, trimmed under -short, and
// trimmed harder under the race detector's ~10× routing overhead (the
// full matrix runs race-free in the verify script's determinism stage,
// and verify.sh also runs this test under -race at the reduced size).
func denseMatrixNames() []string {
	names := []string{"dense1", "dense2", "dense3", "dense4", "dense5"}
	if testing.Short() {
		names = names[:3]
	}
	if raceEnabled {
		names = names[:2]
	}
	return names
}

// TestWorkerDeterminismDense is the determinism matrix over the paper's
// benchmark circuits: each routes at workers 1, 2 and 8 and must produce
// identical fingerprints, metrics and result bytes.
func TestWorkerDeterminismDense(t *testing.T) {
	for _, name := range denseMatrixNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := design.DenseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := design.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			assertWorkerInvariant(t, name, d)
		})
	}
}

// TestWorkerDeterminismRandom runs the same matrix over qa-generated
// designs — irregular pad rings, area pads, obstacles, adversarial
// near-minimum spacing — which exercise flow paths (rip-up, corridors,
// degenerate fan-out regions) the regular dense circuits never reach.
func TestWorkerDeterminismRandom(t *testing.T) {
	const seeds = 10
	for seed := int64(1); seed <= seeds; seed++ {
		d := Generate(seed)
		assertWorkerInvariant(t, d.Name, d)
	}
}

// TestRegressionParallelBatchBoundary pins seed 29: an adversarial
// design whose preprocessing yields 11 stage-2 candidates — more than
// one mask-prebuild batch holds at workers=2 (batch 4·workers = 8) — so
// a well-filled MPSC round drives the commit loop across a batch
// boundary mid-round. That boundary is where an off-by-one in the
// batched prefetch (the masks[k-lo] indexing) would silently hand a net
// its neighbour's region mask and diverge from the sequential path.
func TestRegressionParallelBatchBoundary(t *testing.T) {
	d := Generate(29)
	assertWorkerInvariant(t, d.Name, d)
}
