package rdlroute_test

import (
	"bytes"
	"fmt"

	"rdlroute"
)

// Generate one of the paper's benchmark circuits and inspect its Table-I
// statistics.
func ExampleGenerateBenchmark() {
	d, err := rdlroute.GenerateBenchmark("dense1")
	if err != nil {
		panic(err)
	}
	s := d.Stats()
	fmt.Printf("%s: %d chips, %d pads, %d nets, %d wire layers\n",
		s.Name, s.Chips, s.Q, s.N, s.WireLayers)
	// Output:
	// dense1: 2 chips, 44 pads, 22 nets, 3 wire layers
}

// Route a benchmark with the paper's five-stage flow and check the rules.
func ExampleRoute() {
	d, err := rdlroute.GenerateBenchmark("dense1")
	if err != nil {
		panic(err)
	}
	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("routability %.0f%%\n", res.Routability)
	fmt.Printf("violations %d\n", len(rdlroute.Check(res.Layout)))
	// Output:
	// routability 100%
	// violations 0
}

// Compare against the Lin-ext baseline on the same instance.
func ExampleRouteLinExt() {
	d, err := rdlroute.GenerateBenchmark("dense1")
	if err != nil {
		panic(err)
	}
	res, err := rdlroute.RouteLinExt(d, rdlroute.DefaultBaselineOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline routed %d of %d nets\n", res.RoutedNets, res.TotalNets)
	// Output:
	// baseline routed 22 of 22 nets
}

// Build a congestion map of a routed layout.
func ExampleBuildCongestion() {
	d, err := rdlroute.GenerateBenchmark("dense1")
	if err != nil {
		panic(err)
	}
	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
	if err != nil {
		panic(err)
	}
	m := rdlroute.BuildCongestion(res.Layout, 16)
	_, _, peak := m.Peak(0)
	fmt.Printf("top-layer peak utilization below 1: %v\n", peak < 1)
	// Output:
	// top-layer peak utilization below 1: true
}

// Save a routing result and reload it for verification.
func ExampleWriteLayout() {
	d, err := rdlroute.GenerateBenchmark("dense1")
	if err != nil {
		panic(err)
	}
	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := rdlroute.WriteLayout(&buf, res.Layout); err != nil {
		panic(err)
	}
	again, err := rdlroute.ParseLayout(&buf, d)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reloaded %d nets, still clean: %v\n",
		again.RoutedCount(), len(rdlroute.Check(again)) == 0)
	// Output:
	// reloaded 22 nets, still clean: true
}
