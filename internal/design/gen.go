package design

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"rdlroute/internal/geom"
)

// GenSpec parameterizes the benchmark generator. The generator stands in
// for the paper's proprietary industrial circuits: it reproduces the
// published per-circuit statistics (Table I) and the irregular pad
// structure (jittered pitches, jittered insets, and a fraction of pads
// pulled off the chip periphery), with pre-assigned inter-chip nets.
type GenSpec struct {
	Name         string
	Chips        int
	IOPads       int // |Q|; nets are |Q|/2 pre-assigned pad pairs
	BumpPads     int // |G|
	WireLayers   int // |L_w|
	Seed         int64
	InteriorFrac float64 // fraction of I/O pads placed off-periphery (default 0.12)

	// BoardFrac converts this fraction of the pre-assigned nets into
	// chip-to-board connections (I/O pad ↔ nearest free bump pad).
	BoardFrac float64
	// Obstacles places this many netless rectangular blockages on the
	// middle wire layers (requires ≥ 3 wire layers).
	Obstacles int
	// FixedVias places this many netless pre-assigned blockage vias
	// (the formulation's V_p) in the fan-out region.
	FixedVias int
}

// Generator geometry constants, in database units (≈ µm). Every placed
// coordinate is a multiple of Grid so pads land on the routing lattice;
// irregularity comes from grid-quantized pitch remainders and inset jitter.
const (
	genSpacing   = 5
	genWireWidth = 4
	genViaWidth  = 16
	genPadHalfW  = 8
	genPadPitch  = 60  // minimum center-to-center pad pitch (corner-turn safe)
	genChipGap   = 420 // fan-out channel between adjacent chips (35·Grid)
	genMargin    = 264 // outline margin around the chip array (22·Grid)
	genBumpW     = 40

	// Grid is the coordinate quantum; the routing lattice uses the same
	// pitch, so pad centers are lattice nodes.
	Grid = 12
)

// snap12 rounds v down to a multiple of Grid.
func snap12(v int64) int64 { return v - v%Grid }

// ceil12 rounds v up to a multiple of Grid.
func ceil12(v int64) int64 { return (v + Grid - 1) / Grid * Grid }

// DenseSuite returns specs reproducing the statistics of the paper's five
// benchmark circuits (Table I).
func DenseSuite() []GenSpec {
	return []GenSpec{
		{Name: "dense1", Chips: 2, IOPads: 44, BumpPads: 324, WireLayers: 3, Seed: 1},
		{Name: "dense2", Chips: 3, IOPads: 92, BumpPads: 784, WireLayers: 3, Seed: 2},
		{Name: "dense3", Chips: 5, IOPads: 160, BumpPads: 308, WireLayers: 5, Seed: 3},
		{Name: "dense4", Chips: 6, IOPads: 222, BumpPads: 684, WireLayers: 5, Seed: 4},
		{Name: "dense5", Chips: 9, IOPads: 522, BumpPads: 1444, WireLayers: 5, Seed: 5},
	}
}

// DenseSpec returns the spec of the named benchmark circuit.
func DenseSpec(name string) (GenSpec, error) {
	for _, s := range DenseSuite() {
		if s.Name == name {
			return s, nil
		}
	}
	return GenSpec{}, fmt.Errorf("design: unknown benchmark %q", name)
}

// Generate builds a Design from the spec. The result is deterministic for
// a given spec (including Seed) and always passes Validate.
func Generate(spec GenSpec) (*Design, error) {
	if spec.Chips < 1 || spec.IOPads < 2 || spec.WireLayers < 1 {
		return nil, fmt.Errorf("design: bad spec %+v", spec)
	}
	if spec.InteriorFrac == 0 {
		spec.InteriorFrac = 0.12
	}
	seed := spec.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(spec.Name))
		seed = int64(h.Sum64())
	}
	rng := rand.New(rand.NewSource(seed))

	d := &Design{
		Name:       spec.Name,
		WireLayers: spec.WireLayers,
		Rules: Rules{
			Spacing:   genSpacing,
			WireWidth: genWireWidth,
			ViaWidth:  genViaWidth,
		},
	}

	// Distribute pads over chips.
	padsPerChip := make([]int, spec.Chips)
	base := spec.IOPads / spec.Chips
	rem := spec.IOPads % spec.Chips
	for i := range padsPerChip {
		padsPerChip[i] = base
		if i < rem {
			padsPerChip[i]++
		}
	}

	// Chip side from its pad count: peripheral ring must fit the pads at
	// the nominal pitch with slack for jitter.
	sides := make([]int64, spec.Chips)
	for i, n := range padsPerChip {
		perimPads := n - int(float64(n)*spec.InteriorFrac)
		ring := int64(perimPads)*genPadPitch + 4*genPadPitch
		side := ceil12(ring / 4)
		if side < 168 {
			side = 168
		}
		sides[i] = side
	}

	// Place chips on a grid.
	cols := int(math.Ceil(math.Sqrt(float64(spec.Chips))))
	rows := (spec.Chips + cols - 1) / cols
	colW := make([]int64, cols)
	rowH := make([]int64, rows)
	for i := 0; i < spec.Chips; i++ {
		r, c := i/cols, i%cols
		colW[c] = geom.Max64(colW[c], sides[i])
		rowH[r] = geom.Max64(rowH[r], sides[i])
	}
	xOff := make([]int64, cols)
	yOff := make([]int64, rows)
	x := int64(genMargin)
	for c := 0; c < cols; c++ {
		xOff[c] = x
		x += colW[c] + genChipGap
	}
	y := int64(genMargin)
	for r := 0; r < rows; r++ {
		yOff[r] = y
		y += rowH[r] + genChipGap
	}
	totalW := x - genChipGap + genMargin
	totalH := y - genChipGap + genMargin
	d.Outline = geom.RectWH(0, 0, totalW, totalH)

	for i := 0; i < spec.Chips; i++ {
		r, c := i/cols, i%cols
		// Center the chip in its grid slot, on the coordinate grid.
		cx := xOff[c] + snap12((colW[c]-sides[i])/2)
		cy := yOff[r] + snap12((rowH[r]-sides[i])/2)
		d.Chips = append(d.Chips, Chip{
			Name: fmt.Sprintf("chip%d", i),
			Box:  geom.RectWH(cx, cy, sides[i], sides[i]),
		})
	}

	// Place I/O pads: a jittered peripheral ring plus interior pads.
	padID := 0
	for ci, chip := range d.Chips {
		n := padsPerChip[ci]
		interior := int(float64(n) * spec.InteriorFrac)
		perim := n - interior
		placePerimeterPads(d, rng, ci, chip.Box, perim, &padID)
		placeInteriorPads(d, rng, ci, chip.Box, interior, &padID)
	}

	if got := len(d.IOPads); got != spec.IOPads {
		return nil, fmt.Errorf("design: placed %d of %d I/O pads (chips too small for pitch)", got, spec.IOPads)
	}

	// Bump pads on a grid over the whole package bottom, at a pitch that
	// respects the bump-to-bump spacing rule (≥ bump width + spacing).
	if spec.BumpPads > 0 {
		const minBumpPitch = genBumpW + genSpacing + 3 // 48, grid-aligned
		maxCols := int((totalW-genMargin)/minBumpPitch) - 1
		maxRows := int((totalH-genMargin)/minBumpPitch) - 1
		if maxCols < 1 || maxRows < 1 || maxCols*maxRows < spec.BumpPads {
			return nil, fmt.Errorf("design: outline %dx%d cannot fit %d bump pads at pitch %d",
				totalW, totalH, spec.BumpPads, minBumpPitch)
		}
		gcols := int(math.Ceil(math.Sqrt(float64(spec.BumpPads) * float64(totalW) / float64(totalH))))
		if gcols > maxCols {
			gcols = maxCols
		}
		if gcols < 1 {
			gcols = 1
		}
		grows := (spec.BumpPads + gcols - 1) / gcols
		if grows > maxRows {
			grows = maxRows
			gcols = (spec.BumpPads + grows - 1) / grows
		}
		px := (totalW - genMargin) / int64(gcols+1)
		py := (totalH - genMargin) / int64(grows+1)
		id := 0
		for r := 1; r <= grows && id < spec.BumpPads; r++ {
			for c := 1; c <= gcols && id < spec.BumpPads; c++ {
				d.BumpPads = append(d.BumpPads, BumpPad{
					ID:     id,
					Center: geom.Pt(snap12(genMargin/2+int64(c)*px), snap12(genMargin/2+int64(r)*py)),
					W:      genBumpW,
				})
				id++
			}
		}
	}

	// Pre-assigned inter-chip nets: pair pads of distinct chips, preferring
	// neighboring chips so the fan-out channels carry realistic congestion.
	pairPads(d, rng, spec.Chips, padsPerChip)

	if spec.BoardFrac > 0 {
		convertBoardNets(d, spec.BoardFrac)
	}
	if spec.Obstacles > 0 {
		if err := placeObstacles(d, rng, spec.Obstacles); err != nil {
			return nil, err
		}
	}
	if spec.FixedVias > 0 {
		placeFixedVias(d, rng, spec.FixedVias)
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("design: generated instance invalid: %w", err)
	}
	return d, nil
}

// convertBoardNets re-targets a fraction of the nets at bump pads: the
// second endpoint becomes the nearest bump pad not yet used by a net,
// making them chip-to-board connections.
func convertBoardNets(d *Design, frac float64) {
	n := int(frac * float64(len(d.Nets)))
	used := map[int]bool{}
	for ni := 0; ni < len(d.Nets) && n > 0; ni++ {
		p1 := d.PadCenter(d.Nets[ni].P1)
		best, bestD := -1, int64(1<<62)
		for bi, b := range d.BumpPads {
			if used[bi] {
				continue
			}
			dd := geom.Manhattan(p1, b.Center)
			if dd < bestD {
				bestD = dd
				best = bi
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		d.Nets[ni].P2 = PadRef{Kind: BumpKind, Index: best}
		n--
	}
}

// placeObstacles drops netless blockages on the middle wire layers, clear
// of each other (they share no layer with pads or bumps).
func placeObstacles(d *Design, rng *rand.Rand, n int) error {
	if d.WireLayers < 3 {
		return fmt.Errorf("design: obstacles need ≥ 3 wire layers, have %d", d.WireLayers)
	}
	inner := d.Outline.Expand(-genMargin)
	for k := 0; k < n; k++ {
		for try := 0; try < 200; try++ {
			w := int64(48 + 12*rng.Intn(6))
			h := int64(48 + 12*rng.Intn(6))
			x := ceil12(inner.X0) + snap12(int64(rng.Intn(int(inner.W()))))
			y := ceil12(inner.Y0) + snap12(int64(rng.Intn(int(inner.H()))))
			box := geom.RectWH(x, y, w, h)
			if !d.Outline.ContainsRect(box) {
				continue
			}
			layer := 1 + rng.Intn(d.WireLayers-2)
			ok := true
			for _, o := range d.Obstacles {
				if o.Layer == layer && o.Box.Expand(d.Rules.Spacing+12).Intersects(box) {
					ok = false
					break
				}
			}
			if ok {
				d.Obstacles = append(d.Obstacles, Obstacle{Layer: layer, Box: box})
				break
			}
		}
	}
	return nil
}

// placeFixedVias drops netless pre-assigned vias in the fan-out region,
// clear of chips, bumps, obstacles and each other.
func placeFixedVias(d *Design, rng *rand.Rand, n int) {
	if d.WireLayers < 2 {
		return
	}
	minViaGap := d.Rules.ViaWidth + d.Rules.Spacing + 3
	inner := d.Outline.Expand(-genMargin / 2)
	for k := 0; k < n; k++ {
		for try := 0; try < 300; try++ {
			x := ceil12(inner.X0) + snap12(int64(rng.Intn(int(inner.W()))))
			y := ceil12(inner.Y0) + snap12(int64(rng.Intn(int(inner.H()))))
			p := geom.Pt(x, y)
			slab := rng.Intn(d.WireLayers - 1)
			ok := true
			for _, c := range d.Chips {
				if c.Box.Expand(36).Contains(p) {
					ok = false
					break
				}
			}
			if ok && slab+1 == d.WireLayers-1 {
				for _, b := range d.BumpPads {
					if geom.Manhattan(b.Center, p) < b.W/2+minViaGap+24 {
						ok = false
						break
					}
				}
			}
			if ok {
				for _, o := range d.Obstacles {
					if (o.Layer == slab || o.Layer == slab+1) &&
						o.Box.Expand(minViaGap+12).Contains(p) {
						ok = false
						break
					}
				}
			}
			if ok {
				for _, v := range d.FixedVias {
					dx := geom.Abs64(v.Center.X - p.X)
					dy := geom.Abs64(v.Center.Y - p.Y)
					if dx < minViaGap+12 && dy < minViaGap+12 {
						ok = false
						break
					}
				}
			}
			if ok {
				d.FixedVias = append(d.FixedVias, FixedVia{Net: -1, Center: p, Slab: slab})
				break
			}
		}
	}
}

// placePerimeterPads walks the chip boundary ring and drops pads at
// grid-quantized positions with a jittered inset — the paper's irregular
// structure with every center on the routing lattice.
func placePerimeterPads(d *Design, rng *rand.Rand, chip int, box geom.Rect, n int, padID *int) {
	if n <= 0 {
		return
	}
	const minInset = Grid // ≥ pad half-width + clearance, grid-aligned
	ringW := box.W() - 2*minInset
	ringH := box.H() - 2*minInset
	ringLen := 2*ringW + 2*ringH
	pitch := ringLen / int64(n)
	pos := snap12(int64(rng.Intn(int(geom.Max64(pitch, 1)))))
	minGap := int64(2*genPadHalfW + genSpacing + 1)
	clearOf := func(pt geom.Point) bool {
		for _, q := range d.IOPads {
			if q.Chip != chip {
				continue
			}
			dx := geom.Abs64(q.Center.X - pt.X)
			dy := geom.Abs64(q.Center.Y - pt.Y)
			if dx < minGap && dy < minGap {
				return false
			}
		}
		return true
	}
	for k := 0; k < n; k++ {
		p := snap12(pos) % ringLen
		// Inset jitter pulls some pads one grid step off the boundary ring.
		extra := int64(rng.Intn(2)) * Grid
		// Nudge along the ring until the pad clears its predecessors
		// (corner turns can bring ring-distant pads close in 2D).
		var pt geom.Point
		placed := false
		for try := 0; try < 100; try++ {
			pt = ringPoint(box, minInset, extra, p%ringLen)
			if clearOf(pt) {
				placed = true
				break
			}
			extra = 0
			p += Grid
		}
		if placed {
			d.IOPads = append(d.IOPads, IOPad{ID: *padID, Chip: chip, Center: pt, HalfW: genPadHalfW})
			*padID++
		}
		pos += pitch
	}
}

// ringPoint maps a 1D ring coordinate (on the minInset ring) to a point on
// the chip boundary ring, pushed inward by extra perpendicular to its edge.
func ringPoint(box geom.Rect, inset, extra, p int64) geom.Point {
	x0, y0 := box.X0+inset, box.Y0+inset
	x1, y1 := box.X1-inset, box.Y1-inset
	w := x1 - x0
	h := y1 - y0
	switch {
	case p < w: // south edge, west→east
		return geom.Pt(x0+p, y0+extra)
	case p < w+h: // east edge, south→north
		return geom.Pt(x1-extra, y0+(p-w))
	case p < 2*w+h: // north edge, east→west
		return geom.Pt(x1-(p-w-h), y1-extra)
	default: // west edge, north→south
		return geom.Pt(x0+extra, y1-(p-2*w-h))
	}
}

// placeInteriorPads drops pads on an inner ring, clear of the peripheral
// ring, respecting pad-to-pad spacing by rejection sampling.
func placeInteriorPads(d *Design, rng *rand.Rand, chip int, box geom.Rect, n int, padID *int) {
	if n <= 0 {
		return
	}
	inner := box.Expand(-(genPadHalfW + 50))
	if inner.Empty() || inner.W() < 2*genPadHalfW || inner.H() < 2*genPadHalfW {
		inner = box.Expand(-(genPadHalfW + 10))
	}
	minGap := int64(2*genPadHalfW + genSpacing + 2)
	for k := 0; k < n; k++ {
		var pt geom.Point
		ok := false
		for attempt := 0; attempt < 200; attempt++ {
			pt = geom.Pt(
				ceil12(inner.X0)+snap12(int64(rng.Intn(int(inner.W()+1)))),
				ceil12(inner.Y0)+snap12(int64(rng.Intn(int(inner.H()+1)))),
			)
			ok = true
			for _, q := range d.IOPads {
				if q.Chip != chip {
					continue
				}
				dx := geom.Abs64(q.Center.X - pt.X)
				dy := geom.Abs64(q.Center.Y - pt.Y)
				if dx < minGap && dy < minGap {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			// Dense chip: give up on this interior pad and place it on the
			// periphery instead.
			placePerimeterPads(d, rng, chip, box, 1, padID)
			continue
		}
		d.IOPads = append(d.IOPads, IOPad{ID: *padID, Chip: chip, Center: pt, HalfW: genPadHalfW})
		*padID++
	}
}

// pairPads builds |Q|/2 pre-assigned nets pairing pads of distinct chips.
func pairPads(d *Design, rng *rand.Rand, chips int, padsPerChip []int) {
	byChip := make([][]int, chips)
	for i, p := range d.IOPads {
		byChip[p.Chip] = append(byChip[p.Chip], i)
	}
	for c := range byChip {
		rng.Shuffle(len(byChip[c]), func(i, j int) {
			byChip[c][i], byChip[c][j] = byChip[c][j], byChip[c][i]
		})
	}
	netID := 0
	take := func(c int) (int, bool) {
		if len(byChip[c]) == 0 {
			return 0, false
		}
		idx := byChip[c][len(byChip[c])-1]
		byChip[c] = byChip[c][:len(byChip[c])-1]
		return idx, true
	}
	// Round-robin pairing between chip c and its successor ring neighbor;
	// leftovers paired greedily across any two distinct chips.
	if chips == 1 {
		// Single-chip designs pair pads within the chip (degenerate but legal).
		for len(byChip[0]) >= 2 {
			a, _ := take(0)
			b, _ := take(0)
			d.Nets = append(d.Nets, Net{ID: netID, P1: PadRef{IOKind, a}, P2: PadRef{IOKind, b}})
			netID++
		}
		return
	}
	for c := 0; c < chips; c++ {
		next := (c + 1) % chips
		for len(byChip[c]) > 0 && len(byChip[next]) > 0 && len(byChip[c])+boolToInt(c == next) > padsPerChip[c]/2 {
			a, ok1 := take(c)
			b, ok2 := take(next)
			if !ok1 || !ok2 {
				break
			}
			d.Nets = append(d.Nets, Net{ID: netID, P1: PadRef{IOKind, a}, P2: PadRef{IOKind, b}})
			netID++
		}
	}
	// Pair the remainder across chips.
	for {
		c1 := -1
		for c := 0; c < chips; c++ {
			if len(byChip[c]) > 0 {
				c1 = c
				break
			}
		}
		if c1 == -1 {
			break
		}
		c2 := -1
		for c := chips - 1; c >= 0; c-- {
			if c != c1 && len(byChip[c]) > 0 {
				c2 = c
				break
			}
		}
		if c2 == -1 {
			// Only one chip has leftovers: pair within it.
			if len(byChip[c1]) < 2 {
				break
			}
			c2 = c1
		}
		a, _ := take(c1)
		b, _ := take(c2)
		d.Nets = append(d.Nets, Net{ID: netID, P1: PadRef{IOKind, a}, P2: PadRef{IOKind, b}})
		netID++
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
