package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rdlroute"
	"rdlroute/internal/qa"
)

// writeFiles routes a qa design and saves the design netlist and layout
// to dir, returning both paths and the layout for further mutation.
func writeFiles(t *testing.T, dir string) (designPath, routesPath string, lay *rdlroute.Layout) {
	t.Helper()
	d := qa.Generate(5)
	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
	if err != nil {
		t.Fatalf("routing fixture design: %v", err)
	}
	designPath = filepath.Join(dir, "design.rdl")
	routesPath = filepath.Join(dir, "routes.rdl")
	var db, rb bytes.Buffer
	if err := rdlroute.WriteDesign(&db, d); err != nil {
		t.Fatalf("writing design: %v", err)
	}
	if err := rdlroute.WriteLayout(&rb, res.Layout); err != nil {
		t.Fatalf("writing layout: %v", err)
	}
	if err := os.WriteFile(designPath, db.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(routesPath, rb.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return designPath, routesPath, res.Layout
}

// corrupt duplicates one wire polyline onto a different net, which the
// checker must flag as a crossing, and saves the broken layout.
func corrupt(t *testing.T, lay *rdlroute.Layout, path string) {
	t.Helper()
	if len(lay.Routes) == 0 || len(lay.D.Nets) < 2 {
		t.Fatal("fixture layout has no routes to corrupt")
	}
	r := lay.Routes[0]
	r.Net = (r.Net + 1) % len(lay.D.Nets)
	lay.Routes = append(lay.Routes, r)
	var b bytes.Buffer
	if err := rdlroute.WriteLayout(&b, lay); err != nil {
		t.Fatalf("writing corrupted layout: %v", err)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestUsageExitCode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("run with no args: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "need -design and -routes") {
		t.Fatalf("usage message missing, got %q", errb.String())
	}
}

func TestFileModeCleanAndViolations(t *testing.T) {
	dir := t.TempDir()
	designPath, routesPath, lay := writeFiles(t, dir)

	var out, errb bytes.Buffer
	if code := run([]string{"-design", designPath, "-routes", routesPath}, &out, &errb); code != 0 {
		t.Fatalf("clean layout: exit %d, want 0 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "drc         clean") {
		t.Fatalf("clean layout output missing drc line:\n%s", out.String())
	}

	badPath := filepath.Join(dir, "bad.rdl")
	corrupt(t, lay, badPath)
	out.Reset()
	errb.Reset()
	if code := run([]string{"-design", designPath, "-routes", badPath}, &out, &errb); code != 1 {
		t.Fatalf("violating layout: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "violations") {
		t.Fatalf("violating layout output missing violation count:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-design", designPath, "-routes", badPath, "-json"}, &out, &errb); code != 1 {
		t.Fatalf("violating layout -json: exit %d, want 1", code)
	}
	var rep fileReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Clean || len(rep.Violations) == 0 {
		t.Fatalf("-json report should carry violations, got clean=%v violations=%d",
			rep.Clean, len(rep.Violations))
	}
	if rep.Nets == 0 || rep.Routed == 0 {
		t.Fatalf("-json report missing metrics: %+v", rep)
	}
}

func TestRandomMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-random", "2", "-seed", "1"}, &out, &errb); code != 0 {
		t.Fatalf("-random 2: exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "qa: 2 designs") {
		t.Fatalf("-random report missing summary:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "seed 1 design") {
		t.Fatalf("-random progress log missing from stderr:\n%s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-random", "1", "-seed", "3", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("-random -json: exit %d, want 0 (stderr: %s)", code, errb.String())
	}
	var rep struct {
		Seed     int64 `json:"seed"`
		OK       bool  `json:"ok"`
		Designs  int
		Failures []qa.SeedFailure
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-random -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if !rep.OK || rep.Designs != 1 || rep.Seed != 3 || len(rep.Failures) != 0 {
		t.Fatalf("unexpected -random -json report: %+v", rep)
	}
}
