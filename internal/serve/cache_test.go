package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/layout"
	"rdlroute/internal/metrics"
	"rdlroute/internal/router"
)

// variant returns dense1 with the first n nets removed — distinct designs
// (and content hashes) for cache-population tests without routing cost.
func variant(t *testing.T, d *design.Design, n int) *design.Design {
	t.Helper()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	v, err := eco.Apply(d, &eco.Delta{RemoveNets: idx})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func stubResult(d *design.Design) *router.Result {
	return &router.Result{Layout: layout.New(d), TotalNets: len(d.Nets),
		RoutedNets: len(d.Nets), Routability: 100}
}

// TestCacheLRUEviction: the entry bound evicts least-recently-used first,
// a get refreshes recency, and the byBase index follows evictions.
func TestCacheLRUEviction(t *testing.T) {
	d := dense1(t)
	c := newResultCache(2, 0)
	opts := router.DefaultOptions()

	designs := []*design.Design{d, variant(t, d, 1), variant(t, d, 2)}
	keys := make([]string, len(designs))
	hashes := make([]string, len(designs))
	for i, dv := range designs {
		keys[i] = cacheKey(dv, opts)
		h, err := codec.DesignHash(dv)
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = h
	}
	if keys[0] == keys[1] || hashes[0] == hashes[1] {
		t.Fatal("variant designs share a content address")
	}

	c.put(keys[0], designs[0], stubResult(designs[0]), nil)
	c.put(keys[1], designs[1], stubResult(designs[1]), nil)
	if _, ok := c.get(keys[0]); !ok { // refresh 0 → 1 is now LRU
		t.Fatal("entry 0 missing before capacity reached")
	}
	c.put(keys[2], designs[2], stubResult(designs[2]), nil)

	if _, ok := c.get(keys[1]); ok {
		t.Error("entry 1 should have been evicted (LRU after entry 0 was touched)")
	}
	if _, ok := c.get(keys[0]); !ok {
		t.Error("entry 0 evicted despite recency refresh")
	}
	if _, _, ok := c.base(hashes[1]); ok {
		t.Error("byBase still resolves the evicted design")
	}
	if base, _, ok := c.base(hashes[2]); !ok || len(base.Nets) != len(designs[2].Nets) {
		t.Errorf("byBase lookup of resident design failed (ok=%v)", ok)
	}
	entries, bytes_, hits, misses, evicted := c.stats()
	if entries != 2 || bytes_ <= 0 || evicted != 1 {
		t.Errorf("stats = entries %d bytes %d evicted %d, want 2/>0/1", entries, bytes_, evicted)
	}
	if hits != 2 || misses != 1 {
		t.Errorf("stats hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

// TestCacheByteBound: the byte bound evicts down to at least one entry,
// never zero — a single oversized result stays usable.
func TestCacheByteBound(t *testing.T) {
	d := dense1(t)
	c := newResultCache(100, 1) // absurdly small byte budget
	opts := router.DefaultOptions()
	c.put(cacheKey(d, opts), d, stubResult(d), nil)
	v := variant(t, d, 1)
	c.put(cacheKey(v, opts), v, stubResult(v), nil)
	entries, _, _, _, evicted := c.stats()
	if entries != 1 || evicted != 1 {
		t.Errorf("entries %d evicted %d, want 1/1 (byte bound keeps one entry)", entries, evicted)
	}
}

// TestCacheKeyNormalizesWorkers: worker count and tracer wiring must not
// split the key space — results are byte-identical at every worker count.
func TestCacheKeyNormalizesWorkers(t *testing.T) {
	d := dense1(t)
	o1 := router.DefaultOptions()
	o2 := router.DefaultOptions()
	o1.Workers = 1
	o2.Workers = 8
	if cacheKey(d, o1) != cacheKey(d, o2) {
		t.Error("cache key differs across worker counts")
	}
	o2.ViaCost++
	if cacheKey(d, o1) == cacheKey(d, o2) {
		t.Error("cache key ignores a routing-relevant option")
	}
}

// TestCacheKeySplitsOnPortfolio: unlike Workers/Speculative, the ordering
// portfolio changes which policy commits the layout, so every portfolio
// size must address its own cache slot.
func TestCacheKeySplitsOnPortfolio(t *testing.T) {
	d := dense1(t)
	solo := router.DefaultOptions()
	port := router.DefaultOptions()
	port.OrderPortfolio = 6
	if cacheKey(d, solo) == cacheKey(d, port) {
		t.Error("cache key ignores the ordering portfolio")
	}
	wider := router.DefaultOptions()
	wider.OrderPortfolio = 8
	if cacheKey(d, port) == cacheKey(d, wider) {
		t.Error("cache key conflates different portfolio sizes")
	}
}

// TestCacheHitMintsJobAndFlight is the regression test for the
// idempotency interaction: a resubmission of identical content under a
// NEW idempotency key is a cache hit, but it must still mint a fresh job
// record and flight entry (tagged "hit"). Only an identical idempotency
// key dedups to the same job.
func TestCacheHitMintsJobAndFlight(t *testing.T) {
	var calls atomic.Int64
	counted := func(ctx context.Context, d *design.Design, opts router.Options) (*router.Result, error) {
		calls.Add(1)
		return stubResult(d), nil
	}
	s := New(Config{Workers: 1, QueueDepth: 4, Route: counted})
	d := dense1(t)
	opts := router.DefaultOptions()

	j1, err := s.Submit(d, opts, 0, "key-a")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j1)
	j2, err := s.Submit(d, opts, 0, "key-b")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j2)

	if j1.ID == j2.ID {
		t.Fatalf("new idempotency key deduped to the same job %s", j1.ID)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("route called %d times, want 1 (second job served from cache)", got)
	}
	if j2.Result == nil || j2.Result.TotalNets != len(d.Nets) {
		t.Errorf("cache-hit job has no result: %+v", j2.Result)
	}
	r1, ok1 := s.flight.get(j1.ID)
	r2, ok2 := s.flight.get(j2.ID)
	if !ok1 || !ok2 {
		t.Fatalf("flight records missing (j1 %v, j2 %v)", ok1, ok2)
	}
	if r1.Cache != "miss" || r2.Cache != "hit" {
		t.Errorf("flight cache tags = %q/%q, want miss/hit", r1.Cache, r2.Cache)
	}

	// Same idempotency key still returns the existing job, no new record.
	j3, err := s.Submit(d, opts, 0, "key-a")
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != j1.ID {
		t.Errorf("idempotent replay minted new job %s, want %s", j3.ID, j1.ID)
	}
	shutdown(t, s)
}

// TestHTTPDeltaJob routes dense1 for real, then submits an
// rdl-design-delta/v1 job against its content hash. The delta job must
// reroute incrementally and produce bytes identical to a cold route of
// the edited design; an unknown base hash is a 400.
func TestHTTPDeltaJob(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Workers: 1, QueueDepth: 4, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	d := dense1(t)

	post := func(body string) (*http.Response, jobView) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var jv jobView
		if resp.StatusCode == http.StatusAccepted {
			decodeBody(t, resp, &jv)
		}
		return resp, jv
	}

	// Base route (cold, recorded into the cache with its eco plan).
	var db bytes.Buffer
	if err := codec.EncodeDesign(&db, d); err != nil {
		t.Fatal(err)
	}
	resp, jv := post(fmt.Sprintf(`{"schema":%q,"design":%s}`, JobSchema, db.String()))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("base submit status %d", resp.StatusCode)
	}
	base := waitState(t, ts.URL, jv.ID, JobDone, 120*time.Second)
	if base.State != JobDone {
		t.Fatalf("base job state %s (%s)", base.State, base.Error)
	}

	hash, err := codec.DesignHash(d)
	if err != nil {
		t.Fatal(err)
	}
	dl := &eco.Delta{Base: hash, Name: d.Name, RemoveNets: []int{0}}
	var dlb bytes.Buffer
	if err := codec.EncodeDesignDelta(&dlb, dl); err != nil {
		t.Fatal(err)
	}

	// Unknown base → 400 with a pointed message.
	bad := strings.Replace(dlb.String(), hash, strings.Repeat("0", 64), 1)
	resp, _ = post(fmt.Sprintf(`{"schema":%q,"delta":%s}`, JobSchema, bad))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-base status %d, want 400", resp.StatusCode)
	}
	var ev errorView
	decodeBody(t, resp, &ev)
	if !strings.Contains(ev.Error, "not in the result cache") {
		t.Errorf("unknown-base error %q", ev.Error)
	}

	// Real delta job.
	resp, jv = post(fmt.Sprintf(`{"schema":%q,"delta":%s}`, JobSchema, dlb.String()))
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("delta submit status %d: %s", resp.StatusCode, body)
	}
	got := waitState(t, ts.URL, jv.ID, JobDone, 120*time.Second)
	if got.State != JobDone {
		t.Fatalf("delta job state %s (%s)", got.State, got.Error)
	}

	// Byte-identity: the delta job's result equals a cold route of the
	// edited design.
	edited, err := eco.Apply(d, dl)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := eco.Route(context.Background(), edited, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The job view re-indents the embedded result document and the
	// encoding carries wall-clock runtime, so canonicalize through a
	// decode/encode round trip with runtime zeroed before comparing.
	gotRes, err := codec.DecodeResult(bytes.NewReader(got.Result), edited)
	if err != nil {
		t.Fatalf("delta-job result does not decode: %v", err)
	}
	gotRes.Runtime = 0
	plan.Result.Runtime = 0
	var gotBytes, want bytes.Buffer
	if err := codec.EncodeResult(&gotBytes, gotRes); err != nil {
		t.Fatal(err)
	}
	if err := codec.EncodeResult(&want, plan.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes.Bytes(), want.Bytes()) {
		t.Errorf("delta-job result bytes differ from cold route of the edited design\ngot:  routed=%d wl=%v routability=%v\nwant: routed=%d wl=%v routability=%v",
			gotRes.RoutedNets, gotRes.Wirelength, gotRes.Routability,
			plan.Result.RoutedNets, plan.Result.Wirelength, plan.Result.Routability)
	}

	// The cache families are on the registry in Prometheus text form.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	text := string(mb)
	for _, fam := range []string{"rdl_cache_entries", "rdl_cache_bytes",
		"rdl_cache_hits_total", "rdl_cache_misses_total", "rdl_cache_evictions_total"} {
		if !strings.Contains(text, fam) {
			t.Errorf("/metrics lacks %s", fam)
		}
	}
	shutdown(t, s)
}

// TestCacheDisabled: CacheEntries < 0 turns the cache off — every job
// routes, flight records carry no cache tag, and the metric families
// still expose zeros.
func TestCacheDisabled(t *testing.T) {
	var calls atomic.Int64
	counted := func(ctx context.Context, d *design.Design, opts router.Options) (*router.Result, error) {
		calls.Add(1)
		return stubResult(d), nil
	}
	reg := metrics.NewRegistry()
	s := New(Config{Workers: 1, Route: counted, CacheEntries: -1, Registry: reg})
	d := dense1(t)
	for i := 0; i < 2; i++ {
		j, err := s.Submit(d, router.DefaultOptions(), 0, "")
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, s, j)
		if rec, ok := s.flight.get(j.ID); !ok || rec.Cache != "" {
			t.Errorf("disabled cache tagged flight record %q", rec.Cache)
		}
	}
	if calls.Load() != 2 {
		t.Errorf("route called %d times, want 2 with cache disabled", calls.Load())
	}
	var buf bytes.Buffer
	reg.WriteText(&buf)
	if !strings.Contains(buf.String(), "rdl_cache_entries 0") {
		t.Error("disabled cache does not expose zeroed gauge families")
	}
	shutdown(t, s)
}
