// Package fanout implements the paper's Preprocessing stage (Section
// III-A): peripheral I/O identification with fan-out access points,
// Ohtsuki-style partitioning of the fan-out region with Lee-style grid
// merging, the fan-out grid graph with track capacities, its minimum
// spanning tree, the circular model built by walking a closed shape
// enclosing the MST, and the chord weights of Eq. (2).
package fanout

import (
	"fmt"
	"math"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Config tunes preprocessing.
type Config struct {
	// PeripheralDist is the maximum distance from a pad center to its chip
	// boundary for the pad to count as peripheral I/O.
	PeripheralDist int64
	// TrackPitch is the center-to-center pitch of parallel wires, used to
	// convert border lengths into edge capacities. Zero means
	// WireWidth + Spacing from the design rules.
	TrackPitch int64
	// Workers bounds the worker pool the stage's data-parallel loops fan
	// out on (grid-graph border scan, candidate path construction, the
	// per-candidate congestion recompute). 0 means GOMAXPROCS, 1 the plain
	// sequential path; results are identical at every value.
	Workers int
}

// DefaultConfig returns the configuration used by the router.
func DefaultConfig() Config {
	return Config{PeripheralDist: 36}
}

// Grid is a merged fan-out grid: one vertex of the fan-out grid graph.
type Grid struct {
	ID  int
	Box geom.Rect
}

// AccessPoint is a peripheral pad's projection onto its chip boundary, the
// point where the net enters the fan-out region.
type AccessPoint struct {
	Pad   int        // I/O pad index in the design
	Point geom.Point // on the chip boundary
	Side  geom.SegDir
	Grid  int // fan-out grid the access point opens into
}

// peripheralSide returns the nearest chip-boundary side for the pad and
// whether the pad is within dist of the boundary.
func peripheralSide(box geom.Rect, c geom.Point, dist int64) (geom.SegDir, bool) {
	dW := c.X - box.X0
	dE := box.X1 - c.X
	dS := c.Y - box.Y0
	dN := box.Y1 - c.Y
	min := geom.Min64(geom.Min64(dW, dE), geom.Min64(dS, dN))
	if min > dist {
		return geom.SegDir{}, false
	}
	switch min {
	case dW:
		return geom.SegDir{DX: -1}, true
	case dE:
		return geom.SegDir{DX: 1}, true
	case dS:
		return geom.SegDir{DY: -1}, true
	default:
		return geom.SegDir{DY: 1}, true
	}
}

// projectToBoundary returns the pad center projected to the chip boundary
// along the given outward side.
func projectToBoundary(box geom.Rect, c geom.Point, side geom.SegDir) geom.Point {
	switch {
	case side.DX < 0:
		return geom.Pt(box.X0, c.Y)
	case side.DX > 0:
		return geom.Pt(box.X1, c.Y)
	case side.DY < 0:
		return geom.Pt(c.X, box.Y0)
	default:
		return geom.Pt(c.X, box.Y1)
	}
}

// partitionFanOut splits the fan-out region (outline minus chip boxes)
// into merged rectangular grids. It refines Ohtsuki's boundary-extension
// partition by using every chip boundary coordinate as a cut line, then
// merges fragments row-wise and column-wise (after Lee et al.) so grids
// stay large.
func partitionFanOut(d *design.Design) []Grid {
	xs := []int64{d.Outline.X0, d.Outline.X1}
	ys := []int64{d.Outline.Y0, d.Outline.Y1}
	for _, c := range d.Chips {
		xs = append(xs, c.Box.X0, c.Box.X1)
		ys = append(ys, c.Box.Y0, c.Box.Y1)
	}
	xs = uniqSorted(xs)
	ys = uniqSorted(ys)

	nx, ny := len(xs)-1, len(ys)-1
	fanIn := make([][]bool, nx)
	for i := range fanIn {
		fanIn[i] = make([]bool, ny)
		for j := range fanIn[i] {
			cell := geom.Rect{X0: xs[i], Y0: ys[j], X1: xs[i+1], Y1: ys[j+1]}
			for _, c := range d.Chips {
				if c.Box.Overlaps(cell) {
					fanIn[i][j] = true
					break
				}
			}
		}
	}

	// Row-wise merge into horizontal strips, then merge vertically adjacent
	// strips with identical x-extent.
	type strip struct {
		i0, i1, j int // x-cell range [i0, i1), row j
	}
	var strips []strip
	for j := 0; j < ny; j++ {
		i := 0
		for i < nx {
			if fanIn[i][j] {
				i++
				continue
			}
			i0 := i
			for i < nx && !fanIn[i][j] {
				i++
			}
			strips = append(strips, strip{i0, i, j})
		}
	}
	type key struct{ i0, i1 int }
	open := map[key]geom.Rect{} // growing rectangles by x-extent
	lastRow := map[key]int{}
	var out []geom.Rect
	// Strips are produced in row order; merge consecutive rows.
	for _, s := range strips {
		k := key{s.i0, s.i1}
		box := geom.Rect{X0: xs[s.i0], Y0: ys[s.j], X1: xs[s.i1], Y1: ys[s.j+1]}
		if r, ok := open[k]; ok && lastRow[k] == s.j-1 {
			r.Y1 = box.Y1
			open[k] = r
			lastRow[k] = s.j
			continue
		}
		if r, ok := open[k]; ok {
			out = append(out, r)
		}
		open[k] = box
		lastRow[k] = s.j
	}
	for _, r := range open {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Y0 != out[b].Y0 {
			return out[a].Y0 < out[b].Y0
		}
		return out[a].X0 < out[b].X0
	})
	grids := make([]Grid, len(out))
	for i, r := range out {
		grids[i] = Grid{ID: i, Box: r}
	}
	return grids
}

func uniqSorted(v []int64) []int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// findGrid returns the grid containing p, preferring the lowest ID when p
// lies on a shared border; −1 when p is outside every grid.
func findGrid(grids []Grid, p geom.Point) int {
	for _, g := range grids {
		if g.Box.Contains(p) {
			return g.ID
		}
	}
	return -1
}

// accessPoints computes peripheral access points for every I/O pad that
// qualifies. Pads deeper inside the chip than cfg.PeripheralDist get none.
func accessPoints(d *design.Design, grids []Grid, cfg Config) (map[int]AccessPoint, error) {
	out := make(map[int]AccessPoint)
	for i, p := range d.IOPads {
		if p.Chip < 0 {
			continue
		}
		box := d.Chips[p.Chip].Box
		side, ok := peripheralSide(box, p.Center, cfg.PeripheralDist)
		if !ok {
			continue
		}
		ap := projectToBoundary(box, p.Center, side)
		// Probe one unit outward to land inside the adjacent fan-out grid.
		probe := ap.Add(geom.Pt(side.DX, side.DY))
		g := findGrid(grids, probe)
		if g < 0 {
			return nil, fmt.Errorf("fanout: access point %v of pad %d opens into no grid", ap, i)
		}
		out[i] = AccessPoint{Pad: i, Point: ap, Side: side, Grid: g}
	}
	return out, nil
}

// gridBorder returns the shared border length of two grid boxes (0 when
// they only touch at a corner or not at all).
func gridBorder(a, b geom.Rect) int64 {
	if a.X1 == b.X0 || b.X1 == a.X0 { // vertical border
		lo := geom.Max64(a.Y0, b.Y0)
		hi := geom.Min64(a.Y1, b.Y1)
		if hi > lo {
			return hi - lo
		}
		return 0
	}
	if a.Y1 == b.Y0 || b.Y1 == a.Y0 { // horizontal border
		lo := geom.Max64(a.X0, b.X0)
		hi := geom.Min64(a.X1, b.X1)
		if hi > lo {
			return hi - lo
		}
		return 0
	}
	return 0
}

// angleOf returns the atan2 angle of q relative to p.
func angleOf(p, q geom.Point) float64 {
	return math.Atan2(float64(q.Y-p.Y), float64(q.X-p.X))
}
