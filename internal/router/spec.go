package router

import (
	"context"
	"fmt"

	"rdlroute/internal/ctile"
	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
	"rdlroute/internal/obs"
	"rdlroute/internal/par"
)

// Speculative stage-4 scheduler.
//
// The sequential loop's outputs are fully determined by its commit order,
// and an A* search never writes the lattice — so stage 4 parallelizes by
// SPECULATING: route a batch of nets concurrently against the frozen
// round-start state, then walk the batch in sequential order and let a
// serial commit arbiter accept each speculative result only when proofs
// show the live loop would have derived it bit for bit:
//
//   - the corridor proof (ctile journal footprint) shows the tile-graph
//     search still re-derives the same corridor — hence the same mask;
//   - the A* footprint (lattice journal blocks of every popped node,
//     grown by the read reach) still matches, for the masked attempt and
//     the fallback attempt alike — hence the same path, cost and effort.
//
// Anything else — stale footprint, predicted conflict, corridor-less
// net, cancelled search — replays through routeNetLive in its exact
// sequential position. Accepted nets perform their deferred tracer and
// memo side effects at commit (CommitSpecSearch), so the observable
// stream is the sequential loop's stream. There is no occupancy to roll
// back: an aborted speculation is dropped buffers, nothing more, which
// is why a cancelled or aborted round can never corrupt the lattice.
//
// Determinism at any worker count: batches are a fixed specBatch nets
// (never worker-scaled), conflict prediction and the arbiter run
// serially in job order, and validation compares worker-independent
// snapshots against commit-order state — so even the spec.* counters
// are identical at Workers 1, 2 and 8.

// specBatch is the speculation round size. Fixed (not scaled by worker
// count) so round boundaries — and with them every spec.* counter and
// replay decision — are identical at any worker count.
const specBatch = 32

// specJob is one net's state through a speculation round.
type specJob struct {
	jb                 seqJob
	from               geom.Point
	to                 geom.Point
	fromLayer, toLayer int

	corridor []ctile.TileRef
	hasCor   bool
	proof    *ctile.CorridorProof
	mask     *lattice.RegionMask

	speculate bool // survived conflict prediction; searched in phase 4

	corAttempt lattice.SpecSearch
	fbAttempt  lattice.SpecSearch
	fellBack   bool
}

// speculativeRoute is sequentialRoute's speculative twin: same jobs, same
// commit order, byte-identical committed results.
func speculativeRoute(ctx context.Context, d *design.Design, model *ctile.Model, sites []ctile.ViaSite, la *lattice.Lattice, lay *layout.Layout, opts Options, res *Result, tr obs.Tracer) error {
	jobs, err := buildSeqJobs(ctx, d, lay, opts)
	if err != nil {
		return err
	}
	viaCost := seqViaCost(opts)
	traced := tr.Enabled()
	workers := par.Workers(opts.Workers)
	// Per-worker private searchers, allocated lazily: concurrent
	// speculative searches share nothing but the read-only lattice.
	searchers := make([]*lattice.Searcher, workers)

	for lo := 0; lo < len(jobs); lo += specBatch {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		hi := min(lo+specBatch, len(jobs))
		batch := make([]specJob, hi-lo)
		if traced {
			tr.Count("spec.rounds", 1)
		}

		// Phase 1 (serial): corridor searches with proofs. The tile model
		// mutates its caches lazily, so corridor searches stay serial; they
		// run against round-start state and the proof carries the evidence
		// the arbiter needs.
		for k := range batch {
			b := &batch[k]
			b.jb = jobs[lo+k]
			nn := d.Nets[b.jb.net]
			b.from, b.fromLayer = terminal(d, nn.P1)
			b.to, b.toLayer = terminal(d, nn.P2)
			b.corridor, b.hasCor, b.proof = model.FindCorridorProof(b.from, b.fromLayer, b.to, b.toLayer, sites, viaCost)
		}

		// Phase 2 (parallel): rasterize corridor masks — a pure function of
		// the corridor and the fixed cell geometry.
		if err := par.ForEach(ctx, opts.Workers, len(batch), func(k int) error {
			if batch[k].hasCor {
				batch[k].mask = corridorMask(la, model, batch[k].corridor, opts.Pitch)
			}
			return nil
		}); err != nil {
			return fmt.Errorf("router: %w", err)
		}

		// Phase 3 (serial): conflict prediction in job order. A net
		// speculates only when its mask avoids every earlier batch net's
		// mask — an earlier commit inside this net's search region would
		// almost surely stale its footprint, so don't burn the search.
		// Prediction is purely an economy: acceptance safety rests on the
		// footprint proofs, never on this walk. Corridor-less nets route
		// live (their fallback search has no useful region bound) and,
		// having no mask, don't block later nets.
		for k := range batch {
			b := &batch[k]
			if !b.hasCor {
				continue
			}
			conflict := false
			for k2 := 0; k2 < k; k2++ {
				if batch[k2].mask != nil && b.mask.Overlaps(batch[k2].mask) {
					conflict = true
					break
				}
			}
			b.speculate = !conflict
		}

		// Phase 4 (parallel): speculative searches, silent on tracer and
		// memo — those side effects happen at commit or not at all. A net
		// whose masked attempt fails speculates the unrestricted fallback
		// too, exactly as the live body would.
		if err := par.ForEachW(ctx, opts.Workers, len(batch), func(w, k int) error {
			b := &batch[k]
			if !b.speculate {
				return nil
			}
			sr := searchers[w]
			if sr == nil {
				sr = la.NewSearcher()
				searchers[w] = sr
			}
			b.corAttempt = la.SpecRoute(lattice.Request{
				Net: b.jb.net, From: b.from, To: b.to,
				FromLayer: b.fromLayer, ToLayer: b.toLayer,
				RegionMask: b.mask, ViaCost: opts.ViaCost,
				Ctx: ctx,
			}, sr)
			if !b.corAttempt.OK {
				b.fellBack = true
				b.fbAttempt = la.SpecRoute(lattice.Request{
					Net: b.jb.net, From: b.from, To: b.to,
					FromLayer: b.fromLayer, ToLayer: b.toLayer,
					ViaCost: opts.ViaCost,
					Ctx:     ctx,
				}, sr)
			}
			return nil
		}); err != nil {
			return fmt.Errorf("router: %w", err)
		}

		// Phase 5 (serial): commit arbiter in job order.
		for k := range batch {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			b := &batch[k]
			if !b.hasCor {
				if traced {
					tr.Count("spec.skip", 1)
				}
				routeNetLive(ctx, d, model, sites, la, lay, opts, res, tr, b.jb.net, viaCost)
				continue
			}
			accept, stale := b.speculate, false
			if accept {
				switch {
				case b.corAttempt.Cancelled, b.fellBack && b.fbAttempt.Cancelled:
					// Monotonic cancellation means ctxErr above fires first;
					// this arm is insurance, not a path the tests can reach.
					accept = false
				case !model.ProofValid(b.proof, sites),
					!la.FootprintValid(&b.corAttempt),
					b.fellBack && !la.FootprintValid(&b.fbAttempt):
					// An earlier commit touched state this net's searches
					// read: the speculation may not match what the live loop
					// would now derive, so it is worthless — replay.
					accept, stale = false, true
				}
			}
			if !accept {
				if traced {
					tr.Count("spec.abort", 1)
					if stale {
						tr.Count("spec.abort.stale", 1)
					} else {
						tr.Count("spec.abort.predicted", 1)
					}
					tr.Count("spec.replay", 1)
				}
				routeNetLive(ctx, d, model, sites, la, lay, opts, res, tr, b.jb.net, viaCost)
				continue
			}
			commitSpecJob(ctx, model, la, lay, opts, res, tr, b)
			if traced {
				tr.Count("spec.hit", 1)
			}
		}
	}
	return nil
}

// commitSpecJob commits one accepted speculation with the live body's
// exact observable side effects: the deferred per-search tracer effort
// and memo recordings (in attempt order), the net.route event, counters,
// and on success the path commit.
func commitSpecJob(ctx context.Context, model *ctile.Model, la *lattice.Lattice, lay *layout.Layout, opts Options, res *Result, tr obs.Tracer, b *specJob) {
	traced := tr.Enabled()
	var corSt, fbSt lattice.SearchStats
	req := lattice.Request{
		Net: b.jb.net, From: b.from, To: b.to,
		FromLayer: b.fromLayer, ToLayer: b.toLayer,
		RegionMask: b.mask, ViaCost: opts.ViaCost,
		Ctx: ctx,
	}
	if traced {
		req.Stats = &corSt
	}
	la.CommitSpecSearch(req, &b.corAttempt)
	path, ok := b.corAttempt.Path, b.corAttempt.OK
	mode := "fallback"
	if ok {
		mode = "corridor"
		res.CorridorRouted++
	} else if b.fellBack {
		fbReq := lattice.Request{
			Net: b.jb.net, From: b.from, To: b.to,
			FromLayer: b.fromLayer, ToLayer: b.toLayer,
			ViaCost: opts.ViaCost,
			Ctx:     ctx,
		}
		if traced {
			fbReq.Stats = &fbSt
		}
		la.CommitSpecSearch(fbReq, &b.fbAttempt)
		path, ok = b.fbAttempt.Path, b.fbAttempt.OK
		if ok {
			res.FallbackRouted++
		}
	}
	if traced {
		corSt.NodesExpanded += fbSt.NodesExpanded
		corSt.NodesVisited += fbSt.NodesVisited
		emitNetEvent(tr, b.jb.net, "sequential", mode, b.fromLayer, path, &corSt, ok)
	}
	if !ok {
		return
	}
	commitSeqPath(model, la, lay, res, b.jb.net, path)
}
