// Chip-to-board routing with the full formulation: a package with
// inter-chip nets, chip-to-board nets (I/O pad → bump pad), mid-layer
// obstacles and pre-assigned blockage vias (the formulation's O and V_p
// sets). Routes it and writes an SVG of the result.
package main

import (
	"fmt"
	"log"
	"os"

	"rdlroute"
)

func main() {
	d, err := rdlroute.Generate(rdlroute.GenSpec{
		Name:       "boardnets-demo",
		Chips:      4,
		IOPads:     64,
		BumpPads:   144,
		WireLayers: 5,
		Seed:       7,
		BoardFrac:  0.4, // 40% of nets terminate on bump pads
		Obstacles:  8,
		FixedVias:  10,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	inter, board := 0, 0
	for ni, n := range d.Nets {
		if !res.Layout.Routed(ni) {
			continue
		}
		if n.InterChip() {
			inter++
		} else {
			board++
		}
	}
	fmt.Printf("routability %.1f%%: %d inter-chip + %d chip-to-board nets routed\n",
		res.Routability, inter, board)
	fmt.Printf("wirelength %.0f, %d vias, %v\n",
		res.Wirelength, res.Layout.ViaCount(), res.Runtime)
	if vs := rdlroute.Check(res.Layout); len(vs) != 0 {
		log.Fatalf("DRC violations: %v", vs[0])
	}
	fmt.Println("design rules clean")

	f, err := os.Create("boardnets.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rdlroute.RenderSVG(f, res.Layout, rdlroute.DefaultRenderOptions()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout written to boardnets.svg")
}
