package fanout

import (
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/mpsc"
)

func twoChip() *design.Design {
	d := &design.Design{
		Name:       "twochip",
		Outline:    geom.RectWH(0, 0, 1200, 800),
		WireLayers: 2,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips: []design.Chip{
			{Name: "a", Box: geom.RectWH(100, 250, 300, 300)},
			{Name: "b", Box: geom.RectWH(800, 250, 300, 300)},
		},
	}
	// Peripheral pads on the facing edges.
	for i := 0; i < 4; i++ {
		d.IOPads = append(d.IOPads, design.IOPad{
			ID: i, Chip: 0, Center: geom.Pt(390, int64(300+60*i)), HalfW: 8,
		})
	}
	for i := 0; i < 4; i++ {
		d.IOPads = append(d.IOPads, design.IOPad{
			ID: 4 + i, Chip: 1, Center: geom.Pt(810, int64(300+60*i)), HalfW: 8,
		})
	}
	// One deep interior pad that must not be peripheral.
	d.IOPads = append(d.IOPads, design.IOPad{ID: 8, Chip: 0, Center: geom.Pt(250, 400), HalfW: 8})
	d.IOPads = append(d.IOPads, design.IOPad{ID: 9, Chip: 1, Center: geom.Pt(950, 400), HalfW: 8})
	for i := 0; i < 4; i++ {
		d.Nets = append(d.Nets, design.Net{
			ID: i,
			P1: design.PadRef{Kind: design.IOKind, Index: i},
			P2: design.PadRef{Kind: design.IOKind, Index: 4 + i},
		})
	}
	d.Nets = append(d.Nets, design.Net{
		ID: 4,
		P1: design.PadRef{Kind: design.IOKind, Index: 8},
		P2: design.PadRef{Kind: design.IOKind, Index: 9},
	})
	return d
}

func TestPartitionCoversFanOut(t *testing.T) {
	d := twoChip()
	grids := partitionFanOut(d)
	if len(grids) == 0 {
		t.Fatal("no grids")
	}
	var area int64
	for i, g := range grids {
		if g.Box.Empty() {
			t.Errorf("grid %d empty", i)
		}
		area += g.Box.Area()
		for _, c := range d.Chips {
			if g.Box.Overlaps(c.Box) {
				t.Errorf("grid %d overlaps chip", i)
			}
		}
		for j := i + 1; j < len(grids); j++ {
			if g.Box.Overlaps(grids[j].Box) {
				t.Errorf("grids %d and %d overlap", i, j)
			}
		}
	}
	want := d.Outline.Area()
	for _, c := range d.Chips {
		want -= c.Box.Area()
	}
	if area != want {
		t.Errorf("fan-out area = %d, want %d", area, want)
	}
}

func TestPeripheralIdentification(t *testing.T) {
	d := twoChip()
	a, err := Analyze(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pads 0..7 are peripheral; 8 and 9 are interior.
	for i := 0; i < 8; i++ {
		ap, ok := a.Access[i]
		if !ok {
			t.Errorf("pad %d should be peripheral", i)
			continue
		}
		// Access point must lie on the chip boundary.
		chip := d.Chips[d.IOPads[i].Chip].Box
		onBoundary := ap.Point.X == chip.X0 || ap.Point.X == chip.X1 ||
			ap.Point.Y == chip.Y0 || ap.Point.Y == chip.Y1
		if !onBoundary {
			t.Errorf("pad %d access point %v not on chip boundary", i, ap.Point)
		}
		if ap.Grid < 0 || ap.Grid >= len(a.Grids) {
			t.Errorf("pad %d has bad grid %d", i, ap.Grid)
		}
	}
	if _, ok := a.Access[8]; ok {
		t.Error("interior pad 8 must not be peripheral")
	}
	if _, ok := a.Access[9]; ok {
		t.Error("interior pad 9 must not be peripheral")
	}
}

func TestCandidatesAndCircle(t *testing.T) {
	d := twoChip()
	a, err := Analyze(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Nets 0..3 are candidates; net 4 (interior pads) is not.
	if len(a.Candidates) != 4 {
		t.Fatalf("candidates = %d, want 4", len(a.Candidates))
	}
	if a.CircleLen != 8 {
		t.Errorf("circle positions = %d, want 8", a.CircleLen)
	}
	seen := map[int]bool{}
	for _, c := range a.Candidates {
		for _, p := range []int{c.Pos1, c.Pos2} {
			if p < 0 || p >= a.CircleLen {
				t.Errorf("candidate net %d: position %d out of range", c.Net, p)
			}
			if seen[p] {
				t.Errorf("position %d reused", p)
			}
			seen[p] = true
		}
		if c.DetourRate < 1.0-1e-9 {
			t.Errorf("net %d: detour rate %v < 1", c.Net, c.DetourRate)
		}
		if len(c.Path) == 0 {
			t.Errorf("net %d: empty pre-routed path", c.Net)
		}
	}
	// Chords must satisfy the MPSC preconditions.
	chords := a.Chords(DefaultWeightParams(), nil)
	if err := mpsc.Validate(a.CircleLen, chords); err != nil {
		t.Errorf("chord model invalid: %v", err)
	}
	// The four facing parallel nets should be mutually planar: MPSC takes all.
	picked, _ := mpsc.MaxPlanarSubset(a.CircleLen, chords)
	if len(picked) != 4 {
		t.Errorf("planar subset = %d nets, want all 4", len(picked))
	}
}

func TestCongestionLowersWeight(t *testing.T) {
	// Pads on the chips' outer edges force multi-grid pre-routed paths, so
	// congestion has tree edges to accumulate on.
	d := twoChip()
	for i := 0; i < 4; i++ {
		d.IOPads[i].Center = geom.Pt(110, int64(300+60*i))    // chip a west edge
		d.IOPads[4+i].Center = geom.Pt(1090, int64(300+60*i)) // chip b east edge
	}
	a, err := Analyze(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultWeightParams()
	base := a.Chords(p, nil)
	// Saturate congestion by shrinking the track capacity to near zero:
	// re-analyze with a huge pitch so every border carries ~0 tracks.
	cfg := DefaultConfig()
	cfg.TrackPitch = 1 << 40
	a2, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	congested := a2.Chords(p, nil)
	if len(base) != len(congested) {
		t.Fatalf("chord count changed: %d vs %d", len(base), len(congested))
	}
	for i := range base {
		if congested[i].W >= base[i].W {
			t.Errorf("chord %d: congestion did not lower weight (%v -> %v)",
				i, base[i].W, congested[i].W)
		}
	}
}

func TestRecomputeCongestionSkip(t *testing.T) {
	d := twoChip()
	a, err := Analyze(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, len(a.Candidates))
	for i, c := range a.Candidates {
		before[i] = c.FAvg
	}
	// Skipping all nets leaves zero demand everywhere.
	skip := map[int]bool{}
	for i := range a.Candidates {
		skip[i] = true
	}
	a.RecomputeCongestion(skip)
	for i, c := range a.Candidates {
		if c.FMax != 0 || c.FAvg != 0 {
			t.Errorf("candidate %d: overflow nonzero with no demand (was %v)", i, before[i])
		}
	}
}

func TestAnalyzeDenseSuite(t *testing.T) {
	for _, spec := range design.DenseSuite() {
		d, err := design.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(d, DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(a.Candidates) == 0 {
			t.Errorf("%s: no concurrent-routing candidates", spec.Name)
		}
		chords := a.Chords(DefaultWeightParams(), nil)
		if err := mpsc.Validate(a.CircleLen, chords); err != nil {
			t.Errorf("%s: chords invalid: %v", spec.Name, err)
		}
		// A nontrivial fraction of candidates should be concurrently routable.
		picked, _ := mpsc.MaxPlanarSubset(a.CircleLen, chords)
		if len(picked) == 0 {
			t.Errorf("%s: MPSC picked nothing from %d candidates", spec.Name, len(chords))
		}
		t.Logf("%s: %d grids, %d candidates, MPSC picks %d on layer 1",
			spec.Name, len(a.Grids), len(a.Candidates), len(picked))
	}
}
