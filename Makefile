GO ?= go

.PHONY: build test verify verify-short bench fmt

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

# Stricter local gate: build + vet + full suite under the race detector.
verify:
	sh scripts/verify.sh

# Quick race pass (skips the dense benchmarks and randomized sweeps).
verify-short:
	sh scripts/verify.sh -short

bench:
	$(GO) run ./cmd/rdlbench -all -quick

fmt:
	gofmt -w $$($(GO) list -f '{{.Dir}}' ./...)
