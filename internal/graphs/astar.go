package graphs

// AStar runs an A* search over an implicit graph whose states are dense
// integer ids in [0, n). The router's tile graph changes after every routed
// net, so the search takes the expansion as a callback rather than owning
// a graph structure.
//
//   - starts: initial states with their initial path costs.
//   - isGoal: goal predicate.
//   - expand: calls emit(next, edgeCost) for each successor of a state.
//   - h: admissible heuristic (pass nil for Dijkstra behavior).
//
// It returns the goal-terminated state path and its cost, or ok=false when
// no goal is reachable.
func AStar(
	n int,
	starts []StartState,
	isGoal func(int) bool,
	expand func(state int, emit func(next int, cost float64)),
	h func(int) float64,
) (path []int, cost float64, ok bool) {
	if h == nil {
		h = func(int) float64 { return 0 }
	}
	const inf = 1e300
	dist := make([]float64, n)
	prev := make([]int, n)
	closed := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	open := &floatHeap{}
	for _, s := range starts {
		if s.Cost < dist[s.State] {
			dist[s.State] = s.Cost
			open.push(s.Cost+h(s.State), s.State)
		}
	}
	for open.len() > 0 {
		_, u := open.pop()
		if closed[u] {
			continue
		}
		closed[u] = true
		if isGoal(u) {
			var rev []int
			for x := u; x != -1; x = prev[x] {
				rev = append(rev, x)
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, dist[u], true
		}
		expand(u, func(v int, c float64) {
			if c < 0 {
				c = 0
			}
			if nd := dist[u] + c; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				open.push(nd+h(v), v)
			}
		})
	}
	return nil, 0, false
}

// StartState is an A* source state with an initial cost.
type StartState struct {
	State int
	Cost  float64
}
