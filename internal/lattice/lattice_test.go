package lattice

import (
	"math"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// bare returns a small empty design: 600×600, 2 wire layers, no shapes.
func bare(layers int) *design.Design {
	return &design.Design{
		Name:       "bare",
		Outline:    geom.RectWH(0, 0, 600, 600),
		WireLayers: layers,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
	}
}

func mustNew(t *testing.T, d *design.Design) *Lattice {
	t.Helper()
	la, err := New(d, 12)
	if err != nil {
		t.Fatal(err)
	}
	return la
}

func TestNodeAtSnap(t *testing.T) {
	la := mustNew(t, bare(1))
	if _, _, ok := la.NodeAt(geom.Pt(24, 36)); !ok {
		t.Error("on-lattice point rejected")
	}
	if _, _, ok := la.NodeAt(geom.Pt(25, 36)); ok {
		t.Error("off-lattice point accepted")
	}
	i, j := la.Snap(geom.Pt(29, 31))
	if p := la.NodePoint(i, j); !p.Eq(geom.Pt(24, 36)) {
		t.Errorf("snap = %v", p)
	}
}

func TestPitchValidation(t *testing.T) {
	if _, err := New(bare(1), 8); err == nil {
		t.Error("pitch below wire pitch accepted")
	}
}

func TestStraightRoute(t *testing.T) {
	la := mustNew(t, bare(1))
	path, cost, ok := la.Route(Request{
		Net: 0, From: geom.Pt(48, 300), To: geom.Pt(480, 300),
	})
	if !ok {
		t.Fatal("no route")
	}
	if math.Abs(cost-432) > 1e-9 {
		t.Errorf("cost = %v, want 432", cost)
	}
	if len(path) != 2 {
		t.Errorf("straight route should merge to 2 steps, got %v", path)
	}
}

func TestDiagonalRouteUsesX(t *testing.T) {
	la := mustNew(t, bare(1))
	_, cost, ok := la.Route(Request{
		Net: 0, From: geom.Pt(48, 48), To: geom.Pt(240, 240),
	})
	if !ok {
		t.Fatal("no route")
	}
	want := 192 * geom.Sqrt2
	if math.Abs(cost-want) > 1e-6 {
		t.Errorf("diagonal cost = %v, want %v", cost, want)
	}
}

func TestRouteAvoidsObstacle(t *testing.T) {
	d := bare(1)
	// Wall across the middle with a gap at the top.
	d.Obstacles = append(d.Obstacles, design.Obstacle{
		Layer: 0, Box: geom.RectWH(294, 0, 12, 480),
	})
	la := mustNew(t, d)
	path, cost, ok := la.Route(Request{
		Net: 0, From: geom.Pt(48, 60), To: geom.Pt(552, 60),
	})
	if !ok {
		t.Fatal("no route around obstacle")
	}
	if cost <= 504 {
		t.Errorf("cost %v should exceed the direct distance", cost)
	}
	for k := 0; k+1 < len(path); k++ {
		seg := geom.Seg(path[k].Pt, path[k+1].Pt)
		obs := geom.PolyFromRect(d.Obstacles[0].Box)
		wire := geom.PolyFromSegment(seg, float64(d.Rules.WireWidth)/2)
		if dd := obs.Dist(wire); dd < float64(d.Rules.Spacing) {
			t.Errorf("segment %v too close to obstacle: %v", seg, dd)
		}
	}
}

func TestTwoNetSpacing(t *testing.T) {
	la := mustNew(t, bare(1))
	p1, _, ok := la.Route(Request{Net: 0, From: geom.Pt(48, 120), To: geom.Pt(552, 120)})
	if !ok {
		t.Fatal("net 0 failed")
	}
	la.Commit(p1, 0)
	// Net 1 wants the same track: it must shift at least one pitch away.
	p2, _, ok := la.Route(Request{Net: 1, From: geom.Pt(48, 132), To: geom.Pt(552, 132)})
	if !ok {
		t.Fatal("net 1 failed")
	}
	la.Commit(p2, 1)
	minD := math.Inf(1)
	for a := 0; a+1 < len(p1); a++ {
		s1 := geom.Seg(p1[a].Pt, p1[a+1].Pt)
		for b := 0; b+1 < len(p2); b++ {
			s2 := geom.Seg(p2[b].Pt, p2[b+1].Pt)
			minD = math.Min(minD, geom.SegSegDist(s1, s2))
		}
	}
	wirePitch := float64(la.D.Rules.WireWidth + la.D.Rules.Spacing)
	if minD < wirePitch {
		t.Errorf("centerline separation %v < %v", minD, wirePitch)
	}
}

func TestForeignWireBlocks(t *testing.T) {
	la := mustNew(t, bare(1))
	// Net 0 builds a full-height wall.
	p1, _, ok := la.Route(Request{Net: 0, From: geom.Pt(300, 0), To: geom.Pt(300, 600)})
	if !ok {
		t.Fatal("wall route failed")
	}
	la.Commit(p1, 0)
	// Net 1 cannot cross on the same (only) layer.
	if _, _, ok := la.Route(Request{Net: 1, From: geom.Pt(48, 300), To: geom.Pt(552, 300)}); ok {
		t.Error("crossing route should be impossible on one layer")
	}
}

func TestViaEscapesBlockage(t *testing.T) {
	d := bare(2)
	la := mustNew(t, d)
	// Net 0 wall on layer 0.
	p1, _, ok := la.Route(Request{
		Net: 0, From: geom.Pt(300, 0), To: geom.Pt(300, 600),
		LayerMask: []bool{true, false},
	})
	if !ok {
		t.Fatal("wall route failed")
	}
	la.Commit(p1, 0)
	// Net 1 crosses using layer 1 via a pair of vias.
	p2, _, ok := la.Route(Request{Net: 1, From: geom.Pt(48, 300), To: geom.Pt(552, 300)})
	if !ok {
		t.Fatal("via-assisted crossing failed")
	}
	vias := 0
	for k := 0; k+1 < len(p2); k++ {
		if p2[k].Layer != p2[k+1].Layer {
			vias++
		}
	}
	if vias < 2 {
		t.Errorf("expected at least 2 vias, got %d (path %v)", vias, p2)
	}
}

func TestTurnLegality(t *testing.T) {
	// Every pair of consecutive segments in any routed path must be a
	// legal joint (no 45° interior angles, no U-turns). Two layers, since
	// the three nets mutually cross.
	d := bare(2)
	d.Obstacles = append(d.Obstacles,
		design.Obstacle{Layer: 0, Box: geom.RectWH(120, 120, 120, 60)},
		design.Obstacle{Layer: 0, Box: geom.RectWH(360, 240, 60, 180)},
		design.Obstacle{Layer: 0, Box: geom.RectWH(120, 360, 240, 36)},
	)
	la := mustNew(t, d)
	terms := [][2]geom.Point{
		{geom.Pt(48, 48), geom.Pt(552, 552)},
		{geom.Pt(48, 552), geom.Pt(552, 48)},
		{geom.Pt(48, 300), geom.Pt(552, 312)},
	}
	for net, tt := range terms {
		path, _, ok := la.Route(Request{Net: net, From: tt[0], To: tt[1]})
		if !ok {
			t.Fatalf("net %d unroutable", net)
		}
		la.Commit(path, net)
		for k := 0; k+2 < len(path); k++ {
			if path[k].Layer != path[k+1].Layer || path[k+1].Layer != path[k+2].Layer {
				continue
			}
			s1 := geom.Seg(path[k].Pt, path[k+1].Pt)
			s2 := geom.Seg(path[k+1].Pt, path[k+2].Pt)
			if !geom.DirTurnOK(s1.Dir(), s2.Dir()) {
				t.Errorf("net %d: illegal turn at %v", net, path[k+1].Pt)
			}
			if !s1.Octilinear() || !s2.Octilinear() {
				t.Errorf("net %d: non-octilinear segment", net)
			}
		}
	}
}

func TestRegionRestriction(t *testing.T) {
	la := mustNew(t, bare(1))
	// Restrict to the bottom half; a route whose straight line is inside
	// stays inside.
	region := func(_ int, p geom.Point) bool { return p.Y <= 300 }
	path, _, ok := la.Route(Request{
		Net: 0, From: geom.Pt(48, 240), To: geom.Pt(552, 240), Region: region,
	})
	if !ok {
		t.Fatal("in-region route failed")
	}
	for _, st := range path {
		if st.Pt.Y > 300 {
			t.Errorf("path escapes region at %v", st.Pt)
		}
	}
}

func TestPadOwnership(t *testing.T) {
	d := bare(1)
	d.Chips = []design.Chip{{Name: "c", Box: geom.RectWH(0, 0, 600, 600)}}
	d.IOPads = []design.IOPad{
		{ID: 0, Chip: 0, Center: geom.Pt(120, 300), HalfW: 8},
		{ID: 1, Chip: 0, Center: geom.Pt(480, 300), HalfW: 8},
		{ID: 2, Chip: 0, Center: geom.Pt(300, 300), HalfW: 8}, // foreign pad in the way
	}
	d.Nets = []design.Net{{
		ID: 0,
		P1: design.PadRef{Kind: design.IOKind, Index: 0},
		P2: design.PadRef{Kind: design.IOKind, Index: 1},
	}}
	la := mustNew(t, d)
	path, _, ok := la.Route(Request{Net: 0, From: geom.Pt(120, 300), To: geom.Pt(480, 300)})
	if !ok {
		t.Fatal("route between own pads failed")
	}
	// The path must detour around the foreign pad at (300,300).
	for k := 0; k+1 < len(path); k++ {
		seg := geom.Seg(path[k].Pt, path[k+1].Pt)
		pad := geom.PolyFromRect(d.IOPads[2].Box())
		wire := geom.PolyFromSegment(seg, float64(d.Rules.WireWidth)/2)
		if dd := pad.Dist(wire); dd < float64(d.Rules.Spacing) {
			t.Errorf("wire too close to foreign pad: %v", dd)
		}
	}
}

func TestStackFreeAndCommit(t *testing.T) {
	d := bare(3)
	la := mustNew(t, d)
	p := geom.Pt(300, 300)
	if !la.StackFree(p, 0, 2, 0) {
		t.Fatal("stack should be free on empty lattice")
	}
	la.CommitStack(p, 0, 2, 0)
	// A foreign stack too close must be rejected.
	if la.StackFree(geom.Pt(312, 300), 0, 2, 1) {
		t.Error("foreign stack 12 away should be blocked (via spacing 21)")
	}
	if !la.StackFree(geom.Pt(324, 300), 0, 2, 1) {
		t.Error("foreign stack 24 away should be legal")
	}
	// The same net may land wires on its own stack node.
	i, j, _ := la.NodeAt(p)
	if !la.WireFree(0, i, j, 0) {
		t.Error("own stack node should stay wire-passable for the owner")
	}
	if la.WireFree(0, i, j, 1) {
		t.Error("foreign net must not wire over the stack")
	}
}

func TestUnroutableReportsFalse(t *testing.T) {
	d := bare(1)
	d.Obstacles = append(d.Obstacles, design.Obstacle{
		Layer: 0, Box: geom.RectWH(294, 0, 12, 601),
	})
	la := mustNew(t, d)
	if _, _, ok := la.Route(Request{Net: 0, From: geom.Pt(48, 300), To: geom.Pt(552, 300)}); ok {
		t.Error("fully walled route should fail")
	}
}

func TestMaxCostAborts(t *testing.T) {
	la := mustNew(t, bare(1))
	_, _, ok := la.Route(Request{
		Net: 0, From: geom.Pt(48, 48), To: geom.Pt(552, 552), MaxCost: 10,
	})
	if ok {
		t.Error("route should abort under tiny MaxCost")
	}
}

func TestGhostSearchAndOwners(t *testing.T) {
	la := mustNew(t, bare(1))
	// Net 0 wall.
	p0, _, ok := la.Route(Request{Net: 0, From: geom.Pt(300, 0), To: geom.Pt(300, 600)})
	if !ok {
		t.Fatal("wall failed")
	}
	la.Commit(p0, 0)
	// Normal search for net 1 fails; ghost search succeeds and names net 0.
	req := Request{Net: 1, From: geom.Pt(48, 300), To: geom.Pt(552, 300)}
	if _, _, ok := la.Route(req); ok {
		t.Fatal("normal search should fail through the wall")
	}
	req.IgnoreForeign = true
	ghost, _, ok := la.Route(req)
	if !ok {
		t.Fatal("ghost search should pass through foreign claims")
	}
	owners := la.OwnersOnPath(ghost, 1)
	if len(owners) != 1 || owners[0] != 0 {
		t.Errorf("owners = %v, want [0]", owners)
	}
	// Ghost search must still respect hard blockages.
	d2 := bare(1)
	d2.Obstacles = append(d2.Obstacles, design.Obstacle{Layer: 0, Box: geom.RectWH(294, 0, 12, 601)})
	la2 := mustNew(t, d2)
	if _, _, ok := la2.Route(Request{
		Net: 1, From: geom.Pt(48, 300), To: geom.Pt(552, 300), IgnoreForeign: true,
	}); ok {
		t.Error("ghost search must not pass hard obstacles")
	}
}

func TestOwnersOnMergedSegments(t *testing.T) {
	// OwnersOnPath must walk merged collinear runs node by node: a foreign
	// wire claims only the middle of a long straight ghost path.
	la := mustNew(t, bare(1))
	short, _, ok := la.Route(Request{Net: 0, From: geom.Pt(300, 288), To: geom.Pt(300, 312)})
	if !ok {
		t.Fatal("short wall failed")
	}
	la.Commit(short, 0)
	ghost, _, ok := la.Route(Request{
		Net: 1, From: geom.Pt(48, 300), To: geom.Pt(552, 300), IgnoreForeign: true,
	})
	if !ok {
		t.Fatal("ghost failed")
	}
	owners := la.OwnersOnPath(ghost, 1)
	if len(owners) != 1 || owners[0] != 0 {
		t.Errorf("owners = %v, want [0]", owners)
	}
}
