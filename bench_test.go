package rdlroute_test

// One benchmark per table/figure of the paper's evaluation section, backed
// by internal/bench. Regenerate everything with:
//
//	go test -bench . -benchmem
//
// Table I rows additionally report routability and wirelength as custom
// benchmark metrics so the harness output mirrors the paper's table.

import (
	"testing"

	"rdlroute"
	"rdlroute/internal/bench"
	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

var denseNames = []string{"dense1", "dense2", "dense3", "dense4", "dense5"}

// BenchmarkTable1Ours regenerates the "Ours" columns of Table I.
func BenchmarkTable1Ours(b *testing.B) {
	for _, name := range denseNames {
		b.Run(name, func(b *testing.B) {
			spec, err := design.DenseSpec(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				d, err := design.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				res, err := router.Route(d, router.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Routability, "routability%")
				b.ReportMetric(res.Wirelength, "wirelength")
			}
		})
	}
}

// BenchmarkTable1LinExt regenerates the "Lin-ext" columns of Table I.
func BenchmarkTable1LinExt(b *testing.B) {
	for _, name := range denseNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := rdlroute.GenerateBenchmark(name)
				if err != nil {
					b.Fatal(err)
				}
				res, err := rdlroute.RouteLinExt(d, rdlroute.DefaultBaselineOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Routability, "routability%")
				b.ReportMetric(res.Wirelength, "wirelength")
			}
		})
	}
}

// BenchmarkFig2LayerCount regenerates the Figure 2 experiment: minimum RDL
// count for the entangled three-net pattern (ours 2, Lin-ext 3).
func BenchmarkFig2LayerCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.OursMinLayers), "ours-layers")
		b.ReportMetric(float64(res.LinMinLayers), "linext-layers")
	}
}

// BenchmarkFig5WeightedMPSC regenerates the Figure 5 experiment: nets
// surviving detailed routing under unweighted vs Eq.(2)-weighted MPSC.
func BenchmarkFig5WeightedMPSC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.RunFig5()
		b.ReportMetric(float64(res.UnweightedSurvive), "unweighted-routed")
		b.ReportMetric(float64(res.WeightedSurvive), "weighted-routed")
	}
}

// BenchmarkFig7LPOpt regenerates the Figure 7 experiment: wirelength
// before vs after LP-based layout optimization on dense1.
func BenchmarkFig7LPOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig7([]string{"dense1"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Before, "wl-before")
		b.ReportMetric(rows[0].After, "wl-after")
		b.ReportMetric(rows[0].Reduction, "reduction%")
	}
}

// BenchmarkAblationWeights compares weighted vs unweighted MPSC (paper's
// Section IV analysis of the weighted layer assignment).
func BenchmarkAblationWeights(b *testing.B) {
	benchAblation(b, "unweighted-mpsc")
}

// BenchmarkAblationNoLP disables stage 5 (LP optimization's contribution).
func BenchmarkAblationNoLP(b *testing.B) {
	benchAblation(b, "no-lp")
}

// BenchmarkAblationNoVias disables stage-3 via insertion (the 3D routing
// graph's contribution).
func BenchmarkAblationNoVias(b *testing.B) {
	benchAblation(b, "no-via-insertion")
}

func benchAblation(b *testing.B, config string) {
	var mut func(*router.Options)
	for _, ab := range bench.Ablations() {
		if ab.Label == config {
			mut = ab.Mut
		}
	}
	if mut == nil {
		b.Fatalf("unknown ablation %q", config)
	}
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		d, err := design.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		opts := router.DefaultOptions()
		mut(&opts)
		res, err := router.Route(d, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Routability, "routability%")
		b.ReportMetric(res.Wirelength, "wirelength")
	}
}

// BenchmarkLPIterations verifies the Section III-E-4 convergence claim:
// the iterative LP solving stays within ~50 iterations.
func BenchmarkLPIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunLPIters([]string{"dense1"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Iterations), "lp-iterations")
	}
}

// BenchmarkGraphSize measures the octagonal-tile routing graph size
// against an equivalent uniform-lattice node count (the tile model's
// resource-integration argument).
func BenchmarkGraphSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunGraphSize([]string{"dense1"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].TileNodes), "tile-nodes")
		b.ReportMetric(float64(rows[0].GridNodes), "grid-nodes")
		b.ReportMetric(rows[0].Ratio, "ratio")
	}
}
