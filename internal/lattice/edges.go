package lattice

import (
	"rdlroute/internal/geom"
)

// Edge-occupancy guard.
//
// Node marks (markDisk) guarantee clearance at lattice nodes, but the wire
// SEGMENT between two clear nodes can pass closer to a foreign shape than
// either endpoint does: the distance from a convex shape to a straight
// segment is convex along the segment, so its minimum may fall strictly
// between the nodes (corner cutting). On the standard grid (pitch 12, wire
// width 4) a 45° wire between two nodes that both clear a rectangle corner
// by 12 dips to 12/√2 ≈ 8.49 from it — clean at spacing 5 or 6, a real
// spacing violation at spacing 8. The same mechanism applies near wire
// elbows and via pads once spacing grows past the node-quantization slack.
//
// The guard closes the gap exactly: every marked shape, wire and via also
// claims the cell EDGES (the four swept segments a wire move can occupy:
// E, N and the two cell diagonals) whose wire polygon would violate DRC
// spacing against the item's polygon — the identical polygons and strict
// `dist < spacing` predicate the checker uses, so an edge is forbidden iff
// committing wire along it would produce a spacing/crossing violation.
// Ownership semantics mirror node marks: a net may use edges claimed only
// by itself; conflicting claims collapse to hard.
const (
	edgeE  = 0 // node(i,j) → node(i+1,j)
	edgeN  = 1 // node(i,j) → node(i,j+1)
	edgeNE = 2 // node(i,j) → node(i+1,j+1)
	edgeNW = 3 // node(i+1,j) → node(i,j+1)
)

// edgeSeg returns the swept segment of edge kind at cell (i, j).
func (la *Lattice) edgeSeg(kind, i, j int) geom.Segment {
	a := la.NodePoint(i, j)
	switch kind {
	case edgeE:
		return geom.Seg(a, la.NodePoint(i+1, j))
	case edgeN:
		return geom.Seg(a, la.NodePoint(i, j+1))
	case edgeNE:
		return geom.Seg(a, la.NodePoint(i+1, j+1))
	default: // edgeNW
		return geom.Seg(la.NodePoint(i+1, j), la.NodePoint(i, j+1))
	}
}

// ensureEdgeOcc allocates the edge-occupancy slabs on first use; lattices
// whose designs never produce an edge mark skip the allocation and the
// search's edge probe stays on its nil fast path.
func (la *Lattice) ensureEdgeOcc() {
	if la.edgeOcc[0] != nil {
		return
	}
	n := la.Layers * la.NX * la.NY
	for k := range la.edgeOcc {
		la.edgeOcc[k] = make([]int32, n)
	}
}

// markEdgesPoly claims every cell edge whose wire polygon would violate
// spacing against the item polygon (DRC's own predicate: strict <). bbox
// is the item's bounding box, used to window the scan.
func (la *Lattice) markEdgesPoly(layer int, poly geom.ConvexPoly, bbox geom.Rect, owner int32) {
	if len(poly) == 0 {
		return
	}
	s := float64(la.D.Rules.Spacing)
	halfW := float64(la.D.Rules.WireWidth) / 2
	// An edge can violate only when its centerline is within s+halfW of the
	// item; edges extend one pitch beyond their base cell.
	margin := int64(s+halfW) + 1
	i0 := int((bbox.X0 - margin - la.X0) / la.Pitch)
	i1 := int((bbox.X1+margin-la.X0)/la.Pitch) + 1
	j0 := int((bbox.Y0 - margin - la.Y0) / la.Pitch)
	j1 := int((bbox.Y1+margin-la.Y0)/la.Pitch) + 1
	i0, j0 = maxInt(i0-1, 0), maxInt(j0-1, 0)
	i1, j1 = minInt(i1, la.NX-1), minInt(j1, la.NY-1)
	// Bounding-box fast reject: the edge polygon lives within halfW of the
	// edge's own bbox, so a bbox gap of s+halfW or more cannot violate.
	px0, py0, px1, py1 := poly.BBoxF()
	reject := s + halfW
	n := la.NX * la.NY
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			base := la.NodePoint(i, j)
			for kind := 0; kind < 4; kind++ {
				var ei, ej int
				switch kind {
				case edgeE:
					ei, ej = i+1, j
				case edgeN:
					ei, ej = i, j+1
				default:
					ei, ej = i+1, j+1
				}
				if ei >= la.NX || ej >= la.NY {
					continue
				}
				// Edge bbox: base node to base+pitch on the axes the kind
				// spans (edgeNW spans both, shifted to the same cell box).
				ex0, ey0 := float64(base.X), float64(base.Y)
				ex1, ey1 := ex0, ey0
				if kind != edgeN {
					ex1 += float64(la.Pitch)
				}
				if kind != edgeE {
					ey1 += float64(la.Pitch)
				}
				if px0-ex1 >= reject || ex0-px1 >= reject ||
					py0-ey1 >= reject || ey0-py1 >= reject {
					continue
				}
				wp := geom.PolyFromSegment(la.edgeSeg(kind, i, j), halfW)
				if poly.Dist(wp) >= s {
					continue
				}
				la.ensureEdgeOcc()
				k := layer*n + la.idx(i, j)
				switch cur := la.edgeOcc[kind][k]; {
				case cur == owner:
				case cur == free:
					la.edgeOcc[kind][k] = owner
				default:
					la.edgeOcc[kind][k] = hard
				}
			}
		}
	}
}

// edgeFree reports whether net may sweep wire from node (i,j) in move
// direction nd (the index into moves). ignoreForeign mirrors the ghost
// search: only hard claims block.
func (la *Lattice) edgeFree(l, i, j, nd, net int, ignoreForeign bool) bool {
	if la.edgeOcc[0] == nil {
		return true
	}
	var kind, ci, cj int
	switch nd {
	case 0:
		kind, ci, cj = edgeE, i, j
	case 4:
		kind, ci, cj = edgeE, i-1, j
	case 2:
		kind, ci, cj = edgeN, i, j
	case 6:
		kind, ci, cj = edgeN, i, j-1
	case 1:
		kind, ci, cj = edgeNE, i, j
	case 5:
		kind, ci, cj = edgeNE, i-1, j-1
	case 3:
		kind, ci, cj = edgeNW, i-1, j
	default: // 7
		kind, ci, cj = edgeNW, i, j-1
	}
	o := la.edgeOcc[kind][l*la.NX*la.NY+cj*la.NX+ci]
	if ignoreForeign {
		return o != hard
	}
	return passableFor(o, net)
}

// edgeOwnerAt returns the raw edge claim for OwnersOnPath.
func (la *Lattice) edgeOwnerAt(l, i, j, nd int) int32 {
	if la.edgeOcc[0] == nil {
		return free
	}
	var kind, ci, cj int
	switch nd {
	case 0:
		kind, ci, cj = edgeE, i, j
	case 4:
		kind, ci, cj = edgeE, i-1, j
	case 2:
		kind, ci, cj = edgeN, i, j
	case 6:
		kind, ci, cj = edgeN, i, j-1
	case 1:
		kind, ci, cj = edgeNE, i, j
	case 5:
		kind, ci, cj = edgeNE, i-1, j-1
	case 3:
		kind, ci, cj = edgeNW, i-1, j
	default:
		kind, ci, cj = edgeNW, i, j-1
	}
	return la.edgeOcc[kind][l*la.NX*la.NY+cj*la.NX+ci]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
