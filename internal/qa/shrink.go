package qa

import (
	"rdlroute/internal/design"
)

// shrinkBudget bounds how many times the failing predicate may be
// re-evaluated during shrinking; each evaluation routes the candidate, so
// the budget keeps minimization from dominating a harness run.
const shrinkBudget = 64

// Shrink reduces a failing design to a (locally) minimal reproducer: it
// greedily removes nets with a delta-debugging sweep, then drops
// obstacles and fixed vias, and finally prunes pads no remaining net
// references — re-checking after each removal that the design still fails
// the predicate. The returned design fails the predicate (or is d itself
// when nothing could be removed).
func Shrink(d *design.Design, fails func(*design.Design) bool) *design.Design {
	budget := shrinkBudget
	try := func(c *design.Design) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return c.Validate() == nil && fails(c)
	}

	cur := cloneDesign(d)

	// Delta-debug the net list: try dropping chunks, halving the chunk
	// size until single-net granularity.
	for chunk := (len(cur.Nets) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(cur.Nets); {
			if budget <= 0 {
				break
			}
			cand := withoutNets(cur, start, chunk)
			if len(cand.Nets) > 0 && try(cand) {
				cur = cand // chunk removed; same start now names the next chunk
			} else {
				start += chunk
			}
		}
	}

	// Drop obstacles and fixed vias one at a time.
	for i := 0; i < len(cur.Obstacles) && budget > 0; {
		cand := cloneDesign(cur)
		cand.Obstacles = append(cand.Obstacles[:i:i], cand.Obstacles[i+1:]...)
		if try(cand) {
			cur = cand
		} else {
			i++
		}
	}
	for i := 0; i < len(cur.FixedVias) && budget > 0; {
		cand := cloneDesign(cur)
		cand.FixedVias = append(cand.FixedVias[:i:i], cand.FixedVias[i+1:]...)
		if try(cand) {
			cur = cand
		} else {
			i++
		}
	}

	// Prune unreferenced pads (reindexing net endpoints); keep the result
	// only if it still fails — pad removal changes blockage geometry.
	if budget > 0 {
		if cand := pruneUnusedPads(cur); try(cand) {
			cur = cand
		}
	}
	return cur
}

// withoutNets returns d minus nets [start, start+n), with IDs and
// fixed-via net references renumbered to the new positions.
func withoutNets(d *design.Design, start, n int) *design.Design {
	c := cloneDesign(d)
	end := start + n
	if end > len(c.Nets) {
		end = len(c.Nets)
	}
	inv := make([]int, len(c.Nets))
	var nets []design.Net
	for i, net := range c.Nets {
		if i >= start && i < end {
			inv[i] = -1
			continue
		}
		net.ID = len(nets)
		inv[i] = len(nets)
		nets = append(nets, net)
	}
	c.Nets = nets
	vias := c.FixedVias[:0]
	for _, v := range c.FixedVias {
		if v.Net >= 0 {
			if inv[v.Net] < 0 {
				continue // via belonged to a removed net
			}
			v.Net = inv[v.Net]
		}
		vias = append(vias, v)
	}
	c.FixedVias = vias
	return c
}

// pruneUnusedPads removes pads no net references, reindexing endpoints.
func pruneUnusedPads(d *design.Design) *design.Design {
	c := cloneDesign(d)
	usedIO := make([]bool, len(c.IOPads))
	usedBump := make([]bool, len(c.BumpPads))
	for _, n := range c.Nets {
		for _, r := range []design.PadRef{n.P1, n.P2} {
			if r.Kind == design.IOKind {
				usedIO[r.Index] = true
			} else {
				usedBump[r.Index] = true
			}
		}
	}
	ioMap := make([]int, len(c.IOPads))
	var ios []design.IOPad
	for i, p := range c.IOPads {
		if usedIO[i] {
			ioMap[i] = len(ios)
			ios = append(ios, p)
		} else {
			ioMap[i] = -1
		}
	}
	bumpMap := make([]int, len(c.BumpPads))
	var bumps []design.BumpPad
	for i, p := range c.BumpPads {
		if usedBump[i] {
			bumpMap[i] = len(bumps)
			bumps = append(bumps, p)
		} else {
			bumpMap[i] = -1
		}
	}
	c.IOPads, c.BumpPads = ios, bumps
	for i := range c.Nets {
		for _, r := range []*design.PadRef{&c.Nets[i].P1, &c.Nets[i].P2} {
			if r.Kind == design.IOKind {
				r.Index = ioMap[r.Index]
			} else {
				r.Index = bumpMap[r.Index]
			}
		}
	}
	return c
}
