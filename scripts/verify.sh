#!/bin/sh
# Full verification: build everything, vet, then the whole test suite
# under the race detector (the obs sinks advertise concurrency safety;
# -race holds them to it). Tier-1 CI is `go build ./... && go test ./...`;
# this script is the stricter local gate. Pass extra go-test flags through,
# e.g. `scripts/verify.sh -short`.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...
echo "== go vet ./... =="
go vet ./...
echo "== regression gate (lattice/router/geom) =="
# Fast fail on the targeted regression tests before the full sweep: the
# rip-up lattice threading, the int32 state-space bound, the Oct8.Center
# containment property and the T-junction connectivity union.
go test -race -run \
  'TestRipUpLatticeMatchesLayout|TestNewRejectsStateSpaceBeyondInt32|TestStateSpaceNoOverflow|TestFingerprintCommitOrderIndependent|TestCenterContainedProperty|TestCenterDegenerate|TestConnectedTJunction' \
  ./internal/lattice/ ./internal/router/ ./internal/geom/ ./internal/layout/
echo "== go test -race $* ./... =="
go test -race "$@" ./...
echo "== verify OK =="
