package bench

import (
	"strings"
	"testing"
	"time"
)

func TestRunTable1Dense1(t *testing.T) {
	rows, err := RunTable1([]string{"dense1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Stats.Q != 44 || r.Stats.N != 22 {
		t.Errorf("dense1 stats = %+v", r.Stats)
	}
	if r.OursDRC != 0 {
		t.Errorf("our flow produced %d DRC violations", r.OursDRC)
	}
	if r.LinDRC != 0 {
		t.Errorf("Lin-ext produced %d DRC violations", r.LinDRC)
	}
	// The paper's central comparison: ours ≥ Lin-ext routability.
	if r.Ours.Routability < r.Lin.Routability {
		t.Errorf("ours %.1f%% < Lin-ext %.1f%%", r.Ours.Routability, r.Lin.Routability)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "dense1") || !strings.Contains(out, "Comp.") {
		t.Errorf("table formatting:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestRunFig2(t *testing.T) {
	res, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fig2: ours min layers = %d, Lin-ext min layers = %d", res.OursMinLayers, res.LinMinLayers)
	// Paper Figure 2: flexible vias route the entangled triple in 2 RDLs;
	// the single-layer baseline needs 3.
	if res.OursMinLayers != 2 {
		t.Errorf("ours min layers = %d, want 2", res.OursMinLayers)
	}
	if res.LinMinLayers != 3 {
		t.Errorf("Lin-ext min layers = %d, want 3", res.LinMinLayers)
	}
}

func TestRunFig5(t *testing.T) {
	res := RunFig5()
	t.Logf("fig5: unweighted %d assigned / %d survive; weighted %d assigned / %d survive",
		res.UnweightedAssigned, res.UnweightedSurvive,
		res.WeightedAssigned, res.WeightedSurvive)
	// Paper Figure 5: unweighted MPSC assigns the three channel nets but
	// only one survives detailed routing; weighted MPSC assigns the two
	// local nets and both survive.
	if res.UnweightedAssigned != 3 || res.UnweightedSurvive != 1 {
		t.Errorf("unweighted = %d/%d, want 3/1", res.UnweightedAssigned, res.UnweightedSurvive)
	}
	if res.WeightedAssigned != 2 || res.WeightedSurvive != 2 {
		t.Errorf("weighted = %d/%d, want 2/2", res.WeightedAssigned, res.WeightedSurvive)
	}
}

func TestRunFig7Dense1(t *testing.T) {
	rows, err := RunFig7([]string{"dense1"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("fig7 dense1: %.0f -> %.0f (%.2f%%), %d iterations", r.Before, r.After, r.Reduction, r.Iterations)
	if r.After > r.Before {
		t.Errorf("LP increased wirelength: %.0f -> %.0f", r.Before, r.After)
	}
	if r.Reduction < 0 {
		t.Errorf("negative reduction %v", r.Reduction)
	}
}

func TestRunLPItersBounded(t *testing.T) {
	rows, err := RunLPIters([]string{"dense1"})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Iterations > 50 {
		t.Errorf("LP iterations = %d, paper bound is ~50", rows[0].Iterations)
	}
}

func TestRunAblationsDense1(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations in -short mode")
	}
	rows, err := RunAblations([]string{"dense1"})
	if err != nil {
		t.Fatal(err)
	}
	var full AblationRow
	for _, r := range rows {
		t.Logf("%-18s r=%.1f%% wl=%.0f conc=%d drc=%d t=%.2fs",
			r.Config, r.Routability, r.Wirelength, r.Concurrent, r.DRC, r.Seconds)
		if r.DRC != 0 {
			t.Errorf("%s: %d DRC violations", r.Config, r.DRC)
		}
		if r.Config == "full" {
			full = r
		}
	}
	for _, r := range rows {
		if r.Config == "no-concurrent" && r.Concurrent != 0 {
			t.Errorf("no-concurrent ablation still routed %d nets concurrently", r.Concurrent)
		}
		if r.Config == "unweighted-mpsc" && full.Routability < r.Routability-20 {
			t.Errorf("weighted flow dramatically worse than unweighted: %v vs %v",
				full.Routability, r.Routability)
		}
	}
}

func TestRunGraphSize(t *testing.T) {
	rows, err := RunGraphSize([]string{"dense1"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("graph size: %d tiles vs %d grid nodes (ratio %.3f)", r.TileNodes, r.GridNodes, r.Ratio)
	if r.TileNodes <= 0 || r.GridNodes <= 0 {
		t.Fatal("empty graph sizes")
	}
	// The tile model's point: far fewer nodes than a uniform fine grid.
	if r.Ratio >= 0.5 {
		t.Errorf("tile graph not compact: ratio %.3f", r.Ratio)
	}
}

func TestRunTable1Timeout(t *testing.T) {
	Timeout = time.Millisecond
	defer func() { Timeout = 0 }()
	rows, err := RunTable1([]string{"dense1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("timed-out circuit was dropped: rows = %d", len(rows))
	}
	r := rows[0]
	if r.Status != "timeout" || r.Ours != nil || r.Lin != nil {
		t.Fatalf("row = %+v, want status timeout with nil results", r)
	}
	j := r.JSON()
	if j.Status != "timeout" || j.Circuit != "dense1" {
		t.Fatalf("json row = %+v", j)
	}
	if out := FormatTable1(rows); !strings.Contains(out, "timeout") {
		t.Fatalf("formatted table lacks timeout marker:\n%s", out)
	}
}
