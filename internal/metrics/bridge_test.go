package metrics

import (
	"bytes"
	"testing"
	"time"

	"rdlroute/internal/obs"
)

// TestBridgeIsTracer: the bridge satisfies obs.Tracer and maps every
// primitive onto the documented series.
func TestBridgeIsTracer(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	var tr obs.Tracer = b // compile-time interface check

	if !tr.Enabled() {
		t.Fatal("bridge must report Enabled")
	}
	tr.Count("astar.searches", 3)
	tr.Count("astar.searches", 2)
	tr.Observe("astar.expanded", 120)
	tr.Event("net.route", obs.Int("net", 1))
	tr.Event("net.route")
	sp := tr.Span("stage:sequential")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Span("corridor.build").End()

	fams, err := ParseText(bytes.NewReader(reg.Expose()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s, ok := fams["rdl_astar_searches_total"].Sample(nil); !ok || s.Value != 5 {
		t.Errorf("rdl_astar_searches_total = %+v, want 5", s)
	}
	exp := fams["rdl_astar_expanded"]
	if exp == nil || exp.Kind != KindHistogram {
		t.Fatalf("rdl_astar_expanded missing or not a histogram: %+v", exp)
	}
	ev, ok := fams["rdl_events_total"].Sample(map[string]string{"event": "net.route"})
	if !ok || ev.Value != 2 {
		t.Errorf("rdl_events_total{net.route} = %+v, want 2", ev)
	}
	st := fams["rdl_stage_duration_seconds"]
	if st == nil {
		t.Fatal("rdl_stage_duration_seconds missing")
	}
	if _, ok := st.Sample(map[string]string{"stage": "sequential"}); !ok {
		t.Fatal("stage=sequential series missing")
	}
	var stageCount float64
	for _, s := range st.Samples {
		if s.Name == "rdl_stage_duration_seconds_count" && s.Labels["stage"] == "sequential" {
			stageCount = s.Value
		}
	}
	if stageCount != 1 {
		t.Errorf("stage histogram count = %v, want 1", stageCount)
	}
	if _, ok := fams["rdl_span_duration_seconds"].Sample(map[string]string{"span": "corridor_build"}); !ok {
		t.Errorf("non-stage span series missing")
	}
}

// TestBridgeThroughStage: obs.Stage wraps the bridge like any tracer and
// the pprof-labeled stage span lands in the stage histogram.
func TestBridgeThroughStage(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	end := obs.Stage(b, "preprocess", obs.String("design", "dense1"))
	end()
	fams, err := ParseText(bytes.NewReader(reg.Expose()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := fams["rdl_stage_duration_seconds"].Sample(map[string]string{"stage": "preprocess"}); !ok {
		t.Errorf("stage=preprocess series missing after obs.Stage")
	}
}

// TestSanitize pins the obs→exposition name mapping.
func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"astar.searches": "astar_searches",
		"net-route":      "net_route",
		"3rd":            "_3rd",
		"ok_name":        "ok_name",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestBridgeInMulti: the bridge composes with the collector under
// obs.Multi, the shape serve uses per job.
func TestBridgeInMulti(t *testing.T) {
	reg := NewRegistry()
	b := NewBridge(reg)
	coll := obs.NewCollector()
	tr := obs.Multi(coll, b)
	tr.Count("mpsc.chords_picked", 4)
	if got := coll.Counter("mpsc.chords_picked"); got != 4 {
		t.Errorf("collector counter = %d, want 4", got)
	}
	if got := reg.Counter("rdl_mpsc_chords_picked_total", "").Value(); got != 4 {
		t.Errorf("bridged counter = %d, want 4", got)
	}
}
