package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
)

func demoLayout() *layout.Layout {
	d := &design.Design{
		Name:       "demo",
		Outline:    geom.RectWH(0, 0, 600, 400),
		WireLayers: 2,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips:      []design.Chip{{Name: "c", Box: geom.RectWH(48, 48, 120, 120)}},
		IOPads: []design.IOPad{
			{ID: 0, Chip: 0, Center: geom.Pt(96, 96), HalfW: 8},
		},
		BumpPads:  []design.BumpPad{{ID: 0, Center: geom.Pt(480, 96), W: 40}},
		Obstacles: []design.Obstacle{{Layer: 0, Box: geom.RectWH(240, 240, 60, 60)}},
		Nets: []design.Net{{
			ID: 0,
			P1: design.PadRef{Kind: design.IOKind, Index: 0},
			P2: design.PadRef{Kind: design.BumpKind, Index: 0},
		}},
	}
	l := layout.New(d)
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(96, 96)},
		{Layer: 0, Pt: geom.Pt(240, 96)},
		{Layer: 1, Pt: geom.Pt(240, 96)},
		{Layer: 1, Pt: geom.Pt(480, 96)},
	})
	l.MarkRouted(0)
	return l
}

func TestSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(&buf, demoLayout(), DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatalf("not svg: %q", out[:40])
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	// Expect the main elements.
	for _, want := range []string{"<polyline", "<polygon", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s element", want)
		}
	}
	// Two wire layers → two polylines with different colors.
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2", strings.Count(out, "<polyline"))
	}
	if !strings.Contains(out, layerColors[0]) || !strings.Contains(out, layerColors[1]) {
		t.Error("layer colors missing")
	}
}

func TestSVGLayerFilter(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Layer = 1
	if err := SVG(&buf, demoLayout(), opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<polyline") != 1 {
		t.Errorf("layer filter: polylines = %d, want 1", strings.Count(out, "<polyline"))
	}
	if strings.Contains(out, layerColors[0]) {
		t.Error("layer-0 color should be filtered out")
	}
	// Obstacle is on layer 0: filtered.
	if strings.Contains(out, "#555") {
		t.Error("layer-0 obstacle should be filtered out")
	}
}

func TestSVGDefaultScale(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(&buf, demoLayout(), Options{Layer: -1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="150"`) { // 600 × 0.25
		t.Errorf("default scale not applied: %s", buf.String()[:120])
	}
}

func TestSVGNoBumps(t *testing.T) {
	var with, without bytes.Buffer
	opts := DefaultOptions()
	if err := SVG(&with, demoLayout(), opts); err != nil {
		t.Fatal(err)
	}
	opts.ShowBumps = false
	if err := SVG(&without, demoLayout(), opts); err != nil {
		t.Fatal(err)
	}
	if strings.Count(without.String(), "<polygon") >= strings.Count(with.String(), "<polygon") {
		t.Error("hiding bumps should drop polygons")
	}
}
