package ctile

import (
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

func dsn(layers int) *design.Design {
	return &design.Design{
		Name:       "t",
		Outline:    geom.RectWH(0, 0, 1200, 1200),
		WireLayers: layers,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
	}
}

func TestEmptyDesignTiles(t *testing.T) {
	m := NewModel(dsn(2), 4)
	// With no blockages, each cell is a single rectangular tile.
	for l := 0; l < 2; l++ {
		if got := m.TileCount(l); got != 16 {
			t.Errorf("layer %d tiles = %d, want 16", l, got)
		}
	}
	r, ok := m.TileAt(0, geom.Pt(600, 600))
	if !ok {
		t.Fatal("center point not in any tile")
	}
	if m.Region(r).Empty() {
		t.Error("tile region empty")
	}
}

func TestObstacleSplitsTiles(t *testing.T) {
	d := dsn(1)
	d.Obstacles = append(d.Obstacles, design.Obstacle{
		Layer: 0, Box: geom.RectWH(500, 500, 200, 200),
	})
	m := NewModel(d, 2)
	// The obstacle (plus clearance) must not be inside any tile.
	if _, ok := m.TileAt(0, geom.Pt(600, 600)); ok {
		t.Error("obstacle interior should not be covered by tiles")
	}
	// Free space around it must be.
	pts := []geom.Point{geom.Pt(100, 100), geom.Pt(1100, 1100), geom.Pt(600, 200), geom.Pt(200, 600)}
	for _, p := range pts {
		if _, ok := m.TileAt(0, p); !ok {
			t.Errorf("free point %v not covered", p)
		}
	}
}

func TestDiagonalWireSplitsFrame(t *testing.T) {
	m := NewModel(dsn(1), 1)
	before := m.TileCount(0)
	m.AddWire(0, geom.Seg(geom.Pt(0, 0), geom.Pt(1200, 1200)))
	after := m.TileCount(0)
	if after <= before {
		t.Errorf("diagonal wire should split tiles: %d -> %d", before, after)
	}
	// Points on opposite sides are in different tiles; band is uncovered.
	nw, okNW := m.TileAt(0, geom.Pt(200, 1000))
	se, okSE := m.TileAt(0, geom.Pt(1000, 200))
	if !okNW || !okSE {
		t.Fatal("side points not covered")
	}
	if nw == se {
		t.Error("points on opposite sides of the wire share a tile")
	}
	if _, ok := m.TileAt(0, geom.Pt(600, 600)); ok {
		t.Error("wire band should not be covered")
	}
}

func TestCorridorStraight(t *testing.T) {
	m := NewModel(dsn(1), 4)
	path, ok := m.FindCorridor(geom.Pt(60, 600), 0, geom.Pt(1140, 600), 0, nil, 100)
	if !ok {
		t.Fatal("no corridor in empty design")
	}
	if len(path) < 2 {
		t.Errorf("corridor too short: %v", path)
	}
	for _, r := range path {
		if r.Layer != 0 {
			t.Error("single-layer corridor should stay on layer 0")
		}
	}
}

func TestCorridorUsesViaSites(t *testing.T) {
	d := dsn(2)
	// A wall on layer 0 splits it; layer 1 is open.
	d.Obstacles = append(d.Obstacles, design.Obstacle{
		Layer: 0, Box: geom.RectWH(590, 0, 20, 1200),
	})
	m := NewModel(d, 4)
	sites := m.InsertVias()
	if len(sites) == 0 {
		t.Fatal("no via sites inserted")
	}
	for _, v := range sites {
		if v.L0 != 0 || v.L1 != 1 {
			t.Errorf("site %+v should span both layers", v)
		}
	}
	path, ok := m.FindCorridor(geom.Pt(60, 600), 0, geom.Pt(1140, 600), 0, sites, 100)
	if !ok {
		t.Fatal("corridor should exist through layer 1")
	}
	usedL1 := false
	for _, r := range path {
		if r.Layer == 1 {
			usedL1 = true
		}
	}
	if !usedL1 {
		t.Error("corridor should pass through layer 1")
	}
	// Without via sites the corridor is impossible.
	if _, ok := m.FindCorridor(geom.Pt(60, 600), 0, geom.Pt(1140, 600), 0, nil, 100); ok {
		t.Error("corridor should fail without via sites")
	}
}

func TestTileNearBlockedTerminal(t *testing.T) {
	d := dsn(1)
	d.IOPads = append(d.IOPads, design.IOPad{ID: 0, Chip: -1, Center: geom.Pt(600, 600), HalfW: 8})
	m := NewModel(d, 2)
	// The pad center is inside its own clearance blockage, but TileNear
	// still finds the closest tile.
	if _, ok := m.TileAt(0, geom.Pt(600, 600)); ok {
		t.Error("pad center should be blocked")
	}
	r, ok := m.TileNear(0, geom.Pt(600, 600))
	if !ok {
		t.Fatal("TileNear failed")
	}
	if d := m.Region(r).BBox().DistToPoint(geom.Pt(600, 600)); d > 40 {
		t.Errorf("nearest tile unexpectedly far: %v", d)
	}
}

func TestIncrementalUpdateBlocksCorridor(t *testing.T) {
	d := dsn(1)
	m := NewModel(d, 4)
	if _, ok := m.FindCorridor(geom.Pt(60, 600), 0, geom.Pt(1140, 600), 0, nil, 100); !ok {
		t.Fatal("initial corridor missing")
	}
	// Commit a full-height vertical wire: corridor must disappear.
	m.AddWire(0, geom.Seg(geom.Pt(600, 0), geom.Pt(600, 1200)))
	if _, ok := m.FindCorridor(geom.Pt(60, 600), 0, geom.Pt(1140, 600), 0, nil, 100); ok {
		t.Error("corridor should be blocked after wire commit")
	}
}

func TestViaInsertionProjectionStopsAtBlockage(t *testing.T) {
	d := dsn(3)
	// Fill layer 1 entirely: projections cannot pass through it.
	d.Obstacles = append(d.Obstacles, design.Obstacle{Layer: 1, Box: geom.RectWH(0, 0, 1200, 1200)})
	m := NewModel(d, 2)
	for _, v := range m.InsertVias() {
		if v.L0 <= 1 && v.L1 >= 1 {
			t.Errorf("site %+v projects through fully blocked layer 1", v)
		}
	}
}

func TestTileCountScalesWithBlockage(t *testing.T) {
	// The octagonal tile model's selling point: tile count tracks geometry
	// complexity, not area.
	m := NewModel(dsn(1), 8)
	empty := m.TileCount(0)
	for i := 0; i < 10; i++ {
		m.AddVia(0, geom.Pt(int64(100+100*i), int64(100+100*i)))
	}
	withVias := m.TileCount(0)
	if withVias <= empty {
		t.Errorf("tile count should grow with blockages: %d -> %d", empty, withVias)
	}
	// Each via adds a bounded number of tiles (frames × octagon cuts in
	// the cells it touches) — far below a uniform fine grid's node count.
	if withVias > empty+500 {
		t.Errorf("tile count grew unreasonably: %d -> %d", empty, withVias)
	}
}

func TestTileBBsMatchTiles(t *testing.T) {
	d := dsn(1)
	d.Obstacles = append(d.Obstacles, design.Obstacle{Layer: 0, Box: geom.RectWH(480, 480, 240, 240)})
	m := NewModel(d, 3)
	for c := 0; c < 9; c++ {
		tiles := m.Tiles(0, c)
		bbs := m.TileBBs(0, c)
		if len(tiles) != len(bbs) {
			t.Fatalf("cell %d: %d tiles vs %d bboxes", c, len(tiles), len(bbs))
		}
		for i := range tiles {
			if tiles[i].BBox() != bbs[i] {
				t.Errorf("cell %d tile %d: bbox cache mismatch", c, i)
			}
		}
	}
}
