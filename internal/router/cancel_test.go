package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdlroute/internal/design"
)

func genDense1(t *testing.T) *design.Design {
	t.Helper()
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouteContextAlreadyCancelled(t *testing.T) {
	d := genDense1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RouteContext(ctx, d, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
}

func TestRouteContextDeadlineMidRun(t *testing.T) {
	d := genDense1(t)
	// dense1 routes in >100ms; a 15ms deadline fires mid-flow, somewhere
	// inside the stage checkpoints or the A*/DP/LP poll loops.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	res, err := RouteContext(ctx, d, DefaultOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("deadlined run returned a result: %+v", res)
	}
}

// TestCancelLeavesNoCorruption is the fingerprint gate: a cancelled run in
// between two full runs must not change what the full runs compute. Each
// run builds its own lattice, so this pins the absence of hidden shared
// state (package-level caches, pooled search buffers leaking occupancy).
func TestCancelLeavesNoCorruption(t *testing.T) {
	opts := DefaultOptions()

	res1, la1, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := la1.Fingerprint()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	if _, _, err := route(ctx, genDense1(t), opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run deadline: err = %v, want context.DeadlineExceeded", err)
	}
	cancel()

	res2, la2, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 := la2.Fingerprint(); fp2 != fp1 {
		t.Fatalf("lattice fingerprint changed after a cancelled run: %x != %x", fp2, fp1)
	}
	if res1.Routability != res2.Routability || res1.Wirelength != res2.Wirelength ||
		res1.RoutedNets != res2.RoutedNets {
		t.Fatalf("results diverged after a cancelled run: %+v vs %+v", res1, res2)
	}
}

// TestCancelMidParallelStage is TestCancelLeavesNoCorruption with the
// worker pool engaged (Workers=8 on dense1) and the deadline swept
// across the flow's runtime, so cancellation fires inside the parallel
// fan-outs — preprocessing's border/candidate maps, the stage-2 mask
// prebuild, the stage-3 tile warm-up — not just at stage checkpoints.
// The contract is the same: a clean context error, no result, and a
// byte-identical full run afterwards.
func TestCancelMidParallelStage(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 8

	res1, la1, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := la1.Fingerprint()

	for _, budget := range []time.Duration{
		2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond, 120 * time.Millisecond,
	} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		res, _, err := route(ctx, genDense1(t), opts)
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %v: err = %v, want a context error", budget, err)
			}
			if res != nil {
				t.Fatalf("budget %v: cancelled run returned a result", budget)
			}
		}
		// A budget the flow beat is fine: the run completed normally and
		// the fingerprint check below covers it via the final full run.

		res2, la2, err := route(context.Background(), genDense1(t), opts)
		if err != nil {
			t.Fatalf("budget %v: re-route: %v", budget, err)
		}
		if fp2 := la2.Fingerprint(); fp2 != fp1 {
			t.Fatalf("budget %v: lattice fingerprint changed after a cancelled parallel run: %x != %x", budget, fp2, fp1)
		}
		if res1.Routability != res2.Routability || res1.Wirelength != res2.Wirelength ||
			res1.RoutedNets != res2.RoutedNets {
			t.Fatalf("budget %v: results diverged after a cancelled parallel run", budget)
		}
	}
}
