// Package eco implements incremental (engineering-change-order) rerouting:
// applying a small edit — a delta — to an already-routed base design and
// producing the edited design's routing result byte-identical to a cold
// full route, at a fraction of the cost.
//
// The mechanism is replay with memoized searches. A reroute re-runs the
// entire five-stage flow on the edited design natively: every MPSC pick,
// net ordering, corridor search and region mask is recomputed from the
// edited design, so the result is the cold result by construction. The
// expensive part — the per-net A* lattice searches — is served from a memo
// recorded during the base run whenever the lattice journal proves the
// search's entire footprint (request parameters, masks and all occupancy
// state within its window) is unchanged; see internal/lattice memo.go.
// An edit localized to one net leaves most footprints untouched, so most
// searches hit and the reroute spends time only where the edit lands.
package eco

import (
	"fmt"
	"sort"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// MovePad relocates one pad of the base design to a new center.
type MovePad struct {
	Index int
	To    geom.Point
}

// MoveObstacle relocates one obstacle of the base design (same size).
type MoveObstacle struct {
	Index int
	To    geom.Point // new center of the obstacle box
}

// Delta is one edit against a base design, identified (optionally) by the
// hash of its canonical codec encoding. Application order is fixed:
// moves first (indices address the base tables), then additions (appended;
// net pad references address the post-addition pad tables), then removals
// (indices address the post-addition tables; references into removed
// entries are remapped or rejected). The edited design must validate.
type Delta struct {
	// Base is the canonical-bytes hash (sha256 hex of the codec encoding)
	// of the design this delta applies to; empty means unchecked.
	Base string
	// Name, when non-empty, renames the edited design.
	Name string

	MoveIOPads    []MovePad
	MoveBumpPads  []MovePad
	MoveObstacles []MoveObstacle

	AddIOPads    []design.IOPad
	AddBumpPads  []design.BumpPad
	AddNets      []design.Net
	AddObstacles []design.Obstacle

	RemoveNets      []int
	RemoveIOPads    []int
	RemoveBumpPads  []int
	RemoveObstacles []int
}

// Empty reports whether the delta performs no edit at all.
func (dl *Delta) Empty() bool {
	return len(dl.MoveIOPads) == 0 && len(dl.MoveBumpPads) == 0 &&
		len(dl.MoveObstacles) == 0 && len(dl.AddIOPads) == 0 &&
		len(dl.AddBumpPads) == 0 && len(dl.AddNets) == 0 &&
		len(dl.AddObstacles) == 0 && len(dl.RemoveNets) == 0 &&
		len(dl.RemoveIOPads) == 0 && len(dl.RemoveBumpPads) == 0 &&
		len(dl.RemoveObstacles) == 0
}

// Apply produces the edited design: a deep copy of base with the delta's
// moves, additions and removals applied in that order, validated. The base
// is never mutated. Removing a pad still referenced by a surviving net is
// an error; fixed vias of removed nets are dropped.
func Apply(base *design.Design, dl *Delta) (*design.Design, error) {
	d := clone(base)
	if dl.Name != "" {
		d.Name = dl.Name
	}

	// Moves address base indices.
	for _, mv := range dl.MoveIOPads {
		if mv.Index < 0 || mv.Index >= len(base.IOPads) {
			return nil, fmt.Errorf("eco: move_io_pads index %d out of range [0,%d)", mv.Index, len(base.IOPads))
		}
		d.IOPads[mv.Index].Center = mv.To
	}
	for _, mv := range dl.MoveBumpPads {
		if mv.Index < 0 || mv.Index >= len(base.BumpPads) {
			return nil, fmt.Errorf("eco: move_bump_pads index %d out of range [0,%d)", mv.Index, len(base.BumpPads))
		}
		d.BumpPads[mv.Index].Center = mv.To
	}
	for _, mv := range dl.MoveObstacles {
		if mv.Index < 0 || mv.Index >= len(base.Obstacles) {
			return nil, fmt.Errorf("eco: move_obstacles index %d out of range [0,%d)", mv.Index, len(base.Obstacles))
		}
		b := d.Obstacles[mv.Index].Box
		w, h := b.W(), b.H()
		d.Obstacles[mv.Index].Box = geom.Rect{
			X0: mv.To.X - w/2, Y0: mv.To.Y - h/2,
			X1: mv.To.X - w/2 + w, Y1: mv.To.Y - h/2 + h,
		}
	}

	// Additions append; added nets may reference base or added pads.
	d.IOPads = append(d.IOPads, dl.AddIOPads...)
	d.BumpPads = append(d.BumpPads, dl.AddBumpPads...)
	d.Nets = append(d.Nets, dl.AddNets...)
	d.Obstacles = append(d.Obstacles, dl.AddObstacles...)

	// Removals address post-addition indices. Each table is removed with
	// the same remapping discipline: delete the marked entries, then walk
	// every reference and either remap it past the deletions or reject.
	if err := removeNets(d, dl.RemoveNets); err != nil {
		return nil, err
	}
	if err := removePads(d, design.IOKind, dl.RemoveIOPads); err != nil {
		return nil, err
	}
	if err := removePads(d, design.BumpKind, dl.RemoveBumpPads); err != nil {
		return nil, err
	}
	if err := removeObstacles(d, dl.RemoveObstacles); err != nil {
		return nil, err
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("eco: edited design invalid: %w", err)
	}
	return d, nil
}

// clone deep-copies a design (all slices are owned by the copy).
func clone(d *design.Design) *design.Design {
	c := *d
	c.Chips = append([]design.Chip(nil), d.Chips...)
	c.IOPads = append([]design.IOPad(nil), d.IOPads...)
	c.BumpPads = append([]design.BumpPad(nil), d.BumpPads...)
	c.Nets = append([]design.Net(nil), d.Nets...)
	c.Obstacles = append([]design.Obstacle(nil), d.Obstacles...)
	c.FixedVias = append([]design.FixedVia(nil), d.FixedVias...)
	return &c
}

// checkRemoval validates and normalizes removal indices against a table
// length: in range, no duplicates, returned sorted ascending.
func checkRemoval(what string, idx []int, n int) ([]int, error) {
	out := append([]int(nil), idx...)
	sort.Ints(out)
	for k, i := range out {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("eco: %s index %d out of range [0,%d)", what, i, n)
		}
		if k > 0 && out[k-1] == i {
			return nil, fmt.Errorf("eco: %s index %d removed twice", what, i)
		}
	}
	return out, nil
}

// remapTable builds the old→new index map for a table after removing the
// (sorted) indices; removed entries map to −1.
func remapTable(n int, removed []int) []int {
	m := make([]int, n)
	r, shift := 0, 0
	for i := 0; i < n; i++ {
		if r < len(removed) && removed[r] == i {
			m[i] = -1
			r++
			shift++
			continue
		}
		m[i] = i - shift
	}
	return m
}

func removeNets(d *design.Design, idx []int) error {
	if len(idx) == 0 {
		return nil
	}
	rem, err := checkRemoval("remove_nets", idx, len(d.Nets))
	if err != nil {
		return err
	}
	m := remapTable(len(d.Nets), rem)
	nets := d.Nets[:0:0]
	for i, n := range d.Nets {
		if m[i] >= 0 {
			nets = append(nets, n)
		}
	}
	d.Nets = nets
	// Fixed vias of removed nets are dropped with them; survivors remap.
	vias := d.FixedVias[:0:0]
	for _, v := range d.FixedVias {
		if v.Net >= 0 && v.Net < len(m) {
			if m[v.Net] < 0 {
				continue
			}
			v.Net = m[v.Net]
		}
		vias = append(vias, v)
	}
	d.FixedVias = vias
	return nil
}

func removePads(d *design.Design, kind design.PadKind, idx []int) error {
	if len(idx) == 0 {
		return nil
	}
	what := "remove_io_pads"
	n := len(d.IOPads)
	if kind == design.BumpKind {
		what, n = "remove_bump_pads", len(d.BumpPads)
	}
	rem, err := checkRemoval(what, idx, n)
	if err != nil {
		return err
	}
	m := remapTable(n, rem)
	for ni := range d.Nets {
		for _, ref := range []*design.PadRef{&d.Nets[ni].P1, &d.Nets[ni].P2} {
			if ref.Kind != kind {
				continue
			}
			if nm := m[ref.Index]; nm < 0 {
				return fmt.Errorf("eco: %s removes pad %d still used by net %d", what, ref.Index, ni)
			} else {
				ref.Index = nm
			}
		}
	}
	if kind == design.IOKind {
		pads := d.IOPads[:0:0]
		for i, p := range d.IOPads {
			if m[i] >= 0 {
				pads = append(pads, p)
			}
		}
		d.IOPads = pads
	} else {
		pads := d.BumpPads[:0:0]
		for i, p := range d.BumpPads {
			if m[i] >= 0 {
				pads = append(pads, p)
			}
		}
		d.BumpPads = pads
	}
	return nil
}

func removeObstacles(d *design.Design, idx []int) error {
	if len(idx) == 0 {
		return nil
	}
	rem, err := checkRemoval("remove_obstacles", idx, len(d.Obstacles))
	if err != nil {
		return err
	}
	m := remapTable(len(d.Obstacles), rem)
	obs := d.Obstacles[:0:0]
	for i, o := range d.Obstacles {
		if m[i] >= 0 {
			obs = append(obs, o)
		}
	}
	d.Obstacles = obs
	return nil
}
