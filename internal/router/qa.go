package router

import (
	"context"

	"rdlroute/internal/design"
)

// RouteFingerprint runs the flow like RouteContext and additionally
// returns the occupancy fingerprint of the lattice the flow ended on
// (zero when the flow errored before producing one). The QA harness uses
// it as the shared-state oracle: a run cancelled at an arbitrary point in
// between two full runs must not change the fingerprint the full runs
// reach, or hidden state leaked across runs.
func RouteFingerprint(ctx context.Context, d *design.Design, opts Options) (*Result, uint64, error) {
	res, la, err := route(ctx, d, opts)
	var fp uint64
	if la != nil {
		fp = la.Fingerprint()
	}
	return res, fp, err
}
