module rdlroute

go 1.22
