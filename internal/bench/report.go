package bench

import (
	"encoding/json"
	"io"
	"strings"

	"rdlroute/internal/obs"
)

// ReportSchema identifies the rdlbench JSON report format. Bump it when a
// field changes meaning; adding fields is backward-compatible.
const ReportSchema = "rdlbench/v1"

// Report is the machine-readable form of one rdlbench invocation: every
// experiment the run performed, keyed by section; absent sections were not
// requested. EXPERIMENTS.md documents the schema.
type Report struct {
	Schema    string         `json:"schema"`
	Circuits  []string       `json:"circuits,omitempty"`
	Table1    []Table1JSON   `json:"table1,omitempty"`
	Fig2      *Fig2Result    `json:"fig2,omitempty"`
	Fig5      *Fig5Result    `json:"fig5,omitempty"`
	Fig7      []Fig7Row      `json:"fig7,omitempty"`
	LPIters   []LPIterRow    `json:"lp_iters,omitempty"`
	GraphSize []GraphSizeRow `json:"graph_size,omitempty"`
	Quality   []QualityRow   `json:"quality,omitempty"`
	Ablations []AblationRow  `json:"ablations,omitempty"`
	Scaling   []ScalingRow   `json:"scaling,omitempty"`
	ECO       []ECORow       `json:"eco,omitempty"`
	Portfolio []PortfolioRow `json:"portfolio,omitempty"`
}

// Table1JSON is one Table-I comparison row flattened for serialization.
type Table1JSON struct {
	Circuit    string `json:"circuit"`
	Chips      int    `json:"chips"`
	Q          int    `json:"io_pads"`
	G          int    `json:"bump_pads"`
	N          int    `json:"nets"`
	WireLayers int    `json:"wire_layers"`
	ViaLayers  int    `json:"via_layers"`

	// Status is "ok", or "timeout" when a flow exceeded the -timeout
	// budget; a timed-out flow's metrics are zero.
	Status string `json:"status"`

	OursRoutability float64 `json:"ours_routability"`
	OursWirelength  float64 `json:"ours_wirelength"`
	OursSeconds     float64 `json:"ours_seconds"`
	OursDRC         int     `json:"ours_drc_violations"`

	LinRoutability float64 `json:"lin_routability"`
	LinWirelength  float64 `json:"lin_wirelength"`
	LinSeconds     float64 `json:"lin_seconds"`
	LinDRC         int     `json:"lin_drc_violations"`

	// Per-stage wall-clock of our flow (keys: preprocess, concurrent,
	// graph, sequential, ripup, lp) and aggregate A* effort, extracted
	// from the run's obs snapshot. Present since PR 2; absent when the
	// run carried no snapshotting tracer.
	OursStageMs       map[string]float64 `json:"ours_stage_ms,omitempty"`
	OursAstarSearches int64              `json:"ours_astar_searches,omitempty"`
	OursAstarExpanded float64            `json:"ours_astar_expanded,omitempty"`
	OursAstarVisited  float64            `json:"ours_astar_visited,omitempty"`

	// OursObs is the run's full observability snapshot — every counter
	// (A*, MPSC, ctile, LP, rip-up) and distribution the flow emitted,
	// not just the headline extracts above. Present since PR 6.
	OursObs *obs.Snapshot `json:"ours_obs,omitempty"`
}

// JSON flattens the row for the report.
func (r *Table1Row) JSON() Table1JSON {
	s := r.Stats
	j := Table1JSON{
		Circuit: s.Name, Chips: s.Chips, Q: s.Q, G: s.G, N: s.N,
		WireLayers: s.WireLayers, ViaLayers: s.ViaLayers,
		Status: r.Status,
	}
	if j.Status == "" {
		j.Status = "ok"
	}
	if r.Ours != nil {
		j.OursRoutability = r.Ours.Routability
		j.OursWirelength = r.Ours.Wirelength
		j.OursSeconds = r.Ours.Runtime.Seconds()
		j.OursDRC = r.OursDRC
	}
	if r.Lin != nil {
		j.LinRoutability = r.Lin.Routability
		j.LinWirelength = r.Lin.Wirelength
		j.LinSeconds = r.Lin.Runtime.Seconds()
		j.LinDRC = r.LinDRC
	}
	if r.Ours == nil {
		return j
	}
	if o := r.Ours.Obs; o != nil {
		j.OursStageMs = make(map[string]float64)
		for _, sp := range o.Spans {
			if name, ok := strings.CutPrefix(sp.Name, "stage:"); ok {
				j.OursStageMs[name] += sp.TotalMs
			}
		}
		j.OursAstarSearches = o.Counters["astar.searches"]
		j.OursAstarExpanded = o.Dists["astar.expanded"].Sum
		j.OursAstarVisited = o.Dists["astar.visited"].Sum
		j.OursObs = o
	}
	return j
}

// WriteJSON writes the report as indented JSON, stamping the schema.
func WriteJSON(w io.Writer, rep *Report) error {
	rep.Schema = ReportSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
