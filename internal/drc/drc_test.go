package drc

import (
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
)

func dsn() *design.Design {
	return &design.Design{
		Name:       "t",
		Outline:    geom.RectWH(0, 0, 600, 600),
		WireLayers: 2,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips:      []design.Chip{{Name: "c", Box: geom.RectWH(0, 0, 600, 600)}},
		IOPads: []design.IOPad{
			{ID: 0, Chip: 0, Center: geom.Pt(48, 48), HalfW: 8},
			{ID: 1, Chip: 0, Center: geom.Pt(480, 48), HalfW: 8},
			{ID: 2, Chip: 0, Center: geom.Pt(48, 240), HalfW: 8},
			{ID: 3, Chip: 0, Center: geom.Pt(480, 240), HalfW: 8},
		},
		Nets: []design.Net{
			{ID: 0, P1: design.PadRef{Kind: design.IOKind, Index: 0}, P2: design.PadRef{Kind: design.IOKind, Index: 1}},
			{ID: 1, P1: design.PadRef{Kind: design.IOKind, Index: 2}, P2: design.PadRef{Kind: design.IOKind, Index: 3}},
		},
	}
}

func kinds(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Kind]++
	}
	return m
}

func TestCleanLayout(t *testing.T) {
	l := layout.New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)}, {Layer: 0, Pt: geom.Pt(480, 48)},
	})
	l.MarkRouted(0)
	l.AddPath(1, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 240)}, {Layer: 0, Pt: geom.Pt(480, 240)},
	})
	l.MarkRouted(1)
	if vs := Check(l); len(vs) != 0 {
		t.Errorf("clean layout reported %v", vs)
	}
}

func TestDetectsCrossing(t *testing.T) {
	l := layout.New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(100, 100)}, {Layer: 0, Pt: geom.Pt(340, 340)},
	})
	l.AddPath(1, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(100, 340)}, {Layer: 0, Pt: geom.Pt(340, 100)},
	})
	vs := Check(l)
	if kinds(vs)["crossing"] == 0 {
		t.Errorf("crossing not detected: %v", vs)
	}
}

func TestDifferentLayersDoNotCross(t *testing.T) {
	l := layout.New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(100, 100)}, {Layer: 0, Pt: geom.Pt(340, 340)},
	})
	l.AddPath(1, []lattice.PathStep{
		{Layer: 1, Pt: geom.Pt(100, 340)}, {Layer: 1, Pt: geom.Pt(340, 100)},
	})
	vs := Check(l)
	if len(vs) != 0 {
		t.Errorf("cross-layer crossing misreported: %v", vs)
	}
}

func TestDetectsSpacing(t *testing.T) {
	l := layout.New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 100)}, {Layer: 0, Pt: geom.Pt(480, 100)},
	})
	// Net 1 parallel 8 apart: edge gap = 8−4 = 4 < 5.
	l.AddPath(1, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 108)}, {Layer: 0, Pt: geom.Pt(480, 108)},
	})
	vs := Check(l)
	if kinds(vs)["spacing"] == 0 {
		t.Errorf("spacing violation not detected: %v", vs)
	}
	// 9 apart is exactly legal (gap = 5).
	l2 := layout.New(dsn())
	l2.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 100)}, {Layer: 0, Pt: geom.Pt(480, 100)},
	})
	l2.AddPath(1, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 109)}, {Layer: 0, Pt: geom.Pt(480, 109)},
	})
	if vs := Check(l2); len(vs) != 0 {
		t.Errorf("legal spacing misreported: %v", vs)
	}
}

func TestDetectsIllegalTurnAndNonOctilinear(t *testing.T) {
	l := layout.New(dsn())
	// 45° interior angle: east then southwest.
	l.Routes = append(l.Routes, layout.Route{
		Net: 0, Layer: 0,
		Pts: []geom.Point{geom.Pt(100, 100), geom.Pt(200, 100), geom.Pt(150, 50)},
	})
	vs := Check(l)
	if kinds(vs)["turn"] == 0 {
		t.Errorf("illegal turn not detected: %v", vs)
	}
	l2 := layout.New(dsn())
	l2.Routes = append(l2.Routes, layout.Route{
		Net: 0, Layer: 0,
		Pts: []geom.Point{geom.Pt(100, 100), geom.Pt(220, 160)},
	})
	if kinds(Check(l2))["octilinear"] == 0 {
		t.Error("non-octilinear segment not detected")
	}
}

func TestViaSpacing(t *testing.T) {
	l := layout.New(dsn())
	l.AddStack(0, geom.Pt(120, 120), 0, 1)
	l.AddStack(1, geom.Pt(136, 120), 0, 1) // centers 16 apart: gap 0 < 5
	vs := Check(l)
	k := kinds(vs)
	if k["spacing"] == 0 && k["crossing"] == 0 {
		t.Errorf("via-via violation not detected: %v", vs)
	}
	l2 := layout.New(dsn())
	l2.AddStack(0, geom.Pt(120, 120), 0, 1)
	l2.AddStack(1, geom.Pt(144, 120), 0, 1) // 24 apart: gap 8 ≥ 5
	if vs := Check(l2); len(vs) != 0 {
		t.Errorf("legal via spacing misreported: %v", vs)
	}
}

func TestWireTooCloseToForeignPad(t *testing.T) {
	l := layout.New(dsn())
	// Net 0 wire at y=254 grazes pad 2 (net 1's pad at (48,240), halfW 8):
	// wire edge y=252, pad edge y=248, gap 4 < 5.
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(24, 254)}, {Layer: 0, Pt: geom.Pt(480, 254)},
	})
	vs := Check(l)
	if kinds(vs)["spacing"] == 0 {
		t.Errorf("wire-to-foreign-pad violation not detected: %v", vs)
	}
}

func TestConnectivityViolation(t *testing.T) {
	l := layout.New(dsn())
	l.MarkRouted(0) // marked but nothing routed
	vs := Check(l)
	found := false
	for _, v := range vs {
		if v.Kind == "connectivity" && strings.Contains(v.Detail, "net 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("connectivity violation not reported: %v", vs)
	}
}

func TestObstacleSpacing(t *testing.T) {
	d := dsn()
	d.Obstacles = append(d.Obstacles, design.Obstacle{Layer: 0, Box: geom.RectWH(200, 90, 60, 60)})
	l := layout.New(d)
	// Wire at y=84: obstacle edge at y=90, wire edge at 86: gap 4 < 5.
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 84)}, {Layer: 0, Pt: geom.Pt(480, 84)},
	})
	if kinds(Check(l))["spacing"] == 0 {
		t.Error("wire-to-obstacle violation not detected")
	}
}
