package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/qa"
	"rdlroute/internal/router"
)

// TestJobResultRoundTripQA drives qa-generated designs through the full
// wire path — encode design, submit over HTTP, poll to completion, decode
// the result document — and asserts the result is bit-identical to
// routing the same design in-process: the serving layer and its codec add
// nothing and lose nothing. Runs under -race in the verify script, so the
// worker pool's handling of concurrent submissions is part of the
// contract.
func TestJobResultRoundTripQA(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type job struct {
		d  *design.Design
		id string
	}
	var jobs []job
	for seed := int64(20); seed < 24; seed++ {
		d := qa.Generate(seed)
		resp, jv := submitDesign(t, ts.URL, d, 0)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seed %d: submit status %d", seed, resp.StatusCode)
		}
		jobs = append(jobs, job{d: d, id: jv.ID})
	}

	for i, j := range jobs {
		jv := waitState(t, ts.URL, j.id, JobDone, 60*time.Second)
		if jv.Result == nil {
			t.Fatalf("job %s done without a result document", j.id)
		}
		got, err := codec.DecodeResult(bytes.NewReader(jv.Result), j.d)
		if err != nil {
			t.Fatalf("job %s: decoding result: %v", j.id, err)
		}
		want, err := router.Route(j.d, router.DefaultOptions())
		if err != nil {
			t.Fatalf("design %d: direct route: %v", i, err)
		}
		gb := encodeStable(t, got)
		wb := encodeStable(t, want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("design %d (%s): served result differs from direct routing (%d vs %d bytes)",
				i, j.d.Name, len(gb), len(wb))
		}
		// The codec must be stable on the served document: decoding the
		// re-encoded result reproduces the encoding byte for byte. (The
		// wire bytes themselves are not compared — the HTTP layer re-indents
		// the nested document and the runtime field is a float.)
		got2, err := codec.DecodeResult(bytes.NewReader(gb), j.d)
		if err != nil {
			t.Fatalf("design %d: decoding re-encoded result: %v", i, err)
		}
		if !bytes.Equal(encodeStable(t, got2), gb) {
			t.Errorf("design %d (%s): result codec is not round-trip stable", i, j.d.Name)
		}
	}
}
