// Irregular pad structures: generates two variants of the same package —
// one with purely peripheral pads and one with a third of the pads pulled
// into the chip interior (the irregular structure the paper targets) —
// and shows how the flow degrades gracefully: interior pads are excluded
// from the weighted-MPSC concurrent stage and picked up by the sequential
// A*-search stage on the octagonal tile graph.
package main

import (
	"fmt"
	"log"

	"rdlroute"
)

func main() {
	variants := []struct {
		label        string
		interiorFrac float64
	}{
		{"peripheral-only", 0.001},
		{"irregular (30% interior)", 0.30},
	}
	for _, v := range variants {
		d, err := rdlroute.Generate(rdlroute.GenSpec{
			Name:         "irregular-demo",
			Chips:        3,
			IOPads:       60,
			BumpPads:     100,
			WireLayers:   3,
			Seed:         42,
			InteriorFrac: v.interiorFrac,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		status := "clean"
		if vs := rdlroute.Check(res.Layout); len(vs) > 0 {
			status = fmt.Sprintf("%d violations", len(vs))
		}
		fmt.Printf("%-26s routability %5.1f%%  concurrent %2d  sequential %2d  wl %7.0f  drc %s\n",
			v.label, res.Routability, res.ConcurrentRouted, res.SequentialRouted,
			res.Wirelength, status)
	}
	fmt.Println("\nInterior pads cannot escape to a chip boundary, so they skip the")
	fmt.Println("fan-out concurrent stage; the sequential stage routes them through")
	fmt.Println("the octagonal-tile graph with flexible vias.")
}
