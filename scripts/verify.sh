#!/bin/sh
# Full verification: build everything, vet, then the whole test suite
# under the race detector (the obs sinks advertise concurrency safety;
# -race holds them to it). Tier-1 CI is `go build ./... && go test ./...`;
# this script is the stricter local gate. Pass extra go-test flags through,
# e.g. `scripts/verify.sh -short`.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...
echo "== go vet ./... =="
go vet ./...
echo "== regression gate (lattice/router/geom) =="
# Fast fail on the targeted regression tests before the full sweep: the
# rip-up lattice threading, the int32 state-space bound, the Oct8.Center
# containment property, the T-junction connectivity union and the
# cancellation fingerprint gate.
go test -race -run \
  'TestRipUpLatticeMatchesLayout|TestNewRejectsStateSpaceBeyondInt32|TestStateSpaceNoOverflow|TestFingerprintCommitOrderIndependent|TestCenterContainedProperty|TestCenterDegenerate|TestConnectedTJunction|TestCancelLeavesNoCorruption' \
  ./internal/lattice/ ./internal/router/ ./internal/geom/ ./internal/layout/
echo "== serving gate: codec + metrics + serve semantics (-race) =="
# Queue saturation → 429, per-job deadlines, graceful drain, concurrent
# determinism, codec round-trips, and the metrics registry's concurrent
# increment/scrape contract — the serving subsystem's contract.
go test -race ./internal/codec/ ./internal/metrics/ ./internal/serve/
echo "== rdlserver smoke: route dense1 over HTTP, DRC-check, scrape /metrics =="
# The smoke self-test also scrapes /metrics, parses the exposition with
# the in-repo parser (failing on malformed or empty output, or missing
# families), and fetches the job's flight record.
go run ./cmd/rdlserver -smoke
echo "== determinism matrix: workers 1/2/8 at GOMAXPROCS=2 (-race) =="
# The parallel-stage contract: lattice fingerprint, metrics and encoded
# rdl-result/v1 bytes identical at every worker count. GOMAXPROCS=2
# forces real goroutine interleaving even on one core; -race holds the
# index-ownership discipline to account. The dense set is capped under
# the detector (see denseMatrixNames); the full-size matrix runs in the
# race-free qa sweep below via the same tests.
GOMAXPROCS=2 go test -race -count=1 -run \
  'TestWorkerDeterminism|TestRegressionParallelBatchBoundary|TestCancelMidParallelStage|TestConcurrentEmit' \
  ./internal/qa/ ./internal/router/ ./internal/obs/ ./internal/par/
echo "== speculative gate: spec-on == sequential at GOMAXPROCS=2 (-race) =="
# The speculative stage-4 contract: committed results byte-identical to
# the plain sequential loop at every worker count, spec.* counters
# worker-count-invariant, a pinned rollback-replay seed, the hand-built
# conflict-injection designs, and cancellation mid-round leaving the
# lattice untouched. Same interleaving discipline as the matrix above.
GOMAXPROCS=2 go test -race -count=1 -run \
  'TestSpeculativeEquivalence|TestRegressionSpeculativeReplay|TestSpecConflict|TestSpecStaleFootprintAbort|TestSpecAbortMetricsSeries|TestSpecEventsCommitOrderOnce|TestCancelMidSpeculation' \
  ./internal/qa/ ./internal/router/
echo "== portfolio gate: ordering race == solo winner at GOMAXPROCS=2 (-race) =="
# The ordering-portfolio contract: racing K policies is byte-identical to
# a solo run of the winning policy at every worker count, every policy
# orders the queue as a worker-invariant permutation keyed on net
# geometry and ID, and the pinned seeds keep exercising a genuine
# routability win (seed 5) and a wirelength-only tie-break (seed 11).
# Race-capped subset; the dense portfolio matrix runs race-free in the
# qa sweep below.
GOMAXPROCS=2 go test -race -count=1 -run \
  'TestPortfolioDeterminismRandom|TestRegressionPortfolio|TestPortfolioMonotonicitySolo|TestPolicies|TestCongestedTieBreakPinned|TestCancelMidPortfolio' \
  ./internal/qa/ ./internal/router/
echo "== eco gate: incremental reroute == cold route (-race) =="
# The incremental-rerouting contract: for seeded random designs and
# random deltas, rerouting through the base plan's recorded memo must be
# byte-identical to cold-routing the edited design (fingerprint and
# canonical rdl-result/v1 bytes). Race-capped sweep; the full-size sweep
# runs race-free in the qa harness below.
go test -race -count=1 -run 'TestECOIncrementalEqualsCold' ./internal/qa/ ./internal/eco/
echo "== qa harness: randomized DRC-oracle sweep =="
# 200 seeded random designs through both routers, full oracle suite
# (DRC, connectivity, codec round-trip, cancellation, differential and
# metamorphic gates). Race-free here so the sweep runs at full size; the
# final -race pass below reruns a capped sweep under the detector.
go test ./internal/qa -count=1 "$@"
echo "== fuzz smoke: 10s per native fuzz target =="
go test ./internal/codec -run '^$' -fuzz '^FuzzDecodeDesign$' -fuzztime 10s
go test ./internal/codec -run '^$' -fuzz '^FuzzDecodeOptions$' -fuzztime 10s
go test ./internal/codec -run '^$' -fuzz '^FuzzDecodeDesignDelta$' -fuzztime 10s
go test ./internal/geom -run '^$' -fuzz '^FuzzOct8Ops$' -fuzztime 10s
go test ./internal/lp -run '^$' -fuzz '^FuzzSimplex$' -fuzztime 10s
echo "== go test -race $* ./... =="
go test -race "$@" ./...
echo "== verify OK =="
