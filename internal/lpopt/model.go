// Package lpopt implements the paper's LP-based Layout Optimization
// (Section III-E): Layout Mapping of routes and vias onto x/y/c variables,
// Constraint Generation (fixed, route and interactive constraints),
// LP Problem Formulation minimizing total wirelength, and Iterative
// Solving with crossing/spacing repair until the layout is legal.
//
// Deviations from the paper, chosen for exactness on integer geometry:
//
//   - Point variables are eliminated: every interior route point is the
//     intersection of two orientation-fixed lines, so its coordinates are
//     affine in the two c variables. The solver sees only c variables and
//     via-center (x, y) variables.
//   - Interactive constraints separate entity pairs along one of the four
//     canonical axes (x, y, x+y, y−x); for octilinear geometry a
//     separating axis always exists among these.
//   - All margins carry +2 DBU of slack so solutions can be rounded to
//     even integers (keeping diagonal line intersections integral)
//     without violating spacing.
package lpopt

import (
	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/layout"
)

// term is coefficient·globalVar.
type term struct {
	v int
	c float64
}

// expr is an affine expression over global variables.
type expr struct {
	t []term
	k float64
}

func constExpr(k float64) expr { return expr{k: k} }

func varExpr(v int) expr { return expr{t: []term{{v, 1}}} }

func (e expr) add(o expr) expr {
	out := expr{k: e.k + o.k}
	out.t = append(out.t, e.t...)
	out.t = append(out.t, o.t...)
	return out.compact()
}

func (e expr) scale(f float64) expr {
	out := expr{k: e.k * f}
	for _, t := range e.t {
		out.t = append(out.t, term{t.v, t.c * f})
	}
	return out
}

func (e expr) sub(o expr) expr { return e.add(o.scale(-1)) }

func (e expr) compact() expr {
	if len(e.t) < 2 {
		return e
	}
	m := map[int]float64{}
	for _, t := range e.t {
		m[t.v] += t.c
	}
	out := expr{k: e.k}
	for _, t := range e.t {
		if c, ok := m[t.v]; ok && c != 0 {
			out.t = append(out.t, term{t.v, c})
			delete(m, t.v)
		}
	}
	return out
}

func (e expr) eval(vals []float64) float64 {
	v := e.k
	for _, t := range e.t {
		v += t.c * vals[t.v]
	}
	return v
}

func (e expr) isConst() bool { return len(e.t) == 0 }

// axis is one of the four canonical separation axes.
type axis uint8

const (
	axisX axis = iota // x
	axisY             // y
	axisS             // x+y
	axisD             // y−x
)

// norm returns the length of the axis normal vector: separation of n units
// along the axis means Euclidean distance n/norm.
func (a axis) norm() float64 {
	if a == axisS || a == axisD {
		return geom.Sqrt2
	}
	return 1
}

// axisOf maps an orientation to the axis measured by its c value.
func axisOf(o geom.Orient) axis {
	switch o {
	case geom.OrientH:
		return axisY
	case geom.OrientV:
		return axisX
	case geom.OrientD45:
		return axisD
	default:
		return axisS
	}
}

// pointE is a symbolic point.
type pointE struct {
	x, y expr
}

func fixedPoint(p geom.Point) pointE {
	return pointE{constExpr(float64(p.X)), constExpr(float64(p.Y))}
}

// along returns the point's coordinate expression along the axis.
func (p pointE) along(a axis) expr {
	switch a {
	case axisX:
		return p.x
	case axisY:
		return p.y
	case axisS:
		return p.x.add(p.y)
	default:
		return p.y.sub(p.x)
	}
}

// cvalue returns the c expression of orientation o's carrier line through p.
func (p pointE) cvalue(o geom.Orient) expr {
	a, b := o.LineCoeff()
	return p.x.scale(float64(a)).add(p.y.scale(float64(b)))
}

// intersect returns the symbolic intersection of lines (o1, c1) and
// (o2, c2); ok is false for parallel orientations.
func intersect(o1 geom.Orient, c1 expr, o2 geom.Orient, c2 expr) (pointE, bool) {
	a1, b1 := o1.LineCoeff()
	a2, b2 := o2.LineCoeff()
	det := float64(a1*b2 - a2*b1)
	if det == 0 {
		return pointE{}, false
	}
	x := c1.scale(float64(b2) / det).add(c2.scale(-float64(b1) / det))
	y := c2.scale(float64(a1) / det).add(c1.scale(-float64(a2) / det))
	return pointE{x, y}, true
}

// viaCol is a via column: every via of one net at one center.
type viaCol struct {
	net     int
	init    geom.Point
	fixed   bool
	vx, vy  int   // global vars when movable
	viaIdxs []int // indices into layout.Vias
	// const-orientation ties from single-segment routes anchored at a pad:
	// the column must stay on these fixed lines.
	ties []tie
	// links to other columns through single-segment via↔via routes: both
	// centers stay on a common line of the given orientation.
	links []colLink
}

type tie struct {
	o geom.Orient
	c int64
}

type colLink struct {
	other int
	o     geom.Orient
}

func (v *viaCol) point() pointE {
	if v.fixed {
		return fixedPoint(v.init)
	}
	return pointE{varExpr(v.vx), varExpr(v.vy)}
}

// mroute is the symbolic model of one layout route.
type mroute struct {
	li      int // index into layout.Routes
	net     int
	layer   int
	orients []geom.Orient
	cs      []expr    // per segment; var or const
	sigma   []float64 // initial direction sign along the dominant coord
	anch0   pointE
	anch1   pointE
	col0    int // via column index or −1
	col1    int
}

// points returns the symbolic polyline points.
func (r *mroute) points() []pointE {
	n := len(r.orients)
	pts := make([]pointE, n+1)
	pts[0] = r.anch0
	for i := 1; i < n; i++ {
		p, ok := intersect(r.orients[i-1], r.cs[i-1], r.orients[i], r.cs[i])
		if !ok {
			// Consecutive segments never share an orientation (no U-turns);
			// defensive: collapse onto the anchor.
			p = r.anch0
		}
		pts[i] = p
	}
	pts[n] = r.anch1
	return pts
}

// dominant returns the axis whose delta measures a segment's length, and
// the length scale factor.
func dominant(o geom.Orient) (axis, float64) {
	switch o {
	case geom.OrientH:
		return axisX, 1
	case geom.OrientV:
		return axisY, 1
	default:
		return axisX, geom.Sqrt2
	}
}

// consOp mirrors lp.Op without importing it here.
type consOp uint8

const (
	opLE consOp = iota
	opGE
	opEQ
)

// gcons is a global constraint Σ terms ⋈ rhs.
type gcons struct {
	terms []term
	op    consOp
	rhs   float64
}

// model is the complete symbolic optimization model.
type model struct {
	lay     *layout.Layout
	nvars   int
	initVal []float64
	varOwn  []int // owning entity group per var (column ci, or route li offset)
	routes  []mroute
	cols    []viaCol
	cons    []gcons
	obj     []term // minimize Σ obj·vars (+ constants dropped)

	// fixed shapes for interactive constraints (obstacles, pads), with the
	// owning net (−1 for netless blockages), per layer.
	fixedShapes [][]fixedShape

	// check, when non-nil, is handed to every LP the model solves so a
	// cancelled context aborts pivot loops mid-solve (Optimize bails out
	// before any write-back, leaving the layout untouched).
	check func() error
}

type fixedShape struct {
	oct geom.Oct8
	net int
}

// routeOwner offsets route owner ids past the column owner ids.
const routeOwner = 1 << 24

func (m *model) newVar(init float64, owner int) int {
	m.initVal = append(m.initVal, init)
	m.varOwn = append(m.varOwn, owner)
	m.nvars++
	return m.nvars - 1
}

func (m *model) addCons(e expr, op consOp, rhs float64) {
	m.cons = append(m.cons, gcons{terms: e.t, op: op, rhs: rhs - e.k})
}

// exprCons adds the constraint lhs ⋈ rhs between two expressions with a
// margin: lhs + margin ≤ rhs (opLE) etc.
func (m *model) sepCons(lo, hi expr, margin float64) {
	// hi − lo ≥ margin
	m.addCons(hi.sub(lo), opGE, margin)
}

// buildModel maps the layout onto the symbolic model (Layout Mapping plus
// fixed and route constraint generation). moveVias controls whether via
// centers become variables.
func buildModel(lay *layout.Layout, moveVias bool) *model {
	d := lay.D
	m := &model{lay: lay}

	// Pad centers of each net (anchors are fixed there).
	padPts := map[geom.Point]bool{}
	for _, p := range d.IOPads {
		padPts[p.Center] = true
	}
	for _, p := range d.BumpPads {
		padPts[p.Center] = true
	}

	// Group vias into columns by (net, center).
	colIdx := map[[3]int64]int{}
	for vi, v := range lay.Vias {
		key := [3]int64{int64(v.Net), v.Center.X, v.Center.Y}
		ci, ok := colIdx[key]
		if !ok {
			ci = len(m.cols)
			colIdx[key] = ci
			m.cols = append(m.cols, viaCol{net: v.Net, init: v.Center})
		}
		m.cols[ci].viaIdxs = append(m.cols[ci].viaIdxs, vi)
	}
	// Columns at pad centers are fixed; without MoveVias every column is.
	for ci := range m.cols {
		if !moveVias || padPts[m.cols[ci].init] {
			m.cols[ci].fixed = true
		}
	}

	// First pass over routes: 2-point routes constrain their anchor
	// columns — const ties for pad↔via segments, links for via↔via
	// segments (both columns share the segment's carrier line).
	findCol := func(net int, p geom.Point) int {
		if ci, ok := colIdx[[3]int64{int64(net), p.X, p.Y}]; ok {
			return ci
		}
		return -1
	}
	for li := range lay.Routes {
		r := &lay.Routes[li]
		if len(r.Pts) != 2 {
			continue
		}
		c0 := findCol(r.Net, r.Pts[0])
		c1 := findCol(r.Net, r.Pts[1])
		o := geom.Seg(r.Pts[0], r.Pts[1]).Orient()
		if o == geom.OrientNone {
			if c0 >= 0 {
				m.cols[c0].fixed = true
			}
			if c1 >= 0 {
				m.cols[c1].fixed = true
			}
			continue
		}
		switch {
		case c0 >= 0 && c1 >= 0:
			m.cols[c0].links = append(m.cols[c0].links, colLink{c1, o})
			m.cols[c1].links = append(m.cols[c1].links, colLink{c0, o})
		case c0 >= 0 && padPts[r.Pts[1]]:
			m.cols[c0].ties = append(m.cols[c0].ties, tie{o, o.CValue(r.Pts[1])})
		case c1 >= 0 && padPts[r.Pts[0]]:
			m.cols[c1].ties = append(m.cols[c1].ties, tie{o, o.CValue(r.Pts[0])})
		}
	}
	// Resolve over-determination to a fixpoint: a fixed link endpoint
	// becomes a const tie for the other side; ≥2 const ties pin a column.
	for changed := true; changed; {
		changed = false
		for ci := range m.cols {
			col := &m.cols[ci]
			if !col.fixed && len(col.ties) >= 2 {
				col.fixed = true
				changed = true
			}
			if !col.fixed {
				continue
			}
			for _, lk := range col.links {
				other := &m.cols[lk.other]
				if other.fixed {
					continue
				}
				other.ties = append(other.ties, tie{lk.o, lk.o.CValue(col.init)})
				changed = true
			}
			col.links = nil
		}
	}

	// Allocate via variables and tie constraints.
	for ci := range m.cols {
		col := &m.cols[ci]
		if col.fixed {
			continue
		}
		col.vx = m.newVar(float64(col.init.X), ci)
		col.vy = m.newVar(float64(col.init.Y), ci)
		for _, t := range col.ties {
			m.addCons(col.point().cvalue(t.o), opEQ, float64(t.c))
		}
	}

	// Build route models.
	for li := range lay.Routes {
		r := &lay.Routes[li]
		if len(r.Pts) < 2 {
			continue
		}
		mr := mroute{li: li, net: r.Net, layer: r.Layer, col0: -1, col1: -1}
		ok := true
		for i := 0; i+1 < len(r.Pts); i++ {
			o := geom.Seg(r.Pts[i], r.Pts[i+1]).Orient()
			if o == geom.OrientNone {
				ok = false
				break
			}
			mr.orients = append(mr.orients, o)
		}
		if !ok {
			continue // non-octilinear route: leave untouched
		}

		// Anchors.
		first, last := r.Pts[0], r.Pts[len(r.Pts)-1]
		if ci := findCol(r.Net, first); ci >= 0 {
			mr.col0 = ci
			mr.anch0 = m.cols[ci].point()
		} else {
			mr.anch0 = fixedPoint(first)
		}
		if ci := findCol(r.Net, last); ci >= 0 {
			mr.col1 = ci
			mr.anch1 = m.cols[ci].point()
		} else {
			mr.anch1 = fixedPoint(last)
		}

		// c variables: end segments are tied to anchors; interior segments
		// get free variables.
		n := len(mr.orients)
		mr.cs = make([]expr, n)
		for k := 0; k < n; k++ {
			o := mr.orients[k]
			initC := float64(o.CValue(r.Pts[k]))
			switch {
			case k == 0 && mr.col0 == -1:
				mr.cs[k] = constExpr(initC)
			case k == n-1 && mr.col1 == -1 && n > 1:
				mr.cs[k] = constExpr(float64(o.CValue(last)))
			case k == 0 && mr.col0 >= 0:
				// Line through a movable via: c = cvalue(via).
				mr.cs[k] = mr.anch0.cvalue(o)
			case k == n-1 && mr.col1 >= 0:
				mr.cs[k] = mr.anch1.cvalue(o)
			default:
				v := m.newVar(initC, routeOwner+li)
				mr.cs[k] = varExpr(v)
			}
		}
		// A single-segment route anchored at both ends: the line is
		// determined by the first anchor; the second anchor must stay on
		// it (route constraint).
		if n == 1 {
			o := mr.orients[0]
			lhs := mr.anch1.cvalue(o).sub(mr.cs[0])
			if !lhs.isConst() {
				m.addCons(lhs, opEQ, 0)
			}
		}

		// Direction signs and monotonicity constraints.
		mr.sigma = make([]float64, n)
		pts := mr.points()
		for k := 0; k < n; k++ {
			ax, _ := dominant(mr.orients[k])
			d0 := pts[k].along(ax).eval(m.initVal)
			d1 := pts[k+1].along(ax).eval(m.initVal)
			if d1 >= d0 {
				mr.sigma[k] = 1
			} else {
				mr.sigma[k] = -1
			}
			delta := pts[k+1].along(ax).sub(pts[k].along(ax)).scale(mr.sigma[k])
			if !delta.isConst() {
				// Even-integer rounding moves each variable by ≤ 1, so the
				// delta can shrink by up to its term count; keep enough
				// margin that no segment can flip direction, clamped to
				// the lattice pitch (the smallest initial delta).
				margin := float64(4 + 2*len(delta.t))
				if margin > 12 {
					margin = 12
				}
				m.addCons(delta, opGE, margin)
			}
		}
		m.routes = append(m.routes, mr)
	}

	// Objective: total wirelength.
	objMap := map[int]float64{}
	for ri := range m.routes {
		mr := &m.routes[ri]
		pts := mr.points()
		for k := range mr.orients {
			ax, scalef := dominant(mr.orients[k])
			e := pts[k+1].along(ax).sub(pts[k].along(ax)).scale(mr.sigma[k] * scalef)
			for _, t := range e.t {
				objMap[t.v] += t.c
			}
		}
	}
	for v, c := range objMap {
		if c != 0 {
			m.obj = append(m.obj, term{v, c})
		}
	}

	// Fixed shapes per layer for interactive constraints.
	padNet := map[[3]int64]int{}
	for ni, n := range d.Nets {
		for _, ref := range []design.PadRef{n.P1, n.P2} {
			c := d.PadCenter(ref)
			padNet[[3]int64{int64(ref.Kind), c.X, c.Y}] = ni
		}
	}
	owner := func(kind design.PadKind, c geom.Point) int {
		if ni, ok := padNet[[3]int64{int64(kind), c.X, c.Y}]; ok {
			return ni
		}
		return -1
	}
	m.fixedShapes = make([][]fixedShape, d.WireLayers)
	for _, o := range d.Obstacles {
		m.fixedShapes[o.Layer] = append(m.fixedShapes[o.Layer],
			fixedShape{geom.OctFromRect(o.Box).Canonical(), -1})
	}
	for _, p := range d.IOPads {
		m.fixedShapes[0] = append(m.fixedShapes[0],
			fixedShape{geom.OctFromRect(p.Box()).Canonical(), owner(design.IOKind, p.Center)})
	}
	for _, p := range d.BumpPads {
		m.fixedShapes[d.WireLayers-1] = append(m.fixedShapes[d.WireLayers-1],
			fixedShape{p.Oct().Canonical(), owner(design.BumpKind, p.Center)})
	}
	for _, v := range d.FixedVias {
		oct := v.Oct(d.Rules).Canonical()
		for _, l := range []int{v.Slab, v.Slab + 1} {
			m.fixedShapes[l] = append(m.fixedShapes[l], fixedShape{oct, v.Net})
		}
	}
	return m
}
