package router

import (
	"context"

	"rdlroute/internal/ctile"
	"rdlroute/internal/design"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
	"rdlroute/internal/obs"
	"rdlroute/internal/par"
)

// PortfolioReport describes one ordering-portfolio race: which policy
// won and how every candidate scored. It is diagnostic output (carried
// on Result, never serialized in rdl-result/v1).
type PortfolioReport struct {
	// Winner is the registry index of the policy replayed on the real
	// lattice; WinnerName is its registry name.
	Winner     int    `json:"winner"`
	WinnerName string `json:"winner_name"`
	// Candidates holds one score per raced policy, indexed by registry
	// policy index.
	Candidates []PolicyScore `json:"candidates"`
}

// PolicyScore is one candidate's outcome on its scratch state: the nets
// it routed (after rip-up, when enabled) and the wirelength it paid.
// The JSON tags serve diagnostic embeddings (the rdlbench report); the
// rdl-result/v1 wire format still excludes the whole report.
type PolicyScore struct {
	Policy     int     `json:"policy"`
	Name       string  `json:"name"`
	Routed     int     `json:"routed"`
	Wirelength float64 `json:"wirelength"`
}

// portfolioRoute is the stage-4 racing scheduler. It runs the first
// opts.OrderPortfolio registry policies through the full stage-4 loop —
// plus the rip-up extension, when enabled, so candidates are scored on
// the same final routability a solo run would report — each on its own
// scratch clone of the post-stage-3 lattice, corridor model and layout,
// fanned out across the worker pool. A fixed total rule picks the winner
// (routed nets desc, wirelength asc, lowest policy index), and only the
// winner is replayed on the real lattice with the real tracer and memos
// attached — the race itself is silent and side-effect-free, which is
// what makes the portfolio run byte-identical to a solo run of the
// winning policy at any worker count.
//
// The winner's registry index is returned so the caller can pin the rest
// of the flow (the real rip-up rounds) to the same ordering the winning
// candidate used.
func portfolioRoute(ctx context.Context, d *design.Design, model *ctile.Model, sites []ctile.ViaSite, la *lattice.Lattice, lay *layout.Layout, opts Options, res *Result, tr obs.Tracer) (int, error) {
	k := opts.OrderPortfolio
	scores := make([]PolicyScore, k)
	nop := obs.Nop()
	err := par.ForEach(ctx, opts.Workers, k, func(i int) error {
		// Candidates run single-worker and unobserved: Workers=1 keeps a
		// candidate's inner fan-outs off the already-saturated pool, and
		// nil tracer/memos mean the race leaves no trace — only the
		// winner's replay performs tracer and memo side effects.
		policy := i
		copts := opts
		copts.Workers = 1
		copts.Speculative = false
		copts.Tracer = nil
		copts.SearchMemo = nil
		copts.CorridorMemo = nil
		copts.OrderPortfolio = 0
		copts.soloPolicy = &policy

		la2 := la.CloneScratch()
		lay2 := lay.Clone()
		model2 := model.CloneScratch()
		r2 := &Result{Layout: lay2, TotalNets: len(d.Nets)}
		if err := sequentialRoute(ctx, d, model2, sites, la2, lay2, copts, r2, nop); err != nil {
			return err
		}
		if copts.RipUpRounds > 0 {
			_, _ = ripUpReroute(ctx, d, la2, lay2, copts, copts.RipUpRounds, nop)
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		scores[i] = PolicyScore{
			Policy:     i,
			Name:       PortfolioPolicyName(i),
			Routed:     lay2.RoutedCount(),
			Wirelength: lay2.Wirelength(),
		}
		return nil
	})
	if err != nil {
		return 0, err
	}

	// Winner rule: routed nets desc, wirelength asc, lowest policy index.
	// Scanning in index order with strict-improvement comparisons makes
	// the lowest index win every tie, independent of race scheduling.
	win := 0
	for i := 1; i < k; i++ {
		if scores[i].Routed != scores[win].Routed {
			if scores[i].Routed > scores[win].Routed {
				win = i
			}
			continue
		}
		if scores[i].Wirelength < scores[win].Wirelength {
			win = i
		}
	}

	tr.Count("portfolio.raced", 1)
	tr.Count("portfolio.candidates", int64(k))
	tr.Count("portfolio.winner_index", int64(win))
	tr.Count("portfolio.routed_delta", int64(scores[win].Routed-scores[0].Routed))
	res.Portfolio = &PortfolioReport{
		Winner:     win,
		WinnerName: PortfolioPolicyName(win),
		Candidates: scores,
	}

	// Replay the winner on the real state with the real observers — the
	// one place the race touches the caller's lattice, model and layout.
	ropts := opts
	ropts.OrderPortfolio = 0
	ropts.soloPolicy = &win
	if ropts.Speculative {
		return win, speculativeRoute(ctx, d, model, sites, la, lay, ropts, res, tr)
	}
	return win, sequentialRoute(ctx, d, model, sites, la, lay, ropts, res, tr)
}
