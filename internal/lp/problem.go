// Package lp is a from-scratch linear-programming solver used in place of
// the Gurobi Optimizer the paper calls into. It implements a two-phase
// dense-tableau primal simplex with a Dantzig pricing rule and a Bland
// anti-cycling fallback, over a general problem form:
//
//	minimize    cᵀx
//	subject to  aᵢᵀx ⋈ bᵢ      (⋈ ∈ {≤, =, ≥})
//	            lo ≤ x ≤ hi    (bounds may be ±Inf)
//
// The layout-optimization LPs it solves are small after the optimizer's
// independent-component decomposition, so a dense tableau is the right
// trade-off: simple, exact (up to float64), and easily verified.
package lp

import (
	"fmt"
	"math"
)

// VarID identifies a decision variable within a Problem.
type VarID int

// Op is a constraint comparison operator.
type Op uint8

// Constraint operators.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is one coefficient·variable term of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Status is the outcome of a Solve call.
type Status uint8

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	// Aborted means Problem.Check reported an error mid-solve (typically a
	// cancelled context); the solution is unusable.
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Aborted:
		return "aborted"
	default:
		return "iteration-limit"
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // value per VarID (valid only when Status == Optimal)
	Obj    float64   // objective value at X
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; call NewProblem.
type Problem struct {
	lo, hi []float64
	obj    []float64
	cons   []constraint
	// MaxIters bounds simplex iterations; 0 means an automatic limit
	// proportional to the problem size.
	MaxIters int
	// Check, when non-nil, is polled every checkPollPeriod pivots by both
	// solvers; a non-nil return aborts the solve with Status Aborted. It is
	// how a cancelled routing job interrupts a long-running LP cleanly.
	Check func() error
}

// checkPollPeriod is how many pivots pass between Problem.Check polls.
const checkPollPeriod = 32

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of declared variables.
func (p *Problem) NumVars() int { return len(p.lo) }

// NumConstraints returns the number of added constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVar declares a variable with bounds [lo, hi]; either bound may be
// ±Inf. The objective coefficient starts at 0.
func (p *Problem) AddVar(lo, hi float64) VarID {
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.obj = append(p.obj, 0)
	return VarID(len(p.lo) - 1)
}

// AddFreeVar declares a variable with no bounds.
func (p *Problem) AddFreeVar() VarID {
	return p.AddVar(math.Inf(-1), math.Inf(1))
}

// SetObj sets the objective coefficient of v (minimization).
func (p *Problem) SetObj(v VarID, c float64) { p.obj[v] = c }

// AddObj adds c to the objective coefficient of v.
func (p *Problem) AddObj(v VarID, c float64) { p.obj[v] += c }

// AddConstraint adds the linear constraint Σ terms ⋈ rhs. Terms referring
// to the same variable are accumulated.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.cons = append(p.cons, constraint{cp, op, rhs})
}

// AddLE adds Σ terms ≤ rhs.
func (p *Problem) AddLE(terms []Term, rhs float64) { p.AddConstraint(terms, LE, rhs) }

// AddGE adds Σ terms ≥ rhs.
func (p *Problem) AddGE(terms []Term, rhs float64) { p.AddConstraint(terms, GE, rhs) }

// AddEQ adds Σ terms = rhs.
func (p *Problem) AddEQ(terms []Term, rhs float64) { p.AddConstraint(terms, EQ, rhs) }

// CheckFeasible verifies that x satisfies every variable bound and every
// constraint of the problem within eps, returning a descriptive error for
// the first violation. The QA harness and the fuzz targets use it to hold
// both simplex implementations to their own problem statements.
func (p *Problem) CheckFeasible(x []float64, eps float64) error {
	if len(x) < len(p.lo) {
		return fmt.Errorf("lp: solution has %d values for %d vars", len(x), len(p.lo))
	}
	for v, lo := range p.lo {
		if x[v] < lo-eps || x[v] > p.hi[v]+eps {
			return fmt.Errorf("lp: var %d = %v outside bounds [%v, %v]", v, x[v], lo, p.hi[v])
		}
	}
	for i, c := range p.cons {
		sum := 0.0
		for _, t := range c.terms {
			sum += t.Coef * x[t.Var]
		}
		switch c.op {
		case LE:
			if sum > c.rhs+eps {
				return fmt.Errorf("lp: constraint %d: %v > %v", i, sum, c.rhs)
			}
		case GE:
			if sum < c.rhs-eps {
				return fmt.Errorf("lp: constraint %d: %v < %v", i, sum, c.rhs)
			}
		case EQ:
			if math.Abs(sum-c.rhs) > eps {
				return fmt.Errorf("lp: constraint %d: %v != %v", i, sum, c.rhs)
			}
		}
	}
	return nil
}

// Validate checks internal consistency (variable ids in range, finite
// coefficients) and returns a descriptive error for the first violation.
func (p *Problem) Validate() error {
	for i, c := range p.cons {
		if math.IsNaN(c.rhs) || math.IsInf(c.rhs, 0) {
			return fmt.Errorf("lp: constraint %d has non-finite rhs %v", i, c.rhs)
		}
		for _, t := range c.terms {
			if int(t.Var) < 0 || int(t.Var) >= len(p.lo) {
				return fmt.Errorf("lp: constraint %d refers to unknown var %d", i, t.Var)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("lp: constraint %d has non-finite coefficient %v", i, t.Coef)
			}
		}
	}
	for v, lo := range p.lo {
		if lo > p.hi[v] {
			return fmt.Errorf("lp: var %d has empty bound [%v, %v]", v, lo, p.hi[v])
		}
	}
	return nil
}
