package codec

import (
	"fmt"
	"io"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/layout"
	"rdlroute/internal/router"
)

// Wire representation of a routing result. The layout geometry is
// complete — together with the design document a result round-trips
// through the codec and re-checks DRC-clean. The in-memory Obs snapshot
// is deliberately not part of the wire format (fetch the trace instead);
// runtime is serialized in milliseconds.
type resultDoc struct {
	Schema string `json:"schema"`
	Design string `json:"design"` // design name, cross-checked on decode

	Routability float64 `json:"routability"`
	Wirelength  float64 `json:"wirelength"`
	RoutedNets  int     `json:"routed_nets"`
	TotalNets   int     `json:"total_nets"`

	ConcurrentRouted int `json:"concurrent_routed"`
	SequentialRouted int `json:"sequential_routed"`
	CorridorRouted   int `json:"corridor_routed"`
	FallbackRouted   int `json:"fallback_routed"`
	RipUpRouted      int `json:"ripup_routed"`

	WirelengthBeforeLP float64 `json:"wirelength_before_lp"`
	LPIterations       int     `json:"lp_iterations"`
	LPComponents       int     `json:"lp_components"`
	TileCount          int     `json:"tile_count"`
	RuntimeMS          float64 `json:"runtime_ms"`

	Layout layoutDoc `json:"layout"`
}

type layoutDoc struct {
	Routes     []routeDoc `json:"routes,omitempty"`
	Vias       []viaDoc   `json:"vias,omitempty"`
	RoutedNets []int      `json:"routed_nets,omitempty"` // ascending net indices
}

type routeDoc struct {
	Net   int        `json:"net"`
	Layer int        `json:"layer"`
	Pts   [][2]int64 `json:"pts"`
}

type viaDoc struct {
	Net    int      `json:"net"`
	Center [2]int64 `json:"center"`
	Slab   int      `json:"slab"`
	Width  int64    `json:"width"`
}

func layoutToDoc(l *layout.Layout) layoutDoc {
	var doc layoutDoc
	for _, r := range l.Routes {
		pts := make([][2]int64, len(r.Pts))
		for i, p := range r.Pts {
			pts[i] = pointDoc(p)
		}
		doc.Routes = append(doc.Routes, routeDoc{Net: r.Net, Layer: r.Layer, Pts: pts})
	}
	for _, v := range l.Vias {
		doc.Vias = append(doc.Vias, viaDoc{Net: v.Net, Center: pointDoc(v.Center), Slab: v.Slab, Width: v.Width})
	}
	for i := range l.D.Nets {
		if l.Routed(i) {
			doc.RoutedNets = append(doc.RoutedNets, i)
		}
	}
	return doc
}

// EncodeResult writes res as an rdl-result/v1 JSON document. Encoding the
// same result twice produces identical bytes.
func EncodeResult(w io.Writer, res *router.Result) error {
	doc := resultDoc{
		Schema:             ResultSchema,
		Design:             res.Layout.D.Name,
		Routability:        res.Routability,
		Wirelength:         res.Wirelength,
		RoutedNets:         res.RoutedNets,
		TotalNets:          res.TotalNets,
		ConcurrentRouted:   res.ConcurrentRouted,
		SequentialRouted:   res.SequentialRouted,
		CorridorRouted:     res.CorridorRouted,
		FallbackRouted:     res.FallbackRouted,
		RipUpRouted:        res.RipUpRouted,
		WirelengthBeforeLP: res.WirelengthBeforeLP,
		LPIterations:       res.LPIterations,
		LPComponents:       res.LPComponents,
		TileCount:          res.TileCount,
		RuntimeMS:          float64(res.Runtime) / float64(time.Millisecond),
		Layout:             layoutToDoc(res.Layout),
	}
	return writeDoc(w, ResultSchema, doc)
}

// DecodeResult reads an rdl-result/v1 document against its design. The
// design must be the one the result was computed on (matched by name);
// every net, layer and slab reference is range-checked.
func DecodeResult(r io.Reader, d *design.Design) (*router.Result, error) {
	var doc resultDoc
	if err := decodeDoc(r, ResultSchema, &doc); err != nil {
		return nil, err
	}
	if doc.Design != d.Name {
		return nil, invalidf(ResultSchema, "design",
			"result is for design %q, decoding against %q", doc.Design, d.Name)
	}
	l := layout.New(d)
	for i, rd := range doc.Layout.Routes {
		path := fmt.Sprintf("layout.routes[%d]", i)
		if rd.Net < 0 || rd.Net >= len(d.Nets) {
			return nil, invalidf(ResultSchema, path+".net", "net %d out of range [0,%d)", rd.Net, len(d.Nets))
		}
		if rd.Layer < 0 || rd.Layer >= d.WireLayers {
			return nil, invalidf(ResultSchema, path+".layer", "layer %d out of range [0,%d)", rd.Layer, d.WireLayers)
		}
		if len(rd.Pts) < 2 {
			return nil, invalidf(ResultSchema, path+".pts", "polyline needs >= 2 points, got %d", len(rd.Pts))
		}
		route := layout.Route{Net: rd.Net, Layer: rd.Layer}
		for _, p := range rd.Pts {
			route.Pts = append(route.Pts, docPoint(p))
		}
		l.Routes = append(l.Routes, route)
	}
	for i, vd := range doc.Layout.Vias {
		path := fmt.Sprintf("layout.vias[%d]", i)
		if vd.Net < 0 || vd.Net >= len(d.Nets) {
			return nil, invalidf(ResultSchema, path+".net", "net %d out of range [0,%d)", vd.Net, len(d.Nets))
		}
		if vd.Slab < 0 || vd.Slab >= d.WireLayers-1 {
			return nil, invalidf(ResultSchema, path+".slab", "slab %d out of range [0,%d)", vd.Slab, d.WireLayers-1)
		}
		l.Vias = append(l.Vias, layout.Via{Net: vd.Net, Center: docPoint(vd.Center), Slab: vd.Slab, Width: vd.Width})
	}
	prev := -1
	for i, n := range doc.Layout.RoutedNets {
		path := fmt.Sprintf("layout.routed_nets[%d]", i)
		if n < 0 || n >= len(d.Nets) {
			return nil, invalidf(ResultSchema, path, "net %d out of range [0,%d)", n, len(d.Nets))
		}
		if n <= prev {
			return nil, invalidf(ResultSchema, path, "net indices must be strictly ascending")
		}
		prev = n
		l.MarkRouted(n)
	}
	return &router.Result{
		Layout:             l,
		Routability:        doc.Routability,
		Wirelength:         doc.Wirelength,
		RoutedNets:         doc.RoutedNets,
		TotalNets:          doc.TotalNets,
		ConcurrentRouted:   doc.ConcurrentRouted,
		SequentialRouted:   doc.SequentialRouted,
		CorridorRouted:     doc.CorridorRouted,
		FallbackRouted:     doc.FallbackRouted,
		RipUpRouted:        doc.RipUpRouted,
		WirelengthBeforeLP: doc.WirelengthBeforeLP,
		LPIterations:       doc.LPIterations,
		LPComponents:       doc.LPComponents,
		TileCount:          doc.TileCount,
		Runtime:            time.Duration(doc.RuntimeMS * float64(time.Millisecond)),
	}, nil
}
