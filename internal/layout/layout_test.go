package layout

import (
	"math"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
)

func dsn() *design.Design {
	return &design.Design{
		Name:       "t",
		Outline:    geom.RectWH(0, 0, 600, 600),
		WireLayers: 3,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips:      []design.Chip{{Name: "c", Box: geom.RectWH(0, 0, 600, 600)}},
		IOPads: []design.IOPad{
			{ID: 0, Chip: 0, Center: geom.Pt(48, 48), HalfW: 8},
			{ID: 1, Chip: 0, Center: geom.Pt(480, 48), HalfW: 8},
		},
		Nets: []design.Net{{
			ID: 0,
			P1: design.PadRef{Kind: design.IOKind, Index: 0},
			P2: design.PadRef{Kind: design.IOKind, Index: 1},
		}},
	}
}

func TestAddPathSplitsLayers(t *testing.T) {
	l := New(dsn())
	path := []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(120, 48)},
		{Layer: 1, Pt: geom.Pt(120, 48)}, // via down
		{Layer: 1, Pt: geom.Pt(400, 48)},
		{Layer: 0, Pt: geom.Pt(400, 48)}, // via up
		{Layer: 0, Pt: geom.Pt(480, 48)},
	}
	l.AddPath(0, path)
	if len(l.Routes) != 3 {
		t.Fatalf("routes = %d, want 3: %+v", len(l.Routes), l.Routes)
	}
	if len(l.Vias) != 2 {
		t.Fatalf("vias = %d, want 2: %+v", len(l.Vias), l.Vias)
	}
	for _, v := range l.Vias {
		if v.Slab != 0 {
			t.Errorf("via slab = %d, want 0", v.Slab)
		}
	}
	want := 72.0 + 280 + 80
	if wl := l.NetWirelength(0); math.Abs(wl-want) > 1e-9 {
		t.Errorf("wirelength = %v, want %v", wl, want)
	}
}

func TestConnectivity(t *testing.T) {
	l := New(dsn())
	path := []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	}
	l.AddPath(0, path)
	if !l.Connected(0) {
		t.Error("direct route should connect the pads")
	}
	// A route that stops short does not connect.
	l2 := New(dsn())
	l2.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(400, 48)},
	})
	if l2.Connected(0) {
		t.Error("partial route should not connect")
	}
	// Two disjoint pieces joined by a via stack connect.
	l3 := New(dsn())
	l3.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(240, 48)},
	})
	l3.AddPath(0, []lattice.PathStep{
		{Layer: 2, Pt: geom.Pt(240, 48)},
		{Layer: 2, Pt: geom.Pt(480, 48)},
	})
	if l3.Connected(0) {
		t.Error("layer-disjoint routes should not connect without vias")
	}
	l3.AddStack(0, geom.Pt(240, 48), 0, 2)
	if l3.Connected(0) {
		t.Error("far pad is on layer 0 but the route arrives on layer 2")
	}
	l3.AddStack(0, geom.Pt(480, 48), 0, 2)
	if !l3.Connected(0) {
		t.Error("stacks at the joint and the far pad should connect the net")
	}
}

func TestConnectedTJunction(t *testing.T) {
	// A branch ending on the interior of another segment of the same net
	// — no shared vertex — still connects (endpoint-on-segment union).
	l := New(dsn())
	// Trunk passes over the second pad's x at y=144; drop to it via a
	// branch whose junction (240,144) is strictly inside the trunk run.
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(48, 144)},
		{Layer: 0, Pt: geom.Pt(480, 144)},
	})
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(240, 144)}, // interior of the trunk's 48→480 run
		{Layer: 0, Pt: geom.Pt(240, 48)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	})
	if !l.Connected(0) {
		t.Error("T-junction touch should connect the net")
	}
	// Same branch on a different layer must not connect.
	l2 := New(dsn())
	l2.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(48, 144)},
		{Layer: 0, Pt: geom.Pt(480, 144)},
	})
	l2.AddPath(0, []lattice.PathStep{
		{Layer: 1, Pt: geom.Pt(240, 144)},
		{Layer: 1, Pt: geom.Pt(240, 48)},
		{Layer: 1, Pt: geom.Pt(480, 48)},
	})
	if l2.Connected(0) {
		t.Error("touch on a different layer must not connect")
	}
	// A near miss (one unit off the segment) must not connect.
	l3 := New(dsn())
	l3.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(48, 144)},
		{Layer: 0, Pt: geom.Pt(480, 144)},
	})
	l3.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(240, 145)},
		{Layer: 0, Pt: geom.Pt(240, 48)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	})
	if l3.Connected(0) {
		t.Error("a point one unit off the segment must not connect")
	}
	// A diagonal trunk with an on-segment touch also connects (exact
	// collinearity, not bbox membership).
	l4 := New(dsn())
	l4.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(288, 288)},
	})
	l4.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(120, 120)}, // on the diagonal
		{Layer: 0, Pt: geom.Pt(480, 120)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	})
	if !l4.Connected(0) {
		t.Error("diagonal T-junction touch should connect")
	}
}

func TestConnectedRespectsPadLayer(t *testing.T) {
	// A route that reaches the pad's x/y on the wrong layer does not count.
	l := New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 1, Pt: geom.Pt(48, 48)},
		{Layer: 1, Pt: geom.Pt(480, 48)},
	})
	if l.Connected(0) {
		t.Error("layer-1 route must not connect layer-0 pads without vias")
	}
	l.AddStack(0, geom.Pt(48, 48), 0, 1)
	l.AddStack(0, geom.Pt(480, 48), 0, 1)
	if !l.Connected(0) {
		t.Error("stacks at both pads should connect")
	}
}

func TestMetrics(t *testing.T) {
	l := New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	})
	if l.Routability() != 0 {
		t.Error("unmarked net should not count toward routability")
	}
	if l.Wirelength() != 0 {
		t.Error("wirelength counts only routed nets (paper's metric)")
	}
	l.MarkRouted(0)
	if l.Routability() != 100 {
		t.Errorf("routability = %v", l.Routability())
	}
	if math.Abs(l.Wirelength()-432) > 1e-9 {
		t.Errorf("wirelength = %v", l.Wirelength())
	}
	if l.RoutedCount() != 1 || !l.Routed(0) {
		t.Error("routed bookkeeping")
	}
}

func TestDiagonalWirelength(t *testing.T) {
	l := New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(0, 0)},
		{Layer: 0, Pt: geom.Pt(120, 120)},
		{Layer: 0, Pt: geom.Pt(240, 120)},
	})
	l.MarkRouted(0)
	want := 120*geom.Sqrt2 + 120
	if math.Abs(l.Wirelength()-want) > 1e-9 {
		t.Errorf("wirelength = %v, want %v", l.Wirelength(), want)
	}
}

func TestCloneAndRemoveNet(t *testing.T) {
	l := New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)}, {Layer: 0, Pt: geom.Pt(480, 48)},
	})
	l.AddStack(0, geom.Pt(48, 48), 0, 1)
	l.MarkRouted(0)
	c := l.Clone()
	// Mutating the clone leaves the original untouched.
	c.RemoveNet(0)
	if c.RoutedCount() != 0 || len(c.Routes) != 0 || len(c.Vias) != 0 {
		t.Errorf("clone after RemoveNet: %v routes %v vias routed=%d",
			len(c.Routes), len(c.Vias), c.RoutedCount())
	}
	if l.RoutedCount() != 1 || len(l.Routes) != 1 || len(l.Vias) != 1 {
		t.Errorf("original mutated: %v routes %v vias", len(l.Routes), len(l.Vias))
	}
	// Deep copy of points.
	c2 := l.Clone()
	c2.Routes[0].Pts[0] = geom.Pt(0, 0)
	if l.Routes[0].Pts[0].Eq(geom.Pt(0, 0)) {
		t.Error("clone shares point storage")
	}
}

func TestViaCountAndString(t *testing.T) {
	l := New(dsn())
	l.AddStack(0, geom.Pt(48, 48), 0, 2)
	if l.ViaCount() != 2 {
		t.Errorf("ViaCount = %d, want 2 slabs", l.ViaCount())
	}
	if s := l.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestQualityStats(t *testing.T) {
	l := New(dsn())
	// Straight route: detour ratio exactly 1.
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)}, {Layer: 0, Pt: geom.Pt(480, 48)},
	})
	l.MarkRouted(0)
	q := l.QualityStats()
	if q.Nets != 1 {
		t.Fatalf("nets = %d", q.Nets)
	}
	if math.Abs(q.MeanDetour-1) > 1e-9 || math.Abs(q.MaxDetour-1) > 1e-9 {
		t.Errorf("straight route detour = %v/%v, want 1", q.MeanDetour, q.MaxDetour)
	}
	if q.MaxNet != 0 {
		t.Errorf("MaxNet = %d", q.MaxNet)
	}
	if math.Abs(q.LowerBound-432) > 1e-9 || math.Abs(q.Actual-432) > 1e-9 {
		t.Errorf("lb/actual = %v/%v", q.LowerBound, q.Actual)
	}
}

func TestQualityStatsDetour(t *testing.T) {
	l := New(dsn())
	// A detoured route: up 96, across, down 96.
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(48, 48)},
		{Layer: 0, Pt: geom.Pt(48, 144)},
		{Layer: 0, Pt: geom.Pt(480, 144)},
		{Layer: 0, Pt: geom.Pt(480, 48)},
	})
	l.MarkRouted(0)
	q := l.QualityStats()
	want := (96.0 + 432 + 96) / 432
	if math.Abs(q.MaxDetour-want) > 1e-9 {
		t.Errorf("detour = %v, want %v", q.MaxDetour, want)
	}
	if q.P50Detour != q.MaxDetour || q.P95Detour != q.MaxDetour {
		t.Errorf("single-net percentiles should equal the only ratio")
	}
}

func TestQualityStatsEmpty(t *testing.T) {
	q := New(dsn()).QualityStats()
	if q.Nets != 0 || q.MeanDetour != 0 {
		t.Errorf("empty quality = %+v", q)
	}
}
