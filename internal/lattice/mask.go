package lattice

import (
	"math/bits"

	"rdlroute/internal/geom"
)

// RegionMask is a routing region rasterized at lattice resolution: one
// bit per (layer, node), indexed like wireOcc. The router builds one per
// net — rasterizing corridor octagons or the chip/fan-out predicate once
// — so the A* inner loop tests a bit instead of re-evaluating a geometric
// closure for every probed neighbor. A clear bit means the node is
// disallowed (terminals are exempted by the search itself).
type RegionMask struct {
	nx, ny, layers int
	x0, y0         int64
	pitch          int64
	bits           []uint64
}

// NewRegionMask returns an empty (all-disallowed) mask sized to the
// lattice.
func (la *Lattice) NewRegionMask() *RegionMask {
	n := la.Layers * la.NX * la.NY
	return &RegionMask{
		nx: la.NX, ny: la.NY, layers: la.Layers,
		x0: la.X0, y0: la.Y0, pitch: la.Pitch,
		bits: make([]uint64, (n+63)/64),
	}
}

// Allowed reports whether the node (layer l, indices i,j) is in the
// region. Out-of-range layers are disallowed.
func (m *RegionMask) Allowed(l, i, j int) bool {
	if l < 0 || l >= m.layers {
		return false
	}
	k := (l*m.ny+j)*m.nx + i
	return m.bits[k>>6]&(1<<(uint(k)&63)) != 0
}

// allowRun sets the bits for nodes i in [ia, ib] of row j on layer l,
// clamping to the lattice. Word-sized fills keep rasterization cheap.
func (m *RegionMask) allowRun(l, j, ia, ib int) { m.setRun(l, j, ia, ib, true) }

// clearRun clears the same range.
func (m *RegionMask) clearRun(l, j, ia, ib int) { m.setRun(l, j, ia, ib, false) }

func (m *RegionMask) setRun(l, j, ia, ib int, v bool) {
	if j < 0 || j >= m.ny || l < 0 || l >= m.layers {
		return
	}
	if ia < 0 {
		ia = 0
	}
	if ib >= m.nx {
		ib = m.nx - 1
	}
	if ia > ib {
		return
	}
	base := (l*m.ny + j) * m.nx
	lo, hi := base+ia, base+ib
	wlo, whi := lo>>6, hi>>6
	mlo := ^uint64(0) << (uint(lo) & 63)
	mhi := ^uint64(0) >> (63 - uint(hi)&63)
	if wlo == whi {
		if v {
			m.bits[wlo] |= mlo & mhi
		} else {
			m.bits[wlo] &^= mlo & mhi
		}
		return
	}
	if v {
		m.bits[wlo] |= mlo
		for w := wlo + 1; w < whi; w++ {
			m.bits[w] = ^uint64(0)
		}
		m.bits[whi] |= mhi
	} else {
		m.bits[wlo] &^= mlo
		for w := wlo + 1; w < whi; w++ {
			m.bits[w] = 0
		}
		m.bits[whi] &^= mhi
	}
}

// nodeCeil returns the smallest node index whose coordinate is ≥ v,
// given the axis origin.
func nodeCeil(v, origin, pitch int64) int {
	d := v - origin
	if d <= 0 {
		// Negative coordinates round toward the origin: node 0 is the
		// first candidate, and the caller clamps.
		if d%pitch == 0 {
			return int(d / pitch)
		}
		return int(d / pitch) // trunc toward zero == ceil for negatives
	}
	return int((d + pitch - 1) / pitch)
}

// nodeFloor returns the largest node index whose coordinate is ≤ v.
func nodeFloor(v, origin, pitch int64) int {
	d := v - origin
	if d < 0 {
		if d%pitch == 0 {
			return int(d / pitch)
		}
		return int(d/pitch) - 1
	}
	return int(d / pitch)
}

// AllowOct rasterizes the octagon onto layer l: every lattice node the
// canonical region contains becomes allowed. Row by row, the eight
// half-plane bounds reduce to one x-interval, so rasterization is
// O(rows), not O(rows·cols).
func (m *RegionMask) AllowOct(l int, o geom.Oct8) {
	c := o.Canonical()
	if c.XLo > c.XHi || c.YLo > c.YHi || c.SLo > c.SHi || c.DLo > c.DHi {
		return
	}
	j0 := nodeCeil(c.YLo, m.y0, m.pitch)
	j1 := nodeFloor(c.YHi, m.y0, m.pitch)
	if j0 < 0 {
		j0 = 0
	}
	if j1 >= m.ny {
		j1 = m.ny - 1
	}
	for j := j0; j <= j1; j++ {
		y := m.y0 + int64(j)*m.pitch
		xlo := geom.Max64(c.XLo, geom.Max64(c.SLo-y, y-c.DHi))
		xhi := geom.Min64(c.XHi, geom.Min64(c.SHi-y, y-c.DLo))
		if xlo > xhi {
			continue
		}
		m.allowRun(l, j, nodeCeil(xlo, m.x0, m.pitch), nodeFloor(xhi, m.x0, m.pitch))
	}
}

// AllowRect rasterizes the rectangle (inclusive bounds, matching
// Rect.Contains) onto layer l.
func (m *RegionMask) AllowRect(l int, r geom.Rect) {
	m.rectRun(l, r, true)
}

// ClearRect removes the rectangle's nodes from layer l, e.g. a foreign
// chip's fan-in region carved out of the fan-out mask.
func (m *RegionMask) ClearRect(l int, r geom.Rect) {
	m.rectRun(l, r, false)
}

func (m *RegionMask) rectRun(l int, r geom.Rect, v bool) {
	if r.Empty() {
		return
	}
	j0 := nodeCeil(r.Y0, m.y0, m.pitch)
	j1 := nodeFloor(r.Y1, m.y0, m.pitch)
	ia := nodeCeil(r.X0, m.x0, m.pitch)
	ib := nodeFloor(r.X1, m.x0, m.pitch)
	for j := j0; j <= j1; j++ {
		m.setRun(l, j, ia, ib, v)
	}
}

// AllowWindow fills the inclusive node-index window on layer l.
func (m *RegionMask) AllowWindow(l, i0, j0, i1, j1 int) {
	for j := j0; j <= j1; j++ {
		m.allowRun(l, j, i0, i1)
	}
}

// Overlaps reports whether the two masks share any allowed node. Masks
// from different lattices (mismatched word counts) are conservatively
// treated as overlapping — callers compare masks of one lattice only.
func (m *RegionMask) Overlaps(o *RegionMask) bool {
	if m == nil || o == nil {
		return true
	}
	if len(m.bits) != len(o.bits) {
		return true
	}
	for k, w := range m.bits {
		if w&o.bits[k] != 0 {
			return true
		}
	}
	return false
}

// OverlapCount returns the number of allowed nodes the two masks share.
func (m *RegionMask) OverlapCount(o *RegionMask) int {
	if m == nil || o == nil || len(m.bits) != len(o.bits) {
		return 0
	}
	n := 0
	for k, w := range m.bits {
		n += bits.OnesCount64(w & o.bits[k])
	}
	return n
}
