// Package dsu implements a disjoint-set union (union-find) structure with
// path compression and union by rank. It backs the fan-out grid merging,
// Kruskal-style connectivity checks, and the LP optimizer's
// independent-component decomposition.
package dsu

// DSU is a disjoint-set forest over the elements 0..n−1.
type DSU struct {
	parent []int
	rank   []int
	count  int // number of disjoint sets
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int, n),
		rank:   make([]int, n),
		count:  n,
	}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Count returns the current number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already joined).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.count--
	return true
}

// Same reports whether x and y belong to the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Groups returns the members of every set, keyed by representative.
func (d *DSU) Groups() map[int][]int {
	g := make(map[int][]int, d.count)
	for i := range d.parent {
		r := d.Find(i)
		g[r] = append(g[r], i)
	}
	return g
}
