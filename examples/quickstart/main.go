// Quickstart: generate the paper's dense1 benchmark, route it with the
// five-stage via-based flow, and print the Table-I-style metrics.
package main

import (
	"fmt"
	"log"

	"rdlroute"
)

func main() {
	d, err := rdlroute.GenerateBenchmark("dense1")
	if err != nil {
		log.Fatal(err)
	}
	s := d.Stats()
	fmt.Printf("circuit %s: %d chips, |Q|=%d, |G|=%d, |N|=%d, |Lw|=%d, |Lv|=%d\n",
		s.Name, s.Chips, s.Q, s.G, s.N, s.WireLayers, s.ViaLayers)

	res, err := rdlroute.Route(d, rdlroute.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routability  %.1f%% (%d/%d nets)\n", res.Routability, res.RoutedNets, res.TotalNets)
	fmt.Printf("wirelength   %.0f µm (before LP optimization: %.0f µm)\n",
		res.Wirelength, res.WirelengthBeforeLP)
	fmt.Printf("vias         %d\n", res.Layout.ViaCount())
	fmt.Printf("runtime      %v\n", res.Runtime)

	if vs := rdlroute.Check(res.Layout); len(vs) == 0 {
		fmt.Println("design rules clean")
	} else {
		fmt.Printf("%d design-rule violations (first: %v)\n", len(vs), vs[0])
	}
}
