package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdlroute/internal/design"
)

func genDense1(t *testing.T) *design.Design {
	t.Helper()
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouteContextAlreadyCancelled(t *testing.T) {
	d := genDense1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RouteContext(ctx, d, DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
}

func TestRouteContextDeadlineMidRun(t *testing.T) {
	d := genDense1(t)
	// dense1 routes in >100ms; a 15ms deadline fires mid-flow, somewhere
	// inside the stage checkpoints or the A*/DP/LP poll loops.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	res, err := RouteContext(ctx, d, DefaultOptions())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("deadlined run returned a result: %+v", res)
	}
}

// TestCancelLeavesNoCorruption is the fingerprint gate: a cancelled run in
// between two full runs must not change what the full runs compute. Each
// run builds its own lattice, so this pins the absence of hidden shared
// state (package-level caches, pooled search buffers leaking occupancy).
func TestCancelLeavesNoCorruption(t *testing.T) {
	opts := DefaultOptions()

	res1, la1, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := la1.Fingerprint()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	if _, _, err := route(ctx, genDense1(t), opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run deadline: err = %v, want context.DeadlineExceeded", err)
	}
	cancel()

	res2, la2, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fp2 := la2.Fingerprint(); fp2 != fp1 {
		t.Fatalf("lattice fingerprint changed after a cancelled run: %x != %x", fp2, fp1)
	}
	if res1.Routability != res2.Routability || res1.Wirelength != res2.Wirelength ||
		res1.RoutedNets != res2.RoutedNets {
		t.Fatalf("results diverged after a cancelled run: %+v vs %+v", res1, res2)
	}
}
