package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/layout"
	"rdlroute/internal/metrics"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

func dense1(t *testing.T) *design.Design {
	t.Helper()
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// gatedRoute returns a RouteFunc that blocks until the gate closes (or
// the job context fires), making queue-occupancy tests deterministic.
func gatedRoute(gate <-chan struct{}) RouteFunc {
	return func(ctx context.Context, d *design.Design, opts router.Options) (*router.Result, error) {
		select {
		case <-gate:
			return &router.Result{Layout: layout.New(d), TotalNets: len(d.Nets)}, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("router: %w", ctx.Err())
		}
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestQueueSaturation429: with 4 workers held at a gate and a queue of 8,
// a burst of 16 submissions accepts exactly 12 and rejects 4 with 429 +
// Retry-After.
func TestQueueSaturation429(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 4, QueueDepth: 8, Route: gatedRoute(gate)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	d := dense1(t)

	var accepted, rejected []string
	for i := 0; i < 16; i++ {
		status, body := submitDesign(t, ts.URL, d, 0)
		switch status.StatusCode {
		case http.StatusAccepted:
			accepted = append(accepted, body.ID)
		case http.StatusTooManyRequests:
			if ra := status.Header.Get("Retry-After"); ra == "" {
				t.Fatalf("429 without Retry-After")
			}
			rejected = append(rejected, "x")
		default:
			t.Fatalf("submission %d: unexpected status %d", i, status.StatusCode)
		}
	}
	// The 4 workers have each pulled a job off the queue before blocking
	// at the gate, so the full system holds workers+depth = 12 jobs.
	// Allow one fewer in case a worker has not yet pulled its first job.
	if len(accepted) < 11 || len(accepted) > 12 || len(accepted)+len(rejected) != 16 {
		t.Fatalf("accepted %d, rejected %d; want 12 (±1 pull race) and the rest 429",
			len(accepted), len(rejected))
	}
	close(gate)
	for _, id := range accepted {
		waitState(t, ts.URL, id, JobDone, 10*time.Second)
	}
	if m := s.Metrics(); m.Rejected != int64(len(rejected)) || m.Completed != int64(len(accepted)) {
		t.Fatalf("metrics %+v do not match accepted=%d rejected=%d", m, len(accepted), len(rejected))
	}
	shutdown(t, s)
}

// TestDeadlineAbortsSlowRoute: a 1 ms deadline on a real dense1 route
// fails with DeadlineExceeded, and the next full-length job on the same
// server produces a bit-identical result to an unperturbed run.
func TestDeadlineAbortsSlowRoute(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdown(t, s)
	d := dense1(t)

	ref, err := router.Route(dense1(t), router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	j, err := s.Submit(d, router.DefaultOptions(), time.Millisecond, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j)
	if j.State != JobFailed || !errors.Is(j.Err, context.DeadlineExceeded) {
		t.Fatalf("deadlined job: state %s err %v, want failed/DeadlineExceeded", j.State, j.Err)
	}

	j2, err := s.Submit(dense1(t), router.DefaultOptions(), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j2)
	if j2.State != JobDone {
		t.Fatalf("follow-up job: state %s err %v", j2.State, j2.Err)
	}
	if got, want := encodeStable(t, j2.Result), encodeStable(t, ref); !bytes.Equal(got, want) {
		t.Fatal("result after a deadlined job differs from an unperturbed run")
	}
}

// TestConcurrentDeterminism is the determinism gate: four workers routing
// dense1 concurrently must produce results bit-identical to a sequential
// run.
func TestConcurrentDeterminism(t *testing.T) {
	ref, err := router.Route(dense1(t), router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := encodeStable(t, ref)

	s := New(Config{Workers: 4, QueueDepth: 8})
	defer shutdown(t, s)
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(dense1(t), router.DefaultOptions(), 0, "")
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		waitJob(t, s, j)
		if j.State != JobDone {
			t.Fatalf("job %d: state %s err %v", i, j.State, j.Err)
		}
		if got := encodeStable(t, j.Result); !bytes.Equal(got, want) {
			t.Fatalf("job %d: concurrent result differs from sequential reference", i)
		}
		if v := drc.Check(j.Result.Layout); len(v) != 0 {
			t.Fatalf("job %d: %d DRC violations", i, len(v))
		}
	}
}

// TestGracefulShutdownDrains: shutdown refuses new jobs while queued and
// in-flight jobs run to completion.
func TestGracefulShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Route: gatedRoute(gate)})
	d := dense1(t)

	running, _ := s.Submit(d, router.DefaultOptions(), 0, "")
	queued, _ := s.Submit(d, router.DefaultOptions(), 0, "")
	if running == nil || queued == nil {
		t.Fatal("submissions failed")
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(d, router.DefaultOptions(), 0, ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err %v, want ErrDraining", err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, j := range []*Job{running, queued} {
		if j.State != JobDone {
			t.Fatalf("job %s not drained: state %s err %v", j.ID, j.State, j.Err)
		}
	}
}

// TestIdempotencyKey: replaying a submission with the same key returns
// the same job instead of enqueueing a duplicate.
func TestIdempotencyKey(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Route: gatedRoute(gate)})
	d := dense1(t)

	j1, err := s.Submit(d, router.DefaultOptions(), 0, "key-A")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(d, router.DefaultOptions(), 0, "key-A")
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatalf("idempotent replay created a new job: %s vs %s", j1.ID, j2.ID)
	}
	j3, err := s.Submit(d, router.DefaultOptions(), 0, "key-B")
	if err != nil {
		t.Fatal(err)
	}
	if j3 == j1 {
		t.Fatal("distinct keys shared a job")
	}
	close(gate)
	shutdown(t, s)
}

// TestCancelEndpoints: cancelling a queued job is immediate; cancelling a
// running job fires its context.
func TestCancel(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := New(Config{Workers: 1, QueueDepth: 4, Route: gatedRoute(gate)})
	defer shutdown(t, s)
	d := dense1(t)

	running, _ := s.Submit(d, router.DefaultOptions(), 0, "")
	queued, _ := s.Submit(d, router.DefaultOptions(), 0, "")

	if !s.Cancel(queued.ID) {
		t.Fatal("cancel queued failed")
	}
	waitJob(t, s, queued)
	if queued.State != JobCancelled {
		t.Fatalf("queued job state %s, want cancelled", queued.State)
	}

	// Wait until the worker picks up the running job, then cancel it.
	for {
		s.mu.Lock()
		st := running.State
		s.mu.Unlock()
		if st == JobRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(running.ID) {
		t.Fatal("cancel running failed")
	}
	waitJob(t, s, running)
	if running.State != JobCancelled || !errors.Is(running.Err, context.Canceled) {
		t.Fatalf("running job: state %s err %v, want cancelled/Canceled", running.State, running.Err)
	}
}

// TestHTTPEndToEnd drives the full HTTP surface on a real route: submit
// dense1 by benchmark name, poll to completion, decode the embedded
// result, check DRC, stream the trace, read health and metrics.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"schema":"rdl-job/v1","benchmark":"dense1","options":{"schema":"rdl-options/v1"}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jv jobView
	decodeBody(t, resp, &jv)
	if resp.StatusCode != http.StatusAccepted || jv.ID == "" {
		t.Fatalf("submit: status %d view %+v", resp.StatusCode, jv)
	}

	final := waitState(t, ts.URL, jv.ID, JobDone, 30*time.Second)
	if final.Result == nil {
		t.Fatal("done job has no result document")
	}
	res, err := codec.DecodeResult(bytes.NewReader(final.Result), dense1(t))
	if err != nil {
		t.Fatal(err)
	}
	if v := drc.Check(res.Layout); len(v) != 0 {
		t.Fatalf("served result has %d DRC violations; first: %v", len(v), v[0])
	}

	// Trace: parseable JSONL with the five stage spans.
	tr, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJSONL(tr.Body)
	tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}

	// Health and metrics.
	var health struct {
		Status string `json:"status"`
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, hr, &health)
	if health.Status != "ok" {
		t.Fatalf("health: %+v", health)
	}
	// /metrics default is Prometheus text; ?format=json keeps the
	// pre-PR-6 JSON shape for existing clients.
	var mview struct {
		Jobs Metrics       `json:"jobs"`
		Obs  *obs.Snapshot `json:"obs"`
	}
	mr, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, mr, &mview)
	if mview.Jobs.Completed < 1 || mview.Obs == nil {
		t.Fatalf("metrics: %+v", mview)
	}
	pr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(pr.Body)
	pr.Body.Close()
	if err != nil {
		t.Fatalf("prometheus exposition: %v", err)
	}
	if ct := pr.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("exposition content-type %q", ct)
	}
	if got, ok := fams["rdl_jobs_finished_total"].Sample(map[string]string{"outcome": "completed"}); !ok || got.Value < 1 {
		t.Fatalf("rdl_jobs_finished_total{completed} = %+v ok=%v", got, ok)
	}

	// Unknown job → 404.
	nf, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", nf.StatusCode)
	}

	// Malformed design document → 400 with codec kind/path.
	bad := `{"schema":"rdl-job/v1","design":{"schema":"rdl-design/v99"}}`
	br, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var ev errorView
	decodeBody(t, br, &ev)
	if br.StatusCode != http.StatusBadRequest || ev.Kind != "schema" {
		t.Fatalf("bad design: status %d body %+v", br.StatusCode, ev)
	}

	shutdown(t, s)
}

// --- helpers ---

func submitDesign(t *testing.T, url string, d *design.Design, timeoutMS int) (*http.Response, jobView) {
	t.Helper()
	var dbuf bytes.Buffer
	if err := codec.EncodeDesign(&dbuf, d); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{
		"schema": JobSchema,
		"design": json.RawMessage(dbuf.Bytes()),
	}
	if timeoutMS > 0 {
		req["timeout_ms"] = timeoutMS
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jv jobView
	if resp.StatusCode == http.StatusAccepted {
		decodeBody(t, resp, &jv)
	} else {
		resp.Body.Close()
	}
	return resp, jv
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func waitJob(t *testing.T, s *Server, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Wait(ctx, j); err != nil {
		t.Fatalf("wait %s: %v", j.ID, err)
	}
}

func waitState(t *testing.T, url, id string, want JobState, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jv jobView
		decodeBody(t, resp, &jv)
		if jv.State == want {
			return jv
		}
		if jv.State == JobFailed || jv.State == JobCancelled {
			t.Fatalf("job %s reached %s (err %s), want %s", id, jv.State, jv.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, jv.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// encodeStable encodes a result with the runtime cleared, for
// bit-identical comparisons across runs.
func encodeStable(t *testing.T, res *router.Result) []byte {
	t.Helper()
	cp := *res
	cp.Runtime = 0
	var buf bytes.Buffer
	if err := codec.EncodeResult(&buf, &cp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
