// Command rdlroute routes an InFO package design with the paper's
// five-stage via-based flow (or the Lin-ext baseline) and reports
// routability, wirelength, via count and runtime.
//
// Usage:
//
//	rdlroute -bench dense1                # generate + route a Table-I circuit
//	rdlroute -in design.rdl -check        # route a netlist file and run DRC
//	rdlroute -bench dense2 -flow linext   # run the baseline instead
//	rdlroute -bench dense1 -no-lp         # ablation: disable stage 5
package main

import (
	"flag"
	"fmt"
	"os"

	"rdlroute"
)

func main() {
	var (
		in     = flag.String("in", "", "input design file (text netlist)")
		bench  = flag.String("bench", "", "generate a named benchmark (dense1..dense5) instead of reading a file")
		flow   = flag.String("flow", "ours", `routing flow: "ours" or "linext"`)
		check  = flag.Bool("check", false, "run the design-rule checker on the result")
		noLP   = flag.Bool("no-lp", false, "disable LP-based layout optimization")
		noW    = flag.Bool("no-weights", false, "disable Eq.(2) chord weights (unweighted MPSC)")
		noVias = flag.Bool("no-via-insertion", false, "disable stage-3 via insertion")
		cells  = flag.Int("cells", 30, "global cells per axis")
		svg    = flag.String("svg", "", "write the routed layout as SVG to this file")
		layer  = flag.Int("svg-layer", -1, "restrict the SVG to one wire layer (-1 = all)")
		out    = flag.String("out", "", "write the routing result (text layout format) to this file")
		heat   = flag.Bool("congest", false, "print per-layer congestion heatmaps")
		ripup  = flag.Int("ripup", 0, "rip-up-and-reroute rounds (extension beyond the paper; 0 = off)")
	)
	flag.Parse()

	var d *rdlroute.Design
	var err error
	switch {
	case *bench != "":
		d, err = rdlroute.GenerateBenchmark(*bench)
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			d, err = rdlroute.ParseDesign(f)
			f.Close()
		}
	default:
		fmt.Fprintln(os.Stderr, "rdlroute: need -in or -bench")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdlroute:", err)
		os.Exit(1)
	}

	var lay *rdlroute.Layout
	switch *flow {
	case "ours":
		opts := rdlroute.DefaultOptions()
		opts.EnableLP = !*noLP
		opts.UseWeights = !*noW
		opts.EnableVias = !*noVias
		opts.GlobalCells = *cells
		opts.RipUpRounds = *ripup
		res, err := rdlroute.Route(d, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdlroute:", err)
			os.Exit(1)
		}
		lay = res.Layout
		fmt.Printf("design      %s\n", d.Name)
		fmt.Printf("flow        ours (via-based, 5 stages)\n")
		fmt.Printf("routability %.1f%% (%d/%d nets)\n", res.Routability, res.RoutedNets, res.TotalNets)
		fmt.Printf("wirelength  %.0f (before LP: %.0f)\n", res.Wirelength, res.WirelengthBeforeLP)
		fmt.Printf("stages      concurrent=%d sequential=%d (corridor=%d fallback=%d)\n",
			res.ConcurrentRouted, res.SequentialRouted, res.CorridorRouted, res.FallbackRouted)
		fmt.Printf("graph       %d octagonal tiles\n", res.TileCount)
		fmt.Printf("lp          %d iterations, %d components\n", res.LPIterations, res.LPComponents)
		fmt.Printf("vias        %d\n", res.Layout.ViaCount())
		fmt.Printf("runtime     %v\n", res.Runtime)
	case "linext":
		res, err := rdlroute.RouteLinExt(d, rdlroute.DefaultBaselineOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdlroute:", err)
			os.Exit(1)
		}
		lay = res.Layout
		fmt.Printf("design      %s\n", d.Name)
		fmt.Printf("flow        Lin-ext (single-layer nets, fixed pad vias)\n")
		fmt.Printf("routability %.1f%% (%d/%d nets)\n", res.Routability, res.RoutedNets, res.TotalNets)
		fmt.Printf("wirelength  %.0f\n", res.Wirelength)
		fmt.Printf("stages      concurrent=%d sequential=%d\n", res.ConcurrentRouted, res.SequentialRouted)
		fmt.Printf("runtime     %v\n", res.Runtime)
	default:
		fmt.Fprintf(os.Stderr, "rdlroute: unknown flow %q\n", *flow)
		os.Exit(2)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdlroute:", err)
			os.Exit(1)
		}
		if err := rdlroute.WriteLayout(f, lay); err != nil {
			fmt.Fprintln(os.Stderr, "rdlroute:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("routes      %s\n", *out)
	}

	if *heat {
		m := rdlroute.BuildCongestion(lay, 24)
		for l := 0; l < d.WireLayers; l++ {
			if err := m.Render(os.Stdout, l); err != nil {
				fmt.Fprintln(os.Stderr, "rdlroute:", err)
				os.Exit(1)
			}
		}
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdlroute:", err)
			os.Exit(1)
		}
		opts := rdlroute.DefaultRenderOptions()
		opts.Layer = *layer
		if err := rdlroute.RenderSVG(f, lay, opts); err != nil {
			fmt.Fprintln(os.Stderr, "rdlroute:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("svg         %s\n", *svg)
	}

	if *check {
		vs := rdlroute.Check(lay)
		if len(vs) == 0 {
			fmt.Println("drc         clean")
		} else {
			fmt.Printf("drc         %d violations\n", len(vs))
			for i, v := range vs {
				if i >= 20 {
					fmt.Printf("  ... and %d more\n", len(vs)-20)
					break
				}
				fmt.Printf("  %v\n", v)
			}
			os.Exit(1)
		}
	}
}
