package qa

import (
	"strings"

	"rdlroute/internal/design"
)

// Config parameterizes a harness run.
type Config struct {
	N    int   // number of random designs to generate and check
	Seed int64 // base seed; design i replays as Seed+i

	// Suite selects the oracle families beyond the core gates; the zero
	// value runs core-only, FullSuite() everything.
	Suite Suite

	// LPChecks runs this many revised-vs-dense simplex differential
	// checks on random LPs (seeded from the same base). Negative means
	// one per design.
	LPChecks int

	// Shrink minimizes each failing design to a smaller reproducer and
	// attaches its netlist to the failure report.
	Shrink bool

	// Log, when non-nil, receives one progress line per design.
	Log func(format string, args ...any)
}

// Run generates cfg.N seeded random designs and checks each against the
// oracle suite; design i uses seed cfg.Seed+i, so any failing design is
// replayed by a 1-design run at the printed seed. It then runs the LP
// differential checks. Everything is deterministic in cfg.Seed except the
// cancellation oracle's abort point, whose property must hold at any
// abort point.
func Run(cfg Config) Report {
	if cfg.N <= 0 {
		cfg.N = 1
	}
	lpChecks := cfg.LPChecks
	if lpChecks < 0 {
		lpChecks = cfg.N
	}
	var rep Report
	for i := 0; i < cfg.N; i++ {
		seed := cfg.Seed + int64(i)
		d := Generate(seed)
		st, fails := CheckDesign(d, seed, cfg.Suite)
		rep.Designs++
		rep.Nets += st.Nets
		rep.Routed += st.FlowRouted
		rep.Baseline += st.BaseRouted
		if cfg.Log != nil {
			status := "ok"
			if len(fails) > 0 {
				status = "FAIL"
			}
			cfg.Log("qa: seed %d design %q nets %d flow %d linext %d %s",
				seed, d.Name, st.Nets, st.FlowRouted, st.BaseRouted, status)
		}
		if len(fails) == 0 {
			continue
		}
		sf := SeedFailure{Seed: seed, Failures: fails}
		if cfg.Shrink {
			sf.MinimalNetlist, sf.MinimalNets, sf.MinimalFailure = shrinkFailure(d, seed, cfg.Suite)
		}
		rep.Failures = append(rep.Failures, sf)
	}
	for i := 0; i < lpChecks; i++ {
		seed := cfg.Seed + int64(i)
		if fails := CheckLPAgreement(seed); len(fails) > 0 {
			rep.Failures = append(rep.Failures, SeedFailure{Seed: seed, Failures: fails})
		}
	}
	return rep
}

// shrinkFailure minimizes d against "still fails any oracle" and renders
// the reproducer as a text netlist.
func shrinkFailure(d *design.Design, seed int64, suite Suite) (netlist string, nets int, oracle string) {
	min := Shrink(d, func(c *design.Design) bool {
		_, fails := CheckDesign(c, seed, suite)
		if len(fails) > 0 {
			oracle = fails[0].Oracle
			return true
		}
		return false
	})
	var b strings.Builder
	if err := design.Format(&b, min); err != nil {
		return "", len(min.Nets), oracle
	}
	return b.String(), len(min.Nets), oracle
}
