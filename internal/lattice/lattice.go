// Package lattice implements the detailed-routing engine underneath both
// routing stages: a per-wire-layer X-architecture track lattice with exact
// clearance bookkeeping. Wires run between lattice nodes in the eight
// compass directions (H, V, 45°, 135°), vias sit on lattice nodes, and the
// occupancy model guarantees that any route accepted by the search is
// DRC-clean by construction:
//
//   - wire↔wire: centerlines of different nets stay ≥ wireWidth+spacing
//     apart, so edge-to-edge gaps are ≥ spacing and crossings are
//     impossible (any crossing of lattice-aligned octilinear segments
//     passes within that radius of an endpoint node);
//   - wire↔via, via↔via, and shapes from the design (pads, obstacles) get
//     analogous clearance radii.
//
// The node pitch must be ≥ wireWidth+spacing; the design generator aligns
// pad centers to the lattice so pads are directly reachable.
package lattice

import (
	"fmt"
	"math"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
)

// Owner encoding inside occupancy slabs.
const (
	free = int32(0)
	hard = int32(-1) // obstacle or netless shape: blocks everyone
	// positive values are net index + 1
)

// Lattice is the multi-layer routing lattice for one design.
type Lattice struct {
	D      *design.Design
	Pitch  int64
	X0, Y0 int64
	NX, NY int
	Layers int // number of wire layers

	// wireOcc[l*NX*NY + j*NX + i]: who owns the wire space at the node.
	wireOcc []int32
	// viaOcc[s*NX*NY + ...]: who owns via space on slab s (between wire
	// layers s and s+1); Layers−1 slabs.
	viaOcc []int32
	// edgeOcc[kind][l*NX*NY + j*NX + i]: who owns the swept wire segment of
	// cell edge kind (E, N, NE, NW) based at node (i, j) — the corner-cut
	// guard (see edges.go). Allocated lazily on the first mark.
	edgeOcc [4][]int32

	// Derived clearance radii (float comparisons, strict <).
	rWireWire float64 // foreign wire centerline to node
	rWireVia  float64 // foreign via center to wire node (and vice versa)
	rViaVia   float64 // foreign via center to via node
	rShapeW   float64 // design shape edge to wire node
	rShapeV   float64 // design shape edge to via node

	search *searchState

	// tr, when non-nil, receives per-search effort metrics
	// (astar.expanded / astar.visited observations and search counters).
	tr obs.Tracer

	// j, when non-nil, is the search-memo journal (see memo.go): every
	// occupancy mutation notes itself here so memoized searches can prove
	// their footprint unchanged.
	j *journal
}

// SetTracer attaches an observability tracer to the lattice. Disabled
// tracers are dropped so the search never pays for them.
func (la *Lattice) SetTracer(t obs.Tracer) {
	if t != nil && t.Enabled() {
		la.tr = t
	} else {
		la.tr = nil
	}
}

// New builds a lattice over the design outline and pre-blocks design
// shapes (obstacles on their layers, I/O pads on the top layer, bump pads
// on the bottom layer). Pads referenced by nets are owned by those nets;
// unreferenced pads block everyone.
func New(d *design.Design, pitch int64) (*Lattice, error) {
	if pitch < d.Rules.WireWidth+d.Rules.Spacing {
		return nil, fmt.Errorf("lattice: pitch %d below wire pitch %d",
			pitch, d.Rules.WireWidth+d.Rules.Spacing)
	}
	nx := int((d.Outline.W())/pitch) + 1
	ny := int((d.Outline.H())/pitch) + 1
	if s := stateSpace(d.WireLayers, nx, ny); s > math.MaxInt32 {
		return nil, fmt.Errorf(
			"lattice: %d layers × %d×%d nodes needs %d search states, beyond the int32 id space (%d); use a coarser pitch",
			d.WireLayers, nx, ny, s, math.MaxInt32)
	}
	la := &Lattice{
		D: d, Pitch: pitch,
		X0: d.Outline.X0, Y0: d.Outline.Y0,
		NX: nx, NY: ny, Layers: d.WireLayers,
	}
	la.wireOcc = make([]int32, la.Layers*nx*ny)
	if la.Layers > 1 {
		la.viaOcc = make([]int32, (la.Layers-1)*nx*ny)
	}
	r := d.Rules
	la.rWireWire = float64(r.WireWidth + r.Spacing)
	la.rWireVia = float64(r.Spacing + r.WireWidth/2 + r.ViaWidth/2)
	la.rViaVia = float64(r.ViaWidth + r.Spacing)
	la.rShapeW = float64(r.Spacing + r.WireWidth/2)
	la.rShapeV = float64(r.Spacing + r.ViaWidth/2)

	// Owners of pads: net index per pad, or −1.
	ioOwner := make([]int32, len(d.IOPads))
	bumpOwner := make([]int32, len(d.BumpPads))
	for i := range ioOwner {
		ioOwner[i] = hard
	}
	for i := range bumpOwner {
		bumpOwner[i] = hard
	}
	for ni, n := range d.Nets {
		for _, ref := range []design.PadRef{n.P1, n.P2} {
			if ref.Kind == design.IOKind {
				ioOwner[ref.Index] = int32(ni) + 1
			} else {
				bumpOwner[ref.Index] = int32(ni) + 1
			}
		}
	}

	for _, o := range d.Obstacles {
		la.blockRect(o.Layer, o.Box, hard)
		la.markEdgesPoly(o.Layer, geom.PolyFromRect(o.Box), o.Box, hard)
	}
	for pi, p := range d.IOPads {
		la.blockRect(0, p.Box(), ioOwner[pi])
		la.markEdgesPoly(0, geom.PolyFromRect(p.Box()), p.Box(), ioOwner[pi])
	}
	for pi, p := range d.BumpPads {
		oct := p.Oct()
		la.blockRect(la.Layers-1, oct.BBox(), bumpOwner[pi])
		la.markEdgesPoly(la.Layers-1, oct.Poly(), oct.BBox(), bumpOwner[pi])
	}
	for _, v := range d.FixedVias {
		owner := hard
		if v.Net >= 0 {
			owner = int32(v.Net) + 1
		}
		la.blockVia(v.Slab, v.Center, owner)
	}
	return la, nil
}

// stateSpace is the number of A* states the lattice would need: 9
// directional states per node. stateID packs a state into an int32, so New
// rejects lattices whose state space exceeds math.MaxInt32 — beyond that
// the packing silently wraps and the search corrupts its buffers.
func stateSpace(layers, nx, ny int) int64 {
	return int64(layers) * int64(nx) * int64(ny) * 9
}

// Fingerprint hashes the occupancy state (wire and via ownership of every
// node). Two lattices over the same design agree iff the same set of
// commits was applied — markDisk is commutative (same-owner marks are
// idempotent and conflicting marks collapse to hard regardless of order),
// so commit order does not matter.
func (la *Lattice) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(occ []int32) {
		for _, v := range occ {
			h ^= uint64(uint32(v))
			h *= prime
		}
	}
	mix(la.wireOcc)
	mix(la.viaOcc)
	for _, e := range la.edgeOcc {
		mix(e)
	}
	return h
}

// blockVia blocks wire and via space around a pre-assigned via.
func (la *Lattice) blockVia(s int, p geom.Point, owner int32) {
	bbox := geom.RectOf(p, p)
	dist := func(q geom.Point) float64 { return geom.Euclid(p, q) }
	for _, l := range []int{s, s + 1} {
		la.markDisk(la.wireOcc, l, bbox, la.rWireVia, dist, owner)
	}
	for _, slab := range []int{s - 1, s, s + 1} {
		if slab >= 0 && slab < la.Layers-1 {
			la.markDisk(la.viaOcc, slab, bbox, la.rViaVia, dist, owner)
		}
	}
	la.markViaEdges(s, p, owner)
}

// markViaEdges claims the cell edges too close to a via's landing pad on
// the two wire layers it joins, using the checker's octagonal via shape.
func (la *Lattice) markViaEdges(s int, p geom.Point, owner int32) {
	oct := geom.RegularOct(p, la.D.Rules.ViaWidth)
	poly := oct.Poly()
	bbox := oct.BBox()
	for _, l := range []int{s, s + 1} {
		la.markEdgesPoly(l, poly, bbox, owner)
	}
}

// idx returns the slab-relative node index.
func (la *Lattice) idx(i, j int) int { return j*la.NX + i }

// NodePoint returns the coordinates of node (i, j).
func (la *Lattice) NodePoint(i, j int) geom.Point {
	return geom.Pt(la.X0+int64(i)*la.Pitch, la.Y0+int64(j)*la.Pitch)
}

// NodeAt returns the lattice indices of p when p lies exactly on a node.
func (la *Lattice) NodeAt(p geom.Point) (i, j int, ok bool) {
	dx := p.X - la.X0
	dy := p.Y - la.Y0
	if dx < 0 || dy < 0 || dx%la.Pitch != 0 || dy%la.Pitch != 0 {
		return 0, 0, false
	}
	i = int(dx / la.Pitch)
	j = int(dy / la.Pitch)
	if i >= la.NX || j >= la.NY {
		return 0, 0, false
	}
	return i, j, true
}

// Snap returns the nearest lattice node indices for p (clamped to range).
func (la *Lattice) Snap(p geom.Point) (i, j int) {
	i = int((p.X - la.X0 + la.Pitch/2) / la.Pitch)
	j = int((p.Y - la.Y0 + la.Pitch/2) / la.Pitch)
	if i < 0 {
		i = 0
	}
	if j < 0 {
		j = 0
	}
	if i >= la.NX {
		i = la.NX - 1
	}
	if j >= la.NY {
		j = la.NY - 1
	}
	return
}

// passable reports whether the wire node is usable by net (owner encoding).
func passableFor(owner int32, net int) bool {
	return owner == free || owner == int32(net)+1
}

// WireFree reports whether net may put a wire on node (i,j) of layer l.
func (la *Lattice) WireFree(l, i, j int, net int) bool {
	return passableFor(la.wireOcc[l*la.NX*la.NY+la.idx(i, j)], net)
}

// ViaFree reports whether net may put a via on slab s (layers s↔s+1) at
// node (i,j). The via also needs the wire space on both layers.
func (la *Lattice) ViaFree(s, i, j int, net int) bool {
	n := la.NX * la.NY
	return passableFor(la.viaOcc[s*n+la.idx(i, j)], net) &&
		passableFor(la.wireOcc[s*n+la.idx(i, j)], net) &&
		passableFor(la.wireOcc[(s+1)*n+la.idx(i, j)], net)
}

// markDisk sets owner on every node of the slab within radius of the
// point/segment distance function, unless already claimed. Hard blocks
// override net owners; net owners never override other nets (first
// committed wins, which is correct: the search only accepts clear nodes).
func (la *Lattice) markDisk(occ []int32, slab int, bbox geom.Rect, radius float64, dist func(geom.Point) float64, owner int32) {
	n := la.NX * la.NY
	i0 := int(math.Floor(float64(bbox.X0-la.X0)/float64(la.Pitch) - radius/float64(la.Pitch)))
	i1 := int(math.Ceil(float64(bbox.X1-la.X0)/float64(la.Pitch) + radius/float64(la.Pitch)))
	j0 := int(math.Floor(float64(bbox.Y0-la.Y0)/float64(la.Pitch) - radius/float64(la.Pitch)))
	j1 := int(math.Ceil(float64(bbox.Y1-la.Y0)/float64(la.Pitch) + radius/float64(la.Pitch)))
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 >= la.NX {
		i1 = la.NX - 1
	}
	if j1 >= la.NY {
		j1 = la.NY - 1
	}
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			if dist(la.NodePoint(i, j)) >= radius {
				continue
			}
			k := slab*n + la.idx(i, j)
			switch cur := occ[k]; {
			case cur == owner:
				// already claimed by the same owner
			case cur == free:
				occ[k] = owner
			default:
				// Claimed by a different net (or hard): nobody may use a
				// node inside two different clearance disks.
				occ[k] = hard
			}
		}
	}
}

// blockRect blocks wire and via space around a design rectangle.
func (la *Lattice) blockRect(layer int, box geom.Rect, owner int32) {
	dist := func(p geom.Point) float64 { return box.DistToPoint(p) }
	la.markDisk(la.wireOcc, layer, box, la.rShapeW, dist, owner)
	// Vias landing on this layer come from slabs layer−1 and layer.
	for _, s := range []int{layer - 1, layer} {
		if s >= 0 && s < la.Layers-1 {
			la.markDisk(la.viaOcc, s, box, la.rShapeV, dist, owner)
		}
	}
}

// BlockRect exposes design-shape blocking for callers that add shapes
// after construction (e.g. via stacks recorded as obstacles).
func (la *Lattice) BlockRect(layer int, box geom.Rect, net int) {
	owner := hard
	if net >= 0 {
		owner = int32(net) + 1
	}
	la.blockRect(layer, box, owner)
	la.markEdgesPoly(layer, geom.PolyFromRect(box), box, owner)
	la.noteRect(layer, box, net)
}

// commitWire blocks space around a committed wire segment of the net.
func (la *Lattice) commitWire(layer int, seg geom.Segment, net int) {
	owner := int32(net) + 1
	bbox := seg.BBox()
	dist := func(p geom.Point) float64 { return geom.PointSegDist(p, seg) }
	la.markDisk(la.wireOcc, layer, bbox, la.rWireWire, dist, owner)
	for _, s := range []int{layer - 1, layer} {
		if s >= 0 && s < la.Layers-1 {
			la.markDisk(la.viaOcc, s, bbox, la.rWireVia, dist, owner)
		}
	}
	halfW := float64(la.D.Rules.WireWidth) / 2
	la.markEdgesPoly(layer, geom.PolyFromSegment(seg, halfW), bbox, owner)
	la.noteWire(layer, seg, net)
}

// commitVia blocks space around a committed via on slab s at point p.
func (la *Lattice) commitVia(s int, p geom.Point, net int) {
	owner := int32(net) + 1
	bbox := geom.RectOf(p, p)
	dist := func(q geom.Point) float64 { return geom.Euclid(p, q) }
	for _, l := range []int{s, s + 1} {
		la.markDisk(la.wireOcc, l, bbox, la.rWireVia, dist, owner)
	}
	for _, slab := range []int{s - 1, s, s + 1} {
		if slab >= 0 && slab < la.Layers-1 {
			la.markDisk(la.viaOcc, slab, bbox, la.rViaVia, dist, owner)
		}
	}
	la.markViaEdges(s, p, owner)
	la.noteVia(s, p, net)
}

// PathStep is one node of a routed path.
type PathStep struct {
	Layer int
	Pt    geom.Point
}

// Commit records a search result: wires between consecutive same-layer
// steps and vias at layer changes.
func (la *Lattice) Commit(path []PathStep, net int) {
	for k := 0; k+1 < len(path); k++ {
		a, b := path[k], path[k+1]
		if a.Layer == b.Layer {
			if !a.Pt.Eq(b.Pt) {
				la.commitWire(a.Layer, geom.Seg(a.Pt, b.Pt), net)
			}
			continue
		}
		s := a.Layer
		if b.Layer < s {
			s = b.Layer
		}
		la.commitVia(s, a.Pt, net)
	}
}

// CommitViaAt records a standalone via (e.g. a pad stack element).
func (la *Lattice) CommitViaAt(slab int, p geom.Point, net int) {
	la.commitVia(slab, p, net)
}

// OwnersOnPath returns the foreign nets whose claims a path would collide
// with: the owners of wire/via space at the path's nodes. Used by rip-up
// planning after a ghost (IgnoreForeign) search.
func (la *Lattice) OwnersOnPath(path []PathStep, net int) []int {
	n := la.NX * la.NY
	seen := map[int32]bool{}
	var owners []int
	note := func(o int32) {
		if o > 0 && o != int32(net)+1 && !seen[o] {
			seen[o] = true
			owners = append(owners, int(o-1))
		}
	}
	for k, st := range path {
		i, j, ok := la.NodeAt(st.Pt)
		if !ok {
			continue
		}
		if k > 0 && path[k-1].Layer == st.Layer {
			// Walk the merged segment node by node.
			pi, pj, ok2 := la.NodeAt(path[k-1].Pt)
			if ok2 {
				di, dj := sgn(i-pi), sgn(j-pj)
				nd := dirIndex(di, dj)
				for x, y := pi, pj; x != i || y != j; x, y = x+di, y+dj {
					note(la.wireOcc[st.Layer*n+la.idx(x, y)])
					if nd >= 0 {
						note(la.edgeOwnerAt(st.Layer, x, y, nd))
					}
				}
			}
		}
		note(la.wireOcc[st.Layer*n+la.idx(i, j)])
		if k > 0 && path[k-1].Layer != st.Layer {
			s := st.Layer
			if path[k-1].Layer < s {
				s = path[k-1].Layer
			}
			note(la.viaOcc[s*n+la.idx(i, j)])
		}
	}
	return owners
}

// dirIndex maps a unit move (di, dj) to its index in the moves table, or
// −1 for a zero move.
func dirIndex(di, dj int) int {
	for nd, mv := range moves {
		if mv.dx == di && mv.dy == dj {
			return nd
		}
	}
	return -1
}

func sgn(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// StackFree reports whether a via stack covering wire layers [l0, l1] at
// point p is placeable by net. p must be a lattice node.
func (la *Lattice) StackFree(p geom.Point, l0, l1, net int) bool {
	i, j, ok := la.NodeAt(p)
	if !ok {
		return false
	}
	for s := l0; s < l1; s++ {
		if !la.ViaFree(s, i, j, net) {
			return false
		}
	}
	return true
}

// CommitStack records a via stack covering wire layers [l0, l1] at p.
func (la *Lattice) CommitStack(p geom.Point, l0, l1, net int) {
	for s := l0; s < l1; s++ {
		la.commitVia(s, p, net)
	}
}
