package qa

import (
	"flag"
	"strings"
	"testing"
)

// replaySeed replays one design seed through the full oracle suite:
//
//	go test ./internal/qa -run TestReplaySeed -replay-seed 1236
//
// Every harness failure prints this invocation, so a CI failure reproduces
// locally with a single copy-pasted command.
var replaySeed = flag.Int64("replay-seed", -1, "design seed to replay through the full oracle suite")

// sweepSize returns how many designs TestHarnessSweep checks. The full
// 200-design sweep is the acceptance gate; -short keeps the edit-compile
// loop fast, and the race detector's ~10× routing overhead gets a smaller
// sweep so `go test -race ./...` stays usable (the full sweep runs
// race-free in the verify script's qa stage).
func sweepSize() int {
	n := 200
	if testing.Short() {
		n = 40
	}
	if raceEnabled && n > 25 {
		n = 25
	}
	return n
}

// TestHarnessSweep is the package's acceptance gate: N seeded random
// designs — irregular pad rings, area pads, obstacle clutter, adversarial
// near-minimum spacing — each routed through the concurrent five-stage
// flow and the Lin-ext baseline with the full oracle suite (DRC,
// connectivity, wirelength, codec round-trip, cancellation, differential
// and metamorphic gates), plus one revised-vs-dense simplex differential
// check per design.
func TestHarnessSweep(t *testing.T) {
	n := sweepSize()
	rep := Run(Config{N: n, Seed: 1, Suite: FullSuite(), LPChecks: -1, Shrink: true})
	if rep.Designs != n {
		t.Fatalf("checked %d designs, want %d", rep.Designs, n)
	}
	for _, sf := range rep.Failures {
		t.Error(sf.String())
	}
	// Sanity floor: the flow routes the large majority of generated nets.
	// A generator or router regression that strands half the nets would
	// otherwise pass silently as long as each layout stays legal.
	if rep.Routed*10 < rep.Nets*8 {
		t.Errorf("flow routed only %d of %d nets across the sweep", rep.Routed, rep.Nets)
	}
	t.Logf("qa sweep: %d designs, %d nets, flow %d, lin-ext %d", rep.Designs, rep.Nets, rep.Routed, rep.Baseline)
}

// TestReplaySeed re-checks a single seed with the full suite. Without the
// flag it smoke-tests one fixed seed so the replay path itself stays
// exercised; with -replay-seed it is the debugging entry point the
// failure messages advertise.
func TestReplaySeed(t *testing.T) {
	seed := *replaySeed
	if seed < 0 {
		seed = 7
	}
	d := Generate(seed)
	st, fails := CheckDesign(d, seed, FullSuite())
	for _, f := range fails {
		t.Errorf("seed %d %s: %s", seed, d.Name, f)
	}
	t.Logf("seed %d %s: %d nets, flow %d, lin-ext %d", seed, d.Name, st.Nets, st.FlowRouted, st.BaseRouted)
}

// TestRegressionCornerCutSeed1236 pins the lattice corner-cutting fix.
// This seed generates a spacing-8 adversarial design whose routes, before
// the edge-occupancy guard, slipped a 45° wire between two clear lattice
// nodes while dipping to ≈8.49−w/2 from a pad corner — a real spacing
// violation both routers produced and DRC caught.
func TestRegressionCornerCutSeed1236(t *testing.T) {
	d := Generate(1236)
	_, fails := CheckDesign(d, 1236, Suite{})
	for _, f := range fails {
		t.Errorf("seed 1236 %s: %s", d.Name, f)
	}
}

// TestFailureReportPrintsSeed holds the harness to its replay contract:
// every failure names the seed and prints both replay invocations, and
// the report embeds the minimal reproducer when shrinking ran.
func TestFailureReportPrintsSeed(t *testing.T) {
	sf := SeedFailure{
		Seed:           4242,
		Failures:       []Failure{{Oracle: "flow-drc", Detail: "2 violations"}},
		MinimalNetlist: "design qa-min\nnet 0 io 0 io 1\n",
		MinimalNets:    1,
		MinimalFailure: "flow-drc",
	}
	out := sf.String()
	for _, want := range []string{
		"seed 4242",
		"flow-drc: 2 violations",
		"rdlverify -random 1 -seed 4242",
		"go test ./internal/qa -run TestReplaySeed -replay-seed 4242",
		"minimal reproducer (1 nets",
		"net 0 io 0 io 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("failure report missing %q:\n%s", want, out)
		}
	}
	rep := Report{Designs: 3, Failures: []SeedFailure{sf}}
	if rep.OK() {
		t.Error("report with failures claims OK")
	}
	if !strings.Contains(rep.String(), "seed 4242") {
		t.Errorf("report does not surface the failing seed:\n%s", rep)
	}
	if !(Report{Designs: 3}).OK() {
		t.Error("failure-free report does not claim OK")
	}
}

// TestLPAgreementSweep runs the revised-vs-dense simplex differential
// gate on its own, over more seeds than the design sweep carries.
func TestLPAgreementSweep(t *testing.T) {
	n := int64(500)
	if testing.Short() {
		n = 100
	}
	for seed := int64(0); seed < n; seed++ {
		for _, f := range CheckLPAgreement(seed) {
			t.Errorf("lp seed %d: %s", seed, f)
		}
	}
}
