// Command rdlverify checks a saved routing result against its design: it
// re-runs the full design-rule checker (spacing, crossing, angle rules and
// connectivity) and reports the Table-I metrics of the stored layout.
//
// Usage:
//
//	rdlroute -bench dense1 -out routes.rdl      # produce a result
//	rdlgen   -name dense1 -o design.rdl
//	rdlverify -design design.rdl -routes routes.rdl
package main

import (
	"flag"
	"fmt"
	"os"

	"rdlroute"
)

func main() {
	var (
		designPath = flag.String("design", "", "design netlist file")
		routesPath = flag.String("routes", "", "routing result file (from rdlroute -out)")
		maxPrint   = flag.Int("max-violations", 20, "maximum violations to print")
	)
	flag.Parse()
	if *designPath == "" || *routesPath == "" {
		fmt.Fprintln(os.Stderr, "rdlverify: need -design and -routes")
		os.Exit(2)
	}
	df, err := os.Open(*designPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdlverify:", err)
		os.Exit(1)
	}
	d, err := rdlroute.ParseDesign(df)
	df.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdlverify:", err)
		os.Exit(1)
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rdlverify: design invalid:", err)
		os.Exit(1)
	}
	rf, err := os.Open(*routesPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdlverify:", err)
		os.Exit(1)
	}
	lay, err := rdlroute.ParseLayout(rf, d)
	rf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdlverify:", err)
		os.Exit(1)
	}

	fmt.Printf("design      %s (%d nets, %d wire layers)\n", d.Name, len(d.Nets), d.WireLayers)
	fmt.Printf("routes      %d polylines, %d vias\n", len(lay.Routes), len(lay.Vias))
	fmt.Printf("routability %.1f%% (%d/%d nets)\n", lay.Routability(), lay.RoutedCount(), len(d.Nets))
	fmt.Printf("wirelength  %.0f\n", lay.Wirelength())

	vs := rdlroute.Check(lay)
	if len(vs) == 0 {
		fmt.Println("drc         clean")
		return
	}
	fmt.Printf("drc         %d violations\n", len(vs))
	for i, v := range vs {
		if i >= *maxPrint {
			fmt.Printf("  ... and %d more\n", len(vs)-*maxPrint)
			break
		}
		fmt.Printf("  %v\n", v)
	}
	os.Exit(1)
}
