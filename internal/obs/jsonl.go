package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one JSONL trace line. T is the record type: "span", "event",
// "count" or "observe". Ms is milliseconds since the tracer was created;
// DurMs is the span duration; V carries the counter delta or the observed
// sample.
type Record struct {
	T     string         `json:"t"`
	Name  string         `json:"name"`
	Ms    float64        `json:"ms"`
	DurMs float64        `json:"dur_ms,omitempty"`
	V     float64        `json:"v,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Str returns the named string attribute ("" when absent or non-string).
func (r Record) Str(key string) string {
	s, _ := r.Attrs[key].(string)
	return s
}

// Num returns the named numeric attribute (0 when absent). JSON decoding
// yields float64; records built in-process may hold int64.
func (r Record) Num(key string) float64 {
	switch v := r.Attrs[key].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		return 0
	}
}

// JSONL writes one JSON object per line for every span, event, counter
// increment and observation. It buffers internally; call Close (or Flush)
// to drain. Safe for concurrent use.
type JSONL struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewJSONL returns a tracer writing JSONL records to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw), start: now()}
}

func (j *JSONL) Enabled() bool { return true }

func (j *JSONL) since() float64 { return float64(now().Sub(j.start)) / float64(time.Millisecond) }

func (j *JSONL) emit(r Record) {
	j.mu.Lock()
	if err := j.enc.Encode(r); err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

type jsonlSpan struct {
	j     *JSONL
	name  string
	attrs map[string]any
	t0    time.Time
}

func (s *jsonlSpan) End(attrs ...Attr) {
	m := s.attrs
	if len(attrs) > 0 {
		if m == nil {
			m = make(map[string]any, len(attrs))
		}
		for _, a := range attrs {
			m[a.Key] = a.Value()
		}
	}
	s.j.emit(Record{
		T: "span", Name: s.name,
		Ms:    float64(s.t0.Sub(s.j.start)) / float64(time.Millisecond),
		DurMs: float64(now().Sub(s.t0)) / float64(time.Millisecond),
		Attrs: m,
	})
}

func (j *JSONL) Span(name string, attrs ...Attr) Span {
	return &jsonlSpan{j: j, name: name, attrs: attrMap(attrs), t0: now()}
}

func (j *JSONL) Event(name string, attrs ...Attr) {
	j.emit(Record{T: "event", Name: name, Ms: j.since(), Attrs: attrMap(attrs)})
}

func (j *JSONL) Count(name string, delta int64) {
	j.emit(Record{T: "count", Name: name, Ms: j.since(), V: float64(delta)})
}

func (j *JSONL) Observe(name string, v float64) {
	j.emit(Record{T: "observe", Name: name, Ms: j.since(), V: v})
}

// Flush drains the internal buffer and reports any write error so far.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes the writer (the underlying io.Writer is not closed).
func (j *JSONL) Close() error { return j.Flush() }

// ReadJSONL parses a JSONL trace back into records, for replay validation.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
