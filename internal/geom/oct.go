package geom

import "fmt"

// Oct8 is the paper's octagonal tile model: the intersection of eight
// half-planes with fixed orientations,
//
//	XLo ≤ x ≤ XHi
//	YLo ≤ y ≤ YHi
//	SLo ≤ x+y ≤ SHi   (the 135°-oriented cuts: NE and SW boundary edges)
//	DLo ≤ y−x ≤ DHi   (the 45°-oriented cuts:  NW and SE boundary edges)
//
// The orientation of each boundary edge is fixed but its length is not, so
// an Oct8 also represents every degeneration of an octagon the paper lists:
// rectangles, 45° trapezoids, triangles, segments and points.
type Oct8 struct {
	XLo, XHi int64
	YLo, YHi int64
	SLo, SHi int64 // bounds on x+y
	DLo, DHi int64 // bounds on y−x
}

// OctFromRect returns the Oct8 covering exactly the rectangle r (the
// diagonal constraints are set to the tightest values implied by r, so the
// result is canonical).
func OctFromRect(r Rect) Oct8 {
	return Oct8{
		XLo: r.X0, XHi: r.X1,
		YLo: r.Y0, YHi: r.Y1,
		SLo: r.X0 + r.Y0, SHi: r.X1 + r.Y1,
		DLo: r.Y0 - r.X1, DHi: r.Y1 - r.X0,
	}
}

// RegularOct returns an (approximately) regular octagon centered at c with
// bounding-box width w: the paper's via shape. The corner cut t is the
// nearest integer to w·(2−√2)/2, which makes the axis-aligned and diagonal
// sides equal up to rounding.
func RegularOct(c Point, w int64) Oct8 {
	h := w / 2
	// t = h(2−√2) ≈ 0.5857864·h, rounded to nearest integer.
	t := (h*58579 + 50000) / 100000
	o := Oct8{
		XLo: c.X - h, XHi: c.X + h,
		YLo: c.Y - h, YHi: c.Y + h,
		SLo: c.X + c.Y - (2*h - t), SHi: c.X + c.Y + (2*h - t),
		DLo: c.Y - c.X - (2*h - t), DHi: c.Y - c.X + (2*h - t),
	}
	return o.Canonical()
}

// String implements fmt.Stringer.
func (o Oct8) String() string {
	return fmt.Sprintf("oct{x:[%d,%d] y:[%d,%d] s:[%d,%d] d:[%d,%d]}",
		o.XLo, o.XHi, o.YLo, o.YHi, o.SLo, o.SHi, o.DLo, o.DHi)
}

// Empty reports whether the region contains no integer or real point.
// It canonicalizes first, so redundant-looking bounds do not cause false
// positives.
func (o Oct8) Empty() bool {
	c := o.Canonical()
	return c.XLo > c.XHi || c.YLo > c.YHi || c.SLo > c.SHi || c.DLo > c.DHi
}

// Contains reports whether p satisfies all eight half-plane constraints.
func (o Oct8) Contains(p Point) bool {
	return p.X >= o.XLo && p.X <= o.XHi &&
		p.Y >= o.YLo && p.Y <= o.YHi &&
		p.X+p.Y >= o.SLo && p.X+p.Y <= o.SHi &&
		p.Y-p.X >= o.DLo && p.Y-p.X <= o.DHi
}

// Canonical returns the tightest equivalent bounds: each of the eight
// constraints is reduced to the minimum implied by the other six that
// interact with it. Tightening is run to a fixed point; for this constraint
// family two passes suffice, a third pass is done defensively.
func (o Oct8) Canonical() Oct8 {
	c := o
	for i := 0; i < 3; i++ {
		prev := c
		// x from s,d: x = (s − d… ) relations: x+y≥SLo & y≤YHi ⇒ x ≥ SLo−YHi.
		c.XLo = Max64(c.XLo, c.SLo-c.YHi)
		c.XLo = Max64(c.XLo, c.YLo-c.DHi) // y−x≤DHi & y≥YLo ⇒ x ≥ YLo−DHi
		c.XHi = Min64(c.XHi, c.SHi-c.YLo)
		c.XHi = Min64(c.XHi, c.YHi-c.DLo)
		c.YLo = Max64(c.YLo, c.SLo-c.XHi)
		c.YLo = Max64(c.YLo, c.DLo+c.XLo)
		c.YHi = Min64(c.YHi, c.SHi-c.XLo)
		c.YHi = Min64(c.YHi, c.DHi+c.XHi)
		c.SLo = Max64(c.SLo, c.XLo+c.YLo)
		c.SHi = Min64(c.SHi, c.XHi+c.YHi)
		c.DLo = Max64(c.DLo, c.YLo-c.XHi)
		c.DHi = Min64(c.DHi, c.YHi-c.XLo)
		if c == prev {
			break
		}
	}
	return c
}

// BBox returns the bounding rectangle of the canonical region.
func (o Oct8) BBox() Rect {
	c := o.Canonical()
	return Rect{c.XLo, c.YLo, c.XHi, c.YHi}
}

// Shrink insets every boundary edge of o by d (d in DBU for the axis
// constraints; the diagonal constraints move by the amount that keeps the
// inset uniform in Euclidean distance, i.e. d·√2 rounded up on x±y).
func (o Oct8) Shrink(d int64) Oct8 {
	ds := (d*141422 + 99999) / 100000 // ceil(d·√2)
	return Oct8{
		XLo: o.XLo + d, XHi: o.XHi - d,
		YLo: o.YLo + d, YHi: o.YHi - d,
		SLo: o.SLo + ds, SHi: o.SHi - ds,
		DLo: o.DLo + ds, DHi: o.DHi - ds,
	}
}

// Grow outsets every boundary edge of o by d, the inverse of Shrink up to
// diagonal rounding.
func (o Oct8) Grow(d int64) Oct8 {
	ds := (d*141422 + 99999) / 100000
	return Oct8{
		XLo: o.XLo - d, XHi: o.XHi + d,
		YLo: o.YLo - d, YHi: o.YHi + d,
		SLo: o.SLo - ds, SHi: o.SHi + ds,
		DLo: o.DLo - ds, DHi: o.DHi + ds,
	}
}

// IntersectOct returns the intersection of two Oct8 regions (the family is
// closed under intersection).
func (o Oct8) IntersectOct(q Oct8) Oct8 {
	return Oct8{
		XLo: Max64(o.XLo, q.XLo), XHi: Min64(o.XHi, q.XHi),
		YLo: Max64(o.YLo, q.YLo), YHi: Min64(o.YHi, q.YHi),
		SLo: Max64(o.SLo, q.SLo), SHi: Min64(o.SHi, q.SHi),
		DLo: Max64(o.DLo, q.DLo), DHi: Min64(o.DHi, q.DHi),
	}
}

// Intersects reports whether the two regions share at least one real point.
func (o Oct8) Intersects(q Oct8) bool { return !o.IntersectOct(q).Empty() }

// Vertices returns the polygon vertices of the canonical region in
// counter-clockwise order, with consecutive duplicates (degenerate edges)
// removed. Vertices may have half-integer coordinates where a diagonal cut
// meets an axis bound, hence the float result. The result has 3..8 vertices
// for a 2D region, fewer for degenerate segments/points.
func (o Oct8) Vertices() []PointF {
	c := o.Canonical()
	if c.XLo > c.XHi || c.YLo > c.YHi || c.SLo > c.SHi || c.DLo > c.DHi {
		return nil
	}
	// Walk the eight boundary lines in CCW order starting at the south edge
	// (y = YLo): S, SE(y−x=DLo), E(x=XHi), NE(x+y=SHi), N(y=YHi),
	// NW(y−x=DHi), W(x=XLo), SW(x+y=SLo). Consecutive boundary lines meet at
	// the candidate vertices.
	type hp struct {
		o Orient
		c int64
	}
	bounds := []hp{
		{OrientH, c.YLo},    // S
		{OrientD45, c.DLo},  // SE cut
		{OrientV, c.XHi},    // E
		{OrientD135, c.SHi}, // NE cut
		{OrientH, c.YHi},    // N
		{OrientD45, c.DHi},  // NW cut
		{OrientV, c.XLo},    // W
		{OrientD135, c.SLo}, // SW cut
	}
	var verts []PointF
	for i := range bounds {
		j := (i + 1) % len(bounds)
		p, ok := LineIntersection(bounds[i].o, bounds[i].c, bounds[j].o, bounds[j].c)
		if !ok {
			continue
		}
		// Keep only vertices on the region (within a small tolerance for
		// the half-integer diagonal meets).
		if !containsF(c, p, 1e-9) {
			continue
		}
		if n := len(verts); n > 0 && EuclidF(verts[n-1], p) < 1e-9 {
			continue
		}
		verts = append(verts, p)
	}
	if n := len(verts); n > 1 && EuclidF(verts[0], verts[n-1]) < 1e-9 {
		verts = verts[:n-1]
	}
	return verts
}

func containsF(o Oct8, p PointF, eps float64) bool {
	return p.X >= float64(o.XLo)-eps && p.X <= float64(o.XHi)+eps &&
		p.Y >= float64(o.YLo)-eps && p.Y <= float64(o.YHi)+eps &&
		p.X+p.Y >= float64(o.SLo)-eps && p.X+p.Y <= float64(o.SHi)+eps &&
		p.Y-p.X >= float64(o.DLo)-eps && p.Y-p.X <= float64(o.DHi)+eps
}

// Area returns the area of the region via the shoelace formula on its
// vertices.
func (o Oct8) Area() float64 {
	v := o.Vertices()
	if len(v) < 3 {
		return 0
	}
	sum := 0.0
	for i := range v {
		j := (i + 1) % len(v)
		sum += v[i].X*v[j].Y - v[j].X*v[i].Y
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}

// Center returns the centroid of the region's bounding box restricted to
// the region when possible; for degenerate regions it returns any
// contained point.
func (o Oct8) Center() Point {
	c := o.Canonical()
	p := Point{(c.XLo + c.XHi) / 2, (c.YLo + c.YHi) / 2}
	if c.Contains(p) {
		return p
	}
	// Clamp p into the diagonal bands.
	s := p.X + p.Y
	if s < c.SLo {
		d := c.SLo - s
		p.X += (d + 1) / 2
		p.Y += d / 2
	} else if s > c.SHi {
		d := s - c.SHi
		p.X -= (d + 1) / 2
		p.Y -= d / 2
	}
	dd := p.Y - p.X
	if dd < c.DLo {
		d := c.DLo - dd
		p.Y += (d + 1) / 2
		p.X -= d / 2
	} else if dd > c.DHi {
		d := dd - c.DHi
		p.Y -= (d + 1) / 2
		p.X += d / 2
	}
	if c.Contains(p) {
		return p
	}
	// Exact contained-integer-point search. A column x holds an integer
	// point iff ylo(x) = max(YLo, SLo−x, DLo+x) ≤ yhi(x) = min(YHi,
	// SHi−x, DHi+x); expanding the nine pairwise combinations (the three
	// x-free ones hold for any non-empty canonical region) shows the
	// feasible columns are exactly the interval below. The earlier
	// truncated-vertex fallback could return a point outside the region
	// when a half-integer vertex was the only candidate.
	xlo := Max64(Max64(c.XLo, c.YLo-c.DHi), Max64(c.SLo-c.YHi, ceilHalf(c.SLo-c.DHi)))
	xhi := Min64(Min64(c.XHi, c.YHi-c.DLo), Min64(c.SHi-c.YLo, floorHalf(c.SHi-c.DLo)))
	if xlo <= xhi {
		x := clamp64((c.XLo+c.XHi)/2, xlo, xhi)
		ylo := Max64(c.YLo, Max64(c.SLo-x, c.DLo+x))
		yhi := Min64(c.YHi, Min64(c.SHi-x, c.DHi+x))
		return Point{x, clamp64((c.YLo+c.YHi)/2, ylo, yhi)}
	}
	// No integer point exists (e.g. a sub-unit diagonal sliver); best
	// effort for callers that only need a nearby anchor.
	v := c.Vertices()
	if len(v) > 0 {
		return Point{int64(v[0].X), int64(v[0].Y)}
	}
	return Point{c.XLo, c.YLo}
}

// floorHalf and ceilHalf are floor(v/2) and ceil(v/2), exact for negative
// v (Go's / truncates toward zero).
func floorHalf(v int64) int64 { return v >> 1 }
func ceilHalf(v int64) int64  { return (v + 1) >> 1 }

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Poly returns the region as a convex polygon for distance computations.
func (o Oct8) Poly() ConvexPoly { return ConvexPoly(o.Vertices()) }

// OctAroundSegment returns the smallest Oct8 containing every point within
// Euclidean distance r of the octilinear segment s: the Minkowski sum of s
// with the regular octagon of inradius r (diagonal cuts at r·√2, rounded
// up). Exact for H, V and diagonal segments.
func OctAroundSegment(s Segment, r int64) Oct8 {
	rd := (r*141422 + 99999) / 100000 // ceil(r·√2)
	sA, sB := s.A.X+s.A.Y, s.B.X+s.B.Y
	dA, dB := s.A.Y-s.A.X, s.B.Y-s.B.X
	return Oct8{
		XLo: Min64(s.A.X, s.B.X) - r, XHi: Max64(s.A.X, s.B.X) + r,
		YLo: Min64(s.A.Y, s.B.Y) - r, YHi: Max64(s.A.Y, s.B.Y) + r,
		SLo: Min64(sA, sB) - rd, SHi: Max64(sA, sB) + rd,
		DLo: Min64(dA, dB) - rd, DHi: Max64(dA, dB) + rd,
	}
}

// SubtractOct returns o \ b as a set of disjoint Oct8 pieces, by peeling
// one half-plane of b at a time. The pieces tile o minus b exactly.
func (o Oct8) SubtractOct(b Oct8) []Oct8 {
	if !o.Intersects(b) {
		if o.Empty() {
			return nil
		}
		return []Oct8{o}
	}
	b = b.Canonical()
	remaining := o
	var out []Oct8
	emit := func(piece Oct8) {
		if !piece.Empty() {
			out = append(out, piece.Canonical())
		}
	}
	// For each half-plane constraint of b, split off the part of remaining
	// outside it. Integer complements: x ≥ lo ⇒ outside is x ≤ lo−1.
	type cut struct {
		apply func(Oct8) Oct8 // piece outside b's constraint
		keep  func(Oct8) Oct8 // piece inside b's constraint
	}
	cuts := []cut{
		{func(p Oct8) Oct8 { p.XHi = Min64(p.XHi, b.XLo-1); return p },
			func(p Oct8) Oct8 { p.XLo = Max64(p.XLo, b.XLo); return p }},
		{func(p Oct8) Oct8 { p.XLo = Max64(p.XLo, b.XHi+1); return p },
			func(p Oct8) Oct8 { p.XHi = Min64(p.XHi, b.XHi); return p }},
		{func(p Oct8) Oct8 { p.YHi = Min64(p.YHi, b.YLo-1); return p },
			func(p Oct8) Oct8 { p.YLo = Max64(p.YLo, b.YLo); return p }},
		{func(p Oct8) Oct8 { p.YLo = Max64(p.YLo, b.YHi+1); return p },
			func(p Oct8) Oct8 { p.YHi = Min64(p.YHi, b.YHi); return p }},
		{func(p Oct8) Oct8 { p.SHi = Min64(p.SHi, b.SLo-1); return p },
			func(p Oct8) Oct8 { p.SLo = Max64(p.SLo, b.SLo); return p }},
		{func(p Oct8) Oct8 { p.SLo = Max64(p.SLo, b.SHi+1); return p },
			func(p Oct8) Oct8 { p.SHi = Min64(p.SHi, b.SHi); return p }},
		{func(p Oct8) Oct8 { p.DHi = Min64(p.DHi, b.DLo-1); return p },
			func(p Oct8) Oct8 { p.DLo = Max64(p.DLo, b.DLo); return p }},
		{func(p Oct8) Oct8 { p.DLo = Max64(p.DLo, b.DHi+1); return p },
			func(p Oct8) Oct8 { p.DHi = Min64(p.DHi, b.DHi); return p }},
	}
	for _, c := range cuts {
		emit(c.apply(remaining))
		remaining = c.keep(remaining)
		if remaining.Empty() {
			break
		}
	}
	return out
}
