//go:build !race

package qa

const raceEnabled = false
