// Command rdlgen generates synthetic InFO routing benchmarks in the text
// netlist format, including the five Table-I circuits (dense1..dense5).
//
// Usage:
//
//	rdlgen -name dense3 > dense3.rdl
//	rdlgen -chips 4 -iopads 120 -bumps 400 -layers 5 -seed 9 > custom.rdl
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"rdlroute"
)

func main() {
	var (
		name   = flag.String("name", "", "benchmark name (dense1..dense5); overrides the custom flags")
		chips  = flag.Int("chips", 2, "number of chips")
		iopads = flag.Int("iopads", 44, "number of I/O pads (|Q|); nets are |Q|/2 pairs")
		bumps  = flag.Int("bumps", 324, "number of bump pads (|G|)")
		layers = flag.Int("layers", 3, "number of wire layers (|L_w|)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		logFmt = flag.String("log-format", "text", "stats line format on stderr: text or json (json emits a structured slog record)")
	)
	flag.Parse()

	var d *rdlroute.Design
	var err error
	if *name != "" {
		d, err = rdlroute.GenerateBenchmark(*name)
	} else {
		d, err = rdlroute.Generate(rdlroute.GenSpec{
			Name:       fmt.Sprintf("custom-%d", *seed),
			Chips:      *chips,
			IOPads:     *iopads,
			BumpPads:   *bumps,
			WireLayers: *layers,
			Seed:       *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdlgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rdlroute.WriteDesign(w, d); err != nil {
		fmt.Fprintln(os.Stderr, "rdlgen:", err)
		os.Exit(1)
	}
	s := d.Stats()
	if *logFmt == "json" {
		logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
		logger.Info("design generated", "name", s.Name, "chips", s.Chips,
			"io_pads", s.Q, "bump_pads", s.G, "nets", s.N,
			"wire_layers", s.WireLayers, "via_layers", s.ViaLayers)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %d chips, |Q|=%d, |G|=%d, |N|=%d, |Lw|=%d, |Lv|=%d\n",
		s.Name, s.Chips, s.Q, s.G, s.N, s.WireLayers, s.ViaLayers)
}
