package baseline

import (
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/geom"
)

// crossing4 builds two chips with four mutually-entangled nets: two
// straight pairs and two crossing pairs, so single-layer routing cannot
// complete everything on one layer.
func crossing4(layers int) *design.Design {
	d := &design.Design{
		Name:       "crossing4",
		Outline:    geom.RectWH(0, 0, 1440, 960),
		WireLayers: layers,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips: []design.Chip{
			{Name: "a", Box: geom.RectWH(120, 288, 360, 360)},
			{Name: "b", Box: geom.RectWH(960, 288, 360, 360)},
		},
	}
	id := 0
	pad := func(chip int, x, y int64) int {
		d.IOPads = append(d.IOPads, design.IOPad{ID: id, Chip: chip, Center: geom.Pt(x, y), HalfW: 8})
		id++
		return id - 1
	}
	ys := []int64{336, 420, 504, 588}
	var left, right []int
	for _, y := range ys {
		left = append(left, pad(0, 468, y))
		right = append(right, pad(1, 972, y))
	}
	// Entangled assignment: 0→3, 1→2, 2→1, 3→0 (full reversal: every pair
	// of nets crosses).
	for i := range ys {
		d.Nets = append(d.Nets, design.Net{
			ID: i,
			P1: design.PadRef{Kind: design.IOKind, Index: left[i]},
			P2: design.PadRef{Kind: design.IOKind, Index: right[len(ys)-1-i]},
		})
	}
	return d
}

func TestBaselineCrossingNets(t *testing.T) {
	// With full reversal all four channel-straight paths mutually cross;
	// the baseline must resolve this with layers or detours around the
	// chips while keeping every net on a single layer.
	d := crossing4(2)
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if vs := drc.Check(res.Layout); len(vs) != 0 {
		t.Errorf("baseline produced violations: %v", vs[0])
	}
	// With 4 layers everything fits.
	d4 := crossing4(4)
	res4, err := Route(d4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res4.Routability != 100 {
		t.Errorf("4-layer baseline routability = %v, want 100", res4.Routability)
	}
	if vs := drc.Check(res4.Layout); len(vs) != 0 {
		t.Errorf("4-layer baseline violations: %v", vs[0])
	}
}

func TestBaselineParallelNetsShareLayer(t *testing.T) {
	// Non-crossing parallel nets should all land on the first layer via
	// the concentric model.
	d := &design.Design{
		Name:       "parallel",
		Outline:    geom.RectWH(0, 0, 1440, 960),
		WireLayers: 2,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips: []design.Chip{
			{Name: "a", Box: geom.RectWH(120, 288, 360, 360)},
			{Name: "b", Box: geom.RectWH(960, 288, 360, 360)},
		},
	}
	id := 0
	pad := func(chip int, x, y int64) int {
		d.IOPads = append(d.IOPads, design.IOPad{ID: id, Chip: chip, Center: geom.Pt(x, y), HalfW: 8})
		id++
		return id - 1
	}
	for i := 0; i < 4; i++ {
		y := int64(336 + 60*i)
		p1 := pad(0, 468, y)
		p2 := pad(1, 972, y)
		d.Nets = append(d.Nets, design.Net{
			ID: i,
			P1: design.PadRef{Kind: design.IOKind, Index: p1},
			P2: design.PadRef{Kind: design.IOKind, Index: p2},
		})
	}
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Routability != 100 {
		t.Fatalf("routability = %v", res.Routability)
	}
	if res.ConcurrentRouted < 4 {
		t.Errorf("concurrent stage routed %d of 4 parallel nets", res.ConcurrentRouted)
	}
	if vs := drc.Check(res.Layout); len(vs) != 0 {
		t.Errorf("violations: %v", vs[0])
	}
	// All wires on layer 0 (single-layer nets, concentric assignment).
	for _, r := range res.Layout.Routes {
		if r.Layer != 0 {
			t.Errorf("net %d wire on layer %d, want 0", r.Net, r.Layer)
		}
	}
}

func TestBaselineSingleLayerNets(t *testing.T) {
	// Every net's wires stay within exactly one layer (the no-flexible-via
	// restriction), with only the pad stacks changing layers.
	d := crossing4(4)
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	layerOf := map[int]int{}
	for _, r := range res.Layout.Routes {
		if l, ok := layerOf[r.Net]; ok && l != r.Layer {
			t.Errorf("net %d has wires on layers %d and %d", r.Net, l, r.Layer)
		}
		layerOf[r.Net] = r.Layer
	}
}

func TestBaselineChipToBoardNets(t *testing.T) {
	// Board nets route on the bottom layer through the pad's full stack.
	d, err := design.Generate(design.GenSpec{
		Name: "board", Chips: 2, IOPads: 20, BumpPads: 36,
		WireLayers: 3, Seed: 9, BoardFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if vs := drc.Check(res.Layout); len(vs) != 0 {
		t.Fatalf("violations: %v", vs[0])
	}
	boardRouted := 0
	for ni, n := range d.Nets {
		if n.P2.Kind != design.BumpKind || !res.Layout.Routed(ni) {
			continue
		}
		boardRouted++
		if !res.Layout.Connected(ni) {
			t.Errorf("board net %d routed but disconnected", ni)
		}
		// Its wires must all be on the bottom layer.
		for _, r := range res.Layout.Routes {
			if r.Net == ni && r.Layer != d.WireLayers-1 {
				t.Errorf("board net %d has wire on layer %d", ni, r.Layer)
			}
		}
	}
	if boardRouted == 0 {
		t.Error("baseline routed no chip-to-board nets")
	}
}
