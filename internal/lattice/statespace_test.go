package lattice

import (
	"math"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// huge returns an empty design whose lattice at pitch 12 has nx = ny =
// side nodes per layer.
func huge(layers, side int) *design.Design {
	w := int64(side-1) * 12
	return &design.Design{
		Name:       "huge",
		Outline:    geom.RectWH(0, 0, w, w),
		WireLayers: layers,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
	}
}

func TestStateSpaceNoOverflow(t *testing.T) {
	// The quantity the seed computed in int — layers·nx·ny·9 — wraps for
	// realistic worst cases; the helper must compute it in int64.
	if got := stateSpace(4, 100000, 100000); got != 4*100000*100000*9 {
		t.Errorf("stateSpace(4, 1e5, 1e5) = %d", got)
	}
	if got := stateSpace(1, 1, 1); got != 9 {
		t.Errorf("stateSpace(1,1,1) = %d", got)
	}
}

func TestNewRejectsStateSpaceBeyondInt32(t *testing.T) {
	// Largest side with 2 layers that still packs: 2·side²·9 ≤ 2³¹−1 at
	// side = 10922 (2'146'286'312 states); side = 10923 exceeds it.
	okSide, badSide := 10922, 10923
	if s := stateSpace(2, okSide, okSide); s > math.MaxInt32 {
		t.Fatalf("test premise broken: %d states at side %d", s, okSide)
	}
	if s := stateSpace(2, badSide, badSide); s <= math.MaxInt32 {
		t.Fatalf("test premise broken: %d states at side %d", s, badSide)
	}
	// The rejection happens before any occupancy allocation, so the error
	// path is cheap to test even though an accepted lattice this size
	// would be ~1.7 GiB.
	if _, err := New(huge(2, badSide), 12); err == nil {
		t.Error("lattice beyond the int32 state id space accepted")
	} else if !strings.Contains(err.Error(), "state") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFingerprintCommitOrderIndependent(t *testing.T) {
	d := bare(2)
	a := mustNew(t, d)
	b := mustNew(t, d)
	w1 := []PathStep{{Layer: 0, Pt: geom.Pt(48, 48)}, {Layer: 0, Pt: geom.Pt(240, 48)}}
	w2 := []PathStep{{Layer: 1, Pt: geom.Pt(48, 240)}, {Layer: 1, Pt: geom.Pt(240, 240)}}
	a.Commit(w1, 0)
	a.Commit(w2, 1)
	b.Commit(w2, 1)
	b.Commit(w1, 0)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on commit order")
	}
	c := mustNew(t, d)
	c.Commit(w1, 0)
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("fingerprint ignores missing commit")
	}
}
