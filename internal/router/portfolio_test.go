package router

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestPortfolioMatchesSoloWinner is the winner-equals-solo oracle at the
// router level: a portfolio run must be indistinguishable — lattice
// fingerprint, routed nets, wirelength — from a solo run pinned to the
// policy the race selected. (The qa suite additionally compares encoded
// rdl-result/v1 bytes; the codec cannot be imported from here.)
func TestPortfolioMatchesSoloWinner(t *testing.T) {
	d := genDense1(t)
	opts := DefaultOptions()
	opts.OrderPortfolio = 6
	opts.Workers = 8

	res, la, err := route(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Portfolio == nil {
		t.Fatal("portfolio run returned no PortfolioReport")
	}
	if n := len(res.Portfolio.Candidates); n != 6 {
		t.Fatalf("raced %d candidates, want 6", n)
	}
	win := res.Portfolio.Winner
	if name := PortfolioPolicyName(win); name != res.Portfolio.WinnerName {
		t.Fatalf("winner name %q does not match registry name %q", res.Portfolio.WinnerName, name)
	}

	solo, sla, err := route(context.Background(), genDense1(t), WithOrderPolicy(opts, win))
	if err != nil {
		t.Fatal(err)
	}
	if solo.Portfolio != nil {
		t.Fatal("solo run carries a PortfolioReport")
	}
	if fp, sfp := la.Fingerprint(), sla.Fingerprint(); fp != sfp {
		t.Fatalf("portfolio lattice fingerprint %x != solo-winner fingerprint %x", fp, sfp)
	}
	if res.RoutedNets != solo.RoutedNets || res.Wirelength != solo.Wirelength {
		t.Fatalf("portfolio result (%d nets, wl %.3f) != solo winner (%d nets, wl %.3f)",
			res.RoutedNets, res.Wirelength, solo.RoutedNets, solo.Wirelength)
	}
	// The report's winning score is the score the replay actually
	// achieved (both include rip-up, disabled here, and exclude LP, which
	// never changes the routed count).
	if ws := res.Portfolio.Candidates[win]; ws.Routed != res.RoutedNets {
		t.Fatalf("winner scored %d routed nets in the race but %d in the replay", ws.Routed, res.RoutedNets)
	}
}

// TestPortfolioMonotonic is the monotonicity oracle: the portfolio must
// route at least as many nets as every individual policy it raced.
func TestPortfolioMonotonic(t *testing.T) {
	d := genDense1(t)
	opts := DefaultOptions()
	opts.OrderPortfolio = 6
	opts.RipUpRounds = 1

	res, err := Route(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for policy := 0; policy < opts.OrderPortfolio; policy++ {
		solo, err := Route(genDense1(t), WithOrderPolicy(opts, policy))
		if err != nil {
			t.Fatalf("solo policy %d: %v", policy, err)
		}
		if solo.RoutedNets > res.RoutedNets {
			t.Fatalf("policy %d (%s) routed %d nets, portfolio only %d",
				policy, PortfolioPolicyName(policy), solo.RoutedNets, res.RoutedNets)
		}
		if sc := res.Portfolio.Candidates[policy]; sc.Routed != solo.RoutedNets {
			t.Fatalf("race scored policy %d (%s) at %d routed nets, solo run achieved %d",
				policy, PortfolioPolicyName(policy), sc.Routed, solo.RoutedNets)
		}
	}
}

// TestPortfolioWorkerInvariant: the race's outcome — winner, scores and
// final lattice — must be byte-identical whether candidates run inline on
// one worker or concurrently on eight.
func TestPortfolioWorkerInvariant(t *testing.T) {
	opts := DefaultOptions()
	opts.OrderPortfolio = 6

	base, bla, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	bfp := bla.Fingerprint()
	for _, workers := range []int{2, 8} {
		o := opts
		o.Workers = workers
		res, la, err := route(context.Background(), genDense1(t), o)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if fp := la.Fingerprint(); fp != bfp {
			t.Fatalf("workers %d: fingerprint %x != single-worker %x", workers, fp, bfp)
		}
		if res.Portfolio.Winner != base.Portfolio.Winner {
			t.Fatalf("workers %d: winner %d != single-worker winner %d",
				workers, res.Portfolio.Winner, base.Portfolio.Winner)
		}
		for i, sc := range res.Portfolio.Candidates {
			if sc != base.Portfolio.Candidates[i] {
				t.Fatalf("workers %d: candidate %d scored %+v, single-worker %+v",
					workers, i, sc, base.Portfolio.Candidates[i])
			}
		}
	}
}

// TestPortfolioOptionValidation: out-of-range portfolio sizes and solo
// pins fail fast, before any stage runs.
func TestPortfolioOptionValidation(t *testing.T) {
	d := genDense1(t)
	opts := DefaultOptions()
	opts.OrderPortfolio = MaxPortfolio + 1
	if _, err := Route(d, opts); err == nil {
		t.Error("OrderPortfolio above MaxPortfolio accepted")
	}
	opts.OrderPortfolio = -1
	if _, err := Route(d, opts); err == nil {
		t.Error("negative OrderPortfolio accepted")
	}
	if _, err := Route(d, WithOrderPolicy(DefaultOptions(), MaxPortfolio)); err == nil {
		t.Error("solo policy at MaxPortfolio accepted")
	}
}

// TestCancelMidPortfolio sweeps a deadline across a portfolio run the way
// TestCancelMidParallelStage does for the parallel stages: whenever the
// deadline lands — during the silent race on scratch clones or during the
// winner's replay — the caller gets a clean context error and the next
// full run computes a byte-identical lattice. The race itself never
// touches the real lattice, so a cancellation mid-race has nothing to
// unwind by construction; this pins it.
func TestCancelMidPortfolio(t *testing.T) {
	opts := DefaultOptions()
	opts.OrderPortfolio = 6
	opts.Workers = 8

	res1, la1, err := route(context.Background(), genDense1(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := la1.Fingerprint()

	for _, budget := range []time.Duration{
		2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond, 120 * time.Millisecond,
	} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		res, _, err := route(ctx, genDense1(t), opts)
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				t.Fatalf("budget %v: err = %v, want a context error", budget, err)
			}
			if res != nil {
				t.Fatalf("budget %v: cancelled run returned a result", budget)
			}
		}

		res2, la2, err := route(context.Background(), genDense1(t), opts)
		if err != nil {
			t.Fatalf("budget %v: re-route: %v", budget, err)
		}
		if fp2 := la2.Fingerprint(); fp2 != fp1 {
			t.Fatalf("budget %v: lattice fingerprint changed after a cancelled portfolio run: %x != %x", budget, fp2, fp1)
		}
		if res1.Routability != res2.Routability || res1.Wirelength != res2.Wirelength ||
			res1.RoutedNets != res2.RoutedNets || res2.Portfolio.Winner != res1.Portfolio.Winner {
			t.Fatalf("budget %v: results diverged after a cancelled portfolio run", budget)
		}
	}
}
