package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestNopZeroAlloc pins the acceptance requirement: with no tracer
// attached (Nop), the emission discipline — guard with Enabled(), wrap
// stages with Stage — performs zero allocations.
func TestNopZeroAlloc(t *testing.T) {
	tr := Or(nil)
	if tr.Enabled() {
		t.Fatal("Or(nil) must be disabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if tr.Enabled() {
			tr.Event("net.route", Int("net", 1), String("stage", "sequential"))
			tr.Observe("astar.expanded", 42)
			tr.Count("astar.searches", 1)
		}
		end := Stage(tr, "sequential")
		end()
	})
	if allocs != 0 {
		t.Errorf("nop path allocates %.1f objects per run, want 0", allocs)
	}
}

func TestCollectorRecords(t *testing.T) {
	c := NewCollector()
	end := Stage(c, "graph")
	c.Event("net.route", Int("net", 3), String("stage", "concurrent"), Bool("ok", true))
	c.Count("astar.searches", 2)
	c.Count("astar.searches", 3)
	c.Observe("astar.expanded", 10)
	c.Observe("astar.expanded", 30)
	end(Int("tiles", 7))

	evs := c.Events("net.route")
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	if evs[0].Num("net") != 3 || evs[0].Str("stage") != "concurrent" {
		t.Errorf("event attrs = %+v", evs[0].Attrs)
	}
	if got, _ := evs[0].Attrs["ok"].(bool); !got {
		t.Errorf("bool attr lost: %+v", evs[0].Attrs)
	}
	spans := c.Spans("stage:graph")
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Attrs["tiles"] != int64(7) {
		t.Errorf("span end attrs = %+v", spans[0].Attrs)
	}
	if c.Counter("astar.searches") != 5 {
		t.Errorf("counter = %d, want 5", c.Counter("astar.searches"))
	}

	s := c.Snapshot()
	if s.Counters["astar.searches"] != 5 {
		t.Errorf("snapshot counter = %d", s.Counters["astar.searches"])
	}
	d := s.Dists["astar.expanded"]
	if d.Count != 2 || d.Min != 10 || d.Max != 30 || d.Mean != 20 {
		t.Errorf("dist = %+v", d)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "stage:graph" || s.Spans[0].Count != 1 {
		t.Errorf("span stats = %+v", s.Spans)
	}
	var b bytes.Buffer
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stage:graph", "astar.searches", "astar.expanded"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, b.String())
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	sp := j.Span("stage:lp", String("design", "dense1"))
	j.Event("lp.iter", Int("iter", 1), Float("objective", 123.5))
	j.Count("lp.violations", 4)
	j.Observe("astar.expanded", 99)
	sp.End(Int("iterations", 2))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	byType := map[string]Record{}
	for _, r := range recs {
		byType[r.T] = r
	}
	ev := byType["event"]
	if ev.Name != "lp.iter" || ev.Num("iter") != 1 || ev.Num("objective") != 123.5 {
		t.Errorf("event record = %+v", ev)
	}
	spr := byType["span"]
	if spr.Name != "stage:lp" || spr.Str("design") != "dense1" || spr.Num("iterations") != 2 {
		t.Errorf("span record = %+v", spr)
	}
	if byType["count"].V != 4 || byType["observe"].V != 99 {
		t.Errorf("count/observe = %+v / %+v", byType["count"], byType["observe"])
	}
}

func TestMulti(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	c := NewCollector()
	tr := Multi(nil, Nop(), j, c)
	if !tr.Enabled() {
		t.Fatal("multi with live sinks must be enabled")
	}
	tr.Event("x", Int("a", 1))
	tr.Span("s").End()
	tr.Count("n", 2)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Events("x")); got != 1 {
		t.Errorf("collector missed event: %d", got)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil || len(recs) != 3 {
		t.Errorf("jsonl records = %d (%v), want 3", len(recs), err)
	}
	snap, ok := tr.(Snapshotter)
	if !ok {
		t.Fatal("multi with a collector child must snapshot")
	}
	if s := snap.Snapshot(); s == nil || s.Counters["n"] != 2 {
		t.Errorf("multi snapshot = %+v", snap.Snapshot())
	}
	if Multi(nil, Nop()).Enabled() {
		t.Error("multi of disabled sinks must collapse to Nop")
	}
}

// TestConcurrentSinks exercises every sink from many goroutines; run
// under -race (scripts/verify.sh does) to prove the obs layer's
// concurrency safety.
func TestConcurrentSinks(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	c := NewCollector()
	tr := Multi(j, c)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Event("net.route", Int("net", w*per+i))
				tr.Count("nets", 1)
				tr.Observe("wl", float64(i))
				tr.Span("probe").End()
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.CountEvents("net.route", nil); got != workers*per {
		t.Errorf("events = %d, want %d", got, workers*per)
	}
	if c.Counter("nets") != workers*per {
		t.Errorf("counter = %d", c.Counter("nets"))
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per*4 {
		t.Errorf("jsonl records = %d, want %d", len(recs), workers*per*4)
	}
}

func TestStagePprofLabelRestored(t *testing.T) {
	c := NewCollector()
	end := Stage(c, "sequential", Int("jobs", 5))
	end(Int("routed", 4))
	spans := c.Spans("stage:sequential")
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Attrs["jobs"] != int64(5) || spans[0].Attrs["routed"] != int64(4) {
		t.Errorf("stage span attrs = %+v", spans[0].Attrs)
	}
}
