package baseline

import (
	"testing"

	"rdlroute/internal/obs"
)

func TestBaselineTracedRun(t *testing.T) {
	d := crossing4(4)
	c := obs.NewCollector()
	opts := DefaultOptions()
	opts.Tracer = c
	res, err := Route(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"linext-assign", "linext-concurrent", "linext-sequential"} {
		if n := len(c.Spans("stage:" + stage)); n != 1 {
			t.Errorf("stage %q: %d spans, want 1", stage, n)
		}
	}
	conc := c.CountEvents("net.route", func(e obs.Event) bool {
		return e.Str("stage") == "linext-concurrent"
	})
	seq := c.CountEvents("net.route", func(e obs.Event) bool {
		return e.Str("stage") == "linext-sequential"
	})
	if conc != res.ConcurrentRouted {
		t.Errorf("linext-concurrent events = %d, want %d", conc, res.ConcurrentRouted)
	}
	if seq != res.SequentialRouted {
		t.Errorf("linext-sequential events = %d, want %d", seq, res.SequentialRouted)
	}
	if n := c.Counter("linext.nets_routed"); n != int64(res.RoutedNets) {
		t.Errorf("linext.nets_routed = %d, want %d", n, res.RoutedNets)
	}
	if len(c.Events("mpsc.select")) == 0 {
		t.Error("no mpsc.select events from the concentric assignment")
	}
	if len(c.Events("route.done")) != 1 {
		t.Error("missing route.done event")
	}
}
