package qa

import (
	"fmt"
	"math"
	"math/rand"

	"rdlroute/internal/lp"
)

// LP differential tolerances: both solvers run exact float64 pivoting on
// small problems, so optimal objectives should agree tightly; feasibility
// is checked against the stated constraints with the same slack.
const (
	lpObjRelTol  = 1e-6
	lpFeasSlack  = 1e-6
	lpMaxVars    = 8
	lpMaxCons    = 10
	lpCoefRange  = 8 // coefficients drawn from ±lpCoefRange
	lpBoundRange = 20
)

// randomLP draws a small random linear program. Coefficients are small
// integers over a mix of bounded, one-sided and free variables, with ≤, ≥
// and = rows — the shapes the layout optimizer emits.
func randomLP(rng *rand.Rand) *lp.Problem {
	p := lp.NewProblem()
	nv := 2 + rng.Intn(lpMaxVars-1)
	for i := 0; i < nv; i++ {
		switch rng.Intn(4) {
		case 0:
			p.AddFreeVar()
		case 1:
			p.AddVar(0, math.Inf(1))
		case 2:
			p.AddVar(float64(-rng.Intn(lpBoundRange)), math.Inf(1))
		default:
			lo := float64(rng.Intn(lpBoundRange)) - lpBoundRange/2
			p.AddVar(lo, lo+1+float64(rng.Intn(lpBoundRange)))
		}
		p.SetObj(lp.VarID(i), float64(rng.Intn(2*lpCoefRange+1)-lpCoefRange))
	}
	nc := 1 + rng.Intn(lpMaxCons)
	for c := 0; c < nc; c++ {
		var terms []lp.Term
		for v := 0; v < nv; v++ {
			if rng.Intn(3) == 0 {
				continue
			}
			coef := float64(rng.Intn(2*lpCoefRange+1) - lpCoefRange)
			if coef == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: lp.VarID(v), Coef: coef})
		}
		if len(terms) == 0 {
			terms = []lp.Term{{Var: lp.VarID(rng.Intn(nv)), Coef: 1}}
		}
		rhs := float64(rng.Intn(4*lpCoefRange+1) - lpCoefRange)
		switch rng.Intn(5) {
		case 0:
			p.AddEQ(terms, rhs)
		case 1:
			p.AddGE(terms, rhs)
		default:
			p.AddLE(terms, rhs)
		}
	}
	return p
}

// CheckLPAgreement runs the revised-vs-dense simplex differential gate on
// one random LP: the two independent implementations must agree on
// feasibility, report objectives within tolerance when both are optimal,
// and every optimal solution must satisfy its own problem.
func CheckLPAgreement(seed int64) []Failure {
	rng := rand.New(rand.NewSource(seed ^ 0x5851f42d4c957f2d))
	p := randomLP(rng)
	dense := p.Solve()
	revised := p.SolveRevised()

	var fails []Failure
	failf := func(oracle, format string, args ...any) {
		fails = append(fails, Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
	}

	// Iteration-limited runs carry no verdict; everything else must agree.
	if dense.Status == lp.IterLimit || revised.Status == lp.IterLimit {
		return nil
	}
	if dense.Status != revised.Status {
		failf("lp-status", "dense simplex says %v, revised says %v", dense.Status, revised.Status)
		return fails
	}
	if dense.Status != lp.Optimal {
		return fails
	}
	if rel := relDiff(dense.Obj, revised.Obj); rel > lpObjRelTol {
		failf("lp-objective", "objectives diverge: dense %.9g vs revised %.9g (rel %.3g)",
			dense.Obj, revised.Obj, rel)
	}
	if err := p.CheckFeasible(dense.X, lpFeasSlack); err != nil {
		failf("lp-feasibility", "dense solution infeasible: %v", err)
	}
	if err := p.CheckFeasible(revised.X, lpFeasSlack); err != nil {
		failf("lp-feasibility", "revised solution infeasible: %v", err)
	}
	return fails
}
