package codec

import (
	"fmt"
	"io"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Wire representation of a design. Points are [x, y] pairs and rectangles
// [x0, y0, x1, y1], all in database units (the lattice pitch divides the
// generator's grid; see design.Grid).
type designDoc struct {
	Schema     string        `json:"schema"`
	Name       string        `json:"name"`
	Outline    [4]int64      `json:"outline"`
	WireLayers int           `json:"wire_layers"`
	Rules      rulesDoc      `json:"rules"`
	Chips      []chipDoc     `json:"chips,omitempty"`
	IOPads     []ioPadDoc    `json:"io_pads,omitempty"`
	BumpPads   []bumpPadDoc  `json:"bump_pads,omitempty"`
	Nets       []netDoc      `json:"nets,omitempty"`
	Obstacles  []obstacleDoc `json:"obstacles,omitempty"`
	FixedVias  []fixedViaDoc `json:"fixed_vias,omitempty"`
}

type rulesDoc struct {
	Spacing   int64 `json:"spacing"`
	WireWidth int64 `json:"wire_width"`
	ViaWidth  int64 `json:"via_width"`
}

type chipDoc struct {
	Name string   `json:"name"`
	Box  [4]int64 `json:"box"`
}

type ioPadDoc struct {
	ID     int      `json:"id"`
	Chip   int      `json:"chip"`
	Center [2]int64 `json:"center"`
	HalfW  int64    `json:"half_w"`
}

type bumpPadDoc struct {
	ID     int      `json:"id"`
	Center [2]int64 `json:"center"`
	W      int64    `json:"w"`
}

type padRefDoc struct {
	Kind  string `json:"kind"` // "io" | "bump"
	Index int    `json:"index"`
}

type netDoc struct {
	ID int       `json:"id"`
	P1 padRefDoc `json:"p1"`
	P2 padRefDoc `json:"p2"`
}

type obstacleDoc struct {
	Layer int      `json:"layer"`
	Box   [4]int64 `json:"box"`
}

type fixedViaDoc struct {
	Net    int      `json:"net"`
	Center [2]int64 `json:"center"`
	Slab   int      `json:"slab"`
}

func rectDoc(r geom.Rect) [4]int64     { return [4]int64{r.X0, r.Y0, r.X1, r.Y1} }
func docRect(a [4]int64) geom.Rect     { return geom.Rect{X0: a[0], Y0: a[1], X1: a[2], Y1: a[3]} }
func pointDoc(p geom.Point) [2]int64   { return [2]int64{p.X, p.Y} }
func docPoint(a [2]int64) geom.Point   { return geom.Point{X: a[0], Y: a[1]} }
func refDoc(r design.PadRef) padRefDoc { return padRefDoc{Kind: r.Kind.String(), Index: r.Index} }

// EncodeDesign writes d as an rdl-design/v1 JSON document. Encoding the
// same design twice produces identical bytes.
func EncodeDesign(w io.Writer, d *design.Design) error {
	doc := designDoc{
		Schema:     DesignSchema,
		Name:       d.Name,
		Outline:    rectDoc(d.Outline),
		WireLayers: d.WireLayers,
		Rules: rulesDoc{
			Spacing:   d.Rules.Spacing,
			WireWidth: d.Rules.WireWidth,
			ViaWidth:  d.Rules.ViaWidth,
		},
	}
	for _, c := range d.Chips {
		doc.Chips = append(doc.Chips, chipDoc{Name: c.Name, Box: rectDoc(c.Box)})
	}
	for _, p := range d.IOPads {
		doc.IOPads = append(doc.IOPads, ioPadDoc{
			ID: p.ID, Chip: p.Chip, Center: pointDoc(p.Center), HalfW: p.HalfW,
		})
	}
	for _, p := range d.BumpPads {
		doc.BumpPads = append(doc.BumpPads, bumpPadDoc{ID: p.ID, Center: pointDoc(p.Center), W: p.W})
	}
	for _, n := range d.Nets {
		doc.Nets = append(doc.Nets, netDoc{ID: n.ID, P1: refDoc(n.P1), P2: refDoc(n.P2)})
	}
	for _, o := range d.Obstacles {
		doc.Obstacles = append(doc.Obstacles, obstacleDoc{Layer: o.Layer, Box: rectDoc(o.Box)})
	}
	for _, v := range d.FixedVias {
		doc.FixedVias = append(doc.FixedVias, fixedViaDoc{Net: v.Net, Center: pointDoc(v.Center), Slab: v.Slab})
	}
	return writeDoc(w, DesignSchema, doc)
}

// decodeRef converts a wire pad reference, checking the kind string and
// that the index lands inside the referenced pad table.
func decodeRef(r padRefDoc, path string, nIO, nBump int) (design.PadRef, error) {
	var kind design.PadKind
	var limit int
	switch r.Kind {
	case "io":
		kind, limit = design.IOKind, nIO
	case "bump":
		kind, limit = design.BumpKind, nBump
	default:
		return design.PadRef{}, invalidf(DesignSchema, path+".kind",
			"pad kind %q (want \"io\" or \"bump\")", r.Kind)
	}
	if r.Index < 0 || r.Index >= limit {
		return design.PadRef{}, invalidf(DesignSchema, path+".index",
			"%s pad index %d out of range [0,%d)", r.Kind, r.Index, limit)
	}
	return design.PadRef{Kind: kind, Index: r.Index}, nil
}

// DecodeDesign reads an rdl-design/v1 document and returns a validated
// design. Malformed payloads yield a *Error (syntax, schema or validate
// kind) with the JSON path of the offending value.
func DecodeDesign(r io.Reader) (*design.Design, error) {
	var doc designDoc
	if err := decodeDoc(r, DesignSchema, &doc); err != nil {
		return nil, err
	}
	d := &design.Design{
		Name:       doc.Name,
		Outline:    docRect(doc.Outline),
		WireLayers: doc.WireLayers,
		Rules: design.Rules{
			Spacing:   doc.Rules.Spacing,
			WireWidth: doc.Rules.WireWidth,
			ViaWidth:  doc.Rules.ViaWidth,
		},
	}
	for _, c := range doc.Chips {
		d.Chips = append(d.Chips, design.Chip{Name: c.Name, Box: docRect(c.Box)})
	}
	for _, p := range doc.IOPads {
		d.IOPads = append(d.IOPads, design.IOPad{
			ID: p.ID, Chip: p.Chip, Center: docPoint(p.Center), HalfW: p.HalfW,
		})
	}
	for _, p := range doc.BumpPads {
		d.BumpPads = append(d.BumpPads, design.BumpPad{ID: p.ID, Center: docPoint(p.Center), W: p.W})
	}
	for i, n := range doc.Nets {
		p1, err := decodeRef(n.P1, fmt.Sprintf("nets[%d].p1", i), len(doc.IOPads), len(doc.BumpPads))
		if err != nil {
			return nil, err
		}
		p2, err := decodeRef(n.P2, fmt.Sprintf("nets[%d].p2", i), len(doc.IOPads), len(doc.BumpPads))
		if err != nil {
			return nil, err
		}
		d.Nets = append(d.Nets, design.Net{ID: n.ID, P1: p1, P2: p2})
	}
	for _, o := range doc.Obstacles {
		d.Obstacles = append(d.Obstacles, design.Obstacle{Layer: o.Layer, Box: docRect(o.Box)})
	}
	for _, v := range doc.FixedVias {
		d.FixedVias = append(d.FixedVias, design.FixedVia{Net: v.Net, Center: docPoint(v.Center), Slab: v.Slab})
	}
	if err := d.Validate(); err != nil {
		return nil, &Error{Schema: DesignSchema, Kind: KindValidate, Path: "$",
			Msg: "design validation failed", Err: err}
	}
	return d, nil
}
