package graphs

import (
	"math"
	"math/rand"
	"testing"
)

// gridExpand returns an expansion function over a w×h 4-connected grid with
// unit edge costs and a blocked-cell mask.
func gridExpand(w, h int, blocked map[int]bool) func(int, func(int, float64)) {
	return func(s int, emit func(int, float64)) {
		x, y := s%w, s/w
		try := func(nx, ny int) {
			if nx < 0 || ny < 0 || nx >= w || ny >= h {
				return
			}
			id := ny*w + nx
			if blocked[id] {
				return
			}
			emit(id, 1)
		}
		try(x+1, y)
		try(x-1, y)
		try(x, y+1)
		try(x, y-1)
	}
}

func TestAStarStraightLine(t *testing.T) {
	const w, h = 10, 10
	path, cost, ok := AStar(w*h,
		[]StartState{{State: 0}},
		func(s int) bool { return s == 9 },
		gridExpand(w, h, nil),
		func(s int) float64 { return float64(9 - s%w) },
	)
	if !ok || cost != 9 || len(path) != 10 {
		t.Fatalf("ok=%v cost=%v len=%d", ok, cost, len(path))
	}
}

func TestAStarDetour(t *testing.T) {
	// Wall at x=5 with a gap at y=9 forces a detour.
	const w, h = 10, 10
	blocked := map[int]bool{}
	for y := 0; y < 9; y++ {
		blocked[y*w+5] = true
	}
	goal := 9 // (9, 0)
	path, cost, ok := AStar(w*h,
		[]StartState{{State: 0}},
		func(s int) bool { return s == goal },
		gridExpand(w, h, blocked),
		func(s int) float64 {
			x, y := s%w, s/w
			return math.Abs(float64(9-x)) + math.Abs(float64(0-y))
		},
	)
	if !ok {
		t.Fatal("no path found")
	}
	if cost != 9+2*9 {
		t.Errorf("detour cost = %v, want 27", cost)
	}
	// Path must be contiguous and avoid blocked cells.
	for i, s := range path {
		if blocked[s] {
			t.Errorf("path visits blocked cell %d", s)
		}
		if i > 0 {
			dx := path[i]%w - path[i-1]%w
			dy := path[i]/w - path[i-1]/w
			if abs(dx)+abs(dy) != 1 {
				t.Errorf("non-adjacent step %d -> %d", path[i-1], path[i])
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestAStarUnreachable(t *testing.T) {
	const w, h = 5, 5
	blocked := map[int]bool{}
	for y := 0; y < h; y++ {
		blocked[y*w+2] = true // full wall
	}
	_, _, ok := AStar(w*h,
		[]StartState{{State: 0}},
		func(s int) bool { return s == 4 },
		gridExpand(w, h, blocked),
		nil,
	)
	if ok {
		t.Error("walled-off goal must be unreachable")
	}
}

func TestAStarMultiSource(t *testing.T) {
	const w, h = 10, 1
	// Two sources: state 0 at cost 5, state 8 at cost 0. Goal 9.
	path, cost, ok := AStar(w*h,
		[]StartState{{State: 0, Cost: 5}, {State: 8, Cost: 0}},
		func(s int) bool { return s == 9 },
		gridExpand(w, h, nil),
		nil,
	)
	if !ok || cost != 1 {
		t.Fatalf("ok=%v cost=%v", ok, cost)
	}
	if path[0] != 8 {
		t.Errorf("search should start from the cheaper source, path=%v", path)
	}
}

func TestAStarMatchesDijkstraProperty(t *testing.T) {
	// With an admissible heuristic, A* cost equals Dijkstra (h=nil) cost.
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		const w, h = 12, 12
		blocked := map[int]bool{}
		for i := 0; i < 30; i++ {
			blocked[rng.Intn(w*h)] = true
		}
		start := 0
		goal := w*h - 1
		if blocked[start] || blocked[goal] {
			continue
		}
		heur := func(s int) float64 {
			x, y := s%w, s/w
			return math.Abs(float64(goal%w-x)) + math.Abs(float64(goal/w-y))
		}
		_, c1, ok1 := AStar(w*h, []StartState{{State: start}},
			func(s int) bool { return s == goal }, gridExpand(w, h, blocked), heur)
		_, c2, ok2 := AStar(w*h, []StartState{{State: start}},
			func(s int) bool { return s == goal }, gridExpand(w, h, blocked), nil)
		if ok1 != ok2 {
			t.Fatalf("trial %d: reachability mismatch", trial)
		}
		if ok1 && math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("trial %d: A*=%v Dijkstra=%v", trial, c1, c2)
		}
	}
}
