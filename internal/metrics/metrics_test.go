package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact exposition bytes of a small
// registry: family ordering, label ordering, histogram bucket lines,
// escaping and float formatting are all load-bearing for scrapers.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rdl_jobs_submitted_total", "Jobs accepted into the queue.").Add(3)
	v := reg.CounterVec("rdl_jobs_finished_total", "Finished jobs by outcome.", "outcome")
	v.With("completed").Add(2)
	v.With("canceled").Inc()
	reg.Gauge("rdl_queue_depth", "Jobs waiting in the queue.").Set(1.5)
	h := reg.Histogram("rdl_job_duration_seconds", "End-to-end job latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(1) // exactly on a bound: counts into le="1"
	h.Observe(99)
	reg.Gauge("esc_gauge", `quote " and slash \`).Set(math.Inf(1))

	want := strings.Join([]string{
		`# HELP esc_gauge quote " and slash \\`,
		`# TYPE esc_gauge gauge`,
		`esc_gauge +Inf`,
		`# HELP rdl_job_duration_seconds End-to-end job latency.`,
		`# TYPE rdl_job_duration_seconds histogram`,
		`rdl_job_duration_seconds_bucket{le="0.1"} 1`,
		`rdl_job_duration_seconds_bucket{le="1"} 2`,
		`rdl_job_duration_seconds_bucket{le="10"} 2`,
		`rdl_job_duration_seconds_bucket{le="+Inf"} 3`,
		`rdl_job_duration_seconds_sum 100.05`,
		`rdl_job_duration_seconds_count 3`,
		`# HELP rdl_jobs_finished_total Finished jobs by outcome.`,
		`# TYPE rdl_jobs_finished_total counter`,
		`rdl_jobs_finished_total{outcome="canceled"} 1`,
		`rdl_jobs_finished_total{outcome="completed"} 2`,
		`# HELP rdl_jobs_submitted_total Jobs accepted into the queue.`,
		`# TYPE rdl_jobs_submitted_total counter`,
		`rdl_jobs_submitted_total 3`,
		`# HELP rdl_queue_depth Jobs waiting in the queue.`,
		`# TYPE rdl_queue_depth gauge`,
		`rdl_queue_depth 1.5`,
		``,
	}, "\n")
	got := string(reg.Expose())
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Byte-stability: a second render of unchanged values is identical.
	if again := string(reg.Expose()); again != got {
		t.Errorf("second exposition differs from the first")
	}
}

// TestHistogramBucketBoundaries is the boundary table: upper bounds are
// inclusive, the next bucket starts strictly above, and out-of-range
// samples land in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want string // le of the bucket the sample's first increment lands in
	}{
		{-5, "1"},                    // below range → first bucket
		{0, "1"},                     //
		{1, "1"},                     // exactly on a bound → that bucket
		{math.Nextafter(1, 2), "10"}, // just above → next bucket
		{10, "10"},                   // exactly on the last finite bound
		{10.0000001, "+Inf"},         // above every finite bound
		{1e18, "+Inf"},               //
	}
	for _, tc := range cases {
		reg := NewRegistry()
		h := reg.Histogram("h", "", []float64{1, 10})
		h.Observe(tc.v)
		fams, err := ParseText(bytes.NewReader(reg.Expose()))
		if err != nil {
			t.Fatalf("v=%v: parse: %v", tc.v, err)
		}
		f := fams["h"]
		if f == nil {
			t.Fatalf("v=%v: family missing", tc.v)
		}
		// The first bucket with cumulative count 1 is where it landed.
		landed := ""
		for _, s := range f.Samples {
			if strings.HasSuffix(s.Name, "_bucket") && s.Value == 1 {
				landed = s.Labels["le"]
				break
			}
		}
		if landed != tc.want {
			t.Errorf("Observe(%v) landed in le=%q, want le=%q", tc.v, landed, tc.want)
		}
		if c := h.Count(); c != 1 {
			t.Errorf("Observe(%v): count %d, want 1", tc.v, c)
		}
	}
}

// TestHistogramSum checks the CAS float accumulation.
func TestHistogramSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1})
	for i := 1; i <= 100; i++ {
		h.Observe(0.5)
	}
	if got := h.Sum(); got != 50 {
		t.Errorf("sum = %v, want 50", got)
	}
}

// TestConcurrentScrape hammers counters, gauges and histograms from many
// goroutines while scraping concurrently; -race holds the registry to
// its concurrency contract and the final totals must be exact.
func TestConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	vec := reg.CounterVec("v_total", "", "k")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", LatencyBuckets())

	const workers, iters = 8, 2000
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ParseText(bytes.NewReader(reg.Expose())); err != nil {
				t.Errorf("mid-flight exposition unparseable: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				vec.With("a").Add(2)
				g.Set(float64(i))
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := vec.With("a").Value(); got != 2*workers*iters {
		t.Errorf("vec counter = %d, want %d", got, 2*workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := h.Sum(); math.Abs(got-0.01*workers*iters) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, 0.01*workers*iters)
	}
}

// TestRegisterIdempotent: re-registering the same family returns the
// same series; a shape change panics.
func TestRegisterIdempotent(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(1)
	reg.Counter("c_total", "").Add(1)
	if got := reg.Counter("c_total", "").Value(); got != 2 {
		t.Errorf("re-registered counter = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("redefining c_total as a gauge did not panic")
		}
	}()
	reg.Gauge("c_total", "")
}

// TestInvalidNamePanics: the registry refuses names outside the
// exposition charset at registration time.
func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("bad.name", "")
}
