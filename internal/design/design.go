// Package design defines the InFO-package data model the router operates
// on — chips, I/O pads, bump pads, pre-assigned nets, obstacles, design
// rules and the RDL layer stack — together with a text netlist format and
// a benchmark generator that reproduces the published statistics of the
// paper's proprietary dense1..dense5 circuits.
package design

import (
	"fmt"

	"rdlroute/internal/geom"
)

// PadKind distinguishes the two pad families of the package.
type PadKind uint8

// Pad kinds.
const (
	IOKind   PadKind = iota // rectangular pad on the top RDL
	BumpKind                // octagonal pad on the bottom RDL
)

// String implements fmt.Stringer.
func (k PadKind) String() string {
	if k == IOKind {
		return "io"
	}
	return "bump"
}

// PadRef identifies one endpoint of a pre-assigned net.
type PadRef struct {
	Kind  PadKind
	Index int // index into Design.IOPads or Design.BumpPads
}

// IOPad is a rectangular I/O pad attached to the top RDL for
// chip-to-package contact.
type IOPad struct {
	ID     int
	Chip   int // owning chip index, −1 for chipless pads
	Center geom.Point
	HalfW  int64 // half the pad's side length
}

// Box returns the pad's rectangle.
func (p IOPad) Box() geom.Rect {
	return geom.Rect{
		X0: p.Center.X - p.HalfW, Y0: p.Center.Y - p.HalfW,
		X1: p.Center.X + p.HalfW, Y1: p.Center.Y + p.HalfW,
	}
}

// BumpPad is an octagonal pad attached to the bottom RDL for
// package-to-board contact.
type BumpPad struct {
	ID     int
	Center geom.Point
	W      int64 // bounding-box width of the octagon
}

// Oct returns the pad's octagonal outline.
func (p BumpPad) Oct() geom.Oct8 { return geom.RegularOct(p.Center, p.W) }

// Net is a pre-assigned pad pair: either two I/O pads (an inter-chip
// connection) or an I/O pad and a bump pad (a chip-to-board connection).
type Net struct {
	ID     int
	P1, P2 PadRef
}

// InterChip reports whether the net connects two I/O pads.
func (n Net) InterChip() bool { return n.P1.Kind == IOKind && n.P2.Kind == IOKind }

// Obstacle is a rectangular routing blockage on one wire layer.
type Obstacle struct {
	Layer int
	Box   geom.Rect
}

// FixedVia is a pre-assigned via (the paper's V_p): an octagonal via that
// exists before routing, joining wire layers Slab and Slab+1. Net is the
// owning net index, or −1 for a netless blockage via.
type FixedVia struct {
	Net    int
	Center geom.Point
	Slab   int
}

// Oct returns the via's outline under the design rules.
func (v FixedVia) Oct(r Rules) geom.Oct8 { return geom.RegularOct(v.Center, r.ViaWidth) }

// Rules carries the design rules of Section II-B.
type Rules struct {
	Spacing   int64 // minimum spacing s between components of different nets
	WireWidth int64 // wire width s_w
	ViaWidth  int64 // via width s_v (bounding box of the octagonal via)
}

// Chip is a die inside the molding compound; its shadow on the RDLs is the
// fan-in region.
type Chip struct {
	Name string
	Box  geom.Rect
}

// Design is a complete routing instance.
type Design struct {
	Name       string
	Outline    geom.Rect // package boundary
	WireLayers int       // |L_w|; via layers |L_v| = WireLayers + 1
	Rules      Rules
	Chips      []Chip
	IOPads     []IOPad
	BumpPads   []BumpPad
	Nets       []Net
	Obstacles  []Obstacle
	FixedVias  []FixedVia
}

// ViaLayers returns |L_v| for the stack (one via layer above each wire
// layer plus one below the bottom, per the paper's alternating structure).
func (d *Design) ViaLayers() int { return d.WireLayers + 1 }

// PadCenter returns the center point of the referenced pad.
func (d *Design) PadCenter(r PadRef) geom.Point {
	if r.Kind == IOKind {
		return d.IOPads[r.Index].Center
	}
	return d.BumpPads[r.Index].Center
}

// PadChip returns the owning chip of the referenced pad, or −1 for bump
// pads and chipless I/O pads.
func (d *Design) PadChip(r PadRef) int {
	if r.Kind == IOKind {
		return d.IOPads[r.Index].Chip
	}
	return -1
}

// Validate checks structural consistency: pad/net references in range,
// chips inside the outline, pads inside their chips, positive rules, and
// pairwise pad spacing. It returns the first violation found.
func (d *Design) Validate() error {
	if d.WireLayers < 1 {
		return fmt.Errorf("design %s: needs at least one wire layer", d.Name)
	}
	if d.Rules.Spacing <= 0 || d.Rules.WireWidth <= 0 || d.Rules.ViaWidth <= 0 {
		return fmt.Errorf("design %s: rules must be positive: %+v", d.Name, d.Rules)
	}
	if d.Outline.Empty() {
		return fmt.Errorf("design %s: empty outline", d.Name)
	}
	for i, c := range d.Chips {
		if !d.Outline.ContainsRect(c.Box) {
			return fmt.Errorf("design %s: chip %d (%s) outside outline", d.Name, i, c.Name)
		}
	}
	for i, p := range d.IOPads {
		if p.Chip < -1 || p.Chip >= len(d.Chips) {
			return fmt.Errorf("design %s: io pad %d references chip %d", d.Name, i, p.Chip)
		}
		if p.Chip >= 0 && !d.Chips[p.Chip].Box.ContainsRect(p.Box()) {
			return fmt.Errorf("design %s: io pad %d escapes chip %d", d.Name, i, p.Chip)
		}
		if !d.Outline.ContainsRect(p.Box()) {
			return fmt.Errorf("design %s: io pad %d outside outline", d.Name, i)
		}
	}
	for i, p := range d.BumpPads {
		if !d.Outline.ContainsRect(p.Oct().BBox()) {
			return fmt.Errorf("design %s: bump pad %d outside outline", d.Name, i)
		}
	}
	seen := make(map[[2]int]bool)
	for i, n := range d.Nets {
		for _, r := range []PadRef{n.P1, n.P2} {
			switch r.Kind {
			case IOKind:
				if r.Index < 0 || r.Index >= len(d.IOPads) {
					return fmt.Errorf("design %s: net %d references io pad %d", d.Name, i, r.Index)
				}
			case BumpKind:
				if r.Index < 0 || r.Index >= len(d.BumpPads) {
					return fmt.Errorf("design %s: net %d references bump pad %d", d.Name, i, r.Index)
				}
			}
		}
		if n.P1 == n.P2 {
			return fmt.Errorf("design %s: net %d connects a pad to itself", d.Name, i)
		}
		for _, r := range []PadRef{n.P1, n.P2} {
			key := [2]int{int(r.Kind), r.Index}
			if seen[key] {
				return fmt.Errorf("design %s: pad %v used by more than one net", d.Name, r)
			}
			seen[key] = true
		}
	}
	for i, o := range d.Obstacles {
		if o.Layer < 0 || o.Layer >= d.WireLayers {
			return fmt.Errorf("design %s: obstacle %d on layer %d of %d", d.Name, i, o.Layer, d.WireLayers)
		}
	}
	for i, v := range d.FixedVias {
		if v.Slab < 0 || v.Slab >= d.WireLayers-1 {
			return fmt.Errorf("design %s: fixed via %d on slab %d of %d", d.Name, i, v.Slab, d.WireLayers-1)
		}
		if v.Net < -1 || v.Net >= len(d.Nets) {
			return fmt.Errorf("design %s: fixed via %d references net %d", d.Name, i, v.Net)
		}
		if !d.Outline.Contains(v.Center) {
			return fmt.Errorf("design %s: fixed via %d outside outline", d.Name, i)
		}
	}
	// On single-wire-layer designs, I/O pads and bump pads share the only
	// layer and must keep spacing from each other too.
	if d.WireLayers == 1 {
		for i, p := range d.IOPads {
			for j, b := range d.BumpPads {
				minGap := p.HalfW + b.W/2 + d.Rules.Spacing
				dx := geom.Abs64(p.Center.X - b.Center.X)
				dy := geom.Abs64(p.Center.Y - b.Center.Y)
				if dx < minGap && dy < minGap {
					return fmt.Errorf("design %s: io pad %d and bump pad %d share layer 0 and violate spacing", d.Name, i, j)
				}
			}
		}
	}
	// Pairwise bump pad spacing (octagon bounding boxes, conservative).
	for i := range d.BumpPads {
		for j := i + 1; j < len(d.BumpPads); j++ {
			a, b := d.BumpPads[i], d.BumpPads[j]
			minGap := (a.W+b.W)/2 + d.Rules.Spacing
			dx := geom.Abs64(a.Center.X - b.Center.X)
			dy := geom.Abs64(a.Center.Y - b.Center.Y)
			if dx < minGap && dy < minGap {
				return fmt.Errorf("design %s: bump pads %d and %d violate spacing", d.Name, i, j)
			}
		}
	}
	// Pairwise I/O pad spacing within each chip (the irregular-structure
	// rule: arbitrary positions, but minimum spacing holds).
	for i := range d.IOPads {
		for j := i + 1; j < len(d.IOPads); j++ {
			a, b := d.IOPads[i], d.IOPads[j]
			if a.Chip != b.Chip {
				continue
			}
			gap := a.Box().Expand(d.Rules.Spacing).Intersect(b.Box())
			if !gap.Empty() && gap.Area() > 0 {
				return fmt.Errorf("design %s: io pads %d and %d violate spacing", d.Name, i, j)
			}
		}
	}
	return nil
}

// Stats summarizes a design in the shape of the paper's Table I row.
type Stats struct {
	Name       string
	Chips      int
	Q          int // |Q| I/O pads
	G          int // |G| bump pads
	N          int // |N| pre-assigned nets
	WireLayers int // |L_w|
	ViaLayers  int // |L_v|
}

// Stats returns the Table-I-style statistics of d.
func (d *Design) Stats() Stats {
	return Stats{
		Name:       d.Name,
		Chips:      len(d.Chips),
		Q:          len(d.IOPads),
		G:          len(d.BumpPads),
		N:          len(d.Nets),
		WireLayers: d.WireLayers,
		ViaLayers:  d.ViaLayers(),
	}
}
