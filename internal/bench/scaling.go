package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

// ScalingRow is one (circuit, workers) cell of the scaling experiment:
// the same circuit routed with Options.Workers set to each count, timed,
// and fingerprint-checked against the workers=1 run.
type ScalingRow struct {
	Name        string  `json:"circuit"`
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	Speedup     float64 `json:"speedup_vs_1"`
	Routability float64 `json:"routability"`
	Wirelength  float64 `json:"wirelength"`
	Fingerprint uint64  `json:"fingerprint"`
	// Speculative records whether this cell ran the speculative stage-4
	// scheduler. Under bench.Speculative the workerCounts[0] cell stays
	// on the plain sequential loop so every speculative cell's identity
	// check is against the sequential baseline itself.
	Speculative bool `json:"speculative"`
	// Deterministic reports whether this run's lattice fingerprint,
	// routability and wirelength match the workerCounts[0] run of the
	// same circuit — the determinism contract measured, not assumed.
	Deterministic bool `json:"deterministic"`
}

// RunScaling routes each named circuit once per worker count, in order,
// and reports wall time plus the determinism check against the first
// count's run (pass 1 first to compare against the sequential path).
// Runs are never overlapped (Parallel is ignored here): overlapping
// them would corrupt the timings the experiment exists to measure.
func RunScaling(names []string, workerCounts []int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, name := range names {
		spec, err := design.DenseSpec(name)
		if err != nil {
			return nil, err
		}
		var baseSec float64
		var baseFP uint64
		var baseRes *router.Result
		for wi, w := range workerCounts {
			d, err := design.Generate(spec)
			if err != nil {
				return nil, err
			}
			opts := routerOptions()
			opts.Workers = w
			if wi == 0 {
				// The first cell is the identity baseline: always the plain
				// sequential loop, so speculative cells are proven against
				// the semantics they must reproduce.
				opts.Speculative = false
			}
			start := time.Now()
			res, fp, err := router.RouteFingerprint(context.Background(), d, opts)
			if err != nil {
				return nil, err
			}
			sec := time.Since(start).Seconds()
			row := ScalingRow{
				Name: name, Workers: w, Seconds: sec,
				Routability: res.Routability, Wirelength: res.Wirelength,
				Fingerprint: fp, Speculative: opts.Speculative,
			}
			if wi == 0 {
				baseSec, baseFP, baseRes = sec, fp, res
			}
			row.Deterministic = fp == baseFP &&
				res.Routability == baseRes.Routability &&
				res.Wirelength == baseRes.Wirelength
			if sec > 0 {
				row.Speedup = baseSec / sec
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatScaling renders the scaling rows as a fixed-width table.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %7s %9s %8s %7s %12s %5s\n",
		"Circuit", "Workers", "Seconds", "Speedup", "Route%", "Wirelength", "Det")
	for _, r := range rows {
		det := "yes"
		if !r.Deterministic {
			det = "NO"
		}
		fmt.Fprintf(&b, "%-8s %7d %9.2f %8.2f %6.1f%% %12.0f %5s\n",
			r.Name, r.Workers, r.Seconds, r.Speedup, r.Routability, r.Wirelength, det)
	}
	return b.String()
}
