// Package mpsc implements the weighted maximum planar subset of chords
// algorithm the paper builds its layer assignment on: Supowit's dynamic
// program over a circular model, extended with per-chord weights (paper
// Eq. (2)) so congestion- and detour-prone nets are deprioritized.
//
// The circular model has m positions 0..m−1 on a circle; each chord joins
// two distinct positions and carries a positive weight. A subset of chords
// is planar when no two chords cross; the DP finds a planar subset of
// maximum total weight in O(m²) time, using the property that every circle
// position is an endpoint of at most one chord (each position is one pad's
// fan-out access point).
package mpsc

import (
	"context"
	"fmt"

	"rdlroute/internal/obs"
)

// Chord is a chord of the circular model joining positions A and B
// (order irrelevant) with weight W. Tag carries the caller's net index
// through the computation.
type Chord struct {
	A, B int
	W    float64
	Tag  int
}

// Crosses reports whether chords c and d cross: exactly one endpoint of d
// lies strictly between c's endpoints along the circle. Chords sharing an
// endpoint do not cross.
func Crosses(c, d Chord) bool {
	a, b := order(c)
	e, f := order(d)
	if a == e || a == f || b == e || b == f {
		return false
	}
	inside := func(x int) bool { return a < x && x < b }
	return inside(e) != inside(f)
}

func order(c Chord) (lo, hi int) {
	if c.A <= c.B {
		return c.A, c.B
	}
	return c.B, c.A
}

// MaxPlanarSubset returns the indices (into chords) of a maximum-weight
// planar subset, and its total weight. m is the number of circle
// positions. Chords with non-positive weight are never selected. It panics
// if two chords share an endpoint or an endpoint is out of range — the
// circular-model construction guarantees unique positions.
func MaxPlanarSubset(m int, chords []Chord) ([]int, float64) {
	picked, w, _ := maxPlanarSubset(nil, m, chords)
	return picked, w
}

// MaxPlanarSubsetCtx is MaxPlanarSubset with cancellation: the O(m²) DP
// polls ctx once per outer arc-length iteration (an O(m) stride) and
// returns ctx's error when it fires. A nil ctx is never polled.
func MaxPlanarSubsetCtx(ctx context.Context, m int, chords []Chord) ([]int, float64, error) {
	return maxPlanarSubset(ctx, m, chords)
}

func maxPlanarSubset(ctx context.Context, m int, chords []Chord) ([]int, float64, error) {
	endAt := make([]int, m) // chord index whose higher endpoint is j, or −1
	for i := range endAt {
		endAt[i] = -1
	}
	otherEnd := make([]int, m)
	seen := make([]bool, m)
	for i, c := range chords {
		lo, hi := order(c)
		if lo < 0 || hi >= m {
			panic(fmt.Sprintf("mpsc: chord %d endpoints (%d,%d) out of range [0,%d)", i, c.A, c.B, m))
		}
		if lo == hi {
			panic(fmt.Sprintf("mpsc: chord %d is degenerate at position %d", i, lo))
		}
		if seen[lo] || seen[hi] {
			panic(fmt.Sprintf("mpsc: chord %d shares an endpoint with another chord", i))
		}
		seen[lo] = true
		seen[hi] = true
		if c.W > 0 {
			endAt[hi] = i
			otherEnd[hi] = lo
		}
	}

	if m == 0 {
		return nil, 0, nil
	}

	// best[i][j] = max weight planar subset using only chords inside the
	// arc [i, j]. Stored as a flattened upper-triangular table.
	idx := func(i, j int) int { return i*m + j }
	best := make([]float64, m*m)

	for length := 1; length < m; length++ {
		if ctx != nil && ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		for i := 0; i+length < m; i++ {
			j := i + length
			v := best[idx(i, j-1)]
			if ci := endAt[j]; ci >= 0 {
				k := otherEnd[j]
				if k >= i {
					w := chords[ci].W
					if k > i {
						w += best[idx(i, k-1)]
					}
					if k+1 <= j-1 {
						w += best[idx(k+1, j-1)]
					}
					if w > v {
						v = w
					}
				}
			}
			best[idx(i, j)] = v
		}
	}

	// Recover the chosen set by retracing the DP decisions.
	var picked []int
	var walk func(i, j int)
	walk = func(i, j int) {
		for j > i {
			ci := endAt[j]
			if ci >= 0 {
				k := otherEnd[j]
				if k >= i {
					w := chords[ci].W
					if k > i {
						w += best[idx(i, k-1)]
					}
					if k+1 <= j-1 {
						w += best[idx(k+1, j-1)]
					}
					if w == best[idx(i, j)] {
						picked = append(picked, ci)
						if k+1 <= j-1 {
							walk(k+1, j-1)
						}
						j = k - 1
						if j < i {
							return
						}
						continue
					}
				}
			}
			j--
		}
	}
	walk(0, m-1)
	return picked, best[idx(0, m-1)], nil
}

// MaxPlanarSubsetTraced runs MaxPlanarSubset and, when the tracer is
// enabled, emits an "mpsc.select" event carrying the chords considered,
// the chords picked and the selected weight, plus any extra attributes
// the caller tags on (e.g. the wire layer being assigned).
func MaxPlanarSubsetTraced(m int, chords []Chord, tr obs.Tracer, extra ...obs.Attr) ([]int, float64) {
	picked, weight, _ := MaxPlanarSubsetTracedCtx(nil, m, chords, tr, extra...)
	return picked, weight
}

// MaxPlanarSubsetTracedCtx is MaxPlanarSubsetTraced with cancellation; on
// a cancelled DP no event is emitted and ctx's error is returned.
func MaxPlanarSubsetTracedCtx(ctx context.Context, m int, chords []Chord, tr obs.Tracer, extra ...obs.Attr) ([]int, float64, error) {
	picked, weight, err := maxPlanarSubset(ctx, m, chords)
	if err != nil {
		return nil, 0, err
	}
	if tr != nil && tr.Enabled() {
		attrs := append([]obs.Attr{
			obs.Int("considered", len(chords)),
			obs.Int("picked", len(picked)),
			obs.Float("weight", weight),
		}, extra...)
		tr.Event("mpsc.select", attrs...)
		tr.Count("mpsc.chords_considered", int64(len(chords)))
		tr.Count("mpsc.chords_picked", int64(len(picked)))
	}
	return picked, weight, nil
}

// Validate reports an error when the chord set violates the circular-model
// preconditions (used by callers that cannot tolerate the panic).
func Validate(m int, chords []Chord) error {
	seen := make([]bool, m)
	for i, c := range chords {
		lo, hi := order(c)
		if lo < 0 || hi >= m {
			return fmt.Errorf("mpsc: chord %d endpoints (%d,%d) out of range [0,%d)", i, c.A, c.B, m)
		}
		if lo == hi {
			return fmt.Errorf("mpsc: chord %d degenerate at %d", i, lo)
		}
		if seen[lo] || seen[hi] {
			return fmt.Errorf("mpsc: chord %d shares an endpoint", i)
		}
		seen[lo] = true
		seen[hi] = true
	}
	return nil
}
