package geom

import (
	"math/rand"
	"testing"
)

// bruteIntegerPoint scans the bounding box for any contained integer
// point. Only usable for small test regions.
func bruteIntegerPoint(c Oct8) (Point, bool) {
	for x := c.XLo; x <= c.XHi; x++ {
		for y := c.YLo; y <= c.YHi; y++ {
			if c.Contains(Pt(x, y)) {
				return Pt(x, y), true
			}
		}
	}
	return Point{}, false
}

// TestCenterContainedProperty: whenever the region holds at least one
// integer point, Center() must return one of them. The seed's fallback
// truncated the first (possibly half-integer) vertex, which can land
// outside the region.
func TestCenterContainedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	span := func() (int64, int64) {
		a := int64(rng.Intn(41)) - 20
		b := a + int64(rng.Intn(12))
		return a, b
	}
	checked := 0
	for iter := 0; iter < 50000; iter++ {
		var o Oct8
		o.XLo, o.XHi = span()
		o.YLo, o.YHi = span()
		o.SLo, o.SHi = span()
		o.DLo, o.DHi = span()
		// Shift the diagonal bands near the box so intersections are
		// common but not guaranteed.
		o.SLo += o.XLo + o.YLo
		o.SHi += o.XLo + o.YLo
		o.DLo += o.YLo - o.XHi
		o.DHi += o.YLo - o.XHi
		c := o.Canonical()
		if o.Empty() {
			continue
		}
		if _, ok := bruteIntegerPoint(c); !ok {
			continue
		}
		checked++
		p := o.Center()
		if !c.Contains(p) {
			t.Fatalf("iter %d: Center() = %v outside %v", iter, p, c)
		}
	}
	if checked < 1000 {
		t.Fatalf("property exercised only %d times; generator too narrow", checked)
	}
}

// TestCenterDegenerate pins down shapes where the bbox centroid and the
// diagonal clamp both fail and the exact column search must take over.
func TestCenterDegenerate(t *testing.T) {
	cases := []Oct8{
		// A diagonal segment y = x, single integer point per column.
		{XLo: 0, XHi: 6, YLo: 0, YHi: 6, SLo: 0, SHi: 12, DLo: 0, DHi: 0},
		// A one-point region.
		{XLo: 3, XHi: 3, YLo: 4, YHi: 4, SLo: 7, SHi: 7, DLo: 1, DHi: 1},
		// A thin anti-diagonal band.
		{XLo: -5, XHi: 5, YLo: -5, YHi: 5, SLo: 1, SHi: 1, DLo: -10, DHi: 10},
		// Sliver triangle with half-integer vertices: integer points only
		// on x+y = 9.
		{XLo: 0, XHi: 9, YLo: 0, YHi: 9, SLo: 9, SHi: 10, DLo: -9, DHi: 9},
	}
	for i, o := range cases {
		c := o.Canonical()
		if _, ok := bruteIntegerPoint(c); !ok {
			t.Fatalf("case %d: test premise broken, no integer point in %v", i, c)
		}
		if p := o.Center(); !c.Contains(p) {
			t.Errorf("case %d: Center() = %v outside %v", i, p, c)
		}
	}
}
