package router

import (
	"context"
	"testing"

	"rdlroute/internal/design"
)

// TestRipUpLatticeMatchesLayout is the regression test for the bug where
// Route discarded the lattice ripUpReroute handed back: after an accepted
// rip-up candidate the flow continued on a lattice still claiming space
// for ripped-out routes. The lattice the flow ends on must describe
// exactly the occupancy of the accepted layout — the same fingerprint as a
// lattice rebuilt from that layout from scratch.
func TestRipUpLatticeMatchesLayout(t *testing.T) {
	// The known-recoverable single-layer instance from
	// TestRipUpRecoversNets, so the rip-up path actually accepts a
	// candidate. LP stays off: it moves layout geometry without updating
	// the lattice, which is fine for the flow (the lattice is done by
	// then) but would make this comparison vacuous.
	d, err := design.Generate(design.GenSpec{
		Name: "hunt", Chips: 3, IOPads: 43, BumpPads: 0, WireLayers: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.RipUpRounds = 2
	opts.EnableLP = false
	res, la, err := route(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RipUpRouted == 0 {
		t.Fatal("rip-up recovered nothing; the regression is not exercised")
	}
	rebuilt, err := rebuildLattice(d, res.Layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := la.Fingerprint(), rebuilt.Fingerprint(); got != want {
		t.Errorf("flow lattice fingerprint %#x != rebuilt-from-layout %#x: "+
			"Route kept routing on a lattice that does not match the accepted layout", got, want)
	}
}
