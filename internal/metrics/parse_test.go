package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseRoundTrip: everything WriteText produces, ParseText reads
// back with the same values.
func TestParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "total jobs").Add(7)
	reg.CounterVec("outcomes_total", "by outcome", "outcome", "code").With("failed", "500").Add(2)
	reg.Gauge("depth", "queue depth").Set(3)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1.7)
	reg.Gauge("weird", "esc").Set(-2.25)

	fams, err := ParseText(bytes.NewReader(reg.Expose()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f := fams["jobs_total"]; f == nil || f.Kind != KindCounter {
		t.Fatalf("jobs_total family missing or untyped: %+v", f)
	} else if s, ok := f.Sample(nil); !ok || s.Value != 7 {
		t.Errorf("jobs_total = %+v, want 7", s)
	}
	f := fams["outcomes_total"]
	if f == nil {
		t.Fatal("outcomes_total missing")
	}
	s, ok := f.Sample(map[string]string{"outcome": "failed", "code": "500"})
	if !ok || s.Value != 2 {
		t.Errorf("outcomes_total{failed,500} = %+v ok=%v, want 2", s, ok)
	}
	lf := fams["lat_seconds"]
	if lf == nil || lf.Kind != KindHistogram {
		t.Fatalf("lat_seconds family missing or untyped: %+v", lf)
	}
	// _count and _sum attach to the histogram family.
	var count, sum float64
	for _, smp := range lf.Samples {
		switch smp.Name {
		case "lat_seconds_count":
			count = smp.Value
		case "lat_seconds_sum":
			sum = smp.Value
		}
	}
	if count != 2 || sum != 1.8 {
		t.Errorf("lat_seconds count=%v sum=%v, want 2 and 1.8", count, sum)
	}
}

// TestParseLabelEscapes: quoted label values round-trip through the
// escaping rules.
func TestParseLabelEscapes(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("c_total", "", "k").With("a\"b\\c\nd").Inc()
	fams, err := ParseText(bytes.NewReader(reg.Expose()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, ok := fams["c_total"].Sample(nil)
	if !ok || s.Labels["k"] != "a\"b\\c\nd" {
		t.Errorf("label value = %q, want the original escaped string", s.Labels["k"])
	}
}

// TestParseMalformed: each malformed payload must be rejected, not
// silently skipped — the verify.sh smoke gate depends on it.
func TestParseMalformed(t *testing.T) {
	cases := map[string]string{
		"no value":          "jobs_total\n",
		"bad value":         "jobs_total abc\n",
		"bad name":          "1jobs 3\n",
		"unclosed labels":   `jobs_total{a="b" 3` + "\n",
		"unquoted label":    "jobs_total{a=b} 3\n",
		"dangling escape":   `jobs_total{a="b\"` + "\n",
		"unknown type":      "# TYPE jobs_total sparkline\n",
		"type without type": "# TYPE jobs_total\n",
		"duplicate label":   `jobs_total{a="1",a="2"} 3` + "\n",
	}
	for name, in := range cases {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseText accepted %q", name, in)
		}
	}
}

// TestParseTolerated: blank lines, free comments, untyped samples,
// timestamps and ±Inf values are all legal exposition.
func TestParseTolerated(t *testing.T) {
	in := strings.Join([]string{
		"",
		"# just a comment",
		"untyped_thing 4.5",
		"with_ts 3 1712345678901",
		`inf_metric +Inf`,
		`neg_inf -Inf`,
	}, "\n") + "\n"
	fams, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s, ok := fams["with_ts"].Sample(nil); !ok || s.Value != 3 {
		t.Errorf("timestamped sample = %+v, want 3", s)
	}
	if len(fams) != 4 {
		t.Errorf("parsed %d families (%v), want 4", len(fams), Names(fams))
	}
}
