package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRevisedSimple2D(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	y := p.AddVar(0, math.Inf(1))
	p.SetObj(x, -3)
	p.SetObj(y, -5)
	p.AddLE([]Term{{x, 1}}, 4)
	p.AddLE([]Term{{y, 2}}, 12)
	p.AddLE([]Term{{x, 3}, {y, 2}}, 18)
	s := p.SolveRevised()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -36, 1e-6) {
		t.Errorf("obj = %v, want -36", s.Obj)
	}
}

func TestRevisedEqualityAndFree(t *testing.T) {
	p := NewProblem()
	x := p.AddFreeVar()
	y := p.AddVar(2, math.Inf(1))
	p.SetObj(x, 1)
	p.SetObj(y, 1)
	p.AddEQ([]Term{{x, 1}, {y, 1}}, 10)
	p.AddGE([]Term{{x, 1}}, 3)
	s := p.SolveRevised()
	if s.Status != Optimal || !approx(s.Obj, 10, 1e-6) {
		t.Fatalf("status=%v obj=%v x=%v", s.Status, s.Obj, s.X)
	}
}

func TestRevisedInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	p.AddLE([]Term{{x, 1}}, 3)
	p.AddGE([]Term{{x, 1}}, 5)
	if s := p.SolveRevised(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestRevisedUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	p.SetObj(x, -1)
	p.AddGE([]Term{{x, 1}}, 1)
	if s := p.SolveRevised(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestRevisedBoundFlips(t *testing.T) {
	// max x+y with box bounds only: both flip to upper bounds.
	p := NewProblem()
	x := p.AddVar(-3, 7)
	y := p.AddVar(-2, 5)
	p.SetObj(x, -1)
	p.SetObj(y, -1)
	// One loose coupling row so the problem has a constraint matrix.
	p.AddLE([]Term{{x, 1}, {y, 1}}, 100)
	s := p.SolveRevised()
	if s.Status != Optimal || !approx(s.X[x], 7, 1e-6) || !approx(s.X[y], 5, 1e-6) {
		t.Fatalf("status=%v x=%v", s.Status, s.X)
	}
}

func TestRevisedNegativeRHS(t *testing.T) {
	// x ≥ −5 expressed as a GE row with negative rhs; minimize x.
	p := NewProblem()
	x := p.AddFreeVar()
	p.SetObj(x, 1)
	p.AddGE([]Term{{x, 1}}, -5)
	s := p.SolveRevised()
	if s.Status != Optimal || !approx(s.X[x], -5, 1e-6) {
		t.Fatalf("status=%v x=%v", s.Status, s.X)
	}
}

// TestRevisedMatchesDenseRandom cross-checks the two solvers on random
// bounded LPs: statuses agree and optimal objectives match.
func TestRevisedMatchesDenseRandom(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1000))
		nv := 2 + rng.Intn(5)
		p := NewProblem()
		vars := make([]VarID, nv)
		for i := 0; i < nv; i++ {
			lo := float64(rng.Intn(20) - 10)
			hi := lo + float64(1+rng.Intn(20))
			vars[i] = p.AddVar(lo, hi)
			p.SetObj(vars[i], float64(rng.Intn(21)-10))
		}
		for k := rng.Intn(7); k > 0; k-- {
			var terms []Term
			for i := 0; i < nv; i++ {
				if c := float64(rng.Intn(7) - 3); c != 0 {
					terms = append(terms, Term{vars[i], c})
				}
			}
			if len(terms) == 0 {
				continue
			}
			op := Op(rng.Intn(3))
			rhs := float64(rng.Intn(41) - 20)
			p.AddConstraint(terms, op, rhs)
		}
		dense := p.Solve()
		rev := p.SolveRevised()
		if dense.Status == IterLimit || rev.Status == IterLimit {
			continue // numerical giving-up is allowed, not compared
		}
		if dense.Status != rev.Status {
			t.Fatalf("trial %d: dense=%v revised=%v", trial, dense.Status, rev.Status)
		}
		if dense.Status == Optimal {
			if math.Abs(dense.Obj-rev.Obj) > 1e-5*(1+math.Abs(dense.Obj)) {
				t.Fatalf("trial %d: dense obj %v, revised obj %v", trial, dense.Obj, rev.Obj)
			}
			// The revised solution must satisfy every constraint.
			for ci, c := range p.cons {
				lhs := 0.0
				for _, tm := range c.terms {
					lhs += tm.Coef * rev.X[tm.Var]
				}
				switch c.op {
				case LE:
					if lhs > c.rhs+1e-6 {
						t.Fatalf("trial %d: revised violates row %d: %v <= %v", trial, ci, lhs, c.rhs)
					}
				case GE:
					if lhs < c.rhs-1e-6 {
						t.Fatalf("trial %d: revised violates row %d: %v >= %v", trial, ci, lhs, c.rhs)
					}
				default:
					if math.Abs(lhs-c.rhs) > 1e-6 {
						t.Fatalf("trial %d: revised violates row %d: %v = %v", trial, ci, lhs, c.rhs)
					}
				}
			}
			for i, v := range vars {
				if rev.X[v] < p.lo[v]-1e-6 || rev.X[v] > p.hi[v]+1e-6 {
					t.Fatalf("trial %d: revised var %d out of bounds: %v", trial, i, rev.X[v])
				}
			}
		}
	}
}

// TestRevisedFreeVarsRandom cross-checks instances with free variables and
// difference constraints (the layout-LP shape).
func TestRevisedFreeVarsRandom(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 5000))
		nv := 3 + rng.Intn(4)
		p := NewProblem()
		vars := make([]VarID, nv)
		for i := range vars {
			vars[i] = p.AddFreeVar()
		}
		// Anchor the first variable so the problem is bounded.
		p.AddEQ([]Term{{vars[0], 1}}, float64(rng.Intn(20)))
		// Chain difference constraints.
		for i := 1; i < nv; i++ {
			gap := float64(1 + rng.Intn(10))
			p.AddGE([]Term{{vars[i], 1}, {vars[i-1], -1}}, gap)
			p.SetObj(vars[i], 1)
		}
		dense := p.Solve()
		rev := p.SolveRevised()
		if dense.Status != Optimal || rev.Status != Optimal {
			t.Fatalf("trial %d: dense=%v revised=%v", trial, dense.Status, rev.Status)
		}
		if math.Abs(dense.Obj-rev.Obj) > 1e-5*(1+math.Abs(dense.Obj)) {
			t.Fatalf("trial %d: dense obj %v, revised obj %v", trial, dense.Obj, rev.Obj)
		}
	}
}

// mediumLP builds a layout-shaped LP: free variables, difference chains
// and box bounds.
func mediumLP(n int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem()
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = p.AddFreeVar()
	}
	p.AddEQ([]Term{{vars[0], 1}}, 0)
	for i := 1; i < n; i++ {
		p.AddGE([]Term{{vars[i], 1}, {vars[i-1], -1}}, float64(2+rng.Intn(9)))
		p.SetObj(vars[i], 1)
	}
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		// x_a ≤ x_b along the ascending chain: always satisfiable, and it
		// caps how far apart the two may drift.
		p.AddLE([]Term{{vars[b], 1}, {vars[a], -1}}, float64(10*(b-a)+rng.Intn(40)))
	}
	return p
}

func BenchmarkDenseTableau(b *testing.B) {
	p := mediumLP(60, 1)
	for i := 0; i < b.N; i++ {
		if s := p.Solve(); s.Status != Optimal {
			b.Fatal(s.Status)
		}
	}
}

func BenchmarkRevisedSimplex(b *testing.B) {
	p := mediumLP(60, 1)
	for i := 0; i < b.N; i++ {
		if s := p.SolveRevised(); s.Status != Optimal {
			b.Fatal(s.Status)
		}
	}
}

func TestMediumLPSolversAgree(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := mediumLP(40, seed)
		a := p.Solve()
		b := p.SolveRevised()
		if a.Status != Optimal || b.Status != Optimal {
			t.Fatalf("seed %d: %v / %v", seed, a.Status, b.Status)
		}
		if math.Abs(a.Obj-b.Obj) > 1e-5*(1+math.Abs(a.Obj)) {
			t.Fatalf("seed %d: obj %v vs %v", seed, a.Obj, b.Obj)
		}
	}
}
