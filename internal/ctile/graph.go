package ctile

import (
	"math"

	"rdlroute/internal/geom"
	"rdlroute/internal/graphs"
)

// ViaSite is an inserted via column: a position where the router may
// change layers, usable between wire layers [L0, L1] (paper III-C-3).
type ViaSite struct {
	Cell   int
	P      geom.Point
	L0, L1 int
}

// InsertVias performs the paper's via insertion: for every global cell,
// place a via at the center of the largest tile in the cell and project it
// through upper and lower layers until a blockage (a layer where the point
// is not in free space) stops it.
func (m *Model) InsertVias() []ViaSite {
	var sites []ViaSite
	for c := 0; c < m.CellsX*m.CellsY; c++ {
		bestLayer, bestIdx := -1, -1
		bestArea := 0.0
		for l := 0; l < m.D.WireLayers; l++ {
			for i, t := range m.Tiles(l, c) {
				if a := t.Area(); a > bestArea {
					bestArea = a
					bestLayer, bestIdx = l, i
				}
			}
		}
		if bestLayer < 0 {
			continue
		}
		p := m.Tiles(bestLayer, c)[bestIdx].Center()
		l0, l1 := bestLayer, bestLayer
		for l0 > 0 {
			if _, ok := m.TileAt(l0-1, p); !ok {
				break
			}
			l0--
		}
		for l1 < m.D.WireLayers-1 {
			if _, ok := m.TileAt(l1+1, p); !ok {
				break
			}
			l1++
		}
		if l1 > l0 {
			sites = append(sites, ViaSite{Cell: c, P: p, L0: l0, L1: l1})
		}
	}
	return sites
}

// minTouch is the minimum shared-boundary extent for two tiles to count as
// connected (a wire must fit through).
func (m *Model) minTouch() int64 { return m.D.Rules.WireWidth }

// adjacent reports whether two tiles on the same layer touch along a
// usable boundary. Both tiles must be canonical (as stored by Tiles).
func (m *Model) adjacent(a geom.Oct8, abb geom.Rect, b geom.Oct8, bbb geom.Rect) bool {
	if !abb.Expand(1).Intersects(bbb) {
		return false
	}
	in := a.Grow(1).IntersectOct(b).Canonical()
	if in.XLo > in.XHi || in.YLo > in.YHi || in.SLo > in.SHi || in.DLo > in.DHi {
		return false
	}
	return geom.Max64(in.XHi-in.XLo, in.YHi-in.YLo) >= m.minTouch()
}

// arc is one cached same-layer corridor adjacency: the neighbor tile and
// the move cost. Costs are measured between CELL centers, not tile
// centers: the corridor's only downstream consumer is the cell-granular
// region mask, so pricing moves on the fixed cell grid makes the chosen
// cell chain a canonical function of tile connectivity — re-partitioning
// a cell's tiles (an ECO edit shifting a clearance band) cannot nudge
// equal-cost choices through center drift, only a genuine connectivity
// change can alter the corridor.
type arc struct {
	cell, idx int
	tcomp     int // target tile's intra-cell component id
	cost      float64
}

// cellAdj caches the outgoing arcs of every tile in one cell. It is valid
// while no cell in the ring (the cell plus its eight neighbors) has been
// re-partitioned; ringGen records each ring cell's generation at build
// time so validation is a handful of integer compares.
type cellAdj struct {
	ring    []int
	ringGen []uint32
	arcs    [][]arc
	comp    []int // per-tile intra-cell connectivity component id
}

// cellArcs returns the per-tile arc lists for the cell, rebuilding the
// cache when any ring cell was re-partitioned since the last build. This
// turns corridor-graph expansion from O(ring tiles · adjacency test) per
// A* pop into an amortized array walk: tile adjacency is geometric and
// only changes when a committed net re-partitions a nearby cell.
func (m *Model) cellArcs(layer, cell int) [][]arc {
	return m.adjEntry(layer, cell).arcs
}

// adjEntry returns the validated (or rebuilt) adjacency cache entry for the
// cell: arc lists plus the per-tile component labeling.
func (m *Model) adjEntry(layer, cell int) *cellAdj {
	if e := m.adj[layer][cell]; e != nil && m.arcsValid(layer, e) {
		return e
	}
	e := m.buildArcs(layer, cell)
	m.adj[layer][cell] = e
	return e
}

func (m *Model) arcsValid(layer int, e *cellAdj) bool {
	for k, rc := range e.ring {
		m.Tiles(layer, rc) // force a rebuild so the generation is current
		if m.gen[layer][rc] != e.ringGen[k] {
			return false
		}
	}
	return true
}

func (m *Model) buildArcs(layer, cell int) *cellAdj {
	tiles := m.Tiles(layer, cell)
	bbs := m.TileBBs(layer, cell)
	center := m.cellBox(cell).Center()
	e := &cellAdj{ring: m.neighborCells(cell), arcs: make([][]arc, len(tiles))}
	comps := map[int][]int{cell: m.components(layer, cell)}
	e.comp = comps[cell]
	for i := range tiles {
		// Ring order then index order, matching the seed's per-pop emit
		// order so heap tie-breaking (and thus chosen corridors) is
		// unchanged.
		for _, rc := range e.ring {
			rTiles := m.Tiles(layer, rc)
			rBBs := m.TileBBs(layer, rc)
			if _, ok := comps[rc]; !ok {
				comps[rc] = m.components(layer, rc)
			}
			cost := geom.OctDist(center, m.cellBox(rc).Center())
			for i2 := range rTiles {
				if rc == cell && i2 == i {
					continue
				}
				if m.adjacent(tiles[i], bbs[i], rTiles[i2], rBBs[i2]) {
					e.arcs[i] = append(e.arcs[i], arc{cell: rc, idx: i2, tcomp: comps[rc][i2], cost: cost})
				}
			}
		}
	}
	e.ringGen = make([]uint32, len(e.ring))
	for k, rc := range e.ring {
		e.ringGen[k] = m.gen[layer][rc]
	}
	return e
}

// components labels the cell's tiles with intra-cell connectivity
// component ids: two tiles share an id iff they are linked by a chain of
// usable boundaries within this cell alone. Ids are assigned in tile-index
// order (component of the lowest-indexed tile is 0, and so on), reading
// only this cell's tiles.
func (m *Model) components(layer, cell int) []int {
	tiles := m.Tiles(layer, cell)
	bbs := m.TileBBs(layer, cell)
	n := len(tiles)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.adjacent(tiles[i], bbs[i], tiles[j], bbs[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}
	comp := make([]int, n)
	next := 0
	label := make(map[int]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		c, ok := label[r]
		if !ok {
			c = next
			next++
			label[r] = c
		}
		comp[i] = c
	}
	return comp
}

// neighborCells returns cells within one ring of c plus c itself.
func (m *Model) neighborCells(c int) []int {
	cx, cy := c%m.CellsX, c/m.CellsX
	var out []int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx < 0 || ny < 0 || nx >= m.CellsX || ny >= m.CellsY {
				continue
			}
			out = append(out, ny*m.CellsX+nx)
		}
	}
	return out
}

// TileNear returns the tile on the layer closest to p (searching p's cell
// and its ring), for terminals whose exact point sits inside a pad's
// clearance blockage.
func (m *Model) TileNear(layer int, p geom.Point) (TileRef, bool) {
	if r, ok := m.TileAt(layer, p); ok {
		return r, true
	}
	cells := m.cellsTouching(geom.RectOf(p, p))
	if len(cells) == 0 {
		return TileRef{}, false
	}
	best := TileRef{}
	bestD := math.Inf(1)
	found := false
	for _, c := range m.neighborCells(cells[0]) {
		for i, t := range m.Tiles(layer, c) {
			d := t.BBox().DistToPoint(p)
			if d < bestD {
				bestD = d
				best = TileRef{layer, c, i}
				found = true
			}
		}
	}
	return best, found
}

// FindCorridor runs A* on the cell-adjacency graph the octagonal tile
// model induces: states are (layer, cell) pairs, two cells on a layer are
// connected when any tile of one shares a usable boundary with any tile of
// the other, and layers change only at cells holding an inserted via site
// spanning both. It returns the corridor as a (layer, cell) chain (TileRefs
// with Idx 0 — the downstream region mask is cell-granular and never
// addresses individual tiles).
//
// Searching cells rather than tiles is what makes corridors stable under
// ECO edits: state ids are fixed functions of the grid, move costs are
// cell-center distances, and the expansion never reads tile shapes or
// indices — so re-partitioning a cell's tiles (a committed band shifting
// one pitch) cannot perturb equal-cost tie-breaking anywhere. Only a real
// connectivity change — a passage opening or closing — can alter the
// corridor, which is exactly the global-routing signal the paper's tile
// graph exists to provide.
func (m *Model) FindCorridor(from geom.Point, fromLayer int, to geom.Point, toLayer int, sites []ViaSite, viaCost float64) ([]TileRef, bool) {
	path, ok, _ := m.findCorridor(from, fromLayer, to, toLayer, sites, viaCost, false)
	return path, ok
}

// CorridorProof is the footprint evidence of one corridor search: the
// content hash of every (layer, cell) and via-site list the search read.
// While ProofValid holds, a live FindCorridor with the same arguments
// would re-derive the identical result bit for bit.
type CorridorProof struct {
	e *corEntry
}

// FindCorridorProof is FindCorridor plus a CorridorProof for speculative
// callers. The model must have a journal attached (AttachMemo or
// AttachJournal); without one the proof is nil.
func (m *Model) FindCorridorProof(from geom.Point, fromLayer int, to geom.Point, toLayer int, sites []ViaSite, viaCost float64) ([]TileRef, bool, *CorridorProof) {
	return m.findCorridor(from, fromLayer, to, toLayer, sites, viaCost, true)
}

// ProofValid reports whether the proof's entire footprint still matches
// the journal — i.e. no blocker committed since the search ran touched
// any cell content or via-site list it read.
func (m *Model) ProofValid(p *CorridorProof, sites []ViaSite) bool {
	if m.cj == nil || p == nil || p.e == nil {
		return false
	}
	return p.e.valid(m.cj, m.cj.ensureSiteHashes(m, sites))
}

func (m *Model) findCorridor(from geom.Point, fromLayer int, to geom.Point, toLayer int, sites []ViaSite, viaCost float64, wantProof bool) ([]TileRef, bool, *CorridorProof) {
	// Footprints are tracked for the memo and for proofs alike; a journal
	// attached without a memo tracks only when a proof was asked for.
	track := m.cj != nil && (m.cj.memo != nil || wantProof)
	// Memo consult: a recorded corridor whose cell-content and via-site
	// footprint still matches is re-derived bit for bit — serve it and skip
	// the snapshot and the tile-graph A* entirely. The served entry is its
	// own proof: lookup just revalidated its footprint against the journal.
	var ckey corKey
	var siteHash []uint64
	if track {
		siteHash = m.cj.ensureSiteHashes(m, sites)
	}
	if m.cj != nil && m.cj.memo != nil {
		ckey = m.corKeyFor(from, fromLayer, to, toLayer, viaCost)
		if e, hit := m.cj.memo.lookup(ckey, m.cj, siteHash); hit {
			var proof *CorridorProof
			if wantProof {
				proof = &CorridorProof{e: e}
			}
			if !e.ok {
				return nil, false, proof
			}
			out := make([]TileRef, len(e.path))
			copy(out, e.path)
			return out, true, proof
		}
	}
	if track {
		m.cj.fpReset()
		// TileNear reads the tiles of the ring around each endpoint's cell.
		for _, c := range m.cellsTouching(geom.RectOf(from, from)) {
			m.fpMarkRing(fromLayer, c)
		}
		for _, c := range m.cellsTouching(geom.RectOf(to, to)) {
			m.fpMarkRing(toLayer, c)
		}
	}
	corStore := func(ok bool, path []TileRef) *CorridorProof {
		if !track {
			return nil
		}
		e := m.cj.snapshotEntry(siteHash, ok, path)
		if m.cj.memo != nil {
			m.cj.memo.store(ckey, e)
		}
		if !wantProof {
			return nil
		}
		return &CorridorProof{e: e}
	}
	startRef, ok1 := m.TileNear(fromLayer, from)
	goalRef, ok2 := m.TileNear(toLayer, to)
	if !ok1 || !ok2 {
		return nil, false, corStore(false, nil)
	}
	if track {
		// Endpoint component lookups read the rings of the resolved cells
		// (which TileNear may have picked a ring away from the query point).
		m.fpMarkRing(startRef.Layer, startRef.Cell)
		m.fpMarkRing(goalRef.Layer, goalRef.Cell)
	}
	ncells := m.CellsX * m.CellsY
	siteByCell := make(map[int][]ViaSite)
	for _, v := range sites {
		siteByCell[v.Cell] = append(siteByCell[v.Cell], v)
	}
	// States are (layer, cell, component): the component factor keeps the
	// graph honest about cells whose free space is internally split — a
	// corridor may pass through a walled cell only on the side its entry
	// tile can actually reach. Component ids above the cap share the last
	// slot; the resulting (rare, optimistic) merges can only cost a masked
	// search a fallback, never a wrong route.
	const maxComp = 8
	clampC := func(c int) int {
		if c >= maxComp {
			return maxComp - 1
		}
		return c
	}
	stateOf := func(l, c, comp int) int { return (l*ncells+c)*maxComp + clampC(comp) }
	compAt := func(l int, ref TileRef) int {
		e := m.adjEntry(l, ref.Cell)
		if ref.Idx < len(e.comp) {
			return e.comp[ref.Idx]
		}
		return 0
	}
	startID := stateOf(startRef.Layer, startRef.Cell, compAt(startRef.Layer, startRef))
	goalID := stateOf(goalRef.Layer, goalRef.Cell, compAt(goalRef.Layer, goalRef))

	expand := func(u int, emit func(int, float64)) {
		lc := u / maxComp
		l, c, comp := lc/ncells, lc%ncells, u%maxComp
		if track {
			// Footprint: expanding here reads the ring's tiles (through the
			// arc cache) on this layer and this cell's site list.
			m.fpMarkRing(l, c)
			m.cj.spMark(c)
		}
		// Cross-cell connectivity from the generation-validated arc cache:
		// (rc, rcomp) is reachable when any tile of this component has an
		// arc into that component of rc. Emit in ring order for
		// deterministic tie-breaking.
		ring := m.neighborCells(c)
		var reach [9 * maxComp]bool
		e := m.adjEntry(l, c)
		for i := range e.arcs {
			if i < len(e.comp) && clampC(e.comp[i]) != comp {
				continue
			}
			for _, a := range e.arcs[i] {
				if a.cell == c {
					continue
				}
				for k, rc := range ring {
					if rc == a.cell {
						reach[k*maxComp+clampC(a.tcomp)] = true
						break
					}
				}
			}
		}
		center := m.cellBox(c).Center()
		for k, rc := range ring {
			if rc == c {
				continue
			}
			cost := geom.OctDist(center, m.cellBox(rc).Center())
			for rcomp := 0; rcomp < maxComp; rcomp++ {
				if reach[k*maxComp+rcomp] {
					emit((l*ncells+rc)*maxComp+rcomp, cost)
				}
			}
		}
		// Layer moves at this cell's via sites: the site point must sit in
		// free space of this component and of the target layer.
		for _, v := range siteByCell[c] {
			ref, ok := m.TileAt(l, v.P)
			if !ok || ref.Cell != c || clampC(compAt(l, ref)) != comp {
				continue
			}
			for _, nl := range []int{l - 1, l + 1} {
				if nl < v.L0 || nl > v.L1 || nl < 0 || nl >= m.D.WireLayers {
					continue
				}
				if track {
					m.fpMarkRing(nl, c)
				}
				nref, ok := m.TileAt(nl, v.P)
				if !ok || nref.Cell != c {
					continue
				}
				emit(stateOf(nl, c, compAt(nl, nref)), viaCost)
			}
		}
	}
	h := func(u int) float64 {
		lc := u / maxComp
		l, c := lc/ncells, lc%ncells
		// Cell-center based, matching the arc costs: the estimate must not
		// read tile geometry or it would reintroduce the center-drift
		// sensitivity the cell graph removes.
		d := geom.OctDist(m.cellBox(c).Center(), to)
		dl := l - toLayer
		if dl < 0 {
			dl = -dl
		}
		return d*0.5 + float64(dl)*viaCost*0.5
	}
	path, _, ok := graphs.AStar(m.D.WireLayers*ncells*maxComp,
		[]graphs.StartState{{State: startID}},
		func(u int) bool { return u == goalID },
		expand, h)
	if !ok {
		return nil, false, corStore(false, nil)
	}
	out := make([]TileRef, 0, len(path))
	for i, id := range path {
		l, c := id/maxComp/ncells, id/maxComp%ncells
		// Collapse component moves within one (layer, cell): the mask is
		// cell-granular, so duplicates carry no information.
		if i > 0 && len(out) > 0 {
			if last := out[len(out)-1]; last.Layer == l && last.Cell == c {
				continue
			}
		}
		out = append(out, TileRef{Layer: l, Cell: c})
	}
	return out, true, corStore(true, out)
}
