package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentEmit hammers one tracer stack — a Collector and a JSONL
// sink behind Multi, the exact shape the server and the parallel flow
// share — from many goroutines emitting every signal kind at once, then
// checks nothing was lost. The routing flow's parallel stages emit
// events and counters from pool workers into a single tracer, so every
// sink must be safe for concurrent use; run under -race this test is
// the package's concurrency gate.
func TestConcurrentEmit(t *testing.T) {
	const (
		goroutines = 16
		perG       = 200
	)
	coll := NewCollector()
	var buf lockedBuffer
	jl := NewJSONL(&buf)
	tr := Multi(coll, jl)

	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.Span("stage:emit", Int("g", g))
				tr.Event("net.route", Int("g", g), Int("i", i))
				tr.Count("emit.count", 1)
				tr.Observe("emit.value", float64(i))
				sp.End(Int("i", i))
			}
		}(g)
	}
	wg.Wait()
	jl.Close()

	if got := coll.Counter("emit.count"); got != goroutines*perG {
		t.Errorf("counter emit.count = %d, want %d", got, goroutines*perG)
	}
	if got := len(coll.Events("net.route")); got != goroutines*perG {
		t.Errorf("collected %d net.route events, want %d", got, goroutines*perG)
	}
	if got := len(coll.Spans("stage:emit")); got != goroutines*perG {
		t.Errorf("collected %d stage:emit spans, want %d", got, goroutines*perG)
	}
	snap := coll.Snapshot()
	if snap == nil {
		t.Fatal("nil snapshot after concurrent emit")
	}
	recs, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("JSONL stream corrupted by concurrent emit: %v", err)
	}
	// events + counts + observes + span-ends, all per (goroutine, i).
	if want := 4 * goroutines * perG; len(recs) != want {
		t.Errorf("JSONL carries %d records, want %d", len(recs), want)
	}
}

// TestConcurrentSnapshot reads snapshots while writers are still
// emitting: the Collector must never hand out a view a concurrent
// writer is mutating.
func TestConcurrentSnapshot(t *testing.T) {
	coll := NewCollector()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			coll.Event("ev", Int("i", i))
			coll.Count("c", 1)
			coll.Observe("o", float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			snap := coll.Snapshot()
			var b bytes.Buffer
			if err := snap.WriteText(&b); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 100; i++ {
		_ = coll.Counter("c")
		_ = coll.Events("ev")
	}
	close(stop)
	wg.Wait()
}

// lockedBuffer is the minimal concurrency-safe io.Writer; JSONL holds
// its own lock around Encode, so this only guards the test's final read
// against the last buffered write.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
