// Package geom provides the X-architecture computational geometry used by
// the RDL router: integer points in database units, octilinear segments,
// rectangles, the octagonal tile model, and convex-polygon distance tests.
//
// All primary coordinates are int64 database units (DBU) so that
// intersection, containment and spacing predicates on horizontal, vertical
// and 45/135-degree geometry are exact. Lengths and areas are float64.
package geom

import (
	"fmt"
	"math"
)

// Sqrt2 is √2, the length factor of a unit diagonal step.
const Sqrt2 = 1.41421356237309504880168872420969808

// Point is a point in integer database units.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p+q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p−q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k int64) Point { return Point{p.X * k, p.Y * k} }

// Eq reports whether p and q coincide.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Cross returns the z component of (q−p) × (r−p). Positive means r lies to
// the left of the directed line p→q.
func Cross(p, q, r Point) int64 {
	return (q.X-p.X)*(r.Y-p.Y) - (q.Y-p.Y)*(r.X-p.X)
}

// Dot returns (q−p) · (r−p).
func Dot(p, q, r Point) int64 {
	return (q.X-p.X)*(r.X-p.X) + (q.Y-p.Y)*(r.Y-p.Y)
}

// Abs64 returns |v| for int64 v.
func Abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Min64 returns the smaller of a and b.
func Min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max64 returns the larger of a and b.
func Max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Euclid returns the Euclidean distance between p and q.
func Euclid(p, q Point) float64 {
	dx := float64(p.X - q.X)
	dy := float64(p.Y - q.Y)
	return math.Hypot(dx, dy)
}

// Manhattan returns |dx|+|dy|.
func Manhattan(p, q Point) int64 {
	return Abs64(p.X-q.X) + Abs64(p.Y-q.Y)
}

// OctDist returns the length of a shortest X-architecture (octilinear) path
// between p and q: max(|dx|,|dy|) + (√2−1)·min(|dx|,|dy|).
func OctDist(p, q Point) float64 {
	dx := Abs64(p.X - q.X)
	dy := Abs64(p.Y - q.Y)
	lo, hi := dx, dy
	if lo > hi {
		lo, hi = hi, lo
	}
	return float64(hi) + (Sqrt2-1)*float64(lo)
}

// PointF is a float64 point, used for derived quantities (tile vertices,
// centroids, polygon distance) where exactness is not required.
type PointF struct {
	X, Y float64
}

// PtF is shorthand for PointF{x, y}.
func PtF(x, y float64) PointF { return PointF{x, y} }

// F converts an integer point to a float point.
func (p Point) F() PointF { return PointF{float64(p.X), float64(p.Y)} }

// Add returns p+q componentwise.
func (p PointF) Add(q PointF) PointF { return PointF{p.X + q.X, p.Y + q.Y} }

// Sub returns p−q componentwise.
func (p PointF) Sub(q PointF) PointF { return PointF{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p PointF) Scale(k float64) PointF { return PointF{p.X * k, p.Y * k} }

// EuclidF returns the Euclidean distance between float points p and q.
func EuclidF(p, q PointF) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }
