package serve

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/obs"
	"rdlroute/internal/router"
)

// FlightRecord is the post-mortem record of one terminal job: what ran,
// how it ended, and the obs snapshot of what the flow actually did —
// enough to answer "why was job-417 slow" hours after its trace buffer
// is gone. Records are value types; the ring holds the last N.
type FlightRecord struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Outcome string   `json:"outcome"`
	Error   string   `json:"error,omitempty"`

	Design string `json:"design,omitempty"`
	Nets   int    `json:"nets,omitempty"`
	// OptionsFP fingerprints the job's canonical rdl-options/v1 encoding,
	// so "same design, different result" investigations can split by
	// configuration at a glance.
	OptionsFP string `json:"options_fingerprint,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// Cache is the result-cache outcome of the run: "hit" (answered from
	// the content-addressed cache), "miss" (routed, then inserted), or
	// empty (caching disabled, or the job never reached a worker).
	Cache string `json:"cache,omitempty"`

	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished"`
	QueueMS  float64   `json:"queue_ms"`
	RunMS    float64   `json:"run_ms"`

	Routability float64 `json:"routability,omitempty"`
	Wirelength  float64 `json:"wirelength,omitempty"`
	RoutedNets  int     `json:"routed_nets,omitempty"`
	TotalNets   int     `json:"total_nets,omitempty"`

	// Obs is this job's own aggregated snapshot (per-stage ms, A* effort,
	// counter totals) from its bounded per-job collector.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// flightRecorder is a fixed-capacity ring of the most recent terminal
// jobs. Always on and allocation-bounded: capacity is fixed at creation
// and old records are overwritten in place.
type flightRecorder struct {
	mu    sync.Mutex
	ring  []FlightRecord
	next  int   // ring index the next record lands in
	total int64 // records ever written
}

func newFlightRecorder(capacity int) *flightRecorder {
	return &flightRecorder{ring: make([]FlightRecord, 0, capacity)}
}

// record appends rec, overwriting the oldest entry once full.
func (f *flightRecorder) record(rec FlightRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, rec)
		f.next = len(f.ring) % cap(f.ring)
		return
	}
	if cap(f.ring) == 0 {
		return
	}
	f.ring[f.next] = rec
	f.next = (f.next + 1) % cap(f.ring)
}

// list returns the retained records newest-first plus the total ever
// recorded.
func (f *flightRecorder) list() ([]FlightRecord, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, len(f.ring))
	for i := 0; i < len(f.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (f.next - 1 - i + 2*len(f.ring)) % len(f.ring)
		out = append(out, f.ring[idx])
	}
	return out, f.total
}

// get returns the retained record with the given job ID.
func (f *flightRecorder) get(id string) (FlightRecord, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.ring {
		if f.ring[i].ID == id {
			return f.ring[i], true
		}
	}
	return FlightRecord{}, false
}

// optionsFingerprint hashes the job's canonical rdl-options/v1 bytes.
// The codec encoding is byte-stable, so equal fingerprints mean equal
// effective configurations.
func optionsFingerprint(opts router.Options) string {
	var buf bytes.Buffer
	if err := codec.EncodeOptions(&buf, opts); err != nil {
		return ""
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}
