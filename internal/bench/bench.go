// Package bench regenerates every table and figure of the paper's
// evaluation section: Table I (ours vs Lin-ext on dense1..dense5), the
// Figure 2 layer-count experiment (flexible vias reduce RDL count), the
// Figure 5 weighted-MPSC experiment (congestion-aware weights close the
// layer-assignment/detailed-routing gap), the Figure 7 LP wirelength
// experiment, the LP convergence claim of Section III-E-4, and ablations
// for each design choice. Both cmd/rdlbench and the repository's
// bench_test.go drive these entry points.
package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"rdlroute/internal/baseline"
	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/geom"
	"rdlroute/internal/mpsc"
	"rdlroute/internal/obs"
	"rdlroute/internal/par"
	"rdlroute/internal/router"
)

// Tracer, when non-nil, is attached to every routing run the Run* entry
// points perform (both flows). cmd/rdlbench sets it from its -trace and
// -cpuprofile flags; tests may point it at an obs.Collector. With
// Parallel <= 1 runs execute sequentially, so one shared sink sees a
// well-ordered stream; above that, concurrent runs interleave their
// events (per-run Collectors attached by instrumentedOptions stay
// coherent either way).
var Tracer obs.Tracer

// Timeout, when positive, caps each routing run of the Table-I sweep (one
// deadline per flow per circuit). A circuit whose run exceeds it is
// recorded with Status "timeout" instead of aborting the whole sweep.
// cmd/rdlbench sets it from its -timeout flag.
var Timeout time.Duration

// Workers is the per-run worker-pool bound handed to both flows'
// Options.Workers (0 = GOMAXPROCS, 1 = sequential). It changes run time
// only — routed results are byte-identical at every value.
var Workers int

// Speculative turns on the speculative stage-4 scheduler
// (Options.Speculative) for our flow's runs. Results stay byte-identical
// — the scaling sweep measures that per cell rather than assuming it.
var Speculative bool

// Parallel fans whole circuits out across the batch: RunTable1,
// RunMetrics and RunAblations route up to this many circuits
// concurrently (0 = GOMAXPROCS). The default 1 keeps the batch
// sequential, which keeps a shared Tracer stream well-ordered and run
// timings honest. Rows are index-addressed and merged in input order, so
// reports are identical at every value.
var Parallel = 1

// timeoutCtx returns the per-run context under the package Timeout.
func timeoutCtx() (context.Context, context.CancelFunc) {
	if Timeout > 0 {
		return context.WithTimeout(context.Background(), Timeout)
	}
	return context.WithCancel(context.Background())
}

// routerOptions is DefaultOptions plus the package tracer and workers.
func routerOptions() router.Options {
	o := router.DefaultOptions()
	o.Tracer = Tracer
	o.Workers = Workers
	o.Speculative = Speculative
	return o
}

// instrumentedOptions is routerOptions plus a fresh per-run Collector (in
// front of the package tracer), so Result.Obs carries this run's stage
// timings and A* effort rather than a cumulative stream.
func instrumentedOptions() router.Options {
	o := router.DefaultOptions()
	o.Tracer = obs.Multi(obs.NewCollector(), Tracer)
	o.Workers = Workers
	o.Speculative = Speculative
	return o
}

// baselineOptions is the baseline's DefaultOptions plus the package
// tracer and workers.
func baselineOptions() baseline.Options {
	o := baseline.DefaultOptions()
	o.Tracer = Tracer
	o.Workers = Workers
	return o
}

// Table1Row is one circuit's comparison between Lin-ext and our flow.
type Table1Row struct {
	Stats design.Stats
	// Status is "ok", or "timeout" when either flow exceeded the package
	// Timeout (the timed-out flow's result pointer is nil).
	Status string
	Ours   *router.Result
	Lin    *baseline.Result
	// DRC violation counts (0 expected for both flows).
	OursDRC, LinDRC int
}

// RunTable1 generates and routes the named circuits with both flows. Up
// to Parallel circuits run concurrently; rows come back in input order.
func RunTable1(names []string) ([]Table1Row, error) {
	return par.Map(context.Background(), Parallel, len(names), func(i int) (Table1Row, error) {
		name := names[i]
		spec, err := design.DenseSpec(name)
		if err != nil {
			return Table1Row{}, err
		}
		d, err := design.Generate(spec)
		if err != nil {
			return Table1Row{}, err
		}
		row := Table1Row{Stats: d.Stats(), Status: "ok"}
		ctx, cancel := timeoutCtx()
		ours, err := router.RouteContext(ctx, d, instrumentedOptions())
		cancel()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			row.Status = "timeout"
		case err != nil:
			return Table1Row{}, err
		default:
			row.Ours = ours
			row.OursDRC = len(drc.Check(ours.Layout))
		}
		// The two flows mutate independent lattices; regenerate for a
		// clean slate (pads/nets identical by determinism).
		d2, err := design.Generate(spec)
		if err != nil {
			return Table1Row{}, err
		}
		ctx, cancel = timeoutCtx()
		lin, err := baseline.RouteContext(ctx, d2, baselineOptions())
		cancel()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			row.Status = "timeout"
		case err != nil:
			return Table1Row{}, err
		default:
			row.Lin = lin
			row.LinDRC = len(drc.Check(lin.Layout))
		}
		return row, nil
	})
}

// FormatTable1 renders rows in the paper's Table I shape.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s %5s %5s %5s %5s %5s | %9s %9s | %10s %10s | %9s %9s\n",
		"Circuit", "#Chips", "|Q|", "|G|", "|N|", "|Lw|", "|Lv|",
		"Lin-ext R", "Ours R", "Lin-ext WL", "Ours WL", "Lin-ext t", "Ours t")
	var rLin, rOurs, tRatio float64
	var full int
	for _, r := range rows {
		s := r.Stats
		if r.Ours == nil || r.Lin == nil {
			fmt.Fprintf(&b, "%-8s %6d %5d %5d %5d %5d %5d | %s\n",
				s.Name, s.Chips, s.Q, s.G, s.N, s.WireLayers, s.ViaLayers,
				"timeout")
			continue
		}
		fmt.Fprintf(&b, "%-8s %6d %5d %5d %5d %5d %5d | %8.1f%% %8.1f%% | %10.0f %10.0f | %8.2fs %8.2fs\n",
			s.Name, s.Chips, s.Q, s.G, s.N, s.WireLayers, s.ViaLayers,
			r.Lin.Routability, r.Ours.Routability,
			r.Lin.Wirelength, r.Ours.Wirelength,
			r.Lin.Runtime.Seconds(), r.Ours.Runtime.Seconds())
		rLin += r.Lin.Routability / 100
		rOurs += r.Ours.Routability / 100
		if r.Ours.Runtime > 0 {
			tRatio += r.Lin.Runtime.Seconds() / r.Ours.Runtime.Seconds()
		}
		full++
	}
	n := float64(full)
	if n > 0 {
		fmt.Fprintf(&b, "%-8s %45s | %9.3f %9.3f | %21s | %9.3f %9.3f\n",
			"Comp.", "", rLin/n/(rOurs/n), 1.0, "", tRatio/n, 1.0)
		fmt.Fprintf(&b, "(paper:  Lin-ext routability ratio 0.794, runtime ratio 0.297)\n")
	}
	return b.String()
}

// Fig2Result reports the minimum RDL (wire-layer) count each flow needs to
// fully route the entangled three-net pattern of Figure 2.
type Fig2Result struct {
	OursMinLayers int `json:"ours_min_layers"`
	LinMinLayers  int `json:"lin_min_layers"`
}

// RunFig2 builds the Figure 2 pattern — three pairwise-crossing nets
// between two chips in a closed channel (no go-around: the chips span the
// package height) — and finds each flow's minimum layer count.
func RunFig2() (Fig2Result, error) {
	res := Fig2Result{OursMinLayers: -1, LinMinLayers: -1}
	for layers := 1; layers <= 4; layers++ {
		d := fig2Design(layers)
		r, err := router.Route(d, routerOptions())
		if err != nil {
			return res, err
		}
		if r.Routability == 100 && len(drc.Check(r.Layout)) == 0 {
			res.OursMinLayers = layers
			break
		}
	}
	for layers := 1; layers <= 5; layers++ {
		d := fig2Design(layers)
		r, err := baseline.Route(d, baselineOptions())
		if err != nil {
			return res, err
		}
		if r.Routability == 100 && len(drc.Check(r.Layout)) == 0 {
			res.LinMinLayers = layers
			break
		}
	}
	return res, nil
}

// fig2Design builds the entangled pattern as a closed routing channel:
// chipless pads hug the left and right package edges (the gap between a
// pad and the boundary is below the wire clearance, so nothing routes
// around them), and net i connects the i-th left pad to the (2−i)-th
// right pad — all three nets pairwise cross topologically.
func fig2Design(layers int) *design.Design {
	d := &design.Design{
		Name:       fmt.Sprintf("fig2-%dL", layers),
		Outline:    geom.RectWH(0, 0, 504, 480),
		WireLayers: layers,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
	}
	id := 0
	pad := func(x, y int64) int {
		d.IOPads = append(d.IOPads, design.IOPad{ID: id, Chip: -1, Center: geom.Pt(x, y), HalfW: 8})
		id++
		return id - 1
	}
	var left, right []int
	for i := 0; i < 3; i++ {
		y := int64(120 + 120*i)
		left = append(left, pad(12, y))
		right = append(right, pad(492, y))
	}
	for i := 0; i < 3; i++ {
		d.Nets = append(d.Nets, design.Net{
			ID: i,
			P1: design.PadRef{Kind: design.IOKind, Index: left[i]},
			P2: design.PadRef{Kind: design.IOKind, Index: right[2-i]},
		})
	}
	return d
}

// Fig5Result compares unweighted and weighted (Eq. 2) MPSC layer
// assignment on the paper's Figure 5 narrow-channel scenario.
type Fig5Result struct {
	// UnweightedAssigned counts nets the unweighted MPSC assigns to the
	// layer; UnweightedSurvive counts those surviving capacity-1 routing.
	UnweightedAssigned int `json:"unweighted_assigned"`
	UnweightedSurvive  int `json:"unweighted_survive"`
	WeightedAssigned   int `json:"weighted_assigned"`
	WeightedSurvive    int `json:"weighted_survive"`
}

// RunFig5 reproduces the Figure 5 example at the algorithm level: five net
// candidates on the circular model (circle order D A B C E F J I H G);
// the three long chords share a fan-out channel of capacity 1 while the
// two short chords are local. Chord weights follow Eq. (2) with the
// channel's overflow rate (demand 3 over capacity 1) and the paper's
// α, β, γ, δ.
func RunFig5() Fig5Result {
	const (
		dD, dA, dB, dC, dE, dF, dJ, dI, dH, dG = 0, 1, 2, 3, 4, 5, 6, 7, 8, 9
	)
	long := []mpsc.Chord{
		{A: dA, B: dH, Tag: 0},
		{A: dB, B: dI, Tag: 1},
		{A: dC, B: dJ, Tag: 2},
	}
	short := []mpsc.Chord{
		{A: dD, B: dE, Tag: 3},
		{A: dF, B: dG, Tag: 4},
	}
	// survival under a capacity-1 shared channel: at most one long net
	// routes; short nets always route.
	survive := func(picked []mpsc.Chord) int {
		longs, shorts := 0, 0
		for _, c := range picked {
			if c.Tag <= 2 {
				longs++
			} else {
				shorts++
			}
		}
		if longs > 1 {
			longs = 1
		}
		return longs + shorts
	}

	var res Fig5Result

	unweighted := append([]mpsc.Chord{}, long...)
	unweighted = append(unweighted, short...)
	for i := range unweighted {
		unweighted[i].W = 1
	}
	picked, _ := mpsc.MaxPlanarSubset(10, unweighted)
	res.UnweightedAssigned = len(picked)
	var sel []mpsc.Chord
	for _, i := range picked {
		sel = append(sel, unweighted[i])
	}
	res.UnweightedSurvive = survive(sel)

	// Eq. (2) weights: long nets pass the capacity-1 channel with demand 3
	// (overflow rate 3), detour rate ≈ 1.2; short nets see no overflow,
	// detour rate ≈ 1.0.
	w := func(rd, fmax, favg float64) float64 {
		const alpha, beta, gamma, delta = 0.1, 1, 1, 2
		den := alpha*rd + beta*math.Log(delta+fmax)/math.Log(delta) + gamma*math.Log(delta+favg)/math.Log(delta)
		return 1 / den
	}
	weighted := append([]mpsc.Chord{}, long...)
	weighted = append(weighted, short...)
	for i := range weighted {
		if weighted[i].Tag <= 2 {
			weighted[i].W = w(1.2, 3, 3)
		} else {
			weighted[i].W = w(1.0, 0, 0)
		}
	}
	picked, _ = mpsc.MaxPlanarSubset(10, weighted)
	res.WeightedAssigned = len(picked)
	sel = sel[:0]
	for _, i := range picked {
		sel = append(sel, weighted[i])
	}
	res.WeightedSurvive = survive(sel)
	return res
}

// Fig7Row reports the LP optimization's wirelength effect on one circuit.
type Fig7Row struct {
	Name       string  `json:"circuit"`
	Before     float64 `json:"wl_before"` // wirelength entering stage 5
	After      float64 `json:"wl_after"`  // wirelength after LP optimization
	Reduction  float64 `json:"reduction_pct"`
	Iterations int     `json:"iterations"`
}

// RunFig7 delegates to RunMetrics (one routing run per circuit shared by
// all metric experiments).
func RunFig7(names []string) ([]Fig7Row, error) {
	ms, err := RunMetrics(names)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig7Row, len(ms))
	for i, m := range ms {
		rows[i] = m.Fig7
	}
	return rows, nil
}

// AblationRow is one configuration's outcome on one circuit.
type AblationRow struct {
	Config      string  `json:"config"`
	Name        string  `json:"circuit"`
	Routability float64 `json:"routability"`
	Wirelength  float64 `json:"wirelength"`
	Concurrent  int     `json:"concurrent_routed"`
	DRC         int     `json:"drc_violations"`
	Seconds     float64 `json:"seconds"`
}

// Ablations returns the named toggles applied to DefaultOptions.
func Ablations() []struct {
	Label string
	Mut   func(*router.Options)
} {
	return []struct {
		Label string
		Mut   func(*router.Options)
	}{
		{"full", func(o *router.Options) {}},
		{"unweighted-mpsc", func(o *router.Options) { o.UseWeights = false }},
		{"no-lp", func(o *router.Options) { o.EnableLP = false }},
		{"no-via-insertion", func(o *router.Options) { o.EnableVias = false }},
		{"no-concurrent", func(o *router.Options) { o.EnableStage2 = false }},
	}
}

// RunAblations routes the named circuits under every ablation. The
// (circuit, ablation) jobs flatten into one batch so up to Parallel of
// them run concurrently; rows come back grouped by circuit, then
// ablation, exactly as the sequential nesting produced them.
func RunAblations(names []string) ([]AblationRow, error) {
	abs := Ablations()
	return par.Map(context.Background(), Parallel, len(names)*len(abs), func(k int) (AblationRow, error) {
		name := names[k/len(abs)]
		ab := abs[k%len(abs)]
		spec, err := design.DenseSpec(name)
		if err != nil {
			return AblationRow{}, err
		}
		d, err := design.Generate(spec)
		if err != nil {
			return AblationRow{}, err
		}
		opts := routerOptions()
		ab.Mut(&opts)
		r, err := router.Route(d, opts)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Config:      ab.Label,
			Name:        name,
			Routability: r.Routability,
			Wirelength:  r.Wirelength,
			Concurrent:  r.ConcurrentRouted,
			DRC:         len(drc.Check(r.Layout)),
			Seconds:     r.Runtime.Seconds(),
		}, nil
	})
}

// QualityRow reports wirelength quality (routed length vs the octilinear
// pad-to-pad lower bound) per circuit.
type QualityRow struct {
	Name       string  `json:"circuit"`
	LowerBound float64 `json:"lower_bound"`
	Actual     float64 `json:"actual"`
	MeanDetour float64 `json:"mean_detour"`
	P95        float64 `json:"p95_detour"`
	MaxDetour  float64 `json:"max_detour"`
}

// RunQuality delegates to RunMetrics (one routing run per circuit shared by
// all metric experiments).
func RunQuality(names []string) ([]QualityRow, error) {
	ms, err := RunMetrics(names)
	if err != nil {
		return nil, err
	}
	rows := make([]QualityRow, len(ms))
	for i, m := range ms {
		rows[i] = m.Quality
	}
	return rows, nil
}

// GraphSizeRow compares the octagonal-tile routing graph's size against an
// equivalent uniform-lattice graph on one circuit — the resource-modeling
// argument behind the paper's tile model.
type GraphSizeRow struct {
	Name      string  `json:"circuit"`
	TileNodes int     `json:"tile_nodes"` // octagonal tiles across all layers, after routing
	GridNodes int     `json:"grid_nodes"` // uniform detailed-routing lattice nodes across layers
	Ratio     float64 `json:"ratio"`
}

// RunGraphSize delegates to RunMetrics (one routing run per circuit shared by
// all metric experiments).
func RunGraphSize(names []string) ([]GraphSizeRow, error) {
	ms, err := RunMetrics(names)
	if err != nil {
		return nil, err
	}
	rows := make([]GraphSizeRow, len(ms))
	for i, m := range ms {
		rows[i] = m.Graph
	}
	return rows, nil
}

// LPIterRow reports stage-5 convergence per circuit (Section III-E-4: the
// paper observes ≤ 50 iterations on its largest benchmark).
type LPIterRow struct {
	Name       string `json:"circuit"`
	Iterations int    `json:"iterations"`
	Components int    `json:"components"`
}

// RunLPIters delegates to RunMetrics (one routing run per circuit shared by
// all metric experiments).
func RunLPIters(names []string) ([]LPIterRow, error) {
	ms, err := RunMetrics(names)
	if err != nil {
		return nil, err
	}
	rows := make([]LPIterRow, len(ms))
	for i, m := range ms {
		rows[i] = m.LPIter
	}
	return rows, nil
}

// MetricsRow bundles the per-circuit measurements that share one routing
// run: the Figure 7 LP effect, LP convergence, graph size and wirelength
// quality.
type MetricsRow struct {
	Name    string
	Fig7    Fig7Row
	LPIter  LPIterRow
	Graph   GraphSizeRow
	Quality QualityRow
}

// RunMetrics routes each named circuit once and extracts every shared
// metric from that single run. Up to Parallel circuits run concurrently;
// rows come back in input order.
func RunMetrics(names []string) ([]MetricsRow, error) {
	return par.Map(context.Background(), Parallel, len(names), func(i int) (MetricsRow, error) {
		name := names[i]
		spec, err := design.DenseSpec(name)
		if err != nil {
			return MetricsRow{}, err
		}
		d, err := design.Generate(spec)
		if err != nil {
			return MetricsRow{}, err
		}
		r, err := router.Route(d, routerOptions())
		if err != nil {
			return MetricsRow{}, err
		}
		red := 0.0
		if r.WirelengthBeforeLP > 0 {
			red = 100 * (r.WirelengthBeforeLP - r.Wirelength) / r.WirelengthBeforeLP
		}
		nx := int(d.Outline.W()/design.Grid) + 1
		ny := int(d.Outline.H()/design.Grid) + 1
		grid := nx * ny * d.WireLayers
		ratio := 0.0
		if grid > 0 {
			ratio = float64(r.TileCount) / float64(grid)
		}
		q := r.Layout.QualityStats()
		return MetricsRow{
			Name: name,
			Fig7: Fig7Row{
				Name: name, Before: r.WirelengthBeforeLP, After: r.Wirelength,
				Reduction: red, Iterations: r.LPIterations,
			},
			LPIter: LPIterRow{Name: name, Iterations: r.LPIterations, Components: r.LPComponents},
			Graph:  GraphSizeRow{Name: name, TileNodes: r.TileCount, GridNodes: grid, Ratio: ratio},
			Quality: QualityRow{
				Name: name, LowerBound: q.LowerBound, Actual: q.Actual,
				MeanDetour: q.MeanDetour, P95: q.P95Detour, MaxDetour: q.MaxDetour,
			},
		}, nil
	})
}
