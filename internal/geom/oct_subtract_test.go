package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOctAroundSegment(t *testing.T) {
	// Horizontal segment: cover is the stadium's bounding octagon.
	o := OctAroundSegment(Seg(Pt(10, 10), Pt(50, 10)), 5)
	for _, p := range []Point{{10, 10}, {50, 10}, {5, 10}, {55, 10}, {30, 15}, {30, 5}} {
		if !o.Contains(p) {
			t.Errorf("cover should contain %v", p)
		}
	}
	if o.Contains(Pt(30, 16)) || o.Contains(Pt(4, 10)) {
		t.Error("cover too large")
	}
	// Points within r of the segment are inside (cover property).
	d := OctAroundSegment(Seg(Pt(0, 0), Pt(40, 40)), 7)
	for _, p := range []Point{{20, 20}, {25, 15}, {15, 25}, {-4, -4}} {
		if PointSegDist(p, Seg(Pt(0, 0), Pt(40, 40))) <= 7 && !d.Contains(p) {
			t.Errorf("diagonal cover misses %v", p)
		}
	}
}

func TestOctAroundSegmentCoversDiskProperty(t *testing.T) {
	f := func(ax, ay, bx, by int8, rr uint8, px, py int8) bool {
		a := Pt(int64(ax), int64(ay))
		b := a
		// Force octilinearity.
		switch rr % 4 {
		case 0:
			b = a.Add(Pt(int64(bx), 0))
		case 1:
			b = a.Add(Pt(0, int64(by)))
		case 2:
			b = a.Add(Pt(int64(bx), int64(bx)))
		case 3:
			b = a.Add(Pt(int64(bx), -int64(bx)))
		}
		r := int64(rr%20) + 1
		seg := Seg(a, b)
		o := OctAroundSegment(seg, r)
		p := Pt(int64(px), int64(py))
		if PointSegDist(p, seg) <= float64(r) {
			return o.Contains(p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestSubtractOctDisjointCover(t *testing.T) {
	o := OctFromRect(RectWH(0, 0, 100, 100))
	b := RegularOct(Pt(50, 50), 30)
	pieces := o.SubtractOct(b)
	if len(pieces) == 0 {
		t.Fatal("subtraction should leave pieces")
	}
	// Piece areas + intersection area = original area.
	total := 0.0
	for i, p := range pieces {
		total += p.Area()
		for j := i + 1; j < len(pieces); j++ {
			// Interiors must be disjoint: the intersection may touch at
			// boundaries but should have no area.
			in := p.IntersectOct(pieces[j])
			if !in.Empty() && in.Area() > 1 {
				t.Errorf("pieces %d and %d overlap with area %v", i, j, in.Area())
			}
		}
	}
	inter := o.IntersectOct(b)
	want := o.Area() - inter.Area()
	// Integer-complement cuts lose slivers below one DBU; allow perimeter slack.
	if math.Abs(total-want) > 500 {
		t.Errorf("piece area %v, want ≈ %v", total, want)
	}
	// No piece intersects the blocker's interior.
	shrunk := b.Shrink(1)
	for i, p := range pieces {
		if p.Intersects(shrunk) {
			t.Errorf("piece %d overlaps blocker", i)
		}
	}
}

func TestSubtractOctNoOverlap(t *testing.T) {
	o := OctFromRect(RectWH(0, 0, 60, 60))
	b := OctFromRect(RectWH(70, 70, 10, 10))
	pieces := o.SubtractOct(b)
	if len(pieces) != 1 || pieces[0].Canonical() != o.Canonical() {
		t.Errorf("disjoint subtraction should return the original, got %v", pieces)
	}
}

func TestSubtractOctFullCover(t *testing.T) {
	o := OctFromRect(RectWH(10, 10, 20, 20))
	b := OctFromRect(RectWH(0, 0, 100, 100))
	if pieces := o.SubtractOct(b); len(pieces) != 0 {
		t.Errorf("fully covered subtraction should be empty, got %v", pieces)
	}
}

func TestSubtractOctDiagonalBand(t *testing.T) {
	// Subtracting a diagonal wire band splits a rect into two octagonal
	// tiles (the paper's Figure 6(c) situation).
	o := OctFromRect(RectWH(0, 0, 100, 100))
	band := OctAroundSegment(Seg(Pt(0, 0), Pt(100, 100)), 8)
	pieces := o.SubtractOct(band)
	if len(pieces) < 2 {
		t.Fatalf("diagonal band should split the frame, got %d pieces", len(pieces))
	}
	// One piece contains (10, 80), another (80, 10); none contains (50,50).
	var hasNW, hasSE bool
	for _, p := range pieces {
		if p.Contains(Pt(10, 80)) {
			hasNW = true
		}
		if p.Contains(Pt(80, 10)) {
			hasSE = true
		}
		if p.Contains(Pt(50, 50)) {
			t.Error("piece contains a point on the wire band")
		}
	}
	if !hasNW || !hasSE {
		t.Errorf("expected pieces on both sides: NW=%v SE=%v", hasNW, hasSE)
	}
}
