package lp

import "math"

// SolveRevised solves the problem with a bounded-variable revised simplex.
// It maintains a dense basis inverse of size m×m (m = number of
// constraints) instead of a full (m × n+m) tableau, so it scales to larger
// problems than Solve; the two solvers return the same optimal objective
// (cross-checked by the test suite).
//
// Formulation: one slack variable per constraint turns every row into an
// equality Ax + s = b with bounds on the slack (≤ → s ≥ 0, ≥ → s ≤ 0,
// = → s = 0). Nonbasic variables rest at a finite bound (or 0 when free);
// phase 1 drives bound violations of the basic variables to zero with a
// composite infeasibility objective, then phase 2 minimizes the true cost.
func (p *Problem) SolveRevised() Solution {
	if err := p.Validate(); err != nil {
		return Solution{Status: Infeasible}
	}
	rv := newRevised(p)
	status := rv.primal()
	if status != Optimal {
		return Solution{Status: status}
	}
	x := make([]float64, p.NumVars())
	obj := 0.0
	for v := 0; v < p.NumVars(); v++ {
		val := rv.x[v]
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return Solution{Status: IterLimit}
		}
		x[v] = val
		obj += p.obj[v] * val
	}
	return Solution{Status: Optimal, X: x, Obj: obj}
}

type rvEntry struct {
	row int
	val float64
}

type revised struct {
	m, n, nTot int // rows, structural vars, total vars (n+m)
	cols       [][]rvEntry
	cost       []float64
	lo, hi     []float64
	b          []float64

	basis   []int // var per basis row
	rowOf   []int // var -> basis row, −1 when nonbasic
	atUpper []bool
	x       []float64
	binv    [][]float64

	maxIters int
	check    func() error
}

const (
	rvEps     = 1e-9
	rvFeasEps = 1e-7
)

func newRevised(p *Problem) *revised {
	n := p.NumVars()
	m := len(p.cons)
	rv := &revised{
		m: m, n: n, nTot: n + m,
		cols:    make([][]rvEntry, n+m),
		cost:    make([]float64, n+m),
		lo:      make([]float64, n+m),
		hi:      make([]float64, n+m),
		b:       make([]float64, m),
		basis:   make([]int, m),
		rowOf:   make([]int, n+m),
		atUpper: make([]bool, n+m),
		x:       make([]float64, n+m),
		binv:    make([][]float64, m),
	}
	for v := 0; v < n; v++ {
		rv.cost[v] = p.obj[v]
		rv.lo[v] = p.lo[v]
		rv.hi[v] = p.hi[v]
	}
	// Structural columns.
	for ri, c := range p.cons {
		rv.b[ri] = c.rhs
		for _, t := range c.terms {
			if t.Coef != 0 {
				rv.cols[t.Var] = append(rv.cols[t.Var], rvEntry{ri, t.Coef})
			}
		}
	}
	// Slack columns and bounds.
	for ri, c := range p.cons {
		sv := n + ri
		rv.cols[sv] = []rvEntry{{ri, 1}}
		switch c.op {
		case LE:
			rv.lo[sv], rv.hi[sv] = 0, math.Inf(1)
		case GE:
			rv.lo[sv], rv.hi[sv] = math.Inf(-1), 0
		default:
			rv.lo[sv], rv.hi[sv] = 0, 0
		}
	}
	// Initial basis: the slacks; B = I.
	for i := 0; i < m; i++ {
		rv.basis[i] = n + i
		rv.binv[i] = make([]float64, m)
		rv.binv[i][i] = 1
	}
	for v := range rv.rowOf {
		rv.rowOf[v] = -1
	}
	for i, v := range rv.basis {
		rv.rowOf[v] = i
	}
	// Nonbasic structural vars rest at a finite bound, preferring the one
	// closer to zero, or at 0 when free.
	for v := 0; v < n; v++ {
		rv.x[v] = restingValue(rv.lo[v], rv.hi[v], &rv.atUpper[v])
	}
	rv.recomputeBasics()
	rv.maxIters = p.MaxIters
	if rv.maxIters == 0 {
		rv.maxIters = 200 * (rv.m + rv.n + 10)
	}
	rv.check = p.Check
	return rv
}

func restingValue(lo, hi float64, atUpper *bool) float64 {
	switch {
	case !math.IsInf(lo, -1) && !math.IsInf(hi, 1):
		if math.Abs(hi) < math.Abs(lo) {
			*atUpper = true
			return hi
		}
		return lo
	case !math.IsInf(lo, -1):
		return lo
	case !math.IsInf(hi, 1):
		*atUpper = true
		return hi
	default:
		return 0
	}
}

// recomputeBasics sets basic values xB = B⁻¹(b − N·xN).
func (rv *revised) recomputeBasics() {
	rhs := make([]float64, rv.m)
	copy(rhs, rv.b)
	for v := 0; v < rv.nTot; v++ {
		if rv.rowOf[v] >= 0 || rv.x[v] == 0 {
			continue
		}
		for _, e := range rv.cols[v] {
			rhs[e.row] -= e.val * rv.x[v]
		}
	}
	for i := 0; i < rv.m; i++ {
		s := 0.0
		for k := 0; k < rv.m; k++ {
			s += rv.binv[i][k] * rhs[k]
		}
		rv.x[rv.basis[i]] = s
	}
}

// infeasibility returns the total bound violation of the basic variables.
func (rv *revised) infeasibility() float64 {
	total := 0.0
	for _, v := range rv.basis {
		if rv.x[v] < rv.lo[v]-rvEps {
			total += rv.lo[v] - rv.x[v]
		} else if rv.x[v] > rv.hi[v]+rvEps {
			total += rv.x[v] - rv.hi[v]
		}
	}
	return total
}

// primal runs phase 1 (if needed) then phase 2.
func (rv *revised) primal() Status {
	iters := 0
	if rv.infeasibility() > rvFeasEps {
		st := rv.iterate(true, &iters)
		if st == IterLimit || st == Aborted {
			return st
		}
		if rv.infeasibility() > rvFeasEps {
			return Infeasible
		}
	}
	return rv.iterate(false, &iters)
}

// basicCost returns the pricing cost of a basic variable for the phase.
func (rv *revised) basicCost(v int, phase1 bool) float64 {
	if !phase1 {
		return rv.cost[v]
	}
	switch {
	case rv.x[v] < rv.lo[v]-rvEps:
		return -1
	case rv.x[v] > rv.hi[v]+rvEps:
		return 1
	default:
		return 0
	}
}

// iterate performs simplex pivots until optimal for the phase's objective.
func (rv *revised) iterate(phase1 bool, iters *int) Status {
	m := rv.m
	y := make([]float64, m)
	w := make([]float64, m)
	stall := 0
	blandAfter := 5 * (rv.m + rv.n + 10)
	lastObj := math.Inf(1)

	for {
		if phase1 && rv.infeasibility() <= rvFeasEps {
			return Optimal
		}
		// y = cBᵀ B⁻¹.
		for k := 0; k < m; k++ {
			y[k] = 0
		}
		for i := 0; i < m; i++ {
			cb := rv.basicCost(rv.basis[i], phase1)
			if cb == 0 {
				continue
			}
			row := rv.binv[i]
			for k := 0; k < m; k++ {
				y[k] += cb * row[k]
			}
		}
		// Pricing: entering variable.
		enter := -1
		bestScore := rvEps
		bland := stall >= blandAfter
		var enterDir float64
		for v := 0; v < rv.nTot; v++ {
			if rv.rowOf[v] >= 0 {
				continue
			}
			cj := 0.0
			if !phase1 {
				cj = rv.cost[v]
			}
			d := cj
			for _, e := range rv.cols[v] {
				d -= y[e.row] * e.val
			}
			free := math.IsInf(rv.lo[v], -1) && math.IsInf(rv.hi[v], 1)
			var score float64
			var dir float64
			switch {
			case (free || !rv.atUpper[v]) && d < -rvEps:
				// Increasing from lower bound (or free) improves.
				score = -d
				dir = 1
			case (free || rv.atUpper[v]) && d > rvEps:
				// Decreasing from upper bound (or free) improves.
				score = d
				dir = -1
			default:
				continue
			}
			if bland {
				enter = v
				enterDir = dir
				break
			}
			if score > bestScore {
				bestScore = score
				enter = v
				enterDir = dir
			}
		}
		if enter == -1 {
			return Optimal
		}
		if *iters >= rv.maxIters {
			return IterLimit
		}
		*iters++
		if rv.check != nil && *iters%checkPollPeriod == 0 && rv.check() != nil {
			return Aborted
		}

		// w = B⁻¹ A_enter.
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		for _, e := range rv.cols[enter] {
			col := e.row
			for i := 0; i < m; i++ {
				w[i] += rv.binv[i][col] * e.val
			}
		}

		// Ratio test: entering moves by t·enterDir ≥ 0; basic i changes by
		// −t·enterDir·w[i]. Find the smallest t that drives a basic
		// variable to a bound (for phase-1-infeasible basics: to the bound
		// they violate), or the entering variable to its opposite bound.
		tMax := math.Inf(1)
		if enterDir > 0 && !math.IsInf(rv.hi[enter], 1) {
			tMax = rv.hi[enter] - rv.x[enter]
		} else if enterDir < 0 && !math.IsInf(rv.lo[enter], -1) {
			tMax = rv.x[enter] - rv.lo[enter]
		}
		leave := -1
		leaveToUpper := false
		t := tMax
		for i := 0; i < m; i++ {
			delta := -enterDir * w[i]
			if math.Abs(delta) < rvEps {
				continue
			}
			v := rv.basis[i]
			xv := rv.x[v]
			var limit float64
			var toUpper bool
			if delta > 0 {
				switch {
				case xv > rv.hi[v]+rvEps:
					continue // already above: moving up worsens it, no limit
				case xv < rv.lo[v]-rvEps:
					// Infeasible below: limited where it becomes feasible.
					limit = (rv.lo[v] - xv) / delta
					toUpper = false
				case !math.IsInf(rv.hi[v], 1):
					limit = (rv.hi[v] - xv) / delta
					toUpper = true
				default:
					continue
				}
			} else {
				switch {
				case xv < rv.lo[v]-rvEps:
					continue // already below: moving down worsens it, no limit
				case xv > rv.hi[v]+rvEps:
					limit = (rv.hi[v] - xv) / delta
					toUpper = true
				case !math.IsInf(rv.lo[v], -1):
					limit = (rv.lo[v] - xv) / delta
					toUpper = false
				default:
					continue
				}
			}
			if limit < 0 {
				limit = 0
			}
			if limit < t-rvEps || (limit < t+rvEps && (leave == -1 || rv.basis[i] < rv.basis[leave])) {
				t = limit
				leave = i
				leaveToUpper = toUpper
			}
		}

		if math.IsInf(t, 1) {
			if phase1 {
				// Should not happen: infeasibility is bounded below.
				return IterLimit
			}
			return Unbounded
		}

		// Apply the move.
		rv.x[enter] += enterDir * t
		for i := 0; i < m; i++ {
			rv.x[rv.basis[i]] -= enterDir * t * w[i]
		}

		if leave == -1 {
			// Bound flip: entering hit its own opposite bound.
			rv.atUpper[enter] = enterDir > 0
			if enterDir > 0 {
				rv.x[enter] = rv.hi[enter]
			} else {
				rv.x[enter] = rv.lo[enter]
			}
			continue
		}

		// Basis change: pivot enter in, basis[leave] out.
		out := rv.basis[leave]
		rv.rowOf[out] = -1
		rv.atUpper[out] = leaveToUpper
		// Snap the leaving variable exactly onto its bound.
		if leaveToUpper {
			rv.x[out] = rv.hi[out]
		} else {
			rv.x[out] = rv.lo[out]
		}
		rv.basis[leave] = enter
		rv.rowOf[enter] = leave

		// Product-form update of B⁻¹.
		piv := w[leave]
		if math.Abs(piv) < rvEps {
			return IterLimit // numerical breakdown
		}
		lr := rv.binv[leave]
		inv := 1 / piv
		for k := 0; k < m; k++ {
			lr[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			f := w[i]
			if f == 0 {
				continue
			}
			row := rv.binv[i]
			for k := 0; k < m; k++ {
				row[k] -= f * lr[k]
			}
		}
		// Refresh basic values periodically to shed drift.
		if *iters%64 == 0 {
			rv.recomputeBasics()
		}

		// Stall detection for the Bland switch.
		obj := 0.0
		if phase1 {
			obj = rv.infeasibility()
		} else {
			for v := 0; v < rv.nTot; v++ {
				if rv.cost[v] != 0 {
					obj += rv.cost[v] * rv.x[v]
				}
			}
		}
		if obj < lastObj-1e-12 {
			lastObj = obj
			stall = 0
		} else {
			stall++
		}
	}
}
