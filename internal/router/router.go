// Package router implements the paper's five-stage RDL routing flow
// (Figure 3): Preprocessing, Weighted-MPSC-based Concurrent Routing,
// Routing Graph Construction (octagonal tiles + via insertion), Sequential
// A*-search Routing, and LP-based Layout Optimization.
package router

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rdlroute/internal/ctile"
	"rdlroute/internal/design"
	"rdlroute/internal/fanout"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
	"rdlroute/internal/lpopt"
	"rdlroute/internal/mpsc"
	"rdlroute/internal/obs"
	"rdlroute/internal/par"
)

// Options tune the flow. The zero value is not usable; call
// DefaultOptions and override as needed.
type Options struct {
	Weights     fanout.WeightParams
	GlobalCells int   // global-cell grid per axis (the paper uses 30)
	Pitch       int64 // detailed-routing lattice pitch
	ViaCost     float64

	// Ablation switches (all true in the paper's flow).
	UseWeights   bool // Eq. (2) chord weights (false → unit weights)
	EnableLP     bool // stage 5 LP-based layout optimization
	EnableVias   bool // stage 3 via insertion (false → 2D corridors only)
	EnableStage2 bool // weighted-MPSC concurrent routing

	PeripheralDist int64
	LPMaxIters     int

	// RipUpRounds enables the rip-up-and-reroute extension (not part of
	// the paper's flow): after sequential routing, up to this many rounds
	// of ripping blocking nets and re-routing. 0 disables it.
	RipUpRounds int

	// NetOrder selects the sequential-stage routing order.
	NetOrder NetOrder

	// OrderPortfolio, when positive, races the first OrderPortfolio
	// policies of the ordering registry (policy.go) through stage 4: each
	// candidate runs the full sequential loop (plus rip-up, when enabled)
	// on its own scratch lattice/model clone across the worker pool, a
	// fixed total rule picks the winner (routed nets desc, wirelength
	// asc, lowest policy index), and only the winner is replayed on the
	// real lattice with the real tracer/memo attached. The result is
	// byte-identical at any worker count and equals a solo run of the
	// winning policy. Values above MaxPortfolio are rejected; 0 disables
	// racing and stage 4 uses NetOrder directly. When racing is on,
	// NetOrder is ignored (policy 0, shortest-first, anchors the
	// portfolio as the baseline candidate).
	OrderPortfolio int

	// soloPolicy pins stage 4 to one registry policy, bypassing both
	// NetOrder and OrderPortfolio. Set via WithOrderPolicy; the portfolio
	// racer uses it internally to run candidates and replay the winner,
	// and qa uses it for the escalation ladder and the winner-equals-solo
	// oracle.
	soloPolicy *int

	// Workers bounds the worker pool the flow's data-parallel stages fan
	// out on: preprocessing's grid graph and candidate construction, the
	// stage-2 region-mask prebuild, the stage-3 tile warm-up and the
	// congested-order overlap count. 0 means GOMAXPROCS, 1 forces the
	// plain sequential path. Results are byte-identical at every value —
	// the qa determinism matrix holds the flow to that contract.
	Workers int

	// Speculative enables the speculative stage-4 scheduler: batches of
	// sequential-stage nets are routed concurrently on the worker pool
	// against a frozen lattice, and a serial commit arbiter accepts each
	// net's speculative result only when footprint proofs show the
	// sequential loop would have derived it bit for bit — everything else
	// replays live in exact sequential position. Committed results are
	// therefore byte-identical to the plain sequential loop at any worker
	// count (the qa speculative-equivalence matrix enforces fingerprint,
	// metrics and encoded-result equality); only the spec.* counters
	// reveal speculation happened. With Workers == 1 speculation still
	// runs (inline) and must still match — that is the cheapest
	// equivalence check the harness has.
	Speculative bool

	// Tracer, when non-nil, receives stage spans (tagged with pprof
	// labels), per-net route events, counters and distribution samples
	// from the whole flow. Nil means the zero-overhead Nop tracer: no obs
	// object is allocated on the hot path.
	//
	// Tracers are strictly observational: the flow never reads a tracer,
	// so attaching any sink — Collector, JSONL stream, metrics.Bridge, or
	// a Multi fan-out of all three — yields routing results byte-identical
	// to an untraced run. The qa harness enforces this
	// (TestMetricsBridgeDeterminism) alongside the worker matrix.
	Tracer obs.Tracer

	// SearchMemo, when non-nil, records this run's A* searches and serves
	// provably-unchanged ones from a previous run's recordings (see
	// internal/lattice memo.go). Like Tracer it cannot change results —
	// a memo hit is only taken when the identical search would be
	// re-derived — so routes stay byte-identical to an un-memoized run;
	// it is not part of the wire format and never serialized.
	SearchMemo *lattice.Memo

	// CorridorMemo is SearchMemo's counterpart for the stage-4 tile-graph
	// corridor searches (see internal/ctile memo.go). Same contract:
	// strictly observational, never serialized.
	CorridorMemo *ctile.CorridorMemo
}

// NetOrder is a sequential-stage net ordering strategy.
type NetOrder uint8

// Net ordering strategies.
const (
	// OrderShortest routes short nets first (the default; cheap nets claim
	// resources that barely constrain others).
	OrderShortest NetOrder = iota
	// OrderLongest routes long nets first.
	OrderLongest
	// OrderCongested routes nets whose bounding boxes overlap the most
	// other nets first (hardest-first).
	OrderCongested
)

// DefaultOptions returns the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		Weights:        fanout.DefaultWeightParams(),
		GlobalCells:    30,
		Pitch:          design.Grid,
		ViaCost:        0, // lattice default (3·pitch)
		UseWeights:     true,
		EnableLP:       true,
		EnableVias:     true,
		EnableStage2:   true,
		PeripheralDist: 36,
		LPMaxIters:     50,
	}
}

// Result is the routing outcome with the metrics Table I reports plus
// per-stage counters.
type Result struct {
	Layout      *layout.Layout
	Routability float64 // percent
	Wirelength  float64 // routed nets only (paper's metric)
	RoutedNets  int
	TotalNets   int

	ConcurrentRouted int // nets completed in stage 2
	SequentialRouted int // nets completed in stage 4
	CorridorRouted   int // stage-4 nets that used a tile corridor
	FallbackRouted   int // stage-4 nets routed without a corridor

	RipUpRouted int // nets recovered by the rip-up extension

	WirelengthBeforeLP float64
	LPIterations       int
	LPComponents       int

	TileCount int // tiles in the stage-3 routing graph
	Runtime   time.Duration

	// Obs is the aggregated metrics snapshot of this run, present when
	// Options.Tracer can produce one (the in-memory Collector, or a Multi
	// containing one); nil otherwise.
	Obs *obs.Snapshot

	// Portfolio describes the ordering-portfolio race when
	// Options.OrderPortfolio was positive; nil otherwise. Like Obs it is
	// diagnostic output and is not part of the rdl-result/v1 wire format —
	// encoded result bytes stay comparable across portfolio and solo runs.
	Portfolio *PortfolioReport
}

// Route runs the full flow on the design.
func Route(d *design.Design, opts Options) (*Result, error) {
	return RouteContext(context.Background(), d, opts)
}

// RouteContext is Route with cancellation: when ctx is cancelled or its
// deadline passes, the flow stops at the next checkpoint — the A* relax
// loops, the MPSC DP and the LP pivot loops all poll ctx — and returns an
// error wrapping context.Canceled or context.DeadlineExceeded. The partial
// layout is discarded; no lattice state escapes, so a timed-out job can
// never corrupt a later run.
func RouteContext(ctx context.Context, d *design.Design, opts Options) (*Result, error) {
	res, _, err := route(ctx, d, opts)
	return res, err
}

// ctxErr returns the flow-level error for a cancelled context, wrapped so
// errors.Is(err, context.Canceled / context.DeadlineExceeded) holds.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("router: %w", err)
	}
	return nil
}

// route is RouteContext plus the lattice the flow ended on — after rip-up
// this is the rebuilt lattice of the accepted layout, not the one the flow
// started with. Exposed separately so tests can assert lattice occupancy
// matches the returned layout.
func route(ctx context.Context, d *design.Design, opts Options) (*Result, *lattice.Lattice, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("router: %w", err)
	}
	if opts.Pitch == 0 {
		opts.Pitch = design.Grid
	}
	if opts.GlobalCells == 0 {
		opts.GlobalCells = 30
	}
	if opts.OrderPortfolio < 0 || opts.OrderPortfolio > MaxPortfolio {
		return nil, nil, fmt.Errorf("router: order portfolio %d out of range [0, %d]", opts.OrderPortfolio, MaxPortfolio)
	}
	if opts.soloPolicy != nil && (*opts.soloPolicy < 0 || *opts.soloPolicy >= MaxPortfolio) {
		return nil, nil, fmt.Errorf("router: solo ordering policy %d out of range [0, %d)", *opts.soloPolicy, MaxPortfolio)
	}

	tr := obs.Or(opts.Tracer)
	la, err := lattice.New(d, opts.Pitch)
	if err != nil {
		return nil, nil, err
	}
	la.SetTracer(tr)
	la.AttachMemo(opts.SearchMemo)
	if opts.Speculative && opts.SearchMemo == nil {
		// Speculative commit validation needs the journal's footprint
		// hashes even when no cross-run memo was supplied.
		la.AttachJournal()
	}
	lay := layout.New(d)
	res := &Result{Layout: lay, TotalNets: len(d.Nets)}

	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}

	// Stage 1: Preprocessing.
	end := obs.Stage(tr, "preprocess", obs.String("design", d.Name))
	analysis, err := fanout.Analyze(d, fanout.Config{
		PeripheralDist: opts.PeripheralDist,
		TrackPitch:     opts.Pitch,
		Workers:        opts.Workers,
	})
	end()
	if err != nil {
		return nil, nil, err
	}

	// Stage 2: Weighted-MPSC-based concurrent routing.
	if opts.EnableStage2 {
		end = obs.Stage(tr, "concurrent")
		routed, err := concurrentRoute(ctx, d, analysis, la, lay, opts, tr)
		res.ConcurrentRouted = routed
		end(obs.Int("routed", res.ConcurrentRouted))
		if err != nil {
			return nil, nil, err
		}
	}

	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}

	// Stage 3: Routing graph construction (octagonal tiles, via insertion).
	end = obs.Stage(tr, "graph")
	model := ctile.NewModel(d, opts.GlobalCells)
	model.AttachMemo(opts.CorridorMemo)
	if opts.Speculative && opts.CorridorMemo == nil {
		model.AttachJournal()
	}
	seedModel(model, lay)
	// Warm every (layer, cell) tile decomposition on the worker pool. The
	// per-cell builds are pure functions of the seeded blockers, and the
	// stage ends by counting tiles in every cell anyway, so the warm-up
	// does no extra work — it only moves it onto parallel workers.
	if par.Workers(opts.Workers) > 1 {
		if err := model.BuildAll(ctx, opts.Workers); err != nil {
			return nil, nil, fmt.Errorf("router: %w", err)
		}
	}
	var sites []ctile.ViaSite
	if opts.EnableVias {
		sites = model.InsertVias()
	}
	for l := 0; l < d.WireLayers; l++ {
		res.TileCount += model.TileCount(l)
	}
	model.TraceStats(tr, sites)
	end(obs.Int("tiles", res.TileCount), obs.Int("via_sites", len(sites)))

	// Stage 4: Sequential A*-search routing on the tile graph. The
	// speculative scheduler commits byte-identical results, so the stage
	// keeps its name and counters either way.
	end = obs.Stage(tr, "sequential")
	var seqErr error
	switch {
	case opts.OrderPortfolio > 0 && opts.soloPolicy == nil:
		// Portfolio racing: candidates run silently on scratch clones,
		// then the winner is replayed here on the real lattice. Pin the
		// rest of the flow (the rip-up rounds below) to the winning
		// policy so the whole run stays byte-identical to a solo run of
		// that policy.
		var win int
		win, seqErr = portfolioRoute(ctx, d, model, sites, la, lay, opts, res, tr)
		if seqErr == nil {
			opts.soloPolicy = &win
			opts.OrderPortfolio = 0
		}
	case opts.Speculative:
		seqErr = speculativeRoute(ctx, d, model, sites, la, lay, opts, res, tr)
	default:
		seqErr = sequentialRoute(ctx, d, model, sites, la, lay, opts, res, tr)
	}
	end(obs.Int("routed", res.SequentialRouted),
		obs.Int("corridor", res.CorridorRouted),
		obs.Int("fallback", res.FallbackRouted))
	if seqErr != nil {
		return nil, nil, seqErr
	}

	// Extension: rip-up and re-route for stubborn nets. ripUpReroute hands
	// back the lattice matching the accepted layout — when a candidate was
	// accepted that is a rebuilt lattice, and dropping it here would leave
	// `la` describing occupancy of routes the layout no longer contains.
	if opts.RipUpRounds > 0 {
		end = obs.Stage(tr, "ripup")
		res.RipUpRouted, la = ripUpReroute(ctx, d, la, lay, opts, opts.RipUpRounds, tr)
		end(obs.Int("recovered", res.RipUpRouted))
		if err := ctxErr(ctx); err != nil {
			return nil, nil, err
		}
	}

	// Stage 5: LP-based layout optimization.
	res.WirelengthBeforeLP = lay.Wirelength()
	if opts.EnableLP {
		end = obs.Stage(tr, "lp")
		stats := lpopt.Optimize(lay, lpopt.Options{MaxIters: opts.LPMaxIters, Tracer: tr, Ctx: ctx})
		res.LPIterations = stats.Iterations
		res.LPComponents = stats.Components
		end(obs.Int("iterations", stats.Iterations),
			obs.Int("components", stats.Components))
		if stats.Cancelled {
			return nil, nil, ctxErr(ctx)
		}
	}

	res.RoutedNets = lay.RoutedCount()
	res.Routability = lay.Routability()
	res.Wirelength = lay.Wirelength()
	res.Runtime = time.Since(start)
	if tr.Enabled() {
		tr.Count("router.nets_total", int64(res.TotalNets))
		tr.Count("router.nets_routed", int64(res.RoutedNets))
		tr.Event("route.done",
			obs.String("design", d.Name),
			obs.Float("routability", res.Routability),
			obs.Float("wirelength", res.Wirelength),
			obs.Float("runtime_ms", float64(res.Runtime.Nanoseconds())/1e6))
		if s, ok := tr.(obs.Snapshotter); ok {
			res.Obs = s.Snapshot()
		}
	}
	return res, la, nil
}

// concurrentRoute performs per-layer weighted-MPSC layer assignment and
// concurrent detailed routing in the fan-out region. It returns the number
// of nets routed, stopping with ctx's error at the first cancelled
// checkpoint (the MPSC DP and every per-net search poll ctx).
func concurrentRoute(ctx context.Context, d *design.Design, a *fanout.Analysis, la *lattice.Lattice, lay *layout.Layout, opts Options, tr obs.Tracer) (int, error) {
	consumed := map[int]bool{}
	routed := 0
	weights := opts.Weights
	if !opts.UseWeights {
		weights = fanout.WeightParams{Alpha: 0, Beta: 0, Gamma: 0, Delta: 2}
	}
	for l := 0; l < d.WireLayers; l++ {
		chords := a.Chords(weights, consumed)
		if !opts.UseWeights {
			for i := range chords {
				chords[i].W = 1
			}
		}
		if len(chords) == 0 {
			break
		}
		picked, _, err := mpsc.MaxPlanarSubsetTracedCtx(ctx, a.CircleLen, chords, tr, obs.Int("layer", l))
		if err != nil {
			return routed, fmt.Errorf("router: %w", err)
		}
		// Route inner (short-span) chords first so nested nets claim the
		// tracks nearest their pads. Ties break on stable net identity so
		// that editing one net's pads cannot reshuffle the commit order of
		// unrelated equal-span nets (incremental reroutes depend on
		// unchanged nets keeping their relative order).
		sort.Slice(picked, func(i, j int) bool {
			si, sj := chordSpan(chords, picked[i]), chordSpan(chords, picked[j])
			if si != sj {
				return si < sj
			}
			idi, idj := d.Nets[chords[picked[i]].Tag].ID, d.Nets[chords[picked[j]].Tag].ID
			if idi != idj {
				return idi < idj
			}
			return chords[picked[i]].Tag < chords[picked[j]].Tag
		})
		// Commit the picked nets in order, prebuilding their region masks on
		// the worker pool in bounded batches ahead of the commit loop. Each
		// mask depends only on static design geometry and the net's own
		// search window — never on earlier commits — so prebuilding cannot
		// change any route; batching (a few masks per worker) caps the
		// memory held in flight. With one worker the masks are built inline
		// in the loop, the path this one must stay byte-identical to.
		workers := par.Workers(opts.Workers)
		batch := 1
		if workers > 1 {
			batch = 4 * workers
		}
		for lo := 0; lo < len(picked); lo += batch {
			hi := min(lo+batch, len(picked))
			var masks []*lattice.RegionMask
			if workers > 1 {
				var err error
				masks, err = par.Map(ctx, workers, hi-lo, func(k int) (*lattice.RegionMask, error) {
					cand := a.Candidates[chords[picked[lo+k]].Tag]
					n := d.Nets[cand.Net]
					return concurrentMask(d, la, d.IOPads[n.P1.Index], d.IOPads[n.P2.Index], l), nil
				})
				if err != nil {
					return routed, fmt.Errorf("router: %w", err)
				}
			}
			for k := lo; k < hi; k++ {
				if err := ctxErr(ctx); err != nil {
					return routed, err
				}
				ci := chords[picked[k]].Tag
				cand := a.Candidates[ci]
				var region *lattice.RegionMask
				if masks != nil {
					region = masks[k-lo]
				}
				if tryConcurrentNet(ctx, d, la, lay, cand, l, region, opts, tr) {
					consumed[ci] = true
					routed++
				}
			}
		}
		a.RecomputeCongestion(consumed)
	}
	return routed, nil
}

func chordSpan(chords []mpsc.Chord, idx int) int {
	c := chords[idx]
	s := c.B - c.A
	if s < 0 {
		s = -s
	}
	return s
}

// tryConcurrentNet routes one MPSC-selected net on wire layer l: via
// stacks at the pads when l > 0, then a single-layer wire through the
// fan-out region (plus the net's own fan-in regions). region, when
// non-nil, is the net's prebuilt concurrentMask; nil builds it here.
func tryConcurrentNet(ctx context.Context, d *design.Design, la *lattice.Lattice, lay *layout.Layout, cand fanout.Candidate, l int, region *lattice.RegionMask, opts Options, tr obs.Tracer) bool {
	net := cand.Net
	n := d.Nets[net]
	p1 := d.IOPads[n.P1.Index]
	p2 := d.IOPads[n.P2.Index]
	if l > 0 {
		if !la.StackFree(p1.Center, 0, l, net) || !la.StackFree(p2.Center, 0, l, net) {
			return false
		}
	}
	mask := make([]bool, d.WireLayers)
	mask[l] = true
	if region == nil {
		region = concurrentMask(d, la, p1, p2, l)
	}
	var st lattice.SearchStats
	req := lattice.Request{
		Net: net, From: p1.Center, To: p2.Center,
		FromLayer: l, ToLayer: l,
		LayerMask: mask, RegionMask: region, ViaCost: opts.ViaCost,
		Ctx: ctx,
	}
	if tr.Enabled() {
		req.Stats = &st
	}
	path, _, ok := la.Route(req)
	if !ok {
		return false
	}
	if l > 0 {
		la.CommitStack(p1.Center, 0, l, net)
		la.CommitStack(p2.Center, 0, l, net)
		lay.AddStack(net, p1.Center, 0, l)
		lay.AddStack(net, p2.Center, 0, l)
	}
	la.Commit(path, net)
	lay.AddPath(net, path)
	lay.MarkRouted(net)
	if tr.Enabled() {
		emitNetEvent(tr, net, "concurrent", "layer", l, path, &st, true)
	}
	return true
}

// emitNetEvent publishes one per-net route event: the net, the stage that
// completed (or gave up on) it, the routing mode ("corridor" when a tile
// corridor constrained the search, "fallback" for unrestricted search,
// "layer" for single-layer concurrent routing), the A* effort, and the
// realized path's step count, octilinear length and via count. Callers
// gate on tr.Enabled().
func emitNetEvent(tr obs.Tracer, net int, stage, mode string, layer int, path []lattice.PathStep, st *lattice.SearchStats, ok bool) {
	wl := 0.0
	vias := 0
	for k := 0; k+1 < len(path); k++ {
		a, b := path[k], path[k+1]
		if a.Layer == b.Layer {
			wl += geom.OctDist(a.Pt, b.Pt)
		} else {
			vias++
		}
	}
	outcome := "routed"
	if !ok {
		outcome = "failed"
	}
	tr.Event("net.route",
		obs.Int("net", net),
		obs.String("stage", stage),
		obs.String("mode", mode),
		obs.Int("layer", layer),
		obs.String("outcome", outcome),
		obs.Int("expanded", st.NodesExpanded),
		obs.Int("visited", st.NodesVisited),
		obs.Int("steps", len(path)),
		obs.Int("vias", vias),
		obs.Float("wl", wl))
	if ok {
		tr.Observe("net.wirelength", wl)
		tr.Observe("net.vias", float64(vias))
	}
}

// seedModel loads the committed layout geometry into the tile model.
func seedModel(m *ctile.Model, lay *layout.Layout) {
	for i := range lay.Routes {
		r := &lay.Routes[i]
		r.Segments(func(s geom.Segment) { m.AddWire(r.Layer, s) })
	}
	for _, v := range lay.Vias {
		m.AddVia(v.Slab, v.Center)
	}
}

// seqJob is one stage-4 work item: a net awaiting sequential routing plus
// the sort keys of the configured net order.
type seqJob struct {
	net     int
	direct  float64
	bbox    geom.Rect
	overlap int
}

// buildSeqJobs collects the nets stage 4 must route and sorts them into
// the configured commit order — the order both the sequential loop and
// the speculative scheduler's arbiter are bound to. The ordering itself
// comes from the policy registry (policy.go): an explicit solo pin set
// by WithOrderPolicy wins, otherwise Options.NetOrder selects among the
// registry's first three entries.
func buildSeqJobs(ctx context.Context, d *design.Design, lay *layout.Layout, opts Options) ([]seqJob, error) {
	var jobs []seqJob
	for ni := range d.Nets {
		if lay.Routed(ni) {
			continue
		}
		nn := d.Nets[ni]
		p1, p2 := d.PadCenter(nn.P1), d.PadCenter(nn.P2)
		jobs = append(jobs, seqJob{net: ni, direct: geom.OctDist(p1, p2), bbox: geom.RectOf(p1, p2)})
	}
	if err := policyForOptions(opts).order(ctx, d, jobs, opts.Workers); err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	return jobs, nil
}

// seqViaCost resolves the stage-4 corridor-search via cost.
func seqViaCost(opts Options) float64 {
	if opts.ViaCost != 0 {
		return opts.ViaCost
	}
	return 3 * float64(opts.Pitch)
}

// sequentialRoute completes the remaining nets with tile-graph corridors
// realized on the lattice, falling back to unrestricted multi-layer search.
// It stops with ctx's error at the first cancelled per-net checkpoint.
func sequentialRoute(ctx context.Context, d *design.Design, model *ctile.Model, sites []ctile.ViaSite, la *lattice.Lattice, lay *layout.Layout, opts Options, res *Result, tr obs.Tracer) error {
	jobs, err := buildSeqJobs(ctx, d, lay, opts)
	if err != nil {
		return err
	}
	viaCost := seqViaCost(opts)
	for _, jb := range jobs {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		routeNetLive(ctx, d, model, sites, la, lay, opts, res, tr, jb.net, viaCost)
	}
	return nil
}

// routeNetLive is the sequential stage's per-net body: corridor search,
// masked A*, unrestricted fallback, the route event, and on success the
// commit. The speculative scheduler replays aborted nets through this
// exact function, so it IS the definition of stage-4 behavior.
func routeNetLive(ctx context.Context, d *design.Design, model *ctile.Model, sites []ctile.ViaSite, la *lattice.Lattice, lay *layout.Layout, opts Options, res *Result, tr obs.Tracer, net int, viaCost float64) {
	traced := tr.Enabled()
	nn := d.Nets[net]
	from, fromLayer := terminal(d, nn.P1)
	to, toLayer := terminal(d, nn.P2)

	var path []lattice.PathStep
	var ok bool
	var corSt, fbSt lattice.SearchStats
	mode := "fallback"
	corridor, cok := model.FindCorridor(from, fromLayer, to, toLayer, sites, viaCost)
	if cok {
		region := corridorMask(la, model, corridor, opts.Pitch)
		req := lattice.Request{
			Net: net, From: from, To: to,
			FromLayer: fromLayer, ToLayer: toLayer,
			RegionMask: region, ViaCost: opts.ViaCost,
			Ctx: ctx,
		}
		if traced {
			req.Stats = &corSt
		}
		path, _, ok = la.Route(req)
		if ok {
			mode = "corridor"
			res.CorridorRouted++
		}
	}
	if !ok {
		req := lattice.Request{
			Net: net, From: from, To: to,
			FromLayer: fromLayer, ToLayer: toLayer,
			ViaCost: opts.ViaCost,
			Ctx:     ctx,
		}
		if traced {
			req.Stats = &fbSt
		}
		path, _, ok = la.Route(req)
		if ok {
			res.FallbackRouted++
		}
	}
	if traced {
		// Report the combined effort of both attempts.
		corSt.NodesExpanded += fbSt.NodesExpanded
		corSt.NodesVisited += fbSt.NodesVisited
		emitNetEvent(tr, net, "sequential", mode, fromLayer, path, &corSt, ok)
	}
	if !ok {
		return
	}
	commitSeqPath(model, la, lay, res, net, path)
}

// commitSeqPath applies one stage-4 net's committed path: lattice
// occupancy, layout geometry, counters, and the incremental tile-model
// update re-partitioning the frames the new net crossed.
func commitSeqPath(model *ctile.Model, la *lattice.Lattice, lay *layout.Layout, res *Result, net int, path []lattice.PathStep) {
	la.Commit(path, net)
	lay.AddPath(net, path)
	lay.MarkRouted(net)
	res.SequentialRouted++
	for k := 0; k+1 < len(path); k++ {
		a, b := path[k], path[k+1]
		if a.Layer == b.Layer {
			if !a.Pt.Eq(b.Pt) {
				model.AddWire(a.Layer, geom.Seg(a.Pt, b.Pt))
			}
		} else {
			slab := a.Layer
			if b.Layer < slab {
				slab = b.Layer
			}
			model.AddVia(slab, a.Pt)
		}
	}
}

func terminal(d *design.Design, r design.PadRef) (geom.Point, int) {
	if r.Kind == design.IOKind {
		return d.IOPads[r.Index].Center, 0
	}
	return d.BumpPads[r.Index].Center, d.WireLayers - 1
}

// corridorMask rasterizes a tile path into a per-layer lattice bitmap at
// cell granularity: each corridor tile admits its whole grid cell, grown so
// the wire centerline has room near cell borders. Rasterizing once per net
// replaces the seed's per-probe closure that linearly scanned every
// corridor octagon for every A* neighbor — the sequential stage's hot path.
//
// Masking over the fixed cell geometry instead of the exact tile octagons
// keeps the mask — and with it the masked search's result — insensitive to
// within-cell tile re-partitioning: an edit that shifts an unrelated
// clearance band inside a crossed cell no longer changes this net's search
// region unless the corridor's cell sequence itself changes. Without this,
// a one-pad ECO edit cascades tile-shape noise into the masks (and thus
// the equal-cost path choices) of most nets routed after it. The mask is
// still a corridor — the union of the global route's crossed cells — per
// the paper's restriction of detailed routing to the global region.
func corridorMask(la *lattice.Lattice, model *ctile.Model, corridor []ctile.TileRef, pitch int64) *lattice.RegionMask {
	m := la.NewRegionMask()
	for _, ref := range corridor {
		m.AllowRect(ref.Layer, model.CellBox(ref.Cell).Expand(3*pitch))
	}
	return m
}

// concurrentMask rasterizes the stage-2 region predicate — the fan-out
// region plus the net's own chips, minus foreign fan-in regions — onto
// the net's single assigned layer, bounded to the search window the
// lattice will use for this net anyway.
func concurrentMask(d *design.Design, la *lattice.Lattice, p1, p2 design.IOPad, l int) *lattice.RegionMask {
	m := la.NewRegionMask()
	i0, j0, i1, j1 := la.SearchWindow(p1.Center, p2.Center, 0)
	m.AllowWindow(l, i0, j0, i1, j1)
	for ci := range d.Chips {
		if ci != p1.Chip && ci != p2.Chip {
			m.ClearRect(l, d.Chips[ci].Box)
		}
	}
	// Re-allow the net's own chips in case a foreign clear overlapped
	// them (chips never overlap today; this keeps the mask equivalent to
	// the old closure, where own-chip membership won).
	for _, ci := range []int{p1.Chip, p2.Chip} {
		if ci >= 0 {
			m.AllowRect(l, d.Chips[ci].Box)
		}
	}
	return m
}
