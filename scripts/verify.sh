#!/bin/sh
# Full verification: build everything, vet, then the whole test suite
# under the race detector (the obs sinks advertise concurrency safety;
# -race holds them to it). Tier-1 CI is `go build ./... && go test ./...`;
# this script is the stricter local gate. Pass extra go-test flags through,
# e.g. `scripts/verify.sh -short`.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...
echo "== go vet ./... =="
go vet ./...
echo "== regression gate (lattice/router/geom) =="
# Fast fail on the targeted regression tests before the full sweep: the
# rip-up lattice threading, the int32 state-space bound, the Oct8.Center
# containment property, the T-junction connectivity union and the
# cancellation fingerprint gate.
go test -race -run \
  'TestRipUpLatticeMatchesLayout|TestNewRejectsStateSpaceBeyondInt32|TestStateSpaceNoOverflow|TestFingerprintCommitOrderIndependent|TestCenterContainedProperty|TestCenterDegenerate|TestConnectedTJunction|TestCancelLeavesNoCorruption' \
  ./internal/lattice/ ./internal/router/ ./internal/geom/ ./internal/layout/
echo "== serving gate: codec + serve semantics (-race) =="
# Queue saturation → 429, per-job deadlines, graceful drain, concurrent
# determinism, codec round-trips — the serving subsystem's contract.
go test -race ./internal/codec/ ./internal/serve/
echo "== rdlserver smoke: boot, route dense1 over HTTP, DRC-check =="
go run ./cmd/rdlserver -smoke
echo "== go test -race $* ./... =="
go test -race "$@" ./...
echo "== verify OK =="
