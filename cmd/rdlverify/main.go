// Command rdlverify checks routing results against the design rules.
//
// File mode re-runs the full design-rule checker (spacing, crossing,
// angle rules and connectivity) on a saved result and reports the
// Table-I metrics of the stored layout:
//
//	rdlroute -bench dense1 -out routes.rdl      # produce a result
//	rdlgen   -name dense1 -o design.rdl
//	rdlverify -design design.rdl -routes routes.rdl
//
// Random mode runs the qa harness instead: N seeded random designs are
// generated and routed through both the concurrent flow and the Lin-ext
// baseline, with the full oracle suite (DRC, connectivity, wirelength,
// codec round-trip, cancellation, differential and metamorphic gates)
// asserted on every one. Failures print a deterministically-replaying
// seed and a shrunken reproducer:
//
//	rdlverify -random 200
//	rdlverify -random 1 -seed 1236        # replay a reported failure
//
// Both modes exit 0 only when everything is clean and support -json for
// machine-readable reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"rdlroute"
	"rdlroute/internal/qa"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, dispatches to file or
// random mode, writes reports to stdout and diagnostics to stderr, and
// returns the process exit code — 0 clean, 1 violations or oracle
// failures, 2 usage or input errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdlverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		designPath = fs.String("design", "", "design netlist file")
		routesPath = fs.String("routes", "", "routing result file (from rdlroute -out)")
		maxPrint   = fs.Int("max-violations", 20, "maximum violations to print")
		jsonOut    = fs.Bool("json", false, "emit a machine-readable JSON report")
		randomN    = fs.Int("random", 0, "run the qa harness on N seeded random designs")
		seed       = fs.Int64("seed", 1, "base seed for -random; design i uses seed+i")
		parallel   = fs.Int("parallel", 1, "check up to this many -random designs concurrently (0 = GOMAXPROCS); the report is identical at every value")
		metOut     = fs.String("metrics", "", `with -random: write the sweep's production metrics (per-stage latency, A* effort) as a Prometheus text exposition to this file ("-" = stdout)`)
		portfolio  = fs.Int("portfolio", 0, "with -random: race the first N ordering-registry policies on every harness routing run (0 = off, max 16)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *randomN > 0 {
		qa.Portfolio = *portfolio
		defer func() { qa.Portfolio = 0 }()
		return runRandom(*randomN, *seed, *parallel, *jsonOut, *metOut, stdout, stderr)
	}
	if *designPath == "" || *routesPath == "" {
		fmt.Fprintln(stderr, "rdlverify: need -design and -routes (or -random N)")
		return 2
	}
	return runFile(*designPath, *routesPath, *maxPrint, *jsonOut, stdout, stderr)
}

// fileReport is the -json shape of file mode.
type fileReport struct {
	Design      string   `json:"design"`
	Nets        int      `json:"nets"`
	WireLayers  int      `json:"wire_layers"`
	Polylines   int      `json:"polylines"`
	Vias        int      `json:"vias"`
	Routed      int      `json:"routed"`
	Routability float64  `json:"routability_pct"`
	Wirelength  float64  `json:"wirelength"`
	Clean       bool     `json:"clean"`
	Violations  []string `json:"violations,omitempty"`
}

func runFile(designPath, routesPath string, maxPrint int, jsonOut bool, stdout, stderr io.Writer) int {
	df, err := os.Open(designPath)
	if err != nil {
		fmt.Fprintln(stderr, "rdlverify:", err)
		return 2
	}
	d, err := rdlroute.ParseDesign(df)
	df.Close()
	if err != nil {
		fmt.Fprintln(stderr, "rdlverify:", err)
		return 2
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintln(stderr, "rdlverify: design invalid:", err)
		return 2
	}
	rf, err := os.Open(routesPath)
	if err != nil {
		fmt.Fprintln(stderr, "rdlverify:", err)
		return 2
	}
	lay, err := rdlroute.ParseLayout(rf, d)
	rf.Close()
	if err != nil {
		fmt.Fprintln(stderr, "rdlverify:", err)
		return 2
	}

	vs := rdlroute.Check(lay)
	rep := fileReport{
		Design:      d.Name,
		Nets:        len(d.Nets),
		WireLayers:  d.WireLayers,
		Polylines:   len(lay.Routes),
		Vias:        len(lay.Vias),
		Routed:      lay.RoutedCount(),
		Routability: lay.Routability(),
		Wirelength:  lay.Wirelength(),
		Clean:       len(vs) == 0,
	}
	for _, v := range vs {
		rep.Violations = append(rep.Violations, v.String())
	}

	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "rdlverify:", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "design      %s (%d nets, %d wire layers)\n", rep.Design, rep.Nets, rep.WireLayers)
		fmt.Fprintf(stdout, "routes      %d polylines, %d vias\n", rep.Polylines, rep.Vias)
		fmt.Fprintf(stdout, "routability %.1f%% (%d/%d nets)\n", rep.Routability, rep.Routed, rep.Nets)
		fmt.Fprintf(stdout, "wirelength  %.0f\n", rep.Wirelength)
		if rep.Clean {
			fmt.Fprintln(stdout, "drc         clean")
		} else {
			fmt.Fprintf(stdout, "drc         %d violations\n", len(rep.Violations))
			for i, v := range rep.Violations {
				if i >= maxPrint {
					fmt.Fprintf(stdout, "  ... and %d more\n", len(rep.Violations)-maxPrint)
					break
				}
				fmt.Fprintf(stdout, "  %s\n", v)
			}
		}
	}
	if !rep.Clean {
		return 1
	}
	return 0
}

// randomReport is the -json shape of random mode.
type randomReport struct {
	Seed int64 `json:"seed"`
	qa.Report
	OK bool `json:"ok"`
}

func runRandom(n int, seed int64, parallel int, jsonOut bool, metOut string, stdout, stderr io.Writer) int {
	var reg *rdlroute.MetricsRegistry
	if metOut != "" {
		reg = rdlroute.NewMetricsRegistry()
		qa.Tracer = rdlroute.NewMetricsBridge(reg)
		defer func() { qa.Tracer = nil }()
	}
	cfg := qa.Config{
		N:        n,
		Seed:     seed,
		Suite:    qa.FullSuite(),
		LPChecks: -1,
		Shrink:   true,
		Parallel: parallel,
	}
	if !jsonOut {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	rep := qa.Run(cfg)
	if reg != nil {
		w := stdout
		if metOut != "-" {
			f, err := os.Create(metOut)
			if err != nil {
				fmt.Fprintln(stderr, "rdlverify:", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := reg.WriteText(w); err != nil {
			fmt.Fprintln(stderr, "rdlverify:", err)
			return 2
		}
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(randomReport{Seed: seed, Report: rep, OK: rep.OK()}); err != nil {
			fmt.Fprintln(stderr, "rdlverify:", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, rep.String())
	}
	if !rep.OK() {
		return 1
	}
	return 0
}
