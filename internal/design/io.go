package design

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rdlroute/internal/geom"
)

// Format writes the design in the package's line-based text format:
//
//	design <name>
//	outline <x0> <y0> <x1> <y1>
//	rules <spacing> <wirewidth> <viawidth>
//	layers wire <n>
//	chip <name> <x0> <y0> <x1> <y1>
//	iopad <id> <chip> <cx> <cy> <halfw>
//	bumppad <id> <cx> <cy> <w>
//	obstacle <layer> <x0> <y0> <x1> <y1>
//	fixedvia <net|-1> <slab> <cx> <cy>
//	net <id> <io|bump> <idx> <io|bump> <idx>
//
// Lines starting with '#' and blank lines are ignored on read.
func Format(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s\n", d.Name)
	fmt.Fprintf(bw, "outline %d %d %d %d\n", d.Outline.X0, d.Outline.Y0, d.Outline.X1, d.Outline.Y1)
	fmt.Fprintf(bw, "rules %d %d %d\n", d.Rules.Spacing, d.Rules.WireWidth, d.Rules.ViaWidth)
	fmt.Fprintf(bw, "layers wire %d\n", d.WireLayers)
	for _, c := range d.Chips {
		fmt.Fprintf(bw, "chip %s %d %d %d %d\n", c.Name, c.Box.X0, c.Box.Y0, c.Box.X1, c.Box.Y1)
	}
	for _, p := range d.IOPads {
		fmt.Fprintf(bw, "iopad %d %d %d %d %d\n", p.ID, p.Chip, p.Center.X, p.Center.Y, p.HalfW)
	}
	for _, p := range d.BumpPads {
		fmt.Fprintf(bw, "bumppad %d %d %d %d\n", p.ID, p.Center.X, p.Center.Y, p.W)
	}
	for _, o := range d.Obstacles {
		fmt.Fprintf(bw, "obstacle %d %d %d %d %d\n", o.Layer, o.Box.X0, o.Box.Y0, o.Box.X1, o.Box.Y1)
	}
	for _, v := range d.FixedVias {
		fmt.Fprintf(bw, "fixedvia %d %d %d %d\n", v.Net, v.Slab, v.Center.X, v.Center.Y)
	}
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "net %d %s %d %s %d\n", n.ID, n.P1.Kind, n.P1.Index, n.P2.Kind, n.P2.Index)
	}
	return bw.Flush()
}

// Parse reads a design in the Format text format.
func Parse(r io.Reader) (*Design, error) {
	d := &Design{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error { return fmt.Errorf("design: line %d: %s: %q", lineNo, msg, line) }
		ints := func(from, n int) ([]int64, error) {
			if len(f) < from+n {
				return nil, fail("too few fields")
			}
			out := make([]int64, n)
			for i := 0; i < n; i++ {
				v, err := strconv.ParseInt(f[from+i], 10, 64)
				if err != nil {
					return nil, fail("bad integer " + f[from+i])
				}
				out[i] = v
			}
			return out, nil
		}
		switch f[0] {
		case "design":
			if len(f) < 2 {
				return nil, fail("missing name")
			}
			d.Name = f[1]
		case "outline":
			v, err := ints(1, 4)
			if err != nil {
				return nil, err
			}
			d.Outline = geom.Rect{X0: v[0], Y0: v[1], X1: v[2], Y1: v[3]}
		case "rules":
			v, err := ints(1, 3)
			if err != nil {
				return nil, err
			}
			d.Rules = Rules{Spacing: v[0], WireWidth: v[1], ViaWidth: v[2]}
		case "layers":
			if len(f) != 3 || f[1] != "wire" {
				return nil, fail("expected 'layers wire <n>'")
			}
			n, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fail("bad layer count")
			}
			d.WireLayers = n
		case "chip":
			if len(f) != 6 {
				return nil, fail("expected 'chip <name> <x0> <y0> <x1> <y1>'")
			}
			v, err := ints(2, 4)
			if err != nil {
				return nil, err
			}
			d.Chips = append(d.Chips, Chip{Name: f[1], Box: geom.Rect{X0: v[0], Y0: v[1], X1: v[2], Y1: v[3]}})
		case "iopad":
			v, err := ints(1, 5)
			if err != nil {
				return nil, err
			}
			d.IOPads = append(d.IOPads, IOPad{
				ID: int(v[0]), Chip: int(v[1]),
				Center: geom.Pt(v[2], v[3]), HalfW: v[4],
			})
		case "bumppad":
			v, err := ints(1, 4)
			if err != nil {
				return nil, err
			}
			d.BumpPads = append(d.BumpPads, BumpPad{ID: int(v[0]), Center: geom.Pt(v[1], v[2]), W: v[3]})
		case "obstacle":
			v, err := ints(1, 5)
			if err != nil {
				return nil, err
			}
			d.Obstacles = append(d.Obstacles, Obstacle{
				Layer: int(v[0]),
				Box:   geom.Rect{X0: v[1], Y0: v[2], X1: v[3], Y1: v[4]},
			})
		case "fixedvia":
			v, err := ints(1, 4)
			if err != nil {
				return nil, err
			}
			d.FixedVias = append(d.FixedVias, FixedVia{
				Net: int(v[0]), Slab: int(v[1]), Center: geom.Pt(v[2], v[3]),
			})
		case "net":
			if len(f) != 6 {
				return nil, fail("expected 'net <id> <kind> <idx> <kind> <idx>'")
			}
			id, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fail("bad net id")
			}
			p1, err := parseRef(f[2], f[3])
			if err != nil {
				return nil, fail(err.Error())
			}
			p2, err := parseRef(f[4], f[5])
			if err != nil {
				return nil, fail(err.Error())
			}
			d.Nets = append(d.Nets, Net{ID: id, P1: p1, P2: p2})
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

func parseRef(kind, idx string) (PadRef, error) {
	i, err := strconv.Atoi(idx)
	if err != nil {
		return PadRef{}, fmt.Errorf("bad pad index %q", idx)
	}
	switch kind {
	case "io":
		return PadRef{IOKind, i}, nil
	case "bump":
		return PadRef{BumpKind, i}, nil
	default:
		return PadRef{}, fmt.Errorf("bad pad kind %q", kind)
	}
}
