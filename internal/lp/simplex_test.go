package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSimple2D(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0
	// (classic Dantzig example; optimum x=2, y=6, obj 36).
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	y := p.AddVar(0, math.Inf(1))
	p.SetObj(x, -3) // minimize −(3x+5y)
	p.SetObj(y, -5)
	p.AddLE([]Term{{x, 1}}, 4)
	p.AddLE([]Term{{y, 2}}, 12)
	p.AddLE([]Term{{x, 3}, {y, 2}}, 18)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.X[x], 2, 1e-8) || !approx(s.X[y], 6, 1e-8) || !approx(s.Obj, -36, 1e-8) {
		t.Errorf("x=%v y=%v obj=%v", s.X[x], s.X[y], s.Obj)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + y = 10, x ≥ 3, y ≥ 2 → obj 10.
	p := NewProblem()
	x := p.AddVar(3, math.Inf(1))
	y := p.AddVar(2, math.Inf(1))
	p.SetObj(x, 1)
	p.SetObj(y, 1)
	p.AddEQ([]Term{{x, 1}, {y, 1}}, 10)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 10, 1e-8) {
		t.Fatalf("status=%v obj=%v", s.Status, s.Obj)
	}
	if s.X[x] < 3-1e-9 || s.X[y] < 2-1e-9 {
		t.Errorf("bounds violated: x=%v y=%v", s.X[x], s.X[y])
	}
}

func TestFreeVariables(t *testing.T) {
	// min |…| style: min x − y s.t. x − y ≥ −5, both free → obj −5.
	p := NewProblem()
	x := p.AddFreeVar()
	y := p.AddFreeVar()
	p.SetObj(x, 1)
	p.SetObj(y, -1)
	p.AddGE([]Term{{x, 1}, {y, -1}}, -5)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -5, 1e-8) {
		t.Errorf("obj = %v, want -5", s.Obj)
	}
	if !approx(s.X[x]-s.X[y], -5, 1e-8) {
		t.Errorf("x-y = %v", s.X[x]-s.X[y])
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x s.t. x ≥ −7 → −7.
	p := NewProblem()
	x := p.AddVar(-7, 100)
	p.SetObj(x, 1)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.X[x], -7, 1e-8) {
		t.Fatalf("status=%v x=%v", s.Status, s.X)
	}
	// max x (min −x) under the same bounds → 100.
	p2 := NewProblem()
	x2 := p2.AddVar(-7, 100)
	p2.SetObj(x2, -1)
	s2 := p2.Solve()
	if s2.Status != Optimal || !approx(s2.X[x2], 100, 1e-8) {
		t.Fatalf("status=%v x=%v", s2.Status, s2.X)
	}
}

func TestUpperBoundOnlyVariable(t *testing.T) {
	// min −x s.t. x ≤ 9 (no lower bound) → x = 9.
	p := NewProblem()
	x := p.AddVar(math.Inf(-1), 9)
	p.SetObj(x, -1)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.X[x], 9, 1e-8) {
		t.Fatalf("status=%v x=%v", s.Status, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	p.AddLE([]Term{{x, 1}}, 3)
	p.AddGE([]Term{{x, 1}}, 5)
	s := p.Solve()
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	y := p.AddVar(0, math.Inf(1))
	p.AddEQ([]Term{{x, 1}, {y, 1}}, 5)
	p.AddEQ([]Term{{x, 1}, {y, 1}}, 7)
	s := p.Solve()
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	p.SetObj(x, -1)
	p.AddGE([]Term{{x, 1}}, 1)
	s := p.Solve()
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP (multiple constraints meeting at the optimum).
	p := NewProblem()
	x := p.AddVar(0, math.Inf(1))
	y := p.AddVar(0, math.Inf(1))
	p.SetObj(x, -1)
	p.SetObj(y, -1)
	p.AddLE([]Term{{x, 1}}, 1)
	p.AddLE([]Term{{y, 1}}, 1)
	p.AddLE([]Term{{x, 1}, {y, 1}}, 2)
	p.AddLE([]Term{{x, 1}, {y, 2}}, 3)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, -2, 1e-8) {
		t.Fatalf("status=%v obj=%v", s.Status, s.Obj)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicated equality rows produce a redundant row in phase 1.
	p := NewProblem()
	x := p.AddVar(0, 10)
	y := p.AddVar(0, 10)
	p.SetObj(x, 1)
	p.SetObj(y, 2)
	p.AddEQ([]Term{{x, 1}, {y, 1}}, 6)
	p.AddEQ([]Term{{x, 2}, {y, 2}}, 12) // same hyperplane
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 6, 1e-8) {
		t.Fatalf("status=%v obj=%v x=%v", s.Status, s.Obj, s.X)
	}
}

func TestDifferenceConstraintChain(t *testing.T) {
	// The layout LP's dominant pattern: difference constraints.
	// min x3 − x0 s.t. x1 − x0 ≥ 2, x2 − x1 ≥ 3, x3 − x2 ≥ 4 → 9.
	p := NewProblem()
	var v [4]VarID
	for i := range v {
		v[i] = p.AddFreeVar()
	}
	p.SetObj(v[3], 1)
	p.SetObj(v[0], -1)
	p.AddGE([]Term{{v[1], 1}, {v[0], -1}}, 2)
	p.AddGE([]Term{{v[2], 1}, {v[1], -1}}, 3)
	p.AddGE([]Term{{v[3], 1}, {v[2], -1}}, 4)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 9, 1e-8) {
		t.Fatalf("status=%v obj=%v", s.Status, s.Obj)
	}
}

func TestWirelengthStylePiece(t *testing.T) {
	// Minimizing c2−c1 with c1 ≤ p ≤ c2 (a wire spanning a fixed point):
	// optimum collapses both onto p.
	p := NewProblem()
	c1 := p.AddFreeVar()
	c2 := p.AddFreeVar()
	p.SetObj(c1, -1)
	p.SetObj(c2, 1)
	p.AddLE([]Term{{c1, 1}}, 42)
	p.AddGE([]Term{{c2, 1}}, 42)
	p.AddGE([]Term{{c2, 1}, {c1, -1}}, 0)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 0, 1e-8) {
		t.Fatalf("status=%v obj=%v", s.Status, s.Obj)
	}
}

func TestValidateErrors(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 1)
	p.AddLE([]Term{{x + 5, 1}}, 1)
	if err := p.Validate(); err == nil {
		t.Error("unknown var must fail validation")
	}
	p2 := NewProblem()
	y := p2.AddVar(0, 1)
	p2.AddLE([]Term{{y, math.NaN()}}, 1)
	if err := p2.Validate(); err == nil {
		t.Error("NaN coefficient must fail validation")
	}
	p3 := NewProblem()
	p3.AddVar(5, 1)
	if err := p3.Validate(); err == nil {
		t.Error("empty bound interval must fail validation")
	}
}

// TestRandomFeasibilityAndOptimality generates random bounded LPs, solves
// them, and verifies (a) the solution satisfies every constraint, and (b)
// no sampled feasible point beats the reported optimum.
func TestRandomFeasibilityAndOptimality(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nv := 2 + rng.Intn(4)
		p := NewProblem()
		vars := make([]VarID, nv)
		lo := make([]float64, nv)
		hi := make([]float64, nv)
		for i := 0; i < nv; i++ {
			lo[i] = float64(rng.Intn(20) - 10)
			hi[i] = lo[i] + float64(1+rng.Intn(20))
			vars[i] = p.AddVar(lo[i], hi[i])
			p.SetObj(vars[i], float64(rng.Intn(21)-10))
		}
		ncons := rng.Intn(6)
		type row struct {
			coef []float64
			op   Op
			rhs  float64
		}
		var rows []row
		for k := 0; k < ncons; k++ {
			coef := make([]float64, nv)
			var terms []Term
			for i := 0; i < nv; i++ {
				c := float64(rng.Intn(7) - 3)
				coef[i] = c
				if c != 0 {
					terms = append(terms, Term{vars[i], c})
				}
			}
			if len(terms) == 0 {
				continue
			}
			// Choose rhs so that the box center is feasible, keeping the
			// instance feasible by construction.
			center := 0.0
			for i := 0; i < nv; i++ {
				center += coef[i] * (lo[i] + hi[i]) / 2
			}
			op := Op(rng.Intn(2)) // LE or GE only (EQ through centers is fine too but keep it simple)
			margin := rng.Float64() * 10
			var rhs float64
			if op == LE {
				rhs = center + margin
			} else {
				rhs = center - margin
			}
			p.AddConstraint(terms, op, rhs)
			rows = append(rows, row{coef, op, rhs})
		}
		s := p.Solve()
		if s.Status != Optimal {
			t.Fatalf("trial %d: status = %v (instance is feasible and bounded by construction)", trial, s.Status)
		}
		// (a) Feasibility.
		for i := 0; i < nv; i++ {
			if s.X[i] < lo[i]-1e-6 || s.X[i] > hi[i]+1e-6 {
				t.Fatalf("trial %d: var %d = %v outside [%v,%v]", trial, i, s.X[i], lo[i], hi[i])
			}
		}
		for ri, r := range rows {
			lhs := 0.0
			for i := 0; i < nv; i++ {
				lhs += r.coef[i] * s.X[i]
			}
			switch r.op {
			case LE:
				if lhs > r.rhs+1e-6 {
					t.Fatalf("trial %d: row %d violated: %v <= %v", trial, ri, lhs, r.rhs)
				}
			case GE:
				if lhs < r.rhs-1e-6 {
					t.Fatalf("trial %d: row %d violated: %v >= %v", trial, ri, lhs, r.rhs)
				}
			}
		}
		// (b) No sampled feasible point does better.
		for sample := 0; sample < 300; sample++ {
			pt := make([]float64, nv)
			for i := 0; i < nv; i++ {
				pt[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			feasible := true
			for _, r := range rows {
				lhs := 0.0
				for i := 0; i < nv; i++ {
					lhs += r.coef[i] * pt[i]
				}
				if (r.op == LE && lhs > r.rhs) || (r.op == GE && lhs < r.rhs) {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			obj := 0.0
			for i := 0; i < nv; i++ {
				obj += p.obj[vars[i]] * pt[i]
			}
			if obj < s.Obj-1e-6 {
				t.Fatalf("trial %d: sampled point beats optimum: %v < %v", trial, obj, s.Obj)
			}
		}
	}
}

func TestProblemReuseAfterSolve(t *testing.T) {
	// The optimizer re-solves the same Problem with extra constraints added
	// between iterations; the Problem must stay valid.
	p := NewProblem()
	x := p.AddVar(0, 100)
	p.SetObj(x, -1)
	s1 := p.Solve()
	if s1.Status != Optimal || !approx(s1.X[x], 100, 1e-8) {
		t.Fatalf("first solve: %v %v", s1.Status, s1.X)
	}
	p.AddLE([]Term{{x, 1}}, 40)
	s2 := p.Solve()
	if s2.Status != Optimal || !approx(s2.X[x], 40, 1e-8) {
		t.Fatalf("second solve: %v %v", s2.Status, s2.X)
	}
}
