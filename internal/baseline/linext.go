// Package baseline implements Lin-ext, the comparison flow of the paper's
// evaluation: the concurrent routing method of Lin et al. (ICCAD'16) —
// a per-chip concentric-circle layer assignment without congestion
// weighting — extended with A*-search sequential routing. Its two
// structural limitations (reproduced faithfully) are:
//
//   - no flexible vias: every net is routed entirely within one wire
//     layer, reaching it through fixed via stacks that punch through all
//     RDLs at the pad positions (committed up front for every net pad);
//   - the concentric-circle model considers only the nets around one chip
//     at a time and ignores fan-out congestion.
package baseline

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
	"rdlroute/internal/mpsc"
	"rdlroute/internal/obs"
	"rdlroute/internal/par"
)

// Options tune the baseline.
type Options struct {
	Pitch   int64
	ViaCost float64

	// Workers bounds the worker pool for the data-parallel parts of the
	// layer assignment (the per-chip incident-net scan). 0 means
	// GOMAXPROCS; results are identical at every value. The concentric
	// DP itself and the A* stages stay sequential — each layer's picks
	// feed the next chip's model.
	Workers int

	// Tracer, when non-nil and enabled, receives the baseline's stage
	// spans (linext-assign / linext-concurrent / linext-sequential), the
	// same per-net "net.route" events as the main flow, and the lattice's
	// astar.* counters. Nil means the zero-overhead Nop tracer.
	Tracer obs.Tracer
}

// DefaultOptions returns the configuration used in the benchmark harness.
func DefaultOptions() Options {
	return Options{Pitch: design.Grid}
}

// Result mirrors the router's metrics for the baseline flow.
type Result struct {
	Layout           *layout.Layout
	Routability      float64
	Wirelength       float64
	RoutedNets       int
	TotalNets        int
	ConcurrentRouted int
	SequentialRouted int
	Runtime          time.Duration
}

// Route runs Lin-ext on the design.
func Route(d *design.Design, opts Options) (*Result, error) {
	return RouteContext(context.Background(), d, opts)
}

// RouteContext is Route with cancellation: the layer-assignment DP and
// every per-net A* search poll ctx, and a fired deadline surfaces as an
// error wrapping context.Canceled or context.DeadlineExceeded.
func RouteContext(ctx context.Context, d *design.Design, opts Options) (*Result, error) {
	start := time.Now()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opts.Pitch == 0 {
		opts.Pitch = design.Grid
	}
	tr := obs.Or(opts.Tracer)
	la, err := lattice.New(d, opts.Pitch)
	if err != nil {
		return nil, err
	}
	la.SetTracer(tr)
	lay := layout.New(d)
	res := &Result{Layout: lay, TotalNets: len(d.Nets)}

	// Fixed via stacks at every net pad, punching down through the RDLs as
	// far as legal (a stack stops where it would collide with a bump pad
	// or an obstacle — the physical structure the previous works assume).
	reach := map[design.PadRef]int{}
	if d.WireLayers > 1 {
		for ni, n := range d.Nets {
			for _, ref := range []design.PadRef{n.P1, n.P2} {
				if ref.Kind != design.IOKind {
					continue
				}
				c := d.IOPads[ref.Index].Center
				r := 0
				for r < d.WireLayers-1 && la.StackFree(c, r, r+1, ni) {
					la.CommitStack(c, r, r+1, ni)
					lay.AddStack(ni, c, r, r+1)
					r++
				}
				reach[ref] = r
			}
		}
	}
	netReach := func(ni int) int {
		n := d.Nets[ni]
		r := d.WireLayers - 1
		for _, ref := range []design.PadRef{n.P1, n.P2} {
			if ref.Kind != design.IOKind {
				continue // bump pads live on the bottom layer directly
			}
			rr, ok := reach[ref]
			if !ok {
				return 0
			}
			if rr < r {
				r = rr
			}
		}
		return r
	}

	end := obs.Stage(tr, "linext-assign", obs.String("design", d.Name))
	assigned, err := concentricAssign(ctx, d, opts.Workers, tr)
	end()
	if err != nil {
		return nil, err
	}

	// Concurrent stage: route each layer's assignment, chip by chip.
	end = obs.Stage(tr, "linext-concurrent")
	routedSet := map[int]bool{}
	for l := 0; l < d.WireLayers; l++ {
		for _, ni := range assigned[l] {
			if err := ctxWrap(ctx); err != nil {
				return nil, err
			}
			if routedSet[ni] {
				continue
			}
			if l > netReach(ni) {
				continue // pad stacks do not reach this layer
			}
			if routeSingleLayer(ctx, d, la, lay, ni, l, opts, tr, "linext-concurrent") {
				routedSet[ni] = true
				res.ConcurrentRouted++
			}
		}
	}
	end(obs.Int("routed", res.ConcurrentRouted))

	// Sequential stage: remaining nets try every layer in turn.
	end = obs.Stage(tr, "linext-sequential")
	var rest []int
	for ni := range d.Nets {
		if !routedSet[ni] {
			rest = append(rest, ni)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		di := directLen(d, rest[i])
		dj := directLen(d, rest[j])
		return di < dj
	})
	for _, ni := range rest {
		if err := ctxWrap(ctx); err != nil {
			return nil, err
		}
		for l := 0; l <= netReach(ni) && l < d.WireLayers; l++ {
			if routeSingleLayer(ctx, d, la, lay, ni, l, opts, tr, "linext-sequential") {
				routedSet[ni] = true
				res.SequentialRouted++
				break
			}
		}
	}
	end(obs.Int("routed", res.SequentialRouted))

	res.RoutedNets = lay.RoutedCount()
	res.Routability = lay.Routability()
	res.Wirelength = lay.Wirelength()
	res.Runtime = time.Since(start)
	if tr.Enabled() {
		tr.Count("linext.nets_total", int64(res.TotalNets))
		tr.Count("linext.nets_routed", int64(res.RoutedNets))
		tr.Event("route.done",
			obs.String("design", d.Name),
			obs.String("flow", "linext"),
			obs.Float("routability", res.Routability),
			obs.Float("wirelength", res.Wirelength),
			obs.Float("runtime_ms", float64(res.Runtime.Nanoseconds())/1e6))
	}
	return res, nil
}

// ctxWrap returns ctx's error wrapped for the baseline flow, or nil.
func ctxWrap(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return nil
}

func directLen(d *design.Design, ni int) float64 {
	n := d.Nets[ni]
	return geom.OctDist(d.PadCenter(n.P1), d.PadCenter(n.P2))
}

// routeSingleLayer routes a net entirely on one wire layer (its pads reach
// the layer through their fixed stacks). Chip-to-board nets terminate on a
// bump pad and therefore only route on the bottom layer.
func routeSingleLayer(ctx context.Context, d *design.Design, la *lattice.Lattice, lay *layout.Layout, ni, l int, opts Options, tr obs.Tracer, stage string) bool {
	n := d.Nets[ni]
	if n.P1.Kind != design.IOKind {
		return false
	}
	if n.P2.Kind == design.BumpKind && l != d.WireLayers-1 {
		return false
	}
	from := d.IOPads[n.P1.Index].Center
	to := d.PadCenter(n.P2)
	mask := make([]bool, d.WireLayers)
	mask[l] = true
	var st lattice.SearchStats
	req := lattice.Request{
		Net: ni, From: from, To: to,
		FromLayer: l, ToLayer: l,
		LayerMask: mask, ViaCost: opts.ViaCost,
		Ctx: ctx,
	}
	if tr.Enabled() {
		req.Stats = &st
	}
	path, _, ok := la.Route(req)
	if !ok {
		return false
	}
	la.Commit(path, ni)
	lay.AddPath(ni, path)
	lay.MarkRouted(ni)
	if tr.Enabled() {
		wl := 0.0
		for k := 0; k+1 < len(path); k++ {
			wl += geom.OctDist(path[k].Pt, path[k+1].Pt)
		}
		tr.Event("net.route",
			obs.Int("net", ni),
			obs.String("stage", stage),
			obs.String("mode", "layer"),
			obs.Int("layer", l),
			obs.String("outcome", "routed"),
			obs.Int("expanded", st.NodesExpanded),
			obs.Int("visited", st.NodesVisited),
			obs.Int("steps", len(path)),
			obs.Float("wl", wl))
	}
	return true
}

// concentricAssign performs the per-chip concentric-circle layer
// assignment: for each wire layer, walk the chips and pick a maximum
// planar subset of that chip's unassigned nets on a circular model ordered
// by angle around the chip center (unweighted — Lin's model has no
// congestion term). The per-chip incident-net scan (which nets touch
// which chip, at what angles) does not depend on the evolving done set,
// so it is precomputed once with the worker pool; the DP walk over
// layers × chips stays sequential because each pick feeds the next model.
func concentricAssign(ctx context.Context, d *design.Design, workers int, tr obs.Tracer) ([][]int, error) {
	incident, err := par.Map(ctx, workers, len(d.Chips), func(chip int) ([]chipEv, error) {
		center := d.Chips[chip].Box.Center()
		var evs []chipEv
		for ni, n := range d.Nets {
			if !n.InterChip() {
				continue
			}
			p1 := d.IOPads[n.P1.Index]
			p2 := d.IOPads[n.P2.Index]
			if p1.Chip != chip && p2.Chip != chip {
				continue
			}
			// Endpoint angles on the chip's concentric circle: the pad on
			// this chip by its own angle, the far pad by its direction from
			// the chip center.
			evs = append(evs, chipEv{ni, angleOf(center, p1.Center), len(evs)})
			evs = append(evs, chipEv{ni, angleOf(center, p2.Center), len(evs)})
		}
		return evs, nil
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	assigned := make([][]int, d.WireLayers)
	done := map[int]bool{}
	for l := 0; l < d.WireLayers; l++ {
		for chip := range d.Chips {
			picked, err := planarAroundChip(ctx, incident[chip], done, tr, l, chip)
			if err != nil {
				return nil, err
			}
			for _, ni := range picked {
				done[ni] = true
				assigned[l] = append(assigned[l], ni)
			}
		}
	}
	return assigned, nil
}

// chipEv is one net endpoint on a chip's concentric circle.
type chipEv struct {
	net   int
	angle float64
	seq   int
}

// planarAroundChip builds the chip's circular model from its precomputed
// incident endpoints and returns a maximum planar subset of its incident
// unassigned nets.
func planarAroundChip(ctx context.Context, all []chipEv, done map[int]bool, tr obs.Tracer, layer, chip int) ([]int, error) {
	var evs []chipEv
	for _, e := range all {
		if !done[e.net] {
			evs = append(evs, e)
		}
	}
	if len(evs) == 0 {
		return nil, nil
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].angle != evs[j].angle {
			return evs[i].angle < evs[j].angle
		}
		return evs[i].seq < evs[j].seq
	})
	pos := map[int][]int{}
	for i, e := range evs {
		pos[e.net] = append(pos[e.net], i)
	}
	var chords []mpsc.Chord
	for net, ps := range pos {
		if len(ps) != 2 {
			continue
		}
		chords = append(chords, mpsc.Chord{A: ps[0], B: ps[1], W: 1, Tag: net})
	}
	sort.Slice(chords, func(i, j int) bool { return chords[i].Tag < chords[j].Tag })
	picked, _, err := mpsc.MaxPlanarSubsetTracedCtx(ctx, len(evs), chords, tr,
		obs.Int("layer", layer), obs.Int("chip", chip))
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var out []int
	for _, ci := range picked {
		out = append(out, chords[ci].Tag)
	}
	sort.Ints(out)
	return out, nil
}

func angleOf(p, q geom.Point) float64 {
	return math.Atan2(float64(q.Y-p.Y), float64(q.X-p.X))
}
