package qa

import (
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/layout"
)

// formatDesign renders d as its text netlist for byte-level comparison.
func formatDesign(t *testing.T, d *design.Design) string {
	t.Helper()
	var b strings.Builder
	if err := design.Format(&b, d); err != nil {
		t.Fatalf("format %s: %v", d.Name, err)
	}
	return b.String()
}

// TestGenerateDeterministic: the same seed must produce the identical
// design, byte for byte — seed replay is the harness's whole debugging
// story.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 2, 17, 123, 1236} {
		a := formatDesign(t, Generate(seed))
		b := formatDesign(t, Generate(seed))
		if a != b {
			t.Errorf("seed %d generated two different designs", seed)
		}
	}
}

// TestGenerateValidAndClean: every generated instance passes Validate and
// its unrouted layout is DRC-clean, so any violation the oracles find
// later was introduced by a router, never by the generator. The sweep
// also asserts the generator actually exercises its diversity knobs:
// multiple spacing rules and both design families must appear.
func TestGenerateValidAndClean(t *testing.T) {
	spacings := map[int64]bool{}
	families := map[bool]bool{}
	for seed := int64(0); seed < 60; seed++ {
		d := Generate(seed)
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: invalid design: %v", seed, err)
		}
		if vs := drc.Check(layout.New(d)); len(vs) != 0 {
			t.Errorf("seed %d: unrouted layout has %d violations: %v", seed, len(vs), vs[0])
		}
		if len(d.Nets) == 0 {
			t.Errorf("seed %d: design has no nets", seed)
		}
		spacings[d.Rules.Spacing] = true
		families[strings.HasPrefix(d.Name, "qa-adv-")] = true
	}
	if len(spacings) < 2 {
		t.Errorf("60 seeds produced only spacing rules %v", spacings)
	}
	if len(families) < 2 {
		t.Error("60 seeds produced only one design family")
	}
}
