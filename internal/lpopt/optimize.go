package lpopt

import (
	"context"
	"math"
	"sort"

	"rdlroute/internal/geom"
	"rdlroute/internal/obs"
)

// Options tune the optimizer.
type Options struct {
	// MaxIters bounds the iterative-solving repair loop (the paper
	// observes ≤ 50 on its largest benchmark).
	MaxIters int
	// MaxComponentVars marks constraint components larger than this as
	// oversize in the stats; they are still optimized via the
	// coordinate-descent path rather than one joint LP.
	MaxComponentVars int
	// NearRadius seeds interactive constraints for entity pairs within
	// this initial distance. Zero means 4 lattice pitches.
	NearRadius int64
	// MoveVias also makes via centers LP variables (paper Fig. 8a). Off by
	// default: via-anchored expressions chain several variables, whose
	// accumulated integer-rounding error cannot be bounded by the
	// monotonicity margins on dense layouts; with vias frozen the rounding
	// error per route delta is provably within margin.
	MoveVias bool
	// Tracer, when enabled, receives one "lp.iter" event per repair-loop
	// iteration (objective value, residual violations, reverted
	// components) — the convergence curve of Section III-E-4.
	Tracer obs.Tracer
	// Ctx, when non-nil, cancels the optimization: the repair loop polls it
	// between components and the simplex pivot loops poll it mid-solve.
	// A cancelled Optimize returns with Cancelled set and the layout
	// untouched (write-back only happens on a completed run).
	Ctx context.Context
}

// Stats reports what the optimizer did.
type Stats struct {
	Iterations int
	Components int
	Oversize   int // components beyond MaxComponentVars (descent path)
	Reverted   int // components reverted to initial geometry
	Before     float64
	After      float64
	Cancelled  bool // Options.Ctx fired; the layout was left untouched
}

// Required center-based clearances, matching the lattice's occupancy model.
func (m *model) reqWireWire() float64 {
	return float64(m.lay.D.Rules.Spacing + m.lay.D.Rules.WireWidth)
}
func (m *model) reqWireVia() float64 {
	return float64(m.lay.D.Rules.Spacing + m.lay.D.Rules.WireWidth/2 + m.lay.D.Rules.ViaWidth/2)
}
func (m *model) reqViaVia() float64 {
	return float64(m.lay.D.Rules.Spacing + m.lay.D.Rules.ViaWidth)
}
func (m *model) reqWireFixed() float64 {
	return float64(m.lay.D.Rules.Spacing + m.lay.D.Rules.WireWidth/2)
}
func (m *model) reqViaFixed() float64 {
	return float64(m.lay.D.Rules.Spacing + m.lay.D.Rules.ViaWidth/2)
}

// entity is one movable or fixed component for interactive constraints.
type entity struct {
	net    int
	layers []int    // wire layers the entity occupies
	pts    []pointE // symbolic defining points (1 for vias, 2 for segments)
	isVia  bool
	fixed  *fixedShape // non-nil for design shapes (pts empty)
	vars   []int       // global vars appearing in pts
}

// axes lists the four canonical separation axes.
var axes = [4]axis{axisX, axisY, axisS, axisD}

// interval returns the entity's [lo, hi] projection on the axis under the
// given variable assignment.
func (e *entity) interval(ax axis, vals []float64) (lo, hi float64) {
	if e.fixed != nil {
		o := e.fixed.oct
		switch ax {
		case axisX:
			return float64(o.XLo), float64(o.XHi)
		case axisY:
			return float64(o.YLo), float64(o.YHi)
		case axisS:
			return float64(o.SLo), float64(o.SHi)
		default:
			return float64(o.DLo), float64(o.DHi)
		}
	}
	lo = math.Inf(1)
	hi = math.Inf(-1)
	for _, p := range e.pts {
		v := p.along(ax).eval(vals)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return
}

// required returns the center-based clearance between two entities.
func (m *model) required(a, b *entity) float64 {
	switch {
	case a.fixed != nil || b.fixed != nil:
		mov := a
		if a.fixed != nil {
			mov = b
		}
		if mov.isVia {
			return m.reqViaFixed()
		}
		return m.reqWireFixed()
	case a.isVia && b.isVia:
		return m.reqViaVia()
	case a.isVia != b.isVia:
		return m.reqWireVia()
	default:
		return m.reqWireWire()
	}
}

// sharedLayer reports whether the entities occupy a common wire layer.
func sharedLayer(a, b *entity) bool {
	for _, la := range a.layers {
		for _, lb := range b.layers {
			if la == lb {
				return true
			}
		}
	}
	return false
}

// collectEntities builds the entity table from the model.
func (m *model) collectEntities() []*entity {
	var out []*entity
	varsOf := func(pts []pointE) []int {
		seen := map[int]bool{}
		var vs []int
		for _, p := range pts {
			for _, e := range []expr{p.x, p.y} {
				for _, t := range e.t {
					if !seen[t.v] {
						seen[t.v] = true
						vs = append(vs, t.v)
					}
				}
			}
		}
		return vs
	}
	for ri := range m.routes {
		mr := &m.routes[ri]
		pts := mr.points()
		for k := range mr.orients {
			segPts := []pointE{pts[k], pts[k+1]}
			out = append(out, &entity{
				net:    mr.net,
				layers: []int{mr.layer},
				pts:    segPts,
				vars:   varsOf(segPts),
			})
		}
	}
	for ci := range m.cols {
		col := &m.cols[ci]
		layerSet := map[int]bool{}
		for _, vi := range col.viaIdxs {
			layerSet[m.lay.Vias[vi].Slab] = true
			layerSet[m.lay.Vias[vi].Slab+1] = true
		}
		var layers []int
		for l := range layerSet {
			layers = append(layers, l)
		}
		sort.Ints(layers)
		p := col.point()
		ent := &entity{
			net:    col.net,
			layers: layers,
			pts:    []pointE{p},
			isVia:  true,
			vars:   varsOf([]pointE{p}),
		}
		out = append(out, ent)
	}
	for l := range m.fixedShapes {
		for i := range m.fixedShapes[l] {
			fs := &m.fixedShapes[l][i]
			out = append(out, &entity{
				net:    fs.net,
				layers: []int{l},
				fixed:  fs,
			})
		}
	}
	return out
}

// bestAxis returns the axis and direction with maximum slack separating a
// below b (dir=+1 means a's interval is below b's on that axis).
func bestAxis(a, b *entity, req float64, vals []float64) (ax axis, aBelow bool, slack float64) {
	slack = math.Inf(-1)
	for _, cand := range axes {
		m := req * cand.norm()
		aLo, aHi := a.interval(cand, vals)
		bLo, bHi := b.interval(cand, vals)
		if s := bLo - aHi - m; s > slack {
			slack = s
			ax = cand
			aBelow = true
		}
		if s := aLo - bHi - m; s > slack {
			slack = s
			ax = cand
			aBelow = false
		}
	}
	return
}

// addSeparation adds the interactive constraints separating a below b (or
// b below a) on the axis with margin ceil(req·norm)+pad, rounded up to an
// even integer so even-integer rounding of the solution cannot break the
// constraint by parity.
func (m *model) addSeparation(a, b *entity, ax axis, aBelow bool, req float64, pad float64) {
	if !aBelow {
		a, b = b, a
	}
	margin := math.Ceil(req*ax.norm()) + pad
	margin = 2 * math.Ceil(margin/2)
	// Every defining point of a stays below every defining point of b.
	// Fixed entities contribute their exact octagon bound as a constant.
	aExprs := pointAxisExprs(a, ax, true)
	bExprs := pointAxisExprs(b, ax, false)
	for _, ea := range aExprs {
		for _, eb := range bExprs {
			m.sepCons(ea, eb, margin)
		}
	}
}

// pointAxisExprs returns the axis expressions of the entity's defining
// points; for fixed shapes, the single relevant bound (hi when the shape
// is "below", lo when "above").
func pointAxisExprs(e *entity, ax axis, isLower bool) []expr {
	if e.fixed != nil {
		o := e.fixed.oct
		var v int64
		switch ax {
		case axisX:
			v = o.XHi
			if !isLower {
				v = o.XLo
			}
		case axisY:
			v = o.YHi
			if !isLower {
				v = o.YLo
			}
		case axisS:
			v = o.SHi
			if !isLower {
				v = o.SLo
			}
		default:
			v = o.DHi
			if !isLower {
				v = o.DLo
			}
		}
		return []expr{constExpr(float64(v))}
	}
	var out []expr
	for _, p := range e.pts {
		out = append(out, p.along(ax))
	}
	return out
}

// movable reports whether the entity has any variables.
func (e *entity) movable() bool { return len(e.vars) > 0 }

// bboxOf returns the entity's current bounding box (for bucketing).
func (e *entity) bboxOf(vals []float64) geom.Rect {
	if e.fixed != nil {
		return e.fixed.oct.BBox()
	}
	xLo, xHi := e.interval(axisX, vals)
	yLo, yHi := e.interval(axisY, vals)
	return geom.Rect{X0: int64(xLo), Y0: int64(yLo), X1: int64(math.Ceil(xHi)), Y1: int64(math.Ceil(yHi))}
}

// pairKey identifies an unordered entity pair.
type pairKey struct{ a, b int }

func mkPair(i, j int) pairKey {
	if i > j {
		i, j = j, i
	}
	return pairKey{i, j}
}

// nearPairs returns candidate entity pairs within radius under vals.
func nearPairs(ents []*entity, vals []float64, radius int64) []pairKey {
	cell := radius * 2
	if cell <= 0 {
		cell = 64
	}
	type bkey struct {
		l      int
		bx, by int64
	}
	buckets := map[bkey][]int{}
	for i, e := range ents {
		bb := e.bboxOf(vals).Expand(radius)
		for _, l := range e.layers {
			for bx := floorDiv(bb.X0, cell); bx <= floorDiv(bb.X1, cell); bx++ {
				for by := floorDiv(bb.Y0, cell); by <= floorDiv(bb.Y1, cell); by++ {
					k := bkey{l, bx, by}
					buckets[k] = append(buckets[k], i)
				}
			}
		}
	}
	seen := map[pairKey]bool{}
	var out []pairKey
	for _, ids := range buckets {
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				i, j := ids[x], ids[y]
				a, b := ents[i], ents[j]
				if a.net == b.net && a.net >= 0 {
					continue
				}
				if !a.movable() && !b.movable() {
					continue
				}
				if !sharedLayer(a, b) {
					continue
				}
				k := mkPair(i, j)
				if seen[k] {
					continue
				}
				if !a.bboxOf(vals).Expand(radius).Intersects(b.bboxOf(vals)) {
					continue
				}
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
