package drc

import (
	"testing"

	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
)

// TestSpacingBoundary pins the checker's strict-inequality contract at
// the exact rule boundary: a gap of exactly s is clean, a gap of s−1 is a
// spacing violation, and a gap of 0 is reported as a crossing. Every
// lattice clearance radius in the router is derived against this
// predicate, so the boundary must not drift.
func TestSpacingBoundary(t *testing.T) {
	const s, w = 5, 4 // dsn()'s rules: spacing 5, wire width 4
	tests := []struct {
		name string
		gap  int64 // polygon gap between the two wires' edges
		kind string
		want int // violations expected between the two nets
	}{
		{name: "gap exactly s is clean", gap: s, want: 0},
		{name: "gap s-1 violates", gap: s - 1, kind: "spacing", want: 1},
		{name: "gap 0 is a crossing", gap: 0, kind: "crossing", want: 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			l := layout.New(dsn())
			l.AddPath(0, []lattice.PathStep{
				{Layer: 0, Pt: geom.Pt(48, 100)}, {Layer: 0, Pt: geom.Pt(480, 100)},
			})
			// Parallel wire: center distance = wire width + desired gap.
			y := int64(100) + w + tc.gap
			l.AddPath(1, []lattice.PathStep{
				{Layer: 0, Pt: geom.Pt(48, y)}, {Layer: 0, Pt: geom.Pt(480, y)},
			})
			vs := Check(l)
			if len(vs) != tc.want {
				t.Fatalf("gap %d: %d violations %v, want %d", tc.gap, len(vs), vs, tc.want)
			}
			if tc.want > 0 && kinds(vs)[tc.kind] != tc.want {
				t.Errorf("gap %d: violation kinds %v, want %d %s", tc.gap, kinds(vs), tc.want, tc.kind)
			}
		})
	}
}

// TestSpacingBoundaryWireVia runs the same boundary against a via
// octagon: the via's flat side faces the wire, so the polygon gap is the
// center offset minus via half-width minus wire half-width.
func TestSpacingBoundaryWireVia(t *testing.T) {
	const s, w, v = 5, 4, 16
	tests := []struct {
		name string
		gap  int64
		want int
	}{
		{name: "gap exactly s is clean", gap: s, want: 0},
		{name: "gap s-1 violates", gap: s - 1, want: 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			l := layout.New(dsn())
			l.AddPath(0, []lattice.PathStep{
				{Layer: 0, Pt: geom.Pt(48, 100)}, {Layer: 0, Pt: geom.Pt(480, 100)},
			})
			// Net 1's via below wire 0: centers differ in y only, so the
			// octagon's flat bottom faces the wire's top edge.
			y := int64(100) + w/2 + tc.gap + v/2
			l.Vias = append(l.Vias, layout.Via{
				Net: 1, Slab: 0, Center: geom.Pt(240, y), Width: v,
			})
			vs := Check(l)
			if len(vs) != tc.want {
				t.Fatalf("gap %d: %d violations %v, want %d", tc.gap, len(vs), vs, tc.want)
			}
		})
	}
}
