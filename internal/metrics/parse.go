package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string            // full sample name (may carry _bucket/_sum/_count suffixes)
	Labels map[string]string // nil when the line has no labels
	Value  float64
}

// Family is one parsed metric family: its TYPE, HELP and samples in
// input order.
type Family struct {
	Name    string
	Kind    Kind
	Help    string
	Samples []Sample
}

// ParseText parses the Prometheus text exposition format (the subset
// WriteText produces plus untyped samples), validating line syntax,
// label quoting and numeric values. It returns families keyed by name.
// verify.sh's smoke gate uses it to hold /metrics output to the format.
func ParseText(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	// base strips histogram sample suffixes so bucket lines attach to
	// their TYPE'd family.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.Kind == KindHistogram {
					return trimmed
				}
			}
		}
		return name
	}
	famFor := func(name string) *Family {
		name = base(name)
		f, ok := fams[name]
		if !ok {
			f = &Family{Name: name}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		errf := func(format string, args ...any) error {
			return fmt.Errorf("metrics: line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				return nil, errf("invalid metric name %q", name)
			}
			f := famFor(name)
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, errf("TYPE line without a type")
				}
				switch Kind(fields[3]) {
				case KindCounter, KindGauge, KindHistogram, Kind("summary"), Kind("untyped"):
					f.Kind = Kind(fields[3])
				default:
					return nil, errf("unknown metric type %q", fields[3])
				}
			} else if len(fields) == 4 {
				f.Help = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, errf("%v", err)
		}
		f := famFor(s.Name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return fams, nil
}

// parseSample parses one `name{l="v",...} value` line.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	// A timestamp may follow the value; take the first field.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{name="value",...}` block, returning the rest of
// the line after the closing brace.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", name)
		}
		val, tail, err := parseQuoted(rest)
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %v", name, err)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val
		rest = tail
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
}

// parseQuoted consumes a double-quoted, backslash-escaped string.
func parseQuoted(in string) (string, string, error) {
	var sb strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case 'n':
				sb.WriteByte('\n')
			case '\\', '"':
				sb.WriteByte(in[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		case '"':
			return sb.String(), in[i+1:], nil
		default:
			sb.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

// parseValue parses a sample value, including the ±Inf and NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Sample returns the first sample in the family whose labels are a
// superset of want (nil want matches the first sample), and whether one
// exists.
func (f *Family) Sample(want map[string]string) (Sample, bool) {
	for _, s := range f.Samples {
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return Sample{}, false
}

// Names returns the sorted family names (a convenience for gates and
// pretty-printers).
func Names(fams map[string]*Family) []string {
	out := make([]string, 0, len(fams))
	for n := range fams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
