// Ablation study: routes the dense1 benchmark with each of the paper's
// design choices disabled in turn — Eq. (2) chord weights, the LP
// optimization stage, stage-3 via insertion, and the whole concurrent
// stage — quantifying what each contributes (Section IV's analysis).
package main

import (
	"fmt"
	"log"

	"rdlroute"
)

func main() {
	d, err := rdlroute.GenerateBenchmark("dense1")
	if err != nil {
		log.Fatal(err)
	}

	rows := []struct {
		label string
		mut   func(*rdlroute.Options)
	}{
		{"full flow (paper)", func(o *rdlroute.Options) {}},
		{"unweighted MPSC", func(o *rdlroute.Options) { o.UseWeights = false }},
		{"no LP optimization", func(o *rdlroute.Options) { o.EnableLP = false }},
		{"no via insertion", func(o *rdlroute.Options) { o.EnableVias = false }},
		{"no concurrent stage", func(o *rdlroute.Options) { o.EnableStage2 = false }},
	}
	fmt.Printf("%-22s %12s %12s %10s %8s\n", "configuration", "routability", "wirelength", "runtime", "drc")
	for _, row := range rows {
		opts := rdlroute.DefaultOptions()
		row.mut(&opts)
		res, err := rdlroute.Route(d, opts)
		if err != nil {
			log.Fatal(err)
		}
		status := "clean"
		if vs := rdlroute.Check(res.Layout); len(vs) > 0 {
			status = fmt.Sprintf("%d bad", len(vs))
		}
		fmt.Printf("%-22s %11.1f%% %12.0f %10v %8s\n",
			row.label, res.Routability, res.Wirelength, res.Runtime.Round(1e6), status)
	}
}
