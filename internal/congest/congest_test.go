package congest

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
	"rdlroute/internal/lattice"
	"rdlroute/internal/layout"
)

func dsn() *design.Design {
	return &design.Design{
		Name:       "c",
		Outline:    geom.RectWH(0, 0, 400, 400),
		WireLayers: 2,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
	}
}

func TestEmptyLayoutZero(t *testing.T) {
	m := Build(layout.New(dsn()), 4)
	for l := 0; l < 2; l++ {
		if _, _, u := m.Peak(l); u != 0 {
			t.Errorf("layer %d peak = %v on empty layout", l, u)
		}
	}
}

func TestSingleWireUtilization(t *testing.T) {
	l := layout.New(dsn())
	// Horizontal wire across the middle of the bottom-left cell only:
	// cell is 200×200 (2×2 grid), wire spans x 0..200 at y=100.
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(0, 100)},
		{Layer: 0, Pt: geom.Pt(200, 100)},
	})
	m := Build(l, 2)
	// Utilization = len·pitch/area = 200·9/40000 = 0.045.
	got := m.Utilization(0, 0, 0)
	if math.Abs(got-0.045) > 1e-9 {
		t.Errorf("utilization = %v, want 0.045", got)
	}
	// The other cells stay empty.
	if m.Utilization(0, 1, 1) != 0 || m.Utilization(1, 0, 0) != 0 {
		t.Error("wire leaked into wrong cells/layers")
	}
}

func TestSegmentSplitAcrossCells(t *testing.T) {
	l := layout.New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(100, 100)},
		{Layer: 0, Pt: geom.Pt(300, 100)}, // crosses the x=200 cell border
	})
	m := Build(l, 2)
	left := m.Utilization(0, 0, 0)
	right := m.Utilization(0, 1, 0)
	if math.Abs(left-right) > 1e-9 {
		t.Errorf("split should be even: %v vs %v", left, right)
	}
	total := (left + right) * 40000 / 9
	if math.Abs(total-200) > 1e-6 {
		t.Errorf("total length = %v, want 200", total)
	}
}

func TestDiagonalLength(t *testing.T) {
	l := layout.New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 1, Pt: geom.Pt(0, 0)},
		{Layer: 1, Pt: geom.Pt(100, 100)},
	})
	m := Build(l, 1)
	got := m.Utilization(1, 0, 0) * 400 * 400 / 9
	if math.Abs(got-100*geom.Sqrt2) > 1e-6 {
		t.Errorf("diagonal length = %v, want %v", got, 100*geom.Sqrt2)
	}
}

func TestPeakAndMean(t *testing.T) {
	l := layout.New(dsn())
	for i := 0; i < 5; i++ {
		y := int64(40 + 12*i)
		l.AddPath(i, []lattice.PathStep{
			{Layer: 0, Pt: geom.Pt(0, y)},
			{Layer: 0, Pt: geom.Pt(190, y)},
		})
	}
	m := Build(l, 2)
	cx, cy, u := m.Peak(0)
	if cx != 0 || cy != 0 {
		t.Errorf("peak cell = (%d,%d), want (0,0)", cx, cy)
	}
	if u <= 0 || m.Mean(0) <= 0 || m.Mean(0) > u {
		t.Errorf("peak %v / mean %v inconsistent", u, m.Mean(0))
	}
}

func TestRender(t *testing.T) {
	l := layout.New(dsn())
	l.AddPath(0, []lattice.PathStep{
		{Layer: 0, Pt: geom.Pt(0, 150)},
		{Layer: 0, Pt: geom.Pt(400, 150)},
	})
	var buf bytes.Buffer
	m := Build(l, 4)
	if err := m.Render(&buf, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("render lines = %d: %q", len(lines), buf.String())
	}
	// The wire is at y=100 → second cell row from the bottom → second line
	// from the bottom of the map body must be the non-blank one.
	if strings.TrimSpace(lines[3]) == "" {
		t.Error("expected congestion in the second row from the bottom")
	}
	if strings.TrimSpace(lines[1]) != "" {
		t.Error("top rows should be empty")
	}
}
