package qa

import (
	"context"
	"strings"

	"rdlroute/internal/design"
	"rdlroute/internal/par"
)

// Config parameterizes a harness run.
type Config struct {
	N    int   // number of random designs to generate and check
	Seed int64 // base seed; design i replays as Seed+i

	// Suite selects the oracle families beyond the core gates; the zero
	// value runs core-only, FullSuite() everything.
	Suite Suite

	// LPChecks runs this many revised-vs-dense simplex differential
	// checks on random LPs (seeded from the same base). Negative means
	// one per design.
	LPChecks int

	// Shrink minimizes each failing design to a smaller reproducer and
	// attaches its netlist to the failure report.
	Shrink bool

	// Parallel bounds the worker pool checking designs (0 = GOMAXPROCS,
	// 1 = sequential). Each design is generated, routed and checked from
	// its own seed with no shared state, and the report is merged in seed
	// order, so the Report is identical at every value. Log lines are
	// emitted in seed order once the sweep's designs resolve.
	Parallel int

	// Log, when non-nil, receives one progress line per design.
	Log func(format string, args ...any)
}

// designOutcome is one design's slot in the parallel sweep, merged in
// seed order.
type designOutcome struct {
	stats   CheckStats
	name    string
	failure *SeedFailure
}

// Run generates cfg.N seeded random designs and checks each against the
// oracle suite; design i uses seed cfg.Seed+i, so any failing design is
// replayed by a 1-design run at the printed seed. It then runs the LP
// differential checks. Everything is deterministic in cfg.Seed except the
// cancellation oracle's abort point, whose property must hold at any
// abort point.
func Run(cfg Config) Report {
	if cfg.N <= 0 {
		cfg.N = 1
	}
	lpChecks := cfg.LPChecks
	if lpChecks < 0 {
		lpChecks = cfg.N
	}
	outcomes, _ := par.Map(context.Background(), cfg.Parallel, cfg.N, func(i int) (designOutcome, error) {
		seed := cfg.Seed + int64(i)
		d := Generate(seed)
		st, fails := CheckDesign(d, seed, cfg.Suite)
		out := designOutcome{stats: st, name: d.Name}
		if len(fails) > 0 {
			sf := SeedFailure{Seed: seed, Failures: fails}
			if cfg.Shrink {
				sf.MinimalNetlist, sf.MinimalNets, sf.MinimalFailure = shrinkFailure(d, seed, cfg.Suite)
			}
			out.failure = &sf
		}
		return out, nil
	})
	var rep Report
	for i, out := range outcomes {
		rep.Designs++
		rep.Nets += out.stats.Nets
		rep.Routed += out.stats.FlowRouted
		rep.Baseline += out.stats.BaseRouted
		if cfg.Log != nil {
			status := "ok"
			if out.failure != nil {
				status = "FAIL"
			}
			cfg.Log("qa: seed %d design %q nets %d flow %d linext %d %s",
				cfg.Seed+int64(i), out.name, out.stats.Nets, out.stats.FlowRouted, out.stats.BaseRouted, status)
		}
		if out.failure != nil {
			rep.Failures = append(rep.Failures, *out.failure)
		}
	}
	lpFails, _ := par.Map(context.Background(), cfg.Parallel, lpChecks, func(i int) (*SeedFailure, error) {
		seed := cfg.Seed + int64(i)
		if fails := CheckLPAgreement(seed); len(fails) > 0 {
			return &SeedFailure{Seed: seed, Failures: fails}, nil
		}
		return nil, nil
	})
	for _, sf := range lpFails {
		if sf != nil {
			rep.Failures = append(rep.Failures, *sf)
		}
	}
	return rep
}

// shrinkFailure minimizes d against "still fails any oracle" and renders
// the reproducer as a text netlist.
func shrinkFailure(d *design.Design, seed int64, suite Suite) (netlist string, nets int, oracle string) {
	min := Shrink(d, func(c *design.Design) bool {
		_, fails := CheckDesign(c, seed, suite)
		if len(fails) > 0 {
			oracle = fails[0].Oracle
			return true
		}
		return false
	})
	var b strings.Builder
	if err := design.Format(&b, min); err != nil {
		return "", len(min.Nets), oracle
	}
	return b.String(), len(min.Nets), oracle
}
