package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrient(t *testing.T) {
	cases := []struct {
		s Segment
		o Orient
	}{
		{Seg(Pt(0, 0), Pt(5, 0)), OrientH},
		{Seg(Pt(0, 0), Pt(0, 5)), OrientV},
		{Seg(Pt(0, 0), Pt(5, 5)), OrientD45},
		{Seg(Pt(5, 5), Pt(0, 0)), OrientD45},
		{Seg(Pt(0, 5), Pt(5, 0)), OrientD135},
		{Seg(Pt(0, 0), Pt(0, 0)), OrientNone},
		{Seg(Pt(0, 0), Pt(3, 5)), OrientNone},
	}
	for _, c := range cases {
		if got := c.s.Orient(); got != c.o {
			t.Errorf("%v.Orient() = %v, want %v", c.s, got, c.o)
		}
	}
}

func TestOrientCValue(t *testing.T) {
	p := Pt(3, 7)
	if OrientH.CValue(p) != 7 {
		t.Error("H c-value")
	}
	if OrientV.CValue(p) != 3 {
		t.Error("V c-value")
	}
	if OrientD45.CValue(p) != 4 { // y-x
		t.Error("D45 c-value")
	}
	if OrientD135.CValue(p) != 10 { // x+y
		t.Error("D135 c-value")
	}
}

func TestSegmentContainsPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	if !s.ContainsPoint(Pt(5, 5)) || !s.ContainsPoint(Pt(0, 0)) || !s.ContainsPoint(Pt(10, 10)) {
		t.Error("on-segment points")
	}
	if s.ContainsPoint(Pt(11, 11)) || s.ContainsPoint(Pt(5, 6)) {
		t.Error("off-segment points")
	}
}

func TestIntersectClassification(t *testing.T) {
	cases := []struct {
		name string
		s, u Segment
		want IntersectKind
	}{
		{"proper X", Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), ProperCross},
		{"disjoint parallel", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 5), Pt(10, 5)), NoIntersection},
		{"shared endpoint", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(10, 10)), Touch},
		{"T touch interior", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(5, 8)), Touch},
		{"collinear overlap", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(15, 0)), OverlapCollinear},
		{"collinear point touch", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(10, 0), Pt(20, 0)), Touch},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(11, 0), Pt(20, 0)), NoIntersection},
		{"vertical collinear overlap", Seg(Pt(0, 0), Pt(0, 10)), Seg(Pt(0, 5), Pt(0, 25)), OverlapCollinear},
		{"diagonal proper", Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 6), Pt(10, 4)), ProperCross},
		{"near miss", Seg(Pt(0, 0), Pt(4, 4)), Seg(Pt(0, 10), Pt(10, 0)), NoIntersection},
	}
	for _, c := range cases {
		if got := c.s.Intersect(c.u); got != c.want {
			t.Errorf("%s: Intersect = %v, want %v", c.name, got, c.want)
		}
		if got := c.u.Intersect(c.s); got != c.want {
			t.Errorf("%s (swapped): Intersect = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCrosses(t *testing.T) {
	// Shared endpoint only: not a crossing (net joints).
	a := Seg(Pt(0, 0), Pt(10, 0))
	b := Seg(Pt(10, 0), Pt(20, 5))
	if a.Crosses(b) {
		t.Error("shared endpoint should not cross")
	}
	// Interior touch: crossing.
	c := Seg(Pt(5, -5), Pt(5, 0))
	if !a.Crosses(c) {
		t.Error("interior T-touch should cross")
	}
	// Proper cross.
	d := Seg(Pt(5, -5), Pt(5, 5))
	if !a.Crosses(d) {
		t.Error("proper cross")
	}
	// Collinear overlap.
	e := Seg(Pt(5, 0), Pt(25, 0))
	if !a.Crosses(e) {
		t.Error("collinear overlap should cross")
	}
}

func TestSegSegDist(t *testing.T) {
	a := Seg(Pt(0, 0), Pt(10, 0))
	b := Seg(Pt(0, 5), Pt(10, 5))
	if got := SegSegDist(a, b); got != 5 {
		t.Errorf("parallel dist = %v", got)
	}
	c := Seg(Pt(5, -5), Pt(5, 5))
	if got := SegSegDist(a, c); got != 0 {
		t.Errorf("crossing dist = %v", got)
	}
	d := Seg(Pt(13, 4), Pt(20, 4))
	want := 5.0 // from (10,0) to (13,4)
	if got := SegSegDist(a, d); math.Abs(got-want) > 1e-9 {
		t.Errorf("corner dist = %v, want %v", got, want)
	}
}

func TestDirTurnOK(t *testing.T) {
	e := SegDir{1, 0}
	ne := SegDir{1, 1}
	n := SegDir{0, 1}
	w := SegDir{-1, 0}
	sw := SegDir{-1, -1}
	if !DirTurnOK(e, e) {
		t.Error("straight must be OK")
	}
	if !DirTurnOK(e, ne) {
		t.Error("45-degree turn (135 interior) must be OK")
	}
	if !DirTurnOK(e, n) {
		t.Error("90-degree turn must be OK")
	}
	if DirTurnOK(e, sw) {
		t.Error("135-degree turn (45 interior) must be rejected")
	}
	if DirTurnOK(e, w) {
		t.Error("U-turn must be rejected")
	}
}

func TestLineIntersection(t *testing.T) {
	// x = 5 and y = 3 meet at (5, 3).
	p, ok := LineIntersection(OrientV, 5, OrientH, 3)
	if !ok || p != (PointF{5, 3}) {
		t.Errorf("V/H intersection = %v ok=%v", p, ok)
	}
	// x+y = 10 and y−x = 2 meet at (4, 6).
	p, ok = LineIntersection(OrientD135, 10, OrientD45, 2)
	if !ok || math.Abs(p.X-4) > 1e-12 || math.Abs(p.Y-6) > 1e-12 {
		t.Errorf("diagonal intersection = %v ok=%v", p, ok)
	}
	// Parallel lines do not intersect.
	if _, ok := LineIntersection(OrientH, 0, OrientH, 5); ok {
		t.Error("parallel H lines should not intersect")
	}
}

func TestIntersectSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Seg(Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by)))
		u := Seg(Pt(int64(cx), int64(cy)), Pt(int64(dx), int64(dy)))
		if s.Degenerate() || u.Degenerate() {
			return true
		}
		return s.Intersect(u) == u.Intersect(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSegSegDistZeroIffIntersect(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Seg(Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by)))
		u := Seg(Pt(int64(cx), int64(cy)), Pt(int64(dx), int64(dy)))
		if s.Degenerate() || u.Degenerate() {
			return true
		}
		d := SegSegDist(s, u)
		if s.Intersect(u) != NoIntersection {
			return d == 0
		}
		return d > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSegmentMisc(t *testing.T) {
	s := Seg(Pt(1, 2), Pt(5, 2))
	if s.Reverse() != Seg(Pt(5, 2), Pt(1, 2)) {
		t.Error("Reverse")
	}
	if s.BBox() != (Rect{1, 2, 5, 2}) {
		t.Errorf("BBox = %v", s.BBox())
	}
	if s.String() != "(1,2)-(5,2)" {
		t.Errorf("String = %q", s.String())
	}
	if got := Seg(Pt(0, 0), Pt(3, 4)).Len(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Len = %v", got)
	}
	if !OrientD45.Diagonal() || OrientH.Diagonal() {
		t.Error("Diagonal classification")
	}
	if OrientNone.String() != "none" || OrientV.String() != "V" {
		t.Error("Orient strings")
	}
}
