package router

import (
	"bytes"
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/obs"
)

// routedEvents counts "net.route" events for one stage with the given
// outcome.
func routedEvents(c *obs.Collector, stage, outcome string) int {
	return c.CountEvents("net.route", func(e obs.Event) bool {
		return e.Str("stage") == stage && e.Str("outcome") == outcome
	})
}

// checkStageInvariants verifies the result's stage counters against each
// other and against the collector's per-net event stream.
func checkStageInvariants(t *testing.T, res *Result, c *obs.Collector) {
	t.Helper()
	if got := res.ConcurrentRouted + res.SequentialRouted + res.RipUpRouted; got != res.RoutedNets {
		t.Errorf("stage counters: concurrent %d + sequential %d + ripup %d = %d, want RoutedNets %d",
			res.ConcurrentRouted, res.SequentialRouted, res.RipUpRouted, got, res.RoutedNets)
	}
	if got := res.CorridorRouted + res.FallbackRouted; got != res.SequentialRouted {
		t.Errorf("corridor %d + fallback %d = %d, want SequentialRouted %d",
			res.CorridorRouted, res.FallbackRouted, got, res.SequentialRouted)
	}
	if n := routedEvents(c, "concurrent", "routed"); n != res.ConcurrentRouted {
		t.Errorf("concurrent net.route events = %d, want %d", n, res.ConcurrentRouted)
	}
	if n := routedEvents(c, "sequential", "routed"); n != res.SequentialRouted {
		t.Errorf("sequential net.route events = %d, want %d", n, res.SequentialRouted)
	}
	if n := routedEvents(c, "ripup", "routed"); n != res.RipUpRouted {
		t.Errorf("ripup net.route events = %d, want %d", n, res.RipUpRouted)
	}
	corridor := c.CountEvents("net.route", func(e obs.Event) bool {
		return e.Str("stage") == "sequential" && e.Str("outcome") == "routed" && e.Str("mode") == "corridor"
	})
	if corridor != res.CorridorRouted {
		t.Errorf("corridor-mode events = %d, want %d", corridor, res.CorridorRouted)
	}
	if n := c.Counter("router.nets_routed"); n != int64(res.RoutedNets) {
		t.Errorf("router.nets_routed counter = %d, want %d", n, res.RoutedNets)
	}
	if n := c.Counter("router.nets_total"); n != int64(res.TotalNets) {
		t.Errorf("router.nets_total counter = %d, want %d", n, res.TotalNets)
	}
}

func TestObsCollectorSmallDesign(t *testing.T) {
	d := smallDesign()
	c := obs.NewCollector()
	opts := DefaultOptions()
	opts.Tracer = c
	res, err := Route(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkStageInvariants(t, res, c)
	for _, stage := range []string{"preprocess", "concurrent", "graph", "sequential", "lp"} {
		if n := len(c.Spans("stage:" + stage)); n != 1 {
			t.Errorf("stage %q: %d spans, want 1", stage, n)
		}
	}
	if res.Obs == nil {
		t.Fatal("Result.Obs not attached with a Collector tracer")
	}
	if got := res.Obs.Counters["router.nets_routed"]; got != int64(res.RoutedNets) {
		t.Errorf("snapshot router.nets_routed = %d, want %d", got, res.RoutedNets)
	}
	if len(res.Obs.Spans) == 0 || res.Obs.Events == 0 {
		t.Error("snapshot missing spans or events")
	}
	// The ctile stage reports one event per wire layer.
	if n := len(c.Events("ctile.layer")); n != d.WireLayers {
		t.Errorf("ctile.layer events = %d, want %d", n, d.WireLayers)
	}
	// A* effort was actually measured, not left at zero.
	hot := c.CountEvents("net.route", func(e obs.Event) bool { return e.Num("expanded") > 0 })
	if hot == 0 {
		t.Error("no net.route event carries a positive expanded count")
	}
}

func TestObsNilTracerLeavesResultBare(t *testing.T) {
	res, err := Route(smallDesign(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Error("Result.Obs set without a tracer")
	}
}

// TestObsJSONLReplayDense1 is the acceptance check: a traced dense1 run
// must emit at least one span per stage, at least one route event per
// routed net, and the LP convergence series, all recoverable from the
// JSONL stream.
func TestObsJSONLReplayDense1(t *testing.T) {
	if testing.Short() {
		t.Skip("dense benchmark in -short mode")
	}
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	c := obs.NewCollector()
	opts := DefaultOptions()
	opts.RipUpRounds = 1
	opts.Tracer = obs.Multi(jl, c)
	res, err := Route(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	checkStageInvariants(t, res, c)

	recs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]int{}
	lpIters := 0
	routedNet := map[int]bool{}
	for _, r := range recs {
		switch {
		case r.T == "span":
			spans[r.Name]++
		case r.T == "event" && r.Name == "lp.iter":
			lpIters++
		case r.T == "event" && r.Name == "net.route" && r.Str("outcome") == "routed":
			routedNet[int(r.Num("net"))] = true
		}
	}
	for _, stage := range []string{"preprocess", "concurrent", "graph", "sequential", "ripup", "lp"} {
		if spans["stage:"+stage] < 1 {
			t.Errorf("trace has no span for stage %q", stage)
		}
	}
	for ni := range d.Nets {
		if res.Layout.Routed(ni) && !routedNet[ni] {
			t.Errorf("routed net %d has no routed net.route event in the trace", ni)
		}
	}
	if lpIters != res.LPIterations {
		t.Errorf("lp.iter series length = %d, want LPIterations %d", lpIters, res.LPIterations)
	}
	if res.LPIterations > 0 && lpIters == 0 {
		t.Error("no LP convergence series in the trace")
	}
}

func TestObsRipUpEvents(t *testing.T) {
	// The known-recoverable single-layer instance from TestRipUpRecoversNets.
	d, err := design.Generate(design.GenSpec{
		Name: "hunt", Chips: 3, IOPads: 43, BumpPads: 0, WireLayers: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := obs.NewCollector()
	opts := DefaultOptions()
	opts.RipUpRounds = 2
	opts.Tracer = c
	res, err := Route(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RipUpRouted == 0 {
		t.Fatal("rip-up recovered nothing on the known-recoverable instance")
	}
	checkStageInvariants(t, res, c)
	if n := c.Counter("ripup.recovered"); n != int64(res.RipUpRouted) {
		t.Errorf("ripup.recovered counter = %d, want %d", n, res.RipUpRouted)
	}
	// Failed sequential attempts must be visible too: this instance leaves
	// nets unrouted before rip-up kicks in.
	if routedEvents(c, "sequential", "failed") == 0 {
		t.Error("no failed sequential net.route events on a congested instance")
	}

	// The speculative scheduler must emit the identical event stream: a
	// failed speculative attempt produces its net.route outcome=failed
	// event exactly once — at commit or at the live replay, never both.
	cs := obs.NewCollector()
	sopts := opts
	sopts.Speculative = true
	sopts.Tracer = cs
	ress, err := Route(d, sopts)
	if err != nil {
		t.Fatal(err)
	}
	checkStageInvariants(t, ress, cs)
	type netEv struct {
		net           int
		outcome, mode string
	}
	seqStream := func(col *obs.Collector) []netEv {
		var out []netEv
		for _, e := range col.Events("net.route") {
			if e.Str("stage") == "sequential" {
				out = append(out, netEv{int(e.Num("net")), e.Str("outcome"), e.Str("mode")})
			}
		}
		return out
	}
	want, got := seqStream(c), seqStream(cs)
	if len(got) != len(want) {
		t.Fatalf("speculative run emitted %d sequential net.route events, sequential run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequential net.route stream diverges at %d: speculative %v, sequential %v", i, got[i], want[i])
		}
	}
	if n := routedEvents(cs, "sequential", "failed"); n != routedEvents(c, "sequential", "failed") {
		t.Errorf("speculative run emitted %d failed sequential events, sequential run %d (abort+replay double-emit?)",
			n, routedEvents(c, "sequential", "failed"))
	}
}
