package layout

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rdlroute/internal/design"
	"rdlroute/internal/geom"
)

// Format writes the layout's routing result in a line-based text format:
//
//	routedlayout <design-name>
//	route <net> <layer> <x1> <y1> <x2> <y2> ...
//	via <net> <slab> <cx> <cy> <width>
//	routed <net>
//
// Lines starting with '#' and blank lines are ignored on read. The design
// itself is not embedded; pair the file with its design netlist.
func Format(w io.Writer, l *Layout) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "routedlayout %s\n", l.D.Name)
	for i := range l.Routes {
		r := &l.Routes[i]
		fmt.Fprintf(bw, "route %d %d", r.Net, r.Layer)
		for _, p := range r.Pts {
			fmt.Fprintf(bw, " %d %d", p.X, p.Y)
		}
		fmt.Fprintln(bw)
	}
	for _, v := range l.Vias {
		fmt.Fprintf(bw, "via %d %d %d %d %d\n", v.Net, v.Slab, v.Center.X, v.Center.Y, v.Width)
	}
	for ni := range l.D.Nets {
		if l.Routed(ni) {
			fmt.Fprintf(bw, "routed %d\n", ni)
		}
	}
	return bw.Flush()
}

// Parse reads a layout in the Format text format against the given design.
func Parse(r io.Reader, d *design.Design) (*Layout, error) {
	l := New(d)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("layout: line %d: %s: %q", lineNo, msg, line)
		}
		ints := func(from int) ([]int64, error) {
			out := make([]int64, 0, len(f)-from)
			for _, s := range f[from:] {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return nil, fail("bad integer " + s)
				}
				out = append(out, v)
			}
			return out, nil
		}
		switch f[0] {
		case "routedlayout":
			// header; name informational only
		case "route":
			v, err := ints(1)
			if err != nil {
				return nil, err
			}
			if len(v) < 6 || len(v)%2 != 0 {
				return nil, fail("route needs net, layer and ≥2 points")
			}
			net := int(v[0])
			layer := int(v[1])
			if net < 0 || net >= len(d.Nets) {
				return nil, fail("route net out of range")
			}
			if layer < 0 || layer >= d.WireLayers {
				return nil, fail("route layer out of range")
			}
			var pts []geom.Point
			for i := 2; i+1 < len(v); i += 2 {
				pts = append(pts, geom.Pt(v[i], v[i+1]))
			}
			l.Routes = append(l.Routes, Route{Net: net, Layer: layer, Pts: pts})
		case "via":
			v, err := ints(1)
			if err != nil {
				return nil, err
			}
			if len(v) != 5 {
				return nil, fail("via needs net, slab, cx, cy, width")
			}
			if int(v[1]) < 0 || int(v[1]) >= d.WireLayers-1 {
				return nil, fail("via slab out of range")
			}
			l.Vias = append(l.Vias, Via{
				Net: int(v[0]), Slab: int(v[1]),
				Center: geom.Pt(v[2], v[3]), Width: v[4],
			})
		case "routed":
			v, err := ints(1)
			if err != nil {
				return nil, err
			}
			if len(v) != 1 || int(v[0]) < 0 || int(v[0]) >= len(d.Nets) {
				return nil, fail("routed needs one valid net id")
			}
			l.MarkRouted(int(v[0]))
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}
