package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOctFromRect(t *testing.T) {
	r := RectWH(0, 0, 10, 6)
	o := OctFromRect(r)
	if o.Empty() {
		t.Fatal("rect oct should not be empty")
	}
	for _, p := range []Point{{0, 0}, {10, 6}, {5, 3}, {10, 0}, {0, 6}} {
		if !o.Contains(p) {
			t.Errorf("should contain %v", p)
		}
	}
	for _, p := range []Point{{-1, 0}, {11, 3}, {5, 7}} {
		if o.Contains(p) {
			t.Errorf("should not contain %v", p)
		}
	}
	if got := o.Area(); math.Abs(got-60) > 1e-9 {
		t.Errorf("Area = %v", got)
	}
	if got := o.BBox(); got != r {
		t.Errorf("BBox = %v", got)
	}
	if v := o.Vertices(); len(v) != 4 {
		t.Errorf("rect oct should have 4 vertices, got %d: %v", len(v), v)
	}
}

func TestRegularOct(t *testing.T) {
	o := RegularOct(Pt(100, 100), 40)
	if !o.Contains(Pt(100, 100)) {
		t.Error("center must be inside")
	}
	// Axis extremes inside, bbox corners outside (they are cut).
	if !o.Contains(Pt(120, 100)) || !o.Contains(Pt(100, 80)) {
		t.Error("axis extremes must be inside")
	}
	if o.Contains(Pt(120, 120)) || o.Contains(Pt(80, 80)) {
		t.Error("bbox corners must be cut off")
	}
	if v := o.Vertices(); len(v) != 8 {
		t.Errorf("regular octagon should have 8 vertices, got %d: %v", len(v), v)
	}
	// Area between the inscribed diamond and bounding square.
	a := o.Area()
	if a <= 800 || a >= 1600 {
		t.Errorf("octagon area = %v, want in (800, 1600)", a)
	}
	// Should be close to the exact regular octagon area 2(√2−1)w² ≈ 0.8284·w².
	want := 2 * (Sqrt2 - 1) * 40 * 40
	if math.Abs(a-want)/want > 0.05 {
		t.Errorf("octagon area = %v, want ≈ %v", a, want)
	}
}

func TestOctCanonicalTightens(t *testing.T) {
	// Wide-open diagonal bounds must tighten to those implied by the box.
	o := Oct8{XLo: 0, XHi: 10, YLo: 0, YHi: 10, SLo: -100, SHi: 100, DLo: -100, DHi: 100}
	c := o.Canonical()
	if c.SLo != 0 || c.SHi != 20 || c.DLo != -10 || c.DHi != 10 {
		t.Errorf("Canonical = %+v", c)
	}
	// A cutting diagonal tightens the box.
	o2 := Oct8{XLo: 0, XHi: 10, YLo: 0, YHi: 10, SLo: -100, SHi: 5, DLo: -100, DHi: 100}
	c2 := o2.Canonical()
	if c2.XHi != 5 || c2.YHi != 5 {
		t.Errorf("diagonal cut should tighten box: %+v", c2)
	}
}

func TestOctEmpty(t *testing.T) {
	if OctFromRect(RectWH(0, 0, 5, 5)).Empty() {
		t.Error("nonempty marked empty")
	}
	bad := Oct8{XLo: 0, XHi: 10, YLo: 0, YHi: 10, SLo: 50, SHi: 100, DLo: -100, DHi: 100}
	if !bad.Empty() {
		t.Error("x+y >= 50 cannot meet box [0,10]^2")
	}
	inverted := Oct8{XLo: 5, XHi: 1, YLo: 0, YHi: 10, SLo: -100, SHi: 100, DLo: -100, DHi: 100}
	if !inverted.Empty() {
		t.Error("inverted x bounds should be empty")
	}
}

func TestOctIntersection(t *testing.T) {
	a := OctFromRect(RectWH(0, 0, 10, 10))
	b := OctFromRect(RectWH(5, 5, 10, 10))
	if !a.Intersects(b) {
		t.Error("overlapping rect octs")
	}
	in := a.IntersectOct(b)
	if in.BBox() != (Rect{5, 5, 10, 10}) {
		t.Errorf("intersection bbox = %v", in.BBox())
	}
	c := OctFromRect(RectWH(20, 20, 3, 3))
	if a.Intersects(c) {
		t.Error("disjoint octs must not intersect")
	}
}

func TestOctTriangleDegeneration(t *testing.T) {
	// Box cut by x+y <= 10 on [0,10]^2 is a right triangle, area 50.
	o := Oct8{XLo: 0, XHi: 10, YLo: 0, YHi: 10, SLo: -100, SHi: 10, DLo: -100, DHi: 100}
	v := o.Vertices()
	if len(v) != 3 {
		t.Fatalf("triangle should have 3 vertices, got %d: %v", len(v), v)
	}
	if a := o.Area(); math.Abs(a-50) > 1e-9 {
		t.Errorf("triangle area = %v", a)
	}
}

func TestOctShrinkGrow(t *testing.T) {
	o := RegularOct(Pt(0, 0), 100)
	s := o.Shrink(10)
	if s.Empty() {
		t.Fatal("shrunk octagon should survive")
	}
	if !o.Contains(Pt(50, 0)) {
		t.Error("original must contain east extreme")
	}
	if s.Contains(Pt(50, 0)) {
		t.Error("shrunk must not contain original east extreme")
	}
	g := s.Grow(10)
	// Grow(Shrink(x)) ⊆ x up to diagonal rounding slack of 1.
	if g.XLo < o.XLo-1 || g.XHi > o.XHi+1 {
		t.Errorf("grow/shrink mismatch: %v vs %v", g, o)
	}
	// Over-shrinking empties the region.
	if !o.Shrink(60).Empty() {
		t.Error("over-shrunk should be empty")
	}
}

func TestOctCenterContained(t *testing.T) {
	f := func(x0, y0, w, h int8, cutS, cutD uint8) bool {
		r := RectWH(int64(x0), int64(y0), int64(abs8(w))+1, int64(abs8(h))+1)
		o := OctFromRect(r)
		o.SHi -= int64(cutS % 8)
		o.DHi -= int64(cutD % 8)
		if o.Empty() {
			return true
		}
		return o.Canonical().Contains(o.Center())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOctVerticesInsideRegionProperty(t *testing.T) {
	f := func(x0, y0, w, h int8, cut uint8) bool {
		r := RectWH(int64(x0), int64(y0), int64(abs8(w))+2, int64(abs8(h))+2)
		o := OctFromRect(r)
		o.SLo += int64(cut % 5)
		o.SHi -= int64(cut % 3)
		o.DLo += int64(cut % 4)
		if o.Empty() {
			return true
		}
		for _, v := range o.Vertices() {
			if !containsF(o.Canonical(), v, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOctIntersectionCommutesProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh int8) bool {
		a := OctFromRect(RectWH(int64(ax), int64(ay), int64(abs8(aw)), int64(abs8(ah))))
		b := OctFromRect(RectWH(int64(bx), int64(by), int64(abs8(bw)), int64(abs8(bh))))
		ab := a.IntersectOct(b).Canonical()
		ba := b.IntersectOct(a).Canonical()
		if ab.Empty() != ba.Empty() {
			return false
		}
		return ab.Empty() || ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
