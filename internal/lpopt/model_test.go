package lpopt

import (
	"math"
	"testing"
	"testing/quick"

	"rdlroute/internal/geom"
)

func TestExprAlgebra(t *testing.T) {
	vals := []float64{10, 20, 30}
	a := varExpr(0)                 // v0
	b := varExpr(1).scale(2)        // 2·v1
	c := a.add(b).add(constExpr(5)) // v0 + 2·v1 + 5
	if got := c.eval(vals); got != 10+40+5 {
		t.Errorf("eval = %v", got)
	}
	d := c.sub(varExpr(0)) // 2·v1 + 5
	if got := d.eval(vals); got != 45 {
		t.Errorf("sub eval = %v", got)
	}
	// Compacting cancels terms entirely.
	e := varExpr(2).add(varExpr(2).scale(-1))
	if !e.isConst() || e.eval(vals) != 0 {
		t.Errorf("cancelled expr = %+v", e)
	}
}

func TestPointIntersect(t *testing.T) {
	// Matches geom.LineIntersection on constant lines.
	cases := []struct {
		o1 geom.Orient
		c1 int64
		o2 geom.Orient
		c2 int64
	}{
		{geom.OrientV, 5, geom.OrientH, 3},
		{geom.OrientD135, 10, geom.OrientD45, 2},
		{geom.OrientH, 7, geom.OrientD135, 12},
		{geom.OrientV, 4, geom.OrientD45, -2},
	}
	for _, cse := range cases {
		p, ok := intersect(cse.o1, constExpr(float64(cse.c1)), cse.o2, constExpr(float64(cse.c2)))
		pf, ok2 := geom.LineIntersection(cse.o1, cse.c1, cse.o2, cse.c2)
		if ok != ok2 {
			t.Fatalf("ok mismatch for %v/%v", cse.o1, cse.o2)
		}
		if math.Abs(p.x.eval(nil)-pf.X) > 1e-9 || math.Abs(p.y.eval(nil)-pf.Y) > 1e-9 {
			t.Errorf("%v∩%v = (%v,%v), want (%v,%v)", cse.o1, cse.o2,
				p.x.eval(nil), p.y.eval(nil), pf.X, pf.Y)
		}
	}
	// Parallel lines fail.
	if _, ok := intersect(geom.OrientH, constExpr(1), geom.OrientH, constExpr(2)); ok {
		t.Error("parallel intersect should fail")
	}
}

func TestAxisAlong(t *testing.T) {
	p := fixedPoint(geom.Pt(3, 7))
	if p.along(axisX).eval(nil) != 3 || p.along(axisY).eval(nil) != 7 {
		t.Error("x/y along")
	}
	if p.along(axisS).eval(nil) != 10 || p.along(axisD).eval(nil) != 4 {
		t.Error("s/d along")
	}
	if axisS.norm() != geom.Sqrt2 || axisX.norm() != 1 {
		t.Error("axis norms")
	}
	if axisOf(geom.OrientH) != axisY || axisOf(geom.OrientV) != axisX ||
		axisOf(geom.OrientD45) != axisD || axisOf(geom.OrientD135) != axisS {
		t.Error("axisOf mapping")
	}
}

func TestBestAxisSeparation(t *testing.T) {
	// Two parallel horizontal wire segments 20 apart: best axis is Y.
	segA := &entity{net: 0, layers: []int{0}, pts: []pointE{
		fixedPoint(geom.Pt(0, 0)), fixedPoint(geom.Pt(100, 0)),
	}}
	segB := &entity{net: 1, layers: []int{0}, pts: []pointE{
		fixedPoint(geom.Pt(0, 20)), fixedPoint(geom.Pt(100, 20)),
	}}
	ax, aBelow, slack := bestAxis(segA, segB, 9, nil)
	if ax != axisY || !aBelow {
		t.Errorf("axis=%v aBelow=%v", ax, aBelow)
	}
	if math.Abs(slack-11) > 1e-9 { // 20 − 9
		t.Errorf("slack = %v, want 11", slack)
	}
	// Overlapping entities: negative slack on every axis.
	segC := &entity{net: 2, layers: []int{0}, pts: []pointE{
		fixedPoint(geom.Pt(50, -5)), fixedPoint(geom.Pt(50, 5)),
	}}
	_, _, slack = bestAxis(segA, segC, 9, nil)
	if slack >= 0 {
		t.Errorf("crossing pair slack = %v, want negative", slack)
	}
}

func TestFloorDiv(t *testing.T) {
	f := func(a int32, b uint8) bool {
		d := int64(b%50) + 1
		q := floorDiv(int64(a), d)
		return q*d <= int64(a) && (q+1)*d > int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDominant(t *testing.T) {
	if ax, s := dominant(geom.OrientH); ax != axisX || s != 1 {
		t.Error("H dominant")
	}
	if ax, s := dominant(geom.OrientV); ax != axisY || s != 1 {
		t.Error("V dominant")
	}
	if ax, s := dominant(geom.OrientD45); ax != axisX || s != geom.Sqrt2 {
		t.Error("D45 dominant")
	}
}
