// Package codec is the versioned JSON wire format for designs, routing
// options and routing results. Every document carries a "schema" field
// ("rdl-design/v1", "rdl-options/v1", "rdl-result/v1"); decoders reject
// unknown schemas, tolerate unknown *fields* (adding fields is the
// backward-compatible evolution path; renaming or retyping one requires a
// new schema version), and validate every cross-reference before handing
// back a model object, so a malformed payload yields a typed *Error with
// a precise JSON path — never a panic and never a half-built design.
package codec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Schema identifiers accepted by this package (version 1 of each family).
const (
	DesignSchema  = "rdl-design/v1"
	OptionsSchema = "rdl-options/v1"
	ResultSchema  = "rdl-result/v1"
)

// Kind classifies a codec error.
type Kind uint8

// Error kinds.
const (
	// KindSyntax: the payload is not well-formed JSON, or a field has the
	// wrong JSON type.
	KindSyntax Kind = iota
	// KindSchema: the document's schema field is missing or names a
	// version this decoder does not speak.
	KindSchema
	// KindValidate: the JSON was well-formed but the document violates a
	// structural rule (dangling reference, out-of-range layer, design
	// validation failure).
	KindValidate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSyntax:
		return "syntax"
	case KindSchema:
		return "schema"
	default:
		return "validate"
	}
}

// Error is a decode failure with the JSON path of the offending value.
// Use errors.As to recover it and switch on Kind.
type Error struct {
	Schema string // document family the decoder expected
	Kind   Kind
	Path   string // JSON path, e.g. "nets[3].p1.index"; "$" is the root
	Msg    string
	Err    error // underlying cause, when any
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := fmt.Sprintf("codec: %s: %s error at %s: %s", e.Schema, e.Kind, e.Path, e.Msg)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap returns the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

func syntaxErr(schema string, err error) error {
	path := "$"
	var te *json.UnmarshalTypeError
	if errors.As(err, &te) && te.Field != "" {
		path = te.Field
	}
	var se *json.SyntaxError
	if errors.As(err, &se) {
		return &Error{Schema: schema, Kind: KindSyntax, Path: path,
			Msg: fmt.Sprintf("malformed JSON at offset %d", se.Offset), Err: err}
	}
	return &Error{Schema: schema, Kind: KindSyntax, Path: path, Msg: "malformed JSON", Err: err}
}

func schemaErr(schema, got string) error {
	msg := fmt.Sprintf("unsupported schema %q (want %q)", got, schema)
	if got == "" {
		msg = fmt.Sprintf("missing schema field (want %q)", schema)
	}
	return &Error{Schema: schema, Kind: KindSchema, Path: "schema", Msg: msg}
}

func invalidf(schema, path, format string, args ...any) error {
	return &Error{Schema: schema, Kind: KindValidate, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// decodeDoc reads everything from r, checks the schema header and
// unmarshals into doc. It is the shared front half of every decoder.
func decodeDoc(r io.Reader, schema string, doc any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return &Error{Schema: schema, Kind: KindSyntax, Path: "$", Msg: "read failed", Err: err}
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return syntaxErr(schema, err)
	}
	if head.Schema != schema {
		return schemaErr(schema, head.Schema)
	}
	if err := json.Unmarshal(data, doc); err != nil {
		return syntaxErr(schema, err)
	}
	return nil
}

// writeDoc marshals doc with stable two-space indentation and a trailing
// newline. Field order follows the Go struct definitions and no maps are
// involved, so encoding the same value twice yields identical bytes.
func writeDoc(w io.Writer, schema string, doc any) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("codec: %s: encode: %w", schema, err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("codec: %s: write: %w", schema, err)
	}
	return nil
}
