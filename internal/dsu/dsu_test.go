package dsu

import (
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	d := New(5)
	if d.Count() != 5 || d.Len() != 5 {
		t.Fatalf("initial count/len = %d/%d", d.Count(), d.Len())
	}
	if !d.Union(0, 1) {
		t.Error("first union must merge")
	}
	if d.Union(1, 0) {
		t.Error("repeat union must not merge")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Error("Same after one union")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if d.Count() != 2 {
		t.Errorf("count = %d, want 2", d.Count())
	}
	if !d.Same(1, 2) {
		t.Error("transitive connectivity")
	}
}

func TestGroups(t *testing.T) {
	d := New(6)
	d.Union(0, 1)
	d.Union(2, 3)
	d.Union(3, 4)
	g := d.Groups()
	if len(g) != 3 {
		t.Fatalf("groups = %d, want 3", len(g))
	}
	sizes := map[int]int{}
	for _, members := range g {
		sizes[len(members)]++
	}
	if sizes[1] != 1 || sizes[2] != 1 || sizes[3] != 1 {
		t.Errorf("group sizes = %v", sizes)
	}
}

func TestUnionCountInvariant(t *testing.T) {
	// Count always equals n − number of successful unions.
	f := func(pairs []uint16) bool {
		const n = 64
		d := New(n)
		merges := 0
		for i := 0; i+1 < len(pairs); i += 2 {
			a := int(pairs[i]) % n
			b := int(pairs[i+1]) % n
			if d.Union(a, b) {
				merges++
			}
		}
		if d.Count() != n-merges {
			return false
		}
		// Groups partition the elements.
		total := 0
		for _, m := range d.Groups() {
			total += len(m)
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
