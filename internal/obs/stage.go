package obs

import (
	"context"
	"runtime/pprof"
)

// EndStage closes a stage opened by Stage.
type EndStage func(attrs ...Attr)

var endNop EndStage = func(...Attr) {}

// Stage opens a span named "stage:<name>" and, while it is open, tags the
// calling goroutine with a runtime/pprof label ("stage" → name) so CPU
// profiles attribute samples per pipeline stage. Close it with the
// returned func. Stage spans do not nest: ending one clears the label set
// entirely, so callers open them strictly sequentially (the five-stage
// flow is sequential by construction).
//
// With a disabled tracer Stage is a no-op that performs no allocation, so
// wrapping every stage unconditionally is free in the default path.
func Stage(tr Tracer, name string, attrs ...Attr) EndStage {
	if tr == nil || !tr.Enabled() {
		return endNop
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels("stage", name)))
	sp := tr.Span("stage:"+name, attrs...)
	return func(end ...Attr) {
		sp.End(end...)
		pprof.SetGoroutineLabels(context.Background())
	}
}
