package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/eco"
	"rdlroute/internal/metrics"
	"rdlroute/internal/router"
)

// resultCache is the server's content-addressed result store: completed
// routing results keyed by the canonical codec encoding of (design,
// options), so a resubmission of byte-identical inputs is answered
// without touching a worker's router. Entries also index their design by
// its content hash, which is how delta jobs resolve the base design (and,
// when the entry carries an eco plan, the recorded search memo) that
// their rdl-design-delta/v1 document references.
//
// The cache is bounded two ways — entry count and retained bytes (result
// encoding plus any plan's memo) — and evicts least-recently-used first.
// Keys are exact content addresses: an option or design differing in any
// canonical byte is a different entry, so a hit can never return a result
// the same inputs would not reproduce.
type resultCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	lru     *list.List               // of *cacheEntry, front = most recent
	byKey   map[string]*list.Element // (design,opts) content address
	byBase  map[string]*list.Element // design hash → newest entry holding it
	bytes   int64
	hits    int64
	misses  int64
	evicted int64

	// Counter hooks (set by registerCacheMetrics; nil until then).
	cHits, cMisses, cEvict *metrics.Counter
}

type cacheEntry struct {
	key        string
	designHash string
	design     *design.Design
	result     *router.Result
	plan       *eco.Plan // non-nil when the run recorded a search memo
	size       int64
}

// newResultCache sizes the cache; entries<=0 disables it entirely.
func newResultCache(entries int, maxBytes int64) *resultCache {
	if entries <= 0 {
		return nil
	}
	return &resultCache{
		maxEntries: entries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		byKey:      make(map[string]*list.Element),
		byBase:     make(map[string]*list.Element),
	}
}

// cacheKey computes the content address of one job: sha256 over the
// canonical design encoding concatenated with the canonical options
// encoding, Workers normalized to 0 — the determinism matrix guarantees
// results are byte-identical at every worker count, so worker count must
// not split the key space. OrderPortfolio is deliberately NOT normalized:
// unlike Workers/Speculative it changes which ordering policy commits the
// layout, so a portfolio job and a solo job are different results and
// must not share a cache slot. Callers must pass the RESOLVED options
// (after server-config defaults are applied) for the same reason. Returns
// "" (uncacheable) if either encoding fails.
func cacheKey(d *design.Design, opts router.Options) string {
	var buf bytes.Buffer
	if err := codec.EncodeDesign(&buf, d); err != nil {
		return ""
	}
	opts.Workers = 0
	opts.Speculative = false
	opts.Tracer = nil
	opts.SearchMemo = nil
	opts.CorridorMemo = nil
	if err := codec.EncodeOptions(&buf, opts); err != nil {
		return ""
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// get returns the cached result for the key and refreshes its recency.
func (c *resultCache) get(key string) (*router.Result, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		if c.cMisses != nil {
			c.cMisses.Inc()
		}
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	if c.cHits != nil {
		c.cHits.Inc()
	}
	return el.Value.(*cacheEntry).result, true
}

// base resolves a design (and the base plan, when one was recorded) by
// its content hash, for delta application. Counts as a recency touch but
// not as a hit/miss — the hit/miss series tracks result reuse.
func (c *resultCache) base(designHash string) (*design.Design, *eco.Plan, bool) {
	if c == nil || designHash == "" {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byBase[designHash]
	if !ok {
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.design, e.plan, true
}

// put inserts a completed run. The entry's size is the encoded result
// plus the plan's memo retention, so the byte bound tracks real memory.
func (c *resultCache) put(key string, d *design.Design, res *router.Result, plan *eco.Plan) {
	if c == nil || key == "" || res == nil {
		return
	}
	designHash, err := codec.DesignHash(d)
	if err != nil {
		return
	}
	var buf bytes.Buffer
	if err := codec.EncodeResult(&buf, res); err != nil {
		return
	}
	size := int64(buf.Len())
	if plan != nil {
		_, _, memoBytes := plan.MemoStats()
		size += memoBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Same content address → same result bytes; refresh recency and
		// keep the richer entry (a plan beats no plan).
		e := el.Value.(*cacheEntry)
		if e.plan == nil && plan != nil {
			c.bytes += size - e.size
			e.result, e.plan, e.size = res, plan, size
		}
		c.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, designHash: designHash, design: d, result: res, plan: plan, size: size}
	el := c.lru.PushFront(e)
	c.byKey[key] = el
	c.byBase[designHash] = el
	c.bytes += size
	for c.lru.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 1) {
		c.evictOldest()
	}
}

// evictOldest drops the least-recently-used entry. Callers hold c.mu.
func (c *resultCache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	if cur, ok := c.byBase[e.designHash]; ok && cur == el {
		delete(c.byBase, e.designHash)
	}
	c.bytes -= e.size
	c.evicted++
	if c.cEvict != nil {
		c.cEvict.Inc()
	}
}

// stats snapshots the cache counters for gauges and tests.
func (c *resultCache) stats() (entries int, bytes, hits, misses, evicted int64) {
	if c == nil {
		return 0, 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len(), c.bytes, c.hits, c.misses, c.evicted
}

// registerCacheMetrics mounts the rdl_cache_* series on the registry.
// Gauges close over the cache so scrapes read live values; a nil cache
// (caching disabled) still registers every family at zero so dashboards
// do not break on configuration differences.
func registerCacheMetrics(reg *metrics.Registry, c *resultCache) {
	reg.GaugeFunc("rdl_cache_entries", "Result-cache entries resident.",
		func() float64 { n, _, _, _, _ := c.stats(); return float64(n) })
	reg.GaugeFunc("rdl_cache_bytes", "Result-cache retained bytes (results plus eco memos).",
		func() float64 { _, b, _, _, _ := c.stats(); return float64(b) })
	hits := reg.Counter("rdl_cache_hits_total", "Result-cache hits.")
	misses := reg.Counter("rdl_cache_misses_total", "Result-cache misses.")
	evict := reg.Counter("rdl_cache_evictions_total", "Result-cache LRU evictions.")
	if c != nil {
		c.mu.Lock()
		c.cHits, c.cMisses, c.cEvict = &hits, &misses, &evict
		c.mu.Unlock()
	}
}
