package router

import (
	"testing"

	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/geom"
)

// smallDesign builds a 2-chip instance with 8 facing peripheral nets plus
// 2 interior-pad nets, all grid-aligned.
func smallDesign() *design.Design {
	d := &design.Design{
		Name:       "small",
		Outline:    geom.RectWH(0, 0, 1440, 960),
		WireLayers: 3,
		Rules:      design.Rules{Spacing: 5, WireWidth: 4, ViaWidth: 16},
		Chips: []design.Chip{
			{Name: "a", Box: geom.RectWH(120, 288, 360, 360)},
			{Name: "b", Box: geom.RectWH(960, 288, 360, 360)},
		},
	}
	id := 0
	addPad := func(chip int, x, y int64) int {
		d.IOPads = append(d.IOPads, design.IOPad{ID: id, Chip: chip, Center: geom.Pt(x, y), HalfW: 8})
		id++
		return id - 1
	}
	// Facing edges: chip a east (x=468), chip b west (x=972).
	for i := 0; i < 4; i++ {
		y := int64(336 + 60*i)
		p1 := addPad(0, 468, y)
		p2 := addPad(1, 972, y)
		d.Nets = append(d.Nets, design.Net{
			ID: len(d.Nets),
			P1: design.PadRef{Kind: design.IOKind, Index: p1},
			P2: design.PadRef{Kind: design.IOKind, Index: p2},
		})
	}
	// Outer edges: chip a west (x=132), chip b east (x=1308) — these have
	// to go around or through layers.
	for i := 0; i < 4; i++ {
		y := int64(336 + 60*i)
		p1 := addPad(0, 132, y)
		p2 := addPad(1, 1308, y)
		d.Nets = append(d.Nets, design.Net{
			ID: len(d.Nets),
			P1: design.PadRef{Kind: design.IOKind, Index: p1},
			P2: design.PadRef{Kind: design.IOKind, Index: p2},
		})
	}
	// Interior pads (not peripheral): exercised by the sequential stage.
	p1 := addPad(0, 300, 468)
	p2 := addPad(1, 1140, 468)
	d.Nets = append(d.Nets, design.Net{
		ID: len(d.Nets),
		P1: design.PadRef{Kind: design.IOKind, Index: p1},
		P2: design.PadRef{Kind: design.IOKind, Index: p2},
	})
	return d
}

func TestRouteSmallDesign(t *testing.T) {
	d := smallDesign()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("routability=%.1f%% (conc=%d seq=%d corridor=%d fallback=%d) wl=%.0f (pre-LP %.0f) tiles=%d lpIters=%d",
		res.Routability, res.ConcurrentRouted, res.SequentialRouted,
		res.CorridorRouted, res.FallbackRouted,
		res.Wirelength, res.WirelengthBeforeLP, res.TileCount, res.LPIterations)
	if res.Routability < 100 {
		t.Errorf("routability = %v, want 100", res.Routability)
	}
	if vs := drc.Check(res.Layout); len(vs) != 0 {
		for _, v := range vs[:min(len(vs), 10)] {
			t.Errorf("DRC: %v", v)
		}
	}
	for ni := range d.Nets {
		if res.Layout.Routed(ni) && !res.Layout.Connected(ni) {
			t.Errorf("net %d marked routed but disconnected", ni)
		}
	}
	if res.ConcurrentRouted == 0 {
		t.Error("stage 2 routed nothing")
	}
	if res.Wirelength > res.WirelengthBeforeLP {
		t.Errorf("LP increased wirelength: %v -> %v", res.WirelengthBeforeLP, res.Wirelength)
	}
}

func TestRouteAblationsStillLegal(t *testing.T) {
	d := smallDesign()
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"no-weights", func(o *Options) { o.UseWeights = false }},
		{"no-lp", func(o *Options) { o.EnableLP = false }},
		{"no-via-insertion", func(o *Options) { o.EnableVias = false }},
		{"no-stage2", func(o *Options) { o.EnableStage2 = false }},
	}
	for _, c := range cases {
		opts := DefaultOptions()
		c.mut(&opts)
		res, err := Route(d, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if vs := drc.Check(res.Layout); len(vs) != 0 {
			t.Errorf("%s: %d DRC violations, first: %v", c.name, len(vs), vs[0])
		}
		if res.Routability < 80 {
			t.Errorf("%s: routability = %v", c.name, res.Routability)
		}
		t.Logf("%s: routability=%.1f%% wl=%.0f", c.name, res.Routability, res.Wirelength)
	}
}

func TestRouteDense1(t *testing.T) {
	if testing.Short() {
		t.Skip("dense benchmark in -short mode")
	}
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dense1: routability=%.1f%% (conc=%d seq=%d) wl=%.0f (pre-LP %.0f) runtime=%v",
		res.Routability, res.ConcurrentRouted, res.SequentialRouted,
		res.Wirelength, res.WirelengthBeforeLP, res.Runtime)
	if res.Routability < 95 {
		t.Errorf("dense1 routability = %v, paper reports 100", res.Routability)
	}
	if vs := drc.Check(res.Layout); len(vs) != 0 {
		t.Errorf("dense1: %d DRC violations, first: %v", len(vs), vs[0])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRouteExtendedFormulation(t *testing.T) {
	// Chip-to-board nets, netless obstacles and pre-assigned blockage vias
	// (the formulation's O and V_p sets) all at once.
	d, err := design.Generate(design.GenSpec{
		Name:       "ext",
		Chips:      3,
		IOPads:     48,
		BumpPads:   64,
		WireLayers: 4,
		Seed:       17,
		BoardFrac:  0.25,
		Obstacles:  6,
		FixedVias:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("extended: routability=%.1f%% wl=%.0f (conc=%d seq=%d)",
		res.Routability, res.Wirelength, res.ConcurrentRouted, res.SequentialRouted)
	if res.Routability < 90 {
		t.Errorf("routability = %v", res.Routability)
	}
	if vs := drc.Check(res.Layout); len(vs) != 0 {
		t.Errorf("%d DRC violations, first: %v", len(vs), vs[0])
	}
	// At least one board net should be routed down to its bump pad.
	boardRouted := 0
	for ni, n := range d.Nets {
		if n.P2.Kind == design.BumpKind && res.Layout.Routed(ni) {
			boardRouted++
			if !res.Layout.Connected(ni) {
				t.Errorf("board net %d marked routed but disconnected", ni)
			}
		}
	}
	if boardRouted == 0 {
		t.Error("no chip-to-board net routed")
	}
}

// TestIrregularLPRegression pins the LP rounding bug found on this
// instance: odd margins plus even-integer rounding used to corrupt route
// monotonicity (direction flips) in dense irregular layouts.
func TestIrregularLPRegression(t *testing.T) {
	d, err := design.Generate(design.GenSpec{
		Name: "irregular-demo", Chips: 3, IOPads: 60, BumpPads: 100,
		WireLayers: 3, Seed: 42, InteriorFrac: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if vs := drc.Check(res.Layout); len(vs) != 0 {
		t.Errorf("%d violations, first: %v", len(vs), vs[0])
	}
}

// TestRouteRandomDesignsAlwaysLegal is the router's end-to-end property
// test: whatever the instance, the flow must produce a DRC-clean layout
// and every net it claims routed must actually connect.
func TestRouteRandomDesignsAlwaysLegal(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end test in -short mode")
	}
	for seed := int64(1); seed <= 8; seed++ {
		spec := design.GenSpec{
			Name:       "rand",
			Chips:      2 + int(seed)%4,
			IOPads:     24 + int(seed*7)%40,
			BumpPads:   36 + int(seed*13)%64,
			WireLayers: 3 + int(seed)%3,
			Seed:       seed,
			BoardFrac:  float64(seed%3) * 0.15,
		}
		if spec.WireLayers >= 3 {
			spec.Obstacles = int(seed) % 5
			spec.FixedVias = int(seed) % 7
		}
		d, err := design.Generate(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Route(d, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if vs := drc.Check(res.Layout); len(vs) != 0 {
			t.Errorf("seed %d: %d DRC violations, first: %v", seed, len(vs), vs[0])
		}
		for ni := range d.Nets {
			if res.Layout.Routed(ni) && !res.Layout.Connected(ni) {
				t.Errorf("seed %d: net %d routed but disconnected", seed, ni)
			}
		}
		if res.Routability < 85 {
			t.Errorf("seed %d: routability %.1f%%", seed, res.Routability)
		}
	}
}

func TestRipUpNeverRegresses(t *testing.T) {
	if testing.Short() {
		t.Skip("rip-up sweep in -short mode")
	}
	for seed := int64(1); seed <= 4; seed++ {
		spec := design.GenSpec{
			Name: "rip", Chips: 3, IOPads: 36 + int(seed*11)%30,
			BumpPads: 49, WireLayers: 3, Seed: seed,
		}
		d, err := design.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Route(d, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.RipUpRounds = 2
		withRip, err := Route(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if withRip.Routability < base.Routability {
			t.Errorf("seed %d: rip-up regressed %.1f%% -> %.1f%%",
				seed, base.Routability, withRip.Routability)
		}
		if vs := drc.Check(withRip.Layout); len(vs) != 0 {
			t.Errorf("seed %d: rip-up produced violations: %v", seed, vs[0])
		}
	}
}

func TestRipUpRecoversNets(t *testing.T) {
	// Single-layer instances are routability-starved; rip-up recovers nets
	// that a greedy sequential order painted into a corner. Seed 7 is a
	// deterministic instance where it gains four nets.
	d, err := design.Generate(design.GenSpec{
		Name: "hunt", Chips: 3, IOPads: 43, BumpPads: 0, WireLayers: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.RipUpRounds = 2
	rip, err := Route(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rip.RipUpRouted == 0 {
		t.Error("rip-up recovered nothing on the known-recoverable instance")
	}
	if rip.Routability <= base.Routability {
		t.Errorf("rip-up routability %.1f%% not above base %.1f%%",
			rip.Routability, base.Routability)
	}
	if vs := drc.Check(rip.Layout); len(vs) != 0 {
		t.Errorf("rip-up result has violations: %v", vs[0])
	}
}

func TestNetOrderStrategies(t *testing.T) {
	d := smallDesign()
	for _, ord := range []NetOrder{OrderShortest, OrderLongest, OrderCongested} {
		opts := DefaultOptions()
		opts.NetOrder = ord
		res, err := Route(d, opts)
		if err != nil {
			t.Fatalf("order %d: %v", ord, err)
		}
		if res.Routability < 90 {
			t.Errorf("order %d: routability %.1f%%", ord, res.Routability)
		}
		if vs := drc.Check(res.Layout); len(vs) != 0 {
			t.Errorf("order %d: violations: %v", ord, vs[0])
		}
	}
}
