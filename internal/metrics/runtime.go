package metrics

import (
	"runtime"
	"sync"
)

// runtimeSampler caches one runtime.MemStats read per scrape, shared by
// every runtime gauge, so a scrape pays a single stop-the-world stats
// collection regardless of how many series it renders.
type runtimeSampler struct {
	mu sync.Mutex
	ms runtime.MemStats
}

func (s *runtimeSampler) refresh() {
	s.mu.Lock()
	runtime.ReadMemStats(&s.ms)
	s.mu.Unlock()
}

func (s *runtimeSampler) get(f func(*runtime.MemStats) float64) func() float64 {
	return func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return f(&s.ms)
	}
}

// RegisterGoRuntime adds the process-level Go runtime series a serving
// deployment watches alongside the routing metrics: goroutine count, heap
// occupancy, cumulative allocation, GC cycle count and total GC pause
// time. Values refresh once per scrape via OnScrape.
func RegisterGoRuntime(reg *Registry) {
	s := &runtimeSampler{}
	reg.OnScrape(s.refresh)
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		s.get(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	reg.GaugeFunc("go_heap_inuse_bytes", "Bytes in in-use heap spans.",
		s.get(func(ms *runtime.MemStats) float64 { return float64(ms.HeapInuse) }))
	reg.GaugeFunc("go_sys_bytes", "Bytes obtained from the OS.",
		s.get(func(ms *runtime.MemStats) float64 { return float64(ms.Sys) }))
	reg.GaugeFunc("go_next_gc_bytes", "Heap size target of the next GC cycle.",
		s.get(func(ms *runtime.MemStats) float64 { return float64(ms.NextGC) }))
	reg.CounterFunc("go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
		s.get(func(ms *runtime.MemStats) float64 { return float64(ms.TotalAlloc) }))
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		s.get(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	reg.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		s.get(func(ms *runtime.MemStats) float64 { return float64(ms.PauseTotalNs) / 1e9 }))
}
