// Command rdlserver serves the five-stage routing flow over HTTP: a
// bounded job queue in front of a fixed worker pool, with per-job
// timeouts, 429 backpressure when the queue is full, idempotency keys and
// graceful drain on SIGINT/SIGTERM.
//
// API (JSON everywhere; schemas are versioned, see README):
//
//	POST /v1/jobs             submit {"schema":"rdl-job/v1", "benchmark":"dense1"}
//	                          or an inline rdl-design/v1 document; 202 + job id
//	GET  /v1/jobs/{id}        job state; embeds the rdl-result/v1 doc when done
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	GET  /v1/jobs/{id}/trace  the job's observability trace (JSONL)
//	GET  /v1/debug/jobs       flight recorder: the last N terminal jobs
//	GET  /v1/debug/jobs/{id}  one job's post-mortem record
//	GET  /healthz             liveness + queue occupancy
//	GET  /metrics             Prometheus text exposition (JSON via ?format=json)
//
// Usage:
//
//	rdlserver -addr :8080 -workers 4 -queue 8 -job-timeout 5m
//	rdlserver -log-format json        # structured job/request logs on stderr
//	rdlserver -debug-addr :6060       # pprof on a separate listener
//	rdlserver -smoke                  # self-test: boot, route dense1, DRC-check,
//	                                  # scrape /metrics, fetch the flight record
//	rdlserver -throughput 1,2,4       # jobs/min at several worker counts
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rdlroute/internal/codec"
	"rdlroute/internal/design"
	"rdlroute/internal/drc"
	"rdlroute/internal/eco"
	"rdlroute/internal/metrics"
	"rdlroute/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 2, "worker pool size")
		queue      = flag.Int("queue", 8, "job queue depth (excess submissions get 429)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "per-job routing deadline (0 = none)")
		routeW     = flag.Int("route-workers", 1, "default Options.Workers for jobs that submit 0: the per-job worker-pool bound inside the flow (results identical at every value)")
		routeSpec  = flag.Bool("route-speculative", false, "run every job's stage 4 through the speculative scheduler (byte-identical results, so cache keys are unaffected)")
		routePort  = flag.Int("route-portfolio", 0, "default Options.OrderPortfolio for jobs that submit 0: race the first N ordering-registry policies and keep the best result (changes results, so it is folded into the cache key; 0 = off, max 16)")
		drain      = flag.Duration("drain", time.Minute, "graceful-shutdown drain budget")
		flight     = flag.Int("flight", 64, "flight-recorder capacity: post-mortem records of the last N terminal jobs (-1 disables)")
		logFormat  = flag.String("log-format", "off", "structured logs on stderr: text, json, or off")
		debugAddr  = flag.String("debug-addr", "", "separate listener for net/http/pprof (empty = disabled)")
		smoke      = flag.Bool("smoke", false, "self-test: boot on a random port, route dense1 over HTTP, DRC-check, scrape /metrics, exit")
		printMet   = flag.Bool("print-metrics", false, "with -smoke: dump the scraped /metrics exposition to stdout")
		throughput = flag.String("throughput", "", "comma-separated worker counts: measure jobs/min per count and exit")
		circuits   = flag.String("circuits", "dense1,dense2,dense3", "benchmark circuits for -throughput")
		jobs       = flag.Int("jobs", 4, "jobs per circuit for -throughput")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "rdlserver:", err)
		return 1
	}

	logger, err := buildLogger(*logFormat)
	if err != nil {
		return fail(err)
	}

	if *smoke {
		if err := runSmoke(*workers, *queue, *printMet); err != nil {
			return fail(err)
		}
		fmt.Println("smoke: PASS")
		return 0
	}
	if *throughput != "" {
		if err := runThroughput(*throughput, *circuits, *jobs); err != nil {
			return fail(err)
		}
		return 0
	}

	s := serve.New(serve.Config{
		Workers: *workers, QueueDepth: *queue, JobTimeout: *jobTimeout,
		RouteWorkers: *routeW, RouteSpeculative: *routeSpec, RoutePortfolio: *routePort,
		FlightSize: *flight, Logger: logger,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("rdlserver: listening on %s (workers %d, queue %d)\n", ln.Addr(), *workers, *queue)

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fail(fmt.Errorf("debug listener: %w", err))
		}
		fmt.Printf("rdlserver: pprof on %s/debug/pprof/\n", dln.Addr())
		go http.Serve(dln, debugMux())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail(err)
	case <-ctx.Done():
	}
	fmt.Println("rdlserver: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "rdlserver: drain incomplete:", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fail(err)
	}
	fmt.Println("rdlserver: drained")
	return 0
}

// buildLogger maps -log-format to a slog logger on stderr (nil = serve
// discards).
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "off", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text, json, or off)", format)
	}
}

// debugMux mounts the pprof handlers on a private mux, so profiling stays
// off the public API listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// boot starts a server on a random loopback port and returns its base
// URL plus a shutdown function. cacheEntries < 0 disables the result
// cache (the throughput sweep must route every job for real).
func boot(workers, queue, cacheEntries int) (string, *serve.Server, func() error, error) {
	s := serve.New(serve.Config{Workers: workers, QueueDepth: queue, CacheEntries: cacheEntries})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return err
		}
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), s, stop, nil
}

type jobView struct {
	ID     string          `json:"id"`
	State  serve.JobState  `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func submitBenchmark(base, name string) (jobView, error) {
	body := fmt.Sprintf(`{"schema":%q,"benchmark":%q}`, serve.JobSchema, name)
	return submitJob(base, body, "")
}

func submitJob(base, body, idemKey string) (jobView, error) {
	var jv jobView
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		return jv, err
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return jv, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		return jv, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, msg)
	}
	err = json.NewDecoder(resp.Body).Decode(&jv)
	return jv, err
}

func pollDone(base, id string, timeout time.Duration) (jobView, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jobView{}, err
		}
		var jv jobView
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			return jv, err
		}
		switch jv.State {
		case serve.JobDone:
			return jv, nil
		case serve.JobFailed, serve.JobCancelled:
			return jv, fmt.Errorf("job %s: %s (%s)", id, jv.State, jv.Error)
		}
		if time.Now().After(deadline) {
			return jv, fmt.Errorf("job %s: stuck in %s", id, jv.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// smokeMetrics scrapes /metrics, validates the exposition with the
// in-repo parser, and asserts the families a routed job must have
// populated. Returns the raw exposition for -print-metrics.
func smokeMetrics(base string) ([]byte, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("smoke: /metrics Content-Type %q, want text/plain exposition", ct)
	}
	var buf bytes.Buffer
	fams, err := metrics.ParseText(io.TeeReader(resp.Body, &buf))
	if err != nil {
		return nil, fmt.Errorf("smoke: /metrics exposition malformed: %w", err)
	}
	if len(fams) == 0 {
		return nil, errors.New("smoke: /metrics exposition is empty")
	}
	f := fams["rdl_jobs_finished_total"]
	if f == nil {
		return nil, fmt.Errorf("smoke: rdl_jobs_finished_total missing (families: %v)", metrics.Names(fams))
	}
	s, ok := f.Sample(map[string]string{"outcome": "completed"})
	if !ok || s.Value < 1 {
		return nil, fmt.Errorf("smoke: rdl_jobs_finished_total{outcome=completed} = %v, want >= 1", s.Value)
	}
	for _, name := range []string{
		"rdl_stage_duration_seconds", // bridged per-stage flow latency
		"rdl_job_duration_seconds",   // serving-layer job histogram
		"rdl_queue_depth",            // live queue gauge
		"go_goroutines",              // runtime gauges
		"rdl_cache_entries",          // result-cache gauges and counters
		"rdl_cache_bytes",
		"rdl_cache_hits_total",
		"rdl_cache_misses_total",
		"rdl_cache_evictions_total",
		"rdl_portfolio_raced_total", // ordering-portfolio race telemetry
		"rdl_portfolio_candidates_total",
		"rdl_portfolio_winner_index_total", // may legitimately be 0 (policy 0 won)
		"rdl_portfolio_routed_delta_total",
	} {
		if fams[name] == nil {
			return nil, fmt.Errorf("smoke: family %s missing from /metrics", name)
		}
	}
	for fam, min := range map[string]float64{
		"rdl_cache_hits_total": 1, "rdl_cache_misses_total": 1,
		"rdl_portfolio_raced_total": 1, "rdl_portfolio_candidates_total": 4,
	} {
		s, ok := fams[fam].Sample(nil)
		if !ok || s.Value < min {
			return nil, fmt.Errorf("smoke: %s = %v, want >= %v after the replay and delta jobs", fam, s.Value, min)
		}
	}
	return buf.Bytes(), nil
}

// smokeFlight fetches the job's flight record and checks it carries the
// post-mortem essentials.
func smokeFlight(base, id string) error {
	resp, err := http.Get(base + "/v1/debug/jobs/" + id)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: flight record for %s: HTTP %d", id, resp.StatusCode)
	}
	var rec serve.FlightRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return fmt.Errorf("smoke: flight record: %w", err)
	}
	if rec.Outcome != serve.OutcomeCompleted {
		return fmt.Errorf("smoke: flight outcome %q, want completed", rec.Outcome)
	}
	if rec.OptionsFP == "" || rec.Obs == nil || len(rec.Obs.Spans) == 0 {
		return fmt.Errorf("smoke: flight record incomplete: fp=%q obs=%v", rec.OptionsFP, rec.Obs)
	}
	return nil
}

// runSmoke boots a real server, routes dense1 through the HTTP API,
// asserts the decoded result is DRC-clean, then validates the /metrics
// exposition and the job's flight record. verify.sh runs this in CI.
func runSmoke(workers, queue int, printMetrics bool) error {
	base, _, stop, err := boot(workers, queue, 0)
	if err != nil {
		return err
	}
	defer stop()
	fmt.Printf("smoke: server at %s\n", base)

	jv, err := submitBenchmark(base, "dense1")
	if err != nil {
		return err
	}
	fmt.Printf("smoke: submitted %s\n", jv.ID)
	if jv, err = pollDone(base, jv.ID, 5*time.Minute); err != nil {
		return err
	}
	if jv.Result == nil {
		return errors.New("smoke: done job carries no result document")
	}
	spec, err := design.DenseSpec("dense1")
	if err != nil {
		return err
	}
	d, err := design.Generate(spec)
	if err != nil {
		return err
	}
	res, err := codec.DecodeResult(bytes.NewReader(jv.Result), d)
	if err != nil {
		return err
	}
	if v := drc.Check(res.Layout); len(v) != 0 {
		return fmt.Errorf("smoke: %d DRC violations; first: %v", len(v), v[0])
	}
	fmt.Printf("smoke: dense1 routability %.1f%% wirelength %.0f, DRC clean\n",
		res.Routability, res.Wirelength)

	// Result cache: resubmitting identical content under a fresh
	// idempotency key must mint a NEW job served from the cache, with its
	// flight record tagged "hit".
	hit, err := submitJob(base, fmt.Sprintf(`{"schema":%q,"benchmark":%q}`, serve.JobSchema, "dense1"), "smoke-replay")
	if err != nil {
		return err
	}
	if hit.ID == jv.ID {
		return fmt.Errorf("smoke: fresh idempotency key deduped to job %s", jv.ID)
	}
	if _, err = pollDone(base, hit.ID, time.Minute); err != nil {
		return err
	}
	if err := smokeCacheTag(base, hit.ID, "hit"); err != nil {
		return err
	}
	fmt.Printf("smoke: resubmission %s served from cache\n", hit.ID)

	// Delta job against the cached base: remove one net and reroute
	// incrementally, then DRC-check the edited result.
	hash, err := codec.DesignHash(d)
	if err != nil {
		return err
	}
	dlBody := fmt.Sprintf(`{"schema":%q,"delta":{"schema":%q,"base":%q,"remove_nets":[0]}}`,
		serve.JobSchema, codec.DeltaSchema, hash)
	dj, err := submitJob(base, dlBody, "")
	if err != nil {
		return fmt.Errorf("smoke: delta submit: %w", err)
	}
	if dj, err = pollDone(base, dj.ID, 5*time.Minute); err != nil {
		return err
	}
	edited, err := eco.Apply(d, &eco.Delta{RemoveNets: []int{0}})
	if err != nil {
		return err
	}
	dres, err := codec.DecodeResult(bytes.NewReader(dj.Result), edited)
	if err != nil {
		return fmt.Errorf("smoke: delta result: %w", err)
	}
	if v := drc.Check(dres.Layout); len(v) != 0 {
		return fmt.Errorf("smoke: delta result has %d DRC violations; first: %v", len(v), v[0])
	}
	fmt.Printf("smoke: delta job %s rerouted %d/%d nets, DRC clean\n",
		dj.ID, dres.RoutedNets, dres.TotalNets)

	// Portfolio job: the same circuit with an ordering portfolio raced
	// through stage 4. The options differ, so this must be a cache MISS
	// (the portfolio changes results and splits the cache key), and the
	// race must populate the rdl_portfolio_* metric families.
	pBody := fmt.Sprintf(`{"schema":%q,"benchmark":%q,"options":{"schema":%q,"order_portfolio":4}}`,
		serve.JobSchema, "dense1", codec.OptionsSchema)
	pj, err := submitJob(base, pBody, "")
	if err != nil {
		return fmt.Errorf("smoke: portfolio submit: %w", err)
	}
	if pj, err = pollDone(base, pj.ID, 5*time.Minute); err != nil {
		return err
	}
	if err := smokeCacheTag(base, pj.ID, "miss"); err != nil {
		return err
	}
	pres, err := codec.DecodeResult(bytes.NewReader(pj.Result), d)
	if err != nil {
		return fmt.Errorf("smoke: portfolio result: %w", err)
	}
	if v := drc.Check(pres.Layout); len(v) != 0 {
		return fmt.Errorf("smoke: portfolio result has %d DRC violations; first: %v", len(v), v[0])
	}
	if pres.RoutedNets < res.RoutedNets {
		return fmt.Errorf("smoke: portfolio job routed %d nets, single-policy job routed %d (the race must never lose)",
			pres.RoutedNets, res.RoutedNets)
	}
	fmt.Printf("smoke: portfolio job %s raced 4 policies, routability %.1f%%, DRC clean\n",
		pj.ID, pres.Routability)

	expo, err := smokeMetrics(base)
	if err != nil {
		return err
	}
	fmt.Printf("smoke: /metrics exposition valid (%d bytes)\n", len(expo))
	if printMetrics {
		os.Stdout.Write(expo)
	}
	if err := smokeFlight(base, jv.ID); err != nil {
		return err
	}
	fmt.Printf("smoke: flight record for %s complete\n", jv.ID)

	if err := stop(); err != nil {
		return fmt.Errorf("smoke: drain: %w", err)
	}
	return nil
}

// smokeCacheTag asserts the job's flight record carries the expected
// cache outcome.
func smokeCacheTag(base, id, want string) error {
	resp, err := http.Get(base + "/v1/debug/jobs/" + id)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var rec serve.FlightRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return fmt.Errorf("smoke: flight record: %w", err)
	}
	if rec.Cache != want {
		return fmt.Errorf("smoke: job %s flight cache tag %q, want %q", id, rec.Cache, want)
	}
	return nil
}

// runThroughput measures jobs/min at each worker count: per circuit it
// submits -jobs copies and waits for all of them, all through the HTTP
// API (the EXPERIMENTS.md serving-throughput table).
func runThroughput(workerList, circuitList string, jobsPer int) error {
	var counts []int
	for _, f := range strings.Split(workerList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad worker count %q", f)
		}
		counts = append(counts, n)
	}
	circuits := strings.Split(circuitList, ",")
	fmt.Printf("%-8s %-28s %8s %10s\n", "workers", "circuits", "jobs", "jobs/min")
	for _, w := range counts {
		// Cache disabled: identical submissions must route for real, or
		// jobs/min would measure the cache instead of the workers.
		base, _, stop, err := boot(w, 2*jobsPer*len(circuits), -1)
		if err != nil {
			return err
		}
		var ids []string
		t0 := time.Now()
		for _, c := range circuits {
			for i := 0; i < jobsPer; i++ {
				jv, err := submitBenchmark(base, strings.TrimSpace(c))
				if err != nil {
					stop()
					return err
				}
				ids = append(ids, jv.ID)
			}
		}
		for _, id := range ids {
			if _, err := pollDone(base, id, 10*time.Minute); err != nil {
				stop()
				return err
			}
		}
		dt := time.Since(t0)
		if err := stop(); err != nil {
			return err
		}
		fmt.Printf("%-8d %-28s %8d %10.1f\n",
			w, circuitList, len(ids), float64(len(ids))/dt.Minutes())
	}
	return nil
}
