package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d", n, got)
		}
	}
}

// TestForEachCoversEveryIndexOnce is the core pool contract: every index
// in [0, n) runs exactly once, at every worker count, including workers
// far beyond n and the inline workers=1 path.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]atomic.Int32, max(n, 1))
			err := ForEach(context.Background(), workers, n, func(i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := 0; i < n; i++ {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestMapIndexAddressed pins the determinism contract that makes Map
// safe to substitute for a sequential loop: out[i] is fn(i)'s value in
// index order, independent of worker count.
func TestMapIndexAddressed(t *testing.T) {
	const n = 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(context.Background(), workers, n, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForEachLowestIndexError: with many failing indices the reported
// error must be the lowest one — the same error a sequential
// stop-at-first-failure loop reports — regardless of scheduling.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(context.Background(), workers, 200, func(i int) error {
				if i%3 == 1 { // fails at 1, 4, 7, ... lowest is 1
					return fmt.Errorf("index %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "index 1" {
				t.Fatalf("workers=%d: got %v, want index 1", workers, err)
			}
		}
	}
}

// TestForEachStopsClaimingAfterError: after a failure the pool must stop
// claiming new chunks — a failing index near the front should leave most
// of a large range untouched (bounded by in-flight chunks).
func TestForEachStopsClaimingAfterError(t *testing.T) {
	const n = 100000
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), 4, n, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if got := ran.Load(); got > n/2 {
		t.Errorf("pool kept claiming after error: %d of %d indices ran", got, n)
	}
}

// TestForEachCancellation cancels mid-fan-out while workers are blocked
// inside fn and asserts a clean context error plus prompt return.
func TestForEachCancellation(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, 1)
		done := make(chan error, 1)
		go func() {
			done <- ForEach(ctx, workers, 100000, func(i int) error {
				select {
				case started <- struct{}{}:
				default:
				}
				// Block until the cancel lands so it provably fires
				// mid-fan-out on every path — the inline workers=1 loop
				// would otherwise race through all indices before the
				// test goroutine gets to cancel.
				<-ctx.Done()
				return nil
			})
		}()
		<-started
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: ForEach did not return after cancel", workers)
		}
	}
}

// TestForEachPreCancelled: an already-cancelled context fails fast
// without running any index on the pooled path; the n<=0 fast path also
// surfaces the context error.
func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 1, 100, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("inline: got %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("inline: ran %d indices under a cancelled context", ran.Load())
	}
	if err := ForEach(ctx, 4, 0, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0: got %v", err)
	}
}

// TestForEachErrorBeatsContext: a lower-index fn error wins over the
// context error even when both occur, keeping the reported failure
// deterministic.
func TestForEachErrorBeatsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEach(ctx, 4, 1000, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom to beat context.Canceled", err)
	}
}

func TestChunkSize(t *testing.T) {
	for _, tc := range []struct{ n, w, want int }{
		{1, 8, 1},
		{16, 2, 2},
		{1000, 4, 63},
		{7, 100, 1},
	} {
		if got := chunkSize(tc.n, tc.w); got != tc.want {
			t.Errorf("chunkSize(%d, %d) = %d, want %d", tc.n, tc.w, got, tc.want)
		}
	}
}
