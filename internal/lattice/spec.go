package lattice

// Speculative search support for the router's stage-4 speculation scheduler.
//
// A lattice search never mutates occupancy, so speculation needs no
// occupancy snapshot or rollback: N speculative searches may run
// concurrently against the frozen lattice, each on a private Searcher
// (its own A* buffers and footprint scratch), while the journal's block
// hashes stand still. What speculation must prove at commit time is that
// the state it searched is still the state a sequential run would have
// searched — and that is exactly the footprint machinery the search memo
// already uses: a SpecSearch records the block-hash snapshot of every
// node its search popped (grown by the read reach), and FootprintValid
// re-checks that snapshot against the live journal. If every block still
// matches after the preceding nets committed, re-running the search would
// re-derive the identical result bit for bit; any mismatch aborts the
// speculation and the net replays live in its sequential position.
//
// The tracer and memo side effects a sequential Route performs are
// deferred to CommitSpecSearch so an accepted speculation emits exactly
// the counters, observations and memo entries of the sequential loop, in
// commit order, and an aborted one emits nothing (its live replay emits
// its own).

// Searcher owns one worker's private A* state: reusable search buffers
// plus a footprint scratch. Searches through different Searchers may run
// concurrently on one lattice as long as nothing commits meanwhile; the
// epoch-stamped buffers make each search independent of what previously
// ran on the Searcher, so results never depend on which worker ran what.
type Searcher struct {
	ss searchState
	fp fpScratch
}

// NewSearcher returns a Searcher for this lattice. Buffers are allocated
// lazily on first use.
func (la *Lattice) NewSearcher() *Searcher { return &Searcher{} }

// SpecSearch is one speculative A* execution: the would-be result plus
// the footprint evidence needed to prove at commit time that a sequential
// run would re-derive it.
type SpecSearch struct {
	Path     []PathStep
	Cost     float64
	OK       bool
	Expanded int
	Visited  int
	// Cancelled is set when the request's context fired mid-search; a
	// cancelled speculation must never be accepted (its outcome reflects
	// the deadline, not the lattice).
	Cancelled bool
	// Searched distinguishes a run search from a pre-search rejection
	// (terminal off-lattice or on a disallowed layer): rejections have no
	// effort to replay and no footprint, matching a sequential Route that
	// returns before touching the tracer or memo.
	Searched bool

	snap []blockSnap
}

// SpecRoute runs the request speculatively on the given Searcher: a plain
// read-only A* with no tracer or memo side effects, recording the
// footprint of every popped node. The lattice must have a journal
// attached (AttachMemo or AttachJournal) and must not be committed to
// while speculative searches are in flight. req.Region must be nil
// (speculative callers rasterize a RegionMask); the request's defaults
// are applied exactly as Route applies them.
func (la *Lattice) SpecRoute(req Request, sr *Searcher) SpecSearch {
	if !la.routePrep(&req) {
		return SpecSearch{}
	}
	sr.ss.ensure(la.Layers * la.NX * la.NY * 9)
	r := la.routeCore(&req, &sr.ss, &sr.fp)
	return SpecSearch{
		Path: r.path, Cost: r.cost, OK: r.ok,
		Expanded: r.expanded, Visited: r.visited,
		Cancelled: r.cancelled, Searched: true,
		snap: sr.fp.snapshot(la.j),
	}
}

// FootprintValid reports whether every journal block the speculative
// search read still holds the hash it held when the search ran — i.e.
// whether a sequential run at this point would re-derive the identical
// result. A pre-search rejection has an empty footprint and is always
// valid (the sequential run rejects it identically).
func (la *Lattice) FootprintValid(s *SpecSearch) bool {
	return la.j != nil && la.j.snapValid(s.snap)
}

// CommitSpecSearch performs the sequential Route's deferred side effects
// for an accepted speculation: the tracer effort replay (astar.* counters
// and observations, plus req.Stats) and, when a memo is attached and the
// request is hashable, the memo recording. Callers must pass the same
// request the speculation ran (Stats may differ) and call in commit order
// so tracer streams match a sequential run byte for byte.
func (la *Lattice) CommitSpecSearch(req Request, s *SpecSearch) {
	if !s.Searched {
		return
	}
	la.routePrep(&req) // re-apply defaults so the memo key matches a live call
	la.recordSearch(&req, s.Expanded, s.Visited, s.OK)
	if la.j == nil || la.j.memo == nil || req.Region != nil || s.Cancelled {
		return
	}
	e := &memoEntry{ok: s.OK, cost: s.Cost, expanded: s.Expanded, visited: s.Visited,
		snap: s.snap}
	if len(s.Path) > 0 {
		e.path = make([]PathStep, len(s.Path))
		copy(e.path, s.Path)
	}
	la.j.memo.store(la.memoKeyFor(&req), e)
}
